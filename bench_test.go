// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation, one benchmark per artifact (see DESIGN.md §4 for the
// index). Run them all with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment in quick mode and
// reports headline numbers via b.ReportMetric, so a bench run doubles as a
// compact reproduction report. Micro-benchmarks for the solver and workload
// engine follow at the end.
package repro

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/uarch"
)

var quick = experiments.Options{Quick: true}

func BenchmarkFig2TransientValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2TransientValidation(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RconvKperW, "Rconv_K/W")
		b.ReportMetric(r.Tau63Compact, "tau63_compact_s")
		b.ReportMetric(r.Tau63Reference, "tau63_reference_s")
		b.ReportMetric(r.MaxDeviationK, "max_deviation_K")
	}
}

func BenchmarkFig3SteadyValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3SteadyValidation(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.CompactMaxK, "Tmax_compact_K")
		b.ReportMetric(r.ReferenceMaxK, "Tmax_reference_K")
		b.ReportMetric(r.CompactDT, "dT_compact_K")
		b.ReportMetric(r.ReferenceDT, "dT_reference_K")
	}
}

func BenchmarkFig4AthlonMap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4AthlonMap(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.HottestC, "sched_C")
		b.ReportMetric(r.CoolestC, "coolest_C")
	}
}

func BenchmarkFig5SecondaryPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5SecondaryPath(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OilDeltaHotC, "oil_delta_C")
		b.ReportMetric(100*r.AirDeltaHotFrac, "air_delta_pct")
		b.ReportMetric(100*r.OilSecondaryShare, "oil_secondary_pct")
	}
}

func BenchmarkFig6Warmup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6Warmup(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OilHotSteady, "oil_hot_C")
		b.ReportMetric(r.AirHotSteady, "air_hot_C")
		b.ReportMetric(r.OilCoolSteady, "oil_cool_C")
		b.ReportMetric(r.AirCoolSteady, "air_cool_C")
	}
}

func BenchmarkFig7TimeConstants(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7TimeConstants(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RthSi, "Rsi_K/W")
		b.ReportMetric(r.Rconv, "Rconv_K/W")
		b.ReportMetric(r.TauOil, "tau_oil_s")
		b.ReportMetric(r.TauLongSink, "tau_sink_s")
	}
}

func BenchmarkFig8ShortTransient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8ShortTransient(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1e3*r.OilCoolHalf, "oil_coolhalf_ms")
		b.ReportMetric(1e3*r.AirCoolHalf, "air_coolhalf_ms")
	}
}

func BenchmarkFig9HotSpotMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9HotSpotMigration(quick)
		if err != nil {
			b.Fatal(err)
		}
		migrated := 0.0
		if r.AirHotAt14 == "FPMap" {
			migrated = 1
		}
		retained := 0.0
		if r.OilHotAt14 == "IntReg" {
			retained = 1
		}
		b.ReportMetric(migrated, "air_migrated")
		b.ReportMetric(retained, "oil_retained")
	}
}

func BenchmarkFig10SteadyMaps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10SteadyMaps(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OilMax, "oil_max_C")
		b.ReportMetric(r.AirMax, "air_max_C")
		b.ReportMetric(r.OilSpread, "oil_spread_C")
		b.ReportMetric(r.AirSpread, "air_spread_C")
	}
}

func BenchmarkFig11FlowDirections(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11FlowDirections(quick)
		if err != nil {
			b.Fatal(err)
		}
		flips := 0.0
		if r.Hottest[3] == "Dcache" {
			flips = 1
		}
		b.ReportMetric(flips, "t2b_hotspot_flips")
	}
}

func BenchmarkFig12TempTraces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12TempTraces(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.OilPeakC, "oil_peak_C")
		b.ReportMetric(r.AirPeakC, "air_peak_C")
		b.ReportMetric(r.AirRise3ms, "air_rise3ms_C")
	}
}

func BenchmarkSec52SensingFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sec52SensingFrequency(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AirIntervalUS, "air_interval_us")
		b.ReportMetric(r.OilIntervalUS, "oil_interval_us")
	}
}

func BenchmarkSec53SensorGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sec53SensorGranularity(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GradientRatio, "oil_air_gradient_ratio")
		b.ReportMetric(r.OilErrC[0], "oil_1sensor_err_C")
		b.ReportMetric(r.AirErrC[0], "air_1sensor_err_C")
	}
}

func BenchmarkSec54PlacementInversion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Sec54PlacementInversion(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.NaiveSkewPercent, "blind_inversion_skew_pct")
		b.ReportMetric(r.JointErrC, "joint_placement_err_C")
	}
}

func BenchmarkExtDesignSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtDesignSpace(quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range r.Points {
			if p.Name == "microchannel" {
				b.ReportMetric(p.MaxC, "microchannel_max_C")
				b.ReportMetric(p.RconvKperW, "microchannel_Rconv")
			}
		}
	}
}

func BenchmarkAblationLocalH(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationLocalH(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.MaxDirectionalDeltaC, "local_delta_C")
		b.ReportMetric(r.UniformDeltaC, "uniform_delta_C")
	}
}

func BenchmarkAblationBoundaryCap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationBoundaryCap(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RiseWithC, "rise0.2s_withC_K")
		b.ReportMetric(r.RiseWithoutC, "rise0.2s_withoutC_K")
	}
}

func BenchmarkAblationIntegrator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationIntegrator(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.FinalDeltaK, "disagreement_K")
	}
}

func BenchmarkAblationSpreader(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSpreader(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.SpreadNormalC, "spread_1mm_C")
		b.ReportMetric(r.SpreadThinC, "spread_0.1mm_C")
		b.ReportMetric(r.SpreadOilC, "spread_oil_C")
	}
}

// --- Micro-benchmarks: solver and workload-engine throughput. ---

func ev6OilModel(b *testing.B) *hotspot.Model {
	b.Helper()
	m, err := hotspot.New(hotspot.Config{
		Floorplan: floorplan.EV6(),
		Package:   hotspot.OilSilicon,
		Oil:       hotspot.OilConfig{Direction: hotspot.LeftToRight, TargetRconv: 0.3},
		Secondary: hotspot.SecondaryPathConfig{Enabled: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkSteadyStateSolve(b *testing.B) {
	m := ev6OilModel(b)
	p, err := m.PowerVector(map[string]float64{"IntReg": 2, "L2": 6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SteadyState(p)
	}
}

func BenchmarkTransientStepBE(b *testing.B) {
	m := ev6OilModel(b)
	p, err := m.PowerVector(map[string]float64{"IntReg": 2, "L2": 6})
	if err != nil {
		b.Fatal(err)
	}
	state := m.AmbientState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Transient(state, p, 3.33e-6, 3.33e-6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReducedStepBE times one backward-Euler step through the
// reduced-order session (DESIGN.md §10) on the same EV6 oil model as
// BenchmarkTransientStepBE — the per-user serving path, where the solve is
// a pre-factored dense system of the reduction order instead of the full
// sparse factor. The sessions/host metric is how many concurrent real-time
// streaming sessions one core sustains at a 1 kHz thermal control-step
// rate (1e9 ns/s ÷ 1000 steps/s ÷ ns/step).
func BenchmarkReducedStepBE(b *testing.B) {
	m, err := hotspot.New(hotspot.Config{
		Floorplan: floorplan.EV6(),
		Package:   hotspot.OilSilicon,
		Oil:       hotspot.OilConfig{Direction: hotspot.LeftToRight, TargetRconv: 0.3},
		Secondary: hotspot.SecondaryPathConfig{Enabled: true},
		Reduced:   hotspot.ReducedConfig{Enabled: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	if m.SolverBackend() != "reduced" {
		b.Fatalf("backend %q, want reduced", m.SolverBackend())
	}
	p, err := m.PowerVector(map[string]float64{"IntReg": 2, "L2": 6})
	if err != nil {
		b.Fatal(err)
	}
	state := m.AmbientState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Transient(state, p, 3.33e-6, 3.33e-6); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := m.SolverStats()
	if st.ReducedFallbacks != 0 {
		b.Fatalf("reduced path tripped its fallback %d times mid-benchmark", st.ReducedFallbacks)
	}
	nsPerStep := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(st.ReducedOrder), "order")
	b.ReportMetric(1e6/nsPerStep, "sessions/host")
}

// BenchmarkReducedSessionStream times one step of the streaming per-user
// session on the same EV6 oil model: state held in reduced coordinates, a
// step is a single order² dense matvec (the propagator recurrence,
// DESIGN.md §10.4) plus a 1-in-64 sampled exactness check. This is the
// serving hot path the sessions/host capacity figure comes from; compare
// against BenchmarkReducedStepBE (full-space stepping through the same
// reduction) and BenchmarkTransientStepBE (the sparse direct solver).
func BenchmarkReducedSessionStream(b *testing.B) {
	m, err := hotspot.New(hotspot.Config{
		Floorplan: floorplan.EV6(),
		Package:   hotspot.OilSilicon,
		Oil:       hotspot.OilConfig{Direction: hotspot.LeftToRight, TargetRconv: 0.3},
		Secondary: hotspot.SecondaryPathConfig{Enabled: true},
		Reduced:   hotspot.ReducedConfig{Enabled: true},
	})
	if err != nil {
		b.Fatal(err)
	}
	ss, err := m.NewStreamSession(1e-3)
	if err != nil {
		b.Fatal(err)
	}
	if err := ss.Start(m.AmbientState()); err != nil {
		b.Fatal(err)
	}
	blocks := make([]float64, m.Floorplan().N())
	for i := range blocks {
		blocks[i] = 0.5
	}
	if err := ss.SetBlockPower(blocks); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ss.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if !ss.Reduced() {
		b.Fatal("stream session tripped onto the full backend mid-benchmark")
	}
	nsPerStep := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(ss.Order()), "order")
	b.ReportMetric(1e6/nsPerStep, "sessions/host")
}

func BenchmarkUarchThroughput(b *testing.B) {
	s, err := uarch.NewStream(uarch.GCC(), 1)
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := uarch.NewCPU(uarch.DefaultCPU(), s)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cpu.Run(1_000_000, 1_000_000); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1e6*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkTraceReplaySweep replays synthetic power traces against four EV6
// model configurations through the batched sweep API: four scenarios per
// model (the production shape — a sweep fans many workloads over a few
// cooling configurations), sixteen jobs total. Same-model scenarios advance
// in lockstep, solving all four right-hand sides per factor traversal; on
// multicore hosts the per-worker chunks additionally scale with GOMAXPROCS.
// See also internal/rcnet's Backend* benchmarks for the backend matrix and
// BenchmarkTransientBatch for the width-scaling curve.
func BenchmarkTraceReplaySweep(b *testing.B) {
	const perModel = 4
	fp := floorplan.EV6()
	names := fp.Names()
	blocks := []string{"IntReg", "FPMap", "Dcache", "Bpred"}
	traces := make([]*trace.PowerTrace, perModel)
	for i, blk := range blocks {
		tr, err := trace.PulseTrain(names, blk, 3, 5e-3, 5e-3, 0.5e-3, 3)
		if err != nil {
			b.Fatal(err)
		}
		traces[i] = tr
	}
	var models []*hotspot.Model
	for _, dir := range []hotspot.FlowDirection{hotspot.Uniform, hotspot.LeftToRight, hotspot.TopToBottom} {
		m, err := hotspot.New(hotspot.Config{
			Floorplan: fp,
			Package:   hotspot.OilSilicon,
			Oil:       hotspot.OilConfig{Direction: dir, TargetRconv: 0.3},
			Secondary: hotspot.SecondaryPathConfig{Enabled: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		models = append(models, m)
	}
	air, err := hotspot.New(hotspot.Config{
		Floorplan: fp,
		Package:   hotspot.AirSink,
		Air:       hotspot.AirSinkConfig{RConvec: 0.3},
	})
	if err != nil {
		b.Fatal(err)
	}
	models = append(models, air)
	var jobs []hotspot.SweepJob
	for _, m := range models {
		for _, tr := range traces {
			tr := tr
			jobs = append(jobs, hotspot.SweepJob{Model: m, TraceJob: hotspot.TraceJob{
				Schedule:    func(t float64, p []float64) { copy(p, tr.At(t)) },
				Duration:    tr.Duration(),
				SampleEvery: tr.Interval,
			}})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range jobs {
			jobs[j].Temps = jobs[j].Model.AmbientState()
		}
		if _, err := hotspot.RunSweep(jobs, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "scenarios/s")
}

func BenchmarkPowerTraceConversion(b *testing.B) {
	s, err := uarch.NewStream(uarch.GCC(), 1)
	if err != nil {
		b.Fatal(err)
	}
	cpu, err := uarch.NewCPU(uarch.DefaultCPU(), s)
	if err != nil {
		b.Fatal(err)
	}
	samples, err := cpu.Run(1_000_000, 10_000)
	if err != nil {
		b.Fatal(err)
	}
	pm, err := power.New(power.DefaultWattch(), floorplan.EV6())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pm.Trace(samples); err != nil {
			b.Fatal(err)
		}
	}
}
