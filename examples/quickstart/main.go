// Quickstart: build the two cooling configurations the paper contrasts,
// apply a hot-block power step, and print how differently the same silicon
// behaves — the paper's headline result in ~60 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
)

func main() {
	fp := floorplan.EV6()

	// The IR-imaging configuration: laminar mineral oil over the bare die,
	// rescaled to the paper's comparison point R_conv = 1.0 K/W.
	oil, err := hotspot.New(hotspot.Config{
		Floorplan: fp,
		Package:   hotspot.OilSilicon,
		Oil:       hotspot.OilConfig{TargetRconv: 1.0},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The conventional package: TIM, copper spreader, copper heatsink,
	// forced air at the same overall R_conv.
	air, err := hotspot.New(hotspot.Config{
		Floorplan: fp,
		Package:   hotspot.AirSink,
		Air:       hotspot.AirSinkConfig{RConvec: 1.0},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2 W/mm² on the data cache, everything else idle.
	watts := 2.0e6 * fp.Blocks[fp.Index("Dcache")].Area()
	power := map[string]float64{"Dcache": watts}

	for _, m := range []*hotspot.Model{oil, air} {
		vec, err := m.PowerVector(power)
		if err != nil {
			log.Fatal(err)
		}
		steady := m.SteadyState(vec)
		hotName, hotC := steady.Hottest()
		coolName, coolC := steady.Coolest()

		// Warm up from ambient for one second and see how far we got.
		state := m.AmbientState()
		if err := m.Transient(state, vec, 1.0, 1e-3); err != nil {
			log.Fatal(err)
		}
		afterOneSec := m.NewResult(state).BlockC("Dcache")

		fmt.Printf("%s (R_conv = %.2f K/W)\n", m.Config().Package, m.RconvEffective())
		fmt.Printf("  steady: hottest %-7s %6.1f °C | coolest %-8s %5.1f °C | avg %5.1f °C\n",
			hotName, hotC, coolName, coolC, steady.AverageC())
		fmt.Printf("  after 1 s of warmup the hot block is at %.1f °C (steady %.1f °C)\n\n",
			afterOneSec, steady.BlockC("Dcache"))
	}
	fmt.Println("Same die, same total convection resistance — different worlds.")
	fmt.Println("That asymmetry is why IR measurements cannot replace simulation (and vice versa).")
}
