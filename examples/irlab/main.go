// irlab emulates an infrared thermal-imaging measurement campaign: run a
// workload on the EV6 under the oil-cooled IR configuration, image the die
// with a frame-rate-limited blurred camera, reverse-engineer the power map,
// and demonstrate the two artifacts the paper warns about — missed fast
// transients (§5.1) and flow-direction power skew (§5.4). It ends with the
// paper's future-work reconciliation: predicting the AIR-SINK response from
// the oil-side measurement.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/ircam"
	"repro/internal/sensors"
)

func main() {
	fp := floorplan.EV6()

	// The device under test: EV6 under left-to-right oil flow, running gcc.
	// R_conv is forced down to 0.3 K/W: the paper's §5.1.1 notes that for a
	// high-power chip the plain oil flow would be prohibitively hot, so IR
	// rigs add extra cooling.
	scenario, err := core.NewScenario(
		core.WorkloadSpec{Name: "gcc", Cycles: 10_000_000},
		core.PackageSpec{Kind: "oil-silicon", Direction: "left-to-right", Rconv: 0.3},
	)
	if err != nil {
		log.Fatal(err)
	}
	steady, err := scenario.SteadyState()
	if err != nil {
		log.Fatal(err)
	}
	hotName, hotC := steady.Hottest()
	fmt.Printf("device under test: EV6/gcc, oil left-to-right, hottest %s at %.0f °C\n\n", hotName, hotC)

	// 1. Image the steady map with a realistic camera.
	grid := steady.Grid(128, 128)
	tm, err := sensors.NewThermalMap(128, 128, fp.Width(), fp.Height(), grid)
	if err != nil {
		log.Fatal(err)
	}
	cam := ircam.Camera{FrameRate: 60, PixelsX: 64, PixelsY: 64, PSFSigmaPixels: 1.2}
	img, err := cam.Capture(tm)
	if err != nil {
		log.Fatal(err)
	}
	trueMax, _, _ := tm.Max()
	seenMax, _, _ := img.Max()
	fmt.Printf("1. optics: true max %.1f °C, camera sees %.1f °C (PSF smears %.1f °C)\n\n",
		trueMax, seenMax, trueMax-seenMax)

	// 2. Film the transient and show the frame-rate blind spot.
	pts, err := scenario.RunTransient()
	if err != nil {
		log.Fatal(err)
	}
	irIdx := fp.Index("IntReg")
	truePeak := ircam.TruePeak(pts, irIdx)
	frames, err := cam.FilmTrace(pts)
	if err != nil {
		log.Fatal(err)
	}
	seenPeak := ircam.PeakSeen(frames, irIdx)
	fmt.Printf("2. sampling: IntReg true peak %.2f °C, %d fps camera saw %.2f °C (missed %.2f °C)\n",
		truePeak, int(cam.FrameRate), seenPeak, truePeak-seenPeak)
	fmt.Printf("   (the paper: 3 ms thermal events are shorter than typical IR sampling intervals)\n\n")

	// 3. Reverse-engineer per-block power, direction-blind vs aware.
	obs := steady.BlocksC()
	blind, err := core.BuildModel(fp, core.PackageSpec{Kind: "oil-silicon", Direction: "uniform", Rconv: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	pBlind, err := ircam.InvertPower(blind, obs, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	pAware, err := ircam.InvertPower(scenario.Model, obs, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	truth := scenario.AveragePowerMap()
	fmt.Println("3. power inversion (W):")
	fmt.Println("   block      true   blind  aware")
	for _, n := range []string{"IntReg", "IntExec", "Dcache", "Icache", "L2"} {
		i := fp.Index(n)
		fmt.Printf("   %-9s %6.2f %6.2f %6.2f\n", n, truth[n], pBlind[i], pAware[i])
	}
	fmt.Println("   (ignoring the flow direction skews the recovered powers — §5.4)")
	fmt.Println()

	// 4. The §6 future-work chain: predict the AIR-SINK response from the
	// oil measurement.
	air, err := core.BuildModel(fp, core.PackageSpec{Kind: "air-sink", Rconv: 0.3})
	if err != nil {
		log.Fatal(err)
	}
	truthVec := make([]float64, fp.N())
	for n, w := range truth {
		truthVec[fp.Index(n)] = w
	}
	rec, err := core.ReconcileAirFromOil(scenario.Model, air, obs, truthVec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("4. reconciliation: predicted AIR-SINK map from the oil measurement,\n")
	fmt.Printf("   worst per-block error vs the direct air solve: %.2f °C\n", rec.MaxErrorC)
}
