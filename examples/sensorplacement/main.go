// sensorplacement walks through the paper's §5.3-5.4 sensor questions: how
// many on-die sensors does each cooling configuration need for a given
// worst-case error, and what happens when sensors placed from IR (oil)
// measurements under one flow direction monitor a chip whose hot spot moves
// with the flow.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/sensors"
)

func main() {
	fp := floorplan.EV6()
	tr, err := core.RunWorkload(core.WorkloadSpec{Name: "gcc", Cycles: 10_000_000})
	if err != nil {
		log.Fatal(err)
	}
	avg := tr.Average()
	powers := map[string]float64{}
	for i, n := range tr.Names {
		powers[n] = avg[i]
	}

	mapFor := func(spec core.PackageSpec) *sensors.ThermalMap {
		m, err := core.BuildModel(fp, spec)
		if err != nil {
			log.Fatal(err)
		}
		vec, err := m.PowerVector(powers)
		if err != nil {
			log.Fatal(err)
		}
		grid := m.SteadyState(vec).Grid(32, 32)
		tm, err := sensors.NewThermalMap(32, 32, fp.Width(), fp.Height(), grid)
		if err != nil {
			log.Fatal(err)
		}
		return tm
	}

	cands := sensors.CandidateGrid(fp, 8, 8)

	// §5.3: error vs sensor count for both packages.
	air := mapFor(core.PackageSpec{Kind: "air-sink", Rconv: 1.0})
	oil := mapFor(core.PackageSpec{Kind: "oil-silicon", Rconv: 1.0})
	airErr, err := sensors.ErrorVsCount(cands, []*sensors.ThermalMap{air}, 5)
	if err != nil {
		log.Fatal(err)
	}
	oilErr, err := sensors.ErrorVsCount(cands, []*sensors.ThermalMap{oil}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("worst-case hot-spot error (°C) vs sensor budget:")
	fmt.Println("  sensors   air-sink   oil-silicon")
	for k := range airErr {
		fmt.Printf("  %7d   %8.2f   %11.2f\n", k+1, airErr[k], oilErr[k])
	}
	fmt.Println("  (steeper oil gradients leave bigger blind spots — §5.3)")
	fmt.Println()

	// §5.4: train a sensor on one flow direction, deploy under another.
	dirs := []string{"left-to-right", "right-to-left", "bottom-to-top", "top-to-bottom"}
	maps := make([]*sensors.ThermalMap, len(dirs))
	for i, d := range dirs {
		maps[i] = mapFor(core.PackageSpec{Kind: "oil-silicon", Direction: d})
	}
	fmt.Println("single sensor trained on one direction, evaluated on all:")
	fmt.Println("  trained on      placed in   err(own)  err(worst)")
	for i, d := range dirs {
		placed, own, err := sensors.Place(cands, maps[i:i+1], 1)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for _, m := range maps {
			if e := sensors.HotSpotError(m, placed); e > worst {
				worst = e
			}
		}
		fmt.Printf("  %-14s  %-9s  %8.2f  %10.2f\n", d, placed[0].Block, own, worst)
	}
	joint, jointErr, err := sensors.Place(cands, maps, 2)
	if err != nil {
		log.Fatal(err)
	}
	blocks := make([]string, len(joint))
	for i, s := range joint {
		blocks[i] = s.Block
	}
	fmt.Printf("\ntwo sensors trained on all directions: %v, worst error %.2f °C\n", blocks, jointErr)
	fmt.Println("(a sensor placed from a single IR setup can miss the real hot spot — §5.4)")

	_ = hotspot.Directions // keep the import explicit about what varies
}
