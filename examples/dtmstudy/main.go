// dtmstudy sweeps dynamic-thermal-management parameters under both cooling
// configurations, quantifying the paper's §5.1 point: a DTM policy tuned on
// IR (oil) measurements is mis-tuned for the real air-cooled package —
// engagement durations, trigger margins and resulting performance penalties
// all shift.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dtm"
	"repro/internal/floorplan"
	"repro/internal/trace"
)

func main() {
	fp := floorplan.EV6()
	names := fp.Names()

	// A bursty workload: 3 W into IntReg, 30 ms on / 70 ms off.
	tr, err := trace.PulseTrain(names, "IntReg", 3.0, 30e-3, 70e-3, 1e-3, 20)
	if err != nil {
		log.Fatal(err)
	}

	for _, kind := range []string{"air-sink", "oil-silicon"} {
		model, err := core.BuildModel(fp, core.PackageSpec{Kind: kind, Rconv: 1.0})
		if err != nil {
			log.Fatal(err)
		}
		// Trigger a fixed margin above this package's steady baseline so
		// both policies face the same headroom.
		avg := tr.Average()
		pm := map[string]float64{}
		for i, n := range names {
			pm[n] = avg[i]
		}
		vec, err := model.PowerVector(pm)
		if err != nil {
			log.Fatal(err)
		}
		base := model.SteadyState(vec)
		trigger := base.BlockC("IntReg") + 3

		fmt.Printf("%s  (baseline IntReg %.1f °C, trigger %.1f °C)\n", kind, base.BlockC("IntReg"), trigger)
		fmt.Println("  engage(ms)  engaged(s)  triggers  peak(°C)  perf-penalty")
		for _, engageMs := range []float64{2, 5, 20, 60} {
			metrics, _, err := dtm.Run(dtm.Config{
				Model: model,
				Trace: tr,
				Policy: dtm.Policy{
					TriggerC:       trigger,
					EngageDuration: engageMs * 1e-3,
					SampleInterval: 1e-3,
					PerfFactor:     0.5,
					Actuator:       dtm.FetchGate,
				},
				EmergencyC:    trigger + 5,
				InitialSteady: true,
			}, "")
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %9.0f  %10.3f  %8d  %8.1f  %11.1f%%\n",
				engageMs, metrics.EngagedTime, metrics.Engagements, metrics.PeakC, 100*metrics.PerfPenalty)
		}
		fmt.Println()
	}
	fmt.Println("Reading: the oil configuration needs long engagements to make any dent")
	fmt.Println("(slow cool-down), while short engagements already serve the air-sink —")
	fmt.Println("tuning DTM on IR measurements overestimates the needed engagement duration.")
}
