// dtmstudy sweeps dynamic-thermal-management parameters under both cooling
// configurations through the closed-loop scenario engine, quantifying the
// paper's §5.1 point: a DTM policy tuned on IR (oil) measurements is
// mis-tuned for the real air-cooled package — engagement durations, trigger
// margins and resulting performance penalties all shift.
//
// The study runs one declarative scenario.Spec per package (each package's
// trigger sits a fixed margin above its own steady baseline, so both
// policies face the same headroom) and sweeps the engagement-duration axis
// of the policy grid in parallel.
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
)

func main() {
	// A bursty workload: 3 W into IntReg, 30 ms on / 70 ms off.
	burst := scenario.Phase{
		Name:     "burst",
		Duration: 2.0,
		Pulse:    &scenario.PulseSpec{Block: "IntReg", PeakW: 3, OnS: 30e-3, OffS: 70e-3},
	}
	packages := []scenario.PackageSpec{
		{Label: "air-sink", Kind: "air-sink", Rconv: 1.0},
		{Label: "oil-silicon", Kind: "oil-silicon", Rconv: 1.0},
	}

	for _, pkg := range packages {
		// Probe this package's steady baseline with a never-triggering cell.
		probe, err := scenario.Compile(&scenario.Spec{
			Interval: 1e-3, EmergencyC: 1e6, InitialSteady: true,
			Phases:   []scenario.Phase{burst},
			Packages: []scenario.PackageSpec{pkg},
			Policies: scenario.PolicyGrid{TriggerC: []float64{1e6}},
		}, scenario.Options{})
		if err != nil {
			log.Fatal(err)
		}
		baseline := probe.RunGrid(nil, 1, nil)[0].Metrics.InitialHotC
		trigger := baseline + 3

		// The study grid: one trigger, four engagement durations, closed
		// loop, fanned across the worker pool.
		spec := &scenario.Spec{
			Name: "dtmstudy/" + pkg.Label, Interval: 1e-3,
			EmergencyC: trigger + 5, InitialSteady: true,
			Phases:   []scenario.Phase{burst},
			Packages: []scenario.PackageSpec{pkg},
			Policies: scenario.PolicyGrid{
				TriggerC:        []float64{trigger},
				EngageDurationS: []float64{2e-3, 5e-3, 20e-3, 60e-3},
				PerfFactor:      []float64{0.5},
			},
		}
		compiled, err := scenario.Compile(spec, scenario.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s  (baseline hottest %.1f °C, trigger %.1f °C)\n", pkg.Label, baseline, trigger)
		fmt.Println("  engage(ms)  engaged(s)  triggers  peak(°C)  perf-penalty")
		for _, r := range compiled.RunGrid(nil, 0, nil) {
			if r.Err != nil {
				log.Fatal(r.Err)
			}
			m := r.Metrics
			fmt.Printf("  %9.0f  %10.3f  %8d  %8.1f  %11.1f%%\n",
				r.Cell.Policy.EngageDuration*1e3, m.EngagedS, m.Engagements, m.PeakC, 100*m.PerfPenalty)
		}
		fmt.Println()
	}
	fmt.Println("Reading: the oil configuration needs long engagements to make any dent")
	fmt.Println("(slow cool-down), while short engagements already serve the air-sink —")
	fmt.Println("tuning DTM on IR measurements overestimates the needed engagement duration.")
}
