#!/usr/bin/env bash
# profile.sh — capture a CPU profile of thermsvc under sweep-replay load.
#
# Starts thermsvc with its (off-by-default) pprof listener, drives a batch
# of trace-replay sweep requests at it, and captures a CPU profile covering
# that window. The profile lands in ./profiles/ and is ready for
# `go tool pprof`.
#
# Usage, from the repository root:
#
#	./scripts/profile.sh                    # 10 s profile under sweep load
#	SECONDS_PROFILED=30 ./scripts/profile.sh
#	SWEEP_SCENARIOS=64 ./scripts/profile.sh # wider sweep request
#
# Requires nothing beyond the Go toolchain and curl; ports are loopback-only.
set -euo pipefail
cd "$(dirname "$0")/.."

SECONDS_PROFILED="${SECONDS_PROFILED:-10}"
SWEEP_SCENARIOS="${SWEEP_SCENARIOS:-32}"
ADDR="${ADDR:-localhost:18080}"
PPROF_ADDR="${PPROF_ADDR:-localhost:16060}"
OUTDIR="${OUTDIR:-profiles}"

mkdir -p "$OUTDIR"
out="$OUTDIR/thermsvc-cpu-$(date -u +%Y%m%dT%H%M%SZ).pprof"

echo "== building thermsvc"
go build -o "$OUTDIR/thermsvc.bin" ./cmd/thermsvc

"$OUTDIR/thermsvc.bin" -addr "$ADDR" -pprof "$PPROF_ADDR" &
svc=$!
trap 'kill "$svc" 2>/dev/null || true; wait "$svc" 2>/dev/null || true' EXIT

# Wait for readiness.
for _ in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null

# Build one sweep request: N identical oil-silicon trace scenarios (the
# lockstep batched replay path) — python3 only formats JSON.
req="$OUTDIR/sweep-request.json"
python3 - "$SWEEP_SCENARIOS" > "$req" <<'EOF'
import json, sys
n = int(sys.argv[1])
rows = [[0.5 + 2.5 * ((step // 4) % 2)] * 2 for step in range(40)]
scenario = {
    "model": {"floorplan": "ev6", "package": "oil-silicon", "rconv": 0.3, "secondary": True},
    "trace": {"names": ["IntReg", "L2"], "interval": 1e-4, "rows": rows},
}
print(json.dumps({"scenarios": [scenario] * n}))
EOF

echo "== driving sweep replays for ${SECONDS_PROFILED}s while profiling"
(
  end=$((SECONDS + SECONDS_PROFILED + 2))
  while [ "$SECONDS" -lt "$end" ]; do
    curl -sf -X POST -H 'Content-Type: application/json' \
      --data-binary @"$req" "http://$ADDR/v1/sweep" >/dev/null || true
  done
) &
load=$!

curl -sf -o "$out" "http://$PPROF_ADDR/debug/pprof/profile?seconds=$SECONDS_PROFILED"
wait "$load" 2>/dev/null || true

echo "wrote $out"
echo "inspect with: go tool pprof -top $OUTDIR/thermsvc.bin $out"
