#!/usr/bin/env bash
# docs_gate.sh — the CI documentation gate.
#
# Asserts, in order:
#   1. `go vet ./...` is clean (doc-adjacent static checks ride along);
#   2. every Go package in internal/, cmd/ and examples/ carries a package
#      doc comment: a comment line directly attached to the package clause
#      of at least one non-test file (the godoc attachment rule);
#   3. every relative markdown link in README.md, DESIGN.md and docs/*.md
#      resolves to a file or directory in the repository.
#
# Run from the repository root: ./scripts/docs_gate.sh
set -u
cd "$(dirname "$0")/.."
fail=0

echo "== go vet"
if ! go vet ./...; then
  echo "docs gate: go vet failed"
  fail=1
fi

echo "== package doc comments"
for dir in internal/*/ cmd/*/ examples/*/; do
  [ -d "$dir" ] || continue
  ls "$dir"*.go >/dev/null 2>&1 || continue
  ok=0
  for f in "$dir"*.go; do
    case "$f" in *_test.go) continue ;; esac
    # A doc comment is a // line (or block-comment end) immediately above
    # the package clause.
    if awk '
      /^package[ \t]/ { if (prev ~ /^\/\// || prev ~ /\*\/[ \t]*$/) found = 1; exit }
      { if ($0 != "") prev = $0 }
      END { exit found ? 0 : 1 }
    ' "$f"; then
      ok=1
      break
    fi
  done
  if [ "$ok" -eq 0 ]; then
    echo "docs gate: package in $dir has no doc comment"
    fail=1
  fi
done

echo "== markdown links"
for md in README.md DESIGN.md docs/*.md; do
  [ -f "$md" ] || continue
  base=$(dirname "$md")
  # Relative links only: strip inline code spans, pull [text](target) pairs,
  # drop URLs and pure fragments.
  grep -o '\][(][^)]*[)]' "$md" | sed 's/^](//; s/)$//' | while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}
    [ -n "$path" ] || continue
    if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
      echo "docs gate: $md links to missing file: $target"
      echo "$md:$target" >> /tmp/docs_gate_broken.$$
    fi
  done
done
if [ -f "/tmp/docs_gate_broken.$$" ]; then
  rm -f "/tmp/docs_gate_broken.$$"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  echo "docs gate: FAILED"
  exit 1
fi
echo "docs gate: OK"
