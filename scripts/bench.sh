#!/usr/bin/env bash
# bench.sh — the solver benchmark harness.
#
# Runs the solver-path micro-benchmarks (the root EV6 benchmarks including
# the reduced-order step and streaming-session rows, the rcnet backend
# matrix with the N=16384/N=65536 reference-grid rows and the reduced
# streaming row, the linalg kernel benchmarks: numeric refactorization,
# solve-kernel widths, f32-vs-f64 factors, and the tstore telemetry-store
# group: ingest rows/s — gated at ≥1M rows/s on one core — plus rollup and
# raw query latency, and the fleet routing group: bounded-load ring
# lookups, proxy wire overhead against no-op backends, and the failover
# window p99 while the primary owner is dead) and emits BENCH_solver.json
# via cmd/benchreport:
# ns/op, B/op, allocs/op, custom metrics, GOMAXPROCS and the commit hash.
#
# The suite runs once per GOMAXPROCS value in BENCH_PROCS (default "1 4"):
# the single-core run is the per-core trajectory row, the multicore run
# exercises the level-parallel factorization and within-panel splits. Each
# run chains into the report via -prev, so the history array carries one
# entry per (commit, gomaxprocs) and baselines/speedups match per core
# count (see cmd/benchreport).
#
# Usage, from the repository root:
#
#	./scripts/bench.sh                   # full run, rewrites BENCH_solver.json
#	BENCHTIME=1x ./scripts/bench.sh      # CI smoke: one iteration per benchmark
#	BENCH_PROCS=1 ./scripts/bench.sh     # single-core only
#	OUT=/tmp/b.json ./scripts/bench.sh   # write elsewhere
set -euo pipefail
cd "$(dirname "$0")/.."

# Per-group iteration counts: the EV6 step/solve benchmarks are ~1 µs/op and
# need many iterations for a stable number, the sweep is ~0.7 ms/op, the
# rcnet backend matrix spans ~20 µs to ~330 ms rows (dense N=2048 transient),
# and the linalg kernel rows sit at ~5-25 ms. Setting BENCHTIME overrides
# all of them (CI smoke passes BENCHTIME=1x).
STEP_BENCHTIME="${BENCHTIME:-50000x}"
SWEEP_BENCHTIME="${BENCHTIME:-1000x}"
RCNET_BENCHTIME="${BENCHTIME:-20x}"
KERNEL_BENCHTIME="${BENCHTIME:-20x}"
TSTORE_BENCHTIME="${BENCHTIME:-200x}"
FLEET_BENCHTIME="${BENCHTIME:-200x}"
OUT="${OUT:-BENCH_solver.json}"
BENCH_PROCS="${BENCH_PROCS:-1 4}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"

for procs in $BENCH_PROCS; do
  : > "$tmp"
  echo "=== GOMAXPROCS=$procs ==="

  echo "== root solver benchmarks (-benchtime $STEP_BENCHTIME)"
  GOMAXPROCS="$procs" go test -run '^$' -bench 'BenchmarkTransientStepBE$|BenchmarkSteadyStateSolve$|BenchmarkReducedStepBE$|BenchmarkReducedSessionStream$' \
    -benchmem -benchtime "$STEP_BENCHTIME" . | tee -a "$tmp"

  echo "== trace replay sweep (-benchtime $SWEEP_BENCHTIME)"
  GOMAXPROCS="$procs" go test -run '^$' -bench 'BenchmarkTraceReplaySweep$' \
    -benchmem -benchtime "$SWEEP_BENCHTIME" . | tee -a "$tmp"

  echo "== rcnet backend benchmarks (-benchtime $RCNET_BENCHTIME)"
  GOMAXPROCS="$procs" go test -run '^$' -bench 'BenchmarkBackendSteadyStateSolveOnly|BenchmarkBackendTransientBE|BenchmarkBackendReducedStream' \
    -benchmem -benchtime "$RCNET_BENCHTIME" ./internal/rcnet | tee -a "$tmp"

  echo "== linalg kernel benchmarks (-benchtime $KERNEL_BENCHTIME)"
  GOMAXPROCS="$procs" go test -run '^$' -bench 'BenchmarkCholeskyFactorNumeric|BenchmarkSolveKernelWidths|BenchmarkCholeskySolvePrecision' \
    -benchmem -benchtime "$KERNEL_BENCHTIME" ./internal/linalg | tee -a "$tmp"

  echo "== tstore telemetry store benchmarks (-benchtime $TSTORE_BENCHTIME)"
  GOMAXPROCS="$procs" go test -run '^$' -bench 'BenchmarkTstore' \
    -benchmem -benchtime "$TSTORE_BENCHTIME" ./internal/tstore | tee -a "$tmp"

  echo "== fleet routing benchmarks (-benchtime $FLEET_BENCHTIME)"
  GOMAXPROCS="$procs" go test -run '^$' -bench 'BenchmarkFleet' \
    -benchmem -benchtime "$FLEET_BENCHTIME" ./internal/fleet | tee -a "$tmp"

  prev_args=()
  if [ -f "$OUT" ]; then
    prev_args=(-prev "$OUT")
  fi
  GOMAXPROCS="$procs" go run ./cmd/benchreport -commit "$commit" "${prev_args[@]}" -out "$OUT" < "$tmp"
done
echo "wrote $OUT"
