#!/usr/bin/env bash
# bench.sh — the solver benchmark harness.
#
# Runs the solver-path micro-benchmarks (the root EV6 benchmarks plus the
# rcnet backend matrix, now including the N=16384/N=65536 reference-grid
# rows) and emits BENCH_solver.json via cmd/benchreport: ns/op, B/op,
# allocs/op, custom metrics, GOMAXPROCS and the commit hash. When
# BENCH_solver.json already exists, its numbers are embedded as the baseline
# (per-benchmark speedups vs the previous run) AND every prior run is
# carried forward in the report's `history` array with this run appended —
# the machine-readable perf trajectory across PRs.
#
# Usage, from the repository root:
#
#	./scripts/bench.sh                 # full run, rewrites BENCH_solver.json
#	BENCHTIME=1x ./scripts/bench.sh    # CI smoke: one iteration per benchmark
#	OUT=/tmp/b.json ./scripts/bench.sh # write elsewhere
set -euo pipefail
cd "$(dirname "$0")/.."

# Per-group iteration counts: the EV6 step/solve benchmarks are ~1 µs/op and
# need many iterations for a stable number, the sweep is ~0.7 ms/op, and the
# rcnet backend matrix spans ~20 µs to ~330 ms rows (dense N=2048 transient).
# Setting BENCHTIME overrides all three (CI smoke passes BENCHTIME=1x).
STEP_BENCHTIME="${BENCHTIME:-50000x}"
SWEEP_BENCHTIME="${BENCHTIME:-1000x}"
RCNET_BENCHTIME="${BENCHTIME:-20x}"
OUT="${OUT:-BENCH_solver.json}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "== root solver benchmarks (-benchtime $STEP_BENCHTIME)"
go test -run '^$' -bench 'BenchmarkTransientStepBE$|BenchmarkSteadyStateSolve$' \
  -benchmem -benchtime "$STEP_BENCHTIME" . | tee -a "$tmp"

echo "== trace replay sweep (-benchtime $SWEEP_BENCHTIME)"
go test -run '^$' -bench 'BenchmarkTraceReplaySweep$' \
  -benchmem -benchtime "$SWEEP_BENCHTIME" . | tee -a "$tmp"

echo "== rcnet backend benchmarks (-benchtime $RCNET_BENCHTIME)"
go test -run '^$' -bench 'BenchmarkBackendSteadyStateSolveOnly|BenchmarkBackendTransientBE' \
  -benchmem -benchtime "$RCNET_BENCHTIME" ./internal/rcnet | tee -a "$tmp"

commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
prev_args=()
if [ -f "$OUT" ]; then
  prev_args=(-prev "$OUT")
fi
go run ./cmd/benchreport -commit "$commit" "${prev_args[@]}" -out "$OUT" < "$tmp"
echo "wrote $OUT"
