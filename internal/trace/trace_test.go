package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

var names = []string{"a", "b", "c"}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 1); err == nil {
		t.Fatal("no names should fail")
	}
	if _, err := New(names, 0); err == nil {
		t.Fatal("zero interval should fail")
	}
	if _, err := New([]string{"x", "x"}, 1); err == nil {
		t.Fatal("duplicate names should fail")
	}
	if _, err := New([]string{"x", ""}, 1); err == nil {
		t.Fatal("empty name should fail")
	}
}

func TestAppendAndAt(t *testing.T) {
	tr, _ := New(names, 0.5)
	if err := tr.Append([]float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append([]float64{4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append([]float64{1, 2}); err == nil {
		t.Fatal("short row should fail")
	}
	if err := tr.Append([]float64{-1, 0, 0}); err == nil {
		t.Fatal("negative power should fail")
	}
	if tr.Duration() != 1.0 {
		t.Fatalf("duration %g", tr.Duration())
	}
	if tr.At(0)[0] != 1 || tr.At(0.7)[0] != 4 || tr.At(99)[0] != 4 {
		t.Fatal("At indexing wrong")
	}
	if tr.At(-1)[0] != 1 {
		t.Fatal("At should clamp below")
	}
}

func TestAverageAndScale(t *testing.T) {
	tr, _ := New(names, 1)
	tr.Append([]float64{2, 0, 0})
	tr.Append([]float64{0, 4, 0})
	avg := tr.Average()
	if avg[0] != 1 || avg[1] != 2 || avg[2] != 0 {
		t.Fatalf("avg %v", avg)
	}
	if tr.TotalAverage() != 3 {
		t.Fatalf("total avg %g", tr.TotalAverage())
	}
	tr.Scale(0.5)
	if tr.Rows[0][0] != 1 {
		t.Fatal("scale wrong")
	}
}

func TestStepBuilder(t *testing.T) {
	tr, err := Step(names, map[string]float64{"b": 7}, 2.0, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rows) != 8 {
		t.Fatalf("%d rows", len(tr.Rows))
	}
	for _, row := range tr.Rows {
		if row[1] != 7 || row[0] != 0 {
			t.Fatal("step content wrong")
		}
	}
	if _, err := Step(names, map[string]float64{"zz": 1}, 1, 0.5); err == nil {
		t.Fatal("unknown block should fail")
	}
}

func TestPulseTrain(t *testing.T) {
	// The paper's §4.1.2 schedule: 15 ms on, 85 ms off.
	tr, err := PulseTrain(names, "a", 2.0, 15e-3, 85e-3, 1e-3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rows) != 300 {
		t.Fatalf("%d rows, want 300", len(tr.Rows))
	}
	// Duty cycle 15%: average = 0.3 W.
	if avg := tr.Average()[0]; math.Abs(avg-0.3) > 1e-12 {
		t.Fatalf("average %g, want 0.3", avg)
	}
	if tr.Rows[0][0] != 2 || tr.Rows[20][0] != 0 || tr.Rows[100][0] != 2 {
		t.Fatal("pulse pattern wrong")
	}
	if _, err := PulseTrain(names, "zz", 1, 1, 1, 1, 1); err == nil {
		t.Fatal("unknown block should fail")
	}
}

func TestSwitchBuilder(t *testing.T) {
	// Fig. 9: IntReg for 10 ms, then FPMap.
	tr, err := Switch(names, "a", "c", 2.0, 10e-3, 20e-3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Rows) != 20 {
		t.Fatalf("%d rows", len(tr.Rows))
	}
	if tr.Rows[5][0] != 2 || tr.Rows[5][2] != 0 {
		t.Fatal("pre-switch wrong")
	}
	if tr.Rows[15][0] != 0 || tr.Rows[15][2] != 2 {
		t.Fatal("post-switch wrong")
	}
}

func TestRepeat(t *testing.T) {
	tr, _ := New(names, 1)
	tr.Append([]float64{1, 0, 0})
	r := tr.Repeat(5)
	if len(r.Rows) != 5 || r.Duration() != 5 {
		t.Fatal("repeat wrong")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	tr, _ := PulseTrain(names, "b", 1.5, 0.01, 0.02, 0.005, 2)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interval != tr.Interval {
		t.Fatalf("interval lost: %g vs %g", got.Interval, tr.Interval)
	}
	if len(got.Rows) != len(tr.Rows) {
		t.Fatalf("rows %d vs %d", len(got.Rows), len(tr.Rows))
	}
	for i := range tr.Rows {
		for j := range tr.Rows[i] {
			if math.Abs(got.Rows[i][j]-tr.Rows[i][j]) > 1e-9 {
				t.Fatalf("row %d col %d: %g vs %g", i, j, got.Rows[i][j], tr.Rows[i][j])
			}
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader(""), 1); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := Read(strings.NewReader("a b\n1 x\n"), 1); err == nil {
		t.Fatal("bad number should fail")
	}
	if _, err := Read(strings.NewReader("a b\n1 2 3\n"), 1); err == nil {
		t.Fatal("row length mismatch should fail")
	}
	if _, err := Read(strings.NewReader("a b\n1 2\n"), 0); err == nil {
		t.Fatal("missing interval should fail")
	}
	// Default interval is used when no comment is present.
	tr, err := Read(strings.NewReader("a b\n1 2\n"), 0.125)
	if err != nil || tr.Interval != 0.125 {
		t.Fatalf("default interval: %v %g", err, tr.Interval)
	}
}

func TestMapAccessor(t *testing.T) {
	tr, _ := New(names, 1)
	tr.Append([]float64{1, 2, 3})
	m := tr.Map(0)
	if m["a"] != 1 || m["c"] != 3 {
		t.Fatalf("map %v", m)
	}
}

// Property: PulseTrain average equals watts·duty for random parameters.
func TestPulseTrainAverageProperty(t *testing.T) {
	f := func(onRaw, offRaw uint8) bool {
		on := 1 + int(onRaw)%20
		off := 1 + int(offRaw)%20
		tr, err := PulseTrain(names, "a", 4.0, float64(on), float64(off), 1, 3)
		if err != nil {
			return false
		}
		want := 4.0 * float64(on) / float64(on+off)
		return math.Abs(tr.Average()[0]-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
