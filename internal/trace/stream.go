package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// RowReader streams power rows one at a time. It is the contract between
// trace sources (files, network bodies, in-memory traces) and the
// trace-driven simulation layer: a transient replay can begin before the
// full trace exists, and memory stays O(one row) for streamed sources.
//
// Names defines the column order, Interval the per-row duration in seconds.
// Next fills dst (length len(Names)) with the next power row and returns
// io.EOF when the trace is exhausted. Implementations validate rows: every
// power is finite and non-negative.
type RowReader interface {
	Names() []string
	Interval() float64
	Next(dst []float64) error
}

// Reader returns a RowReader cursor over the in-memory trace. Each call
// returns an independent cursor positioned at the first row. Replaying a
// trace through its Reader is bit-identical to replaying the same rows
// through a streaming Decoder: both feed the same values at the same step
// size into the same integrator path.
func (p *PowerTrace) Reader() RowReader {
	return &traceCursor{p: p}
}

type traceCursor struct {
	p *PowerTrace
	i int
}

func (c *traceCursor) Names() []string   { return c.p.Names }
func (c *traceCursor) Interval() float64 { return c.p.Interval }
func (c *traceCursor) Next(dst []float64) error {
	if c.i >= len(c.p.Rows) {
		return io.EOF
	}
	if len(dst) != len(c.p.Names) {
		return fmt.Errorf("trace: destination has %d slots, want %d", len(dst), len(c.p.Names))
	}
	copy(dst, c.p.Rows[c.i])
	c.i++
	return nil
}

// Format selects the wire format of a streamed trace.
type Format int

const (
	// FormatAuto sniffs the format from the first data line: '{' starts
	// NDJSON, a comma in the header means CSV, anything else is ptrace.
	FormatAuto Format = iota
	// FormatPTrace is the HotSpot ".ptrace" format: optional "# interval
	// <v> s" comment, a whitespace-separated header of block names, then
	// one whitespace-separated power row per interval.
	FormatPTrace
	// FormatCSV is the same layout with comma-separated fields.
	FormatCSV
	// FormatNDJSON is newline-delimited JSON: a header object
	// {"names":["A","B"],"interval":1e-3} followed by one JSON array of
	// powers per line.
	FormatNDJSON
)

func (f Format) String() string {
	switch f {
	case FormatAuto:
		return "auto"
	case FormatPTrace:
		return "ptrace"
	case FormatCSV:
		return "csv"
	case FormatNDJSON:
		return "ndjson"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// DecoderOptions configure a streaming Decoder.
type DecoderOptions struct {
	// Format selects the wire format (default FormatAuto).
	Format Format
	// DefaultInterval is used when the stream does not carry an interval
	// (no "# interval" comment in ptrace/CSV, no "interval" field in the
	// NDJSON header).
	DefaultInterval float64
	// MaxColumns bounds the header width (default 4096). A streamed source
	// is untrusted input; the bound keeps a hostile header from allocating
	// per-row buffers of arbitrary size.
	MaxColumns int
}

// ndjsonHeader is the first line of an NDJSON trace stream.
type ndjsonHeader struct {
	Names    []string `json:"names"`
	Interval float64  `json:"interval"`
}

// Decoder incrementally decodes a power trace from a stream. It reads the
// header eagerly (so Names and Interval are available immediately) and then
// yields one validated row per Next call. Memory use is O(one row)
// regardless of trace length.
type Decoder struct {
	names    []string
	interval float64
	format   Format
	sc       *bufio.Scanner
	line     int
	rows     int
}

// maxLineBytes bounds a single input line (matches the legacy Read limit).
const maxLineBytes = 1 << 20

// NewDecoder reads the stream header and returns a row decoder. It fails on
// an empty stream, a malformed header, duplicate or empty column names, or
// a missing interval.
func NewDecoder(r io.Reader, opt DecoderOptions) (*Decoder, error) {
	maxCols := opt.MaxColumns
	if maxCols <= 0 {
		maxCols = 4096
	}
	d := &Decoder{
		format:   opt.Format,
		interval: opt.DefaultInterval,
		sc:       bufio.NewScanner(r),
	}
	d.sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	for {
		text, err := d.nextLine()
		if err == io.EOF {
			return nil, fmt.Errorf("trace: empty stream (no header)")
		}
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(text, "#") {
			var v float64
			if n, _ := fmt.Sscanf(text, "# interval %g s", &v); n == 1 && isFinitePositive(v) {
				d.interval = v
			}
			continue
		}
		if d.format == FormatAuto {
			d.format = sniffFormat(text)
		}
		var names []string
		switch d.format {
		case FormatNDJSON:
			var hdr ndjsonHeader
			if err := json.Unmarshal([]byte(text), &hdr); err != nil {
				return nil, fmt.Errorf("trace: line %d: NDJSON header: %v", d.line, err)
			}
			names = hdr.Names
			if hdr.Interval != 0 {
				if !isFinitePositive(hdr.Interval) {
					return nil, fmt.Errorf("trace: line %d: invalid interval %g", d.line, hdr.Interval)
				}
				d.interval = hdr.Interval
			}
		case FormatCSV:
			names = splitCSV(text)
		default:
			names = strings.Fields(text)
		}
		if len(names) > maxCols {
			return nil, fmt.Errorf("trace: header has %d columns, limit %d", len(names), maxCols)
		}
		if err := checkNames(names); err != nil {
			return nil, err
		}
		if !isFinitePositive(d.interval) {
			return nil, fmt.Errorf("trace: no interval specified (and no usable default)")
		}
		d.names = names
		return d, nil
	}
}

// Names returns the column (block) names.
func (d *Decoder) Names() []string { return d.names }

// Interval returns the per-row duration in seconds.
func (d *Decoder) Interval() float64 { return d.interval }

// Rows returns the number of rows decoded so far.
func (d *Decoder) Rows() int { return d.rows }

// Next decodes the next power row into dst (length must equal len(Names)).
// It returns io.EOF at end of stream, and a descriptive error for malformed
// rows, non-finite powers (NaN/Inf), or negative powers.
func (d *Decoder) Next(dst []float64) error {
	if len(dst) != len(d.names) {
		return fmt.Errorf("trace: destination has %d slots, want %d", len(dst), len(d.names))
	}
	text, err := d.nextLine()
	if err != nil {
		return err
	}
	// Comment lines between rows are skipped (the writer only emits one up
	// front, but hand-edited traces interleave them).
	for strings.HasPrefix(text, "#") {
		if text, err = d.nextLine(); err != nil {
			return err
		}
	}
	switch d.format {
	case FormatNDJSON:
		var row []float64
		if err := json.Unmarshal([]byte(text), &row); err != nil {
			return fmt.Errorf("trace: line %d: %v", d.line, err)
		}
		if len(row) != len(d.names) {
			return fmt.Errorf("trace: line %d: row has %d values, want %d", d.line, len(row), len(d.names))
		}
		copy(dst, row)
	default:
		var fields []string
		if d.format == FormatCSV {
			fields = splitCSV(text)
		} else {
			fields = strings.Fields(text)
		}
		if len(fields) != len(d.names) {
			return fmt.Errorf("trace: line %d: row has %d values, want %d", d.line, len(fields), len(d.names))
		}
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return fmt.Errorf("trace: line %d: %v", d.line, err)
			}
			dst[i] = v
		}
	}
	for i, v := range dst {
		if err := checkPower(v, i); err != nil {
			return fmt.Errorf("trace: line %d: %v", d.line, err)
		}
	}
	d.rows++
	return nil
}

// nextLine returns the next non-blank line, or io.EOF.
func (d *Decoder) nextLine() (string, error) {
	for d.sc.Scan() {
		d.line++
		text := strings.TrimSpace(d.sc.Text())
		if text == "" {
			continue
		}
		return text, nil
	}
	if err := d.sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

// sniffFormat guesses the wire format from the first data line.
func sniffFormat(text string) Format {
	switch {
	case strings.HasPrefix(text, "{") || strings.HasPrefix(text, "["):
		return FormatNDJSON
	case strings.Contains(text, ","):
		return FormatCSV
	default:
		return FormatPTrace
	}
}

// splitCSV splits a comma-separated line and trims surrounding space from
// each field. (Power traces never contain quoted fields, so a full CSV
// parser would only add failure modes.)
func splitCSV(text string) []string {
	parts := strings.Split(text, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// checkNames validates header names: non-empty, no duplicates.
func checkNames(names []string) error {
	if len(names) == 0 {
		return fmt.Errorf("trace: no block names")
	}
	seen := make(map[string]bool, len(names))
	for i, n := range names {
		if n == "" {
			return fmt.Errorf("trace: empty block name at column %d", i)
		}
		if seen[n] {
			return fmt.Errorf("trace: duplicate block name %q", n)
		}
		seen[n] = true
	}
	return nil
}

// checkPower validates one power value: finite and non-negative.
func checkPower(v float64, col int) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("non-finite power %g in column %d", v, col)
	}
	if v < 0 {
		return fmt.Errorf("negative power %g in column %d", v, col)
	}
	return nil
}

func isFinitePositive(v float64) bool {
	return v > 0 && !math.IsInf(v, 0)
}

// DecodeAll drains a stream into an in-memory PowerTrace. It is the
// loaded-trace counterpart of streaming a Decoder row by row; replaying
// either through the simulation layer produces bit-identical results.
func DecodeAll(r io.Reader, opt DecoderOptions) (*PowerTrace, error) {
	d, err := NewDecoder(r, opt)
	if err != nil {
		return nil, err
	}
	tr, err := New(d.Names(), d.Interval())
	if err != nil {
		return nil, err
	}
	row := make([]float64, len(d.Names()))
	for {
		err := d.Next(row)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := tr.Append(row); err != nil {
			return nil, err
		}
	}
	if len(tr.Rows) == 0 {
		return nil, fmt.Errorf("trace: empty input")
	}
	return tr, nil
}
