package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestReadTelemetryRows(t *testing.T) {
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	enc.Encode(TelemetryHeader{Series: "run/cell0/hot", FromNs: 0, ToNs: 5_000_000})
	enc.Encode(TelemetryRow{TNs: 0, V: 345.25})
	enc.Encode(TelemetryRow{TNs: 1_000_000, V: 346.5})
	enc.Encode(TelemetryTrailer{Done: true, Rows: 2})

	res, err := ReadTelemetry(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Header.Series != "run/cell0/hot" || len(res.Rows) != 2 || len(res.Buckets) != 0 {
		t.Fatalf("decoded %+v", res)
	}
	if res.Rows[1].TNs != 1_000_000 || res.Rows[1].V != 346.5 {
		t.Fatalf("row 1: %+v", res.Rows[1])
	}
}

func TestReadTelemetryBuckets(t *testing.T) {
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	enc.Encode(TelemetryHeader{Series: "s", FromNs: 0, ToNs: 100, DownsampleNs: 10})
	enc.Encode(TelemetryBucket{StartNs: 0, Count: 3, Min: 1, Max: 3, Mean: 2, Sum: 6})
	enc.Encode(TelemetryTrailer{Done: true, Rows: 1})
	res, err := ReadTelemetry(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buckets) != 1 || res.Buckets[0].Sum != 6 {
		t.Fatalf("decoded %+v", res)
	}
}

func TestReadTelemetryRejectsTruncation(t *testing.T) {
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	enc.Encode(TelemetryHeader{Series: "s", FromNs: 0, ToNs: 100})
	enc.Encode(TelemetryRow{TNs: 1, V: 2})
	full := sb.String()

	if _, err := ReadTelemetry(strings.NewReader(full)); err == nil {
		t.Fatal("stream without trailer accepted")
	}
	if _, err := ReadTelemetry(strings.NewReader("")); err == nil {
		t.Fatal("empty stream accepted")
	}
	bad := full + `{"done":true,"rows":7}` + "\n"
	if _, err := ReadTelemetry(strings.NewReader(bad)); err == nil {
		t.Fatal("trailer row-count mismatch accepted")
	}
	if _, err := ReadTelemetry(strings.NewReader("{\"series\":\"s\"}\nnot json\n")); err == nil {
		t.Fatal("garbage line accepted")
	}
}
