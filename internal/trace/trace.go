// Package trace holds per-block power traces: a sequence of power vectors
// sampled at a fixed interval, as consumed by trace-driven thermal
// simulation (the paper's §5 co-simulation inputs). It reads and writes the
// HotSpot ".ptrace" interchange format (a header of block names followed by
// whitespace-separated rows), decodes untrusted ptrace/CSV/NDJSON streams
// incrementally (DESIGN.md §5.2), and provides the synthetic step and
// pulse-train builders used by the paper's controlled experiments
// (Figs. 6, 8, 9).
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// PowerTrace is a fixed-interval per-block power schedule.
type PowerTrace struct {
	// Names are the block names, defining the column order.
	Names []string
	// Interval is the sampling interval in seconds.
	Interval float64
	// Rows holds one power vector (W) per interval.
	Rows [][]float64

	index map[string]int
}

// New creates an empty trace for the given block names and interval.
func New(names []string, interval float64) (*PowerTrace, error) {
	if err := checkNames(names); err != nil {
		return nil, err
	}
	if !isFinitePositive(interval) {
		return nil, fmt.Errorf("trace: invalid interval %g (want finite and positive)", interval)
	}
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	cp := make([]string, len(names))
	copy(cp, names)
	return &PowerTrace{Names: cp, Interval: interval, index: idx}, nil
}

// Column returns the column index of the named block, or -1.
func (p *PowerTrace) Column(name string) int {
	if i, ok := p.index[name]; ok {
		return i
	}
	return -1
}

// Append adds a row (copied). The row length must match the name count, and
// every power must be finite and non-negative.
func (p *PowerTrace) Append(row []float64) error {
	if len(row) != len(p.Names) {
		return fmt.Errorf("trace: row has %d values, want %d", len(row), len(p.Names))
	}
	for i, v := range row {
		if err := checkPower(v, i); err != nil {
			return fmt.Errorf("trace: %v", err)
		}
	}
	cp := make([]float64, len(row))
	copy(cp, row)
	p.Rows = append(p.Rows, cp)
	return nil
}

// Duration returns the total trace duration in seconds.
func (p *PowerTrace) Duration() float64 { return float64(len(p.Rows)) * p.Interval }

// At returns the power vector in effect at time t (clamped to the trace
// bounds). The returned slice is shared; do not modify.
func (p *PowerTrace) At(t float64) []float64 {
	if len(p.Rows) == 0 {
		panic("trace: empty trace")
	}
	i := int(t / p.Interval)
	if i < 0 {
		i = 0
	}
	if i >= len(p.Rows) {
		i = len(p.Rows) - 1
	}
	return p.Rows[i]
}

// Average returns the time-average power per block — the paper uses the
// pulse-train average to warm the die to a steady operating point before
// short-term transient experiments (§4.1.2).
func (p *PowerTrace) Average() []float64 {
	avg := make([]float64, len(p.Names))
	if len(p.Rows) == 0 {
		return avg
	}
	for _, row := range p.Rows {
		for i, v := range row {
			avg[i] += v
		}
	}
	for i := range avg {
		avg[i] /= float64(len(p.Rows))
	}
	return avg
}

// TotalAverage returns the time-average total chip power.
func (p *PowerTrace) TotalAverage() float64 {
	var s float64
	for _, v := range p.Average() {
		s += v
	}
	return s
}

// Scale multiplies every sample by f (in place).
func (p *PowerTrace) Scale(f float64) {
	for _, row := range p.Rows {
		for i := range row {
			row[i] *= f
		}
	}
}

// Repeat returns a new trace with the rows repeated n times.
func (p *PowerTrace) Repeat(n int) *PowerTrace {
	out, _ := New(p.Names, p.Interval)
	for k := 0; k < n; k++ {
		for _, row := range p.Rows {
			_ = out.Append(row)
		}
	}
	return out
}

// Map converts a row into a name→power map.
func (p *PowerTrace) Map(row int) map[string]float64 {
	out := make(map[string]float64, len(p.Names))
	for i, n := range p.Names {
		out[n] = p.Rows[row][i]
	}
	return out
}

// Step builds a constant trace: the named blocks dissipate the given powers
// for the whole duration, everything else zero.
func Step(names []string, power map[string]float64, duration, interval float64) (*PowerTrace, error) {
	tr, err := New(names, interval)
	if err != nil {
		return nil, err
	}
	row := make([]float64, len(names))
	for name, w := range power {
		c := tr.Column(name)
		if c < 0 {
			return nil, fmt.Errorf("trace: unknown block %q", name)
		}
		row[c] = w
	}
	steps := int(duration/interval + 0.5)
	for i := 0; i < steps; i++ {
		if err := tr.Append(row); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// PulseTrain builds the paper's §4.1.2 schedule: the named block dissipates
// watts for onTime, then zero for offTime, repeated `periods` times.
func PulseTrain(names []string, block string, watts, onTime, offTime, interval float64, periods int) (*PowerTrace, error) {
	tr, err := New(names, interval)
	if err != nil {
		return nil, err
	}
	c := tr.Column(block)
	if c < 0 {
		return nil, fmt.Errorf("trace: unknown block %q", block)
	}
	on := make([]float64, len(names))
	on[c] = watts
	off := make([]float64, len(names))
	nOn := int(onTime/interval + 0.5)
	nOff := int(offTime/interval + 0.5)
	for k := 0; k < periods; k++ {
		for i := 0; i < nOn; i++ {
			if err := tr.Append(on); err != nil {
				return nil, err
			}
		}
		for i := 0; i < nOff; i++ {
			if err := tr.Append(off); err != nil {
				return nil, err
			}
		}
	}
	return tr, nil
}

// Switch builds the paper's Fig. 9 schedule: blockA dissipates watts for
// tSwitch seconds, then blockB dissipates watts for the remaining duration.
func Switch(names []string, blockA, blockB string, watts, tSwitch, duration, interval float64) (*PowerTrace, error) {
	tr, err := New(names, interval)
	if err != nil {
		return nil, err
	}
	ca, cb := tr.Column(blockA), tr.Column(blockB)
	if ca < 0 || cb < 0 {
		return nil, fmt.Errorf("trace: unknown block %q or %q", blockA, blockB)
	}
	rowA := make([]float64, len(names))
	rowA[ca] = watts
	rowB := make([]float64, len(names))
	rowB[cb] = watts
	steps := int(duration/interval + 0.5)
	switchStep := int(tSwitch/interval + 0.5)
	for i := 0; i < steps; i++ {
		row := rowA
		if i >= switchStep {
			row = rowB
		}
		if err := tr.Append(row); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// Write emits the trace in HotSpot ".ptrace" format: a header row of names
// followed by one whitespace-separated power row per interval. The interval
// is recorded in a leading comment.
func (p *PowerTrace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# interval %g s\n", p.Interval)
	fmt.Fprintln(bw, strings.Join(p.Names, "\t"))
	for _, row := range p.Rows {
		for i, v := range row {
			if i > 0 {
				bw.WriteByte('\t')
			}
			fmt.Fprintf(bw, "%.6g", v)
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// Read parses the ".ptrace" format written by Write. A missing interval
// comment defaults the interval to defaultInterval. It is a convenience
// wrapper over the streaming Decoder (see NewDecoder for incremental
// consumption of the same format).
func Read(r io.Reader, defaultInterval float64) (*PowerTrace, error) {
	return DecodeAll(r, DecoderOptions{Format: FormatPTrace, DefaultInterval: defaultInterval})
}
