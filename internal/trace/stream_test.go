package trace

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
)

// drain reads every row from a RowReader.
func drain(t *testing.T, rr RowReader) [][]float64 {
	t.Helper()
	var rows [][]float64
	dst := make([]float64, len(rr.Names()))
	for {
		err := rr.Next(dst)
		if err == io.EOF {
			return rows
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		cp := make([]float64, len(dst))
		copy(cp, dst)
		rows = append(rows, cp)
	}
}

func TestDecoderFormatsAgree(t *testing.T) {
	ptrace := "# interval 0.001 s\nA\tB\tC\n1 2 3\n4.5 0 6\n"
	csv := "# interval 0.001 s\nA,B,C\n1, 2, 3\n4.5,0,6\n"
	ndjson := `{"names":["A","B","C"],"interval":0.001}` + "\n[1,2,3]\n[4.5,0,6]\n"
	want := [][]float64{{1, 2, 3}, {4.5, 0, 6}}
	for name, input := range map[string]string{"ptrace": ptrace, "csv": csv, "ndjson": ndjson} {
		d, err := NewDecoder(strings.NewReader(input), DecoderOptions{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := strings.Join(d.Names(), ","); got != "A,B,C" {
			t.Fatalf("%s: names %q", name, got)
		}
		if d.Interval() != 0.001 {
			t.Fatalf("%s: interval %g", name, d.Interval())
		}
		rows := drain(t, d)
		if len(rows) != len(want) {
			t.Fatalf("%s: %d rows", name, len(rows))
		}
		for i := range want {
			for j := range want[i] {
				if rows[i][j] != want[i][j] {
					t.Fatalf("%s: row %d col %d: %g vs %g", name, i, j, rows[i][j], want[i][j])
				}
			}
		}
	}
}

func TestDecoderStreamMatchesCursorBitwise(t *testing.T) {
	names := []string{"a", "b", "c", "d"}
	tr, err := PulseTrain(names, "b", 3.7, 15e-3, 85e-3, 1e-3, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	d, err := NewDecoder(&buf, DecoderOptions{})
	if err != nil {
		t.Fatal(err)
	}
	streamed := drain(t, d)
	loaded := drain(t, tr.Reader())
	if len(streamed) != len(loaded) {
		t.Fatalf("row count: streamed %d vs loaded %d", len(streamed), len(loaded))
	}
	if d.Interval() != tr.Reader().Interval() {
		t.Fatalf("interval: %g vs %g", d.Interval(), tr.Interval)
	}
	for i := range loaded {
		for j := range loaded[i] {
			if streamed[i][j] != loaded[i][j] {
				t.Fatalf("row %d col %d: streamed %.17g vs loaded %.17g", i, j, streamed[i][j], loaded[i][j])
			}
		}
	}
}

func TestDecoderRejectsMalformedInput(t *testing.T) {
	cases := map[string]string{
		"empty stream":      "",
		"comments only":     "# interval 1 s\n",
		"NaN power":         "a b\nNaN 1\n",
		"Inf power":         "a b\n1 +Inf\n",
		"negative power":    "a b\n1 -2\n",
		"short row":         "a b\n1\n",
		"long row":          "a b\n1 2 3\n",
		"bad number":        "a b\n1 x\n",
		"duplicate names":   "a a\n1 2\n",
		"empty name":        "a,,c\n1,2,3\n",
		"ndjson bad header": `{"names":12}` + "\n",
		"ndjson bad row":    `{"names":["a"],"interval":1}` + "\n{\"x\":1}\n",
		"ndjson nan row":    `{"names":["a"],"interval":1}` + "\n[NaN]\n",
	}
	for label, input := range cases {
		d, err := NewDecoder(strings.NewReader(input), DecoderOptions{DefaultInterval: 1})
		if err != nil {
			continue // header-stage rejection is fine
		}
		dst := make([]float64, len(d.Names()))
		var rowErr error
		for {
			rowErr = d.Next(dst)
			if rowErr != nil {
				break
			}
		}
		if rowErr == io.EOF && d.Rows() > 0 {
			t.Fatalf("%s: accepted malformed input", label)
		}
		if rowErr == io.EOF && d.Rows() == 0 && label != "comments only" && label != "empty stream" {
			t.Fatalf("%s: silently produced no rows", label)
		}
	}
}

func TestDecoderMissingInterval(t *testing.T) {
	if _, err := NewDecoder(strings.NewReader("a b\n1 2\n"), DecoderOptions{}); err == nil {
		t.Fatal("missing interval should fail")
	}
	d, err := NewDecoder(strings.NewReader("a b\n1 2\n"), DecoderOptions{DefaultInterval: 0.25})
	if err != nil || d.Interval() != 0.25 {
		t.Fatalf("default interval: %v %g", err, d.Interval())
	}
}

func TestDecoderColumnBound(t *testing.T) {
	names := make([]string, 0, 10)
	for i := 0; i < 10; i++ {
		names = append(names, string(rune('a'+i)))
	}
	input := strings.Join(names, " ") + "\n"
	if _, err := NewDecoder(strings.NewReader(input), DecoderOptions{DefaultInterval: 1, MaxColumns: 4}); err == nil {
		t.Fatal("column bound not enforced")
	}
}

func TestNewRejectsNonFinite(t *testing.T) {
	if _, err := New([]string{"a"}, nan()); err == nil {
		t.Fatal("NaN interval accepted")
	}
	if _, err := New([]string{"a"}, inf()); err == nil {
		t.Fatal("Inf interval accepted")
	}
	tr, err := New([]string{"a"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Append([]float64{nan()}); err == nil {
		t.Fatal("NaN power accepted")
	}
	if err := tr.Append([]float64{inf()}); err == nil {
		t.Fatal("Inf power accepted")
	}
}

func nan() float64 { return math.NaN() }
func inf() float64 { return math.Inf(1) }
