package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Telemetry NDJSON stream schema, shared by the thermsvc /v1/query/stream
// endpoint and the thermsim query subcommand so both speak one wire format:
// a header line, then one line per raw row or downsampled bucket, then a
// trailer line confirming completion. Timestamps are integer nanoseconds on
// the tstore timeline (tstore.Nanos); producers that hand out float seconds
// would silently lose sub-microsecond resolution on long runs.

// TelemetryHeader is the first line of a telemetry stream.
type TelemetryHeader struct {
	Series       string `json:"series"`
	FromNs       int64  `json:"from_ns"`
	ToNs         int64  `json:"to_ns"`
	DownsampleNs int64  `json:"downsample_ns,omitempty"`
}

// TelemetryRow is one raw sample line.
type TelemetryRow struct {
	TNs int64   `json:"t_ns"`
	V   float64 `json:"v"`
}

// TelemetryBucket is one downsampled aggregate line.
type TelemetryBucket struct {
	StartNs int64   `json:"start_ns"`
	Count   int64   `json:"count"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Mean    float64 `json:"mean"`
	Sum     float64 `json:"sum"`
}

// TelemetryTrailer is the final line; its presence distinguishes a complete
// stream from one cut off by a deadline or disconnect.
type TelemetryTrailer struct {
	Done bool  `json:"done"`
	Rows int64 `json:"rows"`
}

// TelemetryResult is a fully-read telemetry stream.
type TelemetryResult struct {
	Header  TelemetryHeader
	Rows    []TelemetryRow
	Buckets []TelemetryBucket
	Trailer TelemetryTrailer
}

// ReadTelemetry decodes a complete telemetry NDJSON stream: header line,
// row or bucket lines (by the header's DownsampleNs), trailer line. It
// fails on a missing trailer or a row-count mismatch, so consumers can't
// mistake a truncated stream for a short result.
func ReadTelemetry(r io.Reader) (TelemetryResult, error) {
	var res TelemetryResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return res, fmt.Errorf("trace: telemetry stream empty: %v", sc.Err())
	}
	if err := json.Unmarshal(sc.Bytes(), &res.Header); err != nil {
		return res, fmt.Errorf("trace: telemetry header: %w", err)
	}
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Done *bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return res, fmt.Errorf("trace: telemetry line: %w", err)
		}
		if probe.Done != nil {
			if err := json.Unmarshal(line, &res.Trailer); err != nil {
				return res, fmt.Errorf("trace: telemetry trailer: %w", err)
			}
			n := int64(len(res.Rows)) + int64(len(res.Buckets))
			if !res.Trailer.Done || res.Trailer.Rows != n {
				return res, fmt.Errorf("trace: telemetry trailer claims %d rows, stream carried %d", res.Trailer.Rows, n)
			}
			return res, nil
		}
		if res.Header.DownsampleNs > 0 {
			var b TelemetryBucket
			if err := json.Unmarshal(line, &b); err != nil {
				return res, fmt.Errorf("trace: telemetry bucket: %w", err)
			}
			res.Buckets = append(res.Buckets, b)
		} else {
			var row TelemetryRow
			if err := json.Unmarshal(line, &row); err != nil {
				return res, fmt.Errorf("trace: telemetry row: %w", err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	if err := sc.Err(); err != nil {
		return res, fmt.Errorf("trace: telemetry stream: %w", err)
	}
	return res, fmt.Errorf("trace: telemetry stream ended without trailer (%d lines read)", len(res.Rows)+len(res.Buckets))
}
