package trace

import (
	"bytes"
	"io"
	"math"
	"testing"
)

// FuzzDecoder feeds arbitrary bytes through the streaming trace decoder in
// every format mode. The invariants: never panic, and any row the decoder
// accepts contains only finite, non-negative powers of the header's width.
func FuzzDecoder(f *testing.F) {
	f.Add([]byte("# interval 0.001 s\nA\tB\n1 2\n3 4\n"))
	f.Add([]byte("A,B,C\n1, 2, 3\n4.5,0,6\n"))
	f.Add([]byte(`{"names":["A","B"],"interval":1e-3}` + "\n[1,2]\n[3,4]\n"))
	f.Add([]byte("A B\nNaN 1\n"))
	f.Add([]byte("A B\n1 +Inf\n"))
	f.Add([]byte("A B\n-1 2\n"))
	f.Add([]byte("# interval -5 s\nA\n1\n"))
	f.Add([]byte("# interval NaN s\nA\n1\n"))
	f.Add([]byte(`{"names":["A"],"interval":1e308}` + "\n[1e308]\n"))
	f.Add([]byte("A A\n1 1\n"))
	f.Add([]byte("\n\n# only comments\n"))
	f.Add([]byte("A\n1\n# trailing comment\n2\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, format := range []Format{FormatAuto, FormatPTrace, FormatCSV, FormatNDJSON} {
			d, err := NewDecoder(bytes.NewReader(data), DecoderOptions{Format: format, DefaultInterval: 1e-3})
			if err != nil {
				continue
			}
			if !(d.Interval() > 0) || math.IsInf(d.Interval(), 0) {
				t.Fatalf("format %v: accepted invalid interval %g", format, d.Interval())
			}
			row := make([]float64, len(d.Names()))
			for rows := 0; rows < 10000; rows++ {
				err := d.Next(row)
				if err == io.EOF {
					break
				}
				if err != nil {
					break // rejected row: fine, as long as nothing panicked
				}
				for i, v := range row {
					if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
						t.Fatalf("format %v: accepted invalid power %g in column %d", format, v, i)
					}
				}
			}
		}
	})
}

// FuzzRead drives the legacy whole-file reader (now a Decoder wrapper): it
// must never panic, and on success every stored row is valid.
func FuzzRead(f *testing.F) {
	f.Add([]byte("# interval 3.3e-6 s\nIntReg Dcache\n1.5 0.2\n0 0\n"))
	f.Add([]byte("A\nInf\n"))
	f.Add([]byte("A B\n1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data), 1e-3)
		if err != nil {
			return
		}
		if len(tr.Rows) == 0 {
			t.Fatal("Read returned an empty trace without error")
		}
		for _, row := range tr.Rows {
			if len(row) != len(tr.Names) {
				t.Fatal("ragged row accepted")
			}
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					t.Fatalf("invalid power %g accepted", v)
				}
			}
		}
	})
}
