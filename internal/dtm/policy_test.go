package dtm

import (
	"testing"

	"repro/internal/hotspot"
)

// TestDVFSCoolsMoreThanFetchGate: at the same performance factor, DVFS cuts
// power cubically and therefore yields a lower peak temperature.
func TestDVFSCoolsMoreThanFetchGate(t *testing.T) {
	m := evModel(t, hotspot.OilSilicon, 1.0)
	tr := burstTrace(t)
	run := func(act Actuator) Metrics {
		p := basePolicy()
		p.TriggerC = 55
		p.Actuator = act
		met, _, err := Run(Config{Model: m, Trace: tr, Policy: p, EmergencyC: 1000, InitialSteady: true}, "")
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	fg := run(FetchGate)
	dv := run(DVFS)
	if fg.EngagedTime == 0 || dv.EngagedTime == 0 {
		t.Fatal("both policies should engage")
	}
	if dv.PeakC >= fg.PeakC {
		t.Fatalf("DVFS peak %.2f should undercut fetch-gate %.2f", dv.PeakC, fg.PeakC)
	}
}

// TestSlowSamplingDelaysResponse: a controller sampling too slowly engages
// later and lets the die run hotter.
func TestSlowSamplingDelaysResponse(t *testing.T) {
	m := evModel(t, hotspot.OilSilicon, 1.0)
	tr := burstTrace(t)
	run := func(interval float64) Metrics {
		p := basePolicy()
		p.TriggerC = 55
		p.SampleInterval = interval
		met, _, err := Run(Config{Model: m, Trace: tr, Policy: p, EmergencyC: 1000, InitialSteady: true}, "")
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	fast := run(1e-3)
	slow := run(50e-3)
	// A 50 ms sampler sees at most a couple of instants per 100 ms burst
	// period, so it can keep DTM engaged for far less total time.
	if slow.EngagedTime >= fast.EngagedTime {
		t.Fatalf("slow sampling should throttle less: %g vs %g s", slow.EngagedTime, fast.EngagedTime)
	}
	if slow.PeakC < fast.PeakC-1e-9 {
		t.Fatalf("slow sampling should not lower the peak: %.2f vs %.2f", slow.PeakC, fast.PeakC)
	}
}

// TestHigherThresholdFewerEngagements: raising the trigger reduces engaged
// time and performance penalty.
func TestHigherThresholdFewerEngagements(t *testing.T) {
	m := evModel(t, hotspot.OilSilicon, 1.0)
	tr := burstTrace(t)
	run := func(trigger float64) Metrics {
		p := basePolicy()
		p.TriggerC = trigger
		met, _, err := Run(Config{Model: m, Trace: tr, Policy: p, EmergencyC: 1000, InitialSteady: true}, "")
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	low := run(50)
	high := run(75)
	if high.EngagedTime > low.EngagedTime {
		t.Fatalf("higher trigger should engage less: %g vs %g", high.EngagedTime, low.EngagedTime)
	}
	if high.PerfPenalty > low.PerfPenalty {
		t.Fatalf("higher trigger should cost less: %g vs %g", high.PerfPenalty, low.PerfPenalty)
	}
}

// TestViolationAccounting: with a low emergency threshold, violations are
// recorded; an aggressive policy reduces violation time.
func TestViolationAccounting(t *testing.T) {
	m := evModel(t, hotspot.OilSilicon, 1.0)
	tr := burstTrace(t)
	base := basePolicy()
	base.TriggerC = 1e6 // off
	off, _, err := Run(Config{Model: m, Trace: tr, Policy: base, EmergencyC: 60, InitialSteady: true}, "")
	if err != nil {
		t.Fatal(err)
	}
	if off.ViolationTime == 0 {
		t.Skip("burst too cool to violate in this configuration")
	}
	aggressive := basePolicy()
	aggressive.TriggerC = 55
	aggressive.EngageDuration = 50e-3
	aggressive.PerfFactor = 0.25
	on, _, err := Run(Config{Model: m, Trace: tr, Policy: aggressive, EmergencyC: 60, InitialSteady: true}, "")
	if err != nil {
		t.Fatal(err)
	}
	if on.ViolationTime >= off.ViolationTime {
		t.Fatalf("DTM should reduce violation time: %g vs %g", on.ViolationTime, off.ViolationTime)
	}
}

// TestSensorOffsetShiftsTriggering: a sensor reading low delays triggering.
func TestSensorOffsetShiftsTriggering(t *testing.T) {
	m := evModel(t, hotspot.OilSilicon, 1.0)
	tr := burstTrace(t)
	run := func(offset float64) Metrics {
		p := basePolicy()
		p.TriggerC = 58
		met, _, err := Run(Config{
			Model: m, Trace: tr, Policy: p, EmergencyC: 1000, InitialSteady: true,
			Sensors: []SensorView{{Block: "IntReg", OffsetC: offset}},
		}, "")
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	exact := run(0)
	low := run(-8)
	if low.EngagedTime > exact.EngagedTime {
		t.Fatalf("under-reading sensor should engage less: %g vs %g", low.EngagedTime, exact.EngagedTime)
	}
	if low.ObservedPeakC >= exact.ObservedPeakC {
		t.Fatal("offset must shift observations")
	}
}
