// Package dtm implements dynamic thermal management: a sensor-driven
// controller with a trigger threshold, engagement duration and sampling
// interval, driving a throttling actuator (fetch gating or DVFS) in closed
// loop with the thermal model. It quantifies the paper's §5 claims: the same
// policy behaves differently under AIR-SINK and OIL-SILICON (engagement
// duration, violation coverage, performance penalty), and badly placed
// sensors miss emergencies.
package dtm

import (
	"fmt"
	"math"

	"repro/internal/hotspot"
	"repro/internal/trace"
)

// Actuator describes how engaging DTM reduces power.
type Actuator int

const (
	// FetchGate halves activity: dynamic power scales by the throttle
	// factor, performance by the same factor.
	FetchGate Actuator = iota
	// DVFS scales voltage and frequency together: power scales roughly
	// cubically with the performance factor.
	DVFS
)

func (a Actuator) String() string {
	switch a {
	case FetchGate:
		return "fetch-gate"
	case DVFS:
		return "dvfs"
	default:
		return fmt.Sprintf("Actuator(%d)", int(a))
	}
}

// Policy is a DTM controller configuration.
type Policy struct {
	// TriggerC is the sensor temperature that engages DTM (°C).
	TriggerC float64
	// EngageDuration is how long DTM stays engaged after a trigger (s).
	EngageDuration float64
	// SampleInterval is the sensor sampling period (s).
	SampleInterval float64
	// PerfFactor is the relative performance while engaged (0, 1]:
	// fetch-gating at 0.5 halves throughput.
	PerfFactor float64
	// Actuator selects the power/performance relationship.
	Actuator Actuator
}

// Validate reports policy configuration errors.
func (p Policy) Validate() error {
	if p.TriggerC <= 0 {
		return fmt.Errorf("dtm: non-positive trigger %g", p.TriggerC)
	}
	if p.EngageDuration <= 0 {
		return fmt.Errorf("dtm: non-positive engagement duration %g", p.EngageDuration)
	}
	if p.SampleInterval <= 0 {
		return fmt.Errorf("dtm: non-positive sample interval %g", p.SampleInterval)
	}
	if p.PerfFactor <= 0 || p.PerfFactor > 1 {
		return fmt.Errorf("dtm: performance factor %g outside (0,1]", p.PerfFactor)
	}
	return nil
}

// PowerScale returns the dynamic-power multiplier while engaged: PerfFactor
// for fetch gating (activity scales with throughput), PerfFactor³ for DVFS
// (P ∝ f·V² with V ∝ f).
func (p Policy) PowerScale() float64 {
	switch p.Actuator {
	case DVFS:
		return math.Pow(p.PerfFactor, 3)
	default:
		return p.PerfFactor
	}
}

// SensorView tells the controller which block a sensor reads and with what
// offset. An empty sensor list gives the controller oracle knowledge of the
// true hottest block.
type SensorView struct {
	Block   string
	OffsetC float64
}

// Config describes one closed-loop run.
type Config struct {
	Model *hotspot.Model
	// Trace is the nominal per-block power schedule. It loops if shorter
	// than Duration.
	Trace *trace.PowerTrace
	// Sensors drive the controller; empty means oracle sensing.
	Sensors []SensorView
	Policy  Policy
	// EmergencyC is the true thermal limit used for violation accounting.
	EmergencyC float64
	// Duration of the run (s). Zero means one pass of the trace.
	Duration float64
	// InitialSteady starts from the steady state of the trace's average
	// power rather than from ambient.
	InitialSteady bool
}

// Metrics summarizes a closed-loop run.
type Metrics struct {
	Duration float64
	// EngagedTime is total time DTM was throttling (s).
	EngagedTime float64
	// Engagements counts distinct trigger events.
	Engagements int
	// ViolationTime is total time the true hottest block exceeded
	// EmergencyC (s) — nonzero violation time under an active policy means
	// the sensors/policy missed emergencies.
	ViolationTime float64
	// PeakC is the true peak temperature reached (°C).
	PeakC float64
	// PerfPenalty is the throughput lost to throttling, as a fraction of
	// the run (0 = none).
	PerfPenalty float64
	// ObservedPeakC is the hottest sensor reading seen by the controller.
	ObservedPeakC float64
}

// Run simulates the closed loop and returns metrics plus the true
// temperature trace of the named probe block (may be "" to skip).
//
// The simulation advances in steps of the trace interval; the policy's
// SampleInterval and EngageDuration are quantized to whole steps by the
// Controller contract (round half-up, minimum one step).
func Run(cfg Config, probeBlock string) (Metrics, []hotspot.TracePoint, error) {
	if cfg.Model == nil || cfg.Trace == nil {
		return Metrics{}, nil, fmt.Errorf("dtm: need model and trace")
	}
	if cfg.EmergencyC <= 0 {
		return Metrics{}, nil, fmt.Errorf("dtm: non-positive emergency threshold")
	}
	fp := cfg.Model.Floorplan()
	// Resolve trace columns and sensor blocks to floorplan order.
	cols := make([]int, fp.N())
	for bi, name := range fp.Names() {
		c := cfg.Trace.Column(name)
		if c < 0 {
			return Metrics{}, nil, fmt.Errorf("dtm: trace lacks block %q", name)
		}
		cols[bi] = c
	}
	sensorIdx := make([]int, len(cfg.Sensors))
	for i, s := range cfg.Sensors {
		bi := fp.Index(s.Block)
		if bi < 0 {
			return Metrics{}, nil, fmt.Errorf("dtm: sensor on unknown block %q", s.Block)
		}
		sensorIdx[i] = bi
	}
	probe := -1
	if probeBlock != "" {
		probe = fp.Index(probeBlock)
		if probe < 0 {
			return Metrics{}, nil, fmt.Errorf("dtm: unknown probe block %q", probeBlock)
		}
	}

	duration := cfg.Duration
	if duration == 0 {
		duration = cfg.Trace.Duration()
	}
	dt := cfg.Trace.Interval
	ctrl, err := NewController(cfg.Policy, dt)
	if err != nil {
		return Metrics{}, nil, err
	}
	steps := int(math.Round(duration / dt))
	if steps < 1 {
		steps = 1
	}

	// Initial condition.
	var temps []float64
	if cfg.InitialSteady {
		avg := cfg.Trace.Average()
		p := make([]float64, fp.N())
		for bi := range p {
			p[bi] = avg[cols[bi]]
		}
		vec, err := cfg.Model.BlockPowerVector(p)
		if err != nil {
			return Metrics{}, nil, err
		}
		temps = cfg.Model.SteadyState(vec).Temps
	} else {
		temps = cfg.Model.AmbientState()
	}

	var m Metrics
	m.Duration = duration
	m.PeakC = math.Inf(-1)
	m.ObservedPeakC = math.Inf(-1)

	scale := cfg.Policy.PowerScale()
	blockPower := make([]float64, fp.N())
	var points []hotspot.TracePoint

	for step := 0; step < steps; step++ {
		t := float64(step) * dt
		res := cfg.Model.NewResult(temps)
		blocksC := res.BlocksC()

		// True state accounting.
		hot := blocksC[0]
		for _, v := range blocksC {
			if v > hot {
				hot = v
			}
		}
		if hot > m.PeakC {
			m.PeakC = hot
		}
		if hot > cfg.EmergencyC {
			m.ViolationTime += dt
		}
		if probe >= 0 {
			points = append(points, hotspot.TracePoint{Time: t, BlockC: append([]float64(nil), blocksC...)})
		}

		// Controller: sample sensors on schedule.
		if ctrl.ShouldSample(step) {
			obs := math.Inf(-1)
			if len(sensorIdx) == 0 {
				obs = hot
			} else {
				for i, bi := range sensorIdx {
					if v := blocksC[bi] + cfg.Sensors[i].OffsetC; v > obs {
						obs = v
					}
				}
			}
			if obs > m.ObservedPeakC {
				m.ObservedPeakC = obs
			}
			ctrl.Observe(step, obs)
		}

		// Apply power (throttled while engaged).
		engaged := ctrl.Engaged(step)
		row := cfg.Trace.At(math.Mod(t, cfg.Trace.Duration()))
		for bi := range blockPower {
			p := row[cols[bi]]
			if engaged {
				p *= scale
			}
			blockPower[bi] = p
		}
		vec, err := cfg.Model.BlockPowerVector(blockPower)
		if err != nil {
			return Metrics{}, nil, err
		}
		if err := cfg.Model.Transient(temps, vec, dt, dt); err != nil {
			return Metrics{}, nil, err
		}
		if engaged {
			m.EngagedTime += dt
			m.PerfPenalty += dt * (1 - cfg.Policy.PerfFactor)
		}
	}
	m.Engagements = ctrl.Engagements()
	m.PerfPenalty /= duration
	return m, points, nil
}
