package dtm

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/trace"
)

// TestControllerQuantizesRoundHalfUp: SampleInterval and EngageDuration
// quantize to whole trace steps by rounding half-up, never below one step.
func TestControllerQuantizesRoundHalfUp(t *testing.T) {
	const dt = 1e-4
	cases := []struct {
		interval float64
		want     int
	}{
		{3.3e-4, 3}, // the documented contract case: 3.3 steps rounds down
		{3.5e-4, 4}, // half rounds up
		{3.7e-4, 4},
		{1e-4, 1}, // exact ratio unchanged
		{0.4e-4, 1} /* sub-step clamps to one step */, {5e-3, 50},
	}
	for _, tc := range cases {
		p := basePolicy()
		p.SampleInterval = tc.interval
		p.EngageDuration = tc.interval
		c, err := NewController(p, dt)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.SampleSteps(); got != tc.want {
			t.Errorf("SampleInterval %g on %g steps: got %d sample steps, want %d", tc.interval, dt, got, tc.want)
		}
		if got := c.EngageSteps(); got != tc.want {
			t.Errorf("EngageDuration %g on %g steps: got %d engage steps, want %d", tc.interval, dt, got, tc.want)
		}
	}
}

// TestControllerEngagementLatch: a trigger engages for EngageSteps steps and
// re-triggering extends without double-counting engagements.
func TestControllerEngagementLatch(t *testing.T) {
	p := basePolicy()
	p.TriggerC = 70
	p.SampleInterval = 2e-3
	p.EngageDuration = 3e-3
	c, err := NewController(p, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if !c.ShouldSample(0) || c.ShouldSample(1) || !c.ShouldSample(2) {
		t.Fatal("sampling schedule should be every 2 steps from step 0")
	}
	c.Observe(0, 75)
	for step := 0; step < 3; step++ {
		if !c.Engaged(step) {
			t.Fatalf("step %d should be engaged", step)
		}
	}
	if c.Engaged(3) {
		t.Fatal("engagement should expire after 3 steps")
	}
	c.Observe(2, 75) // re-trigger while engaged: extends, same event
	if !c.Engaged(4) || c.Engaged(5) {
		t.Fatal("re-trigger should extend engagement to step 5")
	}
	if c.Engagements() != 1 {
		t.Fatalf("extension counted as new engagement: %d", c.Engagements())
	}
	c.Observe(10, 75) // after expiry: a new event
	if c.Engagements() != 2 {
		t.Fatalf("want 2 engagements, got %d", c.Engagements())
	}
	if c.Observe(12, 60); c.Engagements() != 2 {
		t.Fatal("below-trigger observation must not engage")
	}
}

// TestRunNonIntegerSampleRatio is the regression test for the quantization
// fix: a 3.3e-4 s sampling interval on a 1e-4 s trace behaves exactly like
// the 3.0e-4 s interval it rounds to, instead of drifting between 3- and
// 4-step gaps through float accumulation.
func TestRunNonIntegerSampleRatio(t *testing.T) {
	fp := floorplan.EV6()
	m := evModel(t, hotspot.OilSilicon, 1.0)
	tr, err := trace.PulseTrain(fp.Names(), "IntReg", 3.0, 3e-3, 7e-3, 1e-4, 10)
	if err != nil {
		t.Fatal(err)
	}
	run := func(sample float64) Metrics {
		p := basePolicy()
		p.TriggerC = 55
		p.SampleInterval = sample
		p.EngageDuration = 2e-3
		met, _, err := Run(Config{Model: m, Trace: tr, Policy: p, EmergencyC: 1000, InitialSteady: true}, "")
		if err != nil {
			t.Fatal(err)
		}
		return met
	}
	got := run(3.3e-4)
	want := run(3.0e-4)
	if got != want {
		t.Fatalf("3.3e-4 s sampling on 1e-4 s steps should equal the rounded 3.0e-4 s schedule:\n got %+v\nwant %+v", got, want)
	}
	if up, four := run(3.5e-4), run(4.0e-4); up != four {
		t.Fatalf("3.5e-4 s sampling should round half-up to 4 steps:\n got %+v\nwant %+v", up, four)
	}
}
