package dtm

import (
	"testing"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/trace"
)

func evModel(t *testing.T, kind hotspot.PackageKind, rconv float64) *hotspot.Model {
	t.Helper()
	cfg := hotspot.Config{Floorplan: floorplan.EV6(), Package: kind}
	if kind == hotspot.OilSilicon {
		cfg.Oil = hotspot.OilConfig{TargetRconv: rconv}
	} else {
		cfg.Air = hotspot.AirSinkConfig{RConvec: rconv}
	}
	m, err := hotspot.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// burstTrace alternates hot bursts on IntReg with idle periods.
func burstTrace(t *testing.T) *trace.PowerTrace {
	t.Helper()
	tr, err := trace.PulseTrain(floorplan.EV6().Names(), "IntReg", 3.0, 30e-3, 70e-3, 1e-3, 10)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func basePolicy() Policy {
	return Policy{
		TriggerC:       70,
		EngageDuration: 5e-3,
		SampleInterval: 1e-3,
		PerfFactor:     0.5,
		Actuator:       FetchGate,
	}
}

func TestPolicyValidate(t *testing.T) {
	good := basePolicy()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mod := range []func(*Policy){
		func(p *Policy) { p.TriggerC = 0 },
		func(p *Policy) { p.EngageDuration = 0 },
		func(p *Policy) { p.SampleInterval = -1 },
		func(p *Policy) { p.PerfFactor = 0 },
		func(p *Policy) { p.PerfFactor = 1.5 },
	} {
		p := basePolicy()
		mod(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("expected validation error for %+v", p)
		}
	}
}

func TestDVFSCutsPowerCubically(t *testing.T) {
	p := basePolicy()
	p.Actuator = DVFS
	p.PerfFactor = 0.5
	if s := p.PowerScale(); s != 0.125 {
		t.Fatalf("DVFS power scale %g, want 0.125", s)
	}
	p.Actuator = FetchGate
	if s := p.PowerScale(); s != 0.5 {
		t.Fatalf("fetch-gate power scale %g, want 0.5", s)
	}
}

func TestDTMCapsTemperature(t *testing.T) {
	m := evModel(t, hotspot.OilSilicon, 1.0)
	tr := burstTrace(t)
	policy := basePolicy()
	policy.TriggerC = 60

	cfgOff := Config{Model: m, Trace: tr, Policy: policy, EmergencyC: 1000, InitialSteady: true}
	// Effectively disable DTM with an unreachable trigger.
	cfgOff.Policy.TriggerC = 1e6
	off, _, err := Run(cfgOff, "")
	if err != nil {
		t.Fatal(err)
	}
	cfgOn := cfgOff
	cfgOn.Policy.TriggerC = 60
	on, _, err := Run(cfgOn, "")
	if err != nil {
		t.Fatal(err)
	}
	if on.EngagedTime == 0 {
		t.Fatal("DTM never engaged")
	}
	if on.PeakC >= off.PeakC {
		t.Fatalf("DTM should reduce peak: %g vs %g", on.PeakC, off.PeakC)
	}
	if on.PerfPenalty <= 0 {
		t.Fatal("throttling must cost performance")
	}
	if off.PerfPenalty != 0 || off.Engagements != 0 {
		t.Fatal("disabled DTM should have no penalty")
	}
}

func TestMisplacedSensorMissesEmergency(t *testing.T) {
	// §5.4: a sensor on a cool block under-reports; the oracle sees the
	// violation, the bad sensor does not.
	m := evModel(t, hotspot.OilSilicon, 1.0)
	tr := burstTrace(t)
	policy := basePolicy()
	policy.TriggerC = 1e6 // never engage: we compare observation only

	oracle, _, err := Run(Config{Model: m, Trace: tr, Policy: policy, EmergencyC: 75, InitialSteady: true}, "")
	if err != nil {
		t.Fatal(err)
	}
	bad, _, err := Run(Config{
		Model: m, Trace: tr, Policy: policy, EmergencyC: 75, InitialSteady: true,
		Sensors: []SensorView{{Block: "L2"}},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	if bad.ObservedPeakC >= oracle.ObservedPeakC-5 {
		t.Fatalf("L2 sensor should badly under-report: %g vs oracle %g", bad.ObservedPeakC, oracle.ObservedPeakC)
	}
	if oracle.PeakC != bad.PeakC {
		t.Fatal("true peak must not depend on sensing")
	}
}

func TestOilRecoversSlowerThanAir(t *testing.T) {
	// §5.1: "it takes longer to bring the processor out of potential
	// thermal emergencies in OIL-SILICON" — after an identical burst, the
	// oil configuration needs more time for the hot block to shed half of
	// its excess temperature, so DTM engagements must be longer.
	recoveryTime := func(kind hotspot.PackageKind) float64 {
		m := evModel(t, kind, 1.0)
		base := map[string]float64{"IntReg": 0.45}
		burst := map[string]float64{"IntReg": 3.0}
		pBase, err := m.PowerVector(base)
		if err != nil {
			t.Fatal(err)
		}
		pBurst, err := m.PowerVector(burst)
		if err != nil {
			t.Fatal(err)
		}
		temps := m.SteadyState(pBase).Temps
		t0 := m.NewResult(temps).BlockC("IntReg")
		if err := m.Transient(temps, pBurst, 15e-3, 1e-4); err != nil {
			t.Fatal(err)
		}
		peak := m.NewResult(temps).BlockC("IntReg")
		half := t0 + (peak-t0)/2
		// Power back to base; time the decay to the halfway point.
		const dt = 0.5e-3
		for tm := 0.0; tm < 5.0; tm += dt {
			if err := m.Transient(temps, pBase, dt, dt); err != nil {
				t.Fatal(err)
			}
			if m.NewResult(temps).BlockC("IntReg") <= half {
				return tm + dt
			}
		}
		t.Fatalf("%v never recovered", kind)
		return 0
	}
	oil := recoveryTime(hotspot.OilSilicon)
	air := recoveryTime(hotspot.AirSink)
	if oil <= 2*air {
		t.Fatalf("oil half-recovery %gs should be ≫ air %gs", oil, air)
	}
}

func TestProbeTraceRecorded(t *testing.T) {
	m := evModel(t, hotspot.AirSink, 0.5)
	tr := burstTrace(t)
	_, pts, err := Run(Config{Model: m, Trace: tr, Policy: basePolicy(), EmergencyC: 100}, "IntReg")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no probe points")
	}
	if len(pts[0].BlockC) != m.Floorplan().N() {
		t.Fatal("probe point has wrong width")
	}
}

func TestRunValidation(t *testing.T) {
	m := evModel(t, hotspot.AirSink, 0.5)
	tr := burstTrace(t)
	if _, _, err := Run(Config{Trace: tr, Policy: basePolicy(), EmergencyC: 85}, ""); err == nil {
		t.Fatal("missing model should fail")
	}
	if _, _, err := Run(Config{Model: m, Trace: tr, Policy: Policy{}, EmergencyC: 85}, ""); err == nil {
		t.Fatal("invalid policy should fail")
	}
	if _, _, err := Run(Config{Model: m, Trace: tr, Policy: basePolicy()}, ""); err == nil {
		t.Fatal("missing emergency threshold should fail")
	}
	if _, _, err := Run(Config{Model: m, Trace: tr, Policy: basePolicy(), EmergencyC: 85,
		Sensors: []SensorView{{Block: "nope"}}}, ""); err == nil {
		t.Fatal("unknown sensor block should fail")
	}
	if _, _, err := Run(Config{Model: m, Trace: tr, Policy: basePolicy(), EmergencyC: 85}, "nope"); err == nil {
		t.Fatal("unknown probe should fail")
	}
	// Trace missing a block.
	short, _ := trace.New([]string{"IntReg"}, 1e-3)
	short.Append([]float64{1})
	if _, _, err := Run(Config{Model: m, Trace: short, Policy: basePolicy(), EmergencyC: 85}, ""); err == nil {
		t.Fatal("incomplete trace should fail")
	}
}
