package dtm

import (
	"fmt"
	"math"
)

// Controller is the step-quantized DTM control law, shared by the offline
// trace replay (Run) and the closed-loop scenario engine
// (internal/scenario): it samples a sensor observation on a fixed step
// schedule and latches engagement for a fixed number of steps after each
// trigger.
//
// Quantization contract: the controller advances in units of the simulation
// step dt (the power-trace interval). Policy.SampleInterval and
// Policy.EngageDuration are quantized to a whole number of steps by rounding
// half-up (math.Round), with a minimum of one step. A 3.3e-4 s sampling
// interval on 1e-4 s steps therefore samples every 3 steps (3.0e-4 s
// effective), and 3.5e-4 s rounds up to 4 steps. Earlier versions quantized
// implicitly through floating-point time accumulation, which drifted at
// non-integer interval/step ratios; the rounding here is the documented
// behaviour, and SampleSteps/EngageSteps expose the effective schedule.
type Controller struct {
	policy       Policy
	dt           float64
	sampleSteps  int
	engageSteps  int
	engagedUntil int // first step index no longer engaged
	engagements  int
}

// NewController validates the policy and quantizes its intervals to the
// simulation step dt (seconds, must be positive and finite).
func NewController(p Policy, dt float64) (*Controller, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !(dt > 0) || math.IsInf(dt, 0) {
		return nil, fmt.Errorf("dtm: non-positive step %g", dt)
	}
	return &Controller{
		policy:      p,
		dt:          dt,
		sampleSteps: quantizeSteps(p.SampleInterval, dt),
		engageSteps: quantizeSteps(p.EngageDuration, dt),
	}, nil
}

// quantizeSteps converts a duration to whole steps, rounding half-up with a
// floor of one step.
func quantizeSteps(d, dt float64) int {
	n := int(math.Round(d / dt))
	if n < 1 {
		n = 1
	}
	return n
}

// Policy returns the controller's policy.
func (c *Controller) Policy() Policy { return c.policy }

// SampleSteps returns the effective sampling period in steps.
func (c *Controller) SampleSteps() int { return c.sampleSteps }

// EngageSteps returns the effective engagement duration in steps.
func (c *Controller) EngageSteps() int { return c.engageSteps }

// ShouldSample reports whether the controller samples its sensors at the
// given step (step 0 always samples).
func (c *Controller) ShouldSample(step int) bool { return step%c.sampleSteps == 0 }

// Observe feeds one sampled observation (the hottest sensor reading, °C) to
// the controller at the given step. An observation at or above the trigger
// threshold engages DTM for EngageSteps steps starting at this step;
// re-triggering while engaged extends the engagement without counting a new
// engagement event.
func (c *Controller) Observe(step int, obsC float64) {
	if obsC >= c.policy.TriggerC {
		if step >= c.engagedUntil {
			c.engagements++
		}
		c.engagedUntil = step + c.engageSteps
	}
}

// Engaged reports whether DTM throttles during the given step. A trigger
// observed at step k throttles the power applied over [k·dt, (k+1)·dt) — the
// thermal effect of that actuation is first visible in the temperatures the
// sensors read at step k+1 (one-step-delayed feedback).
func (c *Controller) Engaged(step int) bool { return step < c.engagedUntil }

// Engagements returns the number of distinct trigger events so far.
func (c *Controller) Engagements() int { return c.engagements }
