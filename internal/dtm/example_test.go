package dtm_test

import (
	"fmt"

	"repro/internal/dtm"
)

// ExamplePolicy shows the two actuators' power/performance trade-off and
// the step-quantization contract: at the same 50% performance factor, fetch
// gating halves dynamic power while DVFS cuts it cubically, and a 3.3e-4 s
// sampling interval on 1e-4 s simulation steps rounds half-up to a 3-step
// schedule.
func ExamplePolicy() {
	policy := dtm.Policy{
		TriggerC:       72,
		EngageDuration: 5e-3,
		SampleInterval: 3.3e-4,
		PerfFactor:     0.5,
		Actuator:       dtm.FetchGate,
	}
	fmt.Println("valid:", policy.Validate() == nil)
	fmt.Println("fetch-gate power scale:", policy.PowerScale())
	policy.Actuator = dtm.DVFS
	fmt.Println("dvfs power scale:", policy.PowerScale())

	ctrl, err := dtm.NewController(policy, 1e-4)
	if err != nil {
		panic(err)
	}
	fmt.Println("sample every:", ctrl.SampleSteps(), "steps")
	fmt.Println("engage for:", ctrl.EngageSteps(), "steps")
	// Output:
	// valid: true
	// fetch-gate power scale: 0.5
	// dvfs power scale: 0.125
	// sample every: 3 steps
	// engage for: 50 steps
}
