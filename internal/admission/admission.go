// Package admission is the per-tenant admission controller for the thermal
// serving stack (DESIGN.md §12). It decides, for every incoming solve
// request, whether the request runs now, waits in a bounded queue, or is
// shed with a typed error that tells the client when to retry.
//
// Three mechanisms compose:
//
//   - Token buckets bound each tenant's sustained request rate. A tenant
//     with RatePerSec r and Burst b may always issue b back-to-back
//     requests and r per second thereafter; beyond that, requests are shed
//     immediately with a Retry-After derived from the bucket's refill.
//   - Concurrency and queue quotas bound each tenant's share of the solve
//     slots and of the global queue, so one tenant's backlog cannot occupy
//     every slot a lighter tenant needs.
//   - Start-time weighted fair queuing orders the global queue: each
//     tenant advances a virtual start time by 1/Weight per dispatched
//     request, and the waiter with the smallest virtual time runs next.
//     A heavy tenant's deep backlog therefore costs it (its virtual time
//     races ahead) while an occasional tenant is dispatched almost
//     immediately on arrival.
//
// The controller also exposes a queue-pressure signal (Decision.Pressure)
// that the service layer uses to pick when to degrade solves onto the
// reduced-order backend, and per-tenant statistics for /v1/stats.
package admission

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Quota bounds one tenant's resource share. Zero fields fall back to
// "unlimited" for rates and to controller-wide bounds for the rest.
type Quota struct {
	// RatePerSec is the sustained request rate; 0 disables rate limiting
	// for the tenant.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the token-bucket depth; 0 with a positive rate defaults to
	// max(1, ceil(RatePerSec)).
	Burst int `json:"burst,omitempty"`
	// MaxConcurrent caps the tenant's in-flight solves; 0 means "up to all
	// slots".
	MaxConcurrent int `json:"max_concurrent,omitempty"`
	// MaxQueue caps the tenant's waiters in the global queue; 0 means "up
	// to the whole queue".
	MaxQueue int `json:"max_queue,omitempty"`
	// Weight is the fair-queuing share; 0 defaults to 1. A tenant with
	// weight 3 drains three queued requests for every one a weight-1
	// tenant drains under contention.
	Weight float64 `json:"weight,omitempty"`
}

func (q Quota) weight() float64 {
	if q.Weight <= 0 {
		return 1
	}
	return q.Weight
}

func (q Quota) burst() float64 {
	if q.RatePerSec <= 0 {
		return 0
	}
	if q.Burst > 0 {
		return float64(q.Burst)
	}
	b := q.RatePerSec
	if b < 1 {
		b = 1
	}
	return float64(int(b + 0.999999))
}

// Config sizes a Controller.
type Config struct {
	// Slots is the number of concurrent solve slots (required, > 0).
	Slots int
	// QueueDepth bounds the total number of waiters across all tenants;
	// 0 means no queue: a request either gets a slot or is shed.
	QueueDepth int
	// Default is the quota applied to tenants without an explicit entry.
	Default Quota
	// Tenants maps tenant name → quota override.
	Tenants map[string]Quota
	// Now is a test seam for the clock; nil means time.Now.
	Now func() time.Time
}

// Reason classifies why a request was shed.
type Reason string

const (
	// ReasonRate: the tenant's token bucket was empty.
	ReasonRate Reason = "rate"
	// ReasonTenantQueue: the tenant hit its MaxQueue share.
	ReasonTenantQueue Reason = "tenant-queue"
	// ReasonQueueFull: the global queue was full.
	ReasonQueueFull Reason = "queue-full"
	// ReasonDraining: the controller is draining for shutdown.
	ReasonDraining Reason = "draining"
)

// ShedError reports an admission rejection. RetryAfter is the controller's
// estimate of when a retry could succeed: the token-bucket refill time for
// rate sheds, a smoothed service-time estimate for queue sheds.
type ShedError struct {
	Tenant     string
	Reason     Reason
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("admission: tenant %q shed (%s), retry after %s", e.Tenant, e.Reason, e.RetryAfter)
}

// Decision is a granted admission. Release must be called exactly once when
// the solve finishes; it frees the slot and dispatches the next waiter.
type Decision struct {
	// Tenant is the resolved tenant name.
	Tenant string
	// Queued reports whether the request waited in the queue at all.
	Queued bool
	// QueueWait is how long the request waited before getting a slot.
	QueueWait time.Duration
	// Pressure is the global queue occupancy in [0, 1] observed when the
	// request was admitted (waiters including this one / QueueDepth). The
	// service layer degrades eligible solves onto the reduced-order
	// backend when this crosses its threshold.
	Pressure float64

	release func()
}

// Release frees the slot. Safe to call exactly once; the service layer's
// handler defers it.
func (d *Decision) Release() { d.release() }

// waiter is one queued request.
type waiter struct {
	tenant *tenant
	vtime  float64   // virtual start time for WFQ ordering
	seq    uint64    // FIFO tie-break within equal vtime
	ready  chan bool // true = slot granted, false = evicted (drain)
}

// tenant is the per-tenant admission state. All fields are guarded by the
// controller mutex.
type tenant struct {
	name  string
	quota Quota

	tokens   float64   // token bucket level
	lastFill time.Time // last refill timestamp

	vtime float64 // WFQ virtual start time

	inFlight int
	queued   int

	// Monotonic counters for /v1/stats.
	admitted     int64
	shedRate     int64
	shedQueue    int64
	degraded     int64
	queueWaits   *waitRing
	totalWaitNS  int64
	queuedEvents int64
}

// Controller is the admission gate. One instance serves all handlers.
type Controller struct {
	mu  sync.Mutex
	cfg Config
	now func() time.Time

	tenants map[string]*tenant
	queue   []*waiter // WFQ-ordered waiters (smallest vtime first)
	seq     uint64

	inFlight int
	vclock   float64 // global virtual clock: max vtime ever dispatched

	draining bool

	// holdEWMA is a smoothed solve hold time used to estimate Retry-After
	// for queue sheds (how long until a slot likely frees).
	holdEWMA time.Duration
}

// New builds a controller. Panics on a non-positive slot count — that is a
// construction bug, not a runtime condition.
func New(cfg Config) *Controller {
	if cfg.Slots <= 0 {
		panic("admission: Slots must be > 0")
	}
	if cfg.QueueDepth < 0 {
		panic("admission: QueueDepth must be >= 0")
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	return &Controller{
		cfg:     cfg,
		now:     now,
		tenants: make(map[string]*tenant),
	}
}

// DefaultTenant is the tenant requests without an X-Tenant header map to.
const DefaultTenant = "default"

func (c *Controller) tenantLocked(name string) *tenant {
	if name == "" {
		name = DefaultTenant
	}
	t, ok := c.tenants[name]
	if !ok {
		q, ok := c.cfg.Tenants[name]
		if !ok {
			q = c.cfg.Default
		}
		t = &tenant{
			name:       name,
			quota:      q,
			tokens:     q.burst(),
			lastFill:   c.now(),
			vtime:      c.vclock,
			queueWaits: newWaitRing(512),
		}
		c.tenants[name] = t
	}
	return t
}

// refillLocked tops up the tenant's token bucket for elapsed wall time.
func (c *Controller) refillLocked(t *tenant, now time.Time) {
	if t.quota.RatePerSec <= 0 {
		return
	}
	dt := now.Sub(t.lastFill).Seconds()
	if dt <= 0 {
		return
	}
	t.tokens += dt * t.quota.RatePerSec
	if b := t.quota.burst(); t.tokens > b {
		t.tokens = b
	}
	t.lastFill = now
}

// retryAfterRateLocked estimates when the bucket next holds a full token.
func (c *Controller) retryAfterRateLocked(t *tenant) time.Duration {
	deficit := 1 - t.tokens
	if deficit <= 0 {
		return time.Millisecond
	}
	d := time.Duration(deficit / t.quota.RatePerSec * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// retryAfterQueueLocked estimates when queue space frees: the smoothed hold
// time, floored at 100ms so clients never thundering-herd a hot server.
func (c *Controller) retryAfterQueueLocked() time.Duration {
	d := c.holdEWMA
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

// maxConc resolves the tenant's concurrency cap against the slot count.
func (c *Controller) maxConc(t *tenant) int {
	if t.quota.MaxConcurrent <= 0 || t.quota.MaxConcurrent > c.cfg.Slots {
		return c.cfg.Slots
	}
	return t.quota.MaxConcurrent
}

// maxQueue resolves the tenant's queue cap against the global depth.
func (c *Controller) maxQueue(t *tenant) int {
	if t.quota.MaxQueue <= 0 || t.quota.MaxQueue > c.cfg.QueueDepth {
		return c.cfg.QueueDepth
	}
	return t.quota.MaxQueue
}

// Admit gates one request. It blocks while the request waits in the queue,
// honouring ctx: a context deadline or cancellation while queued removes
// the waiter and returns ctx.Err(). Rejections return *ShedError.
func (c *Controller) Admit(ctx context.Context, tenantName string) (*Decision, error) {
	c.mu.Lock()
	now := c.now()
	t := c.tenantLocked(tenantName)

	if c.draining {
		c.mu.Unlock()
		return nil, &ShedError{Tenant: t.name, Reason: ReasonDraining, RetryAfter: c.retryAfterQueueLocked()}
	}

	// Rate gate first: a rate-shed request never consumes queue space.
	if t.quota.RatePerSec > 0 {
		c.refillLocked(t, now)
		if t.tokens < 1 {
			t.shedRate++
			retry := c.retryAfterRateLocked(t)
			c.mu.Unlock()
			return nil, &ShedError{Tenant: t.name, Reason: ReasonRate, RetryAfter: retry}
		}
		t.tokens--
	}

	// Fast path: free slot, tenant under its concurrency cap, and nobody
	// ahead in the queue (granting out of order would starve waiters).
	if c.inFlight < c.cfg.Slots && t.inFlight < c.maxConc(t) && len(c.queue) == 0 {
		d := c.grantLocked(t, now, false, 0)
		c.mu.Unlock()
		return d, nil
	}

	// Queue gates. A queue-shed request never ran, so its rate token is
	// refunded — the rate quota charges work performed, not work attempted.
	if len(c.queue) >= c.cfg.QueueDepth {
		t.shedQueue++
		c.refundLocked(t)
		retry := c.retryAfterQueueLocked()
		c.mu.Unlock()
		return nil, &ShedError{Tenant: t.name, Reason: ReasonQueueFull, RetryAfter: retry}
	}
	if t.queued >= c.maxQueue(t) {
		t.shedQueue++
		c.refundLocked(t)
		retry := c.retryAfterQueueLocked()
		c.mu.Unlock()
		return nil, &ShedError{Tenant: t.name, Reason: ReasonTenantQueue, RetryAfter: retry}
	}

	// Enqueue under WFQ. Catching the tenant's virtual time up to the
	// global clock on enqueue stops an idle tenant from banking credit
	// while it was away.
	if t.vtime < c.vclock {
		t.vtime = c.vclock
	}
	c.seq++
	w := &waiter{tenant: t, vtime: t.vtime, seq: c.seq, ready: make(chan bool, 1)}
	t.vtime += 1 / t.quota.weight()
	c.insertWaiterLocked(w)
	t.queued++
	pressureAtEnqueue := float64(len(c.queue)) / float64(c.cfg.QueueDepth)
	c.mu.Unlock()

	select {
	case granted := <-w.ready:
		if !granted {
			// Evicted by drain.
			c.mu.Lock()
			retry := c.retryAfterQueueLocked()
			c.mu.Unlock()
			return nil, &ShedError{Tenant: t.name, Reason: ReasonDraining, RetryAfter: retry}
		}
		c.mu.Lock()
		wait := c.now().Sub(now)
		d := c.grantQueuedLocked(t, now, wait, pressureAtEnqueue)
		c.mu.Unlock()
		return d, nil
	case <-ctx.Done():
		c.mu.Lock()
		if c.removeWaiterLocked(w) {
			t.queued--
			c.refundLocked(t)
			c.mu.Unlock()
			return nil, ctx.Err()
		}
		c.mu.Unlock()
		// The grant raced the cancellation: the slot is already ours. Give
		// it straight back and uncount the admission — the request never
		// ran, so it must reconcile as a cancellation, not an admission.
		if granted := <-w.ready; granted {
			c.mu.Lock()
			t.admitted--
			c.refundLocked(t)
			c.inFlight--
			t.inFlight--
			c.dispatchLocked()
			c.mu.Unlock()
		}
		return nil, ctx.Err()
	}
}

// refundLocked returns the rate token a cancelled waiter consumed: the
// request never ran, so it should not count against the tenant's rate.
func (c *Controller) refundLocked(t *tenant) {
	if t.quota.RatePerSec <= 0 {
		return
	}
	t.tokens++
	if b := t.quota.burst(); t.tokens > b {
		t.tokens = b
	}
}

// grantLocked admits a request that never queued.
func (c *Controller) grantLocked(t *tenant, now time.Time, queued bool, wait time.Duration) *Decision {
	c.inFlight++
	t.inFlight++
	t.admitted++
	// Fast-path dispatch advances the tenant's virtual time too, so a
	// tenant hammering the fast path still pays its fair share when the
	// queue later forms.
	if t.vtime < c.vclock {
		t.vtime = c.vclock
	}
	t.vtime += 1 / t.quota.weight()
	pressure := 0.0
	if c.cfg.QueueDepth > 0 {
		pressure = float64(len(c.queue)) / float64(c.cfg.QueueDepth)
	}
	return c.decisionLocked(t, now, queued, wait, pressure)
}

// grantQueuedLocked finalizes a queued request after its ready signal.
// Slot and gauge accounting already happened in dispatchLocked; this only
// builds the Decision and records the wait.
func (c *Controller) grantQueuedLocked(t *tenant, start time.Time, wait time.Duration, pressureAtEnqueue float64) *Decision {
	t.queueWaits.add(wait)
	t.totalWaitNS += int64(wait)
	t.queuedEvents++
	pressure := pressureAtEnqueue
	if c.cfg.QueueDepth > 0 {
		if p := float64(len(c.queue)+1) / float64(c.cfg.QueueDepth); p > pressure {
			pressure = p
		}
	}
	return c.decisionLocked(t, start, true, wait, pressure)
}

func (c *Controller) decisionLocked(t *tenant, now time.Time, queued bool, wait time.Duration, pressure float64) *Decision {
	var once sync.Once
	d := &Decision{Tenant: t.name, Queued: queued, QueueWait: wait, Pressure: pressure}
	start := c.now()
	d.release = func() {
		once.Do(func() { c.release(t, start) })
	}
	return d
}

// release frees a slot, updates the hold-time estimate and dispatches the
// next eligible waiter.
func (c *Controller) release(t *tenant, start time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	hold := c.now().Sub(start)
	if c.holdEWMA == 0 {
		c.holdEWMA = hold
	} else {
		c.holdEWMA = (c.holdEWMA*7 + hold) / 8
	}
	c.inFlight--
	t.inFlight--
	c.dispatchLocked()
}

// dispatchLocked hands free slots to queued waiters in WFQ order, skipping
// tenants at their concurrency cap.
func (c *Controller) dispatchLocked() {
	for c.inFlight < c.cfg.Slots {
		idx := -1
		for i, w := range c.queue {
			if w.tenant.inFlight < c.maxConc(w.tenant) {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		w := c.queue[idx]
		c.queue = append(c.queue[:idx], c.queue[idx+1:]...)
		if w.vtime > c.vclock {
			c.vclock = w.vtime
		}
		w.tenant.queued--
		c.inFlight++
		w.tenant.inFlight++
		w.tenant.admitted++
		w.ready <- true
	}
}

// insertWaiterLocked keeps the queue sorted by (vtime, seq).
func (c *Controller) insertWaiterLocked(w *waiter) {
	i := sort.Search(len(c.queue), func(i int) bool {
		q := c.queue[i]
		if q.vtime != w.vtime {
			return q.vtime > w.vtime
		}
		return q.seq > w.seq
	})
	c.queue = append(c.queue, nil)
	copy(c.queue[i+1:], c.queue[i:])
	c.queue[i] = w
}

// removeWaiterLocked drops w from the queue, reporting whether it was still
// there (false means a dispatch already granted it a slot).
func (c *Controller) removeWaiterLocked(w *waiter) bool {
	for i, q := range c.queue {
		if q == w {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return true
		}
	}
	return false
}

// Drain stops admitting: every new request is shed with ReasonDraining and
// every queued waiter is evicted immediately. In-flight solves are
// untouched; the caller waits for them via InFlight or its own tracking.
func (c *Controller) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining {
		return
	}
	c.draining = true
	for _, w := range c.queue {
		w.tenant.queued--
		w.tenant.shedQueue++
		w.ready <- false
	}
	c.queue = c.queue[:0]
}

// Draining reports whether Drain has been called.
func (c *Controller) Draining() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.draining
}

// InFlight returns the current number of granted, unreleased admissions.
func (c *Controller) InFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inFlight
}

// Queued returns the current number of queued waiters.
func (c *Controller) Queued() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue)
}

// Pressure returns the current queue occupancy in [0, 1].
func (c *Controller) Pressure() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cfg.QueueDepth == 0 {
		return 0
	}
	return float64(len(c.queue)) / float64(c.cfg.QueueDepth)
}

// RecordDegraded counts one degraded (reduced-order) solve for the tenant,
// for /v1/stats attribution.
func (c *Controller) RecordDegraded(tenantName string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tenantLocked(tenantName).degraded++
}
