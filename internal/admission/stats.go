package admission

import (
	"math"
	"sort"
	"time"
)

// waitRing records the most recent queue waits in a fixed-size ring and
// reports percentiles over that window — the same bounded-memory
// nearest-rank scheme the service layer uses for solve latency.
type waitRing struct {
	buf  []float64 // milliseconds
	n    int       // total observations ever
	next int
}

func newWaitRing(size int) *waitRing {
	if size < 16 {
		size = 16
	}
	return &waitRing{buf: make([]float64, 0, size)}
}

// add records one wait. Caller holds the controller mutex.
func (r *waitRing) add(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ms)
	} else {
		r.buf[r.next] = ms
		r.next = (r.next + 1) % cap(r.buf)
	}
	r.n++
}

// percentiles computes nearest-rank (ceil) percentiles over the window.
// Caller holds the controller mutex.
func (r *waitRing) percentiles(ps ...float64) []float64 {
	vals := make([]float64, len(ps))
	if len(r.buf) == 0 {
		return vals
	}
	cp := append([]float64(nil), r.buf...)
	sort.Float64s(cp)
	for i, p := range ps {
		idx := int(math.Ceil(p/100*float64(len(cp)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(cp) {
			idx = len(cp) - 1
		}
		vals[i] = cp[idx]
	}
	return vals
}

// TenantStats is one tenant's /v1/stats block.
type TenantStats struct {
	// Admitted counts granted admissions (fast-path and queued).
	Admitted int64 `json:"admitted"`
	// ShedRate counts rejections from an empty token bucket.
	ShedRate int64 `json:"shed_rate,omitempty"`
	// ShedQueue counts rejections from queue bounds (global, per-tenant,
	// or drain eviction).
	ShedQueue int64 `json:"shed_queue,omitempty"`
	// Degraded counts solves served by the reduced-order backend under
	// pressure (RecordDegraded).
	Degraded int64 `json:"degraded,omitempty"`
	// InFlight and Queued are current gauges, exact under the controller
	// mutex.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// QueuedEvents counts admissions that waited in the queue at all;
	// QueueWaitP50MS/P99MS are percentiles over the most recent waits.
	QueuedEvents   int64   `json:"queued_events,omitempty"`
	QueueWaitP50MS float64 `json:"queue_wait_p50_ms,omitempty"`
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms,omitempty"`
	// MeanQueueWaitMS averages every wait ever recorded (not just the
	// window).
	MeanQueueWaitMS float64 `json:"mean_queue_wait_ms,omitempty"`
	// Weight echoes the effective fair-queuing weight.
	Weight float64 `json:"weight"`
}

// Snapshot is the controller's /v1/stats payload.
type Snapshot struct {
	Slots      int `json:"slots"`
	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`
	Queued     int `json:"queued"`
	// Pressure is the current queue occupancy in [0, 1].
	Pressure float64 `json:"pressure"`
	Draining bool    `json:"draining,omitempty"`
	// Tenants holds one entry per tenant ever seen.
	Tenants map[string]TenantStats `json:"tenants"`
}

// Stats snapshots the controller under its mutex: gauges are exact at the
// instant of the snapshot, counters are monotonic.
func (c *Controller) Stats() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := Snapshot{
		Slots:      c.cfg.Slots,
		QueueDepth: c.cfg.QueueDepth,
		InFlight:   c.inFlight,
		Queued:     len(c.queue),
		Draining:   c.draining,
		Tenants:    make(map[string]TenantStats, len(c.tenants)),
	}
	if c.cfg.QueueDepth > 0 {
		snap.Pressure = float64(len(c.queue)) / float64(c.cfg.QueueDepth)
	}
	for name, t := range c.tenants {
		ps := t.queueWaits.percentiles(50, 99)
		ts := TenantStats{
			Admitted:       t.admitted,
			ShedRate:       t.shedRate,
			ShedQueue:      t.shedQueue,
			Degraded:       t.degraded,
			InFlight:       t.inFlight,
			Queued:         t.queued,
			QueuedEvents:   t.queuedEvents,
			QueueWaitP50MS: ps[0],
			QueueWaitP99MS: ps[1],
			Weight:         t.quota.weight(),
		}
		if t.queuedEvents > 0 {
			ts.MeanQueueWaitMS = float64(t.totalWaitNS) / float64(t.queuedEvents) / 1e6
		}
		snap.Tenants[name] = ts
	}
	return snap
}
