package admission

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock for deterministic rate tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func mustAdmit(t *testing.T, c *Controller, tenant string) *Decision {
	t.Helper()
	d, err := c.Admit(context.Background(), tenant)
	if err != nil {
		t.Fatalf("admit %q: %v", tenant, err)
	}
	return d
}

func TestFastPathAdmitRelease(t *testing.T) {
	c := New(Config{Slots: 2, QueueDepth: 4})
	d1 := mustAdmit(t, c, "")
	if d1.Tenant != DefaultTenant {
		t.Fatalf("tenant %q, want %q", d1.Tenant, DefaultTenant)
	}
	if d1.Queued || d1.QueueWait != 0 {
		t.Fatalf("fast path reported queued: %+v", d1)
	}
	d2 := mustAdmit(t, c, "a")
	if got := c.InFlight(); got != 2 {
		t.Fatalf("in-flight %d, want 2", got)
	}
	d1.Release()
	d2.Release()
	d2.Release() // idempotent: double release must not corrupt gauges
	if got := c.InFlight(); got != 0 {
		t.Fatalf("in-flight after release %d, want 0", got)
	}
}

func TestRateLimitShedsWithRetryAfter(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		Slots: 8, QueueDepth: 8,
		Tenants: map[string]Quota{"metered": {RatePerSec: 2, Burst: 3}},
		Now:     clk.now,
	})
	for i := 0; i < 3; i++ {
		mustAdmit(t, c, "metered").Release()
	}
	_, err := c.Admit(context.Background(), "metered")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonRate {
		t.Fatalf("4th burst request: %v", err)
	}
	// Bucket is empty; one token refills in 1/2 s.
	if shed.RetryAfter < 400*time.Millisecond || shed.RetryAfter > 600*time.Millisecond {
		t.Fatalf("retry-after %v, want ~500ms", shed.RetryAfter)
	}
	// An unmetered tenant is unaffected.
	mustAdmit(t, c, "other").Release()
	// After the advertised wait the request is admitted.
	clk.advance(shed.RetryAfter)
	mustAdmit(t, c, "metered").Release()
	// Idle time refills to burst, no further: 10s >> 3 tokens / 2 per sec.
	clk.advance(10 * time.Second)
	for i := 0; i < 3; i++ {
		mustAdmit(t, c, "metered").Release()
	}
	if _, err := c.Admit(context.Background(), "metered"); !errors.As(err, &shed) {
		t.Fatalf("bucket refilled past burst: %v", err)
	}
	st := c.Stats().Tenants["metered"]
	if st.ShedRate != 2 || st.Admitted != 7 {
		t.Fatalf("metered stats %+v, want 2 rate sheds, 7 admitted", st)
	}
}

// occupy fills every slot with "hold" admissions and returns their release.
func occupy(t *testing.T, c *Controller, tenant string, n int) func() {
	t.Helper()
	ds := make([]*Decision, n)
	for i := range ds {
		ds[i] = mustAdmit(t, c, tenant)
	}
	return func() {
		for _, d := range ds {
			d.Release()
		}
	}
}

func TestQueueFullShedsAndRefundsToken(t *testing.T) {
	c := New(Config{
		Slots: 1, QueueDepth: 1,
		Tenants: map[string]Quota{"m": {RatePerSec: 1, Burst: 10}},
	})
	freeHold := occupy(t, c, "hold", 1)

	// One waiter fills the queue.
	waitErr := make(chan error, 1)
	go func() {
		d, err := c.Admit(context.Background(), "m")
		if d != nil {
			d.Release()
		}
		waitErr <- err
	}()
	waitUntil(t, func() bool { return c.Queued() == 1 })

	_, err := c.Admit(context.Background(), "m")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonQueueFull {
		t.Fatalf("overflow admit: %v", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("queue shed carries no retry-after: %+v", shed)
	}
	freeHold()
	if err := <-waitErr; err != nil {
		t.Fatalf("queued request: %v", err)
	}
	// The shed consumed no net token: burst 10, the queued waiter spent 1
	// and the shed's token was refunded → 9 immediate admissions remain
	// (refill over the test's few milliseconds adds < 0.01 token at 1/s).
	for i := 0; i < 9; i++ {
		mustAdmit(t, c, "m").Release()
	}
	if _, err := c.Admit(context.Background(), "m"); !errors.As(err, &shed) || shed.Reason != ReasonRate {
		t.Fatalf("10th request: %v (queue shed must refund its rate token)", err)
	}
}

func TestTenantQueueCap(t *testing.T) {
	c := New(Config{
		Slots: 1, QueueDepth: 8,
		Tenants: map[string]Quota{"capped": {MaxQueue: 1}},
	})
	freeHold := occupy(t, c, "hold", 1)
	defer freeHold()

	done := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		d, err := c.Admit(ctx, "capped")
		if d != nil {
			d.Release()
		}
		done <- err
	}()
	waitUntil(t, func() bool { return c.Queued() == 1 })

	_, err := c.Admit(context.Background(), "capped")
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonTenantQueue {
		t.Fatalf("capped tenant second waiter: %v", err)
	}
	// Other tenants still queue freely.
	go func() { _, _ = c.Admit(ctx, "free") }()
	waitUntil(t, func() bool { return c.Queued() == 2 })
	cancel()
	<-done
}

func TestCancelWhileQueuedRestoresGauges(t *testing.T) {
	c := New(Config{Slots: 1, QueueDepth: 4})
	freeHold := occupy(t, c, "hold", 1)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, "t")
		done <- err
	}()
	waitUntil(t, func() bool { return c.Queued() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
	if c.Queued() != 0 {
		t.Fatalf("queued %d after cancel, want 0", c.Queued())
	}
	st := c.Stats().Tenants["t"]
	if st.Queued != 0 || st.InFlight != 0 || st.Admitted != 0 {
		t.Fatalf("tenant gauges after cancel: %+v", st)
	}
	freeHold()
	// The slot is reusable.
	mustAdmit(t, c, "t").Release()
}

// TestWeightedFairDispatch pins the WFQ property: with every slot contended,
// a weight-3 tenant drains ~3 queued requests for each weight-1 dispatch.
func TestWeightedFairDispatch(t *testing.T) {
	c := New(Config{
		Slots: 1, QueueDepth: 64,
		Tenants: map[string]Quota{
			"heavy": {Weight: 3},
			"light": {Weight: 1},
		},
	})
	freeHold := occupy(t, c, "hold", 1)

	const perTenant = 12
	var order []string
	var omu sync.Mutex
	var wg sync.WaitGroup
	for _, tenant := range []string{"heavy", "light"} {
		for i := 0; i < perTenant; i++ {
			wg.Add(1)
			go func(tn string) {
				defer wg.Done()
				d, err := c.Admit(context.Background(), tn)
				if err != nil {
					t.Errorf("admit %s: %v", tn, err)
					return
				}
				omu.Lock()
				order = append(order, tn)
				omu.Unlock()
				d.Release()
			}(tenant)
		}
	}
	waitUntil(t, func() bool { return c.Queued() == 2*perTenant })
	freeHold()
	wg.Wait()

	// While both tenants have backlog (the first 16 dispatches — heavy's 12
	// drain within them at a 3:1 share), every window of 8 consecutive
	// dispatches gives heavy ~6 and light ~2. The remaining dispatches are
	// light's leftovers and carry no fairness signal.
	for start := 0; start+8 <= 16; start += 8 {
		heavy := 0
		for _, tn := range order[start : start+8] {
			if tn == "heavy" {
				heavy++
			}
		}
		if heavy < 5 || heavy > 7 {
			t.Fatalf("window %d: heavy got %d of 8 dispatches, want ~6 (order %v)", start, heavy, order)
		}
	}
	// Exhaustion check: both drained completely.
	st := c.Stats()
	if st.Tenants["heavy"].Admitted != perTenant || st.Tenants["light"].Admitted != perTenant {
		t.Fatalf("admitted %+v", st.Tenants)
	}
	if st.Tenants["heavy"].QueueWaitP99MS == 0 {
		t.Fatal("queued dispatches recorded no wait percentile")
	}
}

// TestConcurrencyCapHoldsSlotForOthers: a tenant at MaxConcurrent cannot
// take a free slot even at the head of the queue; an eligible tenant behind
// it is dispatched instead.
func TestConcurrencyCap(t *testing.T) {
	c := New(Config{
		Slots: 2, QueueDepth: 8,
		Tenants: map[string]Quota{"capped": {MaxConcurrent: 1}},
	})
	dCap := mustAdmit(t, c, "capped") // capped tenant at its cap
	// Advance "other"'s virtual time past "capped"'s so the capped waiter
	// heads the queue below — the dispatch must skip past it.
	for i := 0; i < 3; i++ {
		mustAdmit(t, c, "other").Release()
	}
	freeHold := occupy(t, c, "hold", 1)

	capDone := make(chan *Decision, 1)
	go func() {
		d, err := c.Admit(context.Background(), "capped")
		if err != nil {
			t.Errorf("capped: %v", err)
		}
		capDone <- d
	}()
	waitUntil(t, func() bool { return c.Queued() == 1 })

	otherDone := make(chan *Decision, 1)
	go func() {
		d, err := c.Admit(context.Background(), "other")
		if err != nil {
			t.Errorf("other: %v", err)
		}
		otherDone <- d
	}()
	waitUntil(t, func() bool { return c.Queued() == 2 })

	// Free one generic slot: "capped" heads the queue but is at its cap, so
	// "other" must be dispatched past it.
	freeHold()
	dOther := <-otherDone
	select {
	case <-capDone:
		t.Fatal("capped tenant dispatched past its concurrency cap")
	case <-time.After(20 * time.Millisecond):
	}
	// Releasing the capped tenant's original slot unblocks its waiter.
	dCap.Release()
	(<-capDone).Release()
	dOther.Release()
}

func TestDrainEvictsQueueAndShedsNew(t *testing.T) {
	c := New(Config{Slots: 1, QueueDepth: 4})
	hold := mustAdmit(t, c, "work")

	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(context.Background(), "work")
		done <- err
	}()
	waitUntil(t, func() bool { return c.Queued() == 1 })

	c.Drain()
	c.Drain() // idempotent
	var shed *ShedError
	if err := <-done; !errors.As(err, &shed) || shed.Reason != ReasonDraining {
		t.Fatalf("evicted waiter: %v", err)
	}
	if _, err := c.Admit(context.Background(), "work"); !errors.As(err, &shed) || shed.Reason != ReasonDraining {
		t.Fatalf("post-drain admit: %v", err)
	}
	if !c.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	// The in-flight solve is untouched and still releases cleanly.
	if got := c.InFlight(); got != 1 {
		t.Fatalf("in-flight during drain %d, want 1", got)
	}
	hold.Release()
	if got := c.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain release %d, want 0", got)
	}
	if !c.Stats().Draining {
		t.Fatal("snapshot must report draining")
	}
}

// TestGaugeInvariantsUnderStress is the accounting regression test for the
// queued-gauge race the admission controller replaced: hammer Admit/Release
// from many goroutines with random cancellations while a monitor asserts,
// on every observation, 0 <= queued <= QueueDepth and 0 <= inFlight <=
// Slots. The old check-after-increment gauge transiently overcounted.
func TestGaugeInvariantsUnderStress(t *testing.T) {
	const (
		slots   = 4
		depth   = 8
		workers = 32
		iters   = 200
	)
	c := New(Config{
		Slots: slots, QueueDepth: depth,
		Tenants: map[string]Quota{
			"a": {Weight: 2, MaxConcurrent: 3},
			"b": {MaxQueue: 4},
		},
	})
	stop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			q, f := c.Queued(), c.InFlight()
			if q < 0 || q > depth {
				t.Errorf("queued gauge %d outside [0, %d]", q, depth)
				return
			}
			if f < 0 || f > slots {
				t.Errorf("in-flight gauge %d outside [0, %d]", f, slots)
				return
			}
		}
	}()

	tenants := []string{"a", "b", "c"}
	var admitted, shedTotal, cancelled atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iters; i++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if rng.Intn(4) == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(rng.Intn(200))*time.Microsecond)
				}
				d, err := c.Admit(ctx, tenants[rng.Intn(len(tenants))])
				cancel()
				switch {
				case err == nil:
					if rng.Intn(3) == 0 {
						time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
					}
					d.Release()
					admitted.Add(1)
				case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
					cancelled.Add(1)
				default:
					var shed *ShedError
					if !errors.As(err, &shed) {
						t.Errorf("untyped admission error: %v", err)
						return
					}
					shedTotal.Add(1)
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(stop)
	monWG.Wait()

	if got := c.InFlight(); got != 0 {
		t.Fatalf("in-flight %d after quiesce, want 0", got)
	}
	if got := c.Queued(); got != 0 {
		t.Fatalf("queued %d after quiesce, want 0", got)
	}
	// Counter reconciliation: every request ended exactly one way, and the
	// controller's own counters agree with the callers'.
	st := c.Stats()
	var stAdmitted, stShed int64
	for _, ts := range st.Tenants {
		stAdmitted += ts.Admitted
		stShed += ts.ShedRate + ts.ShedQueue
	}
	if total := admitted.Load() + shedTotal.Load() + cancelled.Load(); total != workers*iters {
		t.Fatalf("outcomes %d != requests %d", total, workers*iters)
	}
	if stAdmitted != admitted.Load() {
		t.Fatalf("controller admitted %d, callers saw %d", stAdmitted, admitted.Load())
	}
	if stShed != shedTotal.Load() {
		t.Fatalf("controller shed %d, callers saw %d", stShed, shedTotal.Load())
	}
	if admitted.Load() == 0 || shedTotal.Load() == 0 {
		t.Fatalf("stress run exercised nothing: admitted=%d shed=%d", admitted.Load(), shedTotal.Load())
	}
}

func TestSnapshotShape(t *testing.T) {
	clk := newFakeClock()
	c := New(Config{
		Slots: 2, QueueDepth: 4,
		Default: Quota{RatePerSec: 100},
		Now:     clk.now,
	})
	d := mustAdmit(t, c, "")
	c.RecordDegraded("")
	st := c.Stats()
	if st.Slots != 2 || st.QueueDepth != 4 || st.InFlight != 1 || st.Queued != 0 {
		t.Fatalf("snapshot %+v", st)
	}
	ts, ok := st.Tenants[DefaultTenant]
	if !ok {
		t.Fatalf("no default tenant in %+v", st.Tenants)
	}
	if ts.Admitted != 1 || ts.Degraded != 1 || ts.InFlight != 1 || ts.Weight != 1 {
		t.Fatalf("tenant stats %+v", ts)
	}
	d.Release()
	if got := c.Stats().Tenants[DefaultTenant].InFlight; got != 0 {
		t.Fatalf("tenant in-flight after release %d", got)
	}
}

func TestNewValidation(t *testing.T) {
	for _, cfg := range []Config{{Slots: 0}, {Slots: -1}, {Slots: 1, QueueDepth: -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v accepted", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestPressureSignal(t *testing.T) {
	c := New(Config{Slots: 1, QueueDepth: 4})
	freeHold := occupy(t, c, "hold", 1)
	results := make(chan *Decision, 3)
	for i := 0; i < 3; i++ {
		go func() {
			d, err := c.Admit(context.Background(), "t")
			if err != nil {
				t.Errorf("admit: %v", err)
			}
			results <- d
		}()
	}
	waitUntil(t, func() bool { return c.Queued() == 3 })
	if p := c.Pressure(); p != 0.75 {
		t.Fatalf("pressure %v, want 0.75", p)
	}
	freeHold()
	for i := 0; i < 3; i++ {
		d := <-results
		// Each waiter saw at least its own enqueue-time occupancy.
		if d.Pressure < 0.25 {
			t.Fatalf("decision pressure %v, want >= 0.25", d.Pressure)
		}
		if !d.Queued || d.QueueWait < 0 {
			t.Fatalf("queued decision %+v", d)
		}
		d.Release()
	}
	if p := c.Pressure(); p != 0 {
		t.Fatalf("idle pressure %v", p)
	}
}

// waitUntil polls cond to avoid sleeping for fixed durations in tests.
func waitUntil(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// TestShedErrorMessage pins the error string format clients see in logs.
func TestShedErrorMessage(t *testing.T) {
	e := &ShedError{Tenant: "t", Reason: ReasonRate, RetryAfter: time.Second}
	want := `admission: tenant "t" shed (rate), retry after 1s`
	if e.Error() != want {
		t.Fatalf("error %q, want %q", e.Error(), want)
	}
	if fmt.Sprintf("%v", e) != want {
		t.Fatal("ShedError must format identically via fmt verbs")
	}
}
