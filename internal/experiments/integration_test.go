package experiments

import (
	"math"
	"testing"

	"repro/internal/dtm"
	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/ircam"
	"repro/internal/sensors"
)

// TestFullPipelineIntegration chains every layer once: synthetic workload →
// Wattch power trace → thermal model → sensor placement → DTM closed loop →
// IR camera. It asserts cross-layer consistency rather than any single
// paper number.
func TestFullPipelineIntegration(t *testing.T) {
	fp := floorplan.EV6()

	// 1. Workload → power.
	tr, err := gccPowerTrace(6_000_000, 2_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Interval <= 0 || len(tr.Rows) < 100 {
		t.Fatalf("trace malformed: %d rows at %g s", len(tr.Rows), tr.Interval)
	}

	// 2. Thermal model, steady state.
	model, err := evOil(hotspot.LeftToRight, 0.3, true, fig12AmbientK)
	if err != nil {
		t.Fatal(err)
	}
	powers := avgPowerMap(tr)
	vec, err := model.PowerVector(powers)
	if err != nil {
		t.Fatal(err)
	}
	steady := model.SteadyState(vec)
	hotName, hotC := steady.Hottest()
	if hotC <= materials45() {
		t.Fatalf("hot spot %.1f °C below ambient", hotC)
	}

	// 3. Sensor placement on the steady map.
	grid := steady.Grid(32, 32)
	tm, err := sensors.NewThermalMap(32, 32, fp.Width(), fp.Height(), grid)
	if err != nil {
		t.Fatal(err)
	}
	// The hot blocks are sub-millimeter, so the candidate grid must be
	// fine enough for a sensor to land inside them.
	placed, errC, err := sensors.Place(sensors.CandidateGrid(fp, 16, 16), []*sensors.ThermalMap{tm}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if errC > 10 {
		t.Fatalf("2-sensor placement error %.2f °C too large for its own training map", errC)
	}
	// The first sensor should land in (or adjacent to) the hottest block's
	// neighborhood — sanity of the placement objective.
	if placed[0].Block == "" {
		t.Fatal("sensor not attached to a block")
	}

	// 4. DTM closed loop using the placed sensors.
	views := make([]dtm.SensorView, len(placed))
	for i, s := range placed {
		views[i] = dtm.SensorView{Block: s.Block}
	}
	metrics, _, err := dtm.Run(dtm.Config{
		Model: model, Trace: tr,
		Sensors: views,
		Policy: dtm.Policy{
			TriggerC:       hotC - 2,
			EngageDuration: 5e-3,
			SampleInterval: tr.Interval * 10,
			PerfFactor:     0.5,
		},
		EmergencyC:    hotC + 20,
		InitialSteady: true,
	}, hotName)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.PeakC < 45 {
		t.Fatalf("implausible DTM peak %.1f", metrics.PeakC)
	}

	// 5. IR camera over the same map: blurred max ≤ true max.
	cam := ircam.Camera{FrameRate: 60, PixelsX: 32, PixelsY: 32, PSFSigmaPixels: 1}
	img, err := cam.Capture(tm)
	if err != nil {
		t.Fatal(err)
	}
	trueMax, _, _ := tm.Max()
	seenMax, _, _ := img.Max()
	if seenMax > trueMax+1e-9 {
		t.Fatalf("camera cannot see hotter than reality: %g vs %g", seenMax, trueMax)
	}

	// 6. Power inversion closes the loop within tolerance.
	inverted, err := ircam.InvertPower(model, steady.BlocksC(), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range fp.Names() {
		want := powers[n]
		if math.Abs(inverted[i]-want) > 0.02*(1+want) {
			t.Fatalf("inversion mismatch at %s: %.3f vs %.3f", n, inverted[i], want)
		}
	}
}

func materials45() float64 { return 45 }

// TestExperimentDeterminism: the workload pipeline is seeded, so repeated
// experiment runs produce identical headline numbers.
func TestExperimentDeterminism(t *testing.T) {
	a, err := Fig11FlowDirections(quick)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig11FlowDirections(quick)
	if err != nil {
		t.Fatal(err)
	}
	for d := range a.TempC {
		for i := range a.TempC[d] {
			if a.TempC[d][i] != b.TempC[d][i] {
				t.Fatalf("nondeterministic result at [%d][%d]", d, i)
			}
		}
	}
}
