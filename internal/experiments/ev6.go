package experiments

import (
	"fmt"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/materials"
)

// fig12AmbientK is the paper's Fig. 12 ambient: "a typical 45 °C".
const fig12AmbientK = 45 + materials.KelvinOffset

// Fig10Result holds the steady-state EV6/gcc maps for both packages (the
// paper's Fig. 10: OIL-SILICON ≈30 °C hotter maximum and ≈55 °C larger
// across-die gradient).
type Fig10Result struct {
	BlockOilC, BlockAirC map[string]float64
	OilMax, AirMax       float64
	OilSpread, AirSpread float64
	OilHot, AirHot       string
	TotalPowerW          float64
	GridOilC, GridAirC   []float64
	GridNX               int
}

// Fig10SteadyMaps runs gcc through the uarch/power pipeline and solves both
// packages' steady states on the average power.
func Fig10SteadyMaps(opt Options) (*Fig10Result, error) {
	cycles := uint64(60_000_000)
	warmup := uint64(5_000_000)
	if opt.Quick {
		cycles, warmup = 10_000_000, 3_000_000
	}
	tr, err := gccPowerTrace(cycles, warmup)
	if err != nil {
		return nil, err
	}
	powers := avgPowerMap(tr)
	oil, err := evOil(hotspot.Uniform, 1.0, false, fig12AmbientK)
	if err != nil {
		return nil, err
	}
	air, err := evAir(1.0, false, fig12AmbientK)
	if err != nil {
		return nil, err
	}
	pOil, err := oil.PowerVector(powers)
	if err != nil {
		return nil, err
	}
	pAir, err := air.PowerVector(powers)
	if err != nil {
		return nil, err
	}
	ro := oil.SteadyState(pOil)
	ra := air.SteadyState(pAir)
	res := &Fig10Result{
		BlockOilC: blockCMap(oil, ro),
		BlockAirC: blockCMap(air, ra),
		OilSpread: ro.Spread(), AirSpread: ra.Spread(),
		TotalPowerW: tr.TotalAverage(),
		GridNX:      48,
		GridOilC:    ro.Grid(48, 48),
		GridAirC:    ra.Grid(48, 48),
	}
	res.OilHot, res.OilMax = ro.Hottest()
	res.AirHot, res.AirMax = ra.Hottest()
	return res, nil
}

func (r *Fig10Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 10 — steady EV6/gcc maps, both packages, R_conv = 1.0 K/W\n")
	fmt.Fprintf(&sb, "gcc average chip power: %.1f W\n", r.TotalPowerW)
	fmt.Fprintf(&sb, "max: OIL %.0f °C (%s) vs AIR %.0f °C (%s) — paper: oil ≈30 °C hotter\n",
		r.OilMax, r.OilHot, r.AirMax, r.AirHot)
	fmt.Fprintf(&sb, "across-die spread: OIL %.0f °C vs AIR %.0f °C — paper: ≈55 °C larger for oil\n",
		r.OilSpread, r.AirSpread)
	rows := make([][]string, 0, len(r.BlockOilC))
	for _, name := range hottestBlocks(r.BlockOilC, len(r.BlockOilC)) {
		rows = append(rows, []string{name, f1(r.BlockOilC[name]), f1(r.BlockAirC[name])})
	}
	sb.WriteString(table([]string{"block", "oil(°C)", "air(°C)"}, rows))
	return sb.String()
}

// Fig11Result is the flow-direction table (the paper's Fig. 11): steady EV6
// temperatures under the four oil flow directions, with the hottest unit
// flipping from IntReg to Dcache for the top-to-bottom flow.
type Fig11Result struct {
	Blocks []string
	// TempC[d][i] is block i under Directions[d] (°C).
	TempC [4][]float64
	// Hottest per direction.
	Hottest [4]string
}

// Fig11FlowDirections runs the four-direction sweep on the gcc average
// power.
func Fig11FlowDirections(opt Options) (*Fig11Result, error) {
	cycles := uint64(40_000_000)
	warmup := uint64(5_000_000)
	if opt.Quick {
		cycles, warmup = 8_000_000, 3_000_000
	}
	tr, err := gccPowerTrace(cycles, warmup)
	if err != nil {
		return nil, err
	}
	powers := avgPowerMap(tr)
	res := &Fig11Result{Blocks: floorplan.EV6().Names()}
	for d, dir := range hotspot.Directions {
		m, err := evOil(dir, 1.0, false, fig12AmbientK)
		if err != nil {
			return nil, err
		}
		p, err := m.PowerVector(powers)
		if err != nil {
			return nil, err
		}
		r := m.SteadyState(p)
		res.TempC[d] = r.BlocksC()
		res.Hottest[d], _ = r.Hottest()
	}
	return res, nil
}

func (r *Fig11Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 11 — EV6 steady temperatures under four oil flow directions (°C)\n")
	header := []string{"units", "left to right", "right to left", "bottom to top", "top to bottom"}
	rows := make([][]string, len(r.Blocks))
	for i, b := range r.Blocks {
		rows[i] = []string{b, f2(r.TempC[0][i]), f2(r.TempC[1][i]), f2(r.TempC[2][i]), f2(r.TempC[3][i])}
	}
	sb.WriteString(table(header, rows))
	fmt.Fprintf(&sb, "hottest: %s | %s | %s | %s\n", r.Hottest[0], r.Hottest[1], r.Hottest[2], r.Hottest[3])
	sb.WriteString("(paper: IntReg for the first three, Dcache for top-to-bottom)\n")
	return sb.String()
}

// Fig12Result holds the trace-driven temperature series of the five hottest
// EV6 blocks for both packages at R_conv = 0.3 K/W and 45 °C ambient (the
// paper's Fig. 12, sampled every 10 K cycles ≈ 3.3 µs).
type Fig12Result struct {
	Blocks     []string // the five plotted blocks
	TimesUS    []float64
	OilC, AirC map[string][]float64
	// Summary statistics.
	OilMeanAvgC, AirMeanAvgC float64 // cross-die average temperature
	OilPeakC, AirPeakC       float64
	// HeatCool3ms reports the largest IntReg temperature change over any
	// 3 ms window (the paper: ≈5 °C in 3 ms for AIR-SINK; OIL-SILICON's
	// phases are much longer than 15 ms).
	AirRise3ms, OilRise3ms float64
	SampleIntervalUS       float64
}

// Fig12TempTraces runs the trace-driven co-simulation.
func Fig12TempTraces(opt Options) (*Fig12Result, error) {
	cycles := uint64(120_000_000) // 12 000 samples
	warmup := uint64(5_000_000)
	if opt.Quick {
		cycles, warmup = 20_000_000, 3_000_000
	}
	tr, err := gccPowerTrace(cycles, warmup)
	if err != nil {
		return nil, err
	}
	oil, err := evOil(hotspot.Uniform, 0.3, false, fig12AmbientK)
	if err != nil {
		return nil, err
	}
	air, err := evAir(0.3, false, fig12AmbientK)
	if err != nil {
		return nil, err
	}
	fp := floorplan.EV6()

	// Both packages replay the same trace; warm-start each from its own
	// average-power steady state and fan the two replays across the batched
	// transient API.
	prep := func(m *hotspot.Model) (hotspot.SweepJob, error) {
		pAvg, err := m.PowerVector(avgPowerMap(tr))
		if err != nil {
			return hotspot.SweepJob{}, err
		}
		return hotspot.SweepJob{Model: m, TraceJob: hotspot.TraceJob{
			Temps:       m.SteadyState(pAvg).Temps,
			Schedule:    func(t float64, p []float64) { copy(p, tr.At(t)) },
			Duration:    tr.Duration(),
			SampleEvery: tr.Interval,
		}}, nil
	}
	oilJob, err := prep(oil)
	if err != nil {
		return nil, err
	}
	airJob, err := prep(air)
	if err != nil {
		return nil, err
	}
	pts, err := hotspot.RunSweep([]hotspot.SweepJob{oilJob, airJob}, 0)
	if err != nil {
		return nil, err
	}
	oilPts, airPts := pts[0], pts[1]

	// Pick the five hottest blocks by time-average air temperature.
	meanC := map[string]float64{}
	for i, name := range fp.Names() {
		var s float64
		for _, p := range airPts {
			s += p.BlockC[i]
		}
		meanC[name] = s / float64(len(airPts))
	}
	blocks := hottestBlocks(meanC, 5)

	res := &Fig12Result{
		Blocks:           blocks,
		OilC:             map[string][]float64{},
		AirC:             map[string][]float64{},
		SampleIntervalUS: tr.Interval * 1e6,
	}
	for _, p := range oilPts {
		res.TimesUS = append(res.TimesUS, p.Time*1e6)
	}
	for _, b := range blocks {
		bi := fp.Index(b)
		for _, p := range oilPts {
			res.OilC[b] = append(res.OilC[b], p.BlockC[bi])
			if p.BlockC[bi] > res.OilPeakC {
				res.OilPeakC = p.BlockC[bi]
			}
		}
		for _, p := range airPts {
			res.AirC[b] = append(res.AirC[b], p.BlockC[bi])
			if p.BlockC[bi] > res.AirPeakC {
				res.AirPeakC = p.BlockC[bi]
			}
		}
	}
	// Cross-die averages (area-weighted) at the end of the run.
	res.OilMeanAvgC = areaAvgC(fp, oilPts[len(oilPts)-1].BlockC)
	res.AirMeanAvgC = areaAvgC(fp, airPts[len(airPts)-1].BlockC)

	// Largest IntReg swing in a 3 ms window.
	rise3 := func(series []float64, intervalS float64) float64 {
		win := int(3e-3 / intervalS)
		if win < 1 {
			win = 1
		}
		var best float64
		for i := 0; i+win < len(series); i++ {
			if d := series[i+win] - series[i]; d > best {
				best = d
			}
		}
		return best
	}
	ir := "IntReg"
	if _, ok := res.AirC[ir]; !ok {
		ir = blocks[0]
	}
	res.AirRise3ms = rise3(res.AirC[ir], tr.Interval)
	res.OilRise3ms = rise3(res.OilC[ir], tr.Interval)
	return res, nil
}

func (r *Fig12Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 12 — EV6/gcc temperature traces, R_conv = 0.3 K/W, ambient 45 °C\n")
	fmt.Fprintf(&sb, "sampling every %.2f µs (paper: ≈3.3 µs per 10K cycles)\n", r.SampleIntervalUS)
	fmt.Fprintf(&sb, "plotted blocks (hottest five): %s\n", strings.Join(r.Blocks, ", "))
	fmt.Fprintf(&sb, "peak: OIL %.0f °C vs AIR %.0f °C (paper: ≈170 vs ≈85)\n", r.OilPeakC, r.AirPeakC)
	fmt.Fprintf(&sb, "cross-die average: OIL %.0f °C vs AIR %.0f °C (about the same, per the paper)\n",
		r.OilMeanAvgC, r.AirMeanAvgC)
	fmt.Fprintf(&sb, "largest 3 ms IntReg rise: AIR %.1f °C, OIL %.1f °C (paper: ≈5 °C in 3 ms)\n",
		r.AirRise3ms, r.OilRise3ms)
	// A small excerpt of the series.
	rows := make([][]string, 0, 12)
	stride := len(r.TimesUS) / 10
	if stride == 0 {
		stride = 1
	}
	b0 := r.Blocks[0]
	for i := 0; i < len(r.TimesUS); i += stride {
		rows = append(rows, []string{f1(r.TimesUS[i]), f1(r.AirC[b0][i]), f1(r.OilC[b0][i])})
	}
	sb.WriteString(table([]string{"t(µs)", "air " + b0, "oil " + b0}, rows))
	return sb.String()
}
