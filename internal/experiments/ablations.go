package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
)

// AblationLocalHResult quantifies what the local h(x) model adds: with the
// plate-average coefficient everywhere (direction-blind), the Fig. 11
// direction dependence collapses to nothing.
type AblationLocalHResult struct {
	// MaxDirectionalDeltaC is the largest per-block temperature difference
	// across the four directions with local h(x).
	MaxDirectionalDeltaC float64
	// UniformDeltaC is the same quantity when every direction uses the
	// plate-average h (should be ≈0).
	UniformDeltaC float64
	HotBlockFlips bool // does the hottest unit change with direction?
}

// AblationLocalH runs the Fig. 11 sweep with and without the local-h model.
func AblationLocalH(opt Options) (*AblationLocalHResult, error) {
	tr, err := gccPowerTrace(8_000_000, 3_000_000)
	if err != nil {
		return nil, err
	}
	powers := avgPowerMap(tr)
	run := func(local bool) (float64, map[string]bool, error) {
		var per [][]float64
		hotset := map[string]bool{}
		for _, dir := range hotspot.Directions {
			useDir := dir
			if !local {
				useDir = hotspot.Uniform
			}
			m, err := evOil(useDir, 1.0, false, fig12AmbientK)
			if err != nil {
				return 0, nil, err
			}
			p, err := m.PowerVector(powers)
			if err != nil {
				return 0, nil, err
			}
			r := m.SteadyState(p)
			per = append(per, r.BlocksC())
			h, _ := r.Hottest()
			hotset[h] = true
		}
		var maxDelta float64
		for bi := range per[0] {
			lo, hi := per[0][bi], per[0][bi]
			for _, series := range per {
				lo = math.Min(lo, series[bi])
				hi = math.Max(hi, series[bi])
			}
			maxDelta = math.Max(maxDelta, hi-lo)
		}
		return maxDelta, hotset, nil
	}
	localDelta, localHot, err := run(true)
	if err != nil {
		return nil, err
	}
	uniformDelta, _, err := run(false)
	if err != nil {
		return nil, err
	}
	return &AblationLocalHResult{
		MaxDirectionalDeltaC: localDelta,
		UniformDeltaC:        uniformDelta,
		HotBlockFlips:        len(localHot) > 1,
	}, nil
}

func (r *AblationLocalHResult) String() string {
	return fmt.Sprintf(`ablation — local h(x) vs uniform h
max per-block delta across directions: local %.1f °C, uniform %.2f °C
hottest unit changes with direction: %v
(the entire Fig. 11 effect lives in the local-h model)
`, r.MaxDirectionalDeltaC, r.UniformDeltaC, r.HotBlockFlips)
}

// AblationBoundaryCapResult quantifies the oil boundary layer's thermal
// capacitance (paper eq. 3): removing it changes the sub-millisecond
// response but not the steady state.
type AblationBoundaryCapResult struct {
	SteadyDeltaC float64
	// Rise over the first 0.2 s of a power step, with and without C_oil.
	// The oil layer adds ≈30% to the R_conv·C time constant (eq. 6), so the
	// capacitance-less model runs visibly ahead at this time scale.
	RiseWithC, RiseWithoutC float64
}

// AblationBoundaryCap runs the comparison on the validation die.
func AblationBoundaryCap(opt Options) (*AblationBoundaryCapResult, error) {
	fp := floorplan.UniformDie("die", 0.020, 0.020)
	build := func(disable bool) (*hotspot.Model, error) {
		return hotspot.New(hotspot.Config{
			Floorplan: fp, DieThickness: 0.5e-3, AmbientK: 300,
			Package: hotspot.OilSilicon,
			Oil:     hotspot.OilConfig{Direction: hotspot.Uniform, DisableBoundaryCapacitance: disable},
		})
	}
	with, err := build(false)
	if err != nil {
		return nil, err
	}
	without, err := build(true)
	if err != nil {
		return nil, err
	}
	rise := func(m *hotspot.Model) (float64, float64, error) {
		p, err := m.PowerVector(map[string]float64{"die": 200})
		if err != nil {
			return 0, 0, err
		}
		state := m.AmbientState()
		if err := m.Transient(state, p, 0.2, 1e-3); err != nil {
			return 0, 0, err
		}
		return m.NewResult(state).BlockK("die") - 300, m.SteadyState(p).BlockK("die"), nil
	}
	rw, sw, err := rise(with)
	if err != nil {
		return nil, err
	}
	rwo, swo, err := rise(without)
	if err != nil {
		return nil, err
	}
	return &AblationBoundaryCapResult{
		SteadyDeltaC: math.Abs(sw - swo),
		RiseWithC:    rw,
		RiseWithoutC: rwo,
	}, nil
}

func (r *AblationBoundaryCapResult) String() string {
	return fmt.Sprintf(`ablation — oil boundary-layer capacitance (eq. 3)
steady-state difference: %.3g °C (must be ~0)
0.2 s step rise: with C_oil %.1f K, without %.1f K
`, r.SteadyDeltaC, r.RiseWithC, r.RiseWithoutC)
}

// AblationIntegratorResult compares the backward-Euler default against the
// HotSpot-style adaptive RK4 on a stiff OIL-SILICON transient.
type AblationIntegratorResult struct {
	FinalDeltaK  float64 // disagreement after the run
	BETime       time.Duration
	AdaptiveTime time.Duration
}

// AblationIntegrator times both integrators on the same warmup transient.
func AblationIntegrator(opt Options) (*AblationIntegratorResult, error) {
	m, err := evOil(hotspot.Uniform, 1.0, false, warmupAmbientK)
	if err != nil {
		return nil, err
	}
	p, err := m.PowerVector(map[string]float64{"IntReg": 2})
	if err != nil {
		return nil, err
	}
	duration := 0.25
	s1 := m.AmbientState()
	t0 := time.Now()
	if err := m.Transient(s1, p, duration, 1e-3); err != nil {
		return nil, err
	}
	beTime := time.Since(t0)
	s2 := m.AmbientState()
	t0 = time.Now()
	if err := m.TransientAdaptive(s2, p, duration, 1e-5); err != nil {
		return nil, err
	}
	adTime := time.Since(t0)
	var delta float64
	for i := range s1 {
		if d := math.Abs(s1[i] - s2[i]); d > delta {
			delta = d
		}
	}
	return &AblationIntegratorResult{FinalDeltaK: delta, BETime: beTime, AdaptiveTime: adTime}, nil
}

func (r *AblationIntegratorResult) String() string {
	return fmt.Sprintf(`ablation — integrator choice on a stiff oil network (0.25 s warmup)
backward Euler (1 ms steps): %v
adaptive RK4 (1e-5 K tol):  %v
final-state disagreement: %.3f K
`, r.BETime, r.AdaptiveTime, r.FinalDeltaK)
}

// AblationSpreaderResult quantifies the copper spreader/sink lateral
// contribution: thinning the spreader pushes the AIR-SINK gradient toward
// OIL-SILICON's.
type AblationSpreaderResult struct {
	SpreadNormalC float64 // default 1 mm spreader
	SpreadThinC   float64 // 0.1 mm spreader
	SpreadOilC    float64 // oil reference
}

// AblationSpreader runs the comparison.
func AblationSpreader(opt Options) (*AblationSpreaderResult, error) {
	power := map[string]float64{"IntReg": 2}
	spreadFor := func(thick float64) (float64, error) {
		m, err := hotspot.New(hotspot.Config{
			Floorplan: floorplan.EV6(), AmbientK: warmupAmbientK,
			Package: hotspot.AirSink,
			Air:     hotspot.AirSinkConfig{RConvec: 1.0, SpreaderThickness: thick},
		})
		if err != nil {
			return 0, err
		}
		p, err := m.PowerVector(power)
		if err != nil {
			return 0, err
		}
		return m.SteadyState(p).Spread(), nil
	}
	normal, err := spreadFor(1e-3)
	if err != nil {
		return nil, err
	}
	thin, err := spreadFor(0.1e-3)
	if err != nil {
		return nil, err
	}
	oil, err := evOil(hotspot.Uniform, 1.0, false, warmupAmbientK)
	if err != nil {
		return nil, err
	}
	p, err := oil.PowerVector(power)
	if err != nil {
		return nil, err
	}
	return &AblationSpreaderResult{
		SpreadNormalC: normal,
		SpreadThinC:   thin,
		SpreadOilC:    oil.SteadyState(p).Spread(),
	}, nil
}

func (r *AblationSpreaderResult) String() string {
	var sb strings.Builder
	sb.WriteString("ablation — copper lateral spreading\n")
	sb.WriteString(table([]string{"configuration", "across-die spread (°C)"}, [][]string{
		{"AIR-SINK, 1 mm spreader", f1(r.SpreadNormalC)},
		{"AIR-SINK, 0.1 mm spreader", f1(r.SpreadThinC)},
		{"OIL-SILICON (no spreader)", f1(r.SpreadOilC)},
	}))
	sb.WriteString("(removing copper pushes the gradient toward the oil configuration)\n")
	return sb.String()
}
