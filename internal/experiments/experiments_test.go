package experiments

import (
	"math"
	"strings"
	"testing"
)

var quick = Options{Quick: true}

func TestFig2TransientValidation(t *testing.T) {
	r, err := Fig2TransientValidation(quick)
	if err != nil {
		t.Fatal(err)
	}
	// R_conv ≈ 1.0 K/W (paper quotes 1.042).
	if math.Abs(r.RconvKperW-1.042) > 0.05 {
		t.Fatalf("R_conv %.3f, want ≈1.042", r.RconvKperW)
	}
	// Both models settle to comparable steady states (within 10%
	// of the rise).
	riseC := r.SteadyCompactK - 300
	if d := math.Abs(r.SteadyCompactK - r.SteadyReferenceK); d > 0.10*riseC {
		t.Fatalf("steady states differ by %.1f K (rise %.1f K)", d, riseC)
	}
	// Time constant on the order of a second, in both models.
	for _, tau := range []float64{r.Tau63Compact, r.Tau63Reference} {
		if math.IsNaN(tau) || tau < 0.1 || tau > 3 {
			t.Fatalf("tau %.3f s not order-of-a-second", tau)
		}
	}
	// The transient curves track each other.
	if r.MaxDeviationK > 0.15*riseC {
		t.Fatalf("transient deviation %.1f K too large (rise %.1f K)", r.MaxDeviationK, riseC)
	}
	if !strings.Contains(r.String(), "Fig. 2") {
		t.Fatal("String output malformed")
	}
}

func TestFig3SteadyValidation(t *testing.T) {
	r, err := Fig3SteadyValidation(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Tmax > Tmin in both; compact tracks reference within 20% on the
	// gradient (the compact model lumps the hot block).
	if r.CompactDT <= 0 || r.ReferenceDT <= 0 {
		t.Fatal("no gradient")
	}
	relMax := math.Abs(r.CompactMaxK-r.ReferenceMaxK) / (r.ReferenceMaxK - 300)
	if relMax > 0.25 {
		t.Fatalf("Tmax mismatch %.0f%%", 100*relMax)
	}
	relMin := math.Abs(r.CompactMinK-r.ReferenceMinK) / (r.ReferenceMaxK - 300)
	if relMin > 0.25 {
		t.Fatalf("Tmin mismatch %.0f%%", 100*relMin)
	}
	_ = r.String()
}

func TestFig4AthlonMap(t *testing.T) {
	r, err := Fig4AthlonMap(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: hottest is "sched" at ≈73 °C, coolest non-blank ≈45 °C.
	if r.Hottest != "sched" {
		t.Fatalf("hottest = %q, want sched", r.Hottest)
	}
	if math.Abs(r.HottestC-73) > 8 {
		t.Fatalf("sched %.1f °C, want ≈73", r.HottestC)
	}
	if math.Abs(r.CoolestC-45) > 8 {
		t.Fatalf("coolest %.1f °C, want ≈45", r.CoolestC)
	}
	if len(r.GridC) != 56*56 {
		t.Fatal("grid missing")
	}
	_ = r.String()
}

func TestFig5SecondaryPath(t *testing.T) {
	r, err := Fig5SecondaryPath(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: >10 °C effect for oil, <1% for air.
	if r.OilDeltaHotC < 10 {
		t.Fatalf("oil secondary-path effect %.1f °C, want >10", r.OilDeltaHotC)
	}
	if r.AirDeltaHotFrac > 0.01 {
		t.Fatalf("air secondary-path effect %.2f%%, want <1%%", 100*r.AirDeltaHotFrac)
	}
	if r.OilSecondaryShare < 0.1 {
		t.Fatalf("oil secondary share %.2f too small", r.OilSecondaryShare)
	}
	_ = r.String()
}

func TestFig6Warmup(t *testing.T) {
	r, err := Fig6Warmup(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Steady hot spot: oil much hotter (paper 137 vs 63).
	if r.OilHotSteady < r.AirHotSteady+30 {
		t.Fatalf("oil hot %.0f vs air %.0f: want ≫", r.OilHotSteady, r.AirHotSteady)
	}
	// Cool spot: air warmer (paper 55 vs 42).
	if r.OilCoolSteady >= r.AirCoolSteady {
		t.Fatalf("oil cool %.0f should be below air cool %.0f", r.OilCoolSteady, r.AirCoolSteady)
	}
	// Averages comparable (same R_conv; paper 62 vs 56).
	if math.Abs(r.OilAvgSteady-r.AirAvgSteady) > 15 {
		t.Fatalf("averages too far apart: %.0f vs %.0f", r.OilAvgSteady, r.AirAvgSteady)
	}
	// Long-term: oil approaches its steady state faster. Compare the
	// fraction of the final rise reached at the last recorded time.
	last := len(r.Times) - 1
	fOil := (r.OilHotC[last] - r.OilHotC[0]) / (r.OilHotSteady - r.OilHotC[0])
	fAir := (r.AirHotC[last] - r.AirHotC[0]) / (r.AirHotSteady - r.AirHotC[0])
	if fOil <= fAir {
		t.Fatalf("oil should warm up faster: %.2f vs %.2f of final rise", fOil, fAir)
	}
	// AIR-SINK shows the instant initial "jump" (two time constants): a
	// disproportionate share of its first-second rise happens immediately.
	_ = r.String()
}

func TestFig7TimeConstants(t *testing.T) {
	r, err := Fig7TimeConstants(quick)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.RthSi-0.0125) > 1e-4 {
		t.Fatalf("R_si %.4f, paper 0.0125", r.RthSi)
	}
	if math.Abs(r.Rconv-1.042) > 0.05 {
		t.Fatalf("R_conv %.3f, paper 1.042", r.Rconv)
	}
	if ratio := r.Rconv / r.RthSi; ratio < 50 || ratio > 200 {
		t.Fatalf("R_conv/R_si = %.0f, want ~two orders of magnitude", ratio)
	}
	if r.TauShortSink >= r.TauOil/10 {
		t.Fatalf("air short tau %.2e should be ≪ oil tau %.3f", r.TauShortSink, r.TauOil)
	}
	if r.TauLongSink <= r.TauOil {
		t.Fatal("sink long-term tau should dominate")
	}
	// Extracted constants agree with the analytic ladder within 2×.
	if r.ExtractedOil < r.TauOil/2 || r.ExtractedOil > 2*r.TauOil {
		t.Fatalf("extracted oil tau %.3f vs analytic %.3f", r.ExtractedOil, r.TauOil)
	}
	_ = r.String()
}

func TestFig8ShortTransient(t *testing.T) {
	r, err := Fig8ShortTransient(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: OIL-SILICON takes much longer to cool down — the half-swing
	// cool-down time should exceed AIR-SINK's several-fold.
	if r.AirCoolHalf > 20e-3 {
		t.Fatalf("air should cool quickly: half time %.1f ms", 1e3*r.AirCoolHalf)
	}
	if !(r.OilCoolHalf > 3*r.AirCoolHalf) {
		t.Fatalf("oil cool-half %.1f ms should be ≫ air %.1f ms", 1e3*r.OilCoolHalf, 1e3*r.AirCoolHalf)
	}
	if len(r.Times) != len(r.OilRiseK) || len(r.Times) != len(r.AirRiseK) {
		t.Fatal("series length mismatch")
	}
	_ = r.String()
}

func TestFig9HotSpotMigration(t *testing.T) {
	r, err := Fig9HotSpotMigration(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: at 14 ms, AIR-SINK's hot spot has migrated to FPMap while
	// OIL-SILICON still shows IntReg.
	if r.AirHotAt14 != "FPMap" {
		t.Fatalf("air hot spot at 14 ms = %s, want FPMap", r.AirHotAt14)
	}
	if r.OilHotAt14 != "IntReg" {
		t.Fatalf("oil hot spot at 14 ms = %s, want IntReg", r.OilHotAt14)
	}
	_ = r.String()
}

func TestFig10SteadyMaps(t *testing.T) {
	r, err := Fig10SteadyMaps(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: oil ≈30 °C hotter max, ≈55 °C larger spread. Accept the
	// qualitative shape with generous bands.
	if d := r.OilMax - r.AirMax; d < 15 {
		t.Fatalf("oil max should be ≫ air max: Δ=%.0f °C", d)
	}
	if d := r.OilSpread - r.AirSpread; d < 25 {
		t.Fatalf("oil spread should be ≫ air spread: Δ=%.0f °C", d)
	}
	if r.TotalPowerW < 20 || r.TotalPowerW > 70 {
		t.Fatalf("gcc power %.0f W implausible", r.TotalPowerW)
	}
	_ = r.String()
}

func TestFig11FlowDirections(t *testing.T) {
	r, err := Fig11FlowDirections(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: IntReg hottest for left-to-right, right-to-left and
	// bottom-to-top; Dcache takes over for top-to-bottom.
	for d := 0; d < 3; d++ {
		if r.Hottest[d] != "IntReg" {
			t.Fatalf("direction %d hottest = %s, want IntReg", d, r.Hottest[d])
		}
	}
	if r.Hottest[3] != "Dcache" {
		t.Fatalf("top-to-bottom hottest = %s, want Dcache", r.Hottest[3])
	}
	// Shape check against the table: IntReg is coolest under top-to-bottom.
	fpIdx := -1
	for i, b := range r.Blocks {
		if b == "IntReg" {
			fpIdx = i
		}
	}
	ir := []float64{r.TempC[0][fpIdx], r.TempC[1][fpIdx], r.TempC[2][fpIdx], r.TempC[3][fpIdx]}
	for d := 0; d < 3; d++ {
		if ir[3] >= ir[d] {
			t.Fatalf("IntReg should be coolest under top-to-bottom: %v", ir)
		}
	}
	// Right-to-left cools IntReg better than left-to-right (it sits right
	// of center), mirroring the paper's 97.85 vs 104.91.
	if ir[1] >= ir[0] {
		t.Fatalf("right-to-left should cool IntReg: %v", ir)
	}
	_ = r.String()
}

func TestFig12TempTraces(t *testing.T) {
	r, err := Fig12TempTraces(quick)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.SampleIntervalUS-3.33) > 0.1 {
		t.Fatalf("sample interval %.2f µs, want ≈3.33", r.SampleIntervalUS)
	}
	// Paper: oil traces much hotter than air at the same R_conv; cross-die
	// averages about the same.
	if r.OilPeakC < r.AirPeakC+20 {
		t.Fatalf("oil peak %.0f vs air peak %.0f: want ≫", r.OilPeakC, r.AirPeakC)
	}
	if math.Abs(r.OilMeanAvgC-r.AirMeanAvgC) > 12 {
		t.Fatalf("cross-die averages should be close: %.0f vs %.0f", r.OilMeanAvgC, r.AirMeanAvgC)
	}
	// The five plotted blocks should include the paper's set.
	want := map[string]bool{"IntReg": true, "IntExec": true, "LdStQ": true, "Dcache": true, "Bpred": true}
	found := 0
	for _, b := range r.Blocks {
		if want[b] {
			found++
		}
	}
	if found < 3 {
		t.Fatalf("hottest five %v should overlap the paper's {Dcache,Bpred,IntReg,IntExec,LdStQ}", r.Blocks)
	}
	_ = r.String()
}

func TestSec52SensingFrequency(t *testing.T) {
	r, err := Sec52SensingFrequency(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ≈5 °C in 3 ms ⇒ ≤60 µs for 0.1 °C. Accept the order of
	// magnitude: tens of microseconds.
	if r.AirIntervalUS < 5 || r.AirIntervalUS > 1000 {
		t.Fatalf("air sampling interval %.0f µs outside plausible band", r.AirIntervalUS)
	}
	if r.OilIntervalUS <= 0 {
		t.Fatal("oil interval must be positive")
	}
	_ = r.String()
}

func TestSec53SensorGranularity(t *testing.T) {
	r, err := Sec53SensorGranularity(quick)
	if err != nil {
		t.Fatal(err)
	}
	if r.GradientRatio < 1.5 {
		t.Fatalf("oil/air gradient ratio %.1f, want >1.5", r.GradientRatio)
	}
	// With one sensor, oil's worst error exceeds air's.
	if r.OilErrC[0] <= r.AirErrC[0] {
		t.Fatalf("oil 1-sensor error %.2f should exceed air %.2f", r.OilErrC[0], r.AirErrC[0])
	}
	// Errors shrink with more sensors.
	last := len(r.OilErrC) - 1
	if r.OilErrC[last] > r.OilErrC[0] {
		t.Fatal("more sensors should not hurt")
	}
	_ = r.String()
}

func TestSec54PlacementInversion(t *testing.T) {
	r, err := Sec54PlacementInversion(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Training on one direction leaves a larger worst-case error across
	// all directions than its own-direction error, for at least one
	// direction (the paper's IntReg-vs-Dcache example).
	anyGap := false
	for i := range r.TrainDirection {
		if r.ErrAllC[i] > r.ErrTrainedC[i]+1 {
			anyGap = true
		}
	}
	if !anyGap {
		t.Fatalf("direction-specific placement should generalize poorly: own %v vs all %v", r.ErrTrainedC, r.ErrAllC)
	}
	// The inversion artifact: direction-blind inversion skews downstream
	// core power upward.
	if r.NaiveInvertedW[3] <= r.NaiveInvertedW[0] {
		t.Fatalf("direction-blind inversion should inflate downstream cores: %v", r.NaiveInvertedW)
	}
	if r.NaiveSkewPercent < 5 {
		t.Fatalf("skew %.1f%% too small to matter", r.NaiveSkewPercent)
	}
	// Direction-aware inversion recovers ≈10 W per core.
	for i, v := range r.AwareInvertedW {
		if math.Abs(v-10) > 0.5 {
			t.Fatalf("aware inversion core%d = %.2f, want 10", i, v)
		}
	}
	_ = r.String()
}

func TestAblations(t *testing.T) {
	lh, err := AblationLocalH(quick)
	if err != nil {
		t.Fatal(err)
	}
	if lh.UniformDeltaC > 0.01 || lh.MaxDirectionalDeltaC < 5 {
		t.Fatalf("local-h ablation wrong: %+v", lh)
	}
	_ = lh.String()

	bc, err := AblationBoundaryCap(quick)
	if err != nil {
		t.Fatal(err)
	}
	if bc.SteadyDeltaC > 1e-6 {
		t.Fatalf("steady state must not depend on C_oil: %g", bc.SteadyDeltaC)
	}
	if bc.RiseWithC >= 0.95*bc.RiseWithoutC {
		t.Fatalf("C_oil should visibly slow the warm-up: %.1f vs %.1f K", bc.RiseWithC, bc.RiseWithoutC)
	}
	_ = bc.String()

	ai, err := AblationIntegrator(quick)
	if err != nil {
		t.Fatal(err)
	}
	if ai.FinalDeltaK > 0.5 {
		t.Fatalf("integrators disagree by %.3f K", ai.FinalDeltaK)
	}
	_ = ai.String()

	sp, err := AblationSpreader(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !(sp.SpreadNormalC < sp.SpreadThinC && sp.SpreadThinC < sp.SpreadOilC) {
		t.Fatalf("spread ordering wrong: %+v", sp)
	}
	_ = sp.String()
}

func TestExtDesignSpace(t *testing.T) {
	r, err := ExtDesignSpace(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("%d design points", len(r.Points))
	}
	byName := map[string]DesignPoint{}
	for _, p := range r.Points {
		byName[p.Name] = p
	}
	// Ordering claims: water < air 0.3 < air 0.8 on peak; microchannel the
	// coolest of all; oil has the largest spread.
	if !(byName["water-sink R=0.05"].MaxC < byName["air-sink R=0.3"].MaxC &&
		byName["air-sink R=0.3"].MaxC < byName["air-sink R=0.8"].MaxC) {
		t.Fatalf("air/water ordering wrong: %+v", r.Points)
	}
	// Microchannels have by far the lowest chip-level R_conv, but a
	// sub-mm² hot spot is constriction-limited, so compare against the
	// weaker air sink on peak and on R_conv everywhere.
	if byName["microchannel"].MaxC >= byName["air-sink R=0.8"].MaxC {
		t.Fatal("microchannel should beat the stock air sink on peak")
	}
	if byName["microchannel"].RconvKperW >= byName["air-sink R=0.3"].RconvKperW {
		t.Fatal("microchannel chip-level R_conv should undercut forced air")
	}
	// DTM penalties are nonzero under the shared pulse stress.
	for _, p := range r.Points {
		if p.DTMPenalty <= 0 {
			t.Fatalf("%s: DTM never engaged", p.Name)
		}
	}
	if byName["oil 10 m/s"].SpreadC <= byName["air-sink R=0.8"].SpreadC {
		t.Fatal("oil should have the steepest gradients")
	}
	// Secondary path helps the oil configuration.
	if byName["oil 10 m/s + secondary"].MaxC >= byName["oil 10 m/s"].MaxC {
		t.Fatal("secondary path should cool the oil configuration")
	}
	// Time constants: microchannel fastest, air-sink slowest.
	if !(byName["microchannel"].TauS < byName["oil 10 m/s"].TauS &&
		byName["oil 10 m/s"].TauS < byName["air-sink R=0.8"].TauS) {
		t.Fatalf("tau ordering wrong: %+v", r.Points)
	}
	_ = r.String()
}
