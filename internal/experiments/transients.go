package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/materials"
	"repro/internal/trace"
)

// warmupAmbientK is the ambient used by the controlled transient
// experiments (Figs. 6-9), chosen to match the paper's plotted baselines
// (~22 °C starting temperature in Fig. 6).
const warmupAmbientK = 22 + materials.KelvinOffset

// Fig6Result holds the warm-up transients of the hottest and coolest blocks
// under both packages at identical R_conv = 1.0 K/W (the paper's Fig. 6:
// 2.0 W/mm² on one small block for ~6 s).
type Fig6Result struct {
	Times []float64
	// Hot/Cool series per package (°C).
	OilHotC, AirHotC   []float64
	OilCoolC, AirCoolC []float64
	// Steady-state temperatures (°C).
	OilHotSteady, AirHotSteady   float64
	OilCoolSteady, AirCoolSteady float64
	OilAvgSteady, AirAvgSteady   float64
	HotBlock, CoolBlock          string
}

// Fig6Warmup runs the warm-up comparison.
func Fig6Warmup(opt Options) (*Fig6Result, error) {
	duration := 6.0
	dt := 0.01
	if opt.Quick {
		duration, dt = 3.0, 0.02
	}
	fp := floorplan.EV6()
	// The paper applies 2.0 W/mm² to "one hot block that occupies a small
	// area of the die". A cache-scale block reproduces its time constants
	// (R_conv per block in the tens of K/W); we use Dcache.
	hot := "Dcache"
	hotArea := fp.Blocks[fp.Index(hot)].Area()
	watts := 2.0e6 * hotArea // 2.0 W/mm²
	powerMap := map[string]float64{hot: watts}

	oil, err := evOil(hotspot.Uniform, 1.0, false, warmupAmbientK)
	if err != nil {
		return nil, err
	}
	air, err := evAir(1.0, false, warmupAmbientK)
	if err != nil {
		return nil, err
	}
	pOil, err := oil.PowerVector(powerMap)
	if err != nil {
		return nil, err
	}
	pAir, err := air.PowerVector(powerMap)
	if err != nil {
		return nil, err
	}
	// The coolest block at steady state (same for reporting both).
	oilSS := oil.SteadyState(pOil)
	airSS := air.SteadyState(pAir)
	cool, _ := oilSS.Coolest()

	res := &Fig6Result{HotBlock: hot, CoolBlock: cool}
	res.OilHotSteady = oilSS.BlockC(hot)
	res.AirHotSteady = airSS.BlockC(hot)
	res.OilCoolSteady = oilSS.BlockC(cool)
	res.AirCoolSteady = airSS.BlockC(cool)
	res.OilAvgSteady = oilSS.AverageC()
	res.AirAvgSteady = airSS.AverageC()

	so := oil.AmbientState()
	sa := air.AmbientState()
	record := func(t float64) {
		res.Times = append(res.Times, t)
		res.OilHotC = append(res.OilHotC, oil.NewResult(so).BlockC(hot))
		res.AirHotC = append(res.AirHotC, air.NewResult(sa).BlockC(hot))
		res.OilCoolC = append(res.OilCoolC, oil.NewResult(so).BlockC(cool))
		res.AirCoolC = append(res.AirCoolC, air.NewResult(sa).BlockC(cool))
	}
	record(0)
	for t := 0.0; t < duration-1e-12; t += dt {
		if err := oil.Transient(so, pOil, dt, dt/2); err != nil {
			return nil, err
		}
		if err := air.Transient(sa, pAir, dt, dt/2); err != nil {
			return nil, err
		}
		record(t + dt)
	}
	return res, nil
}

func (r *Fig6Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 6 — warm-up transients, same R_conv = 1.0 K/W, 2.0 W/mm² on " + r.HotBlock + "\n")
	fmt.Fprintf(&sb, "steady hot spot:  OIL %.0f °C vs AIR %.0f °C (paper: 137 vs 63)\n", r.OilHotSteady, r.AirHotSteady)
	fmt.Fprintf(&sb, "steady cool spot (%s): OIL %.0f °C vs AIR %.0f °C (paper: 42 vs 55)\n", r.CoolBlock, r.OilCoolSteady, r.AirCoolSteady)
	fmt.Fprintf(&sb, "steady cross-die average: OIL %.0f °C vs AIR %.0f °C (paper: 62 vs 56)\n", r.OilAvgSteady, r.AirAvgSteady)
	rows := make([][]string, 0, 14)
	stride := len(r.Times) / 12
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < len(r.Times); i += stride {
		rows = append(rows, []string{f2(r.Times[i]),
			f1(r.OilHotC[i]), f1(r.AirHotC[i]),
			f1(r.OilCoolC[i]), f1(r.AirCoolC[i])})
	}
	sb.WriteString(table([]string{"t(s)", "oil hot", "air hot", "oil cool", "air cool"}, rows))
	return sb.String()
}

// Fig7Result reports the equivalent-circuit time constants of §4.1.2: the
// short-term constant of AIR-SINK is R_si·C_si, that of OIL-SILICON is
// R_conv·(C_si+C_oil) ≈ R_conv·C_si, and their ratio is R_conv/R_si.
type Fig7Result struct {
	RthSi, Rconv           float64 // K/W (die-level)
	CthSi, CthOil, CthSink float64 // J/K
	TauShortSink           float64 // R_si·C_si
	TauOil                 float64 // R_conv·(C_si + C_oil)
	TauLongSink            float64 // R_conv·C_sink
	// Extracted dominant constants from the assembled networks.
	ExtractedOil, ExtractedSink float64
}

// Fig7TimeConstants evaluates the analytic circuit constants for the
// validation die and compares them with the assembled networks' dominant
// time constants.
func Fig7TimeConstants(opt Options) (*Fig7Result, error) {
	const side, thick = 0.020, 0.5e-3
	area := side * side
	flow := materials.LaminarFlow{Fluid: materials.MineralOil, Velocity: 10, PlateLen: side}
	r := &Fig7Result{
		RthSi: materials.VerticalResistance(materials.Silicon, thick, area),
		Rconv: flow.ConvectionResistance(area),
		CthSi: materials.SlabCapacitance(materials.Silicon, thick, area),
	}
	r.CthOil = flow.ConvectionCapacitance(area)
	r.CthSink = materials.SlabCapacitance(materials.Copper, 6.9e-3, 0.06*0.06)
	r.TauShortSink = r.RthSi * r.CthSi
	r.TauOil = r.Rconv * (r.CthSi + r.CthOil)
	r.TauLongSink = r.Rconv * r.CthSink

	fp := floorplan.UniformDie("die", side, side)
	oil, err := hotspot.New(hotspot.Config{
		Floorplan: fp, DieThickness: thick, AmbientK: 300,
		Package: hotspot.OilSilicon, Oil: hotspot.OilConfig{Direction: hotspot.Uniform},
	})
	if err != nil {
		return nil, err
	}
	air, err := hotspot.New(hotspot.Config{
		Floorplan: fp, DieThickness: thick, AmbientK: 300,
		Package: hotspot.AirSink, Air: hotspot.AirSinkConfig{RConvec: r.Rconv},
	})
	if err != nil {
		return nil, err
	}
	r.ExtractedOil = oil.DominantTimeConstant()
	r.ExtractedSink = air.DominantTimeConstant()
	return r, nil
}

func (r *Fig7Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 7 — equivalent thermal circuits and time constants (20×20×0.5 mm die)\n")
	sb.WriteString(table([]string{"quantity", "value"}, [][]string{
		{"R_th,Si (K/W)", f3(r.RthSi) + "  (paper: 0.0125)"},
		{"R_conv (K/W)", f3(r.Rconv) + "  (paper: 1.042)"},
		{"C_th,Si (J/K)", f3(r.CthSi)},
		{"C_th,oil (J/K)", f3(r.CthOil) + "  (smaller than silicon)"},
		{"C_sink (J/K)", f1(r.CthSink) + fmt.Sprintf("  (%.0f× silicon)", r.CthSink/r.CthSi)},
		{"tau_short,sink = R_si·C_si (s)", fmt.Sprintf("%.2e", r.TauShortSink)},
		{"tau_all,oil = R_conv·(C_si+C_oil) (s)", f3(r.TauOil)},
		{"tau_long,sink = R_conv·C_sink (s)", f1(r.TauLongSink)},
		{"extracted dominant tau, oil network (s)", f3(r.ExtractedOil)},
		{"extracted dominant tau, sink network (s)", f1(r.ExtractedSink)},
	}))
	fmt.Fprintf(&sb, "short-term ratio R_conv/R_si = %.0f (two orders of magnitude, per the paper)\n", r.Rconv/r.RthSi)
	return sb.String()
}

// Fig8Result holds the short-term pulse response around the warm operating
// point (the paper's Fig. 8: 15 ms on / 85 ms off on one block, initial
// temperatures from the duty-cycle average power).
type Fig8Result struct {
	Times              []float64 // within one 100 ms period
	OilRiseK, AirRiseK []float64 // temperature above the period minimum
	// Heat-up amplitude within the on-phase.
	OilSwing, AirSwing float64
	// CoolHalf is the time (s) after the peak for the block to shed half
	// of its on-phase swing — the paper's "it takes much longer for
	// OIL-SILICON to cool down".
	OilCoolHalf, AirCoolHalf float64
}

// Fig8ShortTransient runs the pulse-train experiment.
func Fig8ShortTransient(opt Options) (*Fig8Result, error) {
	const hot = "Dcache" // same block as Fig. 6
	fp := floorplan.EV6()
	names := fp.Names()
	watts := 2.0e6 * fp.Blocks[fp.Index(hot)].Area()
	tr, err := trace.PulseTrain(names, hot, watts, 15e-3, 85e-3, 1e-3, 1)
	if err != nil {
		return nil, err
	}
	prep := func(m *hotspot.Model) (hotspot.SweepJob, error) {
		pAvg, err := m.PowerVector(avgPowerMap(tr))
		if err != nil {
			return hotspot.SweepJob{}, err
		}
		return hotspot.SweepJob{Model: m, TraceJob: hotspot.TraceJob{
			Temps:       m.SteadyState(pAvg).Temps,
			Schedule:    func(t float64, p []float64) { copy(p, tr.At(t)) },
			Duration:    0.1,
			SampleEvery: 1e-3,
		}}, nil
	}
	// The rise above the period minimum of the pulsed block.
	series := func(pts []hotspot.TracePoint) (times, temps []float64) {
		idx := fp.Index(hot)
		times = make([]float64, len(pts))
		temps = make([]float64, len(pts))
		minT := pts[0].BlockC[idx]
		for _, p := range pts {
			if p.BlockC[idx] < minT {
				minT = p.BlockC[idx]
			}
		}
		for i, p := range pts {
			times[i] = p.Time
			temps[i] = p.BlockC[idx] - minT
		}
		return times, temps
	}
	oil, err := evOil(hotspot.Uniform, 1.0, false, warmupAmbientK)
	if err != nil {
		return nil, err
	}
	air, err := evAir(1.0, false, warmupAmbientK)
	if err != nil {
		return nil, err
	}
	oilJob, err := prep(oil)
	if err != nil {
		return nil, err
	}
	airJob, err := prep(air)
	if err != nil {
		return nil, err
	}
	pts, err := hotspot.RunSweep([]hotspot.SweepJob{oilJob, airJob}, 0)
	if err != nil {
		return nil, err
	}
	times, oilSeries := series(pts[0])
	_, airSeries := series(pts[1])
	res := &Fig8Result{Times: times, OilRiseK: oilSeries, AirRiseK: airSeries}
	coolHalf := func(s []float64) (swing, half float64) {
		pi, pv := 0, s[0]
		for i, v := range s {
			if v > pv {
				pi, pv = i, v
			}
		}
		swing = pv - s[0]
		target := pv - swing/2
		for i := pi + 1; i < len(s); i++ {
			if s[i] <= target {
				return swing, times[i] - times[pi]
			}
		}
		return swing, math.Inf(1) // never shed half within the period
	}
	var oilHalf, airHalf float64
	res.OilSwing, oilHalf = coolHalf(oilSeries)
	res.AirSwing, airHalf = coolHalf(airSeries)
	res.OilCoolHalf, res.AirCoolHalf = oilHalf, airHalf
	return res, nil
}

func (r *Fig8Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 8 — short-term pulse response (15 ms on / 85 ms off) after warm-up\n")
	fmt.Fprintf(&sb, "on-phase swing: OIL %.1f K, AIR %.1f K\n", r.OilSwing, r.AirSwing)
	fmt.Fprintf(&sb, "time to shed half the swing: OIL %.1f ms, AIR %.1f ms (paper: OIL cools much more slowly)\n",
		1e3*r.OilCoolHalf, 1e3*r.AirCoolHalf)
	rows := make([][]string, 0, 20)
	for i := 0; i < len(r.Times); i += 5 {
		rows = append(rows, []string{f3(r.Times[i]), f2(r.OilRiseK[i]), f2(r.AirRiseK[i])})
	}
	sb.WriteString(table([]string{"t(s)", "oil rise(K)", "air rise(K)"}, rows))
	return sb.String()
}

// Fig9Result reports the transient hot-spot migration experiment (the
// paper's Fig. 9: 2 W on IntReg for 10 ms, then 2 W on FPMap; at 14 ms the
// AIR-SINK hot spot has moved to FPMap while OIL-SILICON still shows
// IntReg).
type Fig9Result struct {
	Times                  []float64
	OilIntReg, OilFPMap    []float64 // rise above start, K
	AirIntReg, AirFPMap    []float64
	OilHotAt14, AirHotAt14 string
}

// Fig9HotSpotMigration runs the switching experiment.
func Fig9HotSpotMigration(opt Options) (*Fig9Result, error) {
	fp := floorplan.EV6()
	names := fp.Names()
	tr, err := trace.Switch(names, "IntReg", "FPMap", 2.0, 10e-3, 15e-3, 0.5e-3)
	if err != nil {
		return nil, err
	}
	run := func(m *hotspot.Model) (ir, fpm []float64, times []float64, err error) {
		// Start from the steady state of a small background power so both
		// blocks begin at comparable temperatures (the paper starts "from
		// the steady state").
		base := map[string]float64{"IntReg": 0.2, "FPMap": 0.2}
		pBase, err := m.PowerVector(base)
		if err != nil {
			return nil, nil, nil, err
		}
		state := m.SteadyState(pBase).Temps
		iIR, iFP := fp.Index("IntReg"), fp.Index("FPMap")
		t0IR := m.NewResult(state).BlockC("IntReg")
		t0FP := m.NewResult(state).BlockC("FPMap")
		pts, err := m.RunTrace(state, func(t float64, p []float64) {
			copy(p, tr.At(t))
		}, 15e-3, 0.5e-3)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, p := range pts {
			times = append(times, p.Time)
			ir = append(ir, p.BlockC[iIR]-t0IR)
			fpm = append(fpm, p.BlockC[iFP]-t0FP)
		}
		return ir, fpm, times, nil
	}
	oil, err := evOil(hotspot.Uniform, 1.0, false, warmupAmbientK)
	if err != nil {
		return nil, err
	}
	air, err := evAir(1.0, false, warmupAmbientK)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{}
	res.OilIntReg, res.OilFPMap, res.Times, err = run(oil)
	if err != nil {
		return nil, err
	}
	res.AirIntReg, res.AirFPMap, _, err = run(air)
	if err != nil {
		return nil, err
	}
	// Who is hotter (in rise terms) at 14 ms?
	at := len(res.Times) - 1
	for i, t := range res.Times {
		if t >= 14e-3-1e-12 {
			at = i
			break
		}
	}
	pick := func(ir, fpm []float64) string {
		if fpm[at] > ir[at] {
			return "FPMap"
		}
		return "IntReg"
	}
	res.OilHotAt14 = pick(res.OilIntReg, res.OilFPMap)
	res.AirHotAt14 = pick(res.AirIntReg, res.AirFPMap)
	return res, nil
}

func (r *Fig9Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 9 — transient hot-spot migration (IntReg 10 ms → FPMap)\n")
	fmt.Fprintf(&sb, "hotter block at 14 ms: AIR-SINK %s (paper: FPMap), OIL-SILICON %s (paper: IntReg)\n",
		r.AirHotAt14, r.OilHotAt14)
	rows := make([][]string, 0, len(r.Times)/3+1)
	for i := 0; i < len(r.Times); i += 3 {
		rows = append(rows, []string{f3(r.Times[i]),
			f2(r.AirIntReg[i]), f2(r.AirFPMap[i]),
			f2(r.OilIntReg[i]), f2(r.OilFPMap[i])})
	}
	sb.WriteString(table([]string{"t(s)", "air IntReg", "air FPMap", "oil IntReg", "oil FPMap"}, rows))
	return sb.String()
}
