package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/hotspot"
)

// updateGolden regenerates the committed fixtures:
//
//	go test ./internal/experiments -run TestGolden -update
var updateGolden = flag.Bool("update", false, "rewrite golden fixtures under testdata/")

// goldenRelTol is the allowed relative drift against the committed
// fixtures. It is deliberately far below physical accuracy: the golden
// suite exists to catch solver refactors silently changing the numerics,
// not to re-validate the physics.
const goldenRelTol = 1e-9

// checkGolden compares got against the committed fixture (or rewrites it
// with -update). Comparison happens on the JSON-decoded form, so the
// fixture's own round-trip is the reference representation.
func checkGolden(t *testing.T, name string, got any) {
	t.Helper()
	path := filepath.Join("testdata", name)
	raw, err := json.MarshalIndent(got, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(raw))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (generate with: go test ./internal/experiments -run TestGolden -update): %v", path, err)
	}
	var wantV, gotV any
	if err := json.Unmarshal(want, &wantV); err != nil {
		t.Fatalf("corrupt fixture %s: %v", path, err)
	}
	if err := json.Unmarshal(raw, &gotV); err != nil {
		t.Fatal(err)
	}
	diffGolden(t, name, wantV, gotV)
}

// diffGolden walks two decoded JSON trees and fails on any structural
// difference or numeric drift beyond goldenRelTol.
func diffGolden(t *testing.T, path string, want, got any) {
	t.Helper()
	switch w := want.(type) {
	case map[string]any:
		g, ok := got.(map[string]any)
		if !ok || len(g) != len(w) {
			t.Fatalf("%s: object shape changed", path)
		}
		for k, wv := range w {
			gv, ok := g[k]
			if !ok {
				t.Fatalf("%s.%s: missing", path, k)
			}
			diffGolden(t, path+"."+k, wv, gv)
		}
	case []any:
		g, ok := got.([]any)
		if !ok || len(g) != len(w) {
			t.Fatalf("%s: array length changed (%d → %d)", path, len(w), lenOf(got))
		}
		for i := range w {
			diffGolden(t, fmt.Sprintf("%s[%d]", path, i), w[i], g[i])
		}
	case float64:
		g, ok := got.(float64)
		if !ok {
			t.Fatalf("%s: type changed", path)
		}
		denom := math.Max(1, math.Abs(w))
		if math.Abs(g-w) > goldenRelTol*denom {
			t.Fatalf("%s: drifted %.17g → %.17g (rel %.3g, tol %g)", path, w, g,
				math.Abs(g-w)/denom, goldenRelTol)
		}
	default:
		if want != got {
			t.Fatalf("%s: %v → %v", path, want, got)
		}
	}
}

func lenOf(v any) int {
	if a, ok := v.([]any); ok {
		return len(a)
	}
	return -1
}

// goldenEV6Power is a fixed, hand-written power map (W) so the steady
// golden depends only on the thermal solver, not on the uarch/power
// pipeline.
func goldenEV6Power() map[string]float64 {
	return map[string]float64{
		"Icache": 8.5, "Dcache": 12.1, "Bpred": 2.9, "DTB": 0.9,
		"FPAdd": 2.4, "FPReg": 1.1, "FPMul": 1.6, "FPMap": 0.4,
		"IntMap": 1.2, "IntQ": 1.0, "IntReg": 4.3, "IntExec": 7.8,
		"FPQ": 0.3, "LdStQ": 3.7, "ITB": 0.4, "L2_left": 3.0,
		"L2": 6.0, "L2_right": 3.0,
	}
}

// TestGoldenEV6Steady pins the EV6 steady-state temperatures for both
// packages (plus the secondary-path oil variant) under a fixed power map.
func TestGoldenEV6Steady(t *testing.T) {
	type fixture struct {
		PowerW             map[string]float64 `json:"power_w"`
		OilBlockC          map[string]float64 `json:"oil_block_c"`
		AirBlockC          map[string]float64 `json:"air_block_c"`
		OilSecondaryBlockC map[string]float64 `json:"oil_secondary_block_c"`
	}
	power := goldenEV6Power()
	solve := func(m *hotspot.Model) map[string]float64 {
		vec, err := m.PowerVector(power)
		if err != nil {
			t.Fatal(err)
		}
		return blockCMap(m, m.SteadyState(vec))
	}
	oil, err := evOil(hotspot.Uniform, 1.0, false, fig12AmbientK)
	if err != nil {
		t.Fatal(err)
	}
	air, err := evAir(1.0, false, fig12AmbientK)
	if err != nil {
		t.Fatal(err)
	}
	oilSec, err := evOil(hotspot.LeftToRight, 0, true, fig12AmbientK)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "ev6_steady.golden.json", fixture{
		PowerW:             power,
		OilBlockC:          solve(oil),
		AirBlockC:          solve(air),
		OilSecondaryBlockC: solve(oilSec),
	})
}

// TestGoldenFig8 pins the short-term pulse response series (trace-driven
// transient over the batched sweep path).
func TestGoldenFig8(t *testing.T) {
	r, err := Fig8ShortTransient(quick)
	if err != nil {
		t.Fatal(err)
	}
	type fixture struct {
		Times    []float64 `json:"times_s"`
		OilRiseK []float64 `json:"oil_rise_k"`
		AirRiseK []float64 `json:"air_rise_k"`
		OilSwing float64   `json:"oil_swing_k"`
		AirSwing float64   `json:"air_swing_k"`
	}
	checkGolden(t, "fig8.golden.json", fixture{
		Times:    r.Times,
		OilRiseK: r.OilRiseK,
		AirRiseK: r.AirRiseK,
		OilSwing: r.OilSwing,
		AirSwing: r.AirSwing,
	})
}

// TestGoldenFig12 pins the trace-driven co-simulation (uarch → power →
// thermal) for both packages: subsampled temperature series of the plotted
// blocks plus the summary statistics.
func TestGoldenFig12(t *testing.T) {
	r, err := Fig12TempTraces(quick)
	if err != nil {
		t.Fatal(err)
	}
	const stride = 100
	sub := func(s []float64) []float64 {
		var out []float64
		for i := 0; i < len(s); i += stride {
			out = append(out, s[i])
		}
		return append(out, s[len(s)-1])
	}
	type fixture struct {
		Blocks      []string             `json:"blocks"`
		TimesUS     []float64            `json:"times_us"`
		OilC        map[string][]float64 `json:"oil_c"`
		AirC        map[string][]float64 `json:"air_c"`
		OilPeakC    float64              `json:"oil_peak_c"`
		AirPeakC    float64              `json:"air_peak_c"`
		AirRise3ms  float64              `json:"air_rise_3ms"`
		OilRise3ms  float64              `json:"oil_rise_3ms"`
		OilMeanAvgC float64              `json:"oil_mean_avg_c"`
		AirMeanAvgC float64              `json:"air_mean_avg_c"`
	}
	fx := fixture{
		Blocks:      r.Blocks,
		TimesUS:     sub(r.TimesUS),
		OilC:        map[string][]float64{},
		AirC:        map[string][]float64{},
		OilPeakC:    r.OilPeakC,
		AirPeakC:    r.AirPeakC,
		AirRise3ms:  r.AirRise3ms,
		OilRise3ms:  r.OilRise3ms,
		OilMeanAvgC: r.OilMeanAvgC,
		AirMeanAvgC: r.AirMeanAvgC,
	}
	for _, b := range r.Blocks {
		fx.OilC[b] = sub(r.OilC[b])
		fx.AirC[b] = sub(r.AirC[b])
	}
	checkGolden(t, "fig12.golden.json", fx)
}
