package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/materials"
	"repro/internal/refsolver"
)

// Fig2Result compares the transient step responses of the compact oil model
// and the fine-grid reference solver (the paper's Fig. 2: HotSpot vs ANSYS,
// 20×20×0.5 mm silicon, 10 m/s oil, 200 W uniform step, probed at the die
// center).
type Fig2Result struct {
	// Times and the two temperature series (K).
	Times            []float64
	CompactK         []float64
	ReferenceK       []float64
	SteadyCompactK   float64
	SteadyReferenceK float64
	// Tau63 are the 63.2%-rise times of both models (s) — the paper notes
	// "the thermal time constant is on the order of a second".
	Tau63Compact   float64
	Tau63Reference float64
	// MaxDeviationK is the largest pointwise gap between the series.
	MaxDeviationK float64
	RconvKperW    float64
}

// Fig2TransientValidation runs the §3.2 transient validation.
func Fig2TransientValidation(opt Options) (*Fig2Result, error) {
	const (
		side  = 0.020
		thick = 0.5e-3
		watts = 200.0
		amb   = 300.0
	)
	duration := 5.0
	dt := 0.02
	grid := 20
	if opt.Quick {
		duration, dt, grid = 2.5, 0.05, 12
	}

	// Compact model: single-block die under uniform oil.
	fp := floorplan.UniformDie("die", side, side)
	compact, err := hotspot.New(hotspot.Config{
		Floorplan: fp, DieThickness: thick, AmbientK: amb,
		Package: hotspot.OilSilicon,
		Oil:     hotspot.OilConfig{Direction: hotspot.Uniform},
	})
	if err != nil {
		return nil, err
	}
	pvec, err := compact.PowerVector(map[string]float64{"die": watts})
	if err != nil {
		return nil, err
	}

	// Reference model.
	ref, err := refsolver.New(refsolver.Config{
		Width: side, Height: side, Thickness: thick,
		NX: grid, NY: grid, NZ: 4, AmbientK: amb,
	})
	if err != nil {
		return nil, err
	}
	ref.AddUniformPower(watts)

	res := &Fig2Result{RconvKperW: compact.RconvEffective()}
	cState := compact.AmbientState()
	rState := ref.AmbientField()
	record := func(t float64) {
		res.Times = append(res.Times, t)
		res.CompactK = append(res.CompactK, compact.NewResult(cState).BlockK("die"))
		res.ReferenceK = append(res.ReferenceK, ref.ProbeCenter(rState))
	}
	record(0)
	for t := 0.0; t < duration-1e-12; t += dt {
		if err := compact.Transient(cState, pvec, dt, dt/4); err != nil {
			return nil, err
		}
		if err := ref.Transient(rState, dt, dt); err != nil {
			return nil, err
		}
		record(t + dt)
	}
	res.SteadyCompactK = compact.SteadyState(pvec).BlockK("die")
	steadyRef, err := ref.Steady()
	if err != nil {
		return nil, err
	}
	res.SteadyReferenceK = ref.ProbeCenter(steadyRef)

	tau := func(series []float64, steady float64) float64 {
		target := amb + 0.632*(steady-amb)
		for i, v := range series {
			if v >= target {
				return res.Times[i]
			}
		}
		return math.NaN()
	}
	res.Tau63Compact = tau(res.CompactK, res.SteadyCompactK)
	res.Tau63Reference = tau(res.ReferenceK, res.SteadyReferenceK)
	for i := range res.Times {
		if d := math.Abs(res.CompactK[i] - res.ReferenceK[i]); d > res.MaxDeviationK {
			res.MaxDeviationK = d
		}
	}
	return res, nil
}

func (r *Fig2Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 2 — transient validation: modified compact model vs fine-grid reference\n")
	fmt.Fprintf(&sb, "R_conv = %.3f K/W (paper: ≈1.0 K/W)\n", r.RconvKperW)
	fmt.Fprintf(&sb, "steady state: compact %.1f K, reference %.1f K\n", r.SteadyCompactK, r.SteadyReferenceK)
	fmt.Fprintf(&sb, "tau(63%%): compact %.2f s, reference %.2f s (paper: order of a second)\n", r.Tau63Compact, r.Tau63Reference)
	fmt.Fprintf(&sb, "max deviation over the step: %.1f K\n", r.MaxDeviationK)
	rows := make([][]string, 0, 12)
	stride := len(r.Times) / 10
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < len(r.Times); i += stride {
		rows = append(rows, []string{f2(r.Times[i]), f1(r.CompactK[i]), f1(r.ReferenceK[i])})
	}
	sb.WriteString(table([]string{"t(s)", "compact(K)", "reference(K)"}, rows))
	return sb.String()
}

// Fig3Result compares steady-state Tmax/Tmin/dT for the 2×2 mm 10 W center
// source (the paper's Fig. 3).
type Fig3Result struct {
	CompactMaxK, CompactMinK, CompactDT       float64
	ReferenceMaxK, ReferenceMinK, ReferenceDT float64
}

// Fig3SteadyValidation runs the §3.2 steady-state validation.
func Fig3SteadyValidation(opt Options) (*Fig3Result, error) {
	const (
		side  = 0.020
		thick = 0.5e-3
		amb   = 300.0
	)
	grid := 40
	compactGrid := 20
	if opt.Quick {
		grid, compactGrid = 20, 10
	}
	// The compact model runs on a gridded floorplan (HotSpot block mode
	// with a fine block tiling approaches the reference discretization);
	// the 2×2 mm source is the center cells.
	fp := floorplan.GridDie(side, side, compactGrid, compactGrid)
	compact, err := hotspot.New(hotspot.Config{
		Floorplan: fp, DieThickness: thick, AmbientK: amb,
		Package: hotspot.OilSilicon,
		Oil:     hotspot.OilConfig{Direction: hotspot.Uniform},
		// A fine uniform tiling needs no constriction correction: each
		// cell is comparable to the die thickness.
		LateralConstriction: 1,
	})
	if err != nil {
		return nil, err
	}
	// Spread the 10 W over cells whose centers fall inside the source.
	var hotCells []string
	for _, b := range fp.Blocks {
		cx, cy := b.CenterX(), b.CenterY()
		if cx >= 0.009 && cx < 0.011 && cy >= 0.009 && cy < 0.011 {
			hotCells = append(hotCells, b.Name)
		}
	}
	if len(hotCells) == 0 {
		return nil, fmt.Errorf("fig3: compact grid too coarse for the source")
	}
	pm := map[string]float64{}
	for _, n := range hotCells {
		pm[n] = 10.0 / float64(len(hotCells))
	}
	pvec, err := compact.PowerVector(pm)
	if err != nil {
		return nil, err
	}
	cres := compact.SteadyState(pvec)
	_, cmax := cres.Hottest()
	_, cmin := cres.Coolest()

	ref, err := refsolver.New(refsolver.Config{
		Width: side, Height: side, Thickness: thick,
		NX: grid, NY: grid, NZ: 4, AmbientK: amb,
	})
	if err != nil {
		return nil, err
	}
	if n := ref.AddRectPower(10, 0.009, 0.009, 0.002, 0.002); n == 0 {
		return nil, fmt.Errorf("fig3: grid too coarse for the hot source")
	}
	field, err := ref.Steady()
	if err != nil {
		return nil, err
	}
	rmax, rmin, rdT := ref.ActiveLayerStats(field)

	return &Fig3Result{
		CompactMaxK: materials.CToK(cmax), CompactMinK: materials.CToK(cmin), CompactDT: cmax - cmin,
		ReferenceMaxK: rmax, ReferenceMinK: rmin, ReferenceDT: rdT,
	}, nil
}

func (r *Fig3Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 3 — steady-state validation: 2×2 mm, 10 W center source\n")
	sb.WriteString(table(
		[]string{"metric", "compact", "reference"},
		[][]string{
			{"Tmax (K)", f1(r.CompactMaxK), f1(r.ReferenceMaxK)},
			{"Tmin (K)", f1(r.CompactMinK), f1(r.ReferenceMinK)},
			{"dT (K)", f1(r.CompactDT), f1(r.ReferenceDT)},
		}))
	return sb.String()
}
