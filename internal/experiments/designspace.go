package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dtm"
	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/trace"
)

// DesignPoint is one cooling configuration in the package design-space
// sweep.
type DesignPoint struct {
	Name       string
	RconvKperW float64
	// Steady-state metrics on the gcc average power.
	HottestBlock string
	MaxC         float64
	SpreadC      float64
	// Transient metric: dominant warm-up time constant.
	TauS float64
	// DTM metric: performance penalty of a fixed policy on a pulsed
	// workload (fraction of throughput lost).
	DTMPenalty float64
}

// ExtDesignSpaceResult sweeps the thermal-package design space the paper's
// §2.3 closes with ("the thermal package choice [is] another design knob"):
// air-sink at several R_convec, oil at several velocities, forced water and
// integrated microchannels — all on the same die and workload.
type ExtDesignSpaceResult struct {
	Points []DesignPoint
}

// ExtDesignSpace runs the sweep.
func ExtDesignSpace(opt Options) (*ExtDesignSpaceResult, error) {
	cycles := uint64(20_000_000)
	if opt.Quick {
		cycles = 8_000_000
	}
	tr, err := gccPowerTrace(cycles, 3_000_000)
	if err != nil {
		return nil, err
	}
	powers := avgPowerMap(tr)
	fp := floorplan.EV6()

	type cfgSpec struct {
		name string
		cfg  hotspot.Config
	}
	specs := []cfgSpec{
		{"air-sink R=0.8", hotspot.Config{Floorplan: fp, Package: hotspot.AirSink, AmbientK: fig12AmbientK, Air: hotspot.AirSinkConfig{RConvec: 0.8}}},
		{"air-sink R=0.3", hotspot.Config{Floorplan: fp, Package: hotspot.AirSink, AmbientK: fig12AmbientK, Air: hotspot.AirSinkConfig{RConvec: 0.3}}},
		{"water-sink R=0.05", hotspot.Config{Floorplan: fp, Package: hotspot.AirSink, AmbientK: fig12AmbientK, Air: hotspot.AirSinkConfig{RConvec: 0.05}}},
		{"oil 10 m/s", hotspot.Config{Floorplan: fp, Package: hotspot.OilSilicon, AmbientK: fig12AmbientK, Oil: hotspot.OilConfig{Direction: hotspot.LeftToRight}}},
		{"oil 10 m/s + secondary", hotspot.Config{Floorplan: fp, Package: hotspot.OilSilicon, AmbientK: fig12AmbientK, Oil: hotspot.OilConfig{Direction: hotspot.LeftToRight}, Secondary: hotspot.SecondaryPathConfig{Enabled: true}}},
		{"microchannel", hotspot.Config{Floorplan: fp, Package: hotspot.Microchannel, AmbientK: fig12AmbientK}},
	}

	res := &ExtDesignSpaceResult{}
	for _, spec := range specs {
		m, err := hotspot.New(spec.cfg)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", spec.name, err)
		}
		vec, err := m.PowerVector(powers)
		if err != nil {
			return nil, err
		}
		ss := m.SteadyState(vec)
		hot, maxC := ss.Hottest()

		// Fixed DTM policy on a pulsed overload: how much throughput does
		// this package cost? The trigger sits a fixed margin above the
		// pulse workload's own baseline so every package faces the same
		// headroom.
		pulse, err := pulseOverloadTrace(fp)
		if err != nil {
			return nil, err
		}
		pulseAvg := avgPowerMap(pulse)
		pulseVec, err := m.PowerVector(pulseAvg)
		if err != nil {
			return nil, err
		}
		_, pulseBase := m.SteadyState(pulseVec).Hottest()
		metrics, _, err := dtm.Run(dtm.Config{
			Model: m, Trace: pulse,
			Policy: dtm.Policy{
				TriggerC:       pulseBase + 1.5,
				EngageDuration: 10e-3,
				SampleInterval: 1e-3,
				PerfFactor:     0.5,
			},
			EmergencyC:    pulseBase + 50,
			InitialSteady: true,
		}, "")
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, DesignPoint{
			Name:         spec.name,
			RconvKperW:   m.RconvEffective(),
			HottestBlock: hot,
			MaxC:         maxC,
			SpreadC:      ss.Spread(),
			TauS:         m.DominantTimeConstant(),
			DTMPenalty:   metrics.PerfPenalty,
		})
	}
	return res, nil
}

// pulseOverloadTrace builds the shared DTM stress input.
func pulseOverloadTrace(fp *floorplan.Floorplan) (*trace.PowerTrace, error) {
	return trace.PulseTrain(fp.Names(), "IntReg", 3.0, 30e-3, 70e-3, 1e-3, 5)
}

func (r *ExtDesignSpaceResult) String() string {
	var sb strings.Builder
	sb.WriteString("extension — thermal package design space (EV6/gcc)\n")
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{p.Name, f3(p.RconvKperW), p.HottestBlock, f1(p.MaxC), f1(p.SpreadC),
			fmt.Sprintf("%.3g", p.TauS), fmt.Sprintf("%.1f%%", 100*p.DTMPenalty)}
	}
	sb.WriteString(table([]string{"package", "Rconv", "hottest", "max °C", "spread °C", "tau s", "DTM penalty"}, rows))
	sb.WriteString("(the package alone moves peak temperature, gradients, time constants and DTM cost — §2.3)\n")
	return sb.String()
}
