package experiments

import (
	"fmt"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/ircam"
	"repro/internal/sensors"
)

// Sec52Result is the sensing-frequency calculation of §5.2: from the
// maximum observed heating rate and a target resolution, derive the longest
// admissible sensor sampling interval.
type Sec52Result struct {
	AirMaxRateCPerS, OilMaxRateCPerS float64
	ResolutionC                      float64
	AirIntervalUS, OilIntervalUS     float64
}

// Sec52SensingFrequency derives sampling intervals from short Fig. 12-style
// runs.
func Sec52SensingFrequency(opt Options) (*Sec52Result, error) {
	fig12, err := Fig12TempTraces(Options{Quick: true})
	if err != nil {
		return nil, err
	}
	block := "IntReg"
	if _, ok := fig12.AirC[block]; !ok {
		block = fig12.Blocks[0]
	}
	times := make([]float64, len(fig12.TimesUS))
	for i, us := range fig12.TimesUS {
		times[i] = us * 1e-6
	}
	airRate, err := sensors.MaxHeatingRate(times, fig12.AirC[block])
	if err != nil {
		return nil, err
	}
	oilRate, err := sensors.MaxHeatingRate(times, fig12.OilC[block])
	if err != nil {
		return nil, err
	}
	const resolution = 0.1
	airIv, err := sensors.SamplingInterval(airRate, resolution)
	if err != nil {
		return nil, err
	}
	oilIv, err := sensors.SamplingInterval(oilRate, resolution)
	if err != nil {
		return nil, err
	}
	return &Sec52Result{
		AirMaxRateCPerS: airRate, OilMaxRateCPerS: oilRate,
		ResolutionC:   resolution,
		AirIntervalUS: airIv * 1e6, OilIntervalUS: oilIv * 1e6,
	}, nil
}

func (r *Sec52Result) String() string {
	var sb strings.Builder
	sb.WriteString("§5.2 — thermal sensing frequency\n")
	fmt.Fprintf(&sb, "max heating rate: AIR %.0f °C/s, OIL %.0f °C/s (paper: ≈5 °C per 3 ms ≈ 1667 °C/s)\n",
		r.AirMaxRateCPerS, r.OilMaxRateCPerS)
	fmt.Fprintf(&sb, "sampling interval for %.1f °C resolution: AIR %.0f µs, OIL %.0f µs (paper: ≤60 µs)\n",
		r.ResolutionC, r.AirIntervalUS, r.OilIntervalUS)
	return sb.String()
}

// Sec53Result is the sensing-granularity study of §5.3: worst-case hot-spot
// error vs sensor count for both packages. The steeper OIL-SILICON gradient
// needs more sensors (or larger guard margins).
type Sec53Result struct {
	Budgets       []int
	AirErrC       []float64
	OilErrC       []float64
	SpreadC       [2]float64 // air, oil across-die spread
	GradientRatio float64
}

// Sec53SensorGranularity runs the placement-error sweep.
func Sec53SensorGranularity(opt Options) (*Sec53Result, error) {
	cycles := uint64(20_000_000)
	if opt.Quick {
		cycles = 8_000_000
	}
	tr, err := gccPowerTrace(cycles, 3_000_000)
	if err != nil {
		return nil, err
	}
	powers := avgPowerMap(tr)
	fp := floorplan.EV6()
	mapFor := func(m *hotspot.Model) (*sensors.ThermalMap, *hotspot.Result, error) {
		p, err := m.PowerVector(powers)
		if err != nil {
			return nil, nil, err
		}
		res := m.SteadyState(p)
		grid := res.Grid(32, 32)
		tm, err := sensors.NewThermalMap(32, 32, fp.Width(), fp.Height(), grid)
		return tm, res, err
	}
	oilM, err := evOil(hotspot.Uniform, 1.0, false, fig12AmbientK)
	if err != nil {
		return nil, err
	}
	airM, err := evAir(1.0, false, fig12AmbientK)
	if err != nil {
		return nil, err
	}
	oilMap, oilRes, err := mapFor(oilM)
	if err != nil {
		return nil, err
	}
	airMap, airRes, err := mapFor(airM)
	if err != nil {
		return nil, err
	}
	cands := sensors.CandidateGrid(fp, 6, 6)
	const maxK = 6
	oilErr, err := sensors.ErrorVsCount(cands, []*sensors.ThermalMap{oilMap}, maxK)
	if err != nil {
		return nil, err
	}
	airErr, err := sensors.ErrorVsCount(cands, []*sensors.ThermalMap{airMap}, maxK)
	if err != nil {
		return nil, err
	}
	res := &Sec53Result{AirErrC: airErr, OilErrC: oilErr}
	for k := 1; k <= maxK; k++ {
		res.Budgets = append(res.Budgets, k)
	}
	res.SpreadC[0] = airRes.Spread()
	res.SpreadC[1] = oilRes.Spread()
	res.GradientRatio = res.SpreadC[1] / res.SpreadC[0]
	return res, nil
}

func (r *Sec53Result) String() string {
	var sb strings.Builder
	sb.WriteString("§5.3 — thermal sensing granularity (worst-case hot-spot error vs sensor count)\n")
	fmt.Fprintf(&sb, "across-die spread: AIR %.0f °C, OIL %.0f °C (%.1f× steeper gradients for oil)\n",
		r.SpreadC[0], r.SpreadC[1], r.GradientRatio)
	rows := make([][]string, len(r.Budgets))
	for i, k := range r.Budgets {
		rows[i] = []string{fmt.Sprintf("%d", k), f2(r.AirErrC[i]), f2(r.OilErrC[i])}
	}
	sb.WriteString(table([]string{"sensors", "air err(°C)", "oil err(°C)"}, rows))
	sb.WriteString("(paper: OIL-SILICON needs more sensors or a larger DTM guard margin)\n")
	return sb.String()
}

// Sec54Result covers flow-direction-aware placement (§5.4): where a sensor
// trained on one flow direction should go, whether it covers the other
// directions, and the power-inversion artifact for a multicore under
// directional flow.
type Sec54Result struct {
	// Sensor placement trained on each single direction (block of the best
	// single sensor) and its worst-case error across ALL directions.
	TrainDirection []string
	SensorBlock    []string
	ErrTrainedC    []float64 // error on its own direction
	ErrAllC        []float64 // worst error across all four directions
	// Placement trained on all directions jointly.
	JointSensorBlocks []string
	JointErrC         float64
	// Inversion artifact: equal-power multicore under left-to-right flow.
	TruePowerW       []float64
	NaiveInvertedW   []float64 // uniform-h (direction-blind) inversion
	AwareInvertedW   []float64 // direction-aware inversion
	NaiveSkewPercent float64   // (max-min)/true power
}

// Sec54PlacementInversion runs both §5.4 studies.
func Sec54PlacementInversion(opt Options) (*Sec54Result, error) {
	cycles := uint64(20_000_000)
	if opt.Quick {
		cycles = 8_000_000
	}
	tr, err := gccPowerTrace(cycles, 3_000_000)
	if err != nil {
		return nil, err
	}
	powers := avgPowerMap(tr)
	fp := floorplan.EV6()
	maps := make([]*sensors.ThermalMap, len(hotspot.Directions))
	for d, dir := range hotspot.Directions {
		m, err := evOil(dir, 1.0, false, fig12AmbientK)
		if err != nil {
			return nil, err
		}
		p, err := m.PowerVector(powers)
		if err != nil {
			return nil, err
		}
		grid := m.SteadyState(p).Grid(32, 32)
		maps[d], err = sensors.NewThermalMap(32, 32, fp.Width(), fp.Height(), grid)
		if err != nil {
			return nil, err
		}
	}
	cands := sensors.CandidateGrid(fp, 8, 8)
	res := &Sec54Result{}
	for d, dir := range hotspot.Directions {
		placed, errOwn, err := sensors.Place(cands, maps[d:d+1], 1)
		if err != nil {
			return nil, err
		}
		res.TrainDirection = append(res.TrainDirection, dir.String())
		res.SensorBlock = append(res.SensorBlock, placed[0].Block)
		res.ErrTrainedC = append(res.ErrTrainedC, errOwn)
		worst := 0.0
		for _, m := range maps {
			if e := sensors.HotSpotError(m, placed); e > worst {
				worst = e
			}
		}
		res.ErrAllC = append(res.ErrAllC, worst)
	}
	joint, jointErr, err := sensors.Place(cands, maps, 2)
	if err != nil {
		return nil, err
	}
	for _, s := range joint {
		res.JointSensorBlocks = append(res.JointSensorBlocks, s.Block)
	}
	res.JointErrC = jointErr

	// Inversion artifact on an equal-power multicore.
	mm := 1e-3
	cores := floorplan.MustNew([]floorplan.Block{
		{Name: "core0", Width: 5 * mm, Height: 20 * mm, X: 0, Y: 0},
		{Name: "core1", Width: 5 * mm, Height: 20 * mm, X: 5 * mm, Y: 0},
		{Name: "core2", Width: 5 * mm, Height: 20 * mm, X: 10 * mm, Y: 0},
		{Name: "core3", Width: 5 * mm, Height: 20 * mm, X: 15 * mm, Y: 0},
	})
	truthModel, err := hotspot.New(hotspot.Config{
		Floorplan: cores, Package: hotspot.OilSilicon,
		Oil: hotspot.OilConfig{Direction: hotspot.LeftToRight},
	})
	if err != nil {
		return nil, err
	}
	res.TruePowerW = []float64{10, 10, 10, 10}
	vec, err := truthModel.BlockPowerVector(res.TruePowerW)
	if err != nil {
		return nil, err
	}
	obs := truthModel.SteadyState(vec).BlocksC()
	naiveModel, err := hotspot.New(hotspot.Config{
		Floorplan: cores, Package: hotspot.OilSilicon,
		Oil: hotspot.OilConfig{Direction: hotspot.Uniform},
	})
	if err != nil {
		return nil, err
	}
	res.NaiveInvertedW, err = ircam.InvertPower(naiveModel, obs, 0)
	if err != nil {
		return nil, err
	}
	res.AwareInvertedW, err = ircam.InvertPower(truthModel, obs, 0)
	if err != nil {
		return nil, err
	}
	mn, mx := res.NaiveInvertedW[0], res.NaiveInvertedW[0]
	for _, v := range res.NaiveInvertedW {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	res.NaiveSkewPercent = 100 * (mx - mn) / res.TruePowerW[0]
	return res, nil
}

func (r *Sec54Result) String() string {
	var sb strings.Builder
	sb.WriteString("§5.4 — sensor placement and power inversion under flow direction\n")
	rows := make([][]string, len(r.TrainDirection))
	for i := range r.TrainDirection {
		rows[i] = []string{r.TrainDirection[i], r.SensorBlock[i], f2(r.ErrTrainedC[i]), f2(r.ErrAllC[i])}
	}
	sb.WriteString(table([]string{"trained on", "sensor block", "err(own)", "err(all dirs)"}, rows))
	fmt.Fprintf(&sb, "joint placement (2 sensors: %s) worst error %.2f °C\n",
		strings.Join(r.JointSensorBlocks, ", "), r.JointErrC)
	sb.WriteString("\nequal-power multicore, left-to-right flow, reverse-engineered power (W):\n")
	rows = rows[:0]
	for i := range r.TruePowerW {
		rows = append(rows, []string{fmt.Sprintf("core%d", i),
			f2(r.TruePowerW[i]), f2(r.NaiveInvertedW[i]), f2(r.AwareInvertedW[i])})
	}
	sb.WriteString(table([]string{"core", "true", "direction-blind", "direction-aware"}, rows))
	fmt.Fprintf(&sb, "direction-blind skew across cores: %.0f%% of true power (paper: downstream cores appear hotter ⇒ inflated power)\n",
		r.NaiveSkewPercent)
	return sb.String()
}
