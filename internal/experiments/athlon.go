package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/materials"
)

// athlonAmbientK is the oil bath temperature for the Athlon IR emulation
// (room-temperature lab oil, matching the setup of Mesa-Martinez et al.).
const athlonAmbientK = 25 + materials.KelvinOffset

// athlonOil builds the Athlon OIL-SILICON model used by Figs. 4-5.
func athlonOil(secondary bool) (*hotspot.Model, error) {
	return hotspot.New(hotspot.Config{
		Floorplan:    floorplan.Athlon(),
		DieThickness: floorplan.AthlonDieThickness,
		AmbientK:     athlonAmbientK,
		Package:      hotspot.OilSilicon,
		Oil:          hotspot.OilConfig{Direction: hotspot.LeftToRight, Velocity: 30},
		Secondary:    hotspot.SecondaryPathConfig{Enabled: secondary},
	})
}

func athlonAir(secondary bool) (*hotspot.Model, error) {
	return hotspot.New(hotspot.Config{
		Floorplan:    floorplan.Athlon(),
		DieThickness: floorplan.AthlonDieThickness,
		AmbientK:     athlonAmbientK,
		Package:      hotspot.AirSink,
		Air:          hotspot.AirSinkConfig{RConvec: 0.3},
		Secondary:    hotspot.SecondaryPathConfig{Enabled: secondary},
	})
}

// Fig4Result is the steady-state Athlon thermal map under OIL-SILICON with
// the secondary path (the paper's Fig. 4, validated qualitatively against
// the IR snapshot of Mesa-Martinez et al.: "Sched" ≈ 73 °C hottest, ≈ 45 °C
// coolest excluding the blank edges).
type Fig4Result struct {
	BlockC     map[string]float64
	Hottest    string
	HottestC   float64
	CoolestNB  string // coolest excluding blank edge regions
	CoolestC   float64
	GridC      []float64 // 56×56 map for rendering
	GridNX     int
	RconvKperW float64
}

// Fig4AthlonMap runs the Athlon steady state.
func Fig4AthlonMap(opt Options) (*Fig4Result, error) {
	m, err := athlonOil(true)
	if err != nil {
		return nil, err
	}
	pvec, err := m.PowerVector(floorplan.AthlonPowers())
	if err != nil {
		return nil, err
	}
	res := m.SteadyState(pvec)
	out := &Fig4Result{
		BlockC:     blockCMap(m, res),
		RconvKperW: m.RconvEffective(),
		GridNX:     56,
	}
	out.GridC = res.Grid(56, 56)
	out.Hottest, out.HottestC = res.Hottest()
	out.CoolestC = math.Inf(1)
	for name, v := range out.BlockC {
		if strings.HasPrefix(name, "blank") {
			continue
		}
		if v < out.CoolestC {
			out.CoolestNB, out.CoolestC = name, v
		}
	}
	return out, nil
}

func (r *Fig4Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 4 — Athlon steady map, OIL-SILICON with secondary path\n")
	fmt.Fprintf(&sb, "R_conv = %.3f K/W\n", r.RconvKperW)
	fmt.Fprintf(&sb, "hottest: %s %.1f °C (paper: Sched ≈ 73 °C)\n", r.Hottest, r.HottestC)
	fmt.Fprintf(&sb, "coolest (non-blank): %s %.1f °C (paper: ≈ 45 °C)\n", r.CoolestNB, r.CoolestC)
	rows := make([][]string, 0, len(r.BlockC))
	for _, name := range hottestBlocks(r.BlockC, len(r.BlockC)) {
		rows = append(rows, []string{name, f1(r.BlockC[name])})
	}
	sb.WriteString(table([]string{"block", "T(°C)"}, rows))
	return sb.String()
}

// Fig5Result is the secondary-path ablation for both packages (the paper's
// Fig. 5: removing the secondary path shifts OIL-SILICON temperatures by
// >10 °C but AIR-SINK by <1%).
type Fig5Result struct {
	Blocks      []string
	OilWithC    []float64
	OilWithoutC []float64
	AirWithC    []float64
	AirWithoutC []float64
	// Summary deltas at the hottest block.
	OilDeltaHotC    float64
	AirDeltaHotFrac float64
	// OilSecondaryShare is the fraction of heat leaving via the secondary
	// path in the oil configuration.
	OilSecondaryShare float64
}

// Fig5SecondaryPath runs the ablation.
func Fig5SecondaryPath(opt Options) (*Fig5Result, error) {
	powers := floorplan.AthlonPowers()
	run := func(build func(bool) (*hotspot.Model, error), secondary bool) (*hotspot.Model, *hotspot.Result, error) {
		m, err := build(secondary)
		if err != nil {
			return nil, nil, err
		}
		p, err := m.PowerVector(powers)
		if err != nil {
			return nil, nil, err
		}
		return m, m.SteadyState(p), nil
	}
	mOilW, oilW, err := run(athlonOil, true)
	if err != nil {
		return nil, err
	}
	_, oilWo, err := run(athlonOil, false)
	if err != nil {
		return nil, err
	}
	_, airW, err := run(athlonAir, true)
	if err != nil {
		return nil, err
	}
	_, airWo, err := run(athlonAir, false)
	if err != nil {
		return nil, err
	}
	out := &Fig5Result{Blocks: floorplan.Athlon().Names()}
	out.OilWithC = oilW.BlocksC()
	out.OilWithoutC = oilWo.BlocksC()
	out.AirWithC = airW.BlocksC()
	out.AirWithoutC = airWo.BlocksC()
	_, hotW := oilW.Hottest()
	_, hotWo := oilWo.Hottest()
	out.OilDeltaHotC = hotWo - hotW
	_, aW := airW.Hottest()
	_, aWo := airWo.Hottest()
	out.AirDeltaHotFrac = math.Abs(aWo-aW) / aW
	pv, err := mOilW.PowerVector(powers)
	if err != nil {
		return nil, err
	}
	out.OilSecondaryShare = mOilW.SecondaryHeatFraction(pv, oilW)
	return out, nil
}

func (r *Fig5Result) String() string {
	var sb strings.Builder
	sb.WriteString("Fig. 5 — secondary heat path ablation (Athlon)\n")
	fmt.Fprintf(&sb, "(a) OIL-SILICON: hottest block %.1f °C hotter without the secondary path (paper: >10 °C)\n", r.OilDeltaHotC)
	fmt.Fprintf(&sb, "    secondary path carries %.0f%% of the heat\n", 100*r.OilSecondaryShare)
	fmt.Fprintf(&sb, "(b) AIR-SINK: hottest block changes %.2f%% without it (paper: <1%%)\n", 100*r.AirDeltaHotFrac)
	rows := make([][]string, len(r.Blocks))
	for i, b := range r.Blocks {
		rows[i] = []string{b,
			f1(r.OilWithC[i]), f1(r.OilWithoutC[i]),
			f1(r.AirWithC[i]), f1(r.AirWithoutC[i])}
	}
	sb.WriteString(table([]string{"block", "oil w/", "oil w/o", "air w/", "air w/o"}, rows))
	return sb.String()
}
