// Package experiments regenerates every table and figure of the paper's
// evaluation. Each Fig*/Sec* function runs one experiment and returns a
// result struct whose String method prints the same rows/series the paper
// reports. cmd/experiments drives them all; the repository-level benchmarks
// wrap them one-to-one.
//
// Options.Quick shortens the workload-driven experiments (fewer simulated
// cycles, coarser grids) for use in tests and benchmarks; the shapes the
// paper reports are preserved either way.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/power"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Options tune experiment cost.
type Options struct {
	// Quick reduces simulated cycles and grid resolutions.
	Quick bool
}

// table renders an aligned text table.
func table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", width[i], c)
		}
		sb.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// evOil builds an EV6 OIL-SILICON model.
func evOil(dir hotspot.FlowDirection, targetR float64, secondary bool, ambientK float64) (*hotspot.Model, error) {
	return hotspot.New(hotspot.Config{
		Floorplan: floorplan.EV6(),
		Package:   hotspot.OilSilicon,
		AmbientK:  ambientK,
		Oil:       hotspot.OilConfig{Direction: dir, TargetRconv: targetR},
		Secondary: hotspot.SecondaryPathConfig{Enabled: secondary},
	})
}

// evAir builds an EV6 AIR-SINK model.
func evAir(rconvec float64, secondary bool, ambientK float64) (*hotspot.Model, error) {
	return hotspot.New(hotspot.Config{
		Floorplan: floorplan.EV6(),
		Package:   hotspot.AirSink,
		AmbientK:  ambientK,
		Air:       hotspot.AirSinkConfig{RConvec: rconvec},
		Secondary: hotspot.SecondaryPathConfig{Enabled: secondary},
	})
}

// gccPowerTrace runs the uarch+power pipeline for the gcc workload and
// returns the per-block EV6 power trace sampled every 10K cycles (≈3.3 µs),
// exactly as the paper's Fig. 12 setup describes. warmup cycles are run
// first to fill caches and train the predictor.
func gccPowerTrace(totalCycles, warmupCycles uint64) (*trace.PowerTrace, error) {
	stream, err := uarch.NewStream(uarch.GCC(), 2009)
	if err != nil {
		return nil, err
	}
	cpu, err := uarch.NewCPU(uarch.DefaultCPU(), stream)
	if err != nil {
		return nil, err
	}
	if warmupCycles > 0 {
		if _, err := cpu.Run(warmupCycles, warmupCycles); err != nil {
			return nil, err
		}
	}
	samples, err := cpu.Run(totalCycles, 10_000)
	if err != nil {
		return nil, err
	}
	pm, err := power.New(power.DefaultWattch(), floorplan.EV6())
	if err != nil {
		return nil, err
	}
	return pm.Trace(samples)
}

// avgPowerMap converts a trace's average to a per-block map.
func avgPowerMap(tr *trace.PowerTrace) map[string]float64 {
	avg := tr.Average()
	out := make(map[string]float64, len(tr.Names))
	for i, n := range tr.Names {
		out[n] = avg[i]
	}
	return out
}

// hottestBlocks returns the n hottest block names from a per-block Celsius
// map.
func hottestBlocks(blockC map[string]float64, n int) []string {
	names := make([]string, 0, len(blockC))
	for k := range blockC {
		names = append(names, k)
	}
	sort.Slice(names, func(i, j int) bool {
		if blockC[names[i]] != blockC[names[j]] {
			return blockC[names[i]] > blockC[names[j]]
		}
		return names[i] < names[j]
	})
	if n > len(names) {
		n = len(names)
	}
	return names[:n]
}

// areaAvgC returns the area-weighted average of per-block Celsius
// temperatures in floorplan order.
func areaAvgC(fp *floorplan.Floorplan, blockC []float64) float64 {
	var sum, area float64
	for i, b := range fp.Blocks {
		sum += blockC[i] * b.Area()
		area += b.Area()
	}
	return sum / area
}

// blockCMap converts a result to a name→Celsius map.
func blockCMap(m *hotspot.Model, r *hotspot.Result) map[string]float64 {
	out := make(map[string]float64, m.Floorplan().N())
	for i, name := range m.Floorplan().Names() {
		out[name] = r.BlocksC()[i]
	}
	return out
}
