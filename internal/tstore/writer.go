package tstore

import (
	"fmt"
	"sync/atomic"
)

// Writer adapts a Store to the float-seconds telemetry sinks the simulation
// layers emit into (hotspot.TelemetrySink, scenario's structural twin). It
// prefixes every series with a run name so repeated replays land in
// distinct, queryable namespaces, and converts times through Nanos so every
// producer shares one timestamp mapping.
type Writer struct {
	st   *Store
	run  string
	rows atomic.Int64
}

// NewWriter returns a sink writing into st under the given run prefix
// (series become "<run>/<series>"; an empty run writes series names
// verbatim).
func NewWriter(st *Store, run string) *Writer {
	return &Writer{st: st, run: run}
}

// Append records one sample at a simulation time in seconds.
func (w *Writer) Append(series string, tSeconds float64, valueC float64) error {
	if w.run != "" {
		series = w.run + "/" + series
	}
	if err := w.st.Append(series, Nanos(tSeconds), valueC); err != nil {
		return err
	}
	w.rows.Add(1)
	return nil
}

// Rows reports how many samples this writer has accepted.
func (w *Writer) Rows() int64 { return w.rows.Load() }

// Flush pushes all staged rows in the underlying store into segments.
func (w *Writer) Flush() error { return w.st.Flush() }

// ValidRunName reports whether name is usable as a run prefix: non-empty,
// at most 128 bytes, drawn from [A-Za-z0-9._/-] with no empty path
// elements. The service and CLI validate user-supplied run names through
// this single gate before touching the store.
func ValidRunName(name string) error {
	if name == "" {
		return fmt.Errorf("tstore: empty run name")
	}
	if len(name) > 128 {
		return fmt.Errorf("tstore: run name %d bytes exceeds 128", len(name))
	}
	prevSlash := true // leading slash is an empty element too
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
			prevSlash = false
		case c == '/':
			if prevSlash {
				return fmt.Errorf("tstore: run name %q has an empty path element", name)
			}
			prevSlash = true
		default:
			return fmt.Errorf("tstore: run name %q has invalid byte %q", name, c)
		}
	}
	if prevSlash {
		return fmt.Errorf("tstore: run name %q has an empty path element", name)
	}
	return nil
}
