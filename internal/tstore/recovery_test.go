package tstore

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestCrashRecoveryEveryTruncationOffset simulates a crash at every possible
// write boundary: the final segment (and the file header before it) is cut
// at each byte offset in turn, and reopen must keep exactly the rows of the
// segments that remain complete — detecting the torn tail via length/CRC
// checks, never by timestamps or wall-clock state.
func TestCrashRecoveryEveryTruncationOffset(t *testing.T) {
	const flushRows = 64
	const segments = 3

	// Build a reference store: 3 full segments plus nothing staged.
	master := t.TempDir()
	st := mustOpen(t, master, Options{FlushRows: flushRows})
	var rows []Row
	for i := 0; i < flushRows*segments; i++ {
		r := Row{T: int64(i) * 7, V: 300 + math.Sin(float64(i)/9)*25}
		rows = append(rows, r)
		if err := st.Append("s", r.T, r.V); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(master, "*.tseg"))
	if err != nil || len(files) != 1 {
		t.Fatalf("files %v err %v", files, err)
	}
	full, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(files[0])

	// Locate the segment boundaries by decoding the intact file.
	name, headerLen, ok := parseFileHeader(full)
	if !ok || name != "s" {
		t.Fatalf("header parse: %q %v", name, ok)
	}
	bounds := []int{headerLen} // bounds[i] = offset where segment i starts
	off := headerLen
	for off < len(full) {
		_, _, n, err := decodeSegment(nil, full[off:])
		if err != nil {
			t.Fatalf("segment at %d: %v", off, err)
		}
		off += n
		bounds = append(bounds, off)
	}
	if len(bounds) != segments+1 {
		t.Fatalf("found %d segments, want %d", len(bounds)-1, segments)
	}

	// Truncating inside the header drops the file; truncating inside
	// segment k keeps exactly k*flushRows rows. Every offset from 0 to one
	// byte short of the full file is a row in this table.
	for cut := 0; cut < len(full); cut++ {
		wantRows := 0
		for seg := 1; seg <= segments; seg++ {
			if cut >= bounds[seg] {
				wantRows = seg * flushRows
			}
		}
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, base), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(dir, Options{FlushRows: flushRows})
		if err != nil {
			t.Fatalf("cut %d: open: %v", cut, err)
		}
		rec := st.Stats().Recovery
		if cut < bounds[0] {
			if rec.DroppedFiles != 1 || rec.Series != 0 {
				t.Fatalf("cut %d (in header): recovery %+v", cut, rec)
			}
		} else {
			if rec.Series != 1 || rec.Rows != int64(wantRows) {
				t.Fatalf("cut %d: recovery %+v, want %d rows", cut, rec, wantRows)
			}
			tornBytes := int64(cut) - int64(bounds[wantRows/flushRows])
			if (rec.TornTails == 1) != (tornBytes > 0) || rec.DroppedBytes != tornBytes {
				t.Fatalf("cut %d: torn accounting %+v, want %d dropped bytes", cut, rec, tornBytes)
			}
			res, err := st.Query("s", 0, 1<<40, 0)
			if wantRows == 0 {
				// Series survives with zero rows only if the file kept its
				// header; either way there is nothing to read back.
				if err == nil && len(res.Rows) != 0 {
					t.Fatalf("cut %d: %d rows from empty store", cut, len(res.Rows))
				}
			} else {
				if err != nil {
					t.Fatalf("cut %d: query: %v", cut, err)
				}
				if len(res.Rows) != wantRows {
					t.Fatalf("cut %d: %d rows, want %d", cut, len(res.Rows), wantRows)
				}
				for i := 0; i < wantRows; i++ {
					if res.Rows[i] != rows[i] {
						t.Fatalf("cut %d row %d: got %+v want %+v", cut, i, res.Rows[i], rows[i])
					}
				}
			}
			// The reopened store must accept appends after the recovered
			// tail and flush them onto the truncated file cleanly.
			if err := st.Append("s", 1<<20, 1.5); err != nil {
				t.Fatalf("cut %d: append after recovery: %v", cut, err)
			}
			if err := st.Flush(); err != nil {
				t.Fatalf("cut %d: flush after recovery: %v", cut, err)
			}
			res, err = st.Query("s", 1<<20, 1<<21, 0)
			if err != nil || len(res.Rows) != 1 {
				t.Fatalf("cut %d: post-recovery row not readable: %v %+v", cut, err, res.Rows)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
}

// TestCrashRecoveryCorruptMiddleStopsAtCorruption pins the append-only
// contract: a flipped byte in segment k invalidates k and everything after
// it (the file is truncated there), while segments before k survive.
func TestCrashRecoveryCorruptMiddleStopsAtCorruption(t *testing.T) {
	const flushRows = 32
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{FlushRows: flushRows})
	for i := 0; i < flushRows*3; i++ {
		if err := st.Append("s", int64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.tseg"))
	full, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	_, headerLen, _ := parseFileHeader(full)
	_, _, seg0len, err := decodeSegment(nil, full[headerLen:])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of segment 1.
	full[headerLen+seg0len+seg0len/2] ^= 0xFF
	if err := os.WriteFile(files[0], full, 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{FlushRows: flushRows})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	rec := st2.Stats().Recovery
	if rec.Rows != flushRows || rec.TornTails != 1 {
		t.Fatalf("recovery %+v, want %d rows and a torn tail", rec, flushRows)
	}
	res, err := st2.Query("s", 0, 1<<40, 0)
	if err != nil || len(res.Rows) != flushRows {
		t.Fatalf("query after corruption: %d rows, err %v", len(res.Rows), err)
	}
}
