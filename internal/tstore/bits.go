package tstore

import "errors"

// errShortBits is the internal sentinel for a bitstream that ends before the
// decoder has read everything the header promised. Callers wrap it into
// ErrCorrupt with positional context; it never escapes the package.
var errShortBits = errors.New("bitstream truncated")

// bitWriter appends bits MSB-first onto a byte slice. The zero value writes
// into a fresh buffer; wrap an existing slice to continue after byte-aligned
// content (the varint row count precedes the bitstream in a segment payload).
type bitWriter struct {
	b    []byte
	free uint // unused low-order bits in the final byte (0 when byte-aligned)
}

func (w *bitWriter) writeBit(bit uint64) {
	if w.free == 0 {
		w.b = append(w.b, 0)
		w.free = 8
	}
	w.free--
	if bit != 0 {
		w.b[len(w.b)-1] |= 1 << w.free
	}
}

// writeBits emits the low n bits of v, most significant first. n must be at
// most 64; n == 0 is a no-op.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		if w.free == 0 {
			w.b = append(w.b, 0)
			w.free = 8
		}
		take := w.free
		if take > n {
			take = n
		}
		chunk := v >> (n - take)
		if take < 64 {
			chunk &= (1 << take) - 1
		}
		w.b[len(w.b)-1] |= byte(chunk << (w.free - take))
		w.free -= take
		n -= take
	}
}

// bitReader consumes bits MSB-first from a byte slice. Every read is bounds
// checked: running off the end returns errShortBits instead of panicking,
// which is what makes the decoder safe on arbitrary fuzzer input.
type bitReader struct {
	b   []byte
	pos uint64 // absolute bit offset
}

func (r *bitReader) remaining() uint64 {
	return uint64(len(r.b))*8 - r.pos
}

func (r *bitReader) readBits(n uint) (uint64, error) {
	if uint64(n) > r.remaining() {
		return 0, errShortBits
	}
	var v uint64
	for n > 0 {
		idx := r.pos >> 3
		off := uint(r.pos & 7)
		avail := 8 - off
		take := avail
		if take > n {
			take = n
		}
		chunk := (uint64(r.b[idx]) >> (avail - take)) & ((1 << take) - 1)
		v = v<<take | chunk
		r.pos += uint64(take)
		n -= take
	}
	return v, nil
}

func (r *bitReader) readBit() (uint64, error) {
	return r.readBits(1)
}
