package tstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// fuzzSeeds returns the hand-picked seed inputs shared by f.Add and the
// checked-in corpus: valid segments of several shapes, plus truncations and
// mutations that sit just past each structural check.
func fuzzSeeds() [][]byte {
	rng := rand.New(rand.NewSource(7))
	var seeds [][]byte
	add := func(b []byte) { seeds = append(seeds, b) }

	one := appendSegment(nil, []Row{{T: 12345, V: 345.25}})
	add(one)
	add(appendSegment(nil, randRows(rng, 100)))
	uniform := make([]Row, 300) // constant dt and value: all-zero control bits
	for i := range uniform {
		uniform[i] = Row{T: int64(i) * 1000, V: 300.5}
	}
	add(appendSegment(nil, uniform))

	add(one[:3])                               // short header
	add(one[:len(one)-5])                      // truncated footer
	add(append([]byte("XXXX"), one[4:]...))    // bad magic
	mutLen := append([]byte(nil), one...)      // absurd payload length
	binary.LittleEndian.PutUint32(mutLen[4:], 1<<30)
	add(mutLen)
	mutCRC := append([]byte(nil), one...) // last-byte CRC damage
	mutCRC[len(mutCRC)-1] ^= 0x01
	add(mutCRC)
	add([]byte{})
	add([]byte("TSG1"))
	return seeds
}

// FuzzSegmentDecode feeds arbitrary bytes to the full segment decoder. The
// contract under fuzz: no panic, allocation bounded by the input size, and
// every failure is a typed ErrCorrupt. Inputs that do decode must round-trip
// through the canonical encoder.
func FuzzSegmentDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, m, consumed, err := decodeSegment(nil, data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error is not ErrCorrupt: %v", err)
			}
			return
		}
		if consumed < segHeaderLen+segFooterLen || consumed > len(data) {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
		if len(rows) != m.count || len(rows) == 0 {
			t.Fatalf("decoded %d rows, footer count %d", len(rows), m.count)
		}
		reenc := appendSegment(nil, rows)
		back, _, _, err := decodeSegment(nil, reenc)
		if err != nil {
			t.Fatalf("re-encode of decoded rows fails decode: %v", err)
		}
		for i := range rows {
			if back[i].T != rows[i].T || math.Float64bits(back[i].V) != math.Float64bits(rows[i].V) {
				t.Fatalf("row %d not stable through re-encode: %+v vs %+v", i, rows[i], back[i])
			}
		}
	})
}

// FuzzPayloadDecode targets the inner bitstream decoder directly, without
// the CRC shield in front: it must hold the no-panic / typed-error /
// bounded-allocation contract entirely on its own.
func FuzzPayloadDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		if len(s) > segHeaderLen+segFooterLen {
			f.Add(s[segHeaderLen : len(s)-segFooterLen])
		}
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := decodePayload(nil, data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error is not ErrCorrupt: %v", err)
			}
			return
		}
		prev := int64(math.MinInt64)
		for i, r := range rows {
			if r.T < prev {
				t.Fatalf("row %d: decoder let a non-monotonic timestamp through", i)
			}
			prev = r.T
			if math.IsNaN(r.V) || math.IsInf(r.V, 0) {
				t.Fatalf("row %d: decoder let a non-finite value through", i)
			}
		}
	})
}

// FuzzSegmentRoundTrip derives a valid row batch from the fuzzer's bytes,
// encodes it, and demands an exact decode: every timestamp equal, every
// value bit-identical.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18})
	f.Add(appendSegment(nil, []Row{{T: 0, V: 1}})) // arbitrary byte soup is fine
	f.Fuzz(func(t *testing.T, data []byte) {
		rows := rowsFromBytes(data)
		if len(rows) == 0 {
			return
		}
		seg := appendSegment(nil, rows)
		got, _, consumed, err := decodeSegment(nil, seg)
		if err != nil {
			t.Fatalf("decode of freshly-encoded segment: %v", err)
		}
		if consumed != len(seg) || len(got) != len(rows) {
			t.Fatalf("consumed %d/%d, rows %d/%d", consumed, len(seg), len(got), len(rows))
		}
		for i := range rows {
			if got[i].T != rows[i].T || math.Float64bits(got[i].V) != math.Float64bits(rows[i].V) {
				t.Fatalf("row %d: got %+v want %+v", i, got[i], rows[i])
			}
		}
	})
}

// rowsFromBytes deterministically shapes arbitrary bytes into a valid batch:
// each row consumes a delta byte and up to eight value bytes, timestamps
// accumulate (non-decreasing, with occasional large jumps), and non-finite
// values are flushed to a finite stand-in.
func rowsFromBytes(data []byte) []Row {
	var rows []Row
	t := int64(0)
	for len(data) > 0 {
		d := int64(data[0])
		data = data[1:]
		if d == 255 && len(data) >= 4 { // occasional huge delta
			d = int64(binary.LittleEndian.Uint32(data))
			data = data[4:]
		}
		t += d
		var vb [8]byte
		n := copy(vb[:], data)
		data = data[n:]
		v := math.Float64frombits(binary.LittleEndian.Uint64(vb[:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = float64(t%1000) * 0.125
		}
		rows = append(rows, Row{T: t, V: v})
		if len(rows) >= 4096 {
			break
		}
	}
	return rows
}

// TestWriteFuzzCorpus regenerates the checked-in corpus under testdata/fuzz
// when TSTORE_WRITE_CORPUS=1 is set; otherwise it verifies the corpus files
// exist, so a clone that lost them fails loudly instead of silently fuzzing
// from nothing.
func TestWriteFuzzCorpus(t *testing.T) {
	targets := map[string][][]byte{
		"FuzzSegmentDecode":    fuzzSeeds(),
		"FuzzPayloadDecode":    fuzzSeeds(),
		"FuzzSegmentRoundTrip": {{0}, {9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 255, 1, 2, 3, 4}},
	}
	if os.Getenv("TSTORE_WRITE_CORPUS") == "" {
		for name := range targets {
			entries, err := os.ReadDir(filepath.Join("testdata", "fuzz", name))
			if err != nil || len(entries) == 0 {
				t.Fatalf("checked-in corpus for %s missing (regenerate with TSTORE_WRITE_CORPUS=1): %v", name, err)
			}
		}
		return
	}
	for name, seeds := range targets {
		dir := filepath.Join("testdata", "fuzz", name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, seed := range seeds {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(seed)))
			if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed-%02d", i)), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
