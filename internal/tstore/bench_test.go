package tstore

import (
	"fmt"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/trace"
)

// BenchmarkTstoreIngest is the headline ingestion number: synthetic
// telemetry appended row-by-row across 16 series through the public Append
// path (staging, codec, segment writes and rollup folds all included). The
// rows/s metric is the acceptance criterion — the store must sustain ≥1M
// rows/s on one core to keep up with RunSweep.
func BenchmarkTstoreIngest(b *testing.B) {
	const seriesN = 16
	const rowsPerOp = 1 << 17 // 128Ki rows per iteration, spread over the series
	st, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	names := make([]string, seriesN)
	for i := range names {
		names[i] = fmt.Sprintf("cell%d/IntReg", i)
	}
	t := int64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < rowsPerOp/seriesN; r++ {
			v := 300 + float64(t%997)*0.03125
			for _, name := range names {
				if err := st.Append(name, t, v); err != nil {
					b.Fatal(err)
				}
			}
			t += 100_000 // 100 µs cadence
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rowsPerOp)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// BenchmarkTstoreIngestSweep measures the full RunSweep→sink path the
// service uses: replay points from a real EV6 trace sweep are emitted
// through EmitTracePoints into the store. The replay itself runs outside
// the timer; the number is the emit+ingest cost alone.
func BenchmarkTstoreIngestSweep(b *testing.B) {
	fp := floorplan.EV6()
	model, err := hotspot.New(hotspot.Config{
		Floorplan: fp,
		Package:   hotspot.AirSink,
		Air:       hotspot.AirSinkConfig{RConvec: 0.3},
	})
	if err != nil {
		b.Fatal(err)
	}
	tr, err := trace.PulseTrain(fp.Names(), "IntReg", 4, 2e-3, 3e-3, 0.1e-3, 20)
	if err != nil {
		b.Fatal(err)
	}
	pts, err := hotspot.RunSweep([]hotspot.SweepJob{{Model: model, TraceJob: hotspot.TraceJob{
		Temps:       model.AmbientState(),
		Schedule:    func(tm float64, p []float64) { copy(p, tr.At(tm)) },
		Duration:    tr.Duration(),
		SampleEvery: tr.Interval,
	}}}, 1)
	if err != nil {
		b.Fatal(err)
	}
	rows := len(pts[0]) * fp.N()
	st, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	names := fp.Names()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := hotspot.EmitTracePoints(NewWriter(st, fmt.Sprintf("run%d", i)), fmt.Sprintf("run%d", i), names, pts[0]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}

// benchStore populates a store with one long flushed series for the query
// benchmarks: 1M rows at a 100 µs cadence (100 s of telemetry). The cap on
// staged rows is disabled for the fixture: the 1M-row bulk append is setup,
// not the measured path, and lands in one call before the first flush.
func benchStore(b *testing.B) *Store {
	b.Helper()
	st, err := Open(b.TempDir(), Options{MaxStagedRows: -1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	const n = 1 << 20
	rows := make([]Row, n)
	for i := range rows {
		rows[i] = Row{T: int64(i) * 100_000, V: 300 + float64(i%211)*0.0625}
	}
	if err := st.AppendRows("s", rows); err != nil {
		b.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		b.Fatal(err)
	}
	return st
}

// BenchmarkTstoreQueryRollup is the query-latency headline for the rollup
// fast path: a full-range 100ms-downsample over 1M flushed rows (~1000
// buckets, all rollup-served).
func BenchmarkTstoreQueryRollup(b *testing.B) {
	st := benchStore(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Query("s", 0, 1<<40, 100_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if res.RawBuckets != 0 {
			b.Fatalf("rollup benchmark fell off the fast path: %d raw buckets", res.RawBuckets)
		}
	}
}

// BenchmarkTstoreQueryRaw measures a raw range read of ~64Ki rows: segment
// location, decode and filtering.
func BenchmarkTstoreQueryRaw(b *testing.B) {
	st := benchStore(b)
	const span = int64(1<<16) * 100_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Query("s", 0, span, 0)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 1<<16 {
			b.Fatalf("%d rows", len(res.Rows))
		}
	}
}
