package tstore

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randRows builds a valid time-sorted, finite-valued row batch whose deltas
// exercise every delta-of-delta width class and whose values hit XOR-window
// reuse, window growth and exact repeats.
func randRows(rng *rand.Rand, n int) []Row {
	rows := make([]Row, n)
	t := rng.Int63n(1 << 40)
	v := 300 + rng.Float64()*80
	for i := range rows {
		switch rng.Intn(6) {
		case 0: // repeat timestamp (allowed: non-decreasing)
		case 1:
			t += rng.Int63n(3)
		case 2:
			t += rng.Int63n(1 << 7)
		case 3:
			t += rng.Int63n(1 << 13)
		case 4:
			t += rng.Int63n(1 << 21)
		default:
			t += rng.Int63n(1 << 33)
		}
		switch rng.Intn(5) {
		case 0: // repeat value exactly
		case 1:
			v += (rng.Float64() - 0.5) * 1e-6
		case 2:
			v += (rng.Float64() - 0.5) * 10
		case 3:
			v = -v / 3
		default:
			v = math.Float64frombits(rng.Uint64() &^ (0x7FF << 52)) // small subnormal-ish
		}
		rows[i] = Row{T: t, V: v}
	}
	return rows
}

func TestSegmentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		rows := randRows(rng, n)
		seg := appendSegment(nil, rows)
		got, m, consumed, err := decodeSegment(nil, seg)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if consumed != len(seg) {
			t.Fatalf("trial %d: consumed %d of %d bytes", trial, consumed, len(seg))
		}
		if m.count != n || m.tMin != rows[0].T || m.tMax != rows[n-1].T {
			t.Fatalf("trial %d: footer meta %+v does not match rows", trial, m)
		}
		if len(got) != n {
			t.Fatalf("trial %d: got %d rows, want %d", trial, len(got), n)
		}
		for i := range rows {
			if got[i].T != rows[i].T || math.Float64bits(got[i].V) != math.Float64bits(rows[i].V) {
				t.Fatalf("trial %d row %d: got %+v want %+v", trial, i, got[i], rows[i])
			}
		}
	}
}

func TestSegmentRoundTripAppendsToDst(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := randRows(rng, 64)
	seg := appendSegment(nil, rows)
	prefix := []Row{{T: -1, V: 1}}
	got, _, _, err := decodeSegment(prefix, seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 65 || got[0] != prefix[0] || got[1].T != rows[0].T {
		t.Fatalf("decode did not append after existing dst: %d rows", len(got))
	}
}

func TestSegmentDecodeCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := randRows(rng, 128)
	seg := appendSegment(nil, rows)

	t.Run("every-bit-flip", func(t *testing.T) {
		// Flipping any single bit must either fail the CRC or (for flips in
		// the CRC field itself) fail the comparison — never decode cleanly.
		for i := 0; i < len(seg)*8; i++ {
			mut := append([]byte(nil), seg...)
			mut[i/8] ^= 1 << (i % 8)
			if _, _, _, err := decodeSegment(nil, mut); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit flip %d: got %v, want ErrCorrupt", i, err)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(seg); n++ {
			if _, _, _, err := decodeSegment(nil, seg[:n]); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("truncated to %d: got %v, want ErrCorrupt", n, err)
			}
		}
	})
	t.Run("trailing-garbage-ignored", func(t *testing.T) {
		got, _, consumed, err := decodeSegment(nil, append(append([]byte(nil), seg...), 0xDE, 0xAD))
		if err != nil || consumed != len(seg) || len(got) != len(rows) {
			t.Fatalf("decode with trailing bytes: rows=%d consumed=%d err=%v", len(got), consumed, err)
		}
	})
}

func TestPayloadDecodeRejectsAbsurdCount(t *testing.T) {
	// A tiny payload claiming millions of rows must be rejected before any
	// allocation proportional to the claim.
	payload := []byte{0xFF, 0xFF, 0xFF, 0x7F} // varint ≈ 2^28
	if _, err := decodePayload(nil, payload); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

func TestBitWriterReader(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	type field struct {
		v uint64
		n uint
	}
	for trial := 0; trial < 100; trial++ {
		var fields []field
		var w bitWriter
		for i := 0; i < 200; i++ {
			n := uint(1 + rng.Intn(64))
			v := rng.Uint64()
			if n < 64 {
				v &= (1 << n) - 1
			}
			fields = append(fields, field{v, n})
			w.writeBits(v, n)
		}
		r := bitReader{b: w.b}
		for i, f := range fields {
			got, err := r.readBits(f.n)
			if err != nil {
				t.Fatalf("trial %d field %d: %v", trial, i, err)
			}
			if got != f.v {
				t.Fatalf("trial %d field %d: got %x want %x (width %d)", trial, i, got, f.v, f.n)
			}
		}
		if rem := r.remaining(); rem >= 8 {
			t.Fatalf("trial %d: %d bits left over", trial, rem)
		}
		if _, err := r.readBits(uint(r.remaining()) + 1); err == nil {
			t.Fatalf("trial %d: read past end succeeded", trial)
		}
	}
}
