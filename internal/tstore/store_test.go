package tstore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestStoreAppendFlushQueryRaw(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{FlushRows: 8})
	var want []Row
	for i := 0; i < 37; i++ {
		r := Row{T: int64(i) * 10, V: 300 + float64(i)}
		want = append(want, r)
		if err := st.Append("core/s0", r.T, r.V); err != nil {
			t.Fatal(err)
		}
	}
	res, err := st.Query("core/s0", 0, 1<<40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(want))
	}
	for i := range want {
		if res.Rows[i] != want[i] {
			t.Fatalf("row %d: got %+v want %+v", i, res.Rows[i], want[i])
		}
	}
	// Sub-range, half-open: t in [100, 200) → rows 10..19.
	res, err = st.Query("core/s0", 100, 200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 || res.Rows[0].T != 100 || res.Rows[9].T != 190 {
		t.Fatalf("sub-range query wrong: %+v", res.Rows)
	}

	stats := st.Stats()
	if stats.Series != 1 || stats.Rows != 37 || stats.Segments != 4 || stats.Staged != 5 {
		t.Fatalf("stats %+v", stats)
	}
	infos := st.Series()
	if len(infos) != 1 || infos[0].Name != "core/s0" || infos[0].Rows != 37 || infos[0].FirstT != 0 || infos[0].LastT != 360 {
		t.Fatalf("series infos %+v", infos)
	}
}

func TestStoreReopenKeepsData(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{FlushRows: 16})
	for i := 0; i < 100; i++ {
		if err := st.Append("a", int64(i), float64(i)); err != nil {
			t.Fatal(err)
		}
		if err := st.Append("b/nested", int64(i), -float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpen(t, dir, Options{FlushRows: 16})
	if got := st2.SeriesNames(); len(got) != 2 || got[0] != "a" || got[1] != "b/nested" {
		t.Fatalf("series after reopen: %v", got)
	}
	if st2.Stats().Recovery.Rows != 200 {
		t.Fatalf("recovery stats %+v", st2.Stats().Recovery)
	}
	for _, name := range []string{"a", "b/nested"} {
		res, err := st2.Query(name, 0, 100, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 100 {
			t.Fatalf("series %q: %d rows after reopen", name, len(res.Rows))
		}
	}
	// Appends continue after the recovered tail.
	if err := st2.Append("a", 50, 1); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("append before tail: %v", err)
	}
	if err := st2.Append("a", 100, 1); err != nil {
		t.Fatal(err)
	}
}

func TestStoreErrors(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{})
	if _, err := st.Query("nope", 0, 1, 0); !errors.Is(err, ErrUnknownSeries) {
		t.Fatalf("unknown series: %v", err)
	}
	if err := st.Append("", 0, 1); err == nil {
		t.Fatal("empty series name accepted")
	}
	if err := st.Append("s", 0, math.NaN()); err == nil {
		t.Fatal("NaN accepted")
	}
	if err := st.Append("s", 0, math.Inf(1)); err == nil {
		t.Fatal("+Inf accepted")
	}
	if err := st.Append("s", 5, 1); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("s", 4, 1); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("out of order: %v", err)
	}
	if err := st.Append("s", 5, 2); err != nil { // equal timestamps are allowed
		t.Fatal(err)
	}
	if _, err := st.Query("s", 7, 7, 0); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := st.Query("s", 0, 10, -1); err == nil {
		t.Fatal("negative downsample accepted")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := st.Append("s", 9, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed store: %v", err)
	}
	if _, err := st.Query("s", 0, 10, 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("query on closed store: %v", err)
	}
}

func TestStoreBadOptions(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{FlushRows: -1}); err == nil {
		t.Fatal("negative FlushRows accepted")
	}
	if _, err := Open(t.TempDir(), Options{Granularities: []int64{0}}); err == nil {
		t.Fatal("zero granularity accepted")
	}
}

func TestFilenameCollisionProbe(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{FlushRows: 1})
	// Distinct names that sanitize identically; the hash disambiguates, and
	// the probe loop exists for the (theoretical) full-filename collision.
	for _, name := range []string{"cell#0", "cell!0", "cell?0"} {
		if err := st.Append(name, 0, 1); err != nil {
			t.Fatal(err)
		}
	}
	files, err := filepath.Glob(filepath.Join(st.Dir(), "*.tseg"))
	if err != nil || len(files) != 3 {
		t.Fatalf("files %v err %v", files, err)
	}
}

func TestForeignFileDropped(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "junk.tseg"), []byte("not a store file"), 0o644); err != nil {
		t.Fatal(err)
	}
	st := mustOpen(t, dir, Options{})
	if st.Stats().Recovery.DroppedFiles != 1 {
		t.Fatalf("recovery %+v", st.Stats().Recovery)
	}
	if _, err := os.Stat(filepath.Join(dir, "junk.tseg")); !os.IsNotExist(err) {
		t.Fatalf("junk file still present: %v", err)
	}
}

func TestNanosSeconds(t *testing.T) {
	for _, tc := range []struct {
		sec  float64
		want int64
	}{{0, 0}, {1e-3, 1_000_000}, {0.25, 250_000_000}, {1.0, 1_000_000_000}, {-2e-9, -2}} {
		if got := Nanos(tc.sec); got != tc.want {
			t.Fatalf("Nanos(%v) = %d, want %d", tc.sec, got, tc.want)
		}
	}
	if Seconds(1_500_000_000) != 1.5 {
		t.Fatal("Seconds(1.5e9) != 1.5")
	}
	// Monotonic inputs stay monotonic through the rounding.
	prev := int64(math.MinInt64)
	for i := 0; i < 10000; i++ {
		n := Nanos(float64(i) * 1e-4)
		if n <= prev && i > 0 {
			t.Fatalf("Nanos not strictly increasing at step %d", i)
		}
		prev = n
	}
}

func TestAlignDown(t *testing.T) {
	for _, tc := range []struct{ t, g, want int64 }{
		{0, 10, 0}, {9, 10, 0}, {10, 10, 10}, {-1, 10, -10}, {-10, 10, -10}, {-11, 10, -20},
	} {
		if got := alignDown(tc.t, tc.g); got != tc.want {
			t.Fatalf("alignDown(%d,%d) = %d, want %d", tc.t, tc.g, got, tc.want)
		}
	}
}

func TestValidRunName(t *testing.T) {
	for _, ok := range []string{"run1", "a/b/c", "A-1_2.x", "r"} {
		if err := ValidRunName(ok); err != nil {
			t.Fatalf("%q rejected: %v", ok, err)
		}
	}
	long := make([]byte, 129)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "/lead", "trail/", "a//b", "sp ace", "new\nline", string(long)} {
		if err := ValidRunName(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestWriterPrefixesAndCounts(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{})
	w := NewWriter(st, "run1")
	if err := w.Append("cell0/hot", 1e-3, 345.5); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("cell0/hot", 2e-3, 346.0); err != nil {
		t.Fatal(err)
	}
	if w.Rows() != 2 {
		t.Fatalf("writer rows %d", w.Rows())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query("run1/cell0/hot", 0, 1<<40, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0].T != 1_000_000 {
		t.Fatalf("queried rows %+v", res.Rows)
	}
	// No prefix: series name used verbatim.
	w2 := NewWriter(st, "")
	if err := w2.Append("bare", 0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Query("bare", 0, 1, 0); err != nil {
		t.Fatal(err)
	}
}
