package tstore

import (
	"sync"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// teeSink records every append in memory while forwarding it to a store
// writer — one simulation run feeds both sides, so the comparison below is
// free of any cross-run determinism assumption.
type teeSink struct {
	mu  sync.Mutex
	buf map[string][]Row
	w   *Writer
}

func (s *teeSink) Append(series string, tSec, v float64) error {
	if err := s.w.Append(series, tSec, v); err != nil {
		return err
	}
	s.mu.Lock()
	if s.buf == nil {
		s.buf = make(map[string][]Row)
	}
	s.buf[series] = append(s.buf[series], Row{T: Nanos(tSec), V: v})
	s.mu.Unlock()
	return nil
}

func assertPersistedMatchesBuffered(t *testing.T, st *Store, run string, buf map[string][]Row) {
	t.Helper()
	if len(buf) == 0 {
		t.Fatal("no buffered telemetry to compare")
	}
	total := 0
	for series, want := range buf {
		res, err := st.Query(run+"/"+series, -1<<62, 1<<62, 0)
		if err != nil {
			t.Fatalf("series %q: %v", series, err)
		}
		if len(res.Rows) != len(want) {
			t.Fatalf("series %q: %d persisted rows, %d buffered", series, len(res.Rows), len(want))
		}
		for i := range want {
			if res.Rows[i] != want[i] {
				t.Fatalf("series %q row %d: persisted %+v, buffered %+v", series, i, res.Rows[i], want[i])
			}
		}
		total += len(want)
	}
	if total == 0 {
		t.Fatal("zero telemetry rows")
	}
}

// TestScenarioPersistedMatchesBuffered is the golden replay gate: one
// scenario.RunGridTelemetry run feeds an in-memory buffer and the store
// simultaneously; every persisted series, flushed through segments and read
// back with Query, must equal the buffered output bit for bit. CI runs this
// by name as its own step.
func TestScenarioPersistedMatchesBuffered(t *testing.T) {
	spec := &scenario.Spec{
		Name:       "golden",
		Interval:   1e-3,
		EmergencyC: 1e6,
		Phases: []scenario.Phase{{
			Name:     "burst",
			Duration: 0.06,
			Pulse:    &scenario.PulseSpec{Block: "IntReg", PeakW: 3, OnS: 10e-3, OffS: 15e-3},
		}},
		Packages: []scenario.PackageSpec{
			{Label: "air", Kind: "air-sink", Rconv: 1.0},
			{Label: "oil", Kind: "oil-silicon", Rconv: 1.0},
		},
		Sensors: []scenario.Sensor{{Block: "IntReg"}, {Block: "Dcache", OffsetC: 0.5}},
		Policies: scenario.PolicyGrid{
			TriggerC:        []float64{1e6, 400},
			EngageDurationS: []float64{5e-3},
			PerfFactor:      []float64{0.5},
			SampleIntervalS: []float64{2e-3},
		},
	}
	c, err := scenario.Compile(spec, scenario.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// FlushRows below the per-series row count forces the comparison through
	// real segment encode/decode, not just the staged tail.
	st := mustOpen(t, t.TempDir(), Options{FlushRows: 16})
	sink := &teeSink{w: NewWriter(st, "golden")}
	for _, r := range c.RunGridTelemetry(nil, 2, nil, sink) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	assertPersistedMatchesBuffered(t, st, "golden", sink.buf)

	// The same equality must survive close and recovery.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := mustOpen(t, st.Dir(), Options{FlushRows: 16})
	assertPersistedMatchesBuffered(t, st2, "golden", sink.buf)
}

// TestSweepPersistedMatchesBuffered is the RunSweep flavor of the golden
// gate: a trace-replay sweep emitted through EmitTracePoints reads back bit
// for bit.
func TestSweepPersistedMatchesBuffered(t *testing.T) {
	fp := floorplan.EV6()
	model, err := hotspot.New(hotspot.Config{
		Floorplan: fp,
		Package:   hotspot.AirSink,
		Air:       hotspot.AirSinkConfig{RConvec: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.PulseTrain(fp.Names(), "FPMap", 4, 2e-3, 3e-3, 0.5e-3, 3)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []hotspot.SweepJob{{Model: model, TraceJob: hotspot.TraceJob{
		Temps:       model.AmbientState(),
		Schedule:    func(tm float64, p []float64) { copy(p, tr.At(tm)) },
		Duration:    tr.Duration(),
		SampleEvery: tr.Interval,
	}}}
	pts, err := hotspot.RunSweep(jobs, 1)
	if err != nil {
		t.Fatal(err)
	}
	st := mustOpen(t, t.TempDir(), Options{FlushRows: 32})
	sink := &teeSink{w: NewWriter(st, "sweep")}
	if err := hotspot.EmitTracePoints(sink, "job0", fp.Names(), pts[0]); err != nil {
		t.Fatal(err)
	}
	assertPersistedMatchesBuffered(t, st, "sweep", sink.buf)
}
