// Package tstore is an append-only, time-partitioned telemetry store for
// (series, t, T) temperature rows. Writers stage rows per series and flush
// them into immutable segments — delta-of-delta timestamps, XOR-packed
// float64 values, a CRC32-C + min/max/t-range footer per segment — while
// min/max/sum rollups at fixed granularities are folded row-by-row at flush
// time. Queries serve half-open time ranges either raw or downsampled,
// answering from rollups when the requested granularity matches one exactly
// and recomputing edge or still-staged buckets from raw rows so downsampled
// results are bit-identical to a brute-force pass over the raw stream.
// Opening a store re-verifies every segment CRC and truncates torn tails
// left by a crash, keeping exactly the fully-flushed prefix. See DESIGN.md
// §11 for the wire format and the recovery contract.
package tstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Typed errors. Everything the codec rejects wraps ErrCorrupt; the store's
// own refusals (out-of-order rows, closed store, unknown series) each carry
// their own sentinel so callers can branch without string matching.
var (
	ErrCorrupt       = errors.New("tstore: corrupt segment")
	ErrOutOfOrder    = errors.New("tstore: row older than series tail")
	ErrClosed        = errors.New("tstore: store closed")
	ErrUnknownSeries = errors.New("tstore: unknown series")
	// ErrStagedFull rejects an append whose series has MaxStagedRows rows
	// staged and unflushable (a disk outage keeps failing flushes). The row
	// is dropped — not staged, not counted toward the series tail — and the
	// store's DroppedRows counter records it, so ingestion degrades with a
	// typed, countable error instead of growing the staging buffer without
	// bound.
	ErrStagedFull = errors.New("tstore: staging buffer full")
)

// Row is one telemetry sample: a timestamp in integer nanoseconds and a
// temperature. Nanosecond integers rather than float seconds keep bucket
// arithmetic exact; Nanos/Seconds convert at the boundary.
type Row struct {
	T int64   `json:"t_ns"`
	V float64 `json:"v"`
}

// Nanos converts a simulation time in seconds to the store's integer
// nanosecond timeline. Every producer must convert through this single
// function so persisted timestamps are reproducible bit-for-bit.
func Nanos(seconds float64) int64 {
	return int64(math.Round(seconds * 1e9))
}

// Seconds converts a store timestamp back to float seconds for display.
func Seconds(t int64) float64 {
	return float64(t) / 1e9
}

// Options tunes a store at Open time.
type Options struct {
	// FlushRows is the per-series staging threshold: an Append that fills
	// the buffer to this size triggers a segment flush. Default 4096.
	FlushRows int
	// Granularities lists the rollup bucket widths, in nanoseconds, that
	// flushes maintain. Queries whose downsample interval matches one of
	// these exactly are served from rollups. Default 1ms and 100ms —
	// one and three decades above the finest control interval the
	// scenario engine uses. Must be positive; duplicates are dropped.
	Granularities []int64
	// MaxStagedRows caps the per-series staging buffer: appends beyond it
	// are dropped with ErrStagedFull until a flush drains the buffer. The
	// cap only binds while flushes are failing (a healthy store flushes at
	// FlushRows, far below it). Default 65536; negative disables the cap.
	MaxStagedRows int
	// FS routes every disk operation; nil means the real filesystem.
	// internal/faultfs substitutes an error/latency-injecting FS here.
	FS FS
}

func (o Options) withDefaults() (Options, error) {
	if o.FlushRows == 0 {
		o.FlushRows = 4096
	}
	if o.FlushRows < 0 {
		return o, fmt.Errorf("tstore: FlushRows %d must be positive", o.FlushRows)
	}
	if o.Granularities == nil {
		o.Granularities = []int64{1_000_000, 100_000_000}
	}
	if o.MaxStagedRows == 0 {
		o.MaxStagedRows = 16 * o.FlushRows
		if o.MaxStagedRows < 65536 {
			o.MaxStagedRows = 65536
		}
	}
	if o.MaxStagedRows < 0 {
		o.MaxStagedRows = 0 // uncapped
	}
	if o.MaxStagedRows > 0 && o.MaxStagedRows < o.FlushRows {
		return o, fmt.Errorf("tstore: MaxStagedRows %d below FlushRows %d", o.MaxStagedRows, o.FlushRows)
	}
	if o.FS == nil {
		o.FS = OSFS()
	}
	seen := make(map[int64]bool, len(o.Granularities))
	gs := o.Granularities[:0:0]
	for _, g := range o.Granularities {
		if g <= 0 {
			return o, fmt.Errorf("tstore: granularity %d must be positive", g)
		}
		if !seen[g] {
			seen[g] = true
			gs = append(gs, g)
		}
	}
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	o.Granularities = gs
	return o, nil
}

// Bucket is one downsampled aggregate over [Start, Start+granularity).
// Sum is folded row-by-row in time order — at flush for rollup buckets, at
// query time for raw buckets — so the same rows always produce the same
// float64 Sum regardless of which path computed it.
type Bucket struct {
	Start int64   `json:"start_ns"`
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
}

// Mean returns the bucket average.
func (b Bucket) Mean() float64 { return b.Sum / float64(b.Count) }

func (b *Bucket) add(v float64) {
	if b.Count == 0 {
		// Initialize Sum from the row rather than folding into +0: a bucket
		// holding a single -0 row must sum to -0 bit-for-bit, exactly as a
		// naive fold over the raw rows would.
		b.Min, b.Max, b.Sum = v, v, v
	} else {
		if v < b.Min {
			b.Min = v
		}
		if v > b.Max {
			b.Max = v
		}
		b.Sum += v
	}
	b.Count++
}

// rollupLevel is the in-memory flush-time aggregate list for one
// granularity, in ascending Start order. Buckets cover flushed rows only;
// staged rows are aggregated at query time.
type rollupLevel struct {
	g       int64
	buckets []Bucket
}

func (l *rollupLevel) add(t int64, v float64) {
	start := alignDown(t, l.g)
	if n := len(l.buckets); n > 0 && l.buckets[n-1].Start == start {
		l.buckets[n-1].add(v)
		return
	}
	b := Bucket{Start: start}
	b.add(v)
	l.buckets = append(l.buckets, b)
}

// alignDown floors t to a multiple of g, correctly for negative t.
func alignDown(t, g int64) int64 {
	q := t / g
	if t%g != 0 && t < 0 {
		q--
	}
	return q * g
}

// series is the per-name state: the open segment file, the footer index,
// the staging buffer and the rollup levels. A series lock serializes
// append/flush against queries; the file itself is only ever appended to or
// truncated under that lock, and read back via ReadAt, so concurrent
// readers never seek a shared cursor.
type series struct {
	mu      sync.RWMutex
	st      *Store // immutable back-pointer (FS, options, fault counters)
	name    string
	path    string
	f       File  // nil until the first flush creates the file
	size    int64 // durable bytes, including the file header
	segs    []segMeta
	staged  []Row
	lastT   int64
	any     bool // at least one row ever accepted (staged or flushed)
	flushed int64
	rollups []rollupLevel
}

// Store is an on-disk telemetry store. All methods are safe for concurrent
// use; appends to distinct series proceed in parallel.
type Store struct {
	dir  string
	opts Options

	mu     sync.RWMutex
	series map[string]*series
	paths  map[string]bool
	closed bool

	// Fault accounting, monotonic over the store's lifetime. droppedRows
	// counts ErrStagedFull rejections (rows the store refused to stage);
	// flushErrors counts flush attempts that failed to reach the disk. Both
	// are typed signals the serving layer's degradation ladder keys off.
	droppedRows atomic.Int64
	flushErrors atomic.Int64

	recovery RecoveryStats
}

// RecoveryStats reports what Open found and what it had to discard.
type RecoveryStats struct {
	// Series and Rows count the data that survived verification.
	Series int   `json:"series"`
	Rows   int64 `json:"rows"`
	// TornTails counts files truncated at a corrupt or incomplete final
	// segment; DroppedBytes totals the bytes removed that way.
	TornTails    int   `json:"torn_tails,omitempty"`
	DroppedBytes int64 `json:"dropped_bytes,omitempty"`
	// DroppedFiles counts files whose header never made it to disk intact;
	// nothing after a torn header can be valid in an append-only file, so
	// the whole file is removed.
	DroppedFiles int `json:"dropped_files,omitempty"`
}

// Stats is a point-in-time summary for /v1/stats and the CLI.
type Stats struct {
	Series   int   `json:"series"`
	Rows     int64 `json:"rows"`
	Staged   int64 `json:"staged"`
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// DroppedRows counts appends rejected with ErrStagedFull; FlushErrors
	// counts flush attempts that failed to reach disk. Both are monotonic:
	// they never reset, so deltas between snapshots are meaningful.
	DroppedRows int64         `json:"dropped_rows,omitempty"`
	FlushErrors int64         `json:"flush_errors,omitempty"`
	Recovery    RecoveryStats `json:"recovery"`
}

// SeriesInfo summarizes one series for listings.
type SeriesInfo struct {
	Name     string `json:"series"`
	Rows     int64  `json:"rows"`
	Segments int    `json:"segments"`
	FirstT   int64  `json:"first_t_ns"`
	LastT    int64  `json:"last_t_ns"`
}

const (
	fileMagic   = "TSTORE1\n"
	maxNameLen  = 512
	fileSuffix  = ".tseg"
	maxFileName = 48 // sanitized prefix budget, before the hash suffix
)

// Open opens (creating if necessary) a store rooted at dir. Every existing
// segment is CRC-verified and decoded to rebuild the rollups; torn tails
// from a crash are truncated away so the store reopens onto exactly the
// fully-flushed prefix.
func Open(dir string, opts Options) (*Store, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tstore: %w", err)
	}
	s := &Store{
		dir:    dir,
		opts:   opts,
		series: make(map[string]*series),
		paths:  make(map[string]bool),
	}
	entries, err := opts.FS.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tstore: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), fileSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if err := s.recoverFile(filepath.Join(dir, name)); err != nil {
			s.closeAll()
			return nil, err
		}
	}
	return s, nil
}

// recoverFile verifies one series file and registers the surviving series.
func (s *Store) recoverFile(path string) error {
	b, err := s.opts.FS.ReadFile(path)
	if err != nil {
		return fmt.Errorf("tstore: %w", err)
	}
	name, headerLen, ok := parseFileHeader(b)
	if !ok {
		// The header is written in one shot before any segment; a torn or
		// foreign header means no row in this file was ever readable.
		if err := s.opts.FS.Remove(path); err != nil {
			return fmt.Errorf("tstore: dropping %s: %w", path, err)
		}
		s.recovery.DroppedFiles++
		s.recovery.DroppedBytes += int64(len(b))
		return nil
	}
	se := &series{st: s, name: name, path: path}
	for _, g := range s.opts.Granularities {
		se.rollups = append(se.rollups, rollupLevel{g: g})
	}
	good := int64(headerLen)
	var rows []Row
	for int(good) < len(b) {
		rows, err = func() ([]Row, error) {
			decoded, m, n, err := decodeSegment(rows[:0], b[good:])
			if err != nil {
				return nil, err
			}
			m.off = good
			se.segs = append(se.segs, m)
			good += int64(n)
			return decoded, nil
		}()
		if err != nil {
			break
		}
		for _, r := range rows {
			for i := range se.rollups {
				se.rollups[i].add(r.T, r.V)
			}
			se.lastT, se.any = r.T, true
			se.flushed++
		}
	}
	f, err := s.opts.FS.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("tstore: %w", err)
	}
	if good < int64(len(b)) {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return fmt.Errorf("tstore: truncating torn tail of %s: %w", path, err)
		}
		s.recovery.TornTails++
		s.recovery.DroppedBytes += int64(len(b)) - good
	}
	se.f = f
	se.size = good
	s.series[name] = se
	s.paths[filepath.Base(path)] = true
	s.recovery.Series++
	s.recovery.Rows += se.flushed
	return nil
}

// parseFileHeader reads the file magic and the varint-prefixed series name.
func parseFileHeader(b []byte) (name string, n int, ok bool) {
	if len(b) < len(fileMagic) || string(b[:len(fileMagic)]) != fileMagic {
		return "", 0, false
	}
	nameLen, vn := binary.Uvarint(b[len(fileMagic):])
	if vn <= 0 || nameLen == 0 || nameLen > maxNameLen {
		return "", 0, false
	}
	start := len(fileMagic) + vn
	if uint64(len(b)-start) < nameLen {
		return "", 0, false
	}
	return string(b[start : start+int(nameLen)]), start + int(nameLen), true
}

func appendFileHeader(dst []byte, name string) []byte {
	dst = append(dst, fileMagic...)
	dst = binary.AppendUvarint(dst, uint64(len(name)))
	return append(dst, name...)
}

// fileFor picks an unused filename for a new series: a sanitized name prefix
// for human greppability plus an FNV-64a hash for uniqueness. The true name
// lives in the file header; collisions on the derived filename are resolved
// by probing, never by trusting the filename.
func (s *Store) fileFor(name string) string {
	var sb strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
		if sb.Len() >= maxFileName {
			break
		}
	}
	h := fnv.New64a()
	h.Write([]byte(name))
	base := fmt.Sprintf("%s-%016x", sb.String(), h.Sum64())
	fn := base + fileSuffix
	for i := 1; s.paths[fn]; i++ {
		fn = fmt.Sprintf("%s-%d%s", base, i, fileSuffix)
	}
	s.paths[fn] = true
	return fn
}

func validSeriesName(name string) error {
	if name == "" {
		return errors.New("tstore: empty series name")
	}
	if len(name) > maxNameLen {
		return fmt.Errorf("tstore: series name %d bytes exceeds %d", len(name), maxNameLen)
	}
	return nil
}

// seriesFor resolves (optionally creating) the series record for name.
func (s *Store) seriesFor(name string, create bool) (*series, error) {
	s.mu.RLock()
	se, ok := s.series[name]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	if ok {
		return se, nil
	}
	if !create {
		return nil, fmt.Errorf("%w: %q", ErrUnknownSeries, name)
	}
	if err := validSeriesName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if se, ok = s.series[name]; ok {
		return se, nil
	}
	se = &series{st: s, name: name, path: filepath.Join(s.dir, s.fileFor(name))}
	for _, g := range s.opts.Granularities {
		se.rollups = append(se.rollups, rollupLevel{g: g})
	}
	s.series[name] = se
	return se, nil
}

// Append stages one row on series name, creating the series on first use.
// Rows must be non-decreasing in time per series and finite-valued; a full
// staging buffer flushes synchronously into a new segment.
func (s *Store) Append(name string, t int64, v float64) error {
	se, err := s.seriesFor(name, true)
	if err != nil {
		return err
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	if err := se.stage(t, v); err != nil {
		return err
	}
	if len(se.staged) >= s.opts.FlushRows {
		return se.flushLocked(s.opts.FlushRows)
	}
	return nil
}

// AppendRows stages a batch on series name with the same contract as Append.
func (s *Store) AppendRows(name string, rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	se, err := s.seriesFor(name, true)
	if err != nil {
		return err
	}
	se.mu.Lock()
	defer se.mu.Unlock()
	for _, r := range rows {
		if err := se.stage(r.T, r.V); err != nil {
			return err
		}
	}
	if len(se.staged) >= s.opts.FlushRows {
		return se.flushLocked(s.opts.FlushRows)
	}
	return nil
}

func (se *series) stage(t int64, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("tstore: series %q: non-finite value %v at t=%d", se.name, v, t)
	}
	if se.any && t < se.lastT {
		return fmt.Errorf("%w: series %q: t=%d after t=%d", ErrOutOfOrder, se.name, t, se.lastT)
	}
	if cap := se.st.opts.MaxStagedRows; cap > 0 && len(se.staged) >= cap {
		// The row is rejected, not staged: the series tail does not advance,
		// so a later retry of the same timestamp is still in order.
		se.st.droppedRows.Add(1)
		return fmt.Errorf("%w: series %q: %d rows staged", ErrStagedFull, se.name, len(se.staged))
	}
	se.staged = append(se.staged, Row{T: t, V: v})
	se.lastT, se.any = t, true
	return nil
}

// flushLocked encodes the staging buffer into segments of at most flushRows
// rows each and appends them durably, then folds the flushed rows into the
// rollups. Caller holds se.mu.
func (se *series) flushLocked(flushRows int) error {
	if len(se.staged) == 0 {
		return nil
	}
	if se.f == nil {
		f, err := se.st.opts.FS.OpenFile(se.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			se.st.flushErrors.Add(1)
			return fmt.Errorf("tstore: %w", err)
		}
		hdr := appendFileHeader(nil, se.name)
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			// Remove the partial file (best effort) so a retry's O_EXCL create
			// can succeed; a file with a torn header is unrecoverable anyway.
			_ = se.st.opts.FS.Remove(se.path)
			se.st.flushErrors.Add(1)
			return fmt.Errorf("tstore: %w", err)
		}
		se.f = f
		se.size = int64(len(hdr))
	}
	var buf []byte
	for off := 0; off < len(se.staged); off += flushRows {
		end := off + flushRows
		if end > len(se.staged) {
			end = len(se.staged)
		}
		chunk := se.staged[off:end]
		segOff := se.size + int64(len(buf))
		segStart := len(buf)
		buf = appendSegment(buf, chunk)
		se.segs = append(se.segs, segMeta{
			off:   segOff,
			size:  int64(len(buf) - segStart),
			count: len(chunk),
			tMin:  chunk[0].T,
			tMax:  chunk[len(chunk)-1].T,
			vMin:  minV(chunk),
			vMax:  maxV(chunk),
		})
	}
	if _, err := se.f.WriteAt(buf, se.size); err != nil {
		// Drop the optimistically-appended metadata: nothing past se.size is
		// trustworthy after a short write, and reopen will truncate it. The
		// staged rows stay staged, so a later flush retries them at the same
		// offset (overwriting any partial bytes this attempt left behind).
		for len(se.segs) > 0 && se.segs[len(se.segs)-1].off >= se.size {
			se.segs = se.segs[:len(se.segs)-1]
		}
		se.st.flushErrors.Add(1)
		return fmt.Errorf("tstore: series %q: %w", se.name, err)
	}
	se.size += int64(len(buf))
	for _, r := range se.staged {
		for i := range se.rollups {
			se.rollups[i].add(r.T, r.V)
		}
	}
	se.flushed += int64(len(se.staged))
	se.staged = se.staged[:0]
	return nil
}

func minV(rows []Row) float64 {
	m := rows[0].V
	for _, r := range rows[1:] {
		if r.V < m {
			m = r.V
		}
	}
	return m
}

func maxV(rows []Row) float64 {
	m := rows[0].V
	for _, r := range rows[1:] {
		if r.V > m {
			m = r.V
		}
	}
	return m
}

// Flush forces every series' staging buffer into segments. Every series is
// attempted even when one fails — a fault on one file must not leave the
// others unflushed — and the first error is returned.
func (s *Store) Flush() error {
	var firstErr error
	for _, se := range s.snapshotSeries() {
		se.mu.Lock()
		err := se.flushLocked(s.opts.FlushRows)
		se.mu.Unlock()
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (s *Store) snapshotSeries() []*series {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*series, 0, len(s.series))
	for _, se := range s.series {
		out = append(out, se)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Close flushes all staged rows and closes the underlying files. The store
// rejects further operations with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	var firstErr error
	for _, se := range s.snapshotSeries() {
		se.mu.Lock()
		if err := se.flushLocked(s.opts.FlushRows); err != nil && firstErr == nil {
			firstErr = err
		}
		if se.f != nil {
			if err := se.f.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
			se.f = nil
		}
		se.mu.Unlock()
	}
	return firstErr
}

func (s *Store) closeAll() {
	for _, se := range s.series {
		if se.f != nil {
			se.f.Close()
		}
	}
}

// SeriesNames lists every known series in lexical order.
func (s *Store) SeriesNames() []string {
	ses := s.snapshotSeries()
	out := make([]string, len(ses))
	for i, se := range ses {
		out[i] = se.name
	}
	return out
}

// Series lists summaries for every known series in lexical order.
func (s *Store) Series() []SeriesInfo {
	ses := s.snapshotSeries()
	out := make([]SeriesInfo, 0, len(ses))
	for _, se := range ses {
		se.mu.RLock()
		info := SeriesInfo{Name: se.name, Segments: len(se.segs), Rows: se.flushed + int64(len(se.staged)), LastT: se.lastT}
		switch {
		case len(se.segs) > 0:
			info.FirstT = se.segs[0].tMin
		case len(se.staged) > 0:
			info.FirstT = se.staged[0].T
		}
		se.mu.RUnlock()
		if info.Rows > 0 {
			out = append(out, info)
		}
	}
	return out
}

// Stats summarizes the store for observability endpoints.
func (s *Store) Stats() Stats {
	st := Stats{
		Recovery:    s.recovery,
		DroppedRows: s.droppedRows.Load(),
		FlushErrors: s.flushErrors.Load(),
	}
	for _, se := range s.snapshotSeries() {
		se.mu.RLock()
		st.Series++
		st.Rows += se.flushed + int64(len(se.staged))
		st.Staged += int64(len(se.staged))
		st.Segments += len(se.segs)
		st.Bytes += se.size
		se.mu.RUnlock()
	}
	return st
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }
