package tstore

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/trace"
)

// TestConcurrentSweepWritersAndReaders is the race/stress battery: several
// goroutines run real hotspot.RunSweep replays and stream the results into
// one store through the telemetry sink, while readers hammer raw and
// downsampled queries, listings and stats, and a flusher forces segment
// churn. Run under -race this exercises the store-level series map, the
// per-series locks and the ReadAt-based query path against concurrent
// appends. A final pass verifies every writer's data survived verbatim.
func TestConcurrentSweepWritersAndReaders(t *testing.T) {
	fp := floorplan.EV6()
	model, err := hotspot.New(hotspot.Config{
		Floorplan: fp,
		Package:   hotspot.AirSink,
		Air:       hotspot.AirSinkConfig{RConvec: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.PulseTrain(fp.Names(), "IntReg", 4, 2e-3, 3e-3, 0.5e-3, 2)
	if err != nil {
		t.Fatal(err)
	}
	job := func() hotspot.SweepJob {
		return hotspot.SweepJob{Model: model, TraceJob: hotspot.TraceJob{
			Temps:       model.AmbientState(),
			Schedule:    func(tm float64, p []float64) { copy(p, tr.At(tm)) },
			Duration:    tr.Duration(),
			SampleEvery: tr.Interval,
		}}
	}

	st := mustOpen(t, t.TempDir(), Options{FlushRows: 128, Granularities: []int64{1_000_000}})
	names := fp.Names()

	const writers, iters = 3, 4
	errs := make(chan error, writers+3)
	refs := make([][][]hotspot.TracePoint, writers)

	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		refs[w] = make([][]hotspot.TracePoint, iters)
		writeWG.Add(1)
		go func() {
			defer writeWG.Done()
			for it := 0; it < iters; it++ {
				pts, err := hotspot.RunSweep([]hotspot.SweepJob{job()}, 1)
				if err != nil {
					errs <- err
					return
				}
				refs[w][it] = pts[0]
				run := fmt.Sprintf("w%d/i%d", w, it)
				if err := hotspot.EmitTracePoints(NewWriter(st, ""), run, names, pts[0]); err != nil {
					errs <- err
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	var auxWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		auxWG.Add(1)
		go func() {
			defer auxWG.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				for _, name := range st.SeriesNames() {
					if _, err := st.Query(name, 0, 1<<62, 0); err != nil {
						errs <- err
						return
					}
					if _, err := st.Query(name, 0, 1<<62, 1_000_000); err != nil {
						errs <- err
						return
					}
					if _, err := st.Query(name, 0, 1<<62, 777); err != nil {
						errs <- err
						return
					}
				}
				st.Stats()
				st.Series()
			}
		}()
	}
	auxWG.Add(1)
	go func() {
		defer auxWG.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := st.Flush(); err != nil {
				errs <- err
				return
			}
		}
	}()

	writeWG.Wait()
	close(done)
	auxWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Everything written must read back exactly.
	for w := 0; w < writers; w++ {
		for it := 0; it < iters; it++ {
			run := fmt.Sprintf("w%d/i%d", w, it)
			pts := refs[w][it]
			for b, name := range names {
				res, err := st.Query(run+"/"+name, 0, 1<<62, 0)
				if err != nil {
					t.Fatalf("%s/%s: %v", run, name, err)
				}
				if len(res.Rows) != len(pts) {
					t.Fatalf("%s/%s: %d rows, want %d", run, name, len(res.Rows), len(pts))
				}
				for i, p := range pts {
					if res.Rows[i].T != Nanos(p.Time) || res.Rows[i].V != p.BlockC[b] {
						t.Fatalf("%s/%s row %d: got %+v want t=%d v=%v",
							run, name, i, res.Rows[i], Nanos(p.Time), p.BlockC[b])
					}
				}
			}
		}
	}
}
