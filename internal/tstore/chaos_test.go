// Chaos suite: the store driven through internal/faultfs under concurrent
// sweep-shaped load. The invariants (DESIGN.md §12) are the robustness
// contract the serving layer leans on:
//
//   - no operation panics, whatever the disk does;
//   - every error is typed (faultfs.ErrInjected for injected I/O faults,
//     tstore.ErrStagedFull for capped staging buffers);
//   - drop/flush-error counters are monotonic and reconcile exactly with
//     what the writers observed;
//   - after a clean reopen the store serves every acknowledged row, in
//     order, bit-for-bit.
//
// The suite lives in an external test package because faultfs imports
// tstore for the FS seam.
package tstore_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/tstore"
)

// chaosWriter tracks one series' ground truth as the writer drives it.
type chaosWriter struct {
	series   string
	accepted []tstore.Row // rows the store staged (Append nil or non-drop error)
	dropped  int64        // ErrStagedFull rejections
	acked    int64        // accepted rows covered by a successful Flush
}

// driveChaos appends rows concurrently, one goroutine per series, flushing
// periodically and recording acknowledged high-water marks. Returns the
// per-series ground truth. Any unexpected (untyped) error fails the test.
func driveChaos(t *testing.T, st *tstore.Store, nSeries, rowsPerSeries int, onRow func(i int)) []*chaosWriter {
	t.Helper()
	writers := make([]*chaosWriter, nSeries)
	var wg sync.WaitGroup
	errc := make(chan error, nSeries)
	for w := 0; w < nSeries; w++ {
		writers[w] = &chaosWriter{series: fmt.Sprintf("sweep/cell%d/blk", w)}
		wg.Add(1)
		go func(cw *chaosWriter) {
			defer wg.Done()
			for i := 0; i < rowsPerSeries; i++ {
				if onRow != nil {
					onRow(i)
				}
				row := tstore.Row{T: int64(i) * 1_000_000, V: float64(i) * 0.5}
				err := st.Append(cw.series, row.T, row.V)
				switch {
				case err == nil:
					cw.accepted = append(cw.accepted, row)
				case errors.Is(err, tstore.ErrStagedFull):
					cw.dropped++
				case errors.Is(err, faultfs.ErrInjected):
					// Flush failed but the row itself was staged; it retries
					// on a later flush.
					cw.accepted = append(cw.accepted, row)
				default:
					errc <- fmt.Errorf("series %s row %d: untyped error %w", cw.series, i, err)
					return
				}
				if i%97 == 0 {
					if err := st.Flush(); err == nil {
						cw.acked = int64(len(cw.accepted))
					} else if !errors.Is(err, faultfs.ErrInjected) {
						errc <- fmt.Errorf("flush: untyped error %w", err)
						return
					}
				}
			}
		}(writers[w])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	return writers
}

// settle retries Flush until the injected faults let every series through,
// so all accepted rows become acknowledged before reopen.
func settle(t *testing.T, st *tstore.Store) {
	t.Helper()
	for attempt := 0; ; attempt++ {
		err := st.Flush()
		if err == nil {
			return
		}
		if attempt > 10000 {
			t.Fatalf("flush never settled: %v", err)
		}
	}
}

// verifyReopen opens the store directory on a clean filesystem and checks
// every writer's accepted rows survived, in order, bit-for-bit.
func verifyReopen(t *testing.T, dir string, writers []*chaosWriter) {
	t.Helper()
	st, err := tstore.Open(dir, tstore.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st.Close()
	for _, cw := range writers {
		res, err := st.Query(cw.series, -1<<62, 1<<62, 0)
		if len(cw.accepted) == 0 {
			if err == nil && len(res.Rows) != 0 {
				t.Fatalf("series %s: %d rows recovered, none accepted", cw.series, len(res.Rows))
			}
			continue
		}
		if err != nil {
			t.Fatalf("series %s: query after reopen: %v", cw.series, err)
		}
		if int64(len(res.Rows)) < cw.acked {
			t.Fatalf("series %s: %d rows recovered < %d acknowledged", cw.series, len(res.Rows), cw.acked)
		}
		if len(res.Rows) != len(cw.accepted) {
			t.Fatalf("series %s: %d rows recovered, %d accepted", cw.series, len(res.Rows), len(cw.accepted))
		}
		for i, r := range res.Rows {
			if r != cw.accepted[i] {
				t.Fatalf("series %s row %d: recovered %+v, accepted %+v", cw.series, i, r, cw.accepted[i])
			}
		}
	}
}

// reconcile checks the store's typed counters against the writers' ground
// truth: every drop the writers saw is counted, exactly once.
func reconcile(t *testing.T, st *tstore.Store, writers []*chaosWriter) {
	t.Helper()
	var dropped int64
	for _, cw := range writers {
		dropped += cw.dropped
	}
	if got := st.Stats().DroppedRows; got != dropped {
		t.Fatalf("store DroppedRows %d, writers observed %d", got, dropped)
	}
}

// monitor polls the fault counters during the run, pinning monotonicity.
func monitor(t *testing.T, st *tstore.Store, stop chan struct{}, wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastDrop, lastFlushErr int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := st.Stats()
			if s.DroppedRows < lastDrop || s.FlushErrors < lastFlushErr {
				t.Errorf("counters went backwards: drops %d→%d flushErrs %d→%d",
					lastDrop, s.DroppedRows, lastFlushErr, s.FlushErrors)
				return
			}
			lastDrop, lastFlushErr = s.DroppedRows, s.FlushErrors
			time.Sleep(time.Millisecond)
		}
	}()
}

// TestChaosFlushFaults is the headline chaos run: 10% injected flush
// failures plus short writes under a concurrent 8-series sweep.
func TestChaosFlushFaults(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil, 20260808,
		faultfs.Rule{Op: faultfs.OpWriteAt, Mode: faultfs.ModeError, P: 0.05},
		faultfs.Rule{Op: faultfs.OpWriteAt, Mode: faultfs.ModeShortWrite, P: 0.05},
	)
	st, err := tstore.Open(dir, tstore.Options{FlushRows: 32, MaxStagedRows: 256, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var mwg sync.WaitGroup
	monitor(t, st, stop, &mwg)
	writers := driveChaos(t, st, 8, 2000, nil)
	close(stop)
	mwg.Wait()

	if ffs.TotalInjections() == 0 {
		t.Fatal("no faults injected — the chaos run tested nothing")
	}
	if st.Stats().FlushErrors == 0 {
		t.Fatal("no flush errors recorded despite injected faults")
	}
	settle(t, st)
	for _, cw := range writers {
		cw.acked = int64(len(cw.accepted)) // settle acknowledged everything staged
	}
	reconcile(t, st, writers)
	if err := st.Close(); err != nil && !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("close: untyped error %v", err)
	}
	verifyReopen(t, dir, writers)
}

// TestChaosDiskFull drives writers through full disk-full episodes: a small
// staging cap forces genuine typed drops mid-episode, and everything the
// store accepted must still survive a reopen.
func TestChaosDiskFull(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil, 99)
	st, err := tstore.Open(dir, tstore.Options{FlushRows: 16, MaxStagedRows: 64, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	// Key disk-full episodes off a global row counter so the schedule is
	// load-independent even when writers skew: of every 6000 rows appended
	// across all writers, the middle 2000 land inside an episode. The applied
	// high-water mark keeps a stale writer from re-toggling a boundary that a
	// faster writer already crossed.
	var total, applied atomic.Int64
	var tmu sync.Mutex
	onRow := func(int) {
		n := total.Add(1)
		if n%2000 != 0 {
			return
		}
		tmu.Lock()
		if n > applied.Load() {
			applied.Store(n)
			ffs.SetDiskFull((n/2000)%3 == 1)
		}
		tmu.Unlock()
	}
	writers := driveChaos(t, st, 6, 2000, onRow)
	ffs.SetDiskFull(false)

	var dropped int64
	for _, cw := range writers {
		dropped += cw.dropped
	}
	if dropped == 0 {
		t.Fatal("no rows dropped — episodes never filled the 64-row staging cap")
	}
	settle(t, st)
	for _, cw := range writers {
		cw.acked = int64(len(cw.accepted))
	}
	reconcile(t, st, writers)
	if err := st.Close(); err != nil {
		t.Fatalf("close after episodes ended: %v", err)
	}
	verifyReopen(t, dir, writers)
}

// TestChaosSlowAndFailingReads injects latency and errors on the query
// path's segment reads: queries either succeed bit-exactly or fail with a
// typed error; they never panic and never return wrong data.
func TestChaosSlowAndFailingReads(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil, 7,
		faultfs.Rule{Op: faultfs.OpReadAt, Mode: faultfs.ModeDelay, P: 0.3, Delay: time.Millisecond},
		faultfs.Rule{Op: faultfs.OpReadAt, Mode: faultfs.ModeError, P: 0.2},
	)
	st, err := tstore.Open(dir, tstore.Options{FlushRows: 32, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const n = 1000
	want := make([]tstore.Row, n)
	for i := range want {
		want[i] = tstore.Row{T: int64(i) * 1_000_000, V: float64(i)}
		if err := st.Append("s", want[i].T, want[i].V); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var okReads, failedReads atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := st.Query("s", 0, int64(n)*1_000_000, 0)
				if err != nil {
					if !errors.Is(err, faultfs.ErrInjected) {
						t.Errorf("untyped query error: %v", err)
						return
					}
					failedReads.Add(1)
					continue
				}
				okReads.Add(1)
				if len(res.Rows) != n {
					t.Errorf("%d rows, want %d", len(res.Rows), n)
					return
				}
				for j, r := range res.Rows {
					if r != want[j] {
						t.Errorf("row %d: %+v != %+v", j, r, want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if okReads.Load() == 0 || failedReads.Load() == 0 {
		t.Fatalf("want a mix of outcomes, got ok=%d failed=%d", okReads.Load(), failedReads.Load())
	}
}

// TestChaosTornHeader: a flush whose very first file write fails leaves no
// file behind (so retries can recreate it), and a torn data tail from a
// short write is truncated at reopen rather than served.
func TestChaosTornTail(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil, 3,
		faultfs.Rule{Op: faultfs.OpWriteAt, Mode: faultfs.ModeShortWrite, P: 1},
	)
	st, err := tstore.Open(dir, tstore.Options{FlushRows: 8, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		err := st.Append("s", int64(i), float64(i))
		if i < 7 && err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if i == 7 && !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("flush-triggering append: %v", err)
		}
	}
	_ = st.Close() // close's flush fails too: every row stays unacknowledged

	re, err := tstore.Open(dir, tstore.Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	stats := re.Stats()
	if stats.Rows != 0 {
		t.Fatalf("%d unacknowledged rows resurrected from a torn tail", stats.Rows)
	}
	if stats.Recovery.TornTails+stats.Recovery.DroppedFiles == 0 {
		t.Fatalf("recovery saw nothing to clean: %+v", stats.Recovery)
	}
}

// TestChaosOpenFaults: recovery over a faulty filesystem fails with a typed
// error instead of panicking or silently succeeding.
func TestChaosOpenFaults(t *testing.T) {
	dir := t.TempDir()
	st, err := tstore.Open(dir, tstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append("s", 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	ffs := faultfs.New(nil, 5, faultfs.Rule{Op: faultfs.OpReadFile, Mode: faultfs.ModeError, P: 1})
	if _, err := tstore.Open(dir, tstore.Options{FS: ffs}); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("open over failing reads: %v, want ErrInjected", err)
	}
}
