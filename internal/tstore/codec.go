package tstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"math/bits"
)

// Segment wire format (all integers little-endian):
//
//	magic   "TSG1"                                   4 bytes
//	plen    uint32    payload length in bytes        4 bytes
//	payload uvarint(count) + timestamp/value bitstream
//	footer  tMin int64, tMax int64                  16 bytes
//	        vMin, vMax float64                      16 bytes
//	        count uint32                             4 bytes
//	        crc32c uint32 over everything above      4 bytes
//
// The payload bitstream interleaves nothing: all metadata lives in the
// leading varint and the footer. Timestamps are delta-of-delta coded
// (Gorilla-style variable-width classes), values are XOR coded against the
// previous value with a reusable leading/trailing-zero window. Rows within a
// segment are non-decreasing in time; the decoder enforces that, plus the
// footer cross-checks, so a segment that decodes cleanly is also internally
// consistent.

const (
	segMagic     = "TSG1"
	segHeaderLen = 8
	segFooterLen = 40
	// maxSegmentPayload bounds a single segment's payload so a corrupted
	// length field can never drive a multi-gigabyte allocation. Flushes chunk
	// at flushRows, far below this.
	maxSegmentPayload = 64 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segMeta is the decoded footer of one segment plus its location in the
// series file. The t-range and value-range let queries skip segments without
// decoding them.
type segMeta struct {
	off   int64 // file offset of the segment magic
	size  int64 // total on-disk bytes (header + payload + footer)
	count int
	tMin  int64
	tMax  int64
	vMin  float64
	vMax  float64
}

// appendSegment encodes rows as one complete segment and appends it to dst.
// rows must be non-empty, time-sorted (non-decreasing) and finite-valued;
// Append enforces all three before staging.
func appendSegment(dst []byte, rows []Row) []byte {
	start := len(dst)
	dst = append(dst, segMagic...)
	dst = append(dst, 0, 0, 0, 0) // payload length backpatched below

	payloadStart := len(dst)
	dst = binary.AppendUvarint(dst, uint64(len(rows)))
	w := bitWriter{b: dst}

	// Timestamps: first raw, then delta-of-delta in four width classes.
	w.writeBits(uint64(rows[0].T), 64)
	prevDelta := int64(0)
	for i := 1; i < len(rows); i++ {
		d := rows[i].T - rows[i-1].T
		dod := d - prevDelta
		prevDelta = d
		switch {
		case dod == 0:
			w.writeBit(0)
		case dod >= -64 && dod <= 63:
			w.writeBits(0b10, 2)
			w.writeBits(uint64(dod+64), 7)
		case dod >= -2048 && dod <= 2047:
			w.writeBits(0b110, 3)
			w.writeBits(uint64(dod+2048), 12)
		case dod >= -(1<<19) && dod <= (1<<19)-1:
			w.writeBits(0b1110, 4)
			w.writeBits(uint64(dod+(1<<19)), 20)
		default:
			w.writeBits(0b1111, 4)
			w.writeBits(uint64(dod), 64)
		}
	}

	// Values: first raw, then XOR against the previous value. A '10' prefix
	// reuses the previous leading/trailing window; '11' installs a new one
	// (5-bit leading count capped at 31, 6-bit significant-bit count).
	vMin, vMax := rows[0].V, rows[0].V
	w.writeBits(math.Float64bits(rows[0].V), 64)
	prevBits := math.Float64bits(rows[0].V)
	prevLead, prevTrail := -1, -1 // no window yet
	for i := 1; i < len(rows); i++ {
		v := rows[i].V
		if v < vMin {
			vMin = v
		}
		if v > vMax {
			vMax = v
		}
		cur := math.Float64bits(v)
		xor := cur ^ prevBits
		prevBits = cur
		if xor == 0 {
			w.writeBit(0)
			continue
		}
		lead := bits.LeadingZeros64(xor)
		if lead > 31 {
			lead = 31
		}
		trail := bits.TrailingZeros64(xor)
		if prevLead >= 0 && lead >= prevLead && trail >= prevTrail {
			w.writeBits(0b10, 2)
			w.writeBits(xor>>prevTrail, uint(64-prevLead-prevTrail))
			continue
		}
		sig := 64 - lead - trail
		w.writeBits(0b11, 2)
		w.writeBits(uint64(lead), 5)
		w.writeBits(uint64(sig-1), 6)
		w.writeBits(xor>>trail, uint(sig))
		prevLead, prevTrail = lead, trail
	}
	dst = w.b
	binary.LittleEndian.PutUint32(dst[start+4:], uint32(len(dst)-payloadStart))

	dst = binary.LittleEndian.AppendUint64(dst, uint64(rows[0].T))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(rows[len(rows)-1].T))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(vMin))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(vMax))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(rows)))
	crc := crc32.Checksum(dst[start:], castagnoli)
	dst = binary.LittleEndian.AppendUint32(dst, crc)
	return dst
}

// corruptf wraps ErrCorrupt with context; errors.Is(err, ErrCorrupt) holds
// for every decode failure the codec can produce.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
}

// decodeSegment parses one segment from the front of b, appending its rows
// to dst. It returns the extended slice, the segment's footer metadata and
// the total bytes consumed. Any structural problem — short buffer, bad
// magic, oversized length, CRC mismatch, truncated bitstream, non-monotonic
// timestamps, footer disagreeing with the decoded rows — yields an error
// wrapping ErrCorrupt and never a panic. Allocation is bounded by the actual
// payload size, not by attacker-controlled counts: the row count is sanity
// checked against the payload length before any rows are materialized.
func decodeSegment(dst []Row, b []byte) ([]Row, segMeta, int, error) {
	if len(b) < segHeaderLen {
		return dst, segMeta{}, 0, corruptf("short header: %d bytes", len(b))
	}
	if string(b[:4]) != segMagic {
		return dst, segMeta{}, 0, corruptf("bad magic %q", b[:4])
	}
	plen := int(binary.LittleEndian.Uint32(b[4:8]))
	if plen > maxSegmentPayload {
		return dst, segMeta{}, 0, corruptf("payload length %d exceeds cap", plen)
	}
	total := segHeaderLen + plen + segFooterLen
	if len(b) < total {
		return dst, segMeta{}, 0, corruptf("segment truncated: need %d bytes, have %d", total, len(b))
	}
	seg := b[:total]
	crcWant := binary.LittleEndian.Uint32(seg[total-4:])
	if crc := crc32.Checksum(seg[:total-4], castagnoli); crc != crcWant {
		return dst, segMeta{}, 0, corruptf("crc mismatch: computed %08x, footer %08x", crc, crcWant)
	}
	footer := seg[total-segFooterLen:]
	m := segMeta{
		size:  int64(total),
		tMin:  int64(binary.LittleEndian.Uint64(footer[0:])),
		tMax:  int64(binary.LittleEndian.Uint64(footer[8:])),
		vMin:  math.Float64frombits(binary.LittleEndian.Uint64(footer[16:])),
		vMax:  math.Float64frombits(binary.LittleEndian.Uint64(footer[24:])),
		count: int(binary.LittleEndian.Uint32(footer[32:])),
	}

	payload := seg[segHeaderLen : segHeaderLen+plen]
	rows, err := decodePayload(dst, payload)
	if err != nil {
		return dst, segMeta{}, 0, err
	}
	got := rows[len(dst):]
	if len(got) != m.count {
		return dst, segMeta{}, 0, corruptf("footer count %d, decoded %d rows", m.count, len(got))
	}
	if got[0].T != m.tMin || got[len(got)-1].T != m.tMax {
		return dst, segMeta{}, 0, corruptf("footer t-range [%d,%d] disagrees with rows [%d,%d]",
			m.tMin, m.tMax, got[0].T, got[len(got)-1].T)
	}
	vMin, vMax := got[0].V, got[0].V
	for _, r := range got[1:] {
		if r.V < vMin {
			vMin = r.V
		}
		if r.V > vMax {
			vMax = r.V
		}
	}
	if math.Float64bits(vMin) != math.Float64bits(m.vMin) || math.Float64bits(vMax) != math.Float64bits(m.vMax) {
		return dst, segMeta{}, 0, corruptf("footer value range [%g,%g] disagrees with rows [%g,%g]",
			m.vMin, m.vMax, vMin, vMax)
	}
	return rows, m, total, nil
}

// decodePayload decodes the varint-count + bitstream body of a segment,
// appending rows to dst. It is the fuzzer's inner target: it must hold the
// no-panic/no-over-allocation contract for arbitrary input on its own,
// without the CRC shield in front of it.
func decodePayload(dst []Row, payload []byte) ([]Row, error) {
	count64, n := binary.Uvarint(payload)
	if n <= 0 {
		return dst, corruptf("bad row count varint")
	}
	if count64 == 0 {
		return dst, corruptf("empty segment")
	}
	// A row costs at least 2 bits (one timestamp control bit, one value
	// control bit), so a payload of p bytes can hold at most 4p rows. This
	// bound caps allocation before the bitstream is trusted at all.
	if count64 > uint64(len(payload))*4 {
		return dst, corruptf("row count %d impossible for %d-byte payload", count64, len(payload))
	}
	count := int(count64)
	r := bitReader{b: payload[n:]}

	base := len(dst)
	if cap(dst)-base < count {
		grown := make([]Row, base, base+count)
		copy(grown, dst)
		dst = grown
	}

	t0, err := r.readBits(64)
	if err != nil {
		return dst[:base], corruptf("timestamp stream: %v", err)
	}
	prevT := int64(t0)
	dst = append(dst, Row{T: prevT})
	prevDelta := int64(0)
	for i := 1; i < count; i++ {
		var dod int64
		c, err := r.readBit()
		if err != nil {
			return dst[:base], corruptf("timestamp stream: %v", err)
		}
		if c == 1 {
			width, bias := uint(0), int64(0)
			for _, cls := range [...]struct {
				width uint
				bias  int64
			}{{7, 64}, {12, 2048}, {20, 1 << 19}} {
				c, err = r.readBit()
				if err != nil {
					return dst[:base], corruptf("timestamp stream: %v", err)
				}
				if c == 0 {
					width, bias = cls.width, cls.bias
					break
				}
			}
			if width == 0 {
				raw, err := r.readBits(64)
				if err != nil {
					return dst[:base], corruptf("timestamp stream: %v", err)
				}
				dod = int64(raw)
			} else {
				raw, err := r.readBits(width)
				if err != nil {
					return dst[:base], corruptf("timestamp stream: %v", err)
				}
				dod = int64(raw) - bias
			}
		}
		d := prevDelta + dod
		if d < 0 {
			return dst[:base], corruptf("row %d: negative time delta %d", i, d)
		}
		t := prevT + d
		if t < prevT {
			return dst[:base], corruptf("row %d: timestamp overflow", i)
		}
		prevT, prevDelta = t, d
		dst = append(dst, Row{T: t})
	}

	v0, err := r.readBits(64)
	if err != nil {
		return dst[:base], corruptf("value stream: %v", err)
	}
	dst[base].V = math.Float64frombits(v0)
	prevBits := v0
	lead, trail := 0, 0
	haveWindow := false
	for i := 1; i < count; i++ {
		c, err := r.readBit()
		if err != nil {
			return dst[:base], corruptf("value stream: %v", err)
		}
		if c == 1 {
			c, err = r.readBit()
			if err != nil {
				return dst[:base], corruptf("value stream: %v", err)
			}
			if c == 1 {
				l, err := r.readBits(5)
				if err != nil {
					return dst[:base], corruptf("value stream: %v", err)
				}
				s, err := r.readBits(6)
				if err != nil {
					return dst[:base], corruptf("value stream: %v", err)
				}
				lead = int(l)
				sig := int(s) + 1
				trail = 64 - lead - sig
				if trail < 0 {
					return dst[:base], corruptf("row %d: value window %d+%d bits exceeds 64", i, lead, sig)
				}
				haveWindow = true
			} else if !haveWindow {
				return dst[:base], corruptf("row %d: window reuse before any window", i)
			}
			sig := uint(64 - lead - trail)
			xor, err := r.readBits(sig)
			if err != nil {
				return dst[:base], corruptf("value stream: %v", err)
			}
			prevBits ^= xor << uint(trail)
		}
		dst[base+i].V = math.Float64frombits(prevBits)
	}
	// Trailing padding must fit inside the final byte: anything longer means
	// the length field and the bitstream disagree.
	if r.remaining() >= 8 {
		return dst[:base], corruptf("%d unread payload bits", r.remaining())
	}
	for _, row := range dst[base:] {
		if math.IsNaN(row.V) || math.IsInf(row.V, 0) {
			return dst[:base], corruptf("non-finite value %v", row.V)
		}
	}
	return dst, nil
}
