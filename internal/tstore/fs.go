package tstore

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem surface the store touches. The default (OSFS) is a
// thin pass-through to package os; internal/faultfs wraps any FS to inject
// errors, short writes and latency for the chaos suite, which is why every
// disk operation the store performs is routed through this seam rather than
// calling os directly.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	ReadDir(dir string) ([]fs.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	Remove(path string) error
}

// File is the per-file surface: positional reads for concurrent queries,
// positional writes for appends, truncation for torn-tail recovery.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Writer
	io.Closer
	Truncate(size int64) error
}

type osFS struct{}

// OSFS returns the real filesystem.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(dir string) ([]fs.DirEntry, error)    { return os.ReadDir(dir) }
func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }
func (osFS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}
