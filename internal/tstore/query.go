package tstore

import (
	"fmt"
	"sort"
)

// Result is a query answer. Rows is populated for raw queries
// (downsample == 0); Buckets for downsampled ones. RollupBuckets and
// RawBuckets split the bucket count by how each was computed — served
// straight from a flush-time rollup versus recomputed from raw rows because
// the bucket was clipped by the range edge, overlapped still-staged data, or
// the granularity matched no rollup level.
type Result struct {
	Series        string   `json:"series"`
	From          int64    `json:"from_ns"`
	To            int64    `json:"to_ns"`
	Downsample    int64    `json:"downsample_ns,omitempty"`
	Rows          []Row    `json:"rows,omitempty"`
	Buckets       []Bucket `json:"buckets,omitempty"`
	RollupBuckets int      `json:"rollup_buckets,omitempty"`
	RawBuckets    int      `json:"raw_buckets,omitempty"`
}

// Query returns series data over the half-open range [t0, t1). With
// downsample == 0 it returns the raw rows; with downsample g > 0 it returns
// one aggregate bucket per g-aligned interval that holds at least one row.
// Downsampled results are bit-identical to folding the raw rows in time
// order, whichever path served each bucket: rollups answer only buckets
// that lie entirely inside the range and entirely in flushed data, and
// rollup buckets were themselves folded row-by-row at flush time.
func (s *Store) Query(name string, t0, t1, downsample int64) (Result, error) {
	if t1 <= t0 {
		return Result{}, fmt.Errorf("tstore: empty range [%d, %d)", t0, t1)
	}
	if downsample < 0 {
		return Result{}, fmt.Errorf("tstore: negative downsample %d", downsample)
	}
	se, err := s.seriesFor(name, false)
	if err != nil {
		return Result{}, err
	}
	res := Result{Series: name, From: t0, To: t1, Downsample: downsample}
	se.mu.RLock()
	defer se.mu.RUnlock()
	if downsample == 0 {
		res.Rows, err = se.rowsInRange(nil, t0, t1)
		return res, err
	}
	return se.bucketsLocked(res, t0, t1, downsample)
}

// rowsInRange appends every row with t0 <= T < t1 to dst, decoding only the
// segments whose footer t-range overlaps the query. Caller holds se.mu (any
// mode); segment reads go through ReadAt so concurrent queries never share
// a file cursor.
func (se *series) rowsInRange(dst []Row, t0, t1 int64) ([]Row, error) {
	// Segments are time-ordered; skip straight to the first overlapping one.
	first := sort.Search(len(se.segs), func(i int) bool { return se.segs[i].tMax >= t0 })
	var buf []byte
	var seg []Row
	for _, m := range se.segs[first:] {
		if m.tMin >= t1 {
			break
		}
		if int64(len(buf)) < m.size {
			buf = make([]byte, m.size)
		}
		b := buf[:m.size]
		if _, err := se.f.ReadAt(b, m.off); err != nil {
			return dst, fmt.Errorf("tstore: series %q: %w", se.name, err)
		}
		var err error
		seg, _, _, err = decodeSegment(seg[:0], b)
		if err != nil {
			return dst, fmt.Errorf("tstore: series %q segment at %d: %w", se.name, m.off, err)
		}
		if m.tMin >= t0 && m.tMax < t1 {
			dst = append(dst, seg...)
			continue
		}
		lo := sort.Search(len(seg), func(i int) bool { return seg[i].T >= t0 })
		hi := sort.Search(len(seg), func(i int) bool { return seg[i].T >= t1 })
		dst = append(dst, seg[lo:hi]...)
	}
	lo := sort.Search(len(se.staged), func(i int) bool { return se.staged[i].T >= t0 })
	hi := sort.Search(len(se.staged), func(i int) bool { return se.staged[i].T >= t1 })
	return append(dst, se.staged[lo:hi]...), nil
}

// foldBuckets aggregates time-ordered rows (already restricted to the query
// range) into g-aligned buckets, row by row. This is the single fold used
// by flush-time rollups, the raw fallback, and every test reference — one
// accumulation order, one float64 result.
func foldBuckets(dst []Bucket, rows []Row, g int64) []Bucket {
	for _, r := range rows {
		start := alignDown(r.T, g)
		if n := len(dst); n > 0 && dst[n-1].Start == start {
			dst[n-1].add(r.V)
			continue
		}
		b := Bucket{Start: start}
		b.add(r.V)
		dst = append(dst, b)
	}
	return dst
}

// bucketsLocked computes the downsampled answer. Caller holds se.mu.
func (se *series) bucketsLocked(res Result, t0, t1, g int64) (Result, error) {
	var level *rollupLevel
	for i := range se.rollups {
		if se.rollups[i].g == g {
			level = &se.rollups[i]
			break
		}
	}
	if level == nil {
		// No rollup at this granularity: brute-force the raw rows.
		rows, err := se.rowsInRange(nil, t0, t1)
		if err != nil {
			return res, err
		}
		res.Buckets = foldBuckets(nil, rows, g)
		res.RawBuckets = len(res.Buckets)
		return res, nil
	}

	// stagedCut is the start of the first bucket touched by staged rows;
	// rollup buckets strictly before it are complete. Buckets must also sit
	// entirely inside [t0, t1) to be served as-is.
	stagedCut := int64(0)
	haveStaged := len(se.staged) > 0
	if haveStaged {
		stagedCut = alignDown(se.staged[0].T, g)
	}
	fast := func(start int64) bool {
		if start < t0 || t1-g < start {
			return false
		}
		return !haveStaged || start < stagedCut
	}

	qLo, qHi := alignDown(t0, g), alignDown(t1-1, g) // bucket-start range touched by the query
	var out []Bucket
	var slow []int64
	i := sort.Search(len(level.buckets), func(i int) bool { return level.buckets[i].Start >= qLo })
	for ; i < len(level.buckets) && level.buckets[i].Start <= qHi; i++ {
		b := level.buckets[i]
		if fast(b.Start) {
			out = append(out, b)
			res.RollupBuckets++
		} else {
			slow = append(slow, b.Start)
		}
	}
	// Staged rows can populate buckets the rollups have never seen.
	for _, r := range se.staged {
		if r.T < t0 || r.T >= t1 {
			continue
		}
		start := alignDown(r.T, g)
		if len(slow) == 0 || slow[len(slow)-1] != start {
			slow = append(slow, start)
		}
	}
	if len(slow) > 0 {
		sort.Slice(slow, func(a, b int) bool { return slow[a] < slow[b] })
		var rows []Row
		for _, start := range dedupInt64(slow) {
			lo, hi := start, start+g
			if lo < t0 {
				lo = t0
			}
			if hi > t1 {
				hi = t1
			}
			var err error
			rows, err = se.rowsInRange(rows[:0], lo, hi)
			if err != nil {
				return res, err
			}
			if len(rows) == 0 {
				continue
			}
			before := len(out)
			out = foldBuckets(out, rows, g)
			res.RawBuckets += len(out) - before
		}
		sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	}
	res.Buckets = out
	return res, nil
}

func dedupInt64(xs []int64) []int64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
