package tstore

import (
	"math"
	"math/rand"
	"testing"
)

// refRaw is the brute-force reference for raw range queries: a linear scan
// over the in-memory row log.
func refRaw(rows []Row, t0, t1 int64) []Row {
	var out []Row
	for _, r := range rows {
		if r.T >= t0 && r.T < t1 {
			out = append(out, r)
		}
	}
	return out
}

// refBuckets is the brute-force reference for downsampled queries: restrict
// to [t0, t1), then fold rows in time order into g-aligned buckets. It is
// written independently of the store's fold to catch a shared bug.
func refBuckets(rows []Row, t0, t1, g int64) []Bucket {
	var out []Bucket
	for _, r := range rows {
		if r.T < t0 || r.T >= t1 {
			continue
		}
		q := r.T / g
		if r.T%g != 0 && r.T < 0 {
			q--
		}
		start := q * g
		if n := len(out); n > 0 && out[n-1].Start == start {
			b := &out[n-1]
			if r.V < b.Min {
				b.Min = r.V
			}
			if r.V > b.Max {
				b.Max = r.V
			}
			b.Count++
			b.Sum += r.V
			continue
		}
		out = append(out, Bucket{Start: start, Count: 1, Min: r.V, Max: r.V, Sum: r.V})
	}
	return out
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

func bucketsEqual(t *testing.T, label string, got, want []Bucket) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d buckets, want %d\ngot:  %+v\nwant: %+v", label, len(got), len(want), got, want)
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Start != w.Start || g.Count != w.Count ||
			!sameBits(g.Min, w.Min) || !sameBits(g.Max, w.Max) || !sameBits(g.Sum, w.Sum) {
			t.Fatalf("%s: bucket %d differs\ngot:  %+v\nwant: %+v", label, i, g, w)
		}
	}
}

// TestQueryPropertyBitIdentical drives randomized row sets through random
// (t0, t1, granularity) queries and demands the store's answer — whichever
// mix of rollup-served and raw-recomputed buckets produced it — be
// bit-identical to the brute-force reference. Small granularities and tiny
// flush sizes force segment boundaries and partially-covered rollup buckets
// constantly; a mid-stream reopen checks the recovered state answers
// identically too.
func TestQueryPropertyBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		dir := t.TempDir()
		grans := []int64{7, 10, 50}[:1+rng.Intn(3)]
		opts := Options{FlushRows: 1 + rng.Intn(64), Granularities: grans}
		st := mustOpen(t, dir, opts)

		n := rng.Intn(2000)
		log := make([]Row, 0, n)
		tcur := int64(rng.Intn(100)) - 50
		for i := 0; i < n; i++ {
			if rng.Intn(4) > 0 { // 25% duplicate timestamps
				tcur += int64(rng.Intn(25))
			}
			v := math.Round((rng.Float64()*100-50)*8) / 8 // mix of exact and messy values
			if rng.Intn(3) == 0 {
				v = rng.NormFloat64() * 1e-3
			}
			log = append(log, Row{T: tcur, V: v})
			if err := st.Append("s", tcur, v); err != nil {
				t.Fatalf("trial %d append %d: %v", trial, i, err)
			}
			if i == n/2 && rng.Intn(2) == 0 {
				// Reopen mid-stream: Close flushes the staged tail, Open
				// re-verifies every segment and rebuilds the rollups. The
				// recovered store must answer identically to one that never
				// restarted.
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
				st = mustOpen(t, dir, opts)
			}
		}

		span := int64(1)
		if n > 0 {
			span = log[len(log)-1].T - log[0].T + 10
		}
		base := int64(0)
		if n > 0 {
			base = log[0].T
		}
		for q := 0; q < 40; q++ {
			t0 := base - 5 + rng.Int63n(span+10)
			t1 := t0 + 1 + rng.Int63n(span)
			var g int64
			switch rng.Intn(3) {
			case 0:
				g = grans[rng.Intn(len(grans))] // rollup fast path eligible
			case 1:
				g = 1 + rng.Int63n(60) // usually no rollup: raw fallback
			default:
				g = 0 // raw rows
			}
			res, err := st.Query("s", t0, t1, g)
			if err != nil {
				if n == 0 {
					continue // series never created
				}
				t.Fatalf("trial %d query %d: %v", trial, q, err)
			}
			if g == 0 {
				want := refRaw(log, t0, t1)
				if len(res.Rows) != len(want) {
					t.Fatalf("trial %d query %d: %d raw rows, want %d", trial, q, len(res.Rows), len(want))
				}
				for i := range want {
					if res.Rows[i].T != want[i].T || !sameBits(res.Rows[i].V, want[i].V) {
						t.Fatalf("trial %d query %d row %d: got %+v want %+v", trial, q, i, res.Rows[i], want[i])
					}
				}
				continue
			}
			bucketsEqual(t, "trial/query", res.Buckets, refBuckets(log, t0, t1, g))
			if res.RollupBuckets+res.RawBuckets != len(res.Buckets) {
				t.Fatalf("trial %d query %d: bucket accounting %d+%d != %d",
					trial, q, res.RollupBuckets, res.RawBuckets, len(res.Buckets))
			}
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestQueryUsesRollupFastPath pins that the fast path actually engages: a
// fully-flushed series queried at a rollup granularity over an aligned
// interior range must serve every bucket from rollups, no raw decodes.
func TestQueryUsesRollupFastPath(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{FlushRows: 32, Granularities: []int64{100}})
	for i := 0; i < 1024; i++ {
		if err := st.Append("s", int64(i)*3, float64(i%17)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := st.Query("s", 0, 3000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.RawBuckets != 0 || res.RollupBuckets != 30 {
		t.Fatalf("fast path not engaged: rollup=%d raw=%d", res.RollupBuckets, res.RawBuckets)
	}
	// Unaligned edges force exactly the two edge buckets onto the raw path.
	res, err = st.Query("s", 150, 2950, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.RawBuckets != 2 || res.RollupBuckets != 27 {
		t.Fatalf("edge buckets: rollup=%d raw=%d", res.RollupBuckets, res.RawBuckets)
	}
	// Staged rows push their buckets (and nothing else) onto the raw path.
	if err := st.Append("s", 3070, 1); err != nil {
		t.Fatal(err)
	}
	res, err = st.Query("s", 0, 3200, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.RawBuckets != 1 || res.RollupBuckets != 30 {
		t.Fatalf("staged bucket split: rollup=%d raw=%d", res.RollupBuckets, res.RawBuckets)
	}
}
