// Package floorplan represents chip floorplans: named rectangular blocks
// tiling a die (the paper's §2 die geometry; DESIGN.md §2 records the
// reconstruction of the two floorplans the paper uses). It provides the
// HotSpot ".flp" interchange format, geometric validation, block adjacency
// with shared-edge lengths (needed to build lateral thermal resistances),
// and rasterization onto regular grids (needed by the reference solver, the
// thermal-map renderers, and the IR camera model).
//
// The package ships the two floorplans used in the paper's experiments: an
// Alpha EV6-like core (18 blocks, 16×16 mm) and an AMD Athlon 64-like die
// (21 blocks) matching the block list of the paper's Fig. 5.
package floorplan

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Block is an axis-aligned rectangle on the die. Units are meters.
// X grows rightward, Y grows upward; (X, Y) is the lower-left corner.
type Block struct {
	Name          string
	Width, Height float64
	X, Y          float64
}

// Area returns the block area in m².
func (b Block) Area() float64 { return b.Width * b.Height }

// CenterX returns the x coordinate of the block centroid.
func (b Block) CenterX() float64 { return b.X + b.Width/2 }

// CenterY returns the y coordinate of the block centroid.
func (b Block) CenterY() float64 { return b.Y + b.Height/2 }

// Contains reports whether point (x, y) lies inside the block (closed on the
// low edges, open on the high edges, so a tiling covers each point once).
func (b Block) Contains(x, y float64) bool {
	return x >= b.X && x < b.X+b.Width && y >= b.Y && y < b.Y+b.Height
}

// Floorplan is an ordered list of blocks tiling a rectangular die.
type Floorplan struct {
	Blocks []Block
	byName map[string]int
}

// New builds a floorplan from blocks and validates name uniqueness and
// geometry: sizes must be positive and all coordinates finite (a zero-area
// block has no thermal mass and would divide the RC assembly by zero; NaN
// or Inf geometry would poison every downstream bound and resistance).
func New(blocks []Block) (*Floorplan, error) {
	fp := &Floorplan{Blocks: blocks, byName: make(map[string]int, len(blocks))}
	for i, b := range blocks {
		if b.Name == "" {
			return nil, fmt.Errorf("floorplan: block %d has an empty name", i)
		}
		if !(b.Width > 0) || !(b.Height > 0) { // also rejects NaN
			return nil, fmt.Errorf("floorplan: block %q has non-positive size %g×%g", b.Name, b.Width, b.Height)
		}
		for _, v := range []float64{b.Width, b.Height, b.X, b.Y} {
			if math.IsInf(v, 0) || math.IsNaN(v) {
				return nil, fmt.Errorf("floorplan: block %q has non-finite geometry", b.Name)
			}
		}
		if _, dup := fp.byName[b.Name]; dup {
			return nil, fmt.Errorf("floorplan: duplicate block name %q", b.Name)
		}
		fp.byName[b.Name] = i
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("floorplan: no blocks")
	}
	return fp, nil
}

// MustNew is New that panics on error; intended for the compiled-in
// floorplans whose validity is covered by tests.
func MustNew(blocks []Block) *Floorplan {
	fp, err := New(blocks)
	if err != nil {
		panic(err)
	}
	return fp
}

// N returns the number of blocks.
func (fp *Floorplan) N() int { return len(fp.Blocks) }

// Index returns the index of the named block, or -1.
func (fp *Floorplan) Index(name string) int {
	if i, ok := fp.byName[name]; ok {
		return i
	}
	return -1
}

// Names returns the block names in floorplan order.
func (fp *Floorplan) Names() []string {
	out := make([]string, len(fp.Blocks))
	for i, b := range fp.Blocks {
		out[i] = b.Name
	}
	return out
}

// Bounds returns the bounding box (minX, minY, maxX, maxY) of all blocks.
func (fp *Floorplan) Bounds() (minX, minY, maxX, maxY float64) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, b := range fp.Blocks {
		minX = math.Min(minX, b.X)
		minY = math.Min(minY, b.Y)
		maxX = math.Max(maxX, b.X+b.Width)
		maxY = math.Max(maxY, b.Y+b.Height)
	}
	return
}

// Width returns the die width (bounding box).
func (fp *Floorplan) Width() float64 {
	minX, _, maxX, _ := fp.Bounds()
	return maxX - minX
}

// Height returns the die height (bounding box).
func (fp *Floorplan) Height() float64 {
	_, minY, _, maxY := fp.Bounds()
	return maxY - minY
}

// TotalArea returns the sum of block areas.
func (fp *Floorplan) TotalArea() float64 {
	var a float64
	for _, b := range fp.Blocks {
		a += b.Area()
	}
	return a
}

// geomTol is the tolerance used when comparing coordinates; floorplans are
// expressed in meters, so a nanometer slack absorbs decimal rounding.
const geomTol = 1e-9

// Validate checks that no two blocks overlap and that the blocks tile the
// bounding box without gaps (within tolerance). A floorplan that merely must
// not overlap (e.g. sparse sensor sites) can use ValidateNoOverlap.
func (fp *Floorplan) Validate() error {
	if err := fp.ValidateNoOverlap(); err != nil {
		return err
	}
	minX, minY, maxX, maxY := fp.Bounds()
	dieArea := (maxX - minX) * (maxY - minY)
	if math.Abs(dieArea-fp.TotalArea()) > geomTol+1e-6*dieArea {
		return fmt.Errorf("floorplan: blocks cover %.6g m² of a %.6g m² die (gap or overhang)", fp.TotalArea(), dieArea)
	}
	return nil
}

// ValidateNoOverlap checks pairwise that no blocks overlap.
func (fp *Floorplan) ValidateNoOverlap() error {
	for i := 0; i < len(fp.Blocks); i++ {
		for j := i + 1; j < len(fp.Blocks); j++ {
			a, b := fp.Blocks[i], fp.Blocks[j]
			ox := overlap1D(a.X, a.X+a.Width, b.X, b.X+b.Width)
			oy := overlap1D(a.Y, a.Y+a.Height, b.Y, b.Y+b.Height)
			if ox > geomTol && oy > geomTol {
				return fmt.Errorf("floorplan: blocks %q and %q overlap by %.3g×%.3g m", a.Name, b.Name, ox, oy)
			}
		}
	}
	return nil
}

func overlap1D(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi > lo {
		return hi - lo
	}
	return 0
}

// Adjacency describes two blocks sharing an edge.
type Adjacency struct {
	I, J int // block indices, I < J
	// SharedLen is the length of the shared edge in meters.
	SharedLen float64
	// Horizontal is true when the shared edge is vertical (the blocks are
	// left/right neighbours and heat flows horizontally between them).
	Horizontal bool
}

// Adjacencies computes all pairs of blocks that share an edge of positive
// length. Results are ordered deterministically.
func (fp *Floorplan) Adjacencies() []Adjacency {
	var out []Adjacency
	for i := 0; i < len(fp.Blocks); i++ {
		for j := i + 1; j < len(fp.Blocks); j++ {
			a, b := fp.Blocks[i], fp.Blocks[j]
			// Left/right neighbours: a's right edge touches b's left edge
			// (or vice versa) and they overlap vertically.
			if touches(a.X+a.Width, b.X) || touches(b.X+b.Width, a.X) {
				if l := overlap1D(a.Y, a.Y+a.Height, b.Y, b.Y+b.Height); l > geomTol {
					out = append(out, Adjacency{I: i, J: j, SharedLen: l, Horizontal: true})
					continue
				}
			}
			// Top/bottom neighbours.
			if touches(a.Y+a.Height, b.Y) || touches(b.Y+b.Height, a.Y) {
				if l := overlap1D(a.X, a.X+a.Width, b.X, b.X+b.Width); l > geomTol {
					out = append(out, Adjacency{I: i, J: j, SharedLen: l, Horizontal: false})
				}
			}
		}
	}
	sort.Slice(out, func(x, y int) bool {
		if out[x].I != out[y].I {
			return out[x].I < out[y].I
		}
		return out[x].J < out[y].J
	})
	return out
}

func touches(a, b float64) bool { return math.Abs(a-b) <= geomTol }

// EdgeBlocks returns the indices of blocks touching the given die edge.
// The edge is one of "left", "right", "top", "bottom".
func (fp *Floorplan) EdgeBlocks(edge string) ([]int, error) {
	minX, minY, maxX, maxY := fp.Bounds()
	var out []int
	for i, b := range fp.Blocks {
		var on bool
		switch edge {
		case "left":
			on = touches(b.X, minX)
		case "right":
			on = touches(b.X+b.Width, maxX)
		case "top":
			on = touches(b.Y+b.Height, maxY)
		case "bottom":
			on = touches(b.Y, minY)
		default:
			return nil, fmt.Errorf("floorplan: unknown edge %q", edge)
		}
		if on {
			out = append(out, i)
		}
	}
	return out, nil
}

// BlockAt returns the index of the block containing (x, y), or -1.
func (fp *Floorplan) BlockAt(x, y float64) int {
	for i, b := range fp.Blocks {
		if b.Contains(x, y) {
			return i
		}
	}
	return -1
}

// Rasterize maps the floorplan onto an nx×ny grid covering the bounding box
// and returns, for each cell (row-major, row 0 at the die bottom), the index
// of the block containing the cell center (or -1 for uncovered cells).
func (fp *Floorplan) Rasterize(nx, ny int) []int {
	minX, minY, maxX, maxY := fp.Bounds()
	dx := (maxX - minX) / float64(nx)
	dy := (maxY - minY) / float64(ny)
	cells := make([]int, nx*ny)
	for iy := 0; iy < ny; iy++ {
		y := minY + (float64(iy)+0.5)*dy
		for ix := 0; ix < nx; ix++ {
			x := minX + (float64(ix)+0.5)*dx
			cells[iy*nx+ix] = fp.BlockAt(x, y)
		}
	}
	return cells
}

// Parse reads a floorplan in the HotSpot ".flp" format:
//
//	# comment
//	<name>\t<width>\t<height>\t<left-x>\t<bottom-y>
//
// Fields may be separated by any run of spaces or tabs. Extra fields (the
// optional HotSpot resistivity/capacitance overrides) are ignored.
func Parse(r io.Reader) (*Floorplan, error) {
	var blocks []Block
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		if len(f) < 5 {
			return nil, fmt.Errorf("floorplan: line %d: want ≥5 fields, got %d", line, len(f))
		}
		vals := make([]float64, 4)
		for k := 0; k < 4; k++ {
			v, err := strconv.ParseFloat(f[k+1], 64)
			if err != nil {
				return nil, fmt.Errorf("floorplan: line %d field %d: %v", line, k+2, err)
			}
			vals[k] = v
		}
		blocks = append(blocks, Block{Name: f[0], Width: vals[0], Height: vals[1], X: vals[2], Y: vals[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return New(blocks)
}

// Write emits the floorplan in the HotSpot ".flp" format.
func (fp *Floorplan) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# <name>\t<width>\t<height>\t<left-x>\t<bottom-y>  (meters)")
	for _, b := range fp.Blocks {
		fmt.Fprintf(bw, "%s\t%.6e\t%.6e\t%.6e\t%.6e\n", b.Name, b.Width, b.Height, b.X, b.Y)
	}
	return bw.Flush()
}

// String renders a coarse ASCII map of the floorplan (top row first), useful
// for CLI inspection.
func (fp *Floorplan) String() string {
	const nx, ny = 48, 24
	cells := fp.Rasterize(nx, ny)
	glyphs := "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	var sb strings.Builder
	for iy := ny - 1; iy >= 0; iy-- {
		for ix := 0; ix < nx; ix++ {
			bi := cells[iy*nx+ix]
			if bi < 0 {
				sb.WriteByte('.')
			} else {
				sb.WriteByte(glyphs[bi%len(glyphs)])
			}
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("legend:\n")
	for i, b := range fp.Blocks {
		fmt.Fprintf(&sb, "  %c %s\n", glyphs[i%len(glyphs)], b.Name)
	}
	return sb.String()
}
