package floorplan

import "fmt"

// This file contains the two floorplans used by the paper's experiments.
//
// EV6 is an Alpha 21264-like floorplan with the 18 blocks listed in the
// paper's Fig. 11 table, on a 16×16 mm die (the die size used by the HotSpot
// distribution's ev6 example). The exact block geometry is a reconstruction:
// L2 occupies the bottom and the die flanks, caches sit above it, the FP
// cluster is on the upper-left of the core and the integer cluster
// (IntReg/IntExec, the usual hot spots) on the upper-right — consistent with
// the paper's observations that IntReg is near the top edge (cooled best by a
// top-to-bottom oil flow) and toward the right half of the die (cooled better
// by a right-to-left flow; see Fig. 11).
//
// Athlon is an AMD Athlon 64-like floorplan with the 22 blocks named in the
// paper's Fig. 5, including the four blank edge regions excluded from the
// coolest-temperature comparison in §3.2.

// EV6 returns the Alpha EV6-like floorplan (fresh copy).
func EV6() *Floorplan {
	mm := 1e-3
	return MustNew([]Block{
		{Name: "L2_left", Width: 4.9 * mm, Height: 6.2 * mm, X: 0, Y: 9.8 * mm},
		{Name: "L2", Width: 16 * mm, Height: 9.8 * mm, X: 0, Y: 0},
		{Name: "L2_right", Width: 4.9 * mm, Height: 6.2 * mm, X: 11.1 * mm, Y: 9.8 * mm},
		{Name: "Icache", Width: 3.1 * mm, Height: 2.6 * mm, X: 4.9 * mm, Y: 9.8 * mm},
		{Name: "Dcache", Width: 3.1 * mm, Height: 2.6 * mm, X: 8.0 * mm, Y: 9.8 * mm},
		{Name: "Bpred", Width: 1.0333333e-3, Height: 0.7 * mm, X: 4.9 * mm, Y: 12.4 * mm},
		{Name: "DTB", Width: 1.0333333e-3, Height: 0.7 * mm, X: 5.9333333e-3, Y: 12.4 * mm},
		{Name: "FPAdd", Width: 1.0333334e-3, Height: 0.7 * mm, X: 6.9666666e-3, Y: 12.4 * mm},
		{Name: "FPReg", Width: 1.0333333e-3, Height: 0.7 * mm, X: 4.9 * mm, Y: 13.1 * mm},
		{Name: "FPMul", Width: 1.0333333e-3, Height: 0.7 * mm, X: 5.9333333e-3, Y: 13.1 * mm},
		{Name: "FPMap", Width: 1.0333334e-3, Height: 0.7 * mm, X: 6.9666666e-3, Y: 13.1 * mm},
		{Name: "FPQ", Width: 3.1 * mm, Height: 2.2 * mm, X: 4.9 * mm, Y: 13.8 * mm},
		{Name: "LdStQ", Width: 1.8 * mm, Height: 1.8 * mm, X: 8.0 * mm, Y: 12.4 * mm},
		{Name: "ITB", Width: 1.3 * mm, Height: 1.8 * mm, X: 9.8 * mm, Y: 12.4 * mm},
		{Name: "IntMap", Width: 0.8 * mm, Height: 1.8 * mm, X: 8.0 * mm, Y: 14.2 * mm},
		{Name: "IntQ", Width: 1.2 * mm, Height: 1.8 * mm, X: 8.8 * mm, Y: 14.2 * mm},
		{Name: "IntReg", Width: 0.55 * mm, Height: 1.8 * mm, X: 10.0 * mm, Y: 14.2 * mm},
		{Name: "IntExec", Width: 0.55 * mm, Height: 1.8 * mm, X: 10.55 * mm, Y: 14.2 * mm},
	})
}

// EV6DieThickness is the silicon thickness used with the EV6 floorplan.
const EV6DieThickness = 0.5e-3

// Athlon returns the AMD Athlon 64-like floorplan with the 22 blocks of the
// paper's Fig. 5 (fresh copy). Die is 14×14 mm.
func Athlon() *Floorplan {
	mm := 1e-3
	return MustNew([]Block{
		{Name: "l2cache", Width: 14 * mm, Height: 6 * mm, X: 0, Y: 0},

		{Name: "blank3", Width: 1 * mm, Height: 3 * mm, X: 0, Y: 6 * mm},
		{Name: "l1d", Width: 3.5 * mm, Height: 3 * mm, X: 1 * mm, Y: 6 * mm},
		{Name: "lsq", Width: 1.5 * mm, Height: 3 * mm, X: 4.5 * mm, Y: 6 * mm},
		{Name: "l1i", Width: 3.5 * mm, Height: 3 * mm, X: 6 * mm, Y: 6 * mm},
		{Name: "mem_ctl", Width: 3.5 * mm, Height: 3 * mm, X: 9.5 * mm, Y: 6 * mm},
		{Name: "blank4", Width: 1 * mm, Height: 3 * mm, X: 13 * mm, Y: 6 * mm},

		{Name: "fetch", Width: 2.5 * mm, Height: 2.5 * mm, X: 0, Y: 9 * mm},
		{Name: "dtlb", Width: 1.5 * mm, Height: 2.5 * mm, X: 2.5 * mm, Y: 9 * mm},
		{Name: "sched", Width: 2 * mm, Height: 2.5 * mm, X: 4 * mm, Y: 9 * mm},
		{Name: "rob_irf", Width: 2 * mm, Height: 2.5 * mm, X: 6 * mm, Y: 9 * mm},
		{Name: "fp_sched", Width: 2 * mm, Height: 2.5 * mm, X: 8 * mm, Y: 9 * mm},
		{Name: "frf", Width: 2 * mm, Height: 2.5 * mm, X: 10 * mm, Y: 9 * mm},
		{Name: "sse", Width: 2 * mm, Height: 2.5 * mm, X: 12 * mm, Y: 9 * mm},

		{Name: "blank1", Width: 2.5 * mm, Height: 2.5 * mm, X: 0, Y: 11.5 * mm},
		{Name: "clock", Width: 1.5 * mm, Height: 2.5 * mm, X: 2.5 * mm, Y: 11.5 * mm},
		{Name: "clockd1", Width: 1 * mm, Height: 2.5 * mm, X: 4 * mm, Y: 11.5 * mm},
		{Name: "clockd2", Width: 1 * mm, Height: 2.5 * mm, X: 5 * mm, Y: 11.5 * mm},
		{Name: "clockd3", Width: 1 * mm, Height: 2.5 * mm, X: 6 * mm, Y: 11.5 * mm},
		{Name: "fp0", Width: 2.5 * mm, Height: 2.5 * mm, X: 7 * mm, Y: 11.5 * mm},
		{Name: "bus_etc", Width: 2 * mm, Height: 2.5 * mm, X: 9.5 * mm, Y: 11.5 * mm},
		{Name: "blank2", Width: 2.5 * mm, Height: 2.5 * mm, X: 11.5 * mm, Y: 11.5 * mm},
	})
}

// AthlonDieThickness is the silicon thickness used with the Athlon
// floorplan (thinned for IR transparency, as in Mesa-Martinez et al.).
const AthlonDieThickness = 0.3e-3

// AthlonPowers returns the per-block average power (W) used for the paper's
// Fig. 4/5 experiments. The original values were derived by Mesa-Martinez et
// al. (ISCA 2007) from IR measurements of an Athlon 64 running SPEC
// workloads; that table is not public, so these are reconstructed to match
// the temperatures the paper reports for the same experiment (hottest block
// "sched" ≈ 73 °C, coolest ≈ 45 °C under OIL-SILICON with the secondary
// path modeled). See DESIGN.md §2 for the substitution rationale.
func AthlonPowers() map[string]float64 {
	return map[string]float64{
		"l2cache":  4.2,
		"blank1":   0,
		"blank2":   0,
		"blank3":   0,
		"blank4":   0,
		"l1d":      2.2,
		"lsq":      1.2,
		"l1i":      1.7,
		"mem_ctl":  1.3,
		"sched":    3.1,
		"rob_irf":  2.0,
		"fetch":    1.6,
		"dtlb":     0.6,
		"fp_sched": 0.8,
		"frf":      0.7,
		"sse":      1.0,
		"clock":    1.4,
		"clockd1":  0.4,
		"clockd2":  0.4,
		"clockd3":  0.4,
		"fp0":      1.0,
		"bus_etc":  1.0,
	}
}

// UniformDie returns a single-block floorplan of the given size, used by the
// validation experiments (Figs. 2-3) and as a convenient quickstart die.
func UniformDie(name string, w, h float64) *Floorplan {
	return MustNew([]Block{{Name: name, Width: w, Height: h, X: 0, Y: 0}})
}

// GridDie returns an nx×ny uniform tiling of a w×h die with blocks named
// "c<ix>_<iy>". The compact model on a grid floorplan approaches the
// fine-grid reference solver, which is how the Fig. 3 validation uses it.
func GridDie(w, h float64, nx, ny int) *Floorplan {
	blocks := make([]Block, 0, nx*ny)
	dx, dy := w/float64(nx), h/float64(ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			blocks = append(blocks, Block{
				Name:  fmt.Sprintf("c%d_%d", ix, iy),
				Width: dx, Height: dy,
				X: float64(ix) * dx, Y: float64(iy) * dy,
			})
		}
	}
	return MustNew(blocks)
}

// CenterSourceDie returns a die of size w×h with a centered hot block of
// size hw×hh named "hot" and the surrounding frame split into four blocks
// ("west", "east", "south", "north"). Used by the Fig. 3 steady-state
// validation experiment (2×2 mm source in a 20×20 mm die).
func CenterSourceDie(w, h, hw, hh float64) *Floorplan {
	x0 := (w - hw) / 2
	y0 := (h - hh) / 2
	return MustNew([]Block{
		{Name: "hot", Width: hw, Height: hh, X: x0, Y: y0},
		{Name: "west", Width: x0, Height: h, X: 0, Y: 0},
		{Name: "east", Width: w - x0 - hw, Height: h, X: x0 + hw, Y: 0},
		{Name: "south", Width: hw, Height: y0, X: x0, Y: 0},
		{Name: "north", Width: hw, Height: h - y0 - hh, X: x0, Y: y0 + hh},
	})
}
