package floorplan

import (
	"math"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text through the .flp parser. Invariants: never
// panic; any floorplan the parser accepts has only finite, positive block
// geometry (zero-area blocks and NaN/Inf coordinates must be rejected), a
// finite bounding box, and survives the geometric helpers.
func FuzzParse(f *testing.F) {
	f.Add("a\t1e-3\t2e-3\t0\t0\nb\t1e-3\t2e-3\t1e-3\t0\n")
	f.Add("# comment\nblk 0.016 0.016 0 0 extra fields ignored\n")
	f.Add("zero\t0\t1e-3\t0\t0\n")
	f.Add("neg\t-1e-3\t1e-3\t0\t0\n")
	f.Add("nan\tNaN\t1e-3\t0\t0\n")
	f.Add("infx\t1e-3\t1e-3\tInf\t0\n")
	f.Add("dup\t1e-3\t1e-3\t0\t0\ndup\t1e-3\t1e-3\t1e-3\t0\n")
	f.Add("short 1 2\n")
	f.Add("huge\t1e300\t1e300\t-1e300\t1e300\n")
	f.Fuzz(func(t *testing.T, data string) {
		fp, err := Parse(strings.NewReader(data))
		if err != nil {
			return
		}
		if fp.N() == 0 {
			t.Fatal("accepted a floorplan with no blocks")
		}
		for _, b := range fp.Blocks {
			if !(b.Width > 0) || !(b.Height > 0) {
				t.Fatalf("block %q: non-positive size %g×%g accepted", b.Name, b.Width, b.Height)
			}
			for _, v := range []float64{b.Width, b.Height, b.X, b.Y} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("block %q: non-finite geometry accepted", b.Name)
				}
			}
			if b.Name == "" {
				t.Fatal("empty block name accepted")
			}
		}
		minX, minY, maxX, maxY := fp.Bounds()
		for _, v := range []float64{minX, minY, maxX, maxY} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("non-finite bounds")
			}
		}
		// The geometric helpers must hold up on anything Parse accepts.
		// Adjacencies is O(n²); bound the work per input.
		if fp.N() <= 128 {
			_ = fp.Adjacencies()
			_ = fp.ValidateNoOverlap()
			_ = fp.Rasterize(8, 8)
		}
	})
}
