package floorplan

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewRejectsBad(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("empty floorplan should fail")
	}
	if _, err := New([]Block{{Name: "", Width: 1, Height: 1}}); err == nil {
		t.Fatal("empty name should fail")
	}
	if _, err := New([]Block{{Name: "a", Width: 0, Height: 1}}); err == nil {
		t.Fatal("zero width should fail")
	}
	if _, err := New([]Block{
		{Name: "a", Width: 1, Height: 1},
		{Name: "a", Width: 1, Height: 1, X: 2},
	}); err == nil {
		t.Fatal("duplicate name should fail")
	}
}

func TestBlockGeometry(t *testing.T) {
	b := Block{Name: "b", Width: 2, Height: 4, X: 1, Y: 3}
	if b.Area() != 8 {
		t.Fatalf("Area=%g", b.Area())
	}
	if b.CenterX() != 2 || b.CenterY() != 5 {
		t.Fatalf("centroid (%g,%g)", b.CenterX(), b.CenterY())
	}
	if !b.Contains(1, 3) || b.Contains(3, 3) || b.Contains(0.5, 4) {
		t.Fatal("Contains semantics wrong")
	}
}

func twoByTwo() *Floorplan {
	return MustNew([]Block{
		{Name: "sw", Width: 1, Height: 1, X: 0, Y: 0},
		{Name: "se", Width: 1, Height: 1, X: 1, Y: 0},
		{Name: "nw", Width: 1, Height: 1, X: 0, Y: 1},
		{Name: "ne", Width: 1, Height: 1, X: 1, Y: 1},
	})
}

func TestValidateTiling(t *testing.T) {
	if err := twoByTwo().Validate(); err != nil {
		t.Fatalf("2x2 tiling should validate: %v", err)
	}
	gap := MustNew([]Block{
		{Name: "a", Width: 1, Height: 1, X: 0, Y: 0},
		{Name: "b", Width: 1, Height: 1, X: 2, Y: 0}, // gap at x∈(1,2)
	})
	if err := gap.Validate(); err == nil {
		t.Fatal("gapped floorplan should fail Validate")
	}
	overlap := MustNew([]Block{
		{Name: "a", Width: 2, Height: 1, X: 0, Y: 0},
		{Name: "b", Width: 2, Height: 1, X: 1, Y: 0},
	})
	if err := overlap.ValidateNoOverlap(); err == nil {
		t.Fatal("overlapping blocks should fail")
	}
}

func TestAdjacencies(t *testing.T) {
	fp := twoByTwo()
	adj := fp.Adjacencies()
	if len(adj) != 4 {
		t.Fatalf("2x2 grid has 4 adjacencies, got %d: %+v", len(adj), adj)
	}
	// sw-se horizontal, sw-nw vertical, se-ne vertical, nw-ne horizontal.
	horiz := 0
	for _, a := range adj {
		if a.SharedLen != 1 {
			t.Fatalf("shared edge length %g, want 1", a.SharedLen)
		}
		if a.Horizontal {
			horiz++
		}
	}
	if horiz != 2 {
		t.Fatalf("want 2 horizontal adjacencies, got %d", horiz)
	}
}

func TestAdjacencyPartialEdge(t *testing.T) {
	fp := MustNew([]Block{
		{Name: "tall", Width: 1, Height: 2, X: 0, Y: 0},
		{Name: "short", Width: 1, Height: 1, X: 1, Y: 0.5},
	})
	adj := fp.Adjacencies()
	if len(adj) != 1 || math.Abs(adj[0].SharedLen-1) > 1e-12 || !adj[0].Horizontal {
		t.Fatalf("partial edge adjacency wrong: %+v", adj)
	}
	// Corner-touching blocks are NOT adjacent.
	corner := MustNew([]Block{
		{Name: "a", Width: 1, Height: 1, X: 0, Y: 0},
		{Name: "b", Width: 1, Height: 1, X: 1, Y: 1},
	})
	if len(corner.Adjacencies()) != 0 {
		t.Fatal("corner contact must not create an adjacency")
	}
}

func TestEdgeBlocks(t *testing.T) {
	fp := twoByTwo()
	left, err := fp.EdgeBlocks("left")
	if err != nil || len(left) != 2 {
		t.Fatalf("left edge: %v %v", left, err)
	}
	top, _ := fp.EdgeBlocks("top")
	names := map[int]bool{}
	for _, i := range top {
		names[i] = true
	}
	if !names[fp.Index("nw")] || !names[fp.Index("ne")] {
		t.Fatalf("top edge wrong: %v", top)
	}
	if _, err := fp.EdgeBlocks("diagonal"); err == nil {
		t.Fatal("bad edge name should error")
	}
}

func TestRasterize(t *testing.T) {
	fp := twoByTwo()
	cells := fp.Rasterize(4, 4)
	// Bottom-left cell belongs to "sw", top-right to "ne".
	if fp.Blocks[cells[0]].Name != "sw" {
		t.Fatalf("cell(0,0) = %q", fp.Blocks[cells[0]].Name)
	}
	if fp.Blocks[cells[15]].Name != "ne" {
		t.Fatalf("cell(3,3) = %q", fp.Blocks[cells[15]].Name)
	}
	for _, c := range cells {
		if c < 0 {
			t.Fatal("full tiling must cover all cells")
		}
	}
}

func TestParseWriteRoundTrip(t *testing.T) {
	fp := EV6()
	var buf bytes.Buffer
	if err := fp.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != fp.N() {
		t.Fatalf("round trip lost blocks: %d vs %d", got.N(), fp.N())
	}
	for i := range fp.Blocks {
		a, b := fp.Blocks[i], got.Blocks[i]
		if a.Name != b.Name || math.Abs(a.Width-b.Width) > 1e-9 || math.Abs(a.X-b.X) > 1e-9 {
			t.Fatalf("block %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("too few fields\n")); err == nil {
		t.Fatal("short line should fail")
	}
	if _, err := Parse(strings.NewReader("blk 1 2 x 4\n")); err == nil {
		t.Fatal("non-numeric field should fail")
	}
	fp, err := Parse(strings.NewReader("# comment\n\nblk\t0.001\t0.002\t0\t0\textra ignored\n"))
	if err != nil || fp.N() != 1 {
		t.Fatalf("comment/extra-field handling: %v", err)
	}
}

func TestEV6Floorplan(t *testing.T) {
	fp := EV6()
	if fp.N() != 18 {
		t.Fatalf("EV6 has %d blocks, want 18", fp.N())
	}
	if err := fp.Validate(); err != nil {
		t.Fatalf("EV6 must tile the die: %v", err)
	}
	if math.Abs(fp.Width()-0.016) > 1e-9 || math.Abs(fp.Height()-0.016) > 1e-9 {
		t.Fatalf("EV6 die %g×%g, want 16×16 mm", fp.Width(), fp.Height())
	}
	// Paper-critical geometry: IntReg near the top edge and in the right
	// half of the die (drives the Fig. 11 flow-direction result).
	ir := fp.Blocks[fp.Index("IntReg")]
	if ir.CenterY() < fp.Height()*0.7 {
		t.Fatalf("IntReg should be near the top: centerY=%g", ir.CenterY())
	}
	if ir.CenterX() < fp.Width()*0.55 {
		t.Fatalf("IntReg should be right of center: centerX=%g", ir.CenterX())
	}
	dc := fp.Blocks[fp.Index("Dcache")]
	if dc.CenterY() > ir.CenterY() {
		t.Fatal("Dcache should be below IntReg (farther from a top leading edge)")
	}
	// All Fig. 11 block names present.
	for _, n := range []string{"L2_left", "L2", "L2_right", "Icache", "Dcache", "Bpred", "DTB",
		"FPAdd", "FPReg", "FPMul", "FPMap", "IntMap", "IntQ", "IntReg", "IntExec", "FPQ", "LdStQ", "ITB"} {
		if fp.Index(n) < 0 {
			t.Fatalf("EV6 missing block %q", n)
		}
	}
}

func TestAthlonFloorplan(t *testing.T) {
	fp := Athlon()
	if fp.N() != 22 {
		t.Fatalf("Athlon has %d blocks, want 22 (paper Fig. 5)", fp.N())
	}
	if err := fp.Validate(); err != nil {
		t.Fatalf("Athlon must tile the die: %v", err)
	}
	p := AthlonPowers()
	if len(p) != fp.N() {
		t.Fatalf("powers cover %d blocks, floorplan has %d", len(p), fp.N())
	}
	var total float64
	for name, w := range p {
		if fp.Index(name) < 0 {
			t.Fatalf("power entry %q has no block", name)
		}
		if w < 0 {
			t.Fatalf("negative power for %q", name)
		}
		total += w
	}
	if total < 20 || total > 60 {
		t.Fatalf("Athlon total power %.1f W implausible", total)
	}
	for _, b := range []string{"blank1", "blank2", "blank3", "blank4"} {
		if p[b] != 0 {
			t.Fatalf("blank block %q must dissipate no power", b)
		}
	}
}

func TestCenterSourceDie(t *testing.T) {
	fp := CenterSourceDie(0.020, 0.020, 0.002, 0.002)
	if err := fp.Validate(); err != nil {
		t.Fatalf("center-source die must tile: %v", err)
	}
	hot := fp.Blocks[fp.Index("hot")]
	if math.Abs(hot.CenterX()-0.010) > 1e-12 || math.Abs(hot.CenterY()-0.010) > 1e-12 {
		t.Fatal("hot block not centered")
	}
	if math.Abs(fp.TotalArea()-4e-4) > 1e-12 {
		t.Fatalf("area %g", fp.TotalArea())
	}
}

func TestUniformDie(t *testing.T) {
	fp := UniformDie("die", 0.02, 0.02)
	if fp.N() != 1 || fp.TotalArea() != 4e-4 {
		t.Fatal("uniform die wrong")
	}
	if err := fp.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	s := EV6().String()
	if !strings.Contains(s, "legend:") || !strings.Contains(s, "IntReg") {
		t.Fatal("ASCII rendering missing legend")
	}
}

// Property: for random grid tilings, Validate passes, the adjacency count
// matches the grid structure, and rasterization covers every cell.
func TestRandomGridTilingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nx, ny := 1+r.Intn(5), 1+r.Intn(5)
		// Random column widths and row heights.
		xs := make([]float64, nx+1)
		ys := make([]float64, ny+1)
		for i := 1; i <= nx; i++ {
			xs[i] = xs[i-1] + 0.5 + r.Float64()
		}
		for i := 1; i <= ny; i++ {
			ys[i] = ys[i-1] + 0.5 + r.Float64()
		}
		var blocks []Block
		for iy := 0; iy < ny; iy++ {
			for ix := 0; ix < nx; ix++ {
				blocks = append(blocks, Block{
					Name:  "b" + string(rune('a'+ix)) + string(rune('a'+iy)),
					Width: xs[ix+1] - xs[ix], Height: ys[iy+1] - ys[iy],
					X: xs[ix], Y: ys[iy],
				})
			}
		}
		fp, err := New(blocks)
		if err != nil {
			return false
		}
		if fp.Validate() != nil {
			return false
		}
		wantAdj := nx*(ny-1) + ny*(nx-1)
		if len(fp.Adjacencies()) != wantAdj {
			return false
		}
		for _, c := range fp.Rasterize(8, 8) {
			if c < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: BlockAt is consistent with Contains for random points in EV6.
func TestBlockAtProperty(t *testing.T) {
	fp := EV6()
	f := func(u, v uint16) bool {
		x := float64(u) / 65536 * fp.Width()
		y := float64(v) / 65536 * fp.Height()
		i := fp.BlockAt(x, y)
		if i < 0 {
			return false // full tiling: every interior point is covered
		}
		return fp.Blocks[i].Contains(x, y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
