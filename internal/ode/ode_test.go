package ode

import (
	"math"
	"testing"
	"testing/quick"
)

// expDecay is y' = -k y with analytic solution y0·exp(-k t).
func expDecay(k float64) Derivs {
	return func(t float64, y, dst []float64) {
		for i := range y {
			dst[i] = -k * y[i]
		}
	}
}

func TestRK4StepOrder(t *testing.T) {
	// One RK4 step on y'=-y from y=1 matches exp(-h) to O(h^5).
	y := []float64{1}
	h := 0.1
	RK4Step(expDecay(1), 0, y, h, nil)
	want := math.Exp(-h)
	if math.Abs(y[0]-want) > 1e-6 {
		t.Fatalf("RK4 step got %g want %g", y[0], want)
	}
	// Halving the step must reduce the local error by roughly 2^5 (the
	// method is 4th order, so local truncation error is O(h^5)).
	y2 := []float64{1}
	RK4Step(expDecay(1), 0, y2, h/2, nil)
	errFull := math.Abs(y[0] - want)
	errHalf := math.Abs(y2[0] - math.Exp(-h/2))
	if errHalf > errFull/16 {
		t.Fatalf("order check failed: err(h)=%g err(h/2)=%g", errFull, errHalf)
	}
}

func TestFixedRK4Decay(t *testing.T) {
	y := []float64{2, 4}
	if err := FixedRK4(expDecay(3), 0, y, 1.0, 0.001); err != nil {
		t.Fatal(err)
	}
	for i, y0 := range []float64{2, 4} {
		want := y0 * math.Exp(-3)
		if math.Abs(y[i]-want) > 1e-9 {
			t.Fatalf("y[%d]=%g want %g", i, y[i], want)
		}
	}
}

func TestAdaptiveRK4Decay(t *testing.T) {
	y := []float64{1}
	st, err := AdaptiveRK4(expDecay(5), 0, y, 2.0, AdaptiveOptions{AbsTol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(-10)
	if math.Abs(y[0]-want) > 1e-7 {
		t.Fatalf("adaptive got %g want %g (stats %+v)", y[0], want, st)
	}
	if st.Accepted == 0 {
		t.Fatal("no accepted steps")
	}
}

func TestAdaptiveRK4StiffnessAdapts(t *testing.T) {
	// A fast and a slow mode: controller must shrink the step initially.
	f := func(t float64, y, dst []float64) {
		dst[0] = -1000 * y[0]
		dst[1] = -0.5 * y[1]
	}
	y := []float64{1, 1}
	st, err := AdaptiveRK4(f, 0, y, 0.1, AdaptiveOptions{AbsTol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Log("note: no rejected steps (initial step already small enough)")
	}
	if math.Abs(y[0]-math.Exp(-100)) > 1e-5 {
		t.Fatalf("fast mode wrong: %g", y[0])
	}
	if math.Abs(y[1]-math.Exp(-0.05)) > 1e-5 {
		t.Fatalf("slow mode wrong: %g", y[1])
	}
}

func TestAdaptiveRK4TimeDependentForcing(t *testing.T) {
	// y' = cos(t), y(0)=0 → y = sin(t). Exercises correct t handling.
	f := func(t float64, y, dst []float64) { dst[0] = math.Cos(t) }
	y := []float64{0}
	if _, err := AdaptiveRK4(f, 0, y, math.Pi/2, AdaptiveOptions{AbsTol: 1e-10}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-1) > 1e-8 {
		t.Fatalf("sin integration got %g want 1", y[0])
	}
}

func TestAdaptiveRK4Errors(t *testing.T) {
	y := []float64{1}
	if _, err := AdaptiveRK4(expDecay(1), 0, y, -1, AdaptiveOptions{}); err == nil {
		t.Fatal("expected error for negative duration")
	}
	if err := FixedRK4(expDecay(1), 0, y, 1, 0); err == nil {
		t.Fatal("expected error for zero step")
	}
}

// Property: adaptive integration of exponential decay is accurate for random
// rates and durations.
func TestAdaptiveDecayProperty(t *testing.T) {
	f := func(kRaw, durRaw uint8) bool {
		k := 0.1 + float64(kRaw)/16       // 0.1 .. ~16
		dur := 0.05 + float64(durRaw)/256 // 0.05 .. ~1.05
		y := []float64{1}
		if _, err := AdaptiveRK4(expDecay(k), 0, y, dur, AdaptiveOptions{AbsTol: 1e-9}); err != nil {
			return false
		}
		return math.Abs(y[0]-math.Exp(-k*dur)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedVsAdaptiveAgree(t *testing.T) {
	f := func(t float64, y, dst []float64) {
		dst[0] = -2*y[0] + y[1]
		dst[1] = y[0] - 2*y[1]
	}
	ya := []float64{1, 0}
	yb := []float64{1, 0}
	if err := FixedRK4(f, 0, ya, 1, 1e-4); err != nil {
		t.Fatal(err)
	}
	if _, err := AdaptiveRK4(f, 0, yb, 1, AdaptiveOptions{AbsTol: 1e-9}); err != nil {
		t.Fatal(err)
	}
	for i := range ya {
		if math.Abs(ya[i]-yb[i]) > 1e-6 {
			t.Fatalf("fixed vs adaptive mismatch at %d: %g vs %g", i, ya[i], yb[i])
		}
	}
}

// TestAdaptiveRK4MaxStepHonored: with a loose tolerance the controller would
// grow the step without bound; MaxStep must cap it, which pins the accepted
// step count to at least duration/MaxStep.
func TestAdaptiveRK4MaxStepHonored(t *testing.T) {
	derivs := func(tm float64, y, dst []float64) {
		dst[0] = -0.01 * y[0] // slow decay: everything is accepted
	}
	const maxStep = 0.125
	y := []float64{1}
	st, err := AdaptiveRK4(derivs, 0, y, 4.0, AdaptiveOptions{AbsTol: 1e3, MaxStep: maxStep})
	if err != nil {
		t.Fatal(err)
	}
	if st.LastStep > maxStep+1e-12 {
		t.Fatalf("last step %g exceeds MaxStep %g", st.LastStep, maxStep)
	}
	if min := int(4.0 / maxStep); st.Accepted < min {
		t.Fatalf("accepted %d steps, a MaxStep of %g over 4 s needs at least %d", st.Accepted, maxStep, min)
	}
	// And a MaxStep below the default initial step must clamp the first
	// step too (the regression this test guards: MaxStep used to be fed to
	// InitialStep, which only seeded the first step and never capped growth).
	y = []float64{1}
	st, err = AdaptiveRK4(derivs, 0, y, 4.0, AdaptiveOptions{AbsTol: 1e3, MaxStep: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if st.Accepted < 80 {
		t.Fatalf("accepted %d steps, want ≥ 80 with MaxStep 0.05 over 4 s", st.Accepted)
	}
}
