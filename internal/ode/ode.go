// Package ode provides the explicit time integrators used for transient
// thermal simulation (the paper's §4.1 transient studies; kernels layer of
// DESIGN.md §1). The adaptive fourth-order Runge-Kutta integrator mirrors
// the scheme used by the original HotSpot tool: a classic RK4 step with
// step doubling for local error control.
//
// Implicit (backward-Euler) stepping for stiff linear RC systems lives in
// package rcnet, where the linear structure of the problem allows a direct
// solve instead of Newton iteration.
package ode

import (
	"fmt"
	"math"
)

// Derivs computes dy/dt at time t into dst. dst has the same length as y and
// is reused across calls; implementations must fully overwrite it.
type Derivs func(t float64, y, dst []float64)

// RK4Step advances y by one classic fourth-order Runge-Kutta step of size h.
// The scratch buffer must either be nil or provide at least 5·len(y) floats.
func RK4Step(f Derivs, t float64, y []float64, h float64, scratch []float64) {
	n := len(y)
	if scratch == nil || len(scratch) < 5*n {
		scratch = make([]float64, 5*n)
	}
	k1 := scratch[0*n : 1*n]
	k2 := scratch[1*n : 2*n]
	k3 := scratch[2*n : 3*n]
	k4 := scratch[3*n : 4*n]
	tmp := scratch[4*n : 5*n]

	f(t, y, k1)
	for i := 0; i < n; i++ {
		tmp[i] = y[i] + 0.5*h*k1[i]
	}
	f(t+0.5*h, tmp, k2)
	for i := 0; i < n; i++ {
		tmp[i] = y[i] + 0.5*h*k2[i]
	}
	f(t+0.5*h, tmp, k3)
	for i := 0; i < n; i++ {
		tmp[i] = y[i] + h*k3[i]
	}
	f(t+h, tmp, k4)
	for i := 0; i < n; i++ {
		y[i] += h / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
	}
}

// AdaptiveOptions configure AdaptiveRK4.
type AdaptiveOptions struct {
	// AbsTol is the per-step absolute error tolerance (default 1e-4).
	AbsTol float64
	// MinStep is the smallest step the controller may take (default
	// duration·1e-12). The integrator returns an error rather than
	// silently under-stepping.
	MinStep float64
	// InitialStep seeds the controller (default duration/16, clamped to
	// MaxStep when one is set).
	InitialStep float64
	// MaxStep caps the step size the controller may grow to (0 = no cap).
	MaxStep float64
	// MaxSteps bounds the total number of accepted steps (default 10^7).
	MaxSteps int
}

// Stats reports what the adaptive integrator did.
type Stats struct {
	Accepted int
	Rejected int
	LastStep float64
}

// AdaptiveRK4 integrates y' = f(t, y) from t0 to t0+duration using RK4 with
// step doubling: each step is computed once with h and once with two h/2
// substeps; the difference estimates the local error. On acceptance y is
// advanced with the more accurate fine solution (with the usual 4th-order
// local extrapolation). This is the HotSpot-style integrator used for all
// non-stiff transients in this repository.
func AdaptiveRK4(f Derivs, t0 float64, y []float64, duration float64, opt AdaptiveOptions) (Stats, error) {
	var st Stats
	if duration <= 0 {
		return st, fmt.Errorf("ode: non-positive duration %g", duration)
	}
	if opt.AbsTol == 0 {
		opt.AbsTol = 1e-4
	}
	if opt.MinStep == 0 {
		opt.MinStep = duration * 1e-12
	}
	if opt.InitialStep == 0 {
		opt.InitialStep = duration / 16
	}
	if opt.MaxStep > 0 && opt.InitialStep > opt.MaxStep {
		opt.InitialStep = opt.MaxStep
	}
	if opt.MaxSteps == 0 {
		opt.MaxSteps = 10_000_000
	}
	n := len(y)
	scratch := make([]float64, 5*n)
	coarse := make([]float64, n)
	fine := make([]float64, n)

	t := t0
	end := t0 + duration
	h := math.Min(opt.InitialStep, duration)
	for t < end-1e-15*duration {
		if h > end-t {
			h = end - t
		}
		copy(coarse, y)
		RK4Step(f, t, coarse, h, scratch)
		copy(fine, y)
		RK4Step(f, t, fine, h/2, scratch)
		RK4Step(f, t+h/2, fine, h/2, scratch)
		var errMax float64
		for i := 0; i < n; i++ {
			if e := math.Abs(fine[i] - coarse[i]); e > errMax {
				errMax = e
			}
		}
		if errMax <= opt.AbsTol {
			// Accept, with local extrapolation: err(fine) ≈ err(coarse)/16.
			for i := 0; i < n; i++ {
				y[i] = fine[i] + (fine[i]-coarse[i])/15
			}
			t += h
			st.Accepted++
			st.LastStep = h
			if st.Accepted > opt.MaxSteps {
				return st, fmt.Errorf("ode: exceeded %d steps", opt.MaxSteps)
			}
			// Grow cautiously, honoring the step-size cap.
			if errMax < opt.AbsTol/32 {
				h *= 2
			}
			if opt.MaxStep > 0 && h > opt.MaxStep {
				h = opt.MaxStep
			}
		} else {
			st.Rejected++
			h /= 2
			if h < opt.MinStep {
				return st, fmt.Errorf("ode: step size underflow at t=%g (h=%g, err=%g)", t, h, errMax)
			}
		}
	}
	return st, nil
}

// FixedRK4 integrates with a constant step size, taking ceil(duration/h)
// steps (the final step is shortened to land exactly on the end time).
func FixedRK4(f Derivs, t0 float64, y []float64, duration, h float64) error {
	if duration <= 0 || h <= 0 {
		return fmt.Errorf("ode: non-positive duration or step")
	}
	scratch := make([]float64, 5*len(y))
	t := t0
	end := t0 + duration
	for t < end-1e-15*duration {
		step := h
		if step > end-t {
			step = end - t
		}
		RK4Step(f, t, y, step, scratch)
		t += step
	}
	return nil
}
