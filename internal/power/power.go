// Package power is the repository's Wattch stand-in (the power side of the
// paper's §5 SimpleScalar/Wattch setup feeding Figs. 10 and 12): it converts
// the per-unit activity counts produced by the uarch timing model into
// per-block power traces for the EV6 floorplan. The model follows Wattch's
// conditional-clocking style: each unit burns energy-per-access × access
// rate plus an idle fraction of its peak power (imperfect clock gating),
// a clock-tree power spread over the core, and an area-proportional leakage
// term with exponential temperature dependence (the feedback the paper's §6
// future-work discussion flags; ActivityPower/LeakagePower expose the split
// the closed-loop engine needs to apply it online).
package power

import (
	"fmt"
	"math"

	"repro/internal/floorplan"
	"repro/internal/trace"
	"repro/internal/uarch"
)

// Config holds the power-model parameters.
type Config struct {
	// ClockHz is the core clock (default 3 GHz, matching the paper's
	// "10K cycles ≈ 3.3 µs" sampling note).
	ClockHz float64
	// EnergyNJ is the energy per access in nanojoules, per unit.
	EnergyNJ [uarch.NumUnits]float64
	// PeakRate is the nominal maximum accesses per cycle, per unit; it
	// defines peak power for the idle-clocking term.
	PeakRate [uarch.NumUnits]float64
	// IdleFrac is the fraction of peak dynamic power burned when a unit is
	// idle (Wattch's cc3 "aggressive conditional clocking" uses ~0.1).
	IdleFrac float64
	// ClockTreeW is the total clock-distribution power, spread over the
	// core blocks (not the L2 arrays) in proportion to area.
	ClockTreeW float64
	// LeakageW is the total chip leakage at LeakRefC, spread over all
	// blocks in proportion to area.
	LeakageW float64
	// LeakRefC is the reference temperature for LeakageW (°C).
	LeakRefC float64
	// LeakDoubleC is the temperature increase that doubles leakage (°C).
	LeakDoubleC float64
}

// DefaultWattch returns parameters tuned so the gcc workload dissipates a
// realistic EV6-class total (≈35-45 W average) with the integer cluster
// (IntReg/IntExec), LdStQ, Dcache and Bpred as the dominant power densities
// — the five blocks the paper plots in Fig. 12.
func DefaultWattch() Config {
	var e, r [uarch.NumUnits]float64
	set := func(u uarch.Unit, energyNJ, peakRate float64) {
		e[u] = energyNJ
		r[u] = peakRate
	}
	set(uarch.UIcache, 10, 0.30) // per line-fetch (≈4 fetch groups)
	set(uarch.UDcache, 6.5, 2)
	set(uarch.UL2, 22, 0.12)
	set(uarch.UBpred, 2.6, 1)
	set(uarch.UITB, 1.2, 0.30)
	set(uarch.UDTB, 0.8, 2)
	set(uarch.UIntReg, 0.32, 12)
	set(uarch.UIntExec, 1.2, 4)
	set(uarch.UIntMap, 0.5, 4)
	set(uarch.UIntQ, 0.6, 4)
	set(uarch.UFPReg, 0.5, 6)
	set(uarch.UFPAdd, 2.8, 2)
	set(uarch.UFPMul, 3.2, 1)
	set(uarch.UFPMap, 0.8, 2)
	set(uarch.UFPQ, 0.5, 2)
	set(uarch.ULdStQ, 2.4, 2)
	return Config{
		ClockHz:     3e9,
		EnergyNJ:    e,
		PeakRate:    r,
		IdleFrac:    0.06,
		ClockTreeW:  6,
		LeakageW:    6,
		LeakRefC:    85,
		LeakDoubleC: 30,
	}
}

// unitBlock maps each uarch unit to the EV6 floorplan block bearing its
// power. The L2 is special-cased: its traffic is split across the three L2
// arrays by area.
var unitBlock = map[uarch.Unit]string{
	uarch.UIcache:  "Icache",
	uarch.UDcache:  "Dcache",
	uarch.UBpred:   "Bpred",
	uarch.UITB:     "ITB",
	uarch.UDTB:     "DTB",
	uarch.UIntReg:  "IntReg",
	uarch.UIntExec: "IntExec",
	uarch.UIntMap:  "IntMap",
	uarch.UIntQ:    "IntQ",
	uarch.UFPReg:   "FPReg",
	uarch.UFPAdd:   "FPAdd",
	uarch.UFPMul:   "FPMul",
	uarch.UFPMap:   "FPMap",
	uarch.UFPQ:     "FPQ",
	uarch.ULdStQ:   "LdStQ",
}

// l2Blocks are the L2 array slices sharing the L2 unit's power.
var l2Blocks = []string{"L2", "L2_left", "L2_right"}

// Model converts activity samples to block power for a given floorplan.
type Model struct {
	cfg Config
	fp  *floorplan.Floorplan

	unitIdx   [uarch.NumUnits]int // block index per unit (-1 for L2)
	l2Idx     []int
	l2Share   []float64 // area shares of the L2 slices
	coreIdx   []int     // non-L2 block indices (clock tree targets)
	coreArea  float64
	totalArea float64
}

// New builds a power model for the floorplan (normally floorplan.EV6()).
func New(cfg Config, fp *floorplan.Floorplan) (*Model, error) {
	if cfg.ClockHz <= 0 {
		return nil, fmt.Errorf("power: non-positive clock %g", cfg.ClockHz)
	}
	if cfg.IdleFrac < 0 || cfg.IdleFrac > 1 {
		return nil, fmt.Errorf("power: idle fraction %g out of [0,1]", cfg.IdleFrac)
	}
	m := &Model{cfg: cfg, fp: fp}
	for u, name := range unitBlock {
		bi := fp.Index(name)
		if bi < 0 {
			return nil, fmt.Errorf("power: floorplan lacks block %q for unit %v", name, u)
		}
		m.unitIdx[u] = bi
	}
	m.unitIdx[uarch.UL2] = -1
	var l2Area float64
	for _, name := range l2Blocks {
		bi := fp.Index(name)
		if bi < 0 {
			return nil, fmt.Errorf("power: floorplan lacks L2 slice %q", name)
		}
		m.l2Idx = append(m.l2Idx, bi)
		l2Area += fp.Blocks[bi].Area()
	}
	for _, bi := range m.l2Idx {
		m.l2Share = append(m.l2Share, fp.Blocks[bi].Area()/l2Area)
	}
	isL2 := map[int]bool{}
	for _, bi := range m.l2Idx {
		isL2[bi] = true
	}
	for bi, b := range fp.Blocks {
		m.totalArea += b.Area()
		if !isL2[bi] {
			m.coreIdx = append(m.coreIdx, bi)
			m.coreArea += b.Area()
		}
	}
	return m, nil
}

// Floorplan returns the model's floorplan.
func (m *Model) Floorplan() *floorplan.Floorplan { return m.fp }

// Config returns the model configuration.
func (m *Model) Config() Config { return m.cfg }

// BlockPower converts one activity sample into per-block power in floorplan
// order (W). Leakage is evaluated at the reference temperature; use
// LeakageScale for temperature feedback.
func (m *Model) BlockPower(s uarch.ActivitySample) []float64 {
	out := make([]float64, m.fp.N())
	if s.Cycles == 0 {
		return out
	}
	dt := float64(s.Cycles) / m.cfg.ClockHz
	for u := uarch.Unit(0); u < uarch.NumUnits; u++ {
		eJ := m.cfg.EnergyNJ[u] * 1e-9
		dyn := eJ * float64(s.Counts[u]) / dt
		idle := m.cfg.IdleFrac * eJ * m.cfg.PeakRate[u] * m.cfg.ClockHz
		p := dyn + idle
		if bi := m.unitIdx[u]; bi >= 0 {
			out[bi] += p
		} else {
			for k, l2bi := range m.l2Idx {
				out[l2bi] += p * m.l2Share[k]
			}
		}
	}
	// Clock tree over core blocks, leakage over everything, by area.
	for _, bi := range m.coreIdx {
		out[bi] += m.cfg.ClockTreeW * m.fp.Blocks[bi].Area() / m.coreArea
	}
	for bi, b := range m.fp.Blocks {
		out[bi] += m.cfg.LeakageW * b.Area() / m.totalArea
	}
	return out
}

// ActivityPower splits one activity sample's power into its dynamic and
// static components over an explicit wall-clock interval (s), per block in
// floorplan order:
//
//   - dyn is the activity-proportional power (energy-per-access × counts /
//     wallDT). Passing the wall-clock interval rather than deriving it from
//     the sample's cycle count matters for closed-loop co-simulation: a
//     throttled CPU executes fewer cycles in the same wall-clock step, and
//     its dynamic energy must be spread over the step, not the cycles.
//   - static is the always-on portion at nominal voltage and frequency: the
//     idle (imperfect clock gating) term plus the clock tree.
//
// Leakage is excluded from both — closed-loop callers add the
// temperature-dependent LeakagePower of the current state instead of the
// flat reference term BlockPower folds in. BlockPower(s) equals
// dyn + static + LeakagePower(T_ref) when wallDT matches the sample's own
// interval.
func (m *Model) ActivityPower(s uarch.ActivitySample, wallDT float64) (dyn, static []float64, err error) {
	if !(wallDT > 0) {
		return nil, nil, fmt.Errorf("power: non-positive interval %g", wallDT)
	}
	dyn = make([]float64, m.fp.N())
	static = make([]float64, m.fp.N())
	deposit := func(dst []float64, u uarch.Unit, p float64) {
		if bi := m.unitIdx[u]; bi >= 0 {
			dst[bi] += p
		} else {
			for k, l2bi := range m.l2Idx {
				dst[l2bi] += p * m.l2Share[k]
			}
		}
	}
	for u := uarch.Unit(0); u < uarch.NumUnits; u++ {
		eJ := m.cfg.EnergyNJ[u] * 1e-9
		deposit(dyn, u, eJ*float64(s.Counts[u])/wallDT)
		deposit(static, u, m.cfg.IdleFrac*eJ*m.cfg.PeakRate[u]*m.cfg.ClockHz)
	}
	for _, bi := range m.coreIdx {
		static[bi] += m.cfg.ClockTreeW * m.fp.Blocks[bi].Area() / m.coreArea
	}
	return dyn, static, nil
}

// Trace converts a run of activity samples into a power trace. All samples
// must share one interval length (as produced by CPU.Run); trailing partial
// samples are dropped.
func (m *Model) Trace(samples []uarch.ActivitySample) (*trace.PowerTrace, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("power: no samples")
	}
	cycles := samples[0].Cycles
	interval := float64(cycles) / m.cfg.ClockHz
	tr, err := trace.New(m.fp.Names(), interval)
	if err != nil {
		return nil, err
	}
	for _, s := range samples {
		if s.Cycles != cycles {
			continue // partial tail interval
		}
		if err := tr.Append(m.BlockPower(s)); err != nil {
			return nil, err
		}
	}
	if len(tr.Rows) == 0 {
		return nil, fmt.Errorf("power: all samples were partial")
	}
	return tr, nil
}

// LeakageScale returns the multiplicative leakage factor at the given block
// temperature: 2^((T − T_ref)/T_double). The paper's future-work section
// notes this feedback complicates deriving AIR-SINK behaviour from
// OIL-SILICON measurements; the DTM co-simulation applies it per block.
func (m *Model) LeakageScale(tempC float64) float64 {
	return math.Pow(2, (tempC-m.cfg.LeakRefC)/m.cfg.LeakDoubleC)
}

// LeakagePower returns the per-block leakage (W) at the given per-block
// temperatures (°C, floorplan order).
func (m *Model) LeakagePower(blockTempC []float64) ([]float64, error) {
	if len(blockTempC) != m.fp.N() {
		return nil, fmt.Errorf("power: got %d temperatures, floorplan has %d", len(blockTempC), m.fp.N())
	}
	out := make([]float64, m.fp.N())
	for bi, b := range m.fp.Blocks {
		base := m.cfg.LeakageW * b.Area() / m.totalArea
		out[bi] = base * m.LeakageScale(blockTempC[bi])
	}
	return out, nil
}
