package power

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/uarch"
)

func gccTrace(t *testing.T, cycles, interval uint64) (*Model, []uarch.ActivitySample) {
	t.Helper()
	s, err := uarch.NewStream(uarch.GCC(), 17)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := uarch.NewCPU(uarch.DefaultCPU(), s)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up caches/predictor before measuring power.
	if _, err := cpu.Run(3_000_000, 3_000_000); err != nil {
		t.Fatal(err)
	}
	samples, err := cpu.Run(cycles, interval)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(DefaultWattch(), floorplan.EV6())
	if err != nil {
		t.Fatal(err)
	}
	return m, samples
}

func TestGCCTotalPowerPlausible(t *testing.T) {
	m, samples := gccTrace(t, 5_000_000, 10_000)
	tr, err := m.Trace(samples)
	if err != nil {
		t.Fatal(err)
	}
	total := tr.TotalAverage()
	if total < 25 || total > 60 {
		t.Fatalf("gcc average chip power %.1f W, want EV6-class 25-60 W", total)
	}
}

func TestIntegerClusterDominatesDensity(t *testing.T) {
	// The paper's Fig. 12 plots Dcache, Bpred, IntReg, IntExec and LdStQ as
	// the hottest blocks for gcc: their power densities must top the chip.
	m, samples := gccTrace(t, 5_000_000, 10_000)
	tr, err := m.Trace(samples)
	if err != nil {
		t.Fatal(err)
	}
	fp := m.Floorplan()
	avg := tr.Average()
	density := func(name string) float64 {
		bi := fp.Index(name)
		return avg[bi] / (fp.Blocks[bi].Area() * 1e6) // W/mm²
	}
	hot := []string{"IntReg", "IntExec", "LdStQ", "Bpred", "Dcache"}
	for _, h := range hot {
		if density(h) <= density("L2") {
			t.Fatalf("%s density %.3f W/mm² should exceed L2 %.3f", h, density(h), density("L2"))
		}
	}
	if density("IntReg") < density("FPMul") {
		t.Fatalf("gcc IntReg density %.3f should exceed idle FPMul %.3f", density("IntReg"), density("FPMul"))
	}
	// IntReg should be among the very top densities (it is the paper's
	// canonical hot spot).
	top, val := "", 0.0
	for _, b := range fp.Blocks {
		if d := density(b.Name); d > val {
			top, val = b.Name, d
		}
	}
	if top != "IntReg" && top != "IntExec" && top != "Bpred" {
		t.Fatalf("top density block is %q (%.3f W/mm²), expected the integer cluster", top, val)
	}
}

func TestTraceIntervalMatchesClock(t *testing.T) {
	m, samples := gccTrace(t, 200_000, 10_000)
	tr, err := m.Trace(samples)
	if err != nil {
		t.Fatal(err)
	}
	want := 10_000.0 / 3e9
	if math.Abs(tr.Interval-want) > 1e-15 {
		t.Fatalf("interval %g, want %g (≈3.3 µs per the paper)", tr.Interval, want)
	}
	if math.Abs(tr.Interval-3.33e-6) > 0.1e-6 {
		t.Fatalf("interval %g not ≈3.3 µs", tr.Interval)
	}
}

func TestARTShiftsPowerToFP(t *testing.T) {
	s, _ := uarch.NewStream(uarch.ART(), 21)
	cpu, _ := uarch.NewCPU(uarch.DefaultCPU(), s)
	cpu.Run(2_000_000, 2_000_000)
	samples, err := cpu.Run(2_000_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(DefaultWattch(), floorplan.EV6())
	tr, _ := m.Trace(samples)
	fp := m.Floorplan()
	avg := tr.Average()
	fpadd := avg[fp.Index("FPAdd")]
	// Compare against gcc.
	mg, gccSamples := gccTrace(t, 2_000_000, 10_000)
	trg, _ := mg.Trace(gccSamples)
	gccFPAdd := trg.Average()[fp.Index("FPAdd")]
	if fpadd <= gccFPAdd*1.5 {
		t.Fatalf("art FPAdd power %.2f W should clearly exceed gcc's %.2f W", fpadd, gccFPAdd)
	}
}

func TestBlockPowerZeroSample(t *testing.T) {
	m, _ := New(DefaultWattch(), floorplan.EV6())
	p := m.BlockPower(uarch.ActivitySample{})
	for _, v := range p {
		if v != 0 {
			t.Fatal("zero-cycle sample must produce zero power")
		}
	}
}

func TestIdleFloorPresent(t *testing.T) {
	// A sample with zero activity but nonzero cycles still burns idle,
	// clock-tree and leakage power.
	m, _ := New(DefaultWattch(), floorplan.EV6())
	p := m.BlockPower(uarch.ActivitySample{Cycles: 10_000})
	var total float64
	for _, v := range p {
		if v <= 0 {
			t.Fatal("every block should burn some idle power")
		}
		total += v
	}
	if total < 5 || total > 40 {
		t.Fatalf("idle chip power %.1f W implausible", total)
	}
}

func TestLeakageScaling(t *testing.T) {
	m, _ := New(DefaultWattch(), floorplan.EV6())
	if s := m.LeakageScale(m.cfg.LeakRefC); math.Abs(s-1) > 1e-12 {
		t.Fatalf("leakage at reference should be 1, got %g", s)
	}
	if s := m.LeakageScale(m.cfg.LeakRefC + m.cfg.LeakDoubleC); math.Abs(s-2) > 1e-12 {
		t.Fatalf("leakage should double after LeakDoubleC, got %g", s)
	}
	temps := make([]float64, m.fp.N())
	for i := range temps {
		temps[i] = m.cfg.LeakRefC
	}
	leak, err := m.LeakagePower(temps)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range leak {
		total += v
	}
	if math.Abs(total-m.cfg.LeakageW) > 1e-9 {
		t.Fatalf("reference leakage sums to %g, want %g", total, m.cfg.LeakageW)
	}
	if _, err := m.LeakagePower(temps[:3]); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultWattch()
	cfg.ClockHz = 0
	if _, err := New(cfg, floorplan.EV6()); err == nil {
		t.Fatal("zero clock should fail")
	}
	cfg = DefaultWattch()
	cfg.IdleFrac = 2
	if _, err := New(cfg, floorplan.EV6()); err == nil {
		t.Fatal("bad idle fraction should fail")
	}
	// Floorplan missing required blocks.
	fp := floorplan.UniformDie("die", 0.01, 0.01)
	if _, err := New(DefaultWattch(), fp); err == nil {
		t.Fatal("floorplan without EV6 blocks should fail")
	}
}

func TestTraceErrors(t *testing.T) {
	m, _ := New(DefaultWattch(), floorplan.EV6())
	if _, err := m.Trace(nil); err == nil {
		t.Fatal("empty samples should fail")
	}
}

// TestActivityPowerReassemblesBlockPower: dyn + static + reference leakage
// must reproduce BlockPower exactly when the wall interval matches the
// sample's own cycle time.
func TestActivityPowerReassemblesBlockPower(t *testing.T) {
	m, samples := gccTrace(t, 200_000, 10_000)
	s := samples[0]
	wallDT := float64(s.Cycles) / m.Config().ClockHz
	dyn, static, err := m.ActivityPower(s, wallDT)
	if err != nil {
		t.Fatal(err)
	}
	refC := make([]float64, m.Floorplan().N())
	for i := range refC {
		refC[i] = m.Config().LeakRefC
	}
	leak, err := m.LeakagePower(refC)
	if err != nil {
		t.Fatal(err)
	}
	want := m.BlockPower(s)
	for bi := range want {
		got := dyn[bi] + static[bi] + leak[bi]
		if d := math.Abs(got - want[bi]); d > 1e-12*math.Max(1, want[bi]) {
			t.Fatalf("block %d: dyn+static+leak = %g, BlockPower = %g (Δ %g)", bi, got, want[bi], d)
		}
	}
	// Stretching the wall interval dilutes only the dynamic part.
	dyn2, static2, err := m.ActivityPower(s, 2*wallDT)
	if err != nil {
		t.Fatal(err)
	}
	for bi := range dyn {
		if math.Abs(dyn2[bi]-dyn[bi]/2) > 1e-12*math.Max(1, dyn[bi]) {
			t.Fatalf("block %d: doubling wallDT should halve dynamic power", bi)
		}
		if static2[bi] != static[bi] {
			t.Fatalf("block %d: static power must not depend on wallDT", bi)
		}
	}
	if _, _, err := m.ActivityPower(s, 0); err == nil {
		t.Fatal("zero interval should fail")
	}
}
