package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/trace"
	"repro/internal/tstore"
)

// Telemetry read path: GET /v1/query (buffered), /v1/query/stream (NDJSON)
// and /v1/query/series (listing) serve ranges out of the tstore the server
// was configured with. The endpoints share the solve-slot admission control
// with the compute endpoints — a query decoding many segments holds a slot
// like a solve does — and answer 503 when no store is attached.

// queryParams is the parsed parameter set shared by /v1/query and
// /v1/query/stream.
type queryParams struct {
	series     string
	from, to   int64
	downsample int64
	limit      int
	timeoutMS  int
}

// queryTimeSpan is the default half-open range when from/to are omitted:
// wide enough for any simulation timeline, small enough that to-from and
// bucket alignment cannot overflow.
const queryTimeSpan = int64(1) << 62

// parseQueryParams decodes the shared query-string parameters. Times arrive
// either as integer nanoseconds (from_ns, to_ns, downsample_ns) or float
// seconds (from_s, to_s, downsample_s), mirroring tstore's Nanos mapping;
// the _ns form wins when both appear.
func parseQueryParams(r *http.Request) (queryParams, error) {
	q := r.URL.Query()
	p := queryParams{series: q.Get("series"), from: -queryTimeSpan, to: queryTimeSpan}
	if p.series == "" {
		return p, fmt.Errorf("missing series parameter")
	}
	parseT := func(nsKey, sKey string, dst *int64) error {
		if v := q.Get(sKey); v != "" {
			sec, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("%s: %v", sKey, err)
			}
			*dst = tstore.Nanos(sec)
		}
		if v := q.Get(nsKey); v != "" {
			ns, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return fmt.Errorf("%s: %v", nsKey, err)
			}
			*dst = ns
		}
		return nil
	}
	if err := parseT("from_ns", "from_s", &p.from); err != nil {
		return p, err
	}
	if err := parseT("to_ns", "to_s", &p.to); err != nil {
		return p, err
	}
	if err := parseT("downsample_ns", "downsample_s", &p.downsample); err != nil {
		return p, err
	}
	var err error
	if v := q.Get("limit"); v != "" {
		if p.limit, err = strconv.Atoi(v); err != nil {
			return p, fmt.Errorf("limit: %v", err)
		}
		if p.limit < 0 {
			return p, fmt.Errorf("limit: must be >= 0")
		}
	}
	if v := q.Get("timeout_ms"); v != "" {
		if p.timeoutMS, err = strconv.Atoi(v); err != nil {
			return p, fmt.Errorf("timeout_ms: %v", err)
		}
	}
	return p, nil
}

// queryStore runs the admission-controlled store query shared by the
// buffered and streaming endpoints. On error it has already written the
// response.
func (s *Server) queryStore(w http.ResponseWriter, r *http.Request) (tstore.Result, queryParams, bool) {
	if s.cfg.Store == nil {
		s.failRetryAfter(w, http.StatusServiceUnavailable, 0, fmt.Errorf("no telemetry store configured (start the server with one to enable /v1/query)"))
		return tstore.Result{}, queryParams{}, false
	}
	p, err := parseQueryParams(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return tstore.Result{}, p, false
	}
	ctx, cancel := s.deadline(r, p.timeoutMS)
	defer cancel()
	dec, ok := s.admit(w, r, ctx)
	if !ok {
		return tstore.Result{}, p, false
	}
	defer dec.Release()
	if ctx.Err() != nil {
		s.metrics.deadlineExceeded.Add(1)
		s.fail(w, http.StatusGatewayTimeout, ctx.Err())
		return tstore.Result{}, p, false
	}
	res, err := s.cfg.Store.Query(p.series, p.from, p.to, p.downsample)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, tstore.ErrUnknownSeries) {
			code = http.StatusNotFound
		}
		if errors.Is(err, tstore.ErrCorrupt) {
			code = http.StatusInternalServerError
		}
		s.fail(w, code, err)
		return res, p, false
	}
	return res, p, true
}

// QueryResponse is the buffered /v1/query reply. Raw queries fill Rows;
// downsampled ones fill Buckets (with the rollup/raw split reported so
// clients can see which path served them).
type QueryResponse struct {
	Series        string                  `json:"series"`
	FromNs        int64                   `json:"from_ns"`
	ToNs          int64                   `json:"to_ns"`
	DownsampleNs  int64                   `json:"downsample_ns,omitempty"`
	Rows          []trace.TelemetryRow    `json:"rows,omitempty"`
	Buckets       []trace.TelemetryBucket `json:"buckets,omitempty"`
	RollupBuckets int                     `json:"rollup_buckets,omitempty"`
	RawBuckets    int                     `json:"raw_buckets,omitempty"`
	// Truncated reports that limit cut the result short.
	Truncated bool `json:"truncated,omitempty"`
}

func telemetryRows(rows []tstore.Row) []trace.TelemetryRow {
	out := make([]trace.TelemetryRow, len(rows))
	for i, r := range rows {
		out[i] = trace.TelemetryRow{TNs: r.T, V: r.V}
	}
	return out
}

func telemetryBucket(b tstore.Bucket) trace.TelemetryBucket {
	return trace.TelemetryBucket{
		StartNs: b.Start, Count: b.Count,
		Min: b.Min, Max: b.Max, Mean: b.Mean(), Sum: b.Sum,
	}
}

// handleQuery answers a time-range query in one buffered JSON object.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("query")
	res, p, ok := s.queryStore(w, r)
	if !ok {
		return
	}
	resp := QueryResponse{
		Series: res.Series, FromNs: res.From, ToNs: res.To, DownsampleNs: res.Downsample,
		RollupBuckets: res.RollupBuckets, RawBuckets: res.RawBuckets,
	}
	rows, buckets := res.Rows, res.Buckets
	if p.limit > 0 {
		if len(rows) > p.limit {
			rows, resp.Truncated = rows[:p.limit], true
		}
		if len(buckets) > p.limit {
			buckets, resp.Truncated = buckets[:p.limit], true
		}
	}
	if res.Downsample > 0 {
		resp.Buckets = make([]trace.TelemetryBucket, len(buckets))
		for i, b := range buckets {
			resp.Buckets[i] = telemetryBucket(b)
		}
	} else {
		resp.Rows = telemetryRows(rows)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleQueryStream answers the same query as NDJSON: a
// trace.TelemetryHeader line, one line per row or bucket, then a
// trace.TelemetryTrailer whose presence marks a complete (untruncated)
// stream. The wire format is the one trace.ReadTelemetry decodes.
func (s *Server) handleQueryStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("query_stream")
	res, p, ok := s.queryStore(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(v any) {
		_ = enc.Encode(v) // Encode appends the newline NDJSON needs
	}
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(trace.TelemetryHeader{
		Series: res.Series, FromNs: res.From, ToNs: res.To, DownsampleNs: res.Downsample,
	})
	flush()
	n := int64(0)
	if res.Downsample > 0 {
		for _, b := range res.Buckets {
			if p.limit > 0 && n >= int64(p.limit) {
				break
			}
			emit(telemetryBucket(b))
			n++
		}
	} else {
		for _, row := range res.Rows {
			if p.limit > 0 && n >= int64(p.limit) {
				break
			}
			emit(trace.TelemetryRow{TNs: row.T, V: row.V})
			n++
		}
	}
	emit(trace.TelemetryTrailer{Done: true, Rows: n})
	flush()
}

// SeriesListResponse is the /v1/query/series reply.
type SeriesListResponse struct {
	Series []tstore.SeriesInfo `json:"series"`
	Store  tstore.Stats        `json:"store"`
}

// handleQuerySeries lists the stored series (optionally filtered by a
// prefix parameter) plus the store's aggregate stats.
func (s *Server) handleQuerySeries(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("query_series")
	if s.cfg.Store == nil {
		s.failRetryAfter(w, http.StatusServiceUnavailable, 0, fmt.Errorf("no telemetry store configured (start the server with one to enable /v1/query)"))
		return
	}
	prefix := r.URL.Query().Get("prefix")
	all := s.cfg.Store.Series()
	resp := SeriesListResponse{Series: all[:0:0], Store: s.cfg.Store.Stats()}
	for _, si := range all {
		if prefix == "" || len(si.Name) >= len(prefix) && si.Name[:len(prefix)] == prefix {
			resp.Series = append(resp.Series, si)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// persistWriter validates a persist run name against the configured store
// and returns a sink writing under it. An empty run name means "don't
// persist" (nil writer, no error); persisting without a store is a client
// error.
func (s *Server) persistWriter(run string) (*tstore.Writer, error) {
	if run == "" {
		return nil, nil
	}
	if s.cfg.Store == nil {
		return nil, fmt.Errorf("persist %q: no telemetry store configured", run)
	}
	if err := tstore.ValidRunName(run); err != nil {
		return nil, err
	}
	return tstore.NewWriter(s.cfg.Store, run), nil
}
