package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/admission"
	"repro/internal/hotspot"
	"repro/internal/scenario"
)

// ScenarioRequest wraps a declarative closed-loop scenario spec
// (scenario.Spec, decoded with the same strictness as the rest of the spec
// layer) with the service-level knobs shared by the other endpoints.
type ScenarioRequest struct {
	// Spec is the scenario spec object; see internal/scenario and
	// docs/api.md for the schema.
	Spec json.RawMessage `json:"spec"`
	// Workers bounds grid parallelism (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Persist, when set, streams every grid cell's sensed telemetry into the
	// server's tstore under this run name (series
	// "<persist>/cell<i>/<block>"), queryable via GET /v1/query. Requires
	// the server to be configured with a store.
	Persist   string `json:"persist,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
	// Serving hints the serving shape for every model in the grid, with the
	// same semantics as ModelSpec.Serving: "per-user" always compiles the
	// reduced-order backend, "auto" does so only under queue pressure (the
	// response then carries degraded:true), "" or "batch" keeps the full
	// backend.
	Serving string `json:"serving,omitempty"`
}

// ScenarioPolicyJSON names one grid cell's DTM policy.
type ScenarioPolicyJSON struct {
	TriggerC   float64 `json:"trigger_c"`
	EngageS    float64 `json:"engage_s"`
	SampleS    float64 `json:"sample_s"`
	PerfFactor float64 `json:"perf_factor"`
	Actuator   string  `json:"actuator"`
}

// ScenarioCellJSON is one finished grid cell. In the streaming endpoint it
// is one NDJSON row.
type ScenarioCellJSON struct {
	Cell    int                `json:"cell"`
	Package string             `json:"package"`
	Policy  ScenarioPolicyJSON `json:"policy"`
	Metrics *scenario.Metrics  `json:"metrics,omitempty"`
	Error   string             `json:"error,omitempty"`
}

// ScenarioHeaderJSON is the first NDJSON row of a streamed scenario: the
// grid shape, sent before any cell finishes.
type ScenarioHeaderJSON struct {
	Name      string  `json:"name,omitempty"`
	Cells     int     `json:"cells"`
	Steps     int     `json:"steps"`
	IntervalS float64 `json:"interval_s"`
	Cache     string  `json:"cache"`
	// Solver maps each package label to the linear-solver backend its model
	// compiled onto ("dense", "cholesky", "sparse").
	Solver map[string]string `json:"solver,omitempty"`
	// Degraded reports that queue pressure dropped the grid's models onto
	// the reduced-order backend (serving "auto" only).
	Degraded bool `json:"degraded,omitempty"`
}

// ScenarioResponse is the buffered /v1/scenario reply.
type ScenarioResponse struct {
	Name      string             `json:"name,omitempty"`
	Cells     []ScenarioCellJSON `json:"cells"`
	Steps     int                `json:"steps"`
	IntervalS float64            `json:"interval_s"`
	Cache     string             `json:"cache"` // "hit" iff every package model came from cache
	SolveMS   float64            `json:"solve_ms"`
	// Solver maps each package label to the linear-solver backend its model
	// compiled onto ("dense", "cholesky", "sparse").
	Solver map[string]string `json:"solver,omitempty"`
	// Persist echoes the request's run name when telemetry was written to
	// the store; PersistedRows counts the rows written. PersistPending
	// reports degraded persistence: the flush failed, the rows are buffered
	// in memory, and a background retrier keeps flushing them with backoff.
	Persist        string `json:"persist,omitempty"`
	PersistedRows  int64  `json:"persisted_rows,omitempty"`
	PersistPending bool   `json:"persist_pending,omitempty"`
	// Degraded reports that queue pressure dropped the grid's models onto
	// the reduced-order backend (serving "auto" only).
	Degraded bool `json:"degraded,omitempty"`
}

// ScenarioTrailerJSON is the last NDJSON row of a streamed scenario.
type ScenarioTrailerJSON struct {
	Done    bool    `json:"done"`
	SolveMS float64 `json:"solve_ms"`
	// Persist/PersistedRows/PersistPending mirror ScenarioResponse when the
	// request asked for telemetry persistence.
	Persist        string `json:"persist,omitempty"`
	PersistedRows  int64  `json:"persisted_rows,omitempty"`
	PersistPending bool   `json:"persist_pending,omitempty"`
}

func cellJSON(r scenario.CellResult) ScenarioCellJSON {
	out := ScenarioCellJSON{
		Cell:    r.Cell.Index,
		Package: r.Cell.Package,
		Policy: ScenarioPolicyJSON{
			TriggerC:   r.Cell.Policy.TriggerC,
			EngageS:    r.Cell.Policy.EngageDuration,
			SampleS:    r.Cell.Policy.SampleInterval,
			PerfFactor: r.Cell.Policy.PerfFactor,
			Actuator:   r.Cell.Policy.Actuator.String(),
		},
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	} else {
		m := r.Metrics
		out.Metrics = &m
	}
	return out
}

// scenarioReduced resolves the request's serving mode against the admission
// decision: "per-user" always compiles reduced-order models (not a
// degradation — the client asked for them), "auto" does so only when queue
// pressure has crossed the degrade threshold, in which case the solve counts
// as degraded.
func (s *Server) scenarioReduced(serving string, dec *admission.Decision) (reduced, degraded bool) {
	switch serving {
	case "per-user":
		return true, false
	case "auto":
		if dec.Pressure >= s.cfg.DegradeThreshold {
			s.metrics.degradedSolves.Add(1)
			s.admission.RecordDegraded(dec.Tenant)
			return true, true
		}
	}
	return false, false
}

// compileScenario decodes and compiles a scenario request, resolving its
// package models through the single-flight compiled-model cache (the same
// fingerprint keying every other endpoint uses). ctx bounds the compile
// itself (nominal prepass, model builds, initial steady solves) so a
// deadline cannot pin the serving slot. reduced forces every package model
// onto the reduced-order backend (fingerprints diverge, so reduced and full
// compiles never share a cache entry). The returned cache state is "hit"
// iff no package needed a compile.
func (s *Server) compileScenario(ctx context.Context, req ScenarioRequest, reduced bool) (*scenario.Compiled, string, error) {
	if len(req.Spec) == 0 {
		return nil, "", fmt.Errorf("missing spec")
	}
	spec, err := scenario.ParseSpec(bytes.NewReader(req.Spec))
	if err != nil {
		return nil, "", err
	}
	misses := 0
	compiled, err := scenario.Compile(spec, scenario.Options{
		Ctx: ctx,
		Models: func(cfg hotspot.Config) (*hotspot.Model, error) {
			if reduced {
				cfg.Reduced.Enabled = true
			}
			cm, hit, err := s.cache.Get(cfg.Fingerprint(), func() (*hotspot.Model, error) {
				return hotspot.New(cfg)
			})
			if err != nil {
				return nil, err
			}
			if !hit {
				misses++
			}
			return cm.Model, nil
		},
	})
	state := "hit"
	if misses > 0 {
		state = "miss"
	}
	return compiled, state, err
}

func decodeScenarioRequest(r *http.Request) (ScenarioRequest, error) {
	var req ScenarioRequest
	if err := decodeJSON(r, &req); err != nil {
		return req, fmt.Errorf("decode request: %w", err)
	}
	switch req.Serving {
	case "", "batch", "per-user", "auto":
	default:
		return req, fmt.Errorf("unknown serving mode %q (have per-user, batch, auto)", req.Serving)
	}
	return req, nil
}

// handleScenario runs a closed-loop DTM scenario grid and replies with every
// cell in one buffered JSON object (cells in deterministic grid order).
func (s *Server) handleScenario(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("scenario")
	req, err := decodeScenarioRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	tw, err := s.persistWriter(req.Persist)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.deadline(r, req.TimeoutMS)
	defer cancel()
	dec, ok := s.admit(w, r, ctx)
	if !ok {
		return
	}
	defer dec.Release()

	start := time.Now()
	reduced, degraded := s.scenarioReduced(req.Serving, dec)
	compiled, cacheState, err := s.compileScenario(ctx, req, reduced)
	if err != nil {
		if ctx.Err() != nil {
			s.metrics.deadlineExceeded.Add(1)
			s.fail(w, http.StatusGatewayTimeout, err)
			return
		}
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	var results []scenario.CellResult
	if tw != nil {
		results = compiled.RunGridTelemetry(ctx, req.Workers, nil, tw)
	} else {
		results = compiled.RunGrid(ctx, req.Workers, nil)
	}
	solveMS := float64(time.Since(start)) / float64(time.Millisecond)
	s.metrics.solveLatency.add(solveMS)
	if ctx.Err() != nil {
		s.metrics.deadlineExceeded.Add(1)
		s.fail(w, http.StatusGatewayTimeout, fmt.Errorf("deadline exceeded mid-grid: %w", ctx.Err()))
		return
	}
	resp := ScenarioResponse{
		Name:      compiled.Name(),
		Steps:     compiled.Steps(),
		IntervalS: compiled.Interval(),
		Cache:     cacheState,
		SolveMS:   solveMS,
		Solver:    compiled.SolverBackends(),
		Degraded:  degraded,
	}
	if tw != nil {
		// Flush so the rows are in durable segments before the response
		// reports them persisted. A flush failure degrades persistence
		// (DESIGN.md §12) instead of failing the solve: the rows stay staged
		// in memory, the background retrier keeps flushing with backoff, and
		// the response says persist_pending rather than claiming durability.
		if err := tw.Flush(); err != nil {
			s.kickRetrier()
			s.metrics.persistDeferred.Add(1)
			resp.Persist, resp.PersistPending = req.Persist, true
		} else {
			resp.Persist, resp.PersistedRows = req.Persist, tw.Rows()
		}
	}
	for _, cr := range results {
		resp.Cells = append(resp.Cells, cellJSON(cr))
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleScenarioStream runs the same grid but streams NDJSON: one header
// row, then one row per cell as it finishes (completion order — the "cell"
// index identifies the grid position), then a trailer. The connection
// returns 200 before any cell completes; a deadline hit mid-grid surfaces as
// error rows on the remaining cells rather than a 504 status.
func (s *Server) handleScenarioStream(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("scenario_stream")
	req, err := decodeScenarioRequest(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	tw, err := s.persistWriter(req.Persist)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.deadline(r, req.TimeoutMS)
	defer cancel()
	dec, ok := s.admit(w, r, ctx)
	if !ok {
		return
	}
	defer dec.Release()

	start := time.Now()
	reduced, degraded := s.scenarioReduced(req.Serving, dec)
	compiled, cacheState, err := s.compileScenario(ctx, req, reduced)
	if err != nil {
		if ctx.Err() != nil {
			s.metrics.deadlineExceeded.Add(1)
			s.fail(w, http.StatusGatewayTimeout, err)
			return
		}
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(v any) {
		_ = enc.Encode(v) // Encode appends the newline NDJSON needs
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit(ScenarioHeaderJSON{
		Name:      compiled.Name(),
		Cells:     len(compiled.Cells()),
		Steps:     compiled.Steps(),
		IntervalS: compiled.Interval(),
		Cache:     cacheState,
		Solver:    compiled.SolverBackends(),
		Degraded:  degraded,
	})
	timedOut := false
	onCell := func(cr scenario.CellResult) {
		if cr.Err != nil && ctx.Err() != nil {
			timedOut = true
		}
		emit(cellJSON(cr))
	}
	if tw != nil {
		compiled.RunGridTelemetry(ctx, req.Workers, onCell, tw)
	} else {
		compiled.RunGrid(ctx, req.Workers, onCell)
	}
	solveMS := float64(time.Since(start)) / float64(time.Millisecond)
	s.metrics.solveLatency.add(solveMS)
	if timedOut {
		s.metrics.deadlineExceeded.Add(1)
	}
	trailer := ScenarioTrailerJSON{Done: true, SolveMS: solveMS}
	if tw != nil {
		// The stream already committed to 200, so a flush failure surfaces in
		// the trailer as degraded persistence: the rows stay staged, the
		// background retrier keeps flushing, and persist_pending says so.
		if err := tw.Flush(); err != nil {
			s.kickRetrier()
			s.metrics.persistDeferred.Add(1)
			trailer.Persist, trailer.PersistPending = req.Persist, true
		} else {
			trailer.Persist, trailer.PersistedRows = req.Persist, tw.Rows()
		}
	}
	emit(trailer)
}
