package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/hotspot"
	"repro/internal/ircam"
	"repro/internal/pool"
	"repro/internal/trace"
	"repro/internal/tstore"
)

// Config tunes the server.
type Config struct {
	// CacheCap is the compiled-model cache capacity (default 32 models).
	CacheCap int
	// MaxConcurrent bounds simultaneously-running solves (default 4; the
	// worker pools inside a sweep count as one slot).
	MaxConcurrent int
	// QueueDepth bounds requests waiting for a solve slot; beyond it the
	// server sheds load with 429 (default 64).
	QueueDepth int
	// DefaultTimeout is the per-request deadline when the request carries
	// none (default 30 s).
	DefaultTimeout time.Duration
	// DefaultQuota is the admission quota for tenants without an entry in
	// Tenants. The zero quota means unmetered: no rate limit, weight 1,
	// bounded only by the global slots and queue.
	DefaultQuota admission.Quota
	// Tenants maps tenant name (the X-Tenant request header) to its
	// admission quota.
	Tenants map[string]admission.Quota
	// DegradeThreshold is the queue-pressure fraction (queued/QueueDepth,
	// in (0, 1]) beyond which degrade-eligible solves (serving "auto")
	// drop onto the reduced-order backend. 0 defaults to 0.5; a value > 1
	// disables degradation.
	DegradeThreshold float64
	// DrainTimeout bounds graceful shutdown: after Serve's context is
	// cancelled, in-flight solves get this long to finish while new
	// requests shed with 503 (default 5 s).
	DrainTimeout time.Duration
	// Store, when non-nil, enables the telemetry endpoints: transient and
	// scenario requests can persist their series into it, and GET /v1/query
	// serves time ranges back out. Without a store the query endpoints
	// answer 503 and persist requests answer 400.
	Store *tstore.Store
}

func (c Config) defaulted() Config {
	if c.CacheCap <= 0 {
		c.CacheCap = 32
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.DegradeThreshold == 0 {
		c.DegradeThreshold = 0.5
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
	return c
}

// Server is the thermal simulation service.
type Server struct {
	cfg       Config
	cache     *ModelCache
	admission *admission.Controller
	retrier   *flushRetrier
	metrics   *metrics
	mux       *http.ServeMux
}

// New builds a server from the (defaulted) config.
func New(cfg Config) *Server {
	cfg = cfg.defaulted()
	s := &Server{
		cfg:   cfg,
		cache: NewModelCache(cfg.CacheCap),
		admission: admission.New(admission.Config{
			Slots:      cfg.MaxConcurrent,
			QueueDepth: cfg.QueueDepth,
			Default:    cfg.DefaultQuota,
			Tenants:    cfg.Tenants,
		}),
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
	}
	if cfg.Store != nil {
		s.retrier = newFlushRetrier(cfg.Store)
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/steady", s.handleSteady)
	s.mux.HandleFunc("POST /v1/transient", s.handleTransient)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/invert", s.handleInvert)
	s.mux.HandleFunc("POST /v1/scenario", s.handleScenario)
	s.mux.HandleFunc("POST /v1/scenario/stream", s.handleScenarioStream)
	// Unversioned aliases for the scenario endpoints.
	s.mux.HandleFunc("POST /scenario", s.handleScenario)
	s.mux.HandleFunc("POST /scenario/stream", s.handleScenarioStream)
	// Telemetry read path (answers 503 until a store is configured).
	s.mux.HandleFunc("GET /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/query/stream", s.handleQueryStream)
	s.mux.HandleFunc("GET /v1/query/series", s.handleQuerySeries)
	return s
}

// Handler returns the HTTP handler serving every endpoint.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the model cache (stats, tests).
func (s *Server) Cache() *ModelCache { return s.cache }

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	st := s.metrics.snapshot(s.cache)
	adm := s.admission.Stats()
	st.Admission = &adm
	st.InFlight = int64(adm.InFlight)
	st.Queued = int64(adm.Queued)
	if s.retrier != nil {
		st.Degrade.PersistRetries, st.Degrade.PersistRecovered, st.Degrade.PersistPending = s.retrier.stats()
	}
	if s.cfg.Store != nil {
		ts := s.cfg.Store.Stats()
		st.Telemetry = &ts
	}
	return st
}

// --- admission control ---

// maxTenantName bounds the X-Tenant header: the admission controller keeps
// per-tenant state forever, so unbounded client-chosen names would be an
// unbounded-memory vector.
const maxTenantName = 64

// admit gates one request through the admission controller, resolving the
// tenant from the X-Tenant header ("default" when absent). On rejection it
// has already written the response — 429 (rate/queue shed) or 503
// (draining), both with a Retry-After header, or 504 for a deadline
// exceeded while queued — and returns ok == false. On success the caller
// must defer dec.Release().
func (s *Server) admit(w http.ResponseWriter, r *http.Request, ctx context.Context) (*admission.Decision, bool) {
	tenant := r.Header.Get("X-Tenant")
	if len(tenant) > maxTenantName {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("X-Tenant longer than %d bytes", maxTenantName))
		return nil, false
	}
	dec, err := s.admission.Admit(ctx, tenant)
	if err == nil {
		return dec, true
	}
	var shed *admission.ShedError
	switch {
	case errors.As(err, &shed):
		switch shed.Reason {
		case admission.ReasonDraining:
			s.failRetryAfter(w, http.StatusServiceUnavailable, shed.RetryAfter,
				fmt.Errorf("server draining for shutdown"))
		case admission.ReasonRate:
			s.metrics.rejectedRateLimited.Add(1)
			s.failRetryAfter(w, http.StatusTooManyRequests, shed.RetryAfter, err)
		default: // global or per-tenant queue bound
			s.metrics.rejectedQueueFull.Add(1)
			s.failRetryAfter(w, http.StatusTooManyRequests, shed.RetryAfter, err)
		}
	default: // context deadline or cancellation while queued
		s.metrics.deadlineExceeded.Add(1)
		s.fail(w, http.StatusGatewayTimeout, fmt.Errorf("deadline exceeded while queued: %v", err))
	}
	return nil, false
}

// maybeDegrade flips a degrade-eligible model spec (serving "auto") onto
// the reduced-order backend when the admission decision carries queue
// pressure at or above the configured threshold. Reduced-order compiles
// are separate cache entries (Reduced is part of the fingerprint), so
// degraded and full solves never share a model.
func (s *Server) maybeDegrade(spec *ModelSpec, dec *admission.Decision) bool {
	if spec.Serving != "auto" || spec.Reduced || dec.Pressure < s.cfg.DegradeThreshold {
		return false
	}
	spec.Reduced = true
	s.metrics.degradedSolves.Add(1)
	s.admission.RecordDegraded(dec.Tenant)
	return true
}

// BeginDrain puts the server into shutdown mode: queued waiters are evicted
// and every subsequent request is shed with 503 + Retry-After. In-flight
// solves run to completion. Serve calls this when its context is cancelled;
// it is idempotent and exported for callers running their own http.Server.
func (s *Server) BeginDrain() {
	s.admission.Drain()
	if s.retrier != nil {
		s.retrier.stop()
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.admission.Draining() }

// deadline derives the request context with the per-request timeout.
func (s *Server) deadline(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	return context.WithTimeout(r.Context(), d)
}

// model resolves a spec through the compiled-model cache.
func (s *Server) model(spec ModelSpec) (*CachedModel, string, error) {
	cfg, err := spec.config()
	if err != nil {
		return nil, "", err
	}
	cm, hit, err := s.cache.Get(cfg.Fingerprint(), func() (*hotspot.Model, error) {
		return hotspot.New(cfg)
	})
	state := "miss"
	if hit {
		state = "hit"
	}
	return cm, state, err
}

// --- response helpers ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "")
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	if code == http.StatusBadRequest {
		s.metrics.badRequests.Add(1)
	}
	if code == http.StatusInternalServerError {
		s.metrics.solveErrors.Add(1)
	}
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// failRetryAfter writes an error response carrying a Retry-After header.
// Every 429 and 503 the server emits goes through here: shed clients always
// learn when a retry could succeed (docs/api.md, Conventions).
func (s *Server) failRetryAfter(w http.ResponseWriter, code int, retry time.Duration, err error) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retry)))
	s.fail(w, code, err)
}

// retryAfterSeconds rounds a retry hint up to whole seconds (the header has
// no sub-second form), floored at 1.
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// --- endpoints ---

// handleHealthz is pure liveness: 200 as long as the process can answer,
// draining or not. Restart decisions key off this; routing decisions must
// not — that is /readyz's job.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 503 while draining so fleets and load
// balancers stop routing here before shutdown completes, 200 otherwise.
// Liveness and readiness split deliberately — a draining process is alive
// (do not restart it) but not ready (do not send it work).
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.admission.Draining() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.metrics.countRequest("stats")
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleSteady(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("steady")
	var req SteadyRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Power) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("empty power map"))
		return
	}
	ctx, cancel := s.deadline(r, req.TimeoutMS)
	defer cancel()
	dec, ok := s.admit(w, r, ctx)
	if !ok {
		return
	}
	defer dec.Release()

	start := time.Now()
	degraded := s.maybeDegrade(&req.Model, dec)
	cm, cacheState, err := s.model(req.Model)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("model: %w", err))
		return
	}
	vec, err := cm.Model.PowerVector(req.Power)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if ctx.Err() != nil {
		s.metrics.deadlineExceeded.Add(1)
		s.fail(w, http.StatusGatewayTimeout, ctx.Err())
		return
	}
	se := cm.Session()
	res := se.SteadyState(vec)
	cm.Release(se)
	solveMS := float64(time.Since(start)) / float64(time.Millisecond)
	s.metrics.solveLatency.add(solveMS)

	hotName, hotC := res.Hottest()
	writeJSON(w, http.StatusOK, SteadyResponse{
		BlockC:       blockMap(cm.Model, res.BlocksC()),
		HottestBlock: hotName,
		HottestC:     hotC,
		SpreadC:      res.Spread(),
		Cache:        cacheState,
		SolveMS:      solveMS,
		Degraded:     degraded,
	})
}

// blockMap zips floorplan names with per-block values.
func blockMap(m *hotspot.Model, vals []float64) map[string]float64 {
	names := m.Floorplan().Names()
	out := make(map[string]float64, len(names))
	for i, n := range names {
		out[n] = vals[i]
	}
	return out
}

// ctxRowReader aborts a streamed replay between rows once the request
// deadline passes (solver steps themselves are not interruptible).
type ctxRowReader struct {
	ctx context.Context
	rr  trace.RowReader
}

func (c *ctxRowReader) Names() []string   { return c.rr.Names() }
func (c *ctxRowReader) Interval() float64 { return c.rr.Interval() }
func (c *ctxRowReader) Next(dst []float64) error {
	if err := c.ctx.Err(); err != nil {
		return fmt.Errorf("deadline exceeded mid-replay: %w", err)
	}
	return c.rr.Next(dst)
}

// handleTransient replays a power trace. Two request shapes:
//
//   - Content-Type application/json: a TransientRequest with the trace
//     inline.
//   - any other Content-Type: the body is the raw trace stream (ptrace,
//     CSV or NDJSON, auto-detected) and the model spec arrives in query
//     parameters (floorplan, flp, package, direction, rconv, secondary,
//     ambient_c, interval, max_points, persist, timeout_ms). Replay begins as soon
//     as the header line arrives; memory stays O(one row).
//
// Streamed and inline replays of the same rows return bit-identical
// temperatures.
func (s *Server) handleTransient(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("transient")
	streaming := !isJSONRequest(r)

	var (
		req    TransientRequest
		rr     trace.RowReader
		inline *trace.PowerTrace
	)
	if streaming {
		var err error
		req, err = transientQueryParams(r)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		// The request deadline must also bound blocking reads of the body:
		// without a read deadline a stalled client would hold its solve
		// slot forever (the between-rows ctx check never runs while Next is
		// blocked inside a Read).
		d := s.cfg.DefaultTimeout
		if req.TimeoutMS > 0 {
			d = time.Duration(req.TimeoutMS) * time.Millisecond
		}
		_ = http.NewResponseController(w).SetReadDeadline(time.Now().Add(d))
		interval, _ := strconv.ParseFloat(r.URL.Query().Get("interval"), 64)
		dec, err := trace.NewDecoder(r.Body, trace.DecoderOptions{DefaultInterval: interval})
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		rr = dec
	} else {
		if err := decodeJSON(r, &req); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
			return
		}
		if req.Trace == nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("missing trace"))
			return
		}
		tr, err := req.Trace.powerTrace()
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		inline = tr
		rr = tr.Reader()
	}

	ctx, cancel := s.deadline(r, req.TimeoutMS)
	defer cancel()
	dec, ok := s.admit(w, r, ctx)
	if !ok {
		return
	}
	defer dec.Release()

	start := time.Now()
	degraded := s.maybeDegrade(&req.Model, dec)
	cm, cacheState, err := s.model(req.Model)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("model: %w", err))
		return
	}
	if err := cm.Model.CheckTraceNames(rr.Names()); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}

	se := cm.Session()
	defer cm.Release(se)
	temps := cm.Model.AmbientState()
	if req.WarmStart {
		// Warm start needs the trace average, which only exists for inline
		// traces (a stream's average is unknown until EOF).
		if inline == nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("warm_start requires an inline trace"))
			return
		}
		avg, err := warmStartPower(cm.Model, inline)
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
		temps = se.SteadyState(avg).Temps
	}
	pts, err := se.ReplayRows(temps, &ctxRowReader{ctx: ctx, rr: rr})
	if err != nil {
		code := http.StatusBadRequest
		if ctx.Err() != nil {
			code = http.StatusGatewayTimeout
			s.metrics.deadlineExceeded.Add(1)
		}
		s.fail(w, code, err)
		return
	}
	var persistedRows int64
	persistPending := false
	if tw, err := s.persistWriter(req.Persist); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	} else if tw != nil {
		// The full sampled series persists (MaxPoints only strides the JSON
		// reply), then flushes so the rows are in durable segments before the
		// response claims them persisted.
		err := hotspot.EmitTracePoints(tw, "", cm.Model.Floorplan().Names(), pts)
		switch {
		case errors.Is(err, tstore.ErrStagedFull):
			// The staging cap only binds while flushes are failing: rows were
			// dropped, so the honest answer is "retry later", and the retrier
			// works on draining the backlog meanwhile.
			s.kickRetrier()
			s.failRetryAfter(w, http.StatusServiceUnavailable, 0,
				fmt.Errorf("persist %q: %w", req.Persist, err))
			return
		case errors.Is(err, tstore.ErrOutOfOrder):
			// The run name already holds newer rows — client data error.
			s.fail(w, http.StatusBadRequest, fmt.Errorf("persist %q: %w", req.Persist, err))
			return
		case err == nil:
			err = tw.Flush()
		}
		if err != nil {
			// Degraded persistence (DESIGN.md §12): the rows are staged in
			// memory and the background retrier keeps flushing with backoff,
			// so a disk fault costs durability-on-ack, not the solve. The
			// response says so instead of claiming the rows durable.
			s.kickRetrier()
			s.metrics.persistDeferred.Add(1)
			persistPending = true
		} else {
			persistedRows = tw.Rows()
		}
	}
	solveMS := float64(time.Since(start)) / float64(time.Millisecond)
	s.metrics.solveLatency.add(solveMS)

	resp := transientResponse(cm.Model, pts, req.MaxPoints, cacheState, solveMS)
	resp.Degraded = degraded
	if persistPending {
		resp.Persist, resp.PersistPending = req.Persist, true
	}
	if persistedRows > 0 {
		resp.Persist, resp.PersistedRows = req.Persist, persistedRows
	}
	writeJSON(w, http.StatusOK, resp)
}

func isJSONRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return true
	}
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == "application/json"
}

// transientQueryParams parses the streamed-transient parameters.
func transientQueryParams(r *http.Request) (TransientRequest, error) {
	q := r.URL.Query()
	var req TransientRequest
	req.Model = ModelSpec{
		Floorplan: q.Get("floorplan"),
		FLP:       q.Get("flp"),
		Package:   q.Get("package"),
		Direction: q.Get("direction"),
		Secondary: q.Get("secondary") == "true",
	}
	var err error
	if v := q.Get("rconv"); v != "" {
		if req.Model.Rconv, err = strconv.ParseFloat(v, 64); err != nil {
			return req, fmt.Errorf("rconv: %v", err)
		}
	}
	if v := q.Get("ambient_c"); v != "" {
		if req.Model.AmbientC, err = strconv.ParseFloat(v, 64); err != nil {
			return req, fmt.Errorf("ambient_c: %v", err)
		}
	}
	if v := q.Get("max_points"); v != "" {
		if req.MaxPoints, err = strconv.Atoi(v); err != nil {
			return req, fmt.Errorf("max_points: %v", err)
		}
	}
	if v := q.Get("timeout_ms"); v != "" {
		if req.TimeoutMS, err = strconv.Atoi(v); err != nil {
			return req, fmt.Errorf("timeout_ms: %v", err)
		}
	}
	req.Persist = q.Get("persist")
	return req, nil
}

// warmStartPower is the node-power vector of the trace's average.
func warmStartPower(m *hotspot.Model, tr *trace.PowerTrace) ([]float64, error) {
	avg := tr.Average()
	pm := make(map[string]float64, len(tr.Names))
	for i, n := range tr.Names {
		pm[n] = avg[i]
	}
	return m.PowerVector(pm)
}

// transientResponse assembles the reply: subsampled series plus final/peak
// maps.
func transientResponse(m *hotspot.Model, pts []hotspot.TracePoint, maxPoints int, cacheState string, solveMS float64) TransientResponse {
	names := m.Floorplan().Names()
	peak := make([]float64, len(names))
	final := pts[len(pts)-1].BlockC
	for i := range peak {
		peak[i] = pts[0].BlockC[i]
	}
	for _, p := range pts {
		for i, v := range p.BlockC {
			if v > peak[i] {
				peak[i] = v
			}
		}
	}
	keep := pts
	if maxPoints == 1 {
		keep = pts[len(pts)-1:]
	} else if maxPoints > 1 && len(pts) > maxPoints {
		keep = make([]hotspot.TracePoint, 0, maxPoints)
		stride := float64(len(pts)-1) / float64(maxPoints-1)
		for i := 0; i < maxPoints; i++ {
			keep = append(keep, pts[int(float64(i)*stride+0.5)])
		}
		keep[maxPoints-1] = pts[len(pts)-1]
	}
	out := TransientResponse{
		Blocks:  names,
		Points:  make([]PointJSON, len(keep)),
		FinalC:  blockMap(m, final),
		PeakC:   blockMap(m, peak),
		Steps:   len(pts) - 1,
		Cache:   cacheState,
		SolveMS: solveMS,
	}
	for i, p := range keep {
		out.Points[i] = PointJSON{TimeS: p.Time, BlockC: p.BlockC}
	}
	return out
}

// handleSweep runs batched scenarios: steady power maps solve across the
// request's worker budget, trace scenarios fan out through
// hotspot.RunReplayBatch (the same internal/pool path the experiment sweeps
// use).
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("sweep")
	var req SweepRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Scenarios) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("no scenarios"))
		return
	}
	const maxScenarios = 256
	if len(req.Scenarios) > maxScenarios {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("%d scenarios, limit %d", len(req.Scenarios), maxScenarios))
		return
	}
	ctx, cancel := s.deadline(r, req.TimeoutMS)
	defer cancel()
	dec, ok := s.admit(w, r, ctx)
	if !ok {
		return
	}
	defer dec.Release()

	start := time.Now()
	results := make([]SweepResult, len(req.Scenarios))

	// Resolve every scenario's model first (cache + single-flight dedupes
	// repeats), then split steady and replay work.
	models := make([]*CachedModel, len(req.Scenarios))
	var replayJobs []hotspot.ReplayJob
	var replayIdx []int
	for i, sc := range req.Scenarios {
		cm, cacheState, err := s.model(sc.Model)
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		models[i] = cm
		results[i].Cache = cacheState
		switch {
		case sc.Trace != nil:
			tr, err := sc.Trace.powerTrace()
			if err != nil {
				results[i].Error = err.Error()
				models[i] = nil
				continue
			}
			if err := cm.Model.CheckTraceNames(tr.Names); err != nil {
				results[i].Error = err.Error()
				models[i] = nil
				continue
			}
			temps := cm.Model.AmbientState()
			if sc.WarmStart {
				avg, err := warmStartPower(cm.Model, tr)
				if err != nil {
					results[i].Error = err.Error()
					models[i] = nil
					continue
				}
				se := cm.Session()
				temps = se.SteadyState(avg).Temps
				cm.Release(se)
			}
			replayJobs = append(replayJobs, hotspot.ReplayJob{
				Model: cm.Model,
				Temps: temps,
				Rows:  &ctxRowReader{ctx: ctx, rr: tr.Reader()},
			})
			replayIdx = append(replayIdx, i)
		case len(sc.Power) > 0:
			// handled below
		default:
			results[i].Error = "scenario needs a power map or a trace"
			models[i] = nil
		}
	}

	// Steady scenarios across the worker pool.
	var steadyIdx []int
	for i, sc := range req.Scenarios {
		if models[i] != nil && sc.Trace == nil && len(sc.Power) > 0 {
			steadyIdx = append(steadyIdx, i)
		}
	}
	if len(steadyIdx) > 0 {
		pool.Run(len(steadyIdx), req.Workers, func() func(int) {
			return func(k int) {
				i := steadyIdx[k]
				cm := models[i]
				vec, err := cm.Model.PowerVector(req.Scenarios[i].Power)
				if err != nil {
					results[i].Error = err.Error()
					return
				}
				se := cm.Session()
				res := se.SteadyState(vec)
				cm.Release(se)
				results[i].BlockC = blockMap(cm.Model, res.BlocksC())
			}
		})
	}

	// Trace scenarios through the batched replay path, with per-job error
	// attribution.
	if len(replayJobs) > 0 {
		batch, batchErrs := hotspot.ReplayBatchResults(replayJobs, req.Workers)
		for k, i := range replayIdx {
			pts := batch[k]
			if batchErrs[k] != nil {
				results[i].Error = batchErrs[k].Error()
				continue
			}
			if pts == nil {
				results[i].Error = "replay produced no points"
				continue
			}
			cm := models[i]
			final := pts[len(pts)-1].BlockC
			peak := append([]float64(nil), pts[0].BlockC...)
			for _, p := range pts {
				for b, v := range p.BlockC {
					if v > peak[b] {
						peak[b] = v
					}
				}
			}
			results[i].BlockC = blockMap(cm.Model, final)
			results[i].PeakC = blockMap(cm.Model, peak)
		}
	}
	solveMS := float64(time.Since(start)) / float64(time.Millisecond)
	s.metrics.solveLatency.add(solveMS)
	writeJSON(w, http.StatusOK, SweepResponse{Results: results, SolveMS: solveMS})
}

// handleInvert recovers per-block power from observed temperatures through
// the model's influence matrix (the paper's §5.4 reverse engineering).
func (s *Server) handleInvert(w http.ResponseWriter, r *http.Request) {
	s.metrics.countRequest("invert")
	var req InvertRequest
	if err := decodeJSON(r, &req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.ObservedC) == 0 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("empty observed_c map"))
		return
	}
	ctx, cancel := s.deadline(r, req.TimeoutMS)
	defer cancel()
	dec, ok := s.admit(w, r, ctx)
	if !ok {
		return
	}
	defer dec.Release()

	start := time.Now()
	cm, cacheState, err := s.model(req.Model)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("model: %w", err))
		return
	}
	fp := cm.Model.Floorplan()
	observed := make([]float64, fp.N())
	for name, v := range req.ObservedC {
		bi := fp.Index(name)
		if bi < 0 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("observed temperature for unknown block %q", name))
			return
		}
		observed[bi] = v
	}
	if len(req.ObservedC) != fp.N() {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("observed_c has %d blocks, floorplan has %d", len(req.ObservedC), fp.N()))
		return
	}
	lambda := req.Lambda
	if lambda == 0 {
		lambda = 1e-6
	}
	if ctx.Err() != nil {
		s.metrics.deadlineExceeded.Add(1)
		s.fail(w, http.StatusGatewayTimeout, ctx.Err())
		return
	}
	p, err := ircam.InvertPower(cm.Model, observed, lambda)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	solveMS := float64(time.Since(start)) / float64(time.Millisecond)
	s.metrics.solveLatency.add(solveMS)
	var total float64
	for _, v := range p {
		total += v
	}
	writeJSON(w, http.StatusOK, InvertResponse{
		PowerW:  blockMap(cm.Model, p),
		TotalW:  total,
		Cache:   cacheState,
		SolveMS: solveMS,
	})
}

// kickRetrier wakes the background flush retrier (no-op without a store).
func (s *Server) kickRetrier() {
	if s.retrier != nil {
		s.retrier.kick()
	}
}

// Serve runs the server on addr until ctx is cancelled, then drains: the
// admission controller sheds new requests with 503 + Retry-After while
// in-flight solves get up to DrainTimeout to finish, and the background
// flush retrier stops after a final flush attempt. Closing the store (the
// caller owns it) performs the final durable flush after Serve returns.
func (s *Server) Serve(ctx context.Context, addr string) error {
	hs := &http.Server{Addr: addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.BeginDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		if err := hs.Shutdown(shutCtx); err != nil {
			return err
		}
		if err := <-errc; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
}
