package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// benchSteadyBody is a steady request against a 32×32-block synthetic die
// under oil (2048 RC nodes, sparse backend) — large enough that model
// construction and compilation dominate a cold request.
func benchSteadyBody(b testing.TB) []byte {
	raw, err := json.Marshal(SteadyRequest{
		Model: ModelSpec{Floorplan: "grid:32x32", Package: "oil-silicon"},
		Power: map[string]float64{"c16_16": 5.0, "c0_0": 2.0},
	})
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

func doSteady(b testing.TB, ts *httptest.Server, body []byte) SteadyResponse {
	resp, err := http.Post(ts.URL+"/v1/steady", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var out SteadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		b.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
	return out
}

// BenchmarkSteadyColdCache measures the end-to-end steady request with an
// empty model cache every iteration: floorplan build + RC assembly +
// compile + solve.
func BenchmarkSteadyColdCache(b *testing.B) {
	body := benchSteadyBody(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := New(Config{})
		ts := httptest.NewServer(s.Handler())
		b.StartTimer()
		doSteady(b, ts, body)
		b.StopTimer()
		ts.Close()
	}
}

// BenchmarkSteadyWarmCache measures the same request against a warm cache:
// fingerprint hash + cache hit + warm-started solve.
func BenchmarkSteadyWarmCache(b *testing.B) {
	body := benchSteadyBody(b)
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	doSteady(b, ts, body) // prime
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doSteady(b, ts, body)
	}
}

// TestWarmCacheSpeedup asserts the acceptance criterion directly: a
// warm-cache steady request must be at least 5× faster than the cold one
// (the benchmarks above show well over 10× on an idle machine; the test
// threshold leaves headroom for loaded CI workers).
func TestWarmCacheSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	body := benchSteadyBody(t)
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	coldStart := time.Now()
	cold := doSteady(t, ts, body)
	coldDur := time.Since(coldStart)
	if cold.Cache != "miss" {
		t.Fatalf("cold request cache = %q", cold.Cache)
	}

	// Median of several warm requests to shrug off scheduler noise.
	var warmDur time.Duration
	const warmRuns = 5
	durs := make([]time.Duration, 0, warmRuns)
	for i := 0; i < warmRuns; i++ {
		start := time.Now()
		warm := doSteady(t, ts, body)
		durs = append(durs, time.Since(start))
		if warm.Cache != "hit" {
			t.Fatalf("warm request cache = %q", warm.Cache)
		}
	}
	warmDur = durs[0]
	for _, d := range durs[1:] {
		if d < warmDur {
			warmDur = d
		}
	}
	t.Logf("cold %v, warm (best of %d) %v, speedup %.1f×", coldDur, warmRuns, warmDur, float64(coldDur)/float64(warmDur))
	if coldDur < 5*warmDur {
		t.Fatalf("warm cache speedup only %.1f× (cold %v, warm %v), want ≥5×",
			float64(coldDur)/float64(warmDur), coldDur, warmDur)
	}
}
