// Package service exposes the thermal simulation stack as a long-lived
// HTTP/JSON server — the serving layer the paper's inherently many-scenario
// workflow (§5: one die re-run across traces, sensor placements, DTM
// policies and camera configurations) calls for; DESIGN.md §5 records the
// architecture. The expensive artifact — a compiled hotspot.Model
// (floorplan geometry → RC network → factorized/preconditioned operator) —
// is amortized across requests by a single-flight LRU cache keyed on the
// model configuration's canonical fingerprint; power traces stream through
// internal/trace decoders so transients start before the full trace has
// arrived and memory stays O(one row).
//
// Endpoints (all under the handler returned by Server.Handler; docs/api.md
// is the full request/response reference):
//
//	GET  /healthz             liveness
//	GET  /v1/stats            cache/queue/latency counters
//	POST /v1/steady           steady-state temperatures for a power map
//	POST /v1/transient        trace-driven transient (inline JSON or streamed body)
//	POST /v1/sweep            batched steady/transient scenarios
//	POST /v1/invert           IR-camera style power inversion from observed temps
//	POST /v1/scenario         closed-loop DTM policy-grid sweep (buffered)
//	POST /v1/scenario/stream  same grid, NDJSON rows as cells finish
//	GET  /v1/query            telemetry-store range query (buffered)
//	GET  /v1/query/stream     same query, NDJSON rows/buckets
//	GET  /v1/query/series     stored-series listing
//
// Transient and scenario requests accept a "persist" run name that writes
// their sampled series into the server's internal/tstore telemetry store
// (when one is configured), which the query endpoints then serve back.
package service

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/trace"
)

// ModelSpec selects a thermal model. Floorplan is one of the built-ins
// ("ev6", "athlon"), a synthetic uniform grid ("grid:<nx>x<ny>", 16×16 mm
// die), or empty when FLP carries an inline HotSpot .flp file. The
// remaining fields mirror core.PackageSpec.
type ModelSpec struct {
	Floorplan string  `json:"floorplan,omitempty"`
	FLP       string  `json:"flp,omitempty"`
	Package   string  `json:"package,omitempty"`
	Direction string  `json:"direction,omitempty"`
	Rconv     float64 `json:"rconv,omitempty"`
	Secondary bool    `json:"secondary,omitempty"`
	// AmbientC is the ambient temperature in °C (default 45).
	AmbientC float64 `json:"ambient_c,omitempty"`
	// Serving hints the serving shape. "per-user" declares many concurrent
	// long-lived streaming sessions against this model and auto-selects the
	// reduced-order backend (DESIGN.md §10); "auto" keeps the full backend
	// normally but lets the server degrade the solve onto the reduced
	// backend under queue pressure (the response carries degraded:true when
	// it does); "" or "batch" keeps the default full backend always.
	Serving string `json:"serving,omitempty"`
	// Reduced forces the reduced-order backend regardless of Serving.
	Reduced bool `json:"reduced,omitempty"`
	// ReducedOrder caps the reduction basis size (0 = solver default).
	ReducedOrder int `json:"reduced_order,omitempty"`
}

// maxGridSide bounds synthetic grid floorplans (128×128 blocks ≈ 33k RC
// nodes under oil — already a stress-test size).
const maxGridSide = 128

// namedFloorplans memoizes floorplans resolved from name specs ("ev6",
// "grid:32x32", …): they are immutable once built, and rebuilding a large
// grid per request would dominate a warm-cache hit. Grid specs are client
// input, so the memo is size-capped: past the cap, unseen specs are rebuilt
// per request instead of stored (correct, just slower) — a client iterating
// grid sizes cannot pin unbounded memory.
var namedFloorplans = struct {
	sync.Mutex
	m map[string]*floorplan.Floorplan
}{m: make(map[string]*floorplan.Floorplan)}

const maxNamedFloorplans = 64

// resolveFloorplan builds (or recalls) the floorplan the spec names.
func (sp ModelSpec) resolveFloorplan() (*floorplan.Floorplan, error) {
	if sp.FLP != "" {
		fp, err := floorplan.Parse(strings.NewReader(sp.FLP))
		if err != nil {
			return nil, err
		}
		if err := fp.ValidateNoOverlap(); err != nil {
			return nil, err
		}
		return fp, nil
	}
	namedFloorplans.Lock()
	cached := namedFloorplans.m[sp.Floorplan]
	namedFloorplans.Unlock()
	if cached != nil {
		return cached, nil
	}
	var fp *floorplan.Floorplan
	switch {
	case sp.Floorplan == "" || sp.Floorplan == "ev6":
		fp = floorplan.EV6()
	case sp.Floorplan == "athlon":
		fp = floorplan.Athlon()
	case strings.HasPrefix(sp.Floorplan, "grid:"):
		dims := strings.Split(strings.TrimPrefix(sp.Floorplan, "grid:"), "x")
		if len(dims) != 2 {
			return nil, fmt.Errorf("grid floorplan %q: want grid:<nx>x<ny>", sp.Floorplan)
		}
		nx, errX := strconv.Atoi(dims[0])
		ny, errY := strconv.Atoi(dims[1])
		if errX != nil || errY != nil || nx < 1 || ny < 1 || nx > maxGridSide || ny > maxGridSide {
			return nil, fmt.Errorf("grid floorplan %q: sides must be 1..%d", sp.Floorplan, maxGridSide)
		}
		fp = floorplan.GridDie(16e-3, 16e-3, nx, ny)
	default:
		return nil, fmt.Errorf("unknown floorplan %q (have ev6, athlon, grid:<nx>x<ny>, or inline flp)", sp.Floorplan)
	}
	namedFloorplans.Lock()
	if len(namedFloorplans.m) < maxNamedFloorplans {
		namedFloorplans.m[sp.Floorplan] = fp
	}
	namedFloorplans.Unlock()
	return fp, nil
}

// config resolves the spec into a full hotspot configuration. The config's
// Fingerprint is the cache key.
func (sp ModelSpec) config() (hotspot.Config, error) {
	fp, err := sp.resolveFloorplan()
	if err != nil {
		return hotspot.Config{}, err
	}
	ambientC := sp.AmbientC
	if ambientC == 0 {
		ambientC = 45
	}
	switch sp.Serving {
	case "", "batch", "per-user", "auto":
	default:
		return hotspot.Config{}, fmt.Errorf("unknown serving mode %q (have per-user, batch, auto)", sp.Serving)
	}
	cfg, err := core.BuildConfig(fp, core.PackageSpec{
		Kind:      sp.Package,
		Rconv:     sp.Rconv,
		Direction: sp.Direction,
		Secondary: sp.Secondary,
		AmbientK:  ambientC + 273.15,
	})
	if err != nil {
		return cfg, err
	}
	// Per-user streaming means many concurrent sessions each stepping the
	// same compiled model: the reduced backend's tiny pre-factored solve is
	// built for exactly that, so the serving hint auto-selects it.
	if sp.Reduced || sp.Serving == "per-user" {
		cfg.Reduced = hotspot.ReducedConfig{Enabled: true, Order: sp.ReducedOrder}
	}
	return cfg, nil
}

// Fingerprint resolves the spec and returns its model-cache key — the same
// hotspot.Config.Fingerprint the compiled-model cache and the fleet router's
// consistent-hash ring use, so a router placing a request and the replica
// caching its model agree on the key byte for byte.
func (sp ModelSpec) Fingerprint() (string, error) {
	cfg, err := sp.config()
	if err != nil {
		return "", err
	}
	return cfg.Fingerprint(), nil
}

// TraceSpec is an inline power trace.
type TraceSpec struct {
	Names    []string    `json:"names"`
	Interval float64     `json:"interval"`
	Rows     [][]float64 `json:"rows"`
}

// powerTrace materializes the inline trace (validating names, interval and
// powers).
func (ts *TraceSpec) powerTrace() (*trace.PowerTrace, error) {
	tr, err := trace.New(ts.Names, ts.Interval)
	if err != nil {
		return nil, err
	}
	for _, row := range ts.Rows {
		if err := tr.Append(row); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// SteadyRequest asks for equilibrium temperatures under a per-block power
// map (W).
type SteadyRequest struct {
	Model     ModelSpec          `json:"model"`
	Power     map[string]float64 `json:"power"`
	TimeoutMS int                `json:"timeout_ms,omitempty"`
}

// SteadyResponse reports per-block Celsius temperatures.
type SteadyResponse struct {
	BlockC       map[string]float64 `json:"block_c"`
	HottestBlock string             `json:"hottest_block"`
	HottestC     float64            `json:"hottest_c"`
	SpreadC      float64            `json:"spread_c"`
	Cache        string             `json:"cache"` // "hit" or "miss"
	SolveMS      float64            `json:"solve_ms"`
	// Degraded reports that queue pressure dropped this solve onto the
	// reduced-order backend (serving "auto" only).
	Degraded bool `json:"degraded,omitempty"`
}

// TransientRequest replays an inline power trace. Streamed bodies (non-JSON
// content types) carry the same parameters in the query string instead and
// the trace in the body; see Server.handleTransient.
type TransientRequest struct {
	Model ModelSpec  `json:"model"`
	Trace *TraceSpec `json:"trace"`
	// WarmStart starts from the steady state of the trace's average power
	// (the paper's warm operating point) instead of ambient.
	WarmStart bool `json:"warm_start,omitempty"`
	// MaxPoints caps the returned sample series (0 = all points); the
	// series is strided evenly, always keeping the final point.
	MaxPoints int `json:"max_points,omitempty"`
	// Persist, when set, writes the full (unstrided) sampled series into the
	// server's telemetry store under this run name: one series per block,
	// named "<persist>/<block>", queryable via GET /v1/query. Requires the
	// server to be configured with a store.
	Persist   string `json:"persist,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// PointJSON is one sampled instant.
type PointJSON struct {
	TimeS  float64   `json:"t"`
	BlockC []float64 `json:"block_c"`
}

// TransientResponse reports the sampled series plus summary maps.
type TransientResponse struct {
	Blocks  []string           `json:"blocks"`
	Points  []PointJSON        `json:"points"`
	FinalC  map[string]float64 `json:"final_c"`
	PeakC   map[string]float64 `json:"peak_c"`
	Steps   int                `json:"steps"`
	Cache   string             `json:"cache"`
	SolveMS float64            `json:"solve_ms"`
	// Persist echoes the request's run name when the series was written to
	// the telemetry store; PersistedRows counts the rows written.
	Persist       string `json:"persist,omitempty"`
	PersistedRows int64  `json:"persisted_rows,omitempty"`
	// PersistPending reports degraded persistence: the flush failed, the
	// rows are buffered in memory, and a background retrier is flushing
	// them with backoff. PersistedRows is zero in that case — the rows are
	// not yet durable.
	PersistPending bool `json:"persist_pending,omitempty"`
	// Degraded reports that queue pressure dropped this solve onto the
	// reduced-order backend (serving "auto" only).
	Degraded bool `json:"degraded,omitempty"`
}

// SweepScenario is one entry of a sweep: a model plus either a steady power
// map or a trace to replay.
type SweepScenario struct {
	Model     ModelSpec          `json:"model"`
	Power     map[string]float64 `json:"power,omitempty"`
	Trace     *TraceSpec         `json:"trace,omitempty"`
	WarmStart bool               `json:"warm_start,omitempty"`
}

// SweepRequest batches scenarios across the worker pool.
type SweepRequest struct {
	Scenarios []SweepScenario `json:"scenarios"`
	// Workers bounds replay parallelism (0 = GOMAXPROCS).
	Workers   int `json:"workers,omitempty"`
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// SweepResult is one scenario's outcome: steady temperatures, or the final
// and peak temperatures of a replay.
type SweepResult struct {
	BlockC map[string]float64 `json:"block_c,omitempty"`
	PeakC  map[string]float64 `json:"peak_c,omitempty"`
	Cache  string             `json:"cache,omitempty"`
	Error  string             `json:"error,omitempty"`
}

// SweepResponse reports per-scenario results, indexed like the request.
type SweepResponse struct {
	Results []SweepResult `json:"results"`
	SolveMS float64       `json:"solve_ms"`
}

// InvertRequest reverse-engineers per-block power from observed block
// temperatures (°C) through the model's influence matrix.
type InvertRequest struct {
	Model     ModelSpec          `json:"model"`
	ObservedC map[string]float64 `json:"observed_c"`
	// Lambda is the Tikhonov regularization weight (default 1e-6).
	Lambda    float64 `json:"lambda,omitempty"`
	TimeoutMS int     `json:"timeout_ms,omitempty"`
}

// InvertResponse reports recovered per-block power in watts.
type InvertResponse struct {
	PowerW  map[string]float64 `json:"power_w"`
	TotalW  float64            `json:"total_w"`
	Cache   string             `json:"cache"`
	SolveMS float64            `json:"solve_ms"`
}

// errorResponse is the JSON error payload.
type errorResponse struct {
	Error string `json:"error"`
}
