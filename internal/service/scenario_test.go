package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// sweepSpecJSON is the acceptance-criteria scenario: ≥12 policy-grid cells
// over AIR-SINK and OIL-SILICON. Triggers are placed between the two
// packages' operating points so the identical policy engages under oil but
// not under air (the §5.1 qualitative result).
const sweepSpecJSON = `{
	"name": "api-sweep",
	"interval": 1e-3,
	"emergency_c": 74,
	"initial_steady": true,
	"phases": [
		{"name": "burst", "duration": 0.2,
		 "pulse": {"block": "IntReg", "peak_w": 3, "on_s": 30e-3, "off_s": 70e-3}}
	],
	"packages": [
		{"label": "air", "kind": "air-sink", "rconv": 1.0},
		{"label": "oil", "kind": "oil-silicon", "rconv": 1.0}
	],
	"policies": {
		"trigger_c": [66, 69, 72],
		"engage_s": [5e-3, 20e-3],
		"perf_factor": [0.5]
	}
}`

func scenarioRequestBody(t *testing.T, workers int) []byte {
	t.Helper()
	raw, err := json.Marshal(ScenarioRequest{Spec: json.RawMessage(sweepSpecJSON), Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestScenarioEndpoint: the buffered endpoint runs the 12-cell grid and the
// identical policy engages differently across cooling configurations.
func TestScenarioEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/scenario", ScenarioRequest{Spec: json.RawMessage(sweepSpecJSON)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out ScenarioResponse
	decodeInto(t, raw, &out)
	if out.Name != "api-sweep" || len(out.Cells) != 12 {
		t.Fatalf("want 12 cells for api-sweep, got %d for %q", len(out.Cells), out.Name)
	}
	duty := map[string]float64{}
	for i, c := range out.Cells {
		if c.Error != "" {
			t.Fatalf("cell %d failed: %s", i, c.Error)
		}
		if c.Cell != i {
			t.Fatalf("buffered cells must be in grid order: got %d at %d", c.Cell, i)
		}
		if c.Metrics == nil || c.Metrics.DurationS == 0 {
			t.Fatalf("cell %d has no metrics", i)
		}
		duty[c.Package] += c.Metrics.DutyCycle
	}
	if duty["air"] >= duty["oil"] {
		t.Fatalf("identical policies should throttle oil more than air here: air %.3f vs oil %.3f",
			duty["air"], duty["oil"])
	}
	// Both package models went through the compiled-model cache.
	if got := srv.Cache().Len(); got != 2 {
		t.Fatalf("want 2 cached models, got %d", got)
	}
	if out.Cache != "miss" {
		t.Fatalf("first scenario request should report a cache miss, got %q", out.Cache)
	}
	// A repeat is a full cache hit and bit-identical.
	resp2, raw2 := postJSON(t, ts.URL+"/scenario", ScenarioRequest{Spec: json.RawMessage(sweepSpecJSON)})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("alias status %d", resp2.StatusCode)
	}
	var out2 ScenarioResponse
	decodeInto(t, raw2, &out2)
	if out2.Cache != "hit" {
		t.Fatalf("second scenario request should hit the model cache, got %q", out2.Cache)
	}
	for i := range out.Cells {
		if !reflect.DeepEqual(out.Cells[i].Metrics, out2.Cells[i].Metrics) {
			t.Fatalf("cell %d differs between runs", i)
		}
	}
}

// TestScenarioStreamEndpoint: the NDJSON stream carries a header, one row
// per cell, and a trailer; workers=4 streamed cells match the buffered
// workers=1 run bit-identically.
func TestScenarioStreamEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	respBuf, rawBuf := postJSON(t, ts.URL+"/v1/scenario", ScenarioRequest{Spec: json.RawMessage(sweepSpecJSON), Workers: 1})
	if respBuf.StatusCode != http.StatusOK {
		t.Fatalf("buffered status %d: %s", respBuf.StatusCode, rawBuf)
	}
	var buffered ScenarioResponse
	decodeInto(t, rawBuf, &buffered)

	resp, err := http.Post(ts.URL+"/v1/scenario/stream", "application/json", bytes.NewReader(scenarioRequestBody(t, 4)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)

	if !sc.Scan() {
		t.Fatal("no header row")
	}
	var hdr ScenarioHeaderJSON
	decodeInto(t, sc.Bytes(), &hdr)
	if hdr.Cells != 12 || hdr.Steps == 0 || hdr.IntervalS != 1e-3 {
		t.Fatalf("bad stream header: %+v", hdr)
	}

	cells := make(map[int]ScenarioCellJSON)
	var trailer ScenarioTrailerJSON
	for sc.Scan() {
		line := sc.Bytes()
		if bytes.Contains(line, []byte(`"done"`)) {
			decodeInto(t, line, &trailer)
			continue
		}
		var c ScenarioCellJSON
		decodeInto(t, line, &c)
		if c.Error != "" {
			t.Fatalf("cell %d failed: %s", c.Cell, c.Error)
		}
		cells[c.Cell] = c
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !trailer.Done || trailer.SolveMS <= 0 {
		t.Fatalf("bad trailer: %+v", trailer)
	}
	if len(cells) != 12 {
		t.Fatalf("want 12 streamed cells, got %d", len(cells))
	}
	// Streamed workers=4 must be bit-identical to buffered workers=1.
	for i, want := range buffered.Cells {
		got, ok := cells[i]
		if !ok {
			t.Fatalf("cell %d missing from stream", i)
		}
		if !reflect.DeepEqual(got.Metrics, want.Metrics) {
			t.Fatalf("cell %d: stream workers=4 differs from buffered workers=1:\n %+v\n %+v",
				i, got.Metrics, want.Metrics)
		}
		if !reflect.DeepEqual(got.Policy, want.Policy) || got.Package != want.Package {
			t.Fatalf("cell %d identity mismatch", i)
		}
	}
}

// TestScenarioRejectsHostileSpecs: spec-layer validation surfaces as 400
// with the field-anchored message.
func TestScenarioRejectsHostileSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, spec := range map[string]string{
		"empty phases":   `{"emergency_c": 80, "phases": [], "packages": [{"kind":"air-sink"}], "policies": {"trigger_c": [60]}}`,
		"unknown field":  `{"emergency_c": 80, "bogus": 1}`,
		"unknown sensor": `{"emergency_c": 80, "phases": [{"duration": 0.01, "pulse": {"block": "IntReg", "peak_w": 1, "on_s": 1e-3, "off_s": 0}}], "sensors": [{"block": "Nope"}], "packages": [{"kind":"air-sink"}], "policies": {"trigger_c": [60]}}`,
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/scenario", ScenarioRequest{Spec: json.RawMessage(spec)})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: want 400, got %d: %s", name, resp.StatusCode, raw)
		}
		var e errorResponse
		decodeInto(t, raw, &e)
		if e.Error == "" {
			t.Fatalf("%s: no error message", name)
		}
	}
	// Missing spec entirely.
	resp, _ := postJSON(t, ts.URL+"/v1/scenario", map[string]any{"workers": 2})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing spec: want 400, got %d", resp.StatusCode)
	}
}

// TestScenarioDeadline: an aggressive request deadline aborts the grid —
// buffered requests get 504, streamed requests get error rows.
func TestScenarioDeadline(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	raw, err := json.Marshal(ScenarioRequest{Spec: json.RawMessage(sweepSpecJSON), TimeoutMS: 1})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/scenario", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusOK {
		t.Fatalf("want 504 (or a fast 200), got %d", resp.StatusCode)
	}
}

// TestScenarioMetricsCounted: scenario requests show up in /v1/stats.
func TestScenarioMetricsCounted(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/scenario", ScenarioRequest{Spec: json.RawMessage(`{"emergency_c": 80}`)})
	if got := srv.Stats().Requests["scenario"]; got != 1 {
		t.Fatalf("scenario request not counted: %d", got)
	}
}

// TestScenarioSpecRoundTrip: the scenario package's own spec type marshals
// into the request envelope losslessly (the CLI uses this path).
func TestScenarioSpecRoundTrip(t *testing.T) {
	spec := scenario.Spec{
		EmergencyC: 80,
		Phases:     []scenario.Phase{{Duration: 0.01, Pulse: &scenario.PulseSpec{Block: "IntReg", PeakW: 1, OnS: 1e-3}}},
		Packages:   []scenario.PackageSpec{{Kind: "air-sink"}},
		Policies:   scenario.PolicyGrid{TriggerC: []float64{1e6}},
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/scenario", ScenarioRequest{Spec: raw})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("round-tripped spec rejected: %d: %s", resp.StatusCode, body)
	}
}
