package service

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
)

// buildFor returns a build function for a small real model, counting calls.
func buildFor(rconv float64, calls *atomic.Int64) (string, func() (*hotspot.Model, error)) {
	cfg := hotspot.Config{
		Floorplan: floorplan.EV6(),
		Package:   hotspot.AirSink,
		AmbientK:  318.15,
		Air:       hotspot.AirSinkConfig{RConvec: rconv},
	}
	return cfg.Fingerprint(), func() (*hotspot.Model, error) {
		calls.Add(1)
		return hotspot.New(cfg)
	}
}

// TestModelCacheSingleFlightUnderRace hammers the cache with N goroutines ×
// M distinct fingerprints × R rounds and asserts exactly one compile per
// fingerprint. Run under -race (the CI race job does) this doubles as the
// concurrency soak for the cache.
func TestModelCacheSingleFlightUnderRace(t *testing.T) {
	const (
		goroutines = 16
		models     = 6
		rounds     = 5
	)
	c := NewModelCache(models)
	var compiles [models]atomic.Int64
	keys := make([]string, models)
	builds := make([]func() (*hotspot.Model, error), models)
	for i := 0; i < models; i++ {
		keys[i], builds[i] = buildFor(0.2+0.1*float64(i), &compiles[i])
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for r := 0; r < rounds; r++ {
				for _, i := range rng.Perm(models) {
					cm, _, err := c.Get(keys[i], builds[i])
					if err != nil {
						t.Errorf("get %d: %v", i, err)
						return
					}
					if cm.Fingerprint != keys[i] {
						t.Errorf("wrong entry for key %d", i)
						return
					}
					// Exercise the session pool: concurrent solves against
					// the shared model.
					se := cm.Session()
					p, err := cm.Model.PowerVector(map[string]float64{"IntReg": 1})
					if err != nil {
						t.Error(err)
						return
					}
					se.SteadyState(p)
					cm.Release(se)
				}
			}
		}(int64(g + 1))
	}
	wg.Wait()

	for i := range compiles {
		if n := compiles[i].Load(); n != 1 {
			t.Fatalf("fingerprint %d compiled %d times, want exactly 1 (single-flight)", i, n)
		}
	}
	st := c.Stats()
	total := int64(goroutines * models * rounds)
	if st.Hits+st.Misses != total {
		t.Fatalf("hits %d + misses %d != %d requests", st.Hits, st.Misses, total)
	}
	if st.Compiles != models || st.Misses != models {
		t.Fatalf("compiles %d misses %d, want %d each", st.Compiles, st.Misses, models)
	}
	if st.Evictions != 0 || st.Size != models {
		t.Fatalf("unexpected evictions %d size %d", st.Evictions, st.Size)
	}
}

// TestModelCacheLRUEviction verifies the eviction order and accounting.
func TestModelCacheLRUEviction(t *testing.T) {
	c := NewModelCache(2)
	var calls [3]atomic.Int64
	keys := make([]string, 3)
	builds := make([]func() (*hotspot.Model, error), 3)
	for i := 0; i < 3; i++ {
		keys[i], builds[i] = buildFor(0.5+0.1*float64(i), &calls[i])
	}
	get := func(i int) bool {
		_, hit, err := c.Get(keys[i], builds[i])
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}

	get(0) // {0}
	get(1) // {1,0}
	get(2) // {2,1} — evicts 0
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("after third insert: %+v", st)
	}
	if get(1) != true { // touch 1 → {1,2}
		t.Fatal("expected hit on resident entry 1")
	}
	if get(0) != false { // rebuild 0 → {0,1}, evicts 2
		t.Fatal("expected miss on evicted entry 0")
	}
	if calls[0].Load() != 2 {
		t.Fatalf("entry 0 compiled %d times, want 2 (evicted then rebuilt)", calls[0].Load())
	}
	if get(1) != true {
		t.Fatal("entry 1 should have survived (LRU kept the recently-touched entry)")
	}
	if get(2) != false {
		t.Fatal("entry 2 should have been the LRU victim")
	}
	st := c.Stats()
	// Invariant: resident entries = successful compiles − evictions.
	if int64(st.Size) != st.Compiles-st.Evictions {
		t.Fatalf("size %d != compiles %d − evictions %d", st.Size, st.Compiles, st.Evictions)
	}
}

// TestModelCacheBuildErrorNotCached: failed builds return the error to the
// caller and leave the key buildable.
func TestModelCacheBuildErrorNotCached(t *testing.T) {
	c := NewModelCache(4)
	var calls atomic.Int64
	failing := func() (*hotspot.Model, error) {
		calls.Add(1)
		return nil, fmt.Errorf("synthetic compile failure")
	}
	if _, _, err := c.Get("k", failing); err == nil {
		t.Fatal("error not propagated")
	}
	if _, _, err := c.Get("k", failing); err == nil {
		t.Fatal("error not propagated on retry")
	}
	if calls.Load() != 2 {
		t.Fatalf("failing build called %d times, want 2 (errors must not be cached)", calls.Load())
	}
	st := c.Stats()
	if st.CompileErrors != 2 || st.Size != 0 {
		t.Fatalf("stats: %+v", st)
	}
}
