package service

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/admission"
	"repro/internal/tstore"
)

// latencyRing records the most recent solve latencies (milliseconds) in a
// fixed-size ring and reports percentiles over that window. Bounded memory,
// lock held only for a copy.
type latencyRing struct {
	mu   sync.Mutex
	buf  []float64
	n    int // total observations ever
	next int
}

func newLatencyRing(size int) *latencyRing {
	if size < 16 {
		size = 16
	}
	return &latencyRing{buf: make([]float64, 0, size)}
}

func (l *latencyRing) add(ms float64) {
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, ms)
	} else {
		l.buf[l.next] = ms
		l.next = (l.next + 1) % cap(l.buf)
	}
	l.n++
	l.mu.Unlock()
}

// percentiles returns the requested percentiles (0..100) over the window,
// plus the window size and the total observation count ever recorded (the
// two diverge once the ring wraps; callers must not conflate them).
// Percentiles use nearest-rank (ceil) indexing: p's value is the smallest
// sample with at least p% of the window at or below it. Truncating toward
// zero instead would bias every percentile low — with 100 samples, p99
// would land on the 99th-smallest rather than the 100th.
func (l *latencyRing) percentiles(ps ...float64) (vals []float64, window, total int) {
	l.mu.Lock()
	cp := append([]float64(nil), l.buf...)
	total = l.n
	l.mu.Unlock()
	window = len(cp)
	vals = make([]float64, len(ps))
	if len(cp) == 0 {
		return vals, window, total
	}
	sort.Float64s(cp)
	for i, p := range ps {
		idx := int(math.Ceil(p/100*float64(len(cp)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(cp) {
			idx = len(cp) - 1
		}
		vals[i] = cp[idx]
	}
	return vals, window, total
}

// metrics aggregates service counters. All fields are safe for concurrent
// update. The in-flight and queued gauges live in the admission controller
// (exact under its mutex — the old atomic check-after-increment gauge could
// transiently overcount); Server.Stats sources them from there.
type metrics struct {
	mu       sync.Mutex
	requests map[string]int64 // per endpoint

	rejectedQueueFull   atomic.Int64
	rejectedRateLimited atomic.Int64
	deadlineExceeded    atomic.Int64
	badRequests         atomic.Int64
	solveErrors         atomic.Int64

	degradedSolves  atomic.Int64
	persistDeferred atomic.Int64

	solveLatency *latencyRing
}

func newMetrics() *metrics {
	return &metrics{requests: make(map[string]int64), solveLatency: newLatencyRing(1024)}
}

func (m *metrics) countRequest(endpoint string) {
	m.mu.Lock()
	m.requests[endpoint]++
	m.mu.Unlock()
}

func (m *metrics) requestCounts() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.requests))
	for k, v := range m.requests {
		out[k] = v
	}
	return out
}

// LatencyStats summarizes the solve-latency window. The percentiles cover
// only the Window most recent observations (the ring's contents); Total
// counts every observation ever recorded. Count is a deprecated alias of
// Total kept for existing dashboards — it was historically reported next to
// window-only percentiles as if it were their sample count.
type LatencyStats struct {
	Count  int     `json:"count"`
	Window int     `json:"window"`
	Total  int     `json:"total"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// SolverPathStats aggregates the per-path linear-solver counters over every
// resident cached model: which backends the models compiled onto, how
// backward-Euler steps split between direct factor-solves and the CG
// fallback, how often factorizations were reused, and the mean triangular /
// CG solve latency per step.
type SolverPathStats struct {
	// Backends counts resident models per solver backend name
	// ("dense", "cholesky", "sparse").
	Backends map[string]int `json:"backends"`
	// Factorizations counts numeric factorizations (compile-time plus one
	// per distinct backward-Euler step size per model).
	Factorizations int64 `json:"factorizations"`
	// FactorReuses counts backward-Euler operator requests served from a
	// model's (dt → factor) cache instead of factoring.
	FactorReuses int64 `json:"factor_reuses"`
	// DirectSteps and CGSteps split transient steps by solve path.
	DirectSteps int64 `json:"direct_steps"`
	CGSteps     int64 `json:"cg_steps"`
	// CGIterations totals conjugate-gradient iterations across CGSteps.
	CGIterations int64 `json:"cg_iterations"`
	// MeanStepSolveUS is the mean per-step solve latency in microseconds
	// (triangular solves on the direct paths, CG iteration on the
	// fallback), over all steps of all resident models.
	MeanStepSolveUS float64 `json:"mean_step_solve_us"`
	// Supernodes totals the supernodal panels across every resident
	// direct-backend factor; MaxPanelRows is the tallest panel among them
	// (the factor's working-set headline).
	Supernodes   int64 `json:"supernodes"`
	MaxPanelRows int   `json:"max_panel_rows"`
	// BatchWidths histograms batched solves by how many right-hand sides
	// each solved per factor traversal (buckets "1".."65+"), summed over
	// resident models. Sweep, replay-batch and scenario-grid traffic lands
	// here; single-state stepping does not.
	BatchWidths map[string]int64 `json:"batch_widths,omitempty"`
	// KernelSolves counts sparse triangular-solve kernel invocations by
	// register-block width ("1", "4", "8", "16"), summed over resident
	// models: how batched steps actually decomposed onto the wide kernels.
	KernelSolves map[string]int64 `json:"kernel_solves,omitempty"`
	// Reduced summarizes the reduced-order models among the residents;
	// absent when none compiled onto the reduced backend.
	Reduced *ReducedStats `json:"reduced,omitempty"`
}

// ReducedStats aggregates reduced-order solver state (DESIGN.md §10) over
// the resident models that carry a reduction basis.
type ReducedStats struct {
	// Models counts resident models on the reduced backend (including any
	// that have since tripped to their full fallback).
	Models int `json:"models"`
	// MaxOrder is the largest reduction basis among them.
	MaxOrder int `json:"max_order"`
	// MaxProjError is the worst a-priori projection error estimate
	// (relative residual of the basis-construction input columns).
	MaxProjError float64 `json:"max_proj_error"`
	// Steps counts backward-Euler steps answered by a reduced solve.
	Steps int64 `json:"steps"`
	// Fallbacks counts automatic trips to the full backend (construction
	// failures plus residual-gate violations).
	Fallbacks int64 `json:"fallbacks"`
}

// DegradeStats reports the graceful-degradation rungs (DESIGN.md §12): how
// often solves dropped to the reduced-order backend and how telemetry
// persistence fell back from synchronous to buffered-with-retry.
type DegradeStats struct {
	// DegradedSolves counts solves served by the reduced-order backend
	// because queue pressure crossed the degrade threshold.
	DegradedSolves int64 `json:"degraded_solves"`
	// PersistDeferred counts requests whose telemetry flush failed and was
	// handed to the background retrier (response carried persist_pending).
	PersistDeferred int64 `json:"persist_deferred"`
	// PersistRetries counts background flush attempts; PersistRecovered
	// counts retry episodes that reached a clean flush; PersistPending is
	// true while a retry loop is still working.
	PersistRetries   int64 `json:"persist_retries"`
	PersistRecovered int64 `json:"persist_recovered"`
	PersistPending   bool  `json:"persist_pending,omitempty"`
}

// Stats is the /v1/stats payload.
type Stats struct {
	Requests          map[string]int64 `json:"requests"`
	RejectedQueueFull int64            `json:"rejected_queue_full"`
	// RejectedRateLimited counts 429s from per-tenant token buckets.
	RejectedRateLimited int64           `json:"rejected_rate_limited"`
	DeadlineExceeded    int64           `json:"deadline_exceeded"`
	BadRequests         int64           `json:"bad_requests"`
	SolveErrors         int64           `json:"solve_errors"`
	InFlight            int64           `json:"in_flight"`
	Queued              int64           `json:"queued"`
	Cache               CacheStats      `json:"cache"`
	CacheHitRate        float64         `json:"cache_hit_rate"`
	SolveLatency        LatencyStats    `json:"solve_latency"`
	Solver              SolverPathStats `json:"solver"`
	// Degrade reports the graceful-degradation counters.
	Degrade DegradeStats `json:"degrade"`
	// Admission is the per-tenant admission snapshot: quotas' effect
	// (admitted/shed counts), queue-wait percentiles, and the live
	// pressure/draining state.
	Admission *admission.Snapshot `json:"admission,omitempty"`
	// Telemetry summarizes the attached tstore (absent when the server runs
	// without one).
	Telemetry *tstore.Stats `json:"telemetry,omitempty"`
}

func (m *metrics) snapshot(cache *ModelCache) Stats {
	ps, window, total := m.solveLatency.percentiles(50, 90, 99)
	cs := cache.Stats()
	hitRate := 0.0
	if total := cs.Hits + cs.Misses; total > 0 {
		hitRate = float64(cs.Hits) / float64(total)
	}
	solver := SolverPathStats{Backends: make(map[string]int)}
	for _, cm := range cache.Models() {
		solver.Backends[cm.Model.SolverBackend()]++
		st := cm.Model.SolverStats()
		solver.Factorizations += st.Factorizations
		solver.FactorReuses += st.FactorReuses
		solver.DirectSteps += st.DirectSteps
		solver.CGSteps += st.CGSteps
		solver.CGIterations += st.CGIterations
		solver.Supernodes += int64(st.Supernodes)
		if st.MaxPanelRows > solver.MaxPanelRows {
			solver.MaxPanelRows = st.MaxPanelRows
		}
		for bucket, count := range st.BatchWidths {
			if solver.BatchWidths == nil {
				solver.BatchWidths = make(map[string]int64)
			}
			solver.BatchWidths[bucket] += count
		}
		for width, count := range st.KernelSolves {
			if solver.KernelSolves == nil {
				solver.KernelSolves = make(map[string]int64)
			}
			solver.KernelSolves[width] += count
		}
		if steps := st.DirectSteps + st.CGSteps; steps > 0 {
			solver.MeanStepSolveUS += float64(st.StepSolveNanos) / 1e3
		}
		if st.ReducedOrder > 0 || st.ReducedFallbacks > 0 {
			if solver.Reduced == nil {
				solver.Reduced = &ReducedStats{}
			}
			r := solver.Reduced
			r.Models++
			if st.ReducedOrder > r.MaxOrder {
				r.MaxOrder = st.ReducedOrder
			}
			if st.ReducedProjError > r.MaxProjError {
				r.MaxProjError = st.ReducedProjError
			}
			r.Steps += st.ReducedSteps
			r.Fallbacks += st.ReducedFallbacks
		}
	}
	if steps := solver.DirectSteps + solver.CGSteps; steps > 0 {
		solver.MeanStepSolveUS /= float64(steps)
	}
	return Stats{
		Requests:            m.requestCounts(),
		RejectedQueueFull:   m.rejectedQueueFull.Load(),
		RejectedRateLimited: m.rejectedRateLimited.Load(),
		DeadlineExceeded:    m.deadlineExceeded.Load(),
		BadRequests:         m.badRequests.Load(),
		SolveErrors:         m.solveErrors.Load(),
		Cache:               cs,
		CacheHitRate:        hitRate,
		SolveLatency:        LatencyStats{Count: total, Window: window, Total: total, P50MS: ps[0], P90MS: ps[1], P99MS: ps[2]},
		Solver:              solver,
		Degrade: DegradeStats{
			DegradedSolves:  m.degradedSolves.Load(),
			PersistDeferred: m.persistDeferred.Load(),
		},
	}
}
