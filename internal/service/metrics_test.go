package service

import (
	"math"
	"testing"
)

// nearestRank is the reference definition: the smallest sample with at
// least p% of the window at or below it (sorted 1-based index ⌈p/100·n⌉).
func nearestRank(sorted []float64, p float64) float64 {
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// The ring's percentiles must follow nearest-rank indexing at every window
// size. The old truncating index int(p/100·(n-1)) biased p50/p90/p99 low —
// e.g. with n=2 it reported p50 as the minimum, and with n=100 it reported
// p99 as the 99th-smallest sample instead of the 100th.
func TestLatencyRingPercentilesNearestRank(t *testing.T) {
	for _, size := range []int{1, 2, 3, 10, 100, 128} {
		ring := newLatencyRing(size)
		// Distinct, descending values so any off-by-one index is visible.
		sorted := make([]float64, size)
		for i := 0; i < size; i++ {
			ring.add(float64(size - i)) // size, size-1, ..., 1
			sorted[i] = float64(i + 1)
		}
		// The ring capacity is at least 16, so nothing has wrapped and the
		// window holds exactly the `size` values added.
		vals, window, total := ring.percentiles(50, 90, 99, 0, 100)
		if total != size {
			t.Fatalf("size %d: total = %d, want %d", size, total, size)
		}
		if window != len(sorted) {
			t.Fatalf("size %d: window = %d, want %d", size, window, len(sorted))
		}
		for i, p := range []float64{50, 90, 99, 0, 100} {
			if want := nearestRank(sorted, p); vals[i] != want {
				t.Fatalf("size %d p%g = %g, want %g", size, p, vals[i], want)
			}
		}
	}
}

// Two hand-checked anchors, independent of the reference helper.
func TestLatencyRingPercentilesKnownValues(t *testing.T) {
	ring := newLatencyRing(16)
	ring.add(10)
	ring.add(20)
	vals, _, _ := ring.percentiles(50, 99)
	if vals[0] != 10 {
		t.Fatalf("p50 of {10,20} = %g, want 10 (⌈0.5·2⌉ = rank 1)", vals[0])
	}
	if vals[1] != 20 {
		t.Fatalf("p99 of {10,20} = %g, want 20 (⌈0.99·2⌉ = rank 2)", vals[1])
	}

	ring = newLatencyRing(128)
	for i := 1; i <= 100; i++ {
		ring.add(float64(i))
	}
	vals, _, _ = ring.percentiles(99)
	if vals[0] != 99 {
		t.Fatalf("p99 of 1..100 = %g, want 99 (⌈0.99·100⌉ = rank 99)", vals[0])
	}
}

// After the ring wraps, percentiles must cover only the resident window
// while the total keeps counting every observation ever added.
func TestLatencyRingWraparoundWindowVsTotal(t *testing.T) {
	const size = 16
	ring := newLatencyRing(size)
	// 3·size observations; only the last `size` (values 33..48) survive.
	for i := 1; i <= 3*size; i++ {
		ring.add(float64(i))
	}
	vals, window, total := ring.percentiles(0, 100, 50)
	if total != 3*size {
		t.Fatalf("total = %d, want %d", total, 3*size)
	}
	if window != size {
		t.Fatalf("window = %d, want %d", window, size)
	}
	if vals[0] != float64(2*size+1) {
		t.Fatalf("window min = %g, want %d (evicted entries must not count)", vals[0], 2*size+1)
	}
	if vals[1] != float64(3*size) {
		t.Fatalf("window max = %g, want %d", vals[1], 3*size)
	}
	if want := float64(2*size + size/2); vals[2] != want {
		t.Fatalf("window p50 = %g, want %g", vals[2], want)
	}
}
