package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/faultfs"
	"repro/internal/tstore"
)

// waitCond polls cond until it holds or the test deadline expires.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func postJSONTenant(t *testing.T, url, tenant string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func steadyReq() SteadyRequest {
	return SteadyRequest{
		Model: ModelSpec{Floorplan: "ev6", Package: "air-sink"},
		Power: map[string]float64{"IntReg": 2},
	}
}

// TestRateLimitRetryAfter: a tenant with an exhausted token bucket sheds
// with 429 and a Retry-After derived from the bucket refill, counted both
// globally and per tenant.
func TestRateLimitRetryAfter(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		Tenants: map[string]admission.Quota{"metered": {RatePerSec: 0.001, Burst: 1}},
	})
	resp, raw := postJSONTenant(t, ts.URL+"/v1/steady", "metered", steadyReq())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d: %s", resp.StatusCode, raw)
	}
	resp, raw = postJSONTenant(t, ts.URL+"/v1/steady", "metered", steadyReq())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: status %d, want 429: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limited 429 missing Retry-After header")
	}
	st := srv.Stats()
	if st.RejectedRateLimited != 1 {
		t.Fatalf("rejected_rate_limited = %d, want 1", st.RejectedRateLimited)
	}
	ten := st.Admission.Tenants["metered"]
	if ten.Admitted != 1 || ten.ShedRate != 1 {
		t.Fatalf("metered tenant stats: %+v", ten)
	}
	// A different tenant is unaffected by the metered tenant's empty bucket.
	if resp, raw := postJSONTenant(t, ts.URL+"/v1/steady", "other", steadyReq()); resp.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: status %d: %s", resp.StatusCode, raw)
	}
}

// TestOversizedTenantRejected: unbounded client-chosen tenant names would be
// an unbounded-memory vector, so they are a 400.
func TestOversizedTenantRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	long := make([]byte, maxTenantName+1)
	for i := range long {
		long[i] = 'a'
	}
	resp, raw := postJSONTenant(t, ts.URL+"/v1/steady", string(long), steadyReq())
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
	}
}

// TestTwoTenantOverload is the overload acceptance scenario: a heavy tenant
// bursting far past its queue bound is shed with 429 + Retry-After while a
// light tenant keeps succeeding with bounded queue waits, and its
// pressure-degraded solves are flagged and counted exactly.
func TestTwoTenantOverload(t *testing.T) {
	srv, ts := newTestServer(t, Config{
		MaxConcurrent: 2, QueueDepth: 8, DegradeThreshold: 0.1,
		Tenants: map[string]admission.Quota{
			"heavy": {MaxQueue: 4},
			"light": {Weight: 2},
		},
	})
	// Prime the model cache so overloaded requests measure queuing, not
	// compiles.
	if resp, raw := postJSON(t, ts.URL+"/v1/steady", steadyReq()); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: status %d: %s", resp.StatusCode, raw)
	}

	hold := occupySlots(t, srv, "hold", 2)
	released := false
	defer func() {
		if !released {
			hold()
		}
	}()

	type outcome struct {
		tenant   string
		status   int
		retry    string
		degraded bool
	}
	results := make(chan outcome, 64)
	var wg sync.WaitGroup
	post := func(tenant string, req SteadyRequest) {
		defer wg.Done()
		raw, err := json.Marshal(req)
		if err != nil {
			results <- outcome{tenant: tenant, status: -1}
			return
		}
		hr, err := http.NewRequest("POST", ts.URL+"/v1/steady", bytes.NewReader(raw))
		if err != nil {
			results <- outcome{tenant: tenant, status: -1}
			return
		}
		hr.Header.Set("Content-Type", "application/json")
		hr.Header.Set("X-Tenant", tenant)
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			results <- outcome{tenant: tenant, status: -1}
			return
		}
		var out SteadyResponse
		_ = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		results <- outcome{tenant, resp.StatusCode, resp.Header.Get("Retry-After"), out.Degraded}
	}

	light := steadyReq()
	light.Model.Serving = "auto" // degrade-eligible
	heavy := steadyReq()

	// First light wave queues while the slots are held, so every one of them
	// is granted under pressure and must degrade.
	wg.Add(4)
	for i := 0; i < 4; i++ {
		go post("light", light)
	}
	waitCond(t, "light wave queued", func() bool {
		return srv.admission.Stats().Tenants["light"].Queued == 4
	})

	// Heavy burst: 30 concurrent requests against a per-tenant queue bound
	// of 4 — the rest shed immediately.
	wg.Add(30)
	for i := 0; i < 30; i++ {
		go post("heavy", heavy)
	}
	waitCond(t, "heavy burst resolved", func() bool {
		ten := srv.admission.Stats().Tenants["heavy"]
		return ten.ShedQueue+int64(ten.Queued) == 30
	})

	// Release the slots and ride out the drain with a second light wave
	// (bounded concurrency so the light tenant never trips the global queue
	// bound: ≤4 light waiting + ≤4 heavy queued ≤ QueueDepth).
	hold()
	released = true
	wg.Add(4)
	for i := 0; i < 4; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < 2; j++ {
				wg.Add(1)
				post("light", light)
			}
		}()
	}
	wg.Wait()
	close(results)

	var lightOK, lightBad, heavyOK, heavySheds, degraded int
	for o := range results {
		switch o.tenant {
		case "light":
			if o.status == http.StatusOK {
				lightOK++
			} else {
				lightBad++
				t.Errorf("light request: status %d", o.status)
			}
		case "heavy":
			switch o.status {
			case http.StatusOK:
				heavyOK++
			case http.StatusTooManyRequests:
				heavySheds++
				if o.retry == "" {
					t.Error("heavy 429 missing Retry-After header")
				}
			default:
				t.Errorf("heavy request: status %d", o.status)
			}
		}
		if o.degraded {
			degraded++
		}
	}
	if lightOK != 12 || lightBad != 0 {
		t.Fatalf("light tenant: %d ok, %d failed, want 12/0", lightOK, lightBad)
	}
	if heavySheds == 0 || heavyOK+heavySheds != 30 {
		t.Fatalf("heavy tenant: %d ok + %d shed, want 30 with sheds > 0", heavyOK, heavySheds)
	}
	if degraded < 4 {
		t.Fatalf("degraded responses = %d, want at least the 4 queued light ones", degraded)
	}

	st := srv.Stats()
	lt, ht := st.Admission.Tenants["light"], st.Admission.Tenants["heavy"]
	if lt.Admitted != 12 || lt.ShedRate+lt.ShedQueue != 0 {
		t.Fatalf("light tenant stats: %+v", lt)
	}
	if ht.Admitted != int64(heavyOK) || ht.ShedQueue != int64(heavySheds) {
		t.Fatalf("heavy tenant stats %+v vs observed ok=%d shed=%d", ht, heavyOK, heavySheds)
	}
	if st.RejectedQueueFull != int64(heavySheds) {
		t.Fatalf("rejected_queue_full = %d, want %d", st.RejectedQueueFull, heavySheds)
	}
	if st.Degrade.DegradedSolves != int64(degraded) || lt.Degraded != int64(degraded) {
		t.Fatalf("degraded counters: stats %d, tenant %d, observed %d",
			st.Degrade.DegradedSolves, lt.Degraded, degraded)
	}
	// The light tenant's queue waits stayed bounded (well under the test's
	// own 5 s patience).
	if lt.QueueWaitP99MS >= 5000 {
		t.Fatalf("light p99 queue wait %.1f ms", lt.QueueWaitP99MS)
	}
}

// TestDegradeUnderPressure: a serving "auto" request granted while the queue
// sits at or past the degrade threshold lands on the reduced-order backend
// and says so.
func TestDegradeUnderPressure(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 2})

	release := occupySlots(t, srv, "hold", 1)
	// Park one raw waiter so the queue is half full (pressure 0.5 = default
	// threshold) when the HTTP request enqueues behind it.
	parked := make(chan *admission.Decision, 1)
	go func() {
		dec, err := srv.admission.Admit(context.Background(), "parker")
		if err != nil {
			t.Error(err)
		}
		parked <- dec
	}()
	waitCond(t, "parker queued", func() bool { return srv.admission.Queued() == 1 })

	req := steadyReq()
	req.Model.Serving = "auto"
	done := make(chan []byte, 1)
	status := make(chan int, 1)
	go func() {
		raw, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/steady", "application/json", bytes.NewReader(raw))
		if err != nil {
			status <- -1
			done <- nil
			return
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
		done <- buf.Bytes()
	}()
	waitCond(t, "auto request queued", func() bool { return srv.admission.Queued() == 2 })

	release()
	if dec := <-parked; dec != nil {
		dec.Release()
	}
	if code := <-status; code != http.StatusOK {
		t.Fatalf("auto request: status %d", code)
	}
	var out SteadyResponse
	decodeInto(t, <-done, &out)
	if !out.Degraded {
		t.Fatal("auto request under pressure not flagged degraded")
	}
	st := srv.Stats()
	if st.Degrade.DegradedSolves != 1 {
		t.Fatalf("degraded_solves = %d, want 1", st.Degrade.DegradedSolves)
	}
	if ten := st.Admission.Tenants["default"]; ten.Degraded != 1 {
		t.Fatalf("default tenant degraded = %d, want 1", ten.Degraded)
	}

	// The same request with a free queue runs the full backend undegraded.
	resp, raw := postJSON(t, ts.URL+"/v1/steady", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unloaded auto request: status %d: %s", resp.StatusCode, raw)
	}
	var calm SteadyResponse
	decodeInto(t, raw, &calm)
	if calm.Degraded {
		t.Fatal("unloaded auto request flagged degraded")
	}
}

// TestDeadlineWhileQueued: requests whose deadline expires while they wait
// for a slot answer 504 on the query and scenario-stream endpoints too.
func TestDeadlineWhileQueued(t *testing.T) {
	st, err := tstore.Open(t.TempDir(), tstore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, Store: st})

	release := occupySlots(t, srv, "hold", 1)
	defer release()

	resp, raw := getJSON(t, ts.URL+"/v1/query?series=x&timeout_ms=50")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("query: status %d, want 504: %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/scenario/stream", ScenarioRequest{
		Spec: json.RawMessage(sweepSpecJSON), TimeoutMS: 50,
	})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("scenario stream: status %d, want 504: %s", resp.StatusCode, raw)
	}
	if n := srv.Stats().DeadlineExceeded; n != 2 {
		t.Fatalf("deadline_exceeded = %d, want 2", n)
	}
}

// TestDrainShedsAndEvicts: BeginDrain evicts queued waiters with 503 +
// Retry-After, sheds every subsequent request the same way, flips /readyz
// to 503 while /healthz stays pure liveness (200), and leaves in-flight
// work untouched.
func TestDrainShedsAndEvicts(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 4})

	release := occupySlots(t, srv, "hold", 1)
	queued := make(chan outcomeHTTP, 1)
	go func() {
		queued <- doSteadyRaw(ts.URL, steadyReq())
	}()
	waitCond(t, "request queued", func() bool { return srv.admission.Queued() == 1 })

	srv.BeginDrain()
	if !srv.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	ev := <-queued
	if ev.status != http.StatusServiceUnavailable || ev.retry == "" {
		t.Fatalf("evicted waiter: status %d retry %q, want 503 with Retry-After", ev.status, ev.retry)
	}
	nw := doSteadyRaw(ts.URL, steadyReq())
	if nw.status != http.StatusServiceUnavailable || nw.retry == "" {
		t.Fatalf("post-drain request: status %d retry %q, want 503 with Retry-After", nw.status, nw.retry)
	}
	// Liveness stays green while draining — the process is healthy, just not
	// accepting work; restart orchestrators must not kill it.
	resp, raw := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: status %d", resp.StatusCode)
	}
	var hb map[string]string
	decodeInto(t, raw, &hb)
	if hb["status"] != "ok" {
		t.Fatalf("healthz status %q, want ok (liveness is drain-agnostic)", hb["status"])
	}
	// Readiness goes 503 + Retry-After so fleets/load balancers stop routing.
	resp, raw = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("readyz while draining: missing Retry-After")
	}
	var rb map[string]string
	decodeInto(t, raw, &rb)
	if rb["status"] != "draining" {
		t.Fatalf("readyz status %q, want draining", rb["status"])
	}
	// The in-flight slot holder finishes normally.
	release()
	if got := srv.admission.InFlight(); got != 0 {
		t.Fatalf("in-flight after release = %d", got)
	}
}

type outcomeHTTP struct {
	status int
	retry  string
	body   []byte
}

func doSteadyRaw(url string, req SteadyRequest) outcomeHTTP {
	raw, err := json.Marshal(req)
	if err != nil {
		return outcomeHTTP{status: -1}
	}
	resp, err := http.Post(url+"/v1/steady", "application/json", bytes.NewReader(raw))
	if err != nil {
		return outcomeHTTP{status: -1}
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return outcomeHTTP{resp.StatusCode, resp.Header.Get("Retry-After"), buf.Bytes()}
}

// TestServeGracefulShutdown: cancelling Serve's context drains — the
// in-flight solve completes and Serve returns nil.
func TestServeGracefulShutdown(t *testing.T) {
	srv := New(Config{MaxConcurrent: 2})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ctx, addr) }()
	waitCond(t, "server listening", func() bool {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	// A scenario grid in flight across the shutdown must run to completion.
	inflight := make(chan outcomeHTTP, 1)
	go func() {
		raw, _ := json.Marshal(ScenarioRequest{Spec: json.RawMessage(sweepSpecJSON)})
		resp, err := http.Post("http://"+addr+"/v1/scenario", "application/json", bytes.NewReader(raw))
		if err != nil {
			inflight <- outcomeHTTP{status: -1}
			return
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		inflight <- outcomeHTTP{status: resp.StatusCode, body: buf.Bytes()}
	}()
	waitCond(t, "scenario in flight", func() bool { return srv.admission.InFlight() >= 1 })

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
	res := <-inflight
	if res.status != http.StatusOK {
		t.Fatalf("in-flight scenario: status %d: %s", res.status, res.body)
	}
	var out ScenarioResponse
	decodeInto(t, res.body, &out)
	if len(out.Cells) != 12 {
		t.Fatalf("in-flight scenario finished with %d cells, want 12", len(out.Cells))
	}
	if !srv.Draining() {
		t.Fatal("server not draining after shutdown")
	}
}

// TestPersistDegradedRecovery: a disk fault during a transient persist
// degrades the request to persist_pending instead of failing it, the
// background retrier recovers once the disk heals, and the acknowledged rows
// become queryable.
func TestPersistDegradedRecovery(t *testing.T) {
	ffs := faultfs.New(tstore.OSFS(), 1)
	st, err := tstore.Open(t.TempDir(), tstore.Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, ts := newTestServer(t, Config{Store: st})

	ffs.SetDiskFull(true)
	tr := testTrace(t)
	resp, raw := postJSON(t, ts.URL+"/v1/transient", TransientRequest{
		Model:   ModelSpec{Floorplan: "ev6", Package: "air-sink"},
		Trace:   traceSpec(tr),
		Persist: "runs/degraded",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("transient with failing disk: status %d: %s", resp.StatusCode, raw)
	}
	var out TransientResponse
	decodeInto(t, raw, &out)
	if !out.PersistPending || out.Persist != "runs/degraded" || out.PersistedRows != 0 {
		t.Fatalf("want persist_pending for runs/degraded with 0 durable rows, got %+v",
			struct {
				P string
				R int64
				B bool
			}{out.Persist, out.PersistedRows, out.PersistPending})
	}
	if d := srv.Stats().Degrade; d.PersistDeferred != 1 {
		t.Fatalf("persist_deferred = %d, want 1", d.PersistDeferred)
	}

	// Disk heals; the retrier flushes the staged rows in the background.
	ffs.SetDiskFull(false)
	waitCond(t, "retrier recovery", func() bool {
		d := srv.Stats().Degrade
		return d.PersistRecovered >= 1 && !d.PersistPending
	})
	block := tr.Names[0]
	resp, raw = getJSON(t, ts.URL+"/v1/query?series=runs/degraded/"+block)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after recovery: status %d: %s", resp.StatusCode, raw)
	}
	var q QueryResponse
	decodeInto(t, raw, &q)
	if len(q.Rows) == 0 {
		t.Fatal("no rows recovered after the disk healed")
	}
}

// TestScenarioServingValidation: the scenario endpoints validate the serving
// hint like ModelSpec does.
func TestScenarioServingValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/scenario", ScenarioRequest{
		Spec: json.RawMessage(sweepSpecJSON), Serving: "bogus",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
	}
}
