package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/trace"
	"repro/internal/tstore"
)

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, []byte(sb.String())
}

func newStoreServer(t *testing.T) (*tstore.Store, *Server, string) {
	t.Helper()
	st, err := tstore.Open(t.TempDir(), tstore.Options{FlushRows: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, ts := newTestServer(t, Config{Store: st})
	return st, srv, ts.URL
}

// TestQueryWithoutStore: every telemetry endpoint answers 503 when the
// server has no store, and persist requests answer 400.
func TestQueryWithoutStore(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/query?series=x", "/v1/query/stream?series=x", "/v1/query/series"} {
		resp, raw := getJSON(t, ts.URL+path)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, raw)
		}
	}
	resp, raw := postJSON(t, ts.URL+"/v1/transient", TransientRequest{
		Model:   ModelSpec{Floorplan: "ev6", Package: "air-sink"},
		Trace:   traceSpec(testTrace(t)),
		Persist: "run1",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("persist without store: status %d: %s", resp.StatusCode, raw)
	}
}

// TestTransientPersistAndQuery is the service-level round trip: a transient
// replay persisted into the store reads back bit-identically through
// GET /v1/query, in both buffered and NDJSON-stream form.
func TestTransientPersistAndQuery(t *testing.T) {
	_, _, url := newStoreServer(t)
	resp, raw := postJSON(t, url+"/v1/transient", TransientRequest{
		Model:   ModelSpec{Floorplan: "ev6", Package: "air-sink"},
		Trace:   traceSpec(testTrace(t)),
		Persist: "runs/t1",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out TransientResponse
	decodeInto(t, raw, &out)
	wantRows := int64(len(out.Points)) * int64(len(out.Blocks))
	if out.Persist != "runs/t1" || out.PersistedRows != wantRows {
		t.Fatalf("persist %q rows %d, want runs/t1 with %d", out.Persist, out.PersistedRows, wantRows)
	}

	// Buffered query: raw rows must equal the response's sampled series.
	block := out.Blocks[0]
	bi := 0
	resp, raw = getJSON(t, url+"/v1/query?series=runs/t1/"+block)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, raw)
	}
	var q QueryResponse
	decodeInto(t, raw, &q)
	if len(q.Rows) != len(out.Points) {
		t.Fatalf("%d persisted rows, response had %d points", len(q.Rows), len(out.Points))
	}
	for i, p := range out.Points {
		if q.Rows[i].TNs != tstore.Nanos(p.TimeS) || q.Rows[i].V != p.BlockC[bi] {
			t.Fatalf("row %d: got %+v, want t=%d v=%v", i, q.Rows[i], tstore.Nanos(p.TimeS), p.BlockC[bi])
		}
	}

	// Downsampled query in float-seconds form.
	resp, raw = getJSON(t, url+"/v1/query?series=runs/t1/"+block+"&downsample_s=0.002")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("downsample: status %d: %s", resp.StatusCode, raw)
	}
	var dq QueryResponse
	decodeInto(t, raw, &dq)
	if len(dq.Buckets) == 0 || dq.DownsampleNs != 2_000_000 {
		t.Fatalf("downsample response: %d buckets, downsample %d", len(dq.Buckets), dq.DownsampleNs)
	}
	var n int64
	for _, b := range dq.Buckets {
		n += b.Count
		if b.Min > b.Max || b.Mean < b.Min || b.Mean > b.Max {
			t.Fatalf("inconsistent bucket %+v", b)
		}
	}
	if n != int64(len(out.Points)) {
		t.Fatalf("buckets cover %d rows, want %d", n, len(out.Points))
	}

	// NDJSON stream decodes through the shared trace schema and matches the
	// buffered reply.
	sresp, err := http.Get(url + "/v1/query/stream?series=runs/t1/" + block)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	tel, err := trace.ReadTelemetry(sresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if tel.Header.Series != "runs/t1/"+block || len(tel.Rows) != len(q.Rows) {
		t.Fatalf("stream header %+v with %d rows, want %d", tel.Header, len(tel.Rows), len(q.Rows))
	}
	for i := range q.Rows {
		if tel.Rows[i] != q.Rows[i] {
			t.Fatalf("stream row %d: %+v != %+v", i, tel.Rows[i], q.Rows[i])
		}
	}

	// Series listing, with and without a prefix filter.
	resp, raw = getJSON(t, url+"/v1/query/series?prefix=runs/t1/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("series: status %d: %s", resp.StatusCode, raw)
	}
	var list SeriesListResponse
	decodeInto(t, raw, &list)
	if len(list.Series) != len(out.Blocks) {
		t.Fatalf("%d listed series, want %d", len(list.Series), len(out.Blocks))
	}
	if list.Store.Rows != wantRows {
		t.Fatalf("store stats claim %d rows, want %d", list.Store.Rows, wantRows)
	}
	resp, raw = getJSON(t, url+"/v1/query/series?prefix=no/such/")
	decodeInto(t, raw, &list)
	if resp.StatusCode != http.StatusOK || len(list.Series) != 0 {
		t.Fatalf("prefix miss: status %d, %d series", resp.StatusCode, len(list.Series))
	}

	// Stats surface the store summary.
	resp, raw = getJSON(t, url+"/v1/stats")
	var stats Stats
	decodeInto(t, raw, &stats)
	if resp.StatusCode != http.StatusOK || stats.Telemetry == nil || stats.Telemetry.Rows != wantRows {
		t.Fatalf("stats telemetry: %+v", stats.Telemetry)
	}
}

// TestScenarioPersistAndQuery: the scenario endpoints persist sensed
// telemetry under the run prefix and report the row count in both the
// buffered response and the streaming trailer.
func TestScenarioPersistAndQuery(t *testing.T) {
	_, _, url := newStoreServer(t)
	spec := `{
		"name": "persist-grid",
		"interval": 1e-3,
		"emergency_c": 1e6,
		"phases": [{"duration": 0.03,
			"pulse": {"block": "IntReg", "peak_w": 3, "on_s": 10e-3, "off_s": 10e-3}}],
		"packages": [{"label": "air", "kind": "air-sink", "rconv": 1.0}],
		"sensors": [{"block": "IntReg"}],
		"policies": {"trigger_c": [1e6], "sample_s": [2e-3], "perf_factor": [0.5]}
	}`
	resp, raw := postJSON(t, url+"/v1/scenario", ScenarioRequest{
		Spec: json.RawMessage(spec), Persist: "grid/a",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out ScenarioResponse
	decodeInto(t, raw, &out)
	if out.Persist != "grid/a" || out.PersistedRows == 0 {
		t.Fatalf("persist %q rows %d", out.Persist, out.PersistedRows)
	}
	// One cell, one sensor, sampled every other step starting at 0.
	wantRows := int64((out.Steps + 1) / 2)
	if out.PersistedRows != wantRows {
		t.Fatalf("%d persisted rows, want %d (steps=%d)", out.PersistedRows, wantRows, out.Steps)
	}
	resp, raw = getJSON(t, url+"/v1/query?series=grid/a/cell0/IntReg")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: status %d: %s", resp.StatusCode, raw)
	}
	var q QueryResponse
	decodeInto(t, raw, &q)
	if int64(len(q.Rows)) != wantRows {
		t.Fatalf("%d rows read back, want %d", len(q.Rows), wantRows)
	}

	// Streaming flavor: trailer carries the persist summary.
	sresp, err := http.Post(url+"/v1/scenario/stream", "application/json",
		strings.NewReader(fmt.Sprintf(`{"spec": %s, "persist": "grid/b"}`, spec)))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	dec := json.NewDecoder(sresp.Body)
	var trailer ScenarioTrailerJSON
	for {
		var line json.RawMessage
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		var probe struct {
			Done *bool `json:"done"`
		}
		decodeInto(t, line, &probe)
		if probe.Done != nil {
			decodeInto(t, line, &trailer)
			break
		}
	}
	if trailer.Persist != "grid/b" || trailer.PersistedRows != wantRows {
		t.Fatalf("stream trailer %+v, want grid/b with %d rows", trailer, wantRows)
	}
}

// TestQueryParamAndErrorHandling covers the 4xx surface: parameter
// validation, unknown series, bad run names, and the limit/truncation
// contract.
func TestQueryParamAndErrorHandling(t *testing.T) {
	st, _, url := newStoreServer(t)
	for i := 0; i < 10; i++ {
		if err := st.Append("s", int64(i)*1000, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct {
		path string
		code int
	}{
		{"/v1/query", http.StatusBadRequest},                           // missing series
		{"/v1/query?series=s&from_ns=zzz", http.StatusBadRequest},      // bad int
		{"/v1/query?series=s&to_s=abc", http.StatusBadRequest},         // bad float
		{"/v1/query?series=s&downsample_ns=-5", http.StatusBadRequest}, // negative downsample
		{"/v1/query?series=s&limit=-1", http.StatusBadRequest},
		{"/v1/query?series=s&limit=zz", http.StatusBadRequest},
		{"/v1/query?series=s&timeout_ms=zz", http.StatusBadRequest},
		{"/v1/query?series=s&from_ns=5&to_ns=5", http.StatusBadRequest}, // empty range
		{"/v1/query?series=nope", http.StatusNotFound},
		{"/v1/query/stream?series=nope", http.StatusNotFound},
	} {
		resp, raw := getJSON(t, url+tc.path)
		if resp.StatusCode != tc.code {
			t.Fatalf("%s: status %d, want %d: %s", tc.path, resp.StatusCode, tc.code, raw)
		}
	}

	// Bad persist run names are rejected before any solve work.
	for _, bad := range []string{"has space", "a//b", "/lead", "trail/", strings.Repeat("x", 200)} {
		resp, raw := postJSON(t, url+"/v1/transient", TransientRequest{
			Model:   ModelSpec{Floorplan: "ev6", Package: "air-sink"},
			Trace:   traceSpec(testTrace(t)),
			Persist: bad,
		})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("persist %q: status %d: %s", bad, resp.StatusCode, raw)
		}
	}

	// limit truncates and says so; explicit ns range and row values hold.
	resp, raw := getJSON(t, url+"/v1/query?series=s&from_ns=2000&to_ns=9000&limit=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("limit query: status %d: %s", resp.StatusCode, raw)
	}
	var q QueryResponse
	decodeInto(t, raw, &q)
	if !q.Truncated || len(q.Rows) != 3 || q.Rows[0].TNs != 2000 || q.Rows[2].V != 4 {
		t.Fatalf("limit query: truncated=%v rows=%+v", q.Truncated, q.Rows)
	}
	// A limit above the count leaves the result whole.
	resp, raw = getJSON(t, url+"/v1/query?series=s&limit=100")
	var wide QueryResponse
	decodeInto(t, raw, &wide)
	if resp.StatusCode != http.StatusOK || wide.Truncated || len(wide.Rows) != 10 {
		t.Fatalf("wide limit: status %d truncated=%v rows=%d", resp.StatusCode, wide.Truncated, len(wide.Rows))
	}

	// The stream honors limit too; its trailer counts emitted lines so
	// ReadTelemetry still verifies completeness.
	sresp, err := http.Get(url + "/v1/query/stream?series=s&limit=4")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	tel, err := trace.ReadTelemetry(sresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(tel.Rows) != 4 || tel.Trailer.Rows != 4 {
		t.Fatalf("stream limit: %d rows, trailer %+v", len(tel.Rows), tel.Trailer)
	}

	// Endpoint counters registered the traffic.
	resp, raw = getJSON(t, url+"/v1/stats")
	var stats Stats
	decodeInto(t, raw, &stats)
	if resp.StatusCode != http.StatusOK || stats.Requests["query"] == 0 || stats.Requests["query_stream"] == 0 {
		t.Fatalf("request counters: %+v", stats.Requests)
	}
}
