package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/floorplan"
	"repro/internal/trace"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func decodeInto(t *testing.T, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("decode %s: %v", raw, err)
	}
}

func TestSteadyEndpointAndCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	req := SteadyRequest{
		Model: ModelSpec{Floorplan: "ev6", Package: "oil-silicon", Rconv: 1.0},
		Power: map[string]float64{"IntReg": 2.0, "Dcache": 1.2},
	}
	resp, raw := postJSON(t, ts.URL+"/v1/steady", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out SteadyResponse
	decodeInto(t, raw, &out)
	if out.Cache != "miss" {
		t.Fatalf("first request cache = %q", out.Cache)
	}
	if out.BlockC["IntReg"] < 46 || out.BlockC["IntReg"] > 400 {
		t.Fatalf("implausible IntReg temperature %.1f °C", out.BlockC["IntReg"])
	}
	if out.HottestBlock != "IntReg" {
		t.Fatalf("hottest = %q, want IntReg", out.HottestBlock)
	}

	resp, raw = postJSON(t, ts.URL+"/v1/steady", req)
	var warm SteadyResponse
	decodeInto(t, raw, &warm)
	if resp.StatusCode != http.StatusOK || warm.Cache != "hit" {
		t.Fatalf("second request: status %d cache %q", resp.StatusCode, warm.Cache)
	}
	// Warm-started solve must agree with the cold one.
	for name, v := range out.BlockC {
		if d := math.Abs(v - warm.BlockC[name]); d > 1e-9 {
			t.Fatalf("block %s: cold %.12g vs warm %.12g", name, v, warm.BlockC[name])
		}
	}
	st := srv.Stats()
	if st.Cache.Compiles != 1 || st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache stats: %+v", st.Cache)
	}
	if st.SolveLatency.Count < 2 {
		t.Fatalf("latency samples %d", st.SolveLatency.Count)
	}
}

// testTrace builds a small pulse trace on the EV6.
func testTrace(t *testing.T) *trace.PowerTrace {
	t.Helper()
	tr, err := trace.PulseTrain(floorplan.EV6().Names(), "IntReg", 3.0, 4e-3, 4e-3, 1e-3, 2)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func traceSpec(tr *trace.PowerTrace) *TraceSpec {
	rows := make([][]float64, len(tr.Rows))
	for i, r := range tr.Rows {
		rows[i] = append([]float64(nil), r...)
	}
	return &TraceSpec{Names: tr.Names, Interval: tr.Interval, Rows: rows}
}

func TestTransientStreamedMatchesInlineBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := testTrace(t)

	// Inline JSON request.
	resp, raw := postJSON(t, ts.URL+"/v1/transient", TransientRequest{
		Model: ModelSpec{Floorplan: "ev6", Package: "air-sink"},
		Trace: traceSpec(tr),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inline: status %d: %s", resp.StatusCode, raw)
	}
	var inline TransientResponse
	decodeInto(t, raw, &inline)

	// The same trace streamed as a raw ptrace body.
	var body bytes.Buffer
	if err := tr.Write(&body); err != nil {
		t.Fatal(err)
	}
	streamResp, err := http.Post(
		ts.URL+"/v1/transient?floorplan=ev6&package=air-sink",
		"text/plain", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer streamResp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(streamResp.Body)
	if streamResp.StatusCode != http.StatusOK {
		t.Fatalf("streamed: status %d: %s", streamResp.StatusCode, buf.Bytes())
	}
	var streamed TransientResponse
	decodeInto(t, buf.Bytes(), &streamed)

	if inline.Steps != streamed.Steps {
		t.Fatalf("steps: inline %d vs streamed %d", inline.Steps, streamed.Steps)
	}
	for name, v := range inline.FinalC {
		if streamed.FinalC[name] != v {
			t.Fatalf("block %s final: inline %.17g vs streamed %.17g (not bit-identical)",
				name, v, streamed.FinalC[name])
		}
	}
	for name, v := range inline.PeakC {
		if streamed.PeakC[name] != v {
			t.Fatalf("block %s peak: inline %.17g vs streamed %.17g", name, v, streamed.PeakC[name])
		}
	}
	if len(inline.Points) != len(streamed.Points) {
		t.Fatalf("points: %d vs %d", len(inline.Points), len(streamed.Points))
	}
	for i := range inline.Points {
		for b := range inline.Points[i].BlockC {
			if inline.Points[i].BlockC[b] != streamed.Points[i].BlockC[b] {
				t.Fatalf("point %d block %d differs", i, b)
			}
		}
	}
}

func TestTransientNDJSONStreamAndMaxPoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := testTrace(t)
	var body bytes.Buffer
	hdr, _ := json.Marshal(map[string]any{"names": tr.Names, "interval": tr.Interval})
	body.Write(hdr)
	body.WriteByte('\n')
	for _, row := range tr.Rows {
		raw, _ := json.Marshal(row)
		body.Write(raw)
		body.WriteByte('\n')
	}
	resp, err := http.Post(
		ts.URL+"/v1/transient?floorplan=ev6&package=air-sink&max_points=4",
		"application/x-ndjson", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, buf.Bytes())
	}
	var out TransientResponse
	decodeInto(t, buf.Bytes(), &out)
	if len(out.Points) != 4 {
		t.Fatalf("max_points ignored: %d points", len(out.Points))
	}
	if out.Steps != len(tr.Rows) {
		t.Fatalf("steps %d, want %d", out.Steps, len(tr.Rows))
	}
}

// TestTransientMaxPointsOne: max_points=1 must return just the final point
// (regression: the stride computation divided by maxPoints-1 and indexed
// with int(NaN)).
func TestTransientMaxPointsOne(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := testTrace(t)
	resp, raw := postJSON(t, ts.URL+"/v1/transient", TransientRequest{
		Model:     ModelSpec{Floorplan: "ev6", Package: "air-sink"},
		Trace:     traceSpec(tr),
		MaxPoints: 1,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out TransientResponse
	decodeInto(t, raw, &out)
	if len(out.Points) != 1 {
		t.Fatalf("%d points, want 1", len(out.Points))
	}
	final := out.FinalC[out.Blocks[0]]
	if out.Points[0].BlockC[0] != final {
		t.Fatalf("single point %.6f is not the final state %.6f", out.Points[0].BlockC[0], final)
	}
}

func TestTransientWarmStart(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := testTrace(t)
	resp, raw := postJSON(t, ts.URL+"/v1/transient", TransientRequest{
		Model:     ModelSpec{Floorplan: "ev6", Package: "air-sink"},
		Trace:     traceSpec(tr),
		WarmStart: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out TransientResponse
	decodeInto(t, raw, &out)
	// Warm-started replay begins at the average-power steady state, so the
	// first sampled temperature is well above ambient.
	if out.Points[0].BlockC[floorplan.EV6().Index("IntReg")] < 46 {
		t.Fatalf("warm start ignored: initial IntReg %.1f °C", out.Points[0].BlockC[floorplan.EV6().Index("IntReg")])
	}
}

func TestSweepMixedScenarios(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := testTrace(t)
	req := SweepRequest{Scenarios: []SweepScenario{
		{Model: ModelSpec{Floorplan: "ev6", Package: "air-sink"}, Power: map[string]float64{"IntReg": 2}},
		{Model: ModelSpec{Floorplan: "ev6", Package: "oil-silicon", Rconv: 1.0}, Trace: traceSpec(tr)},
		{Model: ModelSpec{Floorplan: "nope"}, Power: map[string]float64{"IntReg": 2}},
		{Model: ModelSpec{Floorplan: "ev6"}}, // neither power nor trace
	}}
	resp, raw := postJSON(t, ts.URL+"/v1/sweep", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out SweepResponse
	decodeInto(t, raw, &out)
	if len(out.Results) != 4 {
		t.Fatalf("%d results", len(out.Results))
	}
	if out.Results[0].Error != "" || out.Results[0].BlockC["IntReg"] < 46 {
		t.Fatalf("steady scenario: %+v", out.Results[0])
	}
	if out.Results[1].Error != "" || len(out.Results[1].PeakC) == 0 {
		t.Fatalf("trace scenario: %+v", out.Results[1])
	}
	if out.Results[2].Error == "" || out.Results[3].Error == "" {
		t.Fatalf("bad scenarios not reported: %+v %+v", out.Results[2], out.Results[3])
	}
}

func TestInvertRecoversPower(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	model := ModelSpec{Floorplan: "ev6", Package: "oil-silicon", Rconv: 1.0}
	injected := map[string]float64{"IntReg": 2.0, "Dcache": 1.0, "Icache": 3.0}

	_, raw := postJSON(t, ts.URL+"/v1/steady", SteadyRequest{Model: model, Power: injected})
	var steady SteadyResponse
	decodeInto(t, raw, &steady)

	resp, raw := postJSON(t, ts.URL+"/v1/invert", InvertRequest{
		Model: model, ObservedC: steady.BlockC, Lambda: 1e-9,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out InvertResponse
	decodeInto(t, raw, &out)
	for _, name := range floorplan.EV6().Names() {
		want := injected[name]
		if d := math.Abs(out.PowerW[name] - want); d > 1e-3 {
			t.Fatalf("block %s: recovered %.4f W, injected %.4f W", name, out.PowerW[name], want)
		}
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		path string
		body string
	}{
		{"/v1/steady", `{"model":{"floorplan":"nope"},"power":{"a":1}}`},
		{"/v1/steady", `{"model":{"floorplan":"ev6"},"power":{"NotABlock":1}}`},
		{"/v1/steady", `{"model":{"floorplan":"ev6"},"power":{}}`},
		{"/v1/steady", `{"unknown_field":1}`},
		{"/v1/steady", `not json`},
		{"/v1/transient", `{"model":{"floorplan":"ev6"}}`},
		{"/v1/transient", `{"model":{"floorplan":"ev6"},"trace":{"names":["IntReg"],"interval":0.001,"rows":[]}}`},
		{"/v1/transient", `{"model":{"floorplan":"ev6"},"trace":{"names":["NotABlock"],"interval":0.001,"rows":[[1]]}}`},
		{"/v1/transient", `{"model":{"floorplan":"ev6"},"trace":{"names":["IntReg"],"interval":-1,"rows":[[1]]}}`},
		{"/v1/sweep", `{"scenarios":[]}`},
		{"/v1/invert", `{"model":{"floorplan":"ev6"},"observed_c":{}}`},
		{"/v1/invert", `{"model":{"floorplan":"ev6"},"observed_c":{"NotABlock":50}}`},
		{"/v1/invert", `{"model":{"floorplan":"ev6"},"observed_c":{"IntReg":50}}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %s: status %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
}

// occupySlots admits n held requests so the test controls slot availability;
// the returned func releases them.
func occupySlots(t *testing.T, srv *Server, tenant string, n int) func() {
	t.Helper()
	decs := make([]interface{ Release() }, 0, n)
	for i := 0; i < n; i++ {
		dec, err := srv.admission.Admit(context.Background(), tenant)
		if err != nil {
			t.Fatalf("occupy slot %d: %v", i, err)
		}
		decs = append(decs, dec)
	}
	return func() {
		for _, d := range decs {
			d.Release()
		}
	}
}

func TestBackpressureAndDeadline(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1, DefaultTimeout: 5 * time.Second})

	// Occupy the only solve slot.
	release := occupySlots(t, srv, "hold", 1)
	defer release()

	req := SteadyRequest{
		Model:     ModelSpec{Floorplan: "ev6", Package: "air-sink"},
		Power:     map[string]float64{"IntReg": 2},
		TimeoutMS: 100,
	}

	// First request queues, then times out → 504.
	done := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/steady", req)
		done <- resp.StatusCode
	}()
	// Wait until it is queued, then a second request must shed with 429.
	deadline := time.Now().Add(2 * time.Second)
	for srv.admission.Queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/steady", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full status %d: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}
	if code := <-done; code != http.StatusGatewayTimeout {
		t.Fatalf("queued request status %d, want 504", code)
	}
	st := srv.Stats()
	if st.RejectedQueueFull != 1 || st.DeadlineExceeded != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %v %v", err, resp)
	}
	resp.Body.Close()
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %v %v", err, resp)
	}
	resp.Body.Close()

	postJSON(t, ts.URL+"/v1/steady", SteadyRequest{
		Model: ModelSpec{Floorplan: "ev6", Package: "air-sink"},
		Power: map[string]float64{"IntReg": 2},
	})
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Requests["steady"] != 1 || st.Cache.Compiles != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestStatsSolverPath: after a transient request the stats must attribute
// the steps to a solver path — the EV6 model auto-selects the sparse direct
// Cholesky backend, so every step is a factor-solve: one factorization, no
// CG fallback, a positive mean solve latency.
func TestStatsSolverPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr := testTrace(t)
	resp, raw := postJSON(t, ts.URL+"/v1/transient", TransientRequest{
		Model: ModelSpec{Floorplan: "ev6", Package: "oil-silicon", Rconv: 0.3, Secondary: true},
		Trace: traceSpec(tr),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("transient: status %d: %s", resp.StatusCode, raw)
	}
	var tresp TransientResponse
	decodeInto(t, raw, &tresp)

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st Stats
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sv := st.Solver
	if sv.Backends["cholesky"] != 1 {
		t.Fatalf("solver backends: %+v, want one cholesky model", sv.Backends)
	}
	if sv.DirectSteps != int64(tresp.Steps) {
		t.Fatalf("direct steps %d, want %d (every replay step is a factor-solve)", sv.DirectSteps, tresp.Steps)
	}
	if sv.CGSteps != 0 {
		t.Fatalf("cg steps %d, want 0", sv.CGSteps)
	}
	// One eager factorization at compile plus one for the replay's dt.
	if sv.Factorizations != 2 {
		t.Fatalf("factorizations %d, want 2", sv.Factorizations)
	}
	if sv.MeanStepSolveUS <= 0 {
		t.Fatalf("mean step solve latency %g, want > 0", sv.MeanStepSolveUS)
	}
	if sv.Supernodes <= 0 || sv.MaxPanelRows <= 0 {
		t.Fatalf("supernodal factor stats missing: supernodes=%d max_panel_rows=%d", sv.Supernodes, sv.MaxPanelRows)
	}

	// A second identical request reuses the cached factor.
	resp, raw = postJSON(t, ts.URL+"/v1/transient", TransientRequest{
		Model: ModelSpec{Floorplan: "ev6", Package: "oil-silicon", Rconv: 0.3, Secondary: true},
		Trace: traceSpec(tr),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("transient 2: status %d: %s", resp.StatusCode, raw)
	}
	sresp2, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp2.Body.Close()
	var st2 Stats
	if err := json.NewDecoder(sresp2.Body).Decode(&st2); err != nil {
		t.Fatal(err)
	}
	if st2.Solver.Factorizations != 2 {
		t.Fatalf("second request re-factored: %d factorizations", st2.Solver.Factorizations)
	}
}

func TestStreamedTransientBadModelParams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, q := range []string{"rconv=abc", "ambient_c=x", "max_points=x", "timeout_ms=x", "floorplan=grid:0x9", "floorplan=grid:9"} {
		resp, err := http.Post(ts.URL+"/v1/transient?"+q, "text/plain",
			strings.NewReader("# interval 1e-3 s\nIntReg\n1\n"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestGridFloorplanSpec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/steady", SteadyRequest{
		Model: ModelSpec{Floorplan: "grid:4x4", Package: "oil-silicon"},
		Power: map[string]float64{"c0_0": 1.0},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
}

func TestInlineFLPSpec(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	flp := "a\t8e-3\t16e-3\t0\t0\nb\t8e-3\t16e-3\t8e-3\t0\n"
	resp, raw := postJSON(t, ts.URL+"/v1/steady", SteadyRequest{
		Model: ModelSpec{FLP: flp, Package: "air-sink"},
		Power: map[string]float64{"a": 5},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out SteadyResponse
	decodeInto(t, raw, &out)
	if out.BlockC["a"] <= out.BlockC["b"] {
		t.Fatalf("powered block not hotter: a=%.2f b=%.2f", out.BlockC["a"], out.BlockC["b"])
	}
}

func TestDeadlineMidReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// A replay that takes far longer than the deadline (≈100 ms of stepping
	// vs a 5 ms budget, wide margin for coarse timers) must abort between
	// rows with 504 rather than running to completion.
	tr, err := trace.Step(floorplan.EV6().Names(), map[string]float64{"IntReg": 2}, 25.0, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/transient", TransientRequest{
		Model:     ModelSpec{Floorplan: "ev6", Package: "air-sink"},
		Trace:     traceSpec(tr),
		TimeoutMS: 5,
	})
	if len(raw) > 300 {
		raw = raw[:300]
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d: %s...", resp.StatusCode, raw)
	}
	if !strings.Contains(string(raw), "deadline") {
		t.Fatalf("error body: %s", raw)
	}
}

func TestServeLifecycle(t *testing.T) {
	srv := New(Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port for Serve (tiny race window, fine for a test)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, addr) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
}

func TestGridSpecBounds(t *testing.T) {
	sp := ModelSpec{Floorplan: fmt.Sprintf("grid:%dx2", maxGridSide+1)}
	if _, err := sp.resolveFloorplan(); err == nil {
		t.Fatal("oversized grid accepted")
	}
}

// A per-user serving spec must compile onto the reduced backend, step
// transients through it, and surface the reduction in /v1/stats — while a
// default spec of the same model keeps the full backend and a separate
// cache entry.
func TestPerUserServingSelectsReducedBackend(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	tr := testTrace(t)
	req := TransientRequest{
		Model: ModelSpec{Floorplan: "ev6", Package: "oil-silicon", Serving: "per-user"},
		Trace: traceSpec(tr),
	}
	resp, raw := postJSON(t, ts.URL+"/v1/transient", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out TransientResponse
	decodeInto(t, raw, &out)
	if out.Steps == 0 {
		t.Fatal("no transient steps")
	}

	st := srv.Stats()
	if st.Solver.Backends["reduced"] != 1 {
		t.Fatalf("backends = %v, want one reduced model", st.Solver.Backends)
	}
	r := st.Solver.Reduced
	if r == nil {
		t.Fatal("stats carry no solver.reduced block")
	}
	if r.Models != 1 || r.MaxOrder <= 0 {
		t.Fatalf("reduced stats %+v", r)
	}
	if r.Steps == 0 {
		t.Fatal("reduced stats count no steps")
	}
	if r.Fallbacks != 0 {
		t.Fatalf("reduced fallbacks = %d on a healthy replay", r.Fallbacks)
	}

	// The same physical model without the serving hint is a distinct cache
	// entry on a full backend: the reduction must key the fingerprint.
	fullReq := req
	fullReq.Model.Serving = ""
	if resp, raw := postJSON(t, ts.URL+"/v1/transient", fullReq); resp.StatusCode != http.StatusOK {
		t.Fatalf("full-model status %d: %s", resp.StatusCode, raw)
	}
	st = srv.Stats()
	if st.Cache.Compiles != 2 {
		t.Fatalf("compiles = %d, want 2 (reduced and full must not share a cache slot)", st.Cache.Compiles)
	}
	if st.Solver.Backends["reduced"] != 1 {
		t.Fatalf("backends after full run = %v", st.Solver.Backends)
	}
}

// An unknown serving mode is a client error, not a silent default.
func TestUnknownServingModeRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := SteadyRequest{
		Model: ModelSpec{Floorplan: "ev6", Serving: "sometimes"},
		Power: map[string]float64{"IntReg": 2.0},
	}
	resp, raw := postJSON(t, ts.URL+"/v1/steady", req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
}
