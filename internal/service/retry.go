package service

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tstore"
)

// Flush-retry backoff bounds: the first retry comes quickly (a transient
// fault often clears immediately), then attempts spread out exponentially
// so a dead disk is probed a few times a minute, not hammered.
const (
	retryInitialBackoff = 100 * time.Millisecond
	retryMaxBackoff     = 5 * time.Second
)

// flushRetrier is the buffered-telemetry rung of the degradation ladder
// (DESIGN.md §12): when a synchronous persist flush fails, the rows stay
// staged in the store and the retrier keeps flushing in the background with
// bounded exponential backoff, so the request degrades from
// durable-on-response to buffered-with-retry instead of failing. The loop
// goroutine only lives while a retry is pending — an idle server runs no
// background work.
type flushRetrier struct {
	store *tstore.Store

	mu      sync.Mutex
	gen     int64 // bumped per kick; the loop exits only when it drained the latest
	running bool
	stopped bool
	stopc   chan struct{}
	wg      sync.WaitGroup

	attempts  atomic.Int64 // flush attempts by the retry loop
	recovered atomic.Int64 // retry loops that reached a clean flush
}

func newFlushRetrier(store *tstore.Store) *flushRetrier {
	return &flushRetrier{store: store, stopc: make(chan struct{})}
}

// kick records that a flush failed and ensures the retry loop is running.
func (fr *flushRetrier) kick() {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.gen++
	if fr.stopped || fr.running {
		return
	}
	fr.running = true
	fr.wg.Add(1)
	go fr.loop()
}

func (fr *flushRetrier) loop() {
	defer fr.wg.Done()
	backoff := retryInitialBackoff
	fr.mu.Lock()
	gen := fr.gen
	fr.mu.Unlock()
	for {
		select {
		case <-fr.stopc:
			fr.mu.Lock()
			fr.running = false
			fr.mu.Unlock()
			return
		case <-time.After(backoff):
		}
		fr.attempts.Add(1)
		err := fr.store.Flush()
		fr.mu.Lock()
		if err == nil {
			fr.recovered.Add(1)
			if fr.gen == gen {
				fr.running = false
				fr.mu.Unlock()
				return
			}
			// A flush failed (and kicked) while we were flushing: its rows
			// may have missed this pass, so run another with fresh backoff.
			gen = fr.gen
			fr.mu.Unlock()
			backoff = retryInitialBackoff
			continue
		}
		fr.mu.Unlock()
		backoff *= 2
		if backoff > retryMaxBackoff {
			backoff = retryMaxBackoff
		}
	}
}

// stats returns (retry attempts, recoveries, retry-pending) for /v1/stats.
func (fr *flushRetrier) stats() (attempts, recovered int64, pending bool) {
	fr.mu.Lock()
	pending = fr.running
	fr.mu.Unlock()
	return fr.attempts.Load(), fr.recovered.Load(), pending
}

// stop halts the retry loop (idempotent), then makes one final synchronous
// flush attempt so shutdown loses nothing a healthy disk could still take.
func (fr *flushRetrier) stop() {
	fr.mu.Lock()
	if fr.stopped {
		fr.mu.Unlock()
		return
	}
	fr.stopped = true
	close(fr.stopc)
	fr.mu.Unlock()
	fr.wg.Wait()
	_ = fr.store.Flush()
}
