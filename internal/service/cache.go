package service

import (
	"container/list"
	"sync"

	"repro/internal/hotspot"
)

// CachedModel is a compiled thermal model held by the cache, together with
// a pool of per-goroutine simulation sessions. Sessions carry the solve
// workspace, backward-Euler operator cache and steady-state warm-start
// vector, so a request served from a warm cache entry skips both the model
// compile and most of the iterative solve work.
type CachedModel struct {
	Model       *hotspot.Model
	Fingerprint string
	sessions    sync.Pool
}

// Session borrows a simulation session for this model; return it with
// Release so later requests inherit its warm state.
func (cm *CachedModel) Session() *hotspot.Session {
	if v := cm.sessions.Get(); v != nil {
		return v.(*hotspot.Session)
	}
	return cm.Model.NewSession()
}

// Release returns a session to the pool.
func (cm *CachedModel) Release(se *hotspot.Session) { cm.sessions.Put(se) }

// CacheStats is a snapshot of cache counters.
type CacheStats struct {
	Size int `json:"size"`
	Cap  int `json:"cap"`
	// Hits counts requests served by an existing entry, including requests
	// that attached to a compile already in flight (also counted in Shared).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Compiles counts successful model builds; exactly one per fingerprint
	// while the entry stays resident (single-flight).
	Compiles      int64 `json:"compiles"`
	CompileErrors int64 `json:"compile_errors"`
	Evictions     int64 `json:"evictions"`
	// Shared counts requests that waited on another request's compile
	// instead of compiling themselves.
	Shared int64 `json:"shared"`
}

// ModelCache is a concurrency-safe LRU cache of compiled thermal models
// keyed by config fingerprint, with single-flight compilation: any number
// of concurrent requests for the same fingerprint share one hotspot.New.
// Failed builds are not cached (the error is returned to every waiter and
// the key becomes buildable again).
type ModelCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // of *cacheEntry, front = most recently used
	entries map[string]*cacheEntry
	stats   CacheStats
}

type cacheEntry struct {
	key   string
	elem  *list.Element // nil while the build is in flight
	ready chan struct{}
	cm    *CachedModel
	err   error
}

// NewModelCache creates a cache holding at most capacity compiled models
// (minimum 1).
func NewModelCache(capacity int) *ModelCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ModelCache{cap: capacity, ll: list.New(), entries: make(map[string]*cacheEntry)}
}

// Get returns the cached model for key, building it with build on a miss.
// The second return reports whether the request was a cache hit (an
// in-flight build another request started counts as a hit). Evicted or
// failed entries rebuild on the next Get.
func (c *ModelCache) Get(key string, build func() (*hotspot.Model, error)) (*CachedModel, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		inFlight := e.elem == nil
		if !inFlight {
			c.ll.MoveToFront(e.elem)
		}
		c.stats.Hits++
		if inFlight {
			c.stats.Shared++
		}
		c.mu.Unlock()
		<-e.ready
		return e.cm, true, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.stats.Misses++
	c.mu.Unlock()

	m, err := build()

	c.mu.Lock()
	if err != nil {
		c.stats.CompileErrors++
		e.err = err
		delete(c.entries, key) // failures are not cached
	} else {
		c.stats.Compiles++
		e.cm = &CachedModel{Model: m, Fingerprint: key}
		e.elem = c.ll.PushFront(e)
		for c.ll.Len() > c.cap {
			oldest := c.ll.Back()
			victim := oldest.Value.(*cacheEntry)
			c.ll.Remove(oldest)
			delete(c.entries, victim.key)
			c.stats.Evictions++
		}
	}
	c.mu.Unlock()
	close(e.ready)
	return e.cm, false, e.err
}

// Stats returns a snapshot of the cache counters.
func (c *ModelCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Size = c.ll.Len()
	s.Cap = c.cap
	return s
}

// Len returns the number of resident entries.
func (c *ModelCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Models snapshots the resident cached models, most recently used first.
// Used by the stats endpoint to aggregate per-model solver counters.
func (c *ModelCache) Models() []*CachedModel {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*CachedModel, 0, c.ll.Len())
	for e := c.ll.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*cacheEntry).cm)
	}
	return out
}
