// Package uarch is the repository's stand-in for SimpleScalar, the
// architectural simulator of the paper's §5 experimental setup ("an EV6-like
// out-of-order core simulated with SimpleScalar/Wattch", Figs. 10 and 12): a
// trace-synthesizing out-of-order processor timing model. It generates a
// synthetic instruction stream with phase behaviour (gcc-, mcf- and art-like
// presets), runs it through branch prediction, a two-level cache hierarchy
// and a dataflow pipeline model, and emits per-interval activity counts for
// every microarchitectural unit of the EV6 floorplan. Package power converts
// those counts into the per-block power traces consumed by the thermal
// model; the closed-loop scenario engine (internal/scenario) steps a CPU
// instance per DTM grid cell so throttling feeds back into the stream's
// timing.
//
// The timing model is deliberately at the "interval simulation" altitude:
// per-instruction dataflow with functional-unit contention and in-order
// commit, rather than a cycle-by-cycle scheduler. That keeps whole-program
// simulation fast enough to regenerate the paper's 40 000-sample temperature
// traces while preserving the phase structure, cache behaviour and unit
// utilization that drive per-block power.
package uarch

// Cache is a set-associative cache with LRU replacement. Addresses are byte
// addresses; only tags are stored.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	tags      [][]uint64
	lru       [][]uint64 // per-way last-use stamps
	stamp     uint64

	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of the given total size in bytes, associativity
// and line size (both powers of two).
func NewCache(sizeBytes, ways, lineBytes int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineBytes <= 0 {
		panic("uarch: invalid cache geometry")
	}
	lines := sizeBytes / lineBytes
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	c := &Cache{sets: sets, ways: ways, lineShift: shift}
	c.tags = make([][]uint64, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.lru[i] = make([]uint64, ways)
		for w := range c.tags[i] {
			c.tags[i][w] = ^uint64(0) // invalid
		}
	}
	return c
}

// Access looks up addr, filling the line on a miss. It returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.stamp++
	line := addr >> c.lineShift
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	tags := c.tags[set]
	for w, t := range tags {
		if t == tag {
			c.lru[set][w] = c.stamp
			return true
		}
	}
	c.Misses++
	// Evict LRU way.
	victim, oldest := 0, c.lru[set][0]
	for w := 1; w < c.ways; w++ {
		if c.lru[set][w] < oldest {
			victim, oldest = w, c.lru[set][w]
		}
	}
	tags[victim] = tag
	c.lru[set][victim] = c.stamp
	return false
}

// MissRate returns the observed miss rate (0 when never accessed).
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// ResetStats clears the access counters (contents are kept).
func (c *Cache) ResetStats() { c.Accesses, c.Misses = 0, 0 }

// BPred is a tournament branch predictor in the style of the Alpha 21264
// (the EV6 the paper's floorplan models): a PC-indexed bimodal table, a
// history-indexed gshare table, and a PC-indexed chooser that learns which
// component predicts each branch better.
type BPred struct {
	bits    uint
	bimodal []uint8
	gshare  []uint8
	chooser []uint8
	history uint64

	Lookups     uint64
	Mispredicts uint64
}

// NewBPred builds a tournament predictor with 2^bits counters per table.
func NewBPred(bits uint) *BPred {
	if bits == 0 || bits > 24 {
		panic("uarch: bad predictor size")
	}
	mk := func(init uint8) []uint8 {
		t := make([]uint8, 1<<bits)
		for i := range t {
			t[i] = init
		}
		return t
	}
	return &BPred{bits: bits, bimodal: mk(1), gshare: mk(1), chooser: mk(1)}
}

func bump(t []uint8, i uint64, up bool) {
	if up {
		if t[i] < 3 {
			t[i]++
		}
	} else if t[i] > 0 {
		t[i]--
	}
}

// Predict consults and updates the predictor for a branch at pc with the
// actual outcome; it returns true when the prediction was correct.
func (b *BPred) Predict(pc uint64, taken bool) bool {
	b.Lookups++
	mask := uint64(1)<<b.bits - 1
	// Branch sites are 32-byte aligned in the synthetic stream; fold the
	// high bits down so the full table is used.
	key := pc>>5 ^ pc>>2
	pi := key & mask
	gi := (key ^ b.history) & mask
	predB := b.bimodal[pi] >= 2
	predG := b.gshare[gi] >= 2
	pred := predB
	if b.chooser[pi] >= 2 {
		pred = predG
	}
	// Update component tables toward the outcome, the chooser toward
	// whichever component was right (when they disagree).
	bump(b.bimodal, pi, taken)
	bump(b.gshare, gi, taken)
	if predB != predG {
		bump(b.chooser, pi, predG == taken)
	}
	b.history = (b.history<<1 | boolBit(taken)) & mask
	correct := pred == taken
	if !correct {
		b.Mispredicts++
	}
	return correct
}

// MispredictRate returns the observed misprediction rate.
func (b *BPred) MispredictRate() float64 {
	if b.Lookups == 0 {
		return 0
	}
	return float64(b.Mispredicts) / float64(b.Lookups)
}

// ResetStats clears the counters (learned state is kept).
func (b *BPred) ResetStats() { b.Lookups, b.Mispredicts = 0, 0 }

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
