package uarch

import (
	"testing"
)

// runIPC measures IPC for a config over the gcc workload after warmup.
func runIPC(t *testing.T, cfg CPUConfig, seed int64) float64 {
	t.Helper()
	s, err := NewStream(GCC(), seed)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCPU(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(3_000_000, 3_000_000); err != nil {
		t.Fatal(err)
	}
	samples, err := c.Run(3_000_000, 3_000_000)
	if err != nil {
		t.Fatal(err)
	}
	var instr, cycles uint64
	for _, sm := range samples {
		instr += sm.Committed
		cycles += sm.Cycles
	}
	return float64(instr) / float64(cycles)
}

func TestMispredictPenaltyHurtsIPC(t *testing.T) {
	cheap := DefaultCPU()
	cheap.MispredictPenalty = 1
	costly := DefaultCPU()
	costly.MispredictPenalty = 40
	a := runIPC(t, cheap, 7)
	b := runIPC(t, costly, 7)
	if b >= a {
		t.Fatalf("larger mispredict penalty should lower IPC: %g vs %g", b, a)
	}
}

func TestROBSizeMatters(t *testing.T) {
	small := DefaultCPU()
	small.ROBSize = 8
	big := DefaultCPU()
	big.ROBSize = 160
	a := runIPC(t, small, 7)
	b := runIPC(t, big, 7)
	if b <= a {
		t.Fatalf("bigger ROB should raise IPC: %g vs %g", b, a)
	}
}

func TestMemLatencyMatters(t *testing.T) {
	fast := DefaultCPU()
	fast.LatMem = 20
	slow := DefaultCPU()
	slow.LatMem = 500
	a := runIPC(t, fast, 7)
	b := runIPC(t, slow, 7)
	if b >= a {
		t.Fatalf("slower memory should lower IPC: %g vs %g", b, a)
	}
}

func TestWidthMatters(t *testing.T) {
	narrow := DefaultCPU()
	narrow.Width = 1
	wide := DefaultCPU()
	wide.Width = 8
	a := runIPC(t, narrow, 7)
	b := runIPC(t, wide, 7)
	if b <= a {
		t.Fatalf("wider machine should raise IPC: %g vs %g", b, a)
	}
}

// TestIntervalCountsAdditive: the per-interval activity counts must sum to
// the whole-run counts (no activity lost or double-counted at interval
// boundaries).
func TestIntervalCountsAdditive(t *testing.T) {
	mk := func(interval uint64) [NumUnits]uint64 {
		s, err := NewStream(GCC(), 99)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewCPU(DefaultCPU(), s)
		if err != nil {
			t.Fatal(err)
		}
		samples, err := c.Run(1_000_000, interval)
		if err != nil {
			t.Fatal(err)
		}
		var total [NumUnits]uint64
		for _, sm := range samples {
			for u := range sm.Counts {
				total[u] += sm.Counts[u]
			}
		}
		return total
	}
	coarse := mk(1_000_000)
	fine := mk(10_000)
	for u := Unit(0); u < NumUnits; u++ {
		// The fine run may include a few extra instructions in the final
		// partial interval; allow a tiny relative slack.
		a, b := float64(coarse[u]), float64(fine[u])
		if a == 0 && b == 0 {
			continue
		}
		if diff := (b - a) / (a + 1); diff < -0.02 || diff > 0.02 {
			t.Fatalf("unit %v: counts not additive: %d vs %d", u, coarse[u], fine[u])
		}
	}
}

func TestCyclesMonotone(t *testing.T) {
	s, _ := NewStream(MCF(), 13)
	c, _ := NewCPU(DefaultCPU(), s)
	samples, err := c.Run(500_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	var prevEnd uint64
	for i, sm := range samples {
		if sm.StartCycle != prevEnd {
			t.Fatalf("sample %d starts at %d, previous ended at %d", i, sm.StartCycle, prevEnd)
		}
		prevEnd = sm.StartCycle + sm.Cycles
	}
}

func TestIPCAccessor(t *testing.T) {
	s := ActivitySample{Cycles: 100, Committed: 150}
	if s.IPC() != 1.5 {
		t.Fatalf("IPC %g", s.IPC())
	}
	if (ActivitySample{}).IPC() != 0 {
		t.Fatal("zero-cycle IPC should be 0")
	}
}

func TestPhaseNameAccessible(t *testing.T) {
	s, _ := NewStream(GCC(), 7)
	if s.PhaseName() == "" {
		t.Fatal("phase name empty")
	}
	found := map[string]bool{}
	for i := 0; i < 5_000_000; i++ {
		s.Next()
		found[s.PhaseName()] = true
		if len(found) == 3 {
			break
		}
	}
	if len(found) < 2 {
		t.Fatalf("phase transitions never happened: %v", found)
	}
}
