package uarch

import (
	"fmt"
	"math/rand"
)

// InstrClass classifies synthetic instructions by the functional unit they
// exercise.
type InstrClass int

const (
	IntALU InstrClass = iota
	IntMul
	FPAdd
	FPMul
	Load
	Store
	Branch
	numClasses
)

func (c InstrClass) String() string {
	switch c {
	case IntALU:
		return "int-alu"
	case IntMul:
		return "int-mul"
	case FPAdd:
		return "fp-add"
	case FPMul:
		return "fp-mul"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	default:
		return fmt.Sprintf("InstrClass(%d)", int(c))
	}
}

// Instr is one synthetic instruction.
type Instr struct {
	Class InstrClass
	// PC is the instruction address (drives I-cache and predictor).
	PC uint64
	// Addr is the data address for loads/stores.
	Addr uint64
	// Taken is the branch outcome.
	Taken bool
	// DepDist is the distance (in instructions) to the producer this
	// instruction waits on; 0 means no register dependence.
	DepDist int
}

// Phase is one program phase of a synthetic workload: an instruction mix
// plus locality and ILP knobs.
type Phase struct {
	Name string
	// Mix holds relative weights per instruction class (normalized
	// internally).
	Mix [7]float64
	// BranchBias is the probability that a predictable branch is biased
	// toward taken (vs. toward not-taken).
	BranchBias float64
	// HardBranchFrac is the fraction of static branches that are
	// data-dependent (taken probability near 0.5, essentially
	// unpredictable); the rest are strongly biased and easy to predict.
	HardBranchFrac float64
	// CodeFootprint and DataFootprint are working-set sizes in bytes.
	CodeFootprint int
	DataFootprint int
	// MeanDepDist controls ILP: larger mean dependency distance = more
	// instruction-level parallelism.
	MeanDepDist float64
	// MeanLength is the expected phase length in instructions.
	MeanLength int
}

// Workload is a Markov chain over phases.
type Workload struct {
	Name   string
	Phases []Phase
	// Transition[i][j] is the probability of moving from phase i to phase
	// j when a phase ends. Rows are normalized internally.
	Transition [][]float64
}

// Validate reports structural errors in the workload definition.
func (w Workload) Validate() error {
	if len(w.Phases) == 0 {
		return fmt.Errorf("uarch: workload %q has no phases", w.Name)
	}
	if len(w.Transition) != len(w.Phases) {
		return fmt.Errorf("uarch: workload %q transition matrix is %d×?, want %d rows", w.Name, len(w.Transition), len(w.Phases))
	}
	for i, row := range w.Transition {
		if len(row) != len(w.Phases) {
			return fmt.Errorf("uarch: workload %q transition row %d has %d entries", w.Name, i, len(row))
		}
		var s float64
		for _, p := range row {
			if p < 0 {
				return fmt.Errorf("uarch: negative transition probability")
			}
			s += p
		}
		if s == 0 {
			return fmt.Errorf("uarch: workload %q transition row %d sums to zero", w.Name, i)
		}
	}
	for _, ph := range w.Phases {
		var s float64
		for _, m := range ph.Mix {
			if m < 0 {
				return fmt.Errorf("uarch: phase %q has a negative mix weight", ph.Name)
			}
			s += m
		}
		if s == 0 {
			return fmt.Errorf("uarch: phase %q has an empty mix", ph.Name)
		}
		if ph.MeanLength <= 0 || ph.CodeFootprint <= 0 || ph.DataFootprint <= 0 {
			return fmt.Errorf("uarch: phase %q has non-positive knobs", ph.Name)
		}
	}
	return nil
}

// Stream synthesizes the instruction sequence of a workload.
type Stream struct {
	w   Workload
	rng *rand.Rand

	phase     int
	remaining int
	cum       [][7]float64 // cumulative mix per phase

	// Code layout: each phase's footprint is divided into fixed "functions"
	// the stream loops within and jumps between with a skew toward a hot
	// few — this gives the instruction stream realistic loop/call structure
	// so the I-cache and branch predictor see reuse.
	funcSize uint64
	curFunc  uint64
	funcOff  uint64

	branchBias map[uint64]float64
}

// funcBytes is the synthetic function size (a power of two).
const funcBytes = 4096

// NewStream creates a deterministic synthetic stream for the workload.
func NewStream(w Workload, seed int64) (*Stream, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	s := &Stream{w: w, rng: rand.New(rand.NewSource(seed)), branchBias: make(map[uint64]float64)}
	s.cum = make([][7]float64, len(w.Phases))
	for i, ph := range w.Phases {
		var total float64
		for _, m := range ph.Mix {
			total += m
		}
		var acc float64
		for c := 0; c < 7; c++ {
			acc += ph.Mix[c] / total
			s.cum[i][c] = acc
		}
	}
	s.enterPhase(0)
	return s, nil
}

func (s *Stream) enterPhase(i int) {
	s.phase = i
	ph := s.w.Phases[i]
	// Geometric-ish phase length around the mean.
	s.remaining = 1 + int(float64(ph.MeanLength)*(0.5+s.rng.Float64()))
}

func (s *Stream) nextPhase() {
	row := s.w.Transition[s.phase]
	var total float64
	for _, p := range row {
		total += p
	}
	r := s.rng.Float64() * total
	var acc float64
	for j, p := range row {
		acc += p
		if r <= acc {
			s.enterPhase(j)
			return
		}
	}
	s.enterPhase(len(row) - 1)
}

// PhaseName returns the current phase's name.
func (s *Stream) PhaseName() string { return s.w.Phases[s.phase].Name }

// Next synthesizes the next instruction.
func (s *Stream) Next() Instr {
	if s.remaining <= 0 {
		s.nextPhase()
	}
	s.remaining--
	ph := &s.w.Phases[s.phase]
	r := s.rng.Float64()
	class := IntALU
	for c := 0; c < 7; c++ {
		if r <= s.cum[s.phase][c] {
			class = InstrClass(c)
			break
		}
	}
	in := Instr{Class: class}

	// Program counter: walk sequentially within the current function,
	// wrapping at its end (the innermost loop).
	nFuncs := uint64(ph.CodeFootprint) / funcBytes
	if nFuncs == 0 {
		nFuncs = 1
	}
	if s.curFunc >= nFuncs {
		s.curFunc = 0
	}
	s.funcOff = (s.funcOff + 4) % funcBytes
	base := uint64(s.phase) << 32 // distinct code region per phase
	in.PC = base + s.curFunc*funcBytes + s.funcOff

	switch class {
	case Load, Store:
		// Data addresses: 90% from a hot subset (1/16 of the footprint),
		// 10% uniform over the footprint — a coarse stack-distance model.
		fp := uint64(ph.DataFootprint)
		var off uint64
		if s.rng.Float64() < 0.9 {
			off = uint64(s.rng.Int63n(int64(fp/16 + 1)))
		} else {
			off = uint64(s.rng.Int63n(int64(fp)))
		}
		in.Addr = 1<<40 + uint64(s.phase)<<33 + off&^7
	case Branch:
		// Quantize branch sites to 32-byte boundaries so each function has
		// a bounded number of static branches (keeps predictor-table
		// pressure realistic).
		in.PC &^= 31
		bias, ok := s.branchBias[in.PC]
		if !ok {
			// Bimodal per-PC bias: most static branches are strongly
			// biased (predictable), a HardBranchFrac share hover near 0.5.
			if s.rng.Float64() < ph.HardBranchFrac {
				bias = 0.35 + 0.3*s.rng.Float64()
			} else if s.rng.Float64() < ph.BranchBias {
				bias = 0.97
			} else {
				bias = 0.03
			}
			s.branchBias[in.PC] = bias
		}
		in.Taken = s.rng.Float64() < bias
		if in.Taken {
			if s.rng.Float64() < 0.02 {
				// Call/return: move to another function, skewed toward the
				// hot few (quadratic skew).
				r := s.rng.Float64()
				s.curFunc = uint64(r * r * float64(nFuncs))
				if s.curFunc >= nFuncs {
					s.curFunc = nFuncs - 1
				}
				s.funcOff = 0
			} else {
				// Loop back within the function.
				back := uint64(s.rng.Int63n(256)) * 4
				s.funcOff = (s.funcOff + funcBytes - back%funcBytes) % funcBytes
			}
		}
	}

	// Register dependency distance (geometric around the mean).
	if ph.MeanDepDist > 0 && class != Branch {
		d := 1 + int(s.rng.ExpFloat64()*ph.MeanDepDist)
		if d > 64 {
			d = 64
		}
		in.DepDist = d
	}
	return in
}

// --- Workload presets. ---

// GCC is an integer-heavy, bursty, control-flow-bound workload resembling
// the SPEC CPU gcc benchmark the paper uses for Figs. 10 and 12: high
// IntALU/IntReg activity, hard-to-predict branches, and alternating
// compute/memory phases.
func GCC() Workload {
	return Workload{
		Name: "gcc",
		Phases: []Phase{
			{
				Name:       "parse",
				Mix:        [7]float64{IntALU: 0.44, IntMul: 0.02, Load: 0.24, Store: 0.10, Branch: 0.20},
				BranchBias: 0.55, HardBranchFrac: 0.25,
				CodeFootprint: 192 << 10, DataFootprint: 512 << 10,
				MeanDepDist: 3, MeanLength: 400_000,
			},
			{
				Name:       "optimize",
				Mix:        [7]float64{IntALU: 0.55, IntMul: 0.03, Load: 0.20, Store: 0.07, Branch: 0.15},
				BranchBias: 0.5, HardBranchFrac: 0.18,
				CodeFootprint: 96 << 10, DataFootprint: 128 << 10,
				MeanDepDist: 5, MeanLength: 600_000,
			},
			{
				Name:       "emit",
				Mix:        [7]float64{IntALU: 0.38, Load: 0.26, Store: 0.20, Branch: 0.16},
				BranchBias: 0.65, HardBranchFrac: 0.12,
				CodeFootprint: 64 << 10, DataFootprint: 1 << 20,
				MeanDepDist: 4, MeanLength: 300_000,
			},
		},
		Transition: [][]float64{
			{0.2, 0.6, 0.2},
			{0.3, 0.4, 0.3},
			{0.5, 0.3, 0.2},
		},
	}
}

// MCF is a memory-bound pointer-chasing workload: large data footprint, low
// ILP, cache-miss dominated.
func MCF() Workload {
	return Workload{
		Name: "mcf",
		Phases: []Phase{
			{
				Name:       "chase",
				Mix:        [7]float64{IntALU: 0.30, Load: 0.42, Store: 0.08, Branch: 0.20},
				BranchBias: 0.5, HardBranchFrac: 0.35,
				CodeFootprint: 16 << 10, DataFootprint: 16 << 20,
				MeanDepDist: 1.2, MeanLength: 800_000,
			},
			{
				Name:       "relax",
				Mix:        [7]float64{IntALU: 0.40, Load: 0.35, Store: 0.10, Branch: 0.15},
				BranchBias: 0.7, HardBranchFrac: 0.2,
				CodeFootprint: 16 << 10, DataFootprint: 4 << 20,
				MeanDepDist: 2, MeanLength: 400_000,
			},
		},
		Transition: [][]float64{
			{0.7, 0.3},
			{0.5, 0.5},
		},
	}
}

// ART is a floating-point loop nest: high FP utilization, predictable
// branches, streaming memory.
func ART() Workload {
	return Workload{
		Name: "art",
		Phases: []Phase{
			{
				Name:       "train",
				Mix:        [7]float64{IntALU: 0.18, FPAdd: 0.28, FPMul: 0.22, Load: 0.22, Store: 0.06, Branch: 0.04},
				BranchBias: 0.95, HardBranchFrac: 0.02,
				CodeFootprint: 8 << 10, DataFootprint: 2 << 20,
				MeanDepDist: 6, MeanLength: 1_000_000,
			},
			{
				Name:       "match",
				Mix:        [7]float64{IntALU: 0.22, FPAdd: 0.30, FPMul: 0.16, Load: 0.24, Store: 0.04, Branch: 0.04},
				BranchBias: 0.9, HardBranchFrac: 0.04,
				CodeFootprint: 8 << 10, DataFootprint: 1 << 20,
				MeanDepDist: 5, MeanLength: 700_000,
			},
		},
		Transition: [][]float64{
			{0.6, 0.4},
			{0.4, 0.6},
		},
	}
}

// Workloads returns all presets by name.
func Workloads() map[string]Workload {
	return map[string]Workload{"gcc": GCC(), "mcf": MCF(), "art": ART()}
}
