package uarch

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCacheBasics(t *testing.T) {
	c := NewCache(1<<10, 2, 64) // 1 KiB, 2-way, 64B lines → 8 sets
	if hit := c.Access(0); hit {
		t.Fatal("cold access should miss")
	}
	if hit := c.Access(0); !hit {
		t.Fatal("second access should hit")
	}
	if hit := c.Access(32); !hit {
		t.Fatal("same line should hit")
	}
	if c.Accesses != 3 || c.Misses != 1 {
		t.Fatalf("stats %d/%d", c.Misses, c.Accesses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2*64, 2, 64) // one set, two ways
	c.Access(0 * 64)
	c.Access(1 * 64)
	c.Access(0 * 64) // touch 0: LRU is line 1
	c.Access(2 * 64) // evicts line 1
	if !c.Access(0 * 64) {
		t.Fatal("line 0 should survive (was MRU)")
	}
	if c.Access(1 * 64) {
		t.Fatal("line 1 should have been evicted")
	}
}

func TestCacheCapacityBehaviour(t *testing.T) {
	// Working set fitting in the cache → near-zero steady miss rate;
	// 4× oversized working set → high miss rate.
	small := NewCache(8<<10, 2, 64)
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 8<<10; a += 64 {
			small.Access(a)
		}
	}
	small.ResetStats()
	for a := uint64(0); a < 8<<10; a += 64 {
		small.Access(a)
	}
	if small.MissRate() > 0.01 {
		t.Fatalf("fitting set should hit: miss rate %g", small.MissRate())
	}
	big := NewCache(8<<10, 2, 64)
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < 32<<10; a += 64 {
			big.Access(a)
		}
	}
	if big.MissRate() < 0.5 {
		t.Fatalf("thrashing set should miss: miss rate %g", big.MissRate())
	}
}

func TestBPredLearnsBias(t *testing.T) {
	b := NewBPred(12)
	// Strongly biased branch: predictor should converge to near-perfect.
	for i := 0; i < 2000; i++ {
		b.Predict(0x1000, true)
	}
	b.ResetStats()
	for i := 0; i < 1000; i++ {
		b.Predict(0x1000, true)
	}
	if b.MispredictRate() > 0.01 {
		t.Fatalf("biased branch should be predictable: %g", b.MispredictRate())
	}
}

func TestBPredPatternLearning(t *testing.T) {
	// Alternating pattern is learnable through global history.
	b := NewBPred(12)
	for i := 0; i < 4000; i++ {
		b.Predict(0x2000, i%2 == 0)
	}
	b.ResetStats()
	for i := 0; i < 1000; i++ {
		b.Predict(0x2000, i%2 == 0)
	}
	if b.MispredictRate() > 0.05 {
		t.Fatalf("alternating pattern should be learnable: %g", b.MispredictRate())
	}
}

func TestWorkloadValidation(t *testing.T) {
	for name, w := range Workloads() {
		if err := w.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
	}
	bad := GCC()
	bad.Transition = bad.Transition[:1]
	if err := bad.Validate(); err == nil {
		t.Fatal("truncated transition matrix should fail")
	}
	empty := Workload{Name: "x"}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty workload should fail")
	}
}

func TestStreamDeterminism(t *testing.T) {
	s1, err := NewStream(GCC(), 42)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewStream(GCC(), 42)
	for i := 0; i < 10000; i++ {
		a, b := s1.Next(), s2.Next()
		if a != b {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a, b)
		}
	}
	s3, _ := NewStream(GCC(), 43)
	same := 0
	for i := 0; i < 1000; i++ {
		if s1.Next() == s3.Next() {
			same++
		}
	}
	if same > 900 {
		t.Fatal("different seeds should produce different streams")
	}
}

func TestStreamMixMatchesPhase(t *testing.T) {
	// A single-phase workload must reproduce its instruction mix.
	w := Workload{
		Name: "unit",
		Phases: []Phase{{
			Name:       "only",
			Mix:        [7]float64{IntALU: 0.5, Load: 0.3, Branch: 0.2},
			BranchBias: 0.5, CodeFootprint: 4096, DataFootprint: 4096,
			MeanDepDist: 2, MeanLength: 1000,
		}},
		Transition: [][]float64{{1}},
	}
	s, err := NewStream(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	var counts [7]int
	n := 100000
	for i := 0; i < n; i++ {
		counts[s.Next().Class]++
	}
	if f := float64(counts[IntALU]) / float64(n); math.Abs(f-0.5) > 0.02 {
		t.Fatalf("IntALU fraction %g, want 0.5", f)
	}
	if f := float64(counts[Branch]) / float64(n); math.Abs(f-0.2) > 0.02 {
		t.Fatalf("Branch fraction %g, want 0.2", f)
	}
	if counts[FPAdd] != 0 || counts[FPMul] != 0 {
		t.Fatal("integer workload should have no FP ops")
	}
}

func newCPU(t *testing.T, w Workload, seed int64) *CPU {
	t.Helper()
	s, err := NewStream(w, seed)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCPU(DefaultCPU(), s)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCPURunProducesSamples(t *testing.T) {
	c := newCPU(t, GCC(), 7)
	samples, err := c.Run(200_000, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 19 {
		t.Fatalf("got %d samples", len(samples))
	}
	var committed uint64
	for _, s := range samples {
		committed += s.Committed
		if s.Cycles == 0 {
			t.Fatal("zero-cycle sample")
		}
	}
	if committed == 0 {
		t.Fatal("no instructions committed")
	}
}

func TestCPUIPCInPlausibleRange(t *testing.T) {
	c := newCPU(t, GCC(), 11)
	// Warm the caches and predictor first, then measure.
	if _, err := c.Run(5_000_000, 5_000_000); err != nil {
		t.Fatal(err)
	}
	samples, err := c.Run(5_000_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	var instr, cycles uint64
	for _, s := range samples {
		instr += s.Committed
		cycles += s.Cycles
	}
	ipc := float64(instr) / float64(cycles)
	if ipc < 0.4 || ipc > 4.0 {
		t.Fatalf("gcc IPC = %g, implausible for a 4-wide machine", ipc)
	}
}

func TestMCFIsMemoryBound(t *testing.T) {
	// mcf's huge footprint must miss more and run slower than gcc.
	run := func(w Workload) (ipc, l1dMiss float64) {
		c := newCPU(t, w, 5)
		samples, err := c.Run(2_000_000, 2_000_000)
		if err != nil {
			t.Fatal(err)
		}
		var instr, cycles uint64
		for _, s := range samples {
			instr += s.Committed
			cycles += s.Cycles
		}
		_, d, _, _ := c.Stats()
		return float64(instr) / float64(cycles), d
	}
	gccIPC, gccMiss := run(GCC())
	mcfIPC, mcfMiss := run(MCF())
	if mcfIPC >= gccIPC {
		t.Fatalf("mcf IPC %g should be below gcc %g", mcfIPC, gccIPC)
	}
	if mcfMiss <= gccMiss {
		t.Fatalf("mcf L1D miss rate %g should exceed gcc %g", mcfMiss, gccMiss)
	}
}

func TestARTExercisesFP(t *testing.T) {
	c := newCPU(t, ART(), 3)
	samples, err := c.Run(1_000_000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	s := samples[0]
	if s.Counts[UFPAdd] == 0 || s.Counts[UFPMul] == 0 {
		t.Fatal("art should exercise FP units")
	}
	if s.Counts[UFPAdd] < s.Counts[UIntExec]/4 {
		t.Fatalf("art FP activity too low: fpadd %d vs intexec %d", s.Counts[UFPAdd], s.Counts[UIntExec])
	}
	// gcc, by contrast, has idle FP units.
	g := newCPU(t, GCC(), 3)
	gs, err := g.Run(1_000_000, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if gs[0].Counts[UFPAdd] > gs[0].Counts[UIntExec]/20 {
		t.Fatal("gcc should be integer-dominated")
	}
}

func TestCountsConsistency(t *testing.T) {
	c := newCPU(t, GCC(), 9)
	samples, err := c.Run(500_000, 500_000)
	if err != nil {
		t.Fatal(err)
	}
	s := samples[0]
	// Every load/store touches Dcache, DTB and LdStQ equally.
	if s.Counts[UDcache] != s.Counts[UDTB] || s.Counts[UDcache] != s.Counts[ULdStQ] {
		t.Fatalf("mem-path counts disagree: %d %d %d", s.Counts[UDcache], s.Counts[UDTB], s.Counts[ULdStQ])
	}
	// Register file activity is 3 ops per mapped instruction.
	if s.Counts[UIntReg] != 3*s.Counts[UIntMap] {
		t.Fatalf("IntReg %d != 3×IntMap %d", s.Counts[UIntReg], s.Counts[UIntMap])
	}
	// The L2 sees only a subset of L1 traffic.
	if s.Counts[UL2] > s.Counts[UDcache]+s.Counts[UIcache] {
		t.Fatal("L2 accesses exceed L1 traffic")
	}
}

func TestCPUConfigValidation(t *testing.T) {
	s, _ := NewStream(GCC(), 1)
	bad := DefaultCPU()
	bad.Width = 0
	if _, err := NewCPU(bad, s); err == nil {
		t.Fatal("zero width should fail")
	}
	if _, err := NewCPU(DefaultCPU(), nil); err == nil {
		t.Fatal("nil stream should fail")
	}
	c, _ := NewCPU(DefaultCPU(), s)
	if _, err := c.Run(10, 100); err == nil {
		t.Fatal("total < interval should fail")
	}
}

// Property: cache accesses never exceed misses-free bound and miss count is
// monotone in working-set size for a scanning pattern.
func TestCacheMissMonotonicityProperty(t *testing.T) {
	f := func(raw uint8) bool {
		ws1 := 4<<10 + int(raw)<<6
		ws2 := ws1 * 2
		m1 := scanMissRate(ws1)
		m2 := scanMissRate(ws2)
		return m2 >= m1-0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func scanMissRate(ws int) float64 {
	c := NewCache(8<<10, 2, 64)
	for pass := 0; pass < 3; pass++ {
		for a := uint64(0); a < uint64(ws); a += 64 {
			c.Access(a)
		}
	}
	return c.MissRate()
}

func TestUnitNames(t *testing.T) {
	if UIcache.String() != "Icache" || ULdStQ.String() != "LdStQ" {
		t.Fatal("unit names wrong")
	}
	if Unit(99).String() == "" {
		t.Fatal("out-of-range unit should still format")
	}
}
