package uarch

import "fmt"

// Unit identifies a microarchitectural unit; values line up with the EV6
// floorplan blocks that package power maps activity onto.
type Unit int

const (
	UIcache Unit = iota
	UDcache
	UL2
	UBpred
	UITB
	UDTB
	UIntReg
	UIntExec
	UIntMap
	UIntQ
	UFPReg
	UFPAdd
	UFPMul
	UFPMap
	UFPQ
	ULdStQ
	NumUnits
)

var unitNames = [NumUnits]string{
	"Icache", "Dcache", "L2", "Bpred", "ITB", "DTB",
	"IntReg", "IntExec", "IntMap", "IntQ",
	"FPReg", "FPAdd", "FPMul", "FPMap", "FPQ", "LdStQ",
}

func (u Unit) String() string {
	if u >= 0 && u < NumUnits {
		return unitNames[u]
	}
	return fmt.Sprintf("Unit(%d)", int(u))
}

// ActivitySample holds per-interval activity: unit access counts over a
// fixed number of cycles.
type ActivitySample struct {
	StartCycle uint64
	Cycles     uint64
	Committed  uint64
	Counts     [NumUnits]uint64
}

// IPC returns committed instructions per cycle for the interval.
func (s ActivitySample) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// CPUConfig describes the modeled machine (defaults are EV6-like).
type CPUConfig struct {
	Width   int // fetch/commit width
	ROBSize int

	// Functional unit counts.
	NIntALU, NIntMul, NFPAdd, NFPMul, NMemPort int

	// Latencies in cycles.
	LatIntALU, LatIntMul, LatFPAdd, LatFPMul int
	LatL1Hit, LatL2Hit, LatMem               int
	MispredictPenalty                        int
	DispatchLatency                          int

	// Cache geometry.
	L1ISize, L1IWays int
	L1DSize, L1DWays int
	L2Size, L2Ways   int
	LineBytes        int

	PredictorBits uint
}

// DefaultCPU returns an EV6-like configuration.
func DefaultCPU() CPUConfig {
	return CPUConfig{
		Width: 4, ROBSize: 80,
		NIntALU: 4, NIntMul: 1, NFPAdd: 2, NFPMul: 1, NMemPort: 2,
		LatIntALU: 1, LatIntMul: 7, LatFPAdd: 4, LatFPMul: 4,
		LatL1Hit: 3, LatL2Hit: 14, LatMem: 180,
		MispredictPenalty: 12, DispatchLatency: 2,
		L1ISize: 64 << 10, L1IWays: 2,
		L1DSize: 64 << 10, L1DWays: 2,
		L2Size: 2 << 20, L2Ways: 8,
		LineBytes:     64,
		PredictorBits: 14,
	}
}

// CPU is the dataflow timing model: per-instruction dispatch with
// dependency tracking through a completion ring, functional-unit contention
// through per-unit next-free times, in-order commit through an effective-
// commit ring, and front-end stalls from I-cache misses and branch
// mispredictions.
type CPU struct {
	cfg    CPUConfig
	l1i    *Cache
	l1d    *Cache
	l2     *Cache
	bp     *BPred
	stream *Stream

	cycle      uint64
	fetchReady uint64
	fetchSlot  int // instructions fetched in the current cycle

	seq        uint64 // instructions dispatched
	complete   []uint64
	effCommit  []uint64
	lastCommit uint64

	fu [5][]uint64 // next-free time per functional unit, indexed by fuKind

	counts    [NumUnits]uint64
	committed uint64
}

type fuKind int

const (
	fuIntALU fuKind = iota
	fuIntMul
	fuFPAdd
	fuFPMul
	fuMem
)

// NewCPU assembles a CPU over a synthetic instruction stream.
func NewCPU(cfg CPUConfig, stream *Stream) (*CPU, error) {
	if cfg.Width <= 0 || cfg.ROBSize <= cfg.Width {
		return nil, fmt.Errorf("uarch: invalid width/ROB: %d/%d", cfg.Width, cfg.ROBSize)
	}
	if stream == nil {
		return nil, fmt.Errorf("uarch: nil stream")
	}
	c := &CPU{
		cfg:    cfg,
		l1i:    NewCache(cfg.L1ISize, cfg.L1IWays, cfg.LineBytes),
		l1d:    NewCache(cfg.L1DSize, cfg.L1DWays, cfg.LineBytes),
		l2:     NewCache(cfg.L2Size, cfg.L2Ways, cfg.LineBytes),
		bp:     NewBPred(cfg.PredictorBits),
		stream: stream,
	}
	ring := cfg.ROBSize
	c.complete = make([]uint64, ring)
	c.effCommit = make([]uint64, ring)
	c.fu[fuIntALU] = make([]uint64, cfg.NIntALU)
	c.fu[fuIntMul] = make([]uint64, cfg.NIntMul)
	c.fu[fuFPAdd] = make([]uint64, cfg.NFPAdd)
	c.fu[fuFPMul] = make([]uint64, cfg.NFPMul)
	c.fu[fuMem] = make([]uint64, cfg.NMemPort)
	return c, nil
}

// Cycle returns the current simulated cycle.
func (c *CPU) Cycle() uint64 { return c.cycle }

// claimFU returns the earliest start ≥ earliest on any unit of the kind and
// books the unit until start+busy.
func (c *CPU) claimFU(kind fuKind, earliest uint64, busy int) uint64 {
	units := c.fu[kind]
	best := 0
	for i := 1; i < len(units); i++ {
		if units[i] < units[best] {
			best = i
		}
	}
	start := earliest
	if units[best] > start {
		start = units[best]
	}
	units[best] = start + uint64(busy)
	return start
}

// memLatency performs the cache walk for a data access and returns the load-
// to-use latency.
func (c *CPU) memLatency(addr uint64) int {
	if c.l1d.Access(addr) {
		return c.cfg.LatL1Hit
	}
	c.counts[UL2]++
	if c.l2.Access(addr) {
		return c.cfg.LatL2Hit
	}
	return c.cfg.LatMem
}

// step dispatches one instruction and advances the model.
func (c *CPU) step() {
	in := c.stream.Next()
	cfg := &c.cfg

	// Fetch bandwidth: Width instructions per cycle.
	if c.fetchSlot >= cfg.Width {
		c.cycle++
		c.fetchSlot = 0
	}
	c.fetchSlot++
	if c.cycle < c.fetchReady {
		c.cycle = c.fetchReady
		c.fetchSlot = 1
	}

	// I-cache access once per line.
	lineInstrs := uint64(cfg.LineBytes / 4)
	if in.PC/4%lineInstrs == 0 || c.counts[UIcache] == 0 {
		c.counts[UIcache]++
		c.counts[UITB]++
		if !c.l1i.Access(in.PC) {
			c.counts[UL2]++
			lat := cfg.LatL2Hit
			if !c.l2.Access(in.PC) {
				lat = cfg.LatMem
			}
			c.fetchReady = c.cycle + uint64(lat)
		}
	}

	// ROB occupancy: when full, stall fetch until the head commits.
	ring := len(c.complete)
	idx := int(c.seq) % ring
	if c.seq >= uint64(ring) {
		headCommit := c.effCommit[idx] // entry about to be overwritten
		if c.cycle < headCommit {
			c.cycle = headCommit
			c.fetchSlot = 1
		}
	}

	// Dependency.
	ready := c.cycle + uint64(cfg.DispatchLatency)
	if in.DepDist > 0 && uint64(in.DepDist) <= c.seq && in.DepDist < ring {
		dep := c.complete[int(c.seq-uint64(in.DepDist))%ring]
		if dep > ready {
			ready = dep
		}
	}

	// Issue + execute.
	var done uint64
	switch in.Class {
	case IntALU:
		start := c.claimFU(fuIntALU, ready, 1)
		done = start + uint64(cfg.LatIntALU)
		c.counts[UIntExec]++
		c.intOverhead()
	case IntMul:
		start := c.claimFU(fuIntMul, ready, cfg.LatIntMul) // unpipelined
		done = start + uint64(cfg.LatIntMul)
		c.counts[UIntExec]++
		c.intOverhead()
	case FPAdd:
		start := c.claimFU(fuFPAdd, ready, 1)
		done = start + uint64(cfg.LatFPAdd)
		c.counts[UFPAdd]++
		c.fpOverhead()
	case FPMul:
		start := c.claimFU(fuFPMul, ready, 1)
		done = start + uint64(cfg.LatFPMul)
		c.counts[UFPMul]++
		c.fpOverhead()
	case Load:
		start := c.claimFU(fuMem, ready, 1)
		c.counts[UDcache]++
		c.counts[UDTB]++
		c.counts[ULdStQ]++
		done = start + uint64(c.memLatency(in.Addr))
		c.intOverhead()
	case Store:
		start := c.claimFU(fuMem, ready, 1)
		c.counts[UDcache]++
		c.counts[UDTB]++
		c.counts[ULdStQ]++
		done = start + 1 // buffered store
		_ = c.memLatency(in.Addr)
		c.intOverhead()
	case Branch:
		start := c.claimFU(fuIntALU, ready, 1)
		done = start + uint64(cfg.LatIntALU)
		c.counts[UBpred]++
		c.counts[UIntExec]++
		c.intOverhead()
		if !c.bp.Predict(in.PC, in.Taken) {
			refill := done + uint64(cfg.MispredictPenalty)
			if refill > c.fetchReady {
				c.fetchReady = refill
			}
		}
	}

	// Commit bookkeeping.
	c.complete[idx] = done
	eff := done
	prev := c.effCommit[(idx+ring-1)%ring]
	if c.seq == 0 {
		prev = 0
	}
	if prev > eff {
		eff = prev
	}
	c.effCommit[idx] = eff
	c.seq++
	c.committed++
}

func (c *CPU) intOverhead() {
	c.counts[UIntMap]++
	c.counts[UIntQ]++
	c.counts[UIntReg] += 3 // two reads, one write
}

func (c *CPU) fpOverhead() {
	c.counts[UFPMap]++
	c.counts[UFPQ]++
	c.counts[UFPReg] += 3
}

// Run simulates until at least totalCycles have elapsed, flushing an
// ActivitySample every intervalCycles. The final partial interval is
// included when it covers at least one cycle.
func (c *CPU) Run(totalCycles, intervalCycles uint64) ([]ActivitySample, error) {
	if intervalCycles == 0 || totalCycles < intervalCycles {
		return nil, fmt.Errorf("uarch: need totalCycles ≥ intervalCycles > 0")
	}
	var out []ActivitySample
	intervalStart := c.cycle
	flush := func(end uint64) {
		s := ActivitySample{
			StartCycle: intervalStart,
			Cycles:     end - intervalStart,
			Committed:  c.committed,
			Counts:     c.counts,
		}
		out = append(out, s)
		c.counts = [NumUnits]uint64{}
		c.committed = 0
		intervalStart = end
	}
	endCycle := c.cycle + totalCycles
	next := intervalStart + intervalCycles
	for c.cycle < endCycle {
		c.step()
		for c.cycle >= next && next <= endCycle {
			flush(next)
			next += intervalCycles
		}
	}
	if c.cycle > intervalStart && intervalStart < endCycle {
		flush(min64(c.cycle, endCycle))
	}
	return out, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// Stats exposes cache and predictor statistics for inspection.
func (c *CPU) Stats() (l1iMiss, l1dMiss, l2Miss, mispredict float64) {
	return c.l1i.MissRate(), c.l1d.MissRate(), c.l2.MissRate(), c.bp.MispredictRate()
}
