package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmarks for the PR 6 register-blocked kernels: numeric refactorization
// throughput (the multicore scaling row — run at GOMAXPROCS=1 and >1), the
// wide solve kernels against repeated narrow invocations, and the float32
// factor against full precision. scripts/bench.sh runs these into
// BENCH_solver.json.

// benchGrid builds and factors a reference-style 5-point grid operator.
func benchGrid(b *testing.B, nx, ny int, prec FactorPrecision) (*CSR, *CholeskyOperator) {
	b.Helper()
	n, entries := gridEntries(nx, ny)
	m := NewCSR(n, entries)
	op, err := NewCholeskyOperatorPrec(m, 0, prec)
	if err != nil {
		b.Fatal(err)
	}
	return m, op
}

// BenchmarkCholeskyFactorNumeric measures the numeric factorization alone
// (symbolic analysis amortized through Shift, exactly the backward-Euler
// refactorization path). The N=16384 row is the multicore headline: the
// level schedule plus within-panel splits should scale it with GOMAXPROCS.
func BenchmarkCholeskyFactorNumeric(b *testing.B) {
	for _, sz := range []struct{ nx, ny int }{{64, 64}, {128, 128}} {
		_, op := benchGrid(b, sz.nx, sz.ny, Float64)
		shift := make([]float64, sz.nx*sz.ny)
		b.Run(fmt.Sprintf("N=%d", sz.nx*sz.ny), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := op.Shift(shift); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveKernelWidths solves the same 16 right-hand sides as four
// 4-wide kernel passes, two 8-wide, and one 16-wide: the register-blocking
// payoff is the panel traversals each variant pays for.
func BenchmarkSolveKernelWidths(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	const nx, ny = 128, 128
	_, op := benchGrid(b, nx, ny, Float64)
	n := nx * ny
	const kk = 16
	bs := make([][]float64, kk)
	dst := make([][]float64, kk)
	for k := range bs {
		bs[k] = make([]float64, n)
		dst[k] = make([]float64, n)
		for i := range bs[k] {
			bs[k][i] = rng.NormFloat64()
		}
	}
	for _, width := range []int{4, 8, 16} {
		ws := &Workspace{}
		op.solveChunk(bs[:width], dst[:width], ws) // warm scratch
		b.Run(fmt.Sprintf("%dx%d", kk/width, width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for k := 0; k < kk; k += width {
					op.solveChunk(bs[k:k+width], dst[k:k+width], ws)
				}
			}
		})
	}
}

// BenchmarkCholeskySolvePrecision compares warm single-RHS solves through
// the float64 factor against the float32 factor (half the sweep bandwidth,
// plus one refinement pass: a residual mat-vec and a second sweep).
func BenchmarkCholeskySolvePrecision(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	const nx, ny = 256, 256
	for _, row := range []struct {
		name string
		prec FactorPrecision
	}{{"f64", Float64}, {"f32", Float32}} {
		_, op := benchGrid(b, nx, ny, row.prec)
		n := nx * ny
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		dst := make([]float64, n)
		ws := &Workspace{}
		if _, err := op.Solve(rhs, nil, dst, ws); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/N=%d", row.name, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := op.Solve(rhs, nil, dst, ws); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
