package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// spdEntries builds a random symmetric diagonally-dominant (hence SPD)
// system in coordinate form, shaped like an RC conductance matrix: a sparse
// graph Laplacian plus positive diagonal "ambient" terms.
func spdEntries(rng *rand.Rand, n int) []Coord {
	var entries []Coord
	diag := make([]float64, n)
	for i := 1; i < n; i++ {
		j := rng.Intn(i)
		g := 0.1 + rng.Float64()
		entries = append(entries,
			Coord{I: i, J: j, V: -g},
			Coord{I: j, J: i, V: -g})
		diag[i] += g
		diag[j] += g
	}
	for i := 0; i < n; i++ {
		diag[i] += 0.05 + rng.Float64() // ambient tie keeps it nonsingular
		entries = append(entries, Coord{I: i, J: i, V: diag[i]})
	}
	return entries
}

func TestBackendsAgreeOnSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 17, 60} {
		entries := spdEntries(rng, n)
		dense, err := (DenseBackend{}).Assemble(n, entries)
		if err != nil {
			t.Fatalf("n=%d dense: %v", n, err)
		}
		sparse, err := (SparseBackend{}).Assemble(n, entries)
		if err != nil {
			t.Fatalf("n=%d sparse: %v", n, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xd, err := dense.Solve(b, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		xs, err := sparse.Solve(b, nil, nil, &Workspace{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range xd {
			if math.Abs(xd[i]-xs[i]) > 1e-7*(1+math.Abs(xd[i])) {
				t.Fatalf("n=%d: x[%d] dense %g vs sparse %g", n, i, xd[i], xs[i])
			}
		}
		// Apply must agree too.
		yd := make([]float64, n)
		ys := make([]float64, n)
		dense.Apply(xd, yd)
		sparse.Apply(xd, ys)
		for i := range yd {
			if math.Abs(yd[i]-ys[i]) > 1e-9*(1+math.Abs(yd[i])) {
				t.Fatalf("n=%d: Apply mismatch at %d: %g vs %g", n, i, yd[i], ys[i])
			}
		}
	}
}

func TestBackendShiftMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 24
	entries := spdEntries(rng, n)
	dense, _ := (DenseBackend{}).Assemble(n, entries)
	sparse, _ := (SparseBackend{}).Assemble(n, entries)
	d := make([]float64, n)
	for i := range d {
		d[i] = rng.Float64() * 10
	}
	ds, err := dense.Shift(d)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sparse.Shift(d)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xd, err := ds.Solve(b, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	xs, err := ss.Solve(b, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xd {
		if math.Abs(xd[i]-xs[i]) > 1e-8*(1+math.Abs(xd[i])) {
			t.Fatalf("shifted solve mismatch at %d: %g vs %g", i, xd[i], xs[i])
		}
	}
}

func TestCSRShiftedInsertsMissingDiagonal(t *testing.T) {
	// Row 0 has no structural diagonal.
	m := NewCSR(2, []Coord{{I: 0, J: 1, V: 3}, {I: 1, J: 0, V: 3}, {I: 1, J: 1, V: 4}})
	s := m.Shifted([]float64{5, 1})
	if got := s.Diagonal(); got[0] != 5 || got[1] != 5 {
		t.Fatalf("diagonal after shift = %v, want [5 5]", got)
	}
	// Off-diagonals intact and columns still sorted.
	x := []float64{1, 2}
	y := s.MulVec(x, nil)
	if y[0] != 5*1+3*2 || y[1] != 3*1+5*2 {
		t.Fatalf("MulVec after shift = %v", y)
	}
}

func TestDenseAssembleReportsSingular(t *testing.T) {
	// A Laplacian with no ambient tie is singular: assembly must fail.
	entries := []Coord{
		{I: 0, J: 0, V: 1}, {I: 1, J: 1, V: 1},
		{I: 0, J: 1, V: -1}, {I: 1, J: 0, V: -1},
	}
	if _, err := (DenseBackend{}).Assemble(2, entries); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

func TestWorkspaceReuseAcrossSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ws := &Workspace{}
	for _, n := range []int{40, 8, 64} {
		op, err := (SparseBackend{}).Assemble(n, spdEntries(rng, n))
		if err != nil {
			t.Fatal(err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := op.Solve(b, nil, nil, ws)
		if err != nil {
			t.Fatal(err)
		}
		// Verify the residual directly.
		y := make([]float64, n)
		op.Apply(x, y)
		for i := range y {
			if math.Abs(y[i]-b[i]) > 1e-7*(1+math.Abs(b[i])) {
				t.Fatalf("n=%d residual too large at %d", n, i)
			}
		}
	}
}
