package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// relErr returns max_i |a_i − b_i| / (1 + |a_i|).
func relErr(a, b []float64) float64 {
	var m float64
	for i := range a {
		if e := math.Abs(a[i]-b[i]) / (1 + math.Abs(a[i])); e > m {
			m = e
		}
	}
	return m
}

func TestCholeskyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 3, 8, 33, 120, 400} {
		entries := spdEntries(rng, n)
		dense, err := (DenseBackend{}).Assemble(n, entries)
		if err != nil {
			t.Fatalf("n=%d dense: %v", n, err)
		}
		chol, err := (CholeskyBackend{}).Assemble(n, entries)
		if err != nil {
			t.Fatalf("n=%d cholesky: %v", n, err)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xd, err := dense.Solve(b, nil, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		xc, err := chol.Solve(b, nil, nil, &Workspace{})
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(xd, xc); e > 1e-9 {
			t.Fatalf("n=%d: cholesky diverges from dense LU by %g", n, e)
		}
		// Residual must be at direct-solve level.
		r := make([]float64, n)
		chol.Apply(xc, r)
		for i := range r {
			r[i] -= b[i]
		}
		if rn := Norm2(r) / (1 + Norm2(b)); rn > 1e-12 {
			t.Fatalf("n=%d: cholesky residual %g", n, rn)
		}
	}
}

func TestCholeskyBitStable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 150
	entries := spdEntries(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	var ref []float64
	for run := 0; run < 3; run++ {
		op, err := (CholeskyBackend{}).Assemble(n, entries)
		if err != nil {
			t.Fatal(err)
		}
		x, err := op.Solve(b, nil, nil, &Workspace{})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = append([]float64(nil), x...)
			continue
		}
		for i := range x {
			if x[i] != ref[i] {
				t.Fatalf("run %d: x[%d] = %v differs bitwise from %v", run, i, x[i], ref[i])
			}
		}
	}
}

func TestCholeskyShiftReusesSymbolic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 80
	entries := spdEntries(rng, n)
	base, err := (CholeskyBackend{}).Assemble(n, entries)
	if err != nil {
		t.Fatal(err)
	}
	d := make([]float64, n)
	for i := range d {
		d[i] = 1 + rng.Float64()
	}
	shifted, err := base.Shift(d)
	if err != nil {
		t.Fatal(err)
	}
	co, so := base.(*CholeskyOperator), shifted.(*CholeskyOperator)
	if co.sym != so.sym {
		t.Fatal("Shift did not share the symbolic analysis")
	}
	// Parity with a dense shift of the same system.
	dense, err := (DenseBackend{}).Assemble(n, entries)
	if err != nil {
		t.Fatal(err)
	}
	dshift, err := dense.Shift(d)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xd, _ := dshift.Solve(b, nil, nil, nil)
	xc, err := shifted.Solve(b, nil, nil, &Workspace{})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(xd, xc); e > 1e-9 {
		t.Fatalf("shifted cholesky diverges from shifted dense by %g", e)
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	// Symmetric indefinite: [[1 2][2 1]] has a negative eigenvalue.
	_, err := (CholeskyBackend{}).Assemble(2, []Coord{
		{0, 0, 1}, {1, 1, 1}, {0, 1, 2}, {1, 0, 2},
	})
	if !errors.Is(err, ErrNotSPD) {
		t.Fatalf("indefinite matrix: got %v, want ErrNotSPD", err)
	}
	// Singular: [[1 1][1 1]].
	_, err = (CholeskyBackend{}).Assemble(2, []Coord{
		{0, 0, 1}, {1, 1, 1}, {0, 1, 1}, {1, 0, 1},
	})
	if !errors.Is(err, ErrNotSPD) {
		t.Fatalf("singular matrix: got %v, want ErrNotSPD", err)
	}
	// Structurally singular: empty row/column 1.
	_, err = (CholeskyBackend{}).Assemble(2, []Coord{{0, 0, 1}})
	if !errors.Is(err, ErrNotSPD) {
		t.Fatalf("structurally singular matrix: got %v, want ErrNotSPD", err)
	}
	// Asymmetric values.
	_, err = (CholeskyBackend{}).Assemble(2, []Coord{
		{0, 0, 2}, {1, 1, 2}, {0, 1, 1}, {1, 0, 0.5},
	})
	if !errors.Is(err, ErrNotSymmetric) {
		t.Fatalf("asymmetric matrix: got %v, want ErrNotSymmetric", err)
	}
	// Asymmetric structure.
	_, err = (CholeskyBackend{}).Assemble(2, []Coord{
		{0, 0, 2}, {1, 1, 2}, {0, 1, 1},
	})
	if !errors.Is(err, ErrNotSymmetric) {
		t.Fatalf("structurally asymmetric matrix: got %v, want ErrNotSymmetric", err)
	}
}

func TestCholeskyFillCap(t *testing.T) {
	// A 2D grid Laplacian genuinely fills in (a random tree would factor
	// with zero fill and never trip the cap).
	n, entries := gridEntries(14, 14)
	if _, err := (CholeskyBackend{MaxFillRatio: 1.0001}).Assemble(n, entries); !errors.Is(err, ErrCholeskyFill) {
		t.Fatalf("tight fill cap: got %v, want ErrCholeskyFill", err)
	}
	if _, err := (CholeskyBackend{MaxFillRatio: 1e6}).Assemble(n, entries); err != nil {
		t.Fatalf("loose fill cap: %v", err)
	}
}

// gridEntries builds an nx×ny 2D grid Laplacian with a weak diagonal tie.
func gridEntries(nx, ny int) (int, []Coord) {
	n := nx * ny
	idx := func(x, y int) int { return y*nx + x }
	var entries []Coord
	diag := make([]float64, n)
	add := func(a, b int) {
		entries = append(entries, Coord{a, b, -1}, Coord{b, a, -1})
		diag[a]++
		diag[b]++
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				add(idx(x, y), idx(x+1, y))
			}
			if y+1 < ny {
				add(idx(x, y), idx(x, y+1))
			}
		}
	}
	for i := 0; i < n; i++ {
		entries = append(entries, Coord{i, i, diag[i] + 0.01})
	}
	return n, entries
}

func TestCholeskySolveAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 300
	op, err := (CholeskyBackend{}).Assemble(n, spdEntries(rng, n))
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	dst := make([]float64, n)
	ws := &Workspace{}
	if _, err := op.Solve(b, nil, dst, ws); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := op.Solve(b, nil, dst, ws); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("cholesky solve allocates %v times per run, want 0", allocs)
	}
}

func TestOrderingsArePermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	orders := map[string]func(*CSR) []int{"rcm": rcmOrder, "amd": amdOrder}
	for _, n := range []int{1, 2, 7, 64, 333} {
		m := NewCSR(n, spdEntries(rng, n))
		for name, order := range orders {
			perm := order(m)
			if len(perm) != n {
				t.Fatalf("%s n=%d: perm length %d", name, n, len(perm))
			}
			seen := make([]bool, n)
			for _, p := range perm {
				if p < 0 || p >= n || seen[p] {
					t.Fatalf("%s n=%d: invalid permutation %v", name, n, perm)
				}
				seen[p] = true
			}
		}
	}
}

// TestMinDegreeBeatsRCMOnHub: a star graph (one hub) is the canonical case
// a bandwidth ordering handles badly and minimum degree handles perfectly —
// eliminating the leaves first yields a zero-fill factor.
func TestMinDegreeBeatsRCMOnHub(t *testing.T) {
	const n = 50
	var entries []Coord
	for i := 1; i < n; i++ {
		entries = append(entries, Coord{0, i, -1}, Coord{i, 0, -1})
	}
	entries = append(entries, Coord{0, 0, float64(n)})
	for i := 1; i < n; i++ {
		entries = append(entries, Coord{i, i, 1.5})
	}
	m := NewCSR(n, entries)
	sym := analyzeCholesky(m)
	if sym.nnzL != n-1 {
		t.Fatalf("star graph: nnz(L)=%d, want %d (zero fill)", sym.nnzL, n-1)
	}
}

// TestCholeskyGridBandwidth sanity-checks the ordering on the workload the
// backend exists for: a 2D grid Laplacian must factor with far less fill
// than natural order would give, and solve to oracle accuracy.
func TestCholeskyGridBandwidth(t *testing.T) {
	const nx = 20
	n, entries := gridEntries(nx, nx)
	op, err := (CholeskyBackend{}).Assemble(n, entries)
	if err != nil {
		t.Fatal(err)
	}
	co := op.(*CholeskyOperator)
	// RCM on an nx×ny grid keeps the profile within ~bandwidth·n; natural
	// order would too, but a generous cap still catches an ordering bug
	// (identity or random order fills far more).
	if maxL := n * (nx + 2); co.NNZL() > maxL {
		t.Fatalf("grid fill nnz(L)=%d exceeds bandwidth bound %d", co.NNZL(), maxL)
	}
	dense, err := (DenseBackend{}).Assemble(n, entries)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	xd, _ := dense.Solve(b, nil, nil, nil)
	xc, err := op.Solve(b, nil, nil, &Workspace{})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(xd, xc); e > 1e-9 {
		t.Fatalf("grid: cholesky diverges from dense by %g", e)
	}
}
