// Package linalg provides the linear-algebra kernels used by the thermal
// solvers: dense LU and Cholesky factorizations, a CSR conjugate-gradient
// solver, and small vector utilities — unified behind the Operator/Backend
// interface in backend.go, which every thermal solver (compact RC and
// finite-volume reference alike) targets instead of a concrete matrix
// representation. See DESIGN.md §1.3 for the architecture.
//
// The package is deliberately dependency-free (stdlib only) and sized for the
// problems in this repository: compact thermal models have O(10-10^3)
// unknowns, the reference grids O(10^4-10^5).
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("linalg: invalid matrix dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFrom builds a matrix from a slice of rows. All rows must have the
// same length. The data is copied.
func NewMatrixFrom(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: empty matrix literal")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged matrix literal")
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// MulVec computes y = m·x. It panics if dimensions disagree.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d vs %d", m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul computes the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic("linalg: Mul dimension mismatch")
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			brow := b.Row(k)
			orow := out.Row(i)
			for j := range brow {
				orow[j] += a * brow[j]
			}
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Symmetrize replaces m with (m + mᵀ)/2. It panics unless m is square.
func (m *Matrix) Symmetrize() {
	if m.Rows != m.Cols {
		panic("linalg: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			v := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
}

// MaxAbs returns the largest absolute entry of m.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "% .4g ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ErrSingular is returned when a factorization encounters an (numerically)
// singular matrix.
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

// LU holds an LU factorization with partial pivoting (PA = LU).
type LU struct {
	lu   *Matrix
	piv  []int
	sign int
}

// FactorLU computes the LU factorization of a square matrix with partial
// pivoting. The input is not modified.
func FactorLU(a *Matrix) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: FactorLU needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Find pivot.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max, p = v, i
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			f := lu.At(i, k) / pivot
			lu.Set(i, k, f)
			if f == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= f * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve returns x such that A·x = b for the factored A.
func (f *LU) Solve(b []float64) []float64 {
	return f.SolveInto(make([]float64, f.lu.Rows), b)
}

// SolveInto solves A·x = b into the caller-provided x (returned), performing
// no allocation. x must not alias b: the pivoted gather reads b after x has
// started being written.
func (f *LU) SolveInto(x, b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n || len(x) != n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution (L has unit diagonal).
	for i := 1; i < n; i++ {
		row := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// SolveMatrix solves A·X = B column by column.
func (f *LU) SolveMatrix(b *Matrix) *Matrix {
	n := f.lu.Rows
	if b.Rows != n {
		panic("linalg: LU.SolveMatrix dimension mismatch")
	}
	out := NewMatrix(n, b.Cols)
	col := make([]float64, n)
	for j := 0; j < b.Cols; j++ {
		for i := 0; i < n; i++ {
			col[i] = b.At(i, j)
		}
		x := f.Solve(col)
		for i := 0; i < n; i++ {
			out.Set(i, j, x[i])
		}
	}
	return out
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveDense is a convenience wrapper: factor A and solve A·x = b once.
func SolveDense(a *Matrix, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns A⁻¹ via LU factorization.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMatrix(Identity(a.Rows)), nil
}

// Cholesky holds the lower-triangular Cholesky factor of an SPD matrix.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes A = L·Lᵀ for symmetric positive-definite A.
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: FactorCholesky needs a square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 {
			return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (d=%g): %w", j, d, ErrSingular)
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			ri, rj := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				s -= ri[k] * rj[k]
			}
			l.Set(i, j, s/d)
		}
	}
	return &Cholesky{l: l}, nil
}

// Solve returns x with A·x = b for the factored SPD matrix A.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.l.Rows
	if len(b) != n {
		panic("linalg: Cholesky.Solve dimension mismatch")
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.l.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * x[k]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// LeastSquares solves min ‖A·x − b‖₂ via the normal equations AᵀA x = Aᵀb
// with a small Tikhonov regularization lambda ≥ 0 on the diagonal. It is used
// by the IR power-inversion code where A is a well-conditioned thermal
// influence matrix.
func LeastSquares(a *Matrix, b []float64, lambda float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("linalg: LeastSquares dimension mismatch %d vs %d", a.Rows, len(b))
	}
	at := a.Transpose()
	ata := at.Mul(a)
	for i := 0; i < ata.Rows; i++ {
		ata.Add(i, i, lambda)
	}
	atb := at.MulVec(b)
	ch, err := FactorCholesky(ata)
	if err != nil {
		// Fall back to LU if rounding broke positive definiteness.
		return SolveDense(ata, atb)
	}
	return ch.Solve(atb), nil
}
