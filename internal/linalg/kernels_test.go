package linalg

import (
	"math/rand"
	"runtime"
	"testing"
)

// Tests for the PR 6 register-blocked kernels: bit-stable multicore
// factorization (within-panel splits included) and the reduced-precision
// factor path.

// TestFactorBitIdenticalAcrossGOMAXPROCS: the numeric factorization must
// produce identical bits at every worker count — serial sweep, 2 workers, 4
// workers — on a grid big enough that the level schedule runs parallel AND
// at least one panel is split into within-panel column chunks.
func TestFactorBitIdenticalAcrossGOMAXPROCS(t *testing.T) {
	n, entries := gridEntries(96, 96) // 9216 unknowns, above parallelFactorMinN
	m := NewCSR(n, entries)
	sym := analyzeCholesky(m)
	split := 0
	for s := int32(0); int(s) < sym.Supernodes(); s++ {
		if sym.updateChunk(s) < int(sym.snStart[s+1]-sym.snStart[s]) {
			split++
		}
	}
	if split == 0 {
		t.Fatalf("no supernode splits on a 96×96 grid: the within-panel path is untested")
	}
	t.Logf("split panels: %d of %d", split, sym.Supernodes())

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var ref *cholFactor
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		f, err := factorSupernodal(m, sym, Float64)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = f
			continue
		}
		for i := range ref.vals {
			if f.vals[i] != ref.vals[i] {
				t.Fatalf("GOMAXPROCS=%d: panel value %d: %v vs %v", procs, i, f.vals[i], ref.vals[i])
			}
		}
		for i := range ref.d {
			if f.d[i] != ref.d[i] {
				t.Fatalf("GOMAXPROCS=%d: pivot %d: %v vs %v", procs, i, f.d[i], ref.d[i])
			}
		}
	}
}

// TestFloat32FactorRefinement: the reduced-precision factor with one
// refinement step must track the float64 factor's solutions to well below
// the golden drift gate, halve the compressed-value storage, and preserve
// its precision across Shift.
func TestFloat32FactorRefinement(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gn, ge := gridEntries(24, 18)
	cases := []struct {
		name    string
		n       int
		entries []Coord
	}{
		{"grid", gn, ge},
		{"random", 250, spdEntries(rng, 250)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := NewCSR(c.n, c.entries)
			op64, err := NewCholeskyOperator(m, 0)
			if err != nil {
				t.Fatal(err)
			}
			op32, err := NewCholeskyOperatorPrec(m, 0, Float32)
			if err != nil {
				t.Fatal(err)
			}
			if op32.Precision() != Float32 || op32.f.c32 == nil || op32.f.c64 != nil {
				t.Fatal("float32 operator did not store a single-precision factor")
			}
			b := make([]float64, c.n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			x64, err := op64.Solve(b, nil, nil, &Workspace{})
			if err != nil {
				t.Fatal(err)
			}
			x32, err := op32.Solve(b, nil, nil, &Workspace{})
			if err != nil {
				t.Fatal(err)
			}
			e := relErr(x64, x32)
			if e > 1e-9 {
				t.Fatalf("refined float32 solve drifts from float64 by %g", e)
			}
			t.Logf("refined float32 vs float64 drift: %.3g", e)
			// The residual must be at direct-solve level, not raw-f32 level.
			r := make([]float64, c.n)
			op32.Apply(x32, r)
			num, den := 0.0, 0.0
			for i := range r {
				d := r[i] - b[i]
				num += d * d
				den += b[i] * b[i]
			}
			if num > 1e-24*den {
				t.Fatalf("refined float32 residual too large: %g", num/den)
			}
			// Shift must stay single-precision (the BE factor-cache path).
			shifted, err := op32.Shift(make([]float64, c.n))
			if err != nil {
				t.Fatal(err)
			}
			if shifted.(*CholeskyOperator).Precision() != Float32 {
				t.Fatal("Shift dropped the factor precision")
			}
		})
	}
}

// TestKernelSolveCounters: the workspace must attribute solves to the
// kernel widths the greedy dispatch actually used.
func TestKernelSolveCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n = 120
	op, err := (CholeskyBackend{}).Assemble(n, spdEntries(rng, n))
	if err != nil {
		t.Fatal(err)
	}
	b := make([][]float64, 31) // 16 + 8 + 4 + 3×1
	for k := range b {
		b[k] = make([]float64, n)
		for i := range b[k] {
			b[k][i] = rng.NormFloat64()
		}
	}
	ws := &Workspace{}
	if _, err := op.SolveBatch(b, nil, nil, ws); err != nil {
		t.Fatal(err)
	}
	want := [4]int64{3, 1, 1, 1}
	if ws.KernelSolves != want {
		t.Fatalf("kernel counters %v, want %v", ws.KernelSolves, want)
	}
}
