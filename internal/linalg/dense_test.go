package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("At wrong: %v", m)
	}
	m.Set(0, 0, 5)
	m.Add(0, 0, 1)
	if m.At(0, 0) != 6 {
		t.Fatalf("Set/Add wrong: got %g", m.At(0, 0))
	}
	c := m.Clone()
	c.Set(1, 1, 99)
	if m.At(1, 1) == 99 {
		t.Fatal("Clone aliases original")
	}
	tr := m.Transpose()
	if tr.At(1, 0) != m.At(0, 1) {
		t.Fatal("Transpose wrong")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	y := m.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MulVec got %v", y)
	}
}

func TestMatrixMul(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFrom([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul(%d,%d)=%g want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	x := []float64{1, 2, 3, 4}
	y := id.MulVec(x)
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("Identity.MulVec wrong at %d", i)
		}
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := NewMatrixFrom([][]float64{
		{4, -1, 0},
		{-1, 4, -1},
		{0, -1, 4},
	})
	b := []float64{3, 2, 3}
	x, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax := a.MulVec(x)
	for i := range b {
		if !almostEq(ax[i], b[i], 1e-12) {
			t.Fatalf("residual at %d: %g vs %g", i, ax[i], b[i])
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, err := FactorLU(a); err == nil {
		t.Fatal("expected singular matrix error")
	}
}

func TestLUPivoting(t *testing.T) {
	// Zero on the diagonal requires pivoting.
	a := NewMatrixFrom([][]float64{{0, 1}, {1, 0}})
	x, err := SolveDense(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 3, 1e-14) || !almostEq(x[1], 2, 1e-14) {
		t.Fatalf("pivoted solve wrong: %v", x)
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrixFrom([][]float64{{2, 0}, {0, 3}})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 6, 1e-12) {
		t.Fatalf("det=%g want 6", f.Det())
	}
	// Permutation flips the sign.
	b := NewMatrixFrom([][]float64{{0, 1}, {1, 0}})
	fb, err := FactorLU(b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(fb.Det(), -1, 1e-12) {
		t.Fatalf("det=%g want -1", fb.Det())
	}
}

func TestInverse(t *testing.T) {
	a := NewMatrixFrom([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(prod.At(i, j), want, 1e-12) {
				t.Fatalf("A·A⁻¹ (%d,%d)=%g", i, j, prod.At(i, j))
			}
		}
	}
}

func randomSPD(rng *rand.Rand, n int) *Matrix {
	// A = B·Bᵀ + n·I is SPD.
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := b.Mul(b.Transpose())
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n))
	}
	return a
}

// Property: LU solve reproduces b within tolerance for random
// diagonally-dominant systems.
func TestLUSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(12)
		a := randomSPD(r, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := SolveDense(a, b)
		if err != nil {
			return false
		}
		ax := a.MulVec(x)
		for i := range b {
			if !almostEq(ax[i], b[i], 1e-8*(1+math.Abs(b[i]))) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyMatchesLU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSPD(rng, 8)
	b := make([]float64, 8)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	ch, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	xc := ch.Solve(b)
	xl, err := SolveDense(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xc {
		if !almostEq(xc[i], xl[i], 1e-9) {
			t.Fatalf("cholesky vs lu at %d: %g vs %g", i, xc[i], xl[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewMatrixFrom([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := FactorCholesky(a); err == nil {
		t.Fatal("expected non-PD error")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent system recovers the exact solution.
	a := NewMatrixFrom([][]float64{{1, 0}, {0, 1}, {1, 1}})
	truth := []float64{2, -3}
	b := a.MulVec(truth)
	x, err := LeastSquares(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if !almostEq(x[i], truth[i], 1e-10) {
			t.Fatalf("LS x[%d]=%g want %g", i, x[i], truth[i])
		}
	}
}

func TestLeastSquaresRegularized(t *testing.T) {
	// With heavy regularization the solution shrinks toward zero.
	a := Identity(3)
	b := []float64{1, 1, 1}
	x, err := LeastSquares(a, b, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEq(x[i], 0.1, 1e-10) {
			t.Fatalf("ridge x[%d]=%g want 0.1", i, x[i])
		}
	}
}

func TestSymmetrize(t *testing.T) {
	m := NewMatrixFrom([][]float64{{1, 2}, {4, 1}})
	m.Symmetrize()
	if m.At(0, 1) != 3 || m.At(1, 0) != 3 {
		t.Fatalf("Symmetrize wrong: %v", m)
	}
}
