package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Coord is a coordinate-format sparse entry used while assembling a system.
type Coord struct {
	I, J int
	V    float64
}

// CSR is a compressed-sparse-row matrix. It is the storage used by the
// finite-volume reference solver, whose conduction matrices are symmetric
// positive definite but far too large for dense factorization.
type CSR struct {
	N      int // square dimension
	RowPtr []int
	ColIdx []int
	Values []float64
}

// NewCSR assembles a CSR matrix from coordinate entries. Duplicate (i, j)
// entries are summed, which makes finite-volume assembly trivial.
func NewCSR(n int, entries []Coord) *CSR {
	for _, e := range entries {
		if e.I < 0 || e.I >= n || e.J < 0 || e.J >= n {
			panic(fmt.Sprintf("linalg: CSR entry (%d,%d) out of range for n=%d", e.I, e.J, n))
		}
	}
	sorted := make([]Coord, len(entries))
	copy(sorted, entries)
	sort.Slice(sorted, func(a, b int) bool {
		if sorted[a].I != sorted[b].I {
			return sorted[a].I < sorted[b].I
		}
		return sorted[a].J < sorted[b].J
	})
	m := &CSR{N: n, RowPtr: make([]int, n+1)}
	for k := 0; k < len(sorted); {
		i, j := sorted[k].I, sorted[k].J
		v := 0.0
		for k < len(sorted) && sorted[k].I == i && sorted[k].J == j {
			v += sorted[k].V
			k++
		}
		if v != 0 {
			m.ColIdx = append(m.ColIdx, j)
			m.Values = append(m.Values, v)
			m.RowPtr[i+1] = len(m.ColIdx)
		}
	}
	// Fill row pointers for empty rows.
	for i := 1; i <= n; i++ {
		if m.RowPtr[i] < m.RowPtr[i-1] {
			m.RowPtr[i] = m.RowPtr[i-1]
		}
	}
	return m
}

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.Values) }

// MulVec computes y = A·x into the provided destination (allocated if nil).
func (m *CSR) MulVec(x, dst []float64) []float64 {
	if len(x) != m.N {
		panic("linalg: CSR.MulVec dimension mismatch")
	}
	if dst == nil {
		dst = make([]float64, m.N)
	}
	for i := 0; i < m.N; i++ {
		var s float64
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			s += m.Values[k] * x[m.ColIdx[k]]
		}
		dst[i] = s
	}
	return dst
}

// Diagonal extracts the diagonal of the matrix (zeros where absent).
func (m *CSR) Diagonal() []float64 {
	d := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k] == i {
				d[i] = m.Values[k]
				break
			}
		}
	}
	return d
}

// CGOptions control the conjugate-gradient solver.
type CGOptions struct {
	Tol     float64 // relative residual tolerance (default 1e-9)
	MaxIter int     // default 10·N
}

// CGResult reports convergence information from SolveCG.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual
	Converged  bool
}

// SolveCG solves A·x = b for symmetric positive-definite A using a
// Jacobi-preconditioned conjugate gradient iteration. x0 may be nil for a
// zero initial guess. This is a convenience wrapper over the workspace-based
// implementation shared with SparseOperator.
func SolveCG(a *CSR, b, x0 []float64, opt CGOptions) ([]float64, CGResult) {
	x := make([]float64, a.N)
	var ws Workspace
	res := solveCGWS(a, b, x0, x, opt, &ws)
	return x, res
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot dimension mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 { return math.Sqrt(Dot(v, v)) }

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes y ← y + alpha·x in place.
func AXPY(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY dimension mismatch")
	}
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// Scale multiplies every element of v by alpha in place.
func Scale(alpha float64, v []float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Fill sets every element of v to x.
func Fill(v []float64, x float64) {
	for i := range v {
		v[i] = x
	}
}

// MaxIdx returns the index and value of the largest element of v.
// It panics on an empty slice.
func MaxIdx(v []float64) (int, float64) {
	if len(v) == 0 {
		panic("linalg: MaxIdx on empty slice")
	}
	bi, bv := 0, v[0]
	for i, x := range v {
		if x > bv {
			bi, bv = i, x
		}
	}
	return bi, bv
}

// MinIdx returns the index and value of the smallest element of v.
// It panics on an empty slice.
func MinIdx(v []float64) (int, float64) {
	if len(v) == 0 {
		panic("linalg: MinIdx on empty slice")
	}
	bi, bv := 0, v[0]
	for i, x := range v {
		if x < bv {
			bi, bv = i, x
		}
	}
	return bi, bv
}

// Tridiagonal solves a tridiagonal system with the Thomas algorithm.
// a is the sub-diagonal (a[0] unused), b the diagonal, c the super-diagonal
// (c[n-1] unused), d the right-hand side. All slices must have length n.
// The inputs are not modified.
func Tridiagonal(a, b, c, d []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n || len(c) != n || len(d) != n {
		return nil, fmt.Errorf("linalg: Tridiagonal needs equal-length slices")
	}
	cp := make([]float64, n)
	dp := make([]float64, n)
	if b[0] == 0 {
		return nil, ErrSingular
	}
	cp[0] = c[0] / b[0]
	dp[0] = d[0] / b[0]
	for i := 1; i < n; i++ {
		den := b[i] - a[i]*cp[i-1]
		if den == 0 {
			return nil, ErrSingular
		}
		cp[i] = c[i] / den
		dp[i] = (d[i] - a[i]*dp[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = dp[i] - cp[i]*x[i+1]
	}
	return x, nil
}
