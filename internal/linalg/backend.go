package linalg

import (
	"fmt"
)

// This file defines the shared solver-backend layer used by every linear
// thermal solver in the repository (see DESIGN.md §1.3). The compact RC model
// (rcnet) and the fine-grid reference solver (refsolver) both produce
// symmetric positive-definite conductance systems; they assemble coordinate
// entries once and then talk to an Operator, never to a concrete matrix
// representation. Two backends implement the interface:
//
//   - DenseBackend: dense storage with LU factorization. Exact, O(n³) to
//     build, O(n²) per solve. Kept for tiny networks (where it wins on
//     constant factors) and as the parity oracle for the sparse path.
//   - SparseBackend: CSR storage with Jacobi-preconditioned conjugate
//     gradients. O(nnz) per iteration, warm-startable, and the only viable
//     choice for the O(10^4-10^5)-unknown reference grids and large
//     floorplan networks.
//
// Operators are immutable once assembled, so a single Operator may be shared
// by any number of goroutines; per-goroutine mutable state lives in a
// Workspace passed to Solve.

// Operator is an assembled symmetric positive-definite linear operator A
// together with a way to solve A·x = b. Implementations are immutable after
// construction and safe for concurrent use; callers that solve from multiple
// goroutines must pass distinct Workspaces.
type Operator interface {
	// Dim returns the square dimension of the operator.
	Dim() int
	// Apply computes dst = A·x. dst must have length Dim and may not alias x.
	Apply(x, dst []float64)
	// Solve solves A·x = b. x0 is an optional warm start (nil = zero guess;
	// iterative backends exploit it, direct ones ignore it). ws is optional
	// per-goroutine scratch (nil allocates). The solution is returned; dst,
	// when non-nil, is used as the result buffer.
	Solve(b, x0, dst []float64, ws *Workspace) ([]float64, error)
	// SolveBatch solves A·X = B for K = len(b) right-hand sides in one
	// factor traversal where the backend supports it (the supernodal direct
	// path; dense LU and CG fall back to per-column solves). x0 and dst
	// follow the Solve contract column-wise (either may be nil, as may
	// individual columns). The x0 warm-start contract is asymmetric by
	// design: direct backends (dense LU, Cholesky, reduced) ignore x0
	// entirely — their results are bit-identical for any warm start — while
	// the iterative backend uses x0[k] as column k's initial guess, reaching
	// the same converged answer in fewer iterations when the guess is close.
	// Per-column results are identical to K successive Solve calls —
	// batching changes memory traffic, never arithmetic — so batched and
	// sequential callers agree bitwise. On the iterative backend the first
	// stalled column aborts the remaining ones; direct backends cannot fail
	// after factorization.
	SolveBatch(b, x0, dst [][]float64, ws *Workspace) ([][]float64, error)
	// Shift returns a new operator A + diag(d) sharing no mutable state with
	// the receiver. This is how backward-Euler operators (C/dt + A) are
	// derived from a conductance operator without reassembly by the caller.
	Shift(d []float64) (Operator, error)
	// Diag returns a copy of the operator's diagonal.
	Diag() []float64
	// Iterative reports whether Solve stops at an iterative tolerance
	// (true for CG) rather than solving exactly (false for LU). Callers use
	// it to decide whether post-solve polishing is worthwhile.
	Iterative() bool
}

// Backend assembles Operators from coordinate-format entries. Duplicate
// (i, j) entries are summed in their given order.
type Backend interface {
	// Name identifies the backend ("dense" or "sparse") for logs and tests.
	Name() string
	// Assemble builds an n×n operator from coordinate entries.
	Assemble(n int, entries []Coord) (Operator, error)
}

// Workspace holds per-goroutine scratch vectors for solves. The zero value
// is ready to use; vectors grow on demand and are reused across calls, so a
// long transient performs no per-step allocation.
type Workspace struct {
	r, z, p, ap, inv []float64
	y                []float64 // direct-solve scratch (Cholesky permuted solve)
	yb               []float64 // interleaved K-wide block (batched direct solves)

	// Float32-refinement scratch: flat column blocks for the sweep result
	// and the residual/correction, plus reusable column views over them.
	refX, refR   []float64
	refXV, refRV [][]float64

	// LastIterations reports the iteration count of the most recent Solve
	// through this workspace: CG iterations for the iterative backend, 0 for
	// the direct ones. Callers use it for per-path solver statistics; the
	// workspace is per-goroutine, so the read is race-free.
	LastIterations int

	// KernelSolves counts direct triangular-sweep kernel invocations made
	// through this workspace, by kernel width: slots 0..3 are the 1-, 4-,
	// 8- and 16-wide kernels (a Float32 refinement pass counts as a second
	// invocation). Per-goroutine like the rest of the workspace; callers
	// that aggregate solver statistics read and reset the slots between
	// solves.
	KernelSolves [4]int64

	// Reduced-operator scratch: projected right-hand side, reduced solution
	// and triangular-sweep intermediate, each of length order r.
	rb, rx, ry []float64
}

// reduced returns the three length-r reduced-solve scratch vectors, growing
// them if needed.
func (w *Workspace) reduced(r int) (bh, xh, y []float64) {
	if cap(w.rb) < r {
		w.rb = make([]float64, r)
		w.rx = make([]float64, r)
		w.ry = make([]float64, r)
	}
	return w.rb[:r], w.rx[:r], w.ry[:r]
}

// direct returns the length-n direct-solve scratch vector, growing it if
// needed.
func (w *Workspace) direct(n int) []float64 {
	if cap(w.y) < n {
		w.y = make([]float64, n)
	}
	return w.y[:n]
}

// batchBuf returns the length-n interleaved working block for batched
// solves, growing it if needed.
func (w *Workspace) batchBuf(n int) []float64 {
	if cap(w.yb) < n {
		w.yb = make([]float64, n)
	}
	return w.yb[:n]
}

// refineBlock returns k column views of length n over the two refinement
// scratch blocks (sweep result, residual/correction), growing them if
// needed. Views are re-sliced on every call, so mixed batch widths and
// problem sizes share the same backing arrays.
func (w *Workspace) refineBlock(n, k int) (xh, rb [][]float64) {
	if cap(w.refX) < n*k {
		w.refX = make([]float64, n*k)
		w.refR = make([]float64, n*k)
	}
	if cap(w.refXV) < k {
		w.refXV = make([][]float64, k)
		w.refRV = make([][]float64, k)
	}
	xh = w.refXV[:k]
	rb = w.refRV[:k]
	flatX, flatR := w.refX[:n*k], w.refR[:n*k]
	for i := 0; i < k; i++ {
		xh[i] = flatX[i*n : (i+1)*n]
		rb[i] = flatR[i*n : (i+1)*n]
	}
	return xh, rb
}

// refinePair returns the single-column refinement scratch vectors.
func (w *Workspace) refinePair(n int) (xh, rb []float64) {
	xv, rv := w.refineBlock(n, 1)
	return xv[0], rv[0]
}

// vectors returns the five length-n scratch vectors, growing them if needed.
func (w *Workspace) vectors(n int) (r, z, p, ap, inv []float64) {
	if cap(w.r) < n {
		w.r = make([]float64, n)
		w.z = make([]float64, n)
		w.p = make([]float64, n)
		w.ap = make([]float64, n)
		w.inv = make([]float64, n)
	}
	return w.r[:n], w.z[:n], w.p[:n], w.ap[:n], w.inv[:n]
}

// --- Dense backend ---

// DenseBackend assembles dense LU-factored operators.
type DenseBackend struct{}

// Name implements Backend.
func (DenseBackend) Name() string { return "dense" }

// Assemble implements Backend. The factorization happens eagerly, so a
// singular system (e.g. an RC network with no path to ambient) is reported
// here rather than at the first solve.
func (DenseBackend) Assemble(n int, entries []Coord) (Operator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("linalg: dense assemble with n=%d", n)
	}
	a := NewMatrix(n, n)
	for _, e := range entries {
		if e.I < 0 || e.I >= n || e.J < 0 || e.J >= n {
			return nil, fmt.Errorf("linalg: entry (%d,%d) out of range for n=%d", e.I, e.J, n)
		}
		a.Add(e.I, e.J, e.V)
	}
	return newDenseOperator(a)
}

type denseOperator struct {
	a  *Matrix
	lu *LU
}

func newDenseOperator(a *Matrix) (*denseOperator, error) {
	lu, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return &denseOperator{a: a, lu: lu}, nil
}

func (d *denseOperator) Dim() int { return d.a.Rows }

func (d *denseOperator) Apply(x, dst []float64) {
	n := d.a.Rows
	if len(x) != n || len(dst) != n {
		panic("linalg: dense Apply dimension mismatch")
	}
	for i := 0; i < n; i++ {
		row := d.a.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

func (d *denseOperator) Solve(b, _, dst []float64, ws *Workspace) ([]float64, error) {
	if ws != nil {
		ws.LastIterations = 0
	}
	if dst == nil {
		dst = make([]float64, d.a.Rows)
	}
	if &dst[0] == &b[0] {
		copy(dst, d.lu.Solve(b))
		return dst, nil
	}
	d.lu.SolveInto(dst, b)
	return dst, nil
}

// SolveBatch implements Operator: LU back-substitution has no cross-column
// reuse to exploit, so the batch is K successive solves.
func (d *denseOperator) SolveBatch(b, _, dst [][]float64, ws *Workspace) ([][]float64, error) {
	if dst == nil {
		dst = make([][]float64, len(b))
	}
	for k := range b {
		x, err := d.Solve(b[k], nil, dst[k], ws)
		if err != nil {
			return dst, fmt.Errorf("linalg: batch column %d: %w", k, err)
		}
		dst[k] = x
	}
	return dst, nil
}

func (d *denseOperator) Shift(diag []float64) (Operator, error) {
	if len(diag) != d.a.Rows {
		return nil, fmt.Errorf("linalg: Shift dimension mismatch %d vs %d", d.a.Rows, len(diag))
	}
	m := d.a.Clone()
	for i, v := range diag {
		m.Add(i, i, v)
	}
	return newDenseOperator(m)
}

func (d *denseOperator) Diag() []float64 {
	out := make([]float64, d.a.Rows)
	for i := range out {
		out[i] = d.a.At(i, i)
	}
	return out
}

func (d *denseOperator) Iterative() bool { return false }

// --- Sparse backend ---

// SparseBackend assembles CSR operators solved with Jacobi-preconditioned
// conjugate gradients. The zero value uses the package CG defaults
// (tolerance 1e-10, 50·n iteration cap), which keep the iterative answer
// within parity-test tolerance of the dense oracle.
type SparseBackend struct {
	// Opt overrides the CG controls; zero fields take the defaults above.
	Opt CGOptions
}

// Name implements Backend.
func (SparseBackend) Name() string { return "sparse" }

// Assemble implements Backend.
func (s SparseBackend) Assemble(n int, entries []Coord) (Operator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("linalg: sparse assemble with n=%d", n)
	}
	for _, e := range entries {
		if e.I < 0 || e.I >= n || e.J < 0 || e.J >= n {
			return nil, fmt.Errorf("linalg: entry (%d,%d) out of range for n=%d", e.I, e.J, n)
		}
	}
	return NewSparseOperator(NewCSR(n, entries), s.Opt), nil
}

// SparseOperator wraps a CSR matrix with the shared iterative-solver
// machinery. Construct with NewSparseOperator (e.g. to reuse an
// already-assembled CSR, as the reference solver does).
type SparseOperator struct {
	m   *CSR
	opt CGOptions
}

// NewSparseOperator builds an Operator over an existing CSR matrix. The
// matrix must not be mutated afterwards. Zero CGOptions fields default to
// tolerance 1e-10 and a 50·n iteration cap.
func NewSparseOperator(m *CSR, opt CGOptions) *SparseOperator {
	if opt.Tol == 0 {
		opt.Tol = 1e-10
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 50 * m.N
	}
	return &SparseOperator{m: m, opt: opt}
}

// Matrix exposes the underlying CSR (read-only).
func (s *SparseOperator) Matrix() *CSR { return s.m }

func (s *SparseOperator) Dim() int { return s.m.N }

func (s *SparseOperator) Apply(x, dst []float64) {
	if len(dst) != s.m.N {
		panic("linalg: sparse Apply dimension mismatch")
	}
	s.m.MulVec(x, dst)
}

func (s *SparseOperator) Solve(b, x0, dst []float64, ws *Workspace) ([]float64, error) {
	if ws == nil {
		ws = &Workspace{}
	}
	if dst == nil {
		dst = make([]float64, s.m.N)
	}
	res := solveCGWS(s.m, b, x0, dst, s.opt, ws)
	if !res.Converged {
		return nil, fmt.Errorf("linalg: CG stalled at relative residual %g after %d iterations", res.Residual, res.Iterations)
	}
	return dst, nil
}

// SolveBatch implements Operator: every column runs its own Krylov
// iteration (there is no shared traversal to amortize), warm-started from
// its x0 column. The first stalled column aborts the remaining ones.
func (s *SparseOperator) SolveBatch(b, x0, dst [][]float64, ws *Workspace) ([][]float64, error) {
	if dst == nil {
		dst = make([][]float64, len(b))
	}
	for k := range b {
		var warm []float64
		if x0 != nil {
			warm = x0[k]
		}
		x, err := s.Solve(b[k], warm, dst[k], ws)
		if err != nil {
			return dst, fmt.Errorf("linalg: batch column %d: %w", k, err)
		}
		dst[k] = x
	}
	return dst, nil
}

func (s *SparseOperator) Shift(diag []float64) (Operator, error) {
	if len(diag) != s.m.N {
		return nil, fmt.Errorf("linalg: Shift dimension mismatch %d vs %d", s.m.N, len(diag))
	}
	return NewSparseOperator(s.m.Shifted(diag), s.opt), nil
}

func (s *SparseOperator) Diag() []float64 { return s.m.Diagonal() }

func (s *SparseOperator) Iterative() bool { return true }

// Shifted returns a new CSR equal to m + diag(d). Rows that lack a structural
// diagonal entry gain one.
func (m *CSR) Shifted(d []float64) *CSR {
	if len(d) != m.N {
		panic("linalg: Shifted dimension mismatch")
	}
	out := &CSR{
		N:      m.N,
		RowPtr: make([]int, 0, m.N+1),
		ColIdx: make([]int, 0, m.NNZ()+m.N),
		Values: make([]float64, 0, m.NNZ()+m.N),
	}
	out.RowPtr = append(out.RowPtr, 0)
	for i := 0; i < m.N; i++ {
		placed := false
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j, v := m.ColIdx[k], m.Values[k]
			if j == i {
				v += d[i]
				placed = true
			} else if j > i && !placed {
				// Columns are sorted within a row (NewCSR guarantees it), so
				// insert the new diagonal before the first column past it.
				out.ColIdx = append(out.ColIdx, i)
				out.Values = append(out.Values, d[i])
				placed = true
			}
			out.ColIdx = append(out.ColIdx, j)
			out.Values = append(out.Values, v)
		}
		if !placed {
			out.ColIdx = append(out.ColIdx, i)
			out.Values = append(out.Values, d[i])
		}
		out.RowPtr = append(out.RowPtr, len(out.ColIdx))
	}
	return out
}

// solveCGWS is SolveCG with caller-provided scratch and result buffers: the
// building block behind SparseOperator.Solve, kept allocation-free so
// worker-pool transients can run one Workspace per goroutine.
func solveCGWS(a *CSR, b, x0, x []float64, opt CGOptions, ws *Workspace) CGResult {
	n := a.N
	if len(b) != n || len(x) != n {
		panic("linalg: solveCGWS dimension mismatch")
	}
	if opt.Tol == 0 {
		opt.Tol = 1e-9
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 10 * n
	}
	if x0 != nil {
		copy(x, x0)
	} else {
		Fill(x, 0)
	}
	r, z, p, ap, inv := ws.vectors(n)
	// Jacobi preconditioner from the diagonal.
	a.diagonalInto(inv)
	for i, v := range inv {
		if v == 0 {
			inv[i] = 1
		} else {
			inv[i] = 1 / v
		}
	}
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	ws.LastIterations = 0
	if rn := Norm2(r) / bnorm; rn < opt.Tol {
		return CGResult{Iterations: 0, Residual: rn, Converged: true}
	}
	for i := range z {
		z[i] = inv[i] * r[i]
	}
	copy(p, z)
	rz := Dot(r, z)
	var res CGResult
	for it := 0; it < opt.MaxIter; it++ {
		a.MulVec(p, ap)
		pap := Dot(p, ap)
		if pap == 0 {
			break
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rn := Norm2(r) / bnorm
		res.Iterations = it + 1
		res.Residual = rn
		ws.LastIterations = res.Iterations
		if rn < opt.Tol {
			res.Converged = true
			return res
		}
		for i := range z {
			z[i] = inv[i] * r[i]
		}
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return res
}

// diagonalInto extracts the diagonal into dst (zeros where absent).
func (m *CSR) diagonalInto(dst []float64) {
	for i := 0; i < m.N; i++ {
		dst[i] = 0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if m.ColIdx[k] == i {
				dst[i] = m.Values[k]
				break
			}
		}
	}
}
