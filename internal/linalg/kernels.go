package linalg

import "fmt"

// Register-blocked numeric kernels for the supernodal factorization and the
// batched triangular solves (DESIGN.md §9). Two families live here:
//
//   - Factor-side: the 4×4 outer-product micro-kernel applied by the
//     left-looking panel update (updateTile4) and the rank-4 blocked dense
//     in-panel LDLᵀ (densePanelLDL). Both keep the per-entry operation
//     sequence of the scalar kernels — every output entry accumulates its
//     pivot contributions in ascending order and is written once — so the
//     factor is bit-identical however the panel work is tiled or split
//     across workers.
//   - Solve-side: the interleaved K-wide forward/backward sweeps
//     (sweepSolve, sweep4, sweep8, sweep16), generic over the factor storage
//     precision. Accumulation is always float64; a float32 factor only
//     changes the loads.

// factorValue constrains the compressed-factor element type: float64 for
// full precision, float32 for the reduced-precision storage behind
// FactorPrecision (solves then add one step of iterative refinement).
type factorValue interface {
	~float32 | ~float64
}

// compFactor is the zero-dropped compressed view of a finished factor in the
// storage precision the sweeps traverse: column form (backward sweep) and
// row-gather form (forward sweep).
type compFactor[F factorValue] struct {
	cptr  []int32
	crows []int32
	cvals []F
	rptr  []int32
	rcols []int32
	rvals []F
}

// --- factor-side kernels ---

// updateTile4 subtracts supernode d's outer-product contribution to four
// consecutive target columns rd[q..q+3] of panel P. The four columns form a
// trapezoid: a 6-entry triangular fringe plus a shared rectangle processed
// as 4×4 register blocks, so each source value Pd[t][x] and each rowLoc
// lookup is loaded once per four accumulator columns instead of once per
// column. ab must have room for 4·dw scale factors.
//
// Per entry this performs exactly the scalar path's operations — alpha
// products, ascending-t accumulation, one subtraction — so tiled, scalar and
// split-panel updates agree to the last bit.
func updateTile4(P []float64, nr int, Pd []float64, dnr, dw int, rd []int32, q int, rowLoc []int32, dpiv, ab []float64) {
	nrd := len(rd)
	// ab[4t+c] = L[target_c, t]·d_t: the scalar path's alpha, one per
	// (pivot, target-column) pair.
	for t := 0; t < dw; t++ {
		off := t*dnr + dw + q
		row := Pd[off : off+4 : off+4]
		dt := dpiv[t]
		ab[4*t+0] = row[0] * dt
		ab[4*t+1] = row[1] * dt
		ab[4*t+2] = row[2] * dt
		ab[4*t+3] = row[3] * dt
	}
	d0 := P[int(rowLoc[rd[q]])*nr:]
	d1 := P[int(rowLoc[rd[q+1]])*nr:]
	d2 := P[int(rowLoc[rd[q+2]])*nr:]
	d3 := P[int(rowLoc[rd[q+3]])*nr:]
	// Triangular fringe: rows q+c..q+2 of columns 0..2 (column c starts at
	// its own diagonal row q+c; the rectangle below starts at row q+3).
	dst := [3][]float64{d0, d1, d2}
	for c := 0; c < 3; c++ {
		dc := dst[c]
		for x := q + c; x < q+3; x++ {
			var s float64
			for t := 0; t < dw; t++ {
				s += Pd[t*dnr+dw+x] * ab[4*t+c]
			}
			dc[rowLoc[rd[x]]] -= s
		}
	}
	// Shared rectangle in 4×4 register blocks: 8 loads feed 16 multiply-adds.
	x := q + 3
	for ; x+4 <= nrd; x += 4 {
		r0 := rowLoc[rd[x]]
		r1 := rowLoc[rd[x+1]]
		r2 := rowLoc[rd[x+2]]
		r3 := rowLoc[rd[x+3]]
		var c00, c01, c02, c03 float64
		var c10, c11, c12, c13 float64
		var c20, c21, c22, c23 float64
		var c30, c31, c32, c33 float64
		for t := 0; t < dw; t++ {
			off := t*dnr + dw + x
			src := Pd[off : off+4 : off+4]
			a := ab[4*t : 4*t+4 : 4*t+4]
			v0, v1, v2, v3 := src[0], src[1], src[2], src[3]
			a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
			c00 += v0 * a0
			c01 += v0 * a1
			c02 += v0 * a2
			c03 += v0 * a3
			c10 += v1 * a0
			c11 += v1 * a1
			c12 += v1 * a2
			c13 += v1 * a3
			c20 += v2 * a0
			c21 += v2 * a1
			c22 += v2 * a2
			c23 += v2 * a3
			c30 += v3 * a0
			c31 += v3 * a1
			c32 += v3 * a2
			c33 += v3 * a3
		}
		d0[r0] -= c00
		d0[r1] -= c10
		d0[r2] -= c20
		d0[r3] -= c30
		d1[r0] -= c01
		d1[r1] -= c11
		d1[r2] -= c21
		d1[r3] -= c31
		d2[r0] -= c02
		d2[r1] -= c12
		d2[r2] -= c22
		d2[r3] -= c32
		d3[r0] -= c03
		d3[r1] -= c13
		d3[r2] -= c23
		d3[r3] -= c33
	}
	// Row remainder: one source row across the four columns.
	for ; x < nrd; x++ {
		r := rowLoc[rd[x]]
		var s0, s1, s2, s3 float64
		for t := 0; t < dw; t++ {
			v := Pd[t*dnr+dw+x]
			s0 += v * ab[4*t+0]
			s1 += v * ab[4*t+1]
			s2 += v * ab[4*t+2]
			s3 += v * ab[4*t+3]
		}
		d0[r] -= s0
		d1[r] -= s1
		d2[r] -= s2
		d3[r] -= s3
	}
}

// densePanelLDL runs the dense left-looking LDLᵀ factorization of one
// assembled, fully updated panel, with the trailing update blocked four
// pivot columns at a time (a rank-4 fused GEMV: four column loads and four
// multiply-adds per output element). Always executed by exactly one worker
// per panel, after all update chunks of that panel have completed.
func densePanelLDL(sym *cholSymbolic, f *cholFactor, s int32) error {
	c0 := int(sym.snStart[s])
	w := int(sym.snStart[s+1]) - c0
	nr := w + len(sym.rows[s])
	P := f.vals[sym.panelPtr[s] : sym.panelPtr[s]+nr*w]
	for j := 0; j < w; j++ {
		colj := P[j*nr : (j+1)*nr]
		t := 0
		for ; t+4 <= j; t += 4 {
			ct0 := P[t*nr : (t+1)*nr]
			ct1 := P[(t+1)*nr : (t+2)*nr]
			ct2 := P[(t+2)*nr : (t+3)*nr]
			ct3 := P[(t+3)*nr : (t+4)*nr]
			a0 := ct0[j] * f.d[c0+t]
			a1 := ct1[j] * f.d[c0+t+1]
			a2 := ct2[j] * f.d[c0+t+2]
			a3 := ct3[j] * f.d[c0+t+3]
			for i := j; i < nr; i++ {
				colj[i] -= ct0[i]*a0 + ct1[i]*a1 + ct2[i]*a2 + ct3[i]*a3
			}
		}
		for ; t < j; t++ {
			colt := P[t*nr : (t+1)*nr]
			alpha := colt[j] * f.d[c0+t]
			for i := j; i < nr; i++ {
				colj[i] -= colt[i] * alpha
			}
		}
		dj := colj[j]
		if dj <= 0 {
			return fmt.Errorf("%w: pivot %d (node %d) is %g", ErrNotSPD, c0+j, sym.perm[c0+j], dj)
		}
		f.d[c0+j] = dj
		inv := 1 / dj
		f.invD[c0+j] = inv
		for i := j + 1; i < nr; i++ {
			colj[i] *= inv
		}
	}
	return nil
}

// --- solve-side kernels ---

// sweepSolve runs the fused single-RHS forward/backward sweeps over a
// compressed factor: permute, forward-substitute in row-gather form, scale
// by D⁻¹, back-substitute over the columns, permute back. Accumulation is
// float64 regardless of the factor storage precision. dst may alias b (the
// forward sweep finishes reading b before the backward sweep writes dst).
func sweepSolve[F factorValue](cf *compFactor[F], perm []int, invD, y, b, dst []float64) {
	n := len(perm)
	rptr, rcols, rvals := cf.rptr, cf.rcols, cf.rvals
	for j := 0; j < n; j++ {
		sum := b[perm[j]]
		p1 := rptr[j+1]
		for p := rptr[j]; p < p1; p++ {
			sum -= float64(rvals[p]) * y[rcols[p]]
		}
		y[j] = sum
	}
	cptr, crows, cvals := cf.cptr, cf.crows, cf.cvals
	for j := n - 1; j >= 0; j-- {
		sum := y[j] * invD[j]
		p1 := cptr[j+1]
		for p := cptr[j]; p < p1; p++ {
			sum -= float64(cvals[p]) * y[crows[p]]
		}
		y[j] = sum
		dst[perm[j]] = sum
	}
}

// sweep4 solves four right-hand sides per factor traversal: the working
// vectors interleave (yb[4j+k] is unknown j of system k), so every factor
// entry and index loads once and feeds four register accumulators.
// Per-column arithmetic is identical to sweepSolve.
func sweep4[F factorValue](cf *compFactor[F], perm []int, invD, yb []float64, bs, xs [][]float64) {
	n := len(perm)
	b0, b1, b2, b3 := bs[0], bs[1], bs[2], bs[3]
	x0, x1, x2, x3 := xs[0], xs[1], xs[2], xs[3]
	rptr, rcols, rvals := cf.rptr, cf.rcols, cf.rvals
	for j := 0; j < n; j++ {
		pj := perm[j]
		s0, s1, s2, s3 := b0[pj], b1[pj], b2[pj], b3[pj]
		p1 := rptr[j+1]
		for p := rptr[j]; p < p1; p++ {
			ri := int(rcols[p]) * 4
			v := float64(rvals[p])
			s0 -= v * yb[ri]
			s1 -= v * yb[ri+1]
			s2 -= v * yb[ri+2]
			s3 -= v * yb[ri+3]
		}
		o := j * 4
		yb[o], yb[o+1], yb[o+2], yb[o+3] = s0, s1, s2, s3
	}
	cptr, crows, cvals := cf.cptr, cf.crows, cf.cvals
	for j := n - 1; j >= 0; j-- {
		o := j * 4
		d := invD[j]
		s0, s1, s2, s3 := yb[o]*d, yb[o+1]*d, yb[o+2]*d, yb[o+3]*d
		p1 := cptr[j+1]
		for p := cptr[j]; p < p1; p++ {
			ri := int(crows[p]) * 4
			v := float64(cvals[p])
			s0 -= v * yb[ri]
			s1 -= v * yb[ri+1]
			s2 -= v * yb[ri+2]
			s3 -= v * yb[ri+3]
		}
		yb[o], yb[o+1], yb[o+2], yb[o+3] = s0, s1, s2, s3
		pj := perm[j]
		x0[pj], x1[pj], x2[pj], x3[pj] = s0, s1, s2, s3
	}
}

// sweep8 is the 8-wide interleaved sweep: one factor traversal per eight
// right-hand sides, eight register accumulators.
func sweep8[F factorValue](cf *compFactor[F], perm []int, invD, yb []float64, bs, xs [][]float64) {
	n := len(perm)
	b0, b1, b2, b3 := bs[0], bs[1], bs[2], bs[3]
	b4, b5, b6, b7 := bs[4], bs[5], bs[6], bs[7]
	x0, x1, x2, x3 := xs[0], xs[1], xs[2], xs[3]
	x4, x5, x6, x7 := xs[4], xs[5], xs[6], xs[7]
	rptr, rcols, rvals := cf.rptr, cf.rcols, cf.rvals
	for j := 0; j < n; j++ {
		pj := perm[j]
		s0, s1, s2, s3 := b0[pj], b1[pj], b2[pj], b3[pj]
		s4, s5, s6, s7 := b4[pj], b5[pj], b6[pj], b7[pj]
		p1 := rptr[j+1]
		for p := rptr[j]; p < p1; p++ {
			ri := int(rcols[p]) * 8
			v := float64(rvals[p])
			y := yb[ri : ri+8 : ri+8]
			s0 -= v * y[0]
			s1 -= v * y[1]
			s2 -= v * y[2]
			s3 -= v * y[3]
			s4 -= v * y[4]
			s5 -= v * y[5]
			s6 -= v * y[6]
			s7 -= v * y[7]
		}
		o := j * 8
		y := yb[o : o+8 : o+8]
		y[0], y[1], y[2], y[3] = s0, s1, s2, s3
		y[4], y[5], y[6], y[7] = s4, s5, s6, s7
	}
	cptr, crows, cvals := cf.cptr, cf.crows, cf.cvals
	for j := n - 1; j >= 0; j-- {
		o := j * 8
		d := invD[j]
		yo := yb[o : o+8 : o+8]
		s0, s1, s2, s3 := yo[0]*d, yo[1]*d, yo[2]*d, yo[3]*d
		s4, s5, s6, s7 := yo[4]*d, yo[5]*d, yo[6]*d, yo[7]*d
		p1 := cptr[j+1]
		for p := cptr[j]; p < p1; p++ {
			ri := int(crows[p]) * 8
			v := float64(cvals[p])
			y := yb[ri : ri+8 : ri+8]
			s0 -= v * y[0]
			s1 -= v * y[1]
			s2 -= v * y[2]
			s3 -= v * y[3]
			s4 -= v * y[4]
			s5 -= v * y[5]
			s6 -= v * y[6]
			s7 -= v * y[7]
		}
		yo[0], yo[1], yo[2], yo[3] = s0, s1, s2, s3
		yo[4], yo[5], yo[6], yo[7] = s4, s5, s6, s7
		pj := perm[j]
		x0[pj], x1[pj], x2[pj], x3[pj] = s0, s1, s2, s3
		x4[pj], x5[pj], x6[pj], x7[pj] = s4, s5, s6, s7
	}
}

// sweep16 is the 16-wide interleaved sweep: one factor traversal per sixteen
// right-hand sides. Sixteen live accumulators would exceed the architectural
// register file on amd64 (16 SSE registers) and spill on every nonzero, so
// each unknown's nonzero segment runs as two 8-wide half-passes: the column
// indices and factor values are L1-hot on the second pass, while the 16-wide
// working block still streams the factor from memory exactly once. Per
// accumulator the operation sequence is identical to sweepSolve.
func sweep16[F factorValue](cf *compFactor[F], perm []int, invD, yb []float64, bs, xs [][]float64) {
	n := len(perm)
	b0, b1, b2, b3 := bs[0], bs[1], bs[2], bs[3]
	b4, b5, b6, b7 := bs[4], bs[5], bs[6], bs[7]
	b8, b9, b10, b11 := bs[8], bs[9], bs[10], bs[11]
	b12, b13, b14, b15 := bs[12], bs[13], bs[14], bs[15]
	x0, x1, x2, x3 := xs[0], xs[1], xs[2], xs[3]
	x4, x5, x6, x7 := xs[4], xs[5], xs[6], xs[7]
	x8, x9, x10, x11 := xs[8], xs[9], xs[10], xs[11]
	x12, x13, x14, x15 := xs[12], xs[13], xs[14], xs[15]
	rptr, rcols, rvals := cf.rptr, cf.rcols, cf.rvals
	for j := 0; j < n; j++ {
		pj := perm[j]
		p0, p1 := rptr[j], rptr[j+1]
		o := j * 16
		s0, s1, s2, s3 := b0[pj], b1[pj], b2[pj], b3[pj]
		s4, s5, s6, s7 := b4[pj], b5[pj], b6[pj], b7[pj]
		for p := p0; p < p1; p++ {
			ri := int(rcols[p]) * 16
			v := float64(rvals[p])
			y := yb[ri : ri+8 : ri+8]
			s0 -= v * y[0]
			s1 -= v * y[1]
			s2 -= v * y[2]
			s3 -= v * y[3]
			s4 -= v * y[4]
			s5 -= v * y[5]
			s6 -= v * y[6]
			s7 -= v * y[7]
		}
		ylo := yb[o : o+8 : o+8]
		ylo[0], ylo[1], ylo[2], ylo[3] = s0, s1, s2, s3
		ylo[4], ylo[5], ylo[6], ylo[7] = s4, s5, s6, s7
		s0, s1, s2, s3 = b8[pj], b9[pj], b10[pj], b11[pj]
		s4, s5, s6, s7 = b12[pj], b13[pj], b14[pj], b15[pj]
		for p := p0; p < p1; p++ {
			ri := int(rcols[p])*16 + 8
			v := float64(rvals[p])
			y := yb[ri : ri+8 : ri+8]
			s0 -= v * y[0]
			s1 -= v * y[1]
			s2 -= v * y[2]
			s3 -= v * y[3]
			s4 -= v * y[4]
			s5 -= v * y[5]
			s6 -= v * y[6]
			s7 -= v * y[7]
		}
		yhi := yb[o+8 : o+16 : o+16]
		yhi[0], yhi[1], yhi[2], yhi[3] = s0, s1, s2, s3
		yhi[4], yhi[5], yhi[6], yhi[7] = s4, s5, s6, s7
	}
	cptr, crows, cvals := cf.cptr, cf.crows, cf.cvals
	for j := n - 1; j >= 0; j-- {
		pj := perm[j]
		p0, p1 := cptr[j], cptr[j+1]
		o := j * 16
		d := invD[j]
		ylo := yb[o : o+8 : o+8]
		s0, s1, s2, s3 := ylo[0]*d, ylo[1]*d, ylo[2]*d, ylo[3]*d
		s4, s5, s6, s7 := ylo[4]*d, ylo[5]*d, ylo[6]*d, ylo[7]*d
		for p := p0; p < p1; p++ {
			ri := int(crows[p]) * 16
			v := float64(cvals[p])
			y := yb[ri : ri+8 : ri+8]
			s0 -= v * y[0]
			s1 -= v * y[1]
			s2 -= v * y[2]
			s3 -= v * y[3]
			s4 -= v * y[4]
			s5 -= v * y[5]
			s6 -= v * y[6]
			s7 -= v * y[7]
		}
		ylo[0], ylo[1], ylo[2], ylo[3] = s0, s1, s2, s3
		ylo[4], ylo[5], ylo[6], ylo[7] = s4, s5, s6, s7
		x0[pj], x1[pj], x2[pj], x3[pj] = s0, s1, s2, s3
		x4[pj], x5[pj], x6[pj], x7[pj] = s4, s5, s6, s7
		yhi := yb[o+8 : o+16 : o+16]
		s0, s1, s2, s3 = yhi[0]*d, yhi[1]*d, yhi[2]*d, yhi[3]*d
		s4, s5, s6, s7 = yhi[4]*d, yhi[5]*d, yhi[6]*d, yhi[7]*d
		for p := p0; p < p1; p++ {
			ri := int(crows[p])*16 + 8
			v := float64(cvals[p])
			y := yb[ri : ri+8 : ri+8]
			s0 -= v * y[0]
			s1 -= v * y[1]
			s2 -= v * y[2]
			s3 -= v * y[3]
			s4 -= v * y[4]
			s5 -= v * y[5]
			s6 -= v * y[6]
			s7 -= v * y[7]
		}
		yhi[0], yhi[1], yhi[2], yhi[3] = s0, s1, s2, s3
		yhi[4], yhi[5], yhi[6], yhi[7] = s4, s5, s6, s7
		x8[pj], x9[pj], x10[pj], x11[pj] = s0, s1, s2, s3
		x12[pj], x13[pj], x14[pj], x15[pj] = s4, s5, s6, s7
	}
}

// sweepSolveK dispatches a K-wide interleaved sweep; K must be 4, 8 or 16
// (SolveBatch's greedy width decomposition guarantees it).
func sweepSolveK[F factorValue](cf *compFactor[F], perm []int, invD, yb []float64, bs, xs [][]float64) {
	switch len(bs) {
	case 4:
		sweep4(cf, perm, invD, yb, bs, xs)
	case 8:
		sweep8(cf, perm, invD, yb, bs, xs)
	case 16:
		sweep16(cf, perm, invD, yb, bs, xs)
	default:
		panic("linalg: sweepSolveK width must be 4, 8 or 16")
	}
}

// kernelWidthIndex maps a solve-kernel width to its Workspace.KernelSolves
// slot: 1, 4, 8, 16 → 0, 1, 2, 3.
func kernelWidthIndex(k int) int {
	switch k {
	case 1:
		return 0
	case 4:
		return 1
	case 8:
		return 2
	default:
		return 3
	}
}
