package linalg

import (
	"math/rand"
	"testing"
)

// Parity and batch tests for the supernodal kernels against the retained
// PR 4 scalar kernel (same symbolic analysis, per-entry numeric phase) and
// the dense LU oracle.

// TestSupernodalMatchesScalarKernel: the blocked factorization and panel
// solves must agree with the scalar up-looking kernel on the same ordering
// to direct-solve accuracy, across shapes that exercise wide panels (grid),
// zero-fill chains (path) and a dense trailing supernode (clique).
func TestSupernodalMatchesScalarKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	type tc struct {
		name    string
		n       int
		entries []Coord
	}
	gn, ge := gridEntries(13, 11)
	cases := []tc{
		{"grid", gn, ge},
		{"path", 90, pathEntries(90)},
		{"clique", 40, cliqueEntries(40)},
		{"random", 150, spdEntries(rng, 150)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m := NewCSR(c.n, c.entries)
			op, err := NewCholeskyOperator(m, 0)
			if err != nil {
				t.Fatal(err)
			}
			sf, err := factorScalarLDL(m, op.sym)
			if err != nil {
				t.Fatal(err)
			}
			b := make([]float64, c.n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			xs := sf.solveScalar(op.sym, b)
			xp, err := op.Solve(b, nil, nil, &Workspace{})
			if err != nil {
				t.Fatal(err)
			}
			if e := relErr(xs, xp); e > 1e-12 {
				t.Fatalf("panel solve diverges from scalar kernel by %g", e)
			}
		})
	}
}

// TestSupernodePartitionInvariants: the partition must tile the columns,
// respect the width cap, cover every true factor entry, and keep each
// relaxed panel's explicit-zero fraction within the amalgamation bound.
func TestSupernodePartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 17, 120, 400} {
		m := NewCSR(n, spdEntries(rng, n))
		sym := analyzeCholesky(m)
		ns := sym.Supernodes()
		if sym.snStart[0] != 0 || int(sym.snStart[ns]) != n {
			t.Fatalf("n=%d: supernodes do not tile columns: %v", n, sym.snStart)
		}
		total := 0
		for s := 0; s < ns; s++ {
			c0 := int(sym.snStart[s])
			w := int(sym.snStart[s+1]) - c0
			if w <= 0 || w > maxPanelWidth {
				t.Fatalf("n=%d: supernode %d width %d", n, s, w)
			}
			nb := len(sym.rows[s])
			for q := 1; q < nb; q++ {
				if sym.rows[s][q] <= sym.rows[s][q-1] {
					t.Fatalf("n=%d: supernode %d rows not ascending", n, s)
				}
			}
			// Panel slots (strictly lower) vs the true column counts: the
			// panel must cover every true entry, and the explicit zeros
			// relaxation introduces must stay under the snRelax bound.
			panel := w*nb + w*(w-1)/2
			truth := 0
			for j := c0; j < c0+w; j++ {
				cnt := sym.colPtr[j+1] - sym.colPtr[j]
				if slots := (c0 + w - 1 - j) + nb; cnt > slots {
					t.Fatalf("n=%d: column %d has %d entries, panel offers %d slots", n, j, cnt, slots)
				}
				truth += cnt
			}
			if float64(panel-truth) > snRelax*float64(panel)+1e-9 {
				t.Fatalf("n=%d: supernode %d zero fraction %d/%d exceeds relax bound", n, s, panel-truth, panel)
			}
			total += panel
		}
		if total < sym.nnzL {
			t.Fatalf("n=%d: panel storage %d below true nnz %d", n, total, sym.nnzL)
		}
	}
}

// TestSolveBatchMatchesSequential: SolveBatch must agree with K successive
// Solve calls to the last bit, for every backend (the reduced-precision
// Cholesky path included), every K in 1..17 — which exercises the 16-, 8-
// and 4-wide kernels and every ragged tail — plus widths past the lockstep
// group cap, warm starts included (CG).
func TestSolveBatchMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n = 160
	entries := spdEntries(rng, n)
	widths := make([]int, 0, 19)
	for kk := 1; kk <= 17; kk++ {
		widths = append(widths, kk)
	}
	widths = append(widths, 40, 70)
	for _, bk := range []Backend{DenseBackend{}, CholeskyBackend{}, CholeskyBackend{Precision: Float32}, SparseBackend{}} {
		op, err := bk.Assemble(n, entries)
		if err != nil {
			t.Fatal(err)
		}
		for _, kk := range widths {
			b := make([][]float64, kk)
			x0 := make([][]float64, kk)
			for k := range b {
				b[k] = make([]float64, n)
				x0[k] = make([]float64, n)
				for i := range b[k] {
					b[k][i] = rng.NormFloat64()
					x0[k][i] = rng.NormFloat64() * 0.1
				}
			}
			seq := make([][]float64, kk)
			ws := &Workspace{}
			for k := range b {
				x, err := op.Solve(b[k], x0[k], nil, ws)
				if err != nil {
					t.Fatal(err)
				}
				seq[k] = x
			}
			got, err := op.SolveBatch(b, x0, nil, &Workspace{})
			if err != nil {
				t.Fatal(err)
			}
			for k := range seq {
				for i := range seq[k] {
					if got[k][i] != seq[k][i] {
						t.Fatalf("%s K=%d: column %d row %d: batch %v vs sequential %v",
							bk.Name(), kk, k, i, got[k][i], seq[k][i])
					}
				}
			}
		}
	}
}

// TestSolveBatchAllocationFree: the batched direct solve must not allocate
// once workspace and destination buffers exist — through the 4-, 8- and
// 16-wide kernels, the mixed-width tail dispatch, and the float32
// refinement path.
func TestSolveBatchAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const n = 300
	entries := spdEntries(rng, n)
	for _, prec := range []FactorPrecision{Float64, Float32} {
		op, err := (CholeskyBackend{Precision: prec}).Assemble(n, entries)
		if err != nil {
			t.Fatal(err)
		}
		for _, kk := range []int{4, 8, 16, 23} {
			b := make([][]float64, kk)
			dst := make([][]float64, kk)
			for k := range b {
				b[k] = make([]float64, n)
				dst[k] = make([]float64, n)
				for i := range b[k] {
					b[k][i] = rng.NormFloat64()
				}
			}
			ws := &Workspace{}
			if _, err := op.SolveBatch(b, nil, dst, ws); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				if _, err := op.SolveBatch(b, nil, dst, ws); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("prec=%d K=%d: batched solve allocates %v times per run, want 0", prec, kk, allocs)
			}
		}
	}
}

// TestParallelFactorBitStable: the level-parallel factorization must produce
// a bitwise-identical factor to the serial sweep (the size gate is bypassed
// by calling the phases directly).
func TestParallelFactorBitStable(t *testing.T) {
	n, entries := gridEntries(48, 48) // 2304 unknowns: above parallelFactorMinN
	m := NewCSR(n, entries)
	sym := analyzeCholesky(m)
	// Serial reference, built through the same per-chunk phases the
	// factorization schedules.
	ws := newSnScratch(sym)
	ref := &cholFactor{vals: make([]float64, sym.panelLen), d: make([]float64, n), invD: make([]float64, n)}
	for s := int32(0); int(s) < sym.Supernodes(); s++ {
		w := int(sym.snStart[s+1] - sym.snStart[s])
		chunk := sym.updateChunk(s)
		for lo := 0; lo < w; lo += chunk {
			factorPanelCols(m, sym, ref, s, lo, min(lo+chunk, w), ws)
		}
		if err := densePanelLDL(sym, ref, s); err != nil {
			t.Fatal(err)
		}
	}
	ref.compress(sym, Float64)
	got, err := factorSupernodal(m, sym, Float64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.vals {
		if got.vals[i] != ref.vals[i] {
			t.Fatalf("panel value %d: parallel %v vs serial %v", i, got.vals[i], ref.vals[i])
		}
	}
	for i := range ref.d {
		if got.d[i] != ref.d[i] {
			t.Fatalf("pivot %d: parallel %v vs serial %v", i, got.d[i], ref.d[i])
		}
	}
}
