package linalg

// This file implements Krylov model-order reduction (MOR) for the compact RC
// thermal systems: a block-Arnoldi basis V projects the full conductance
// pencil (G, C) onto an r-dimensional subspace (r ≪ n), after which a
// backward-Euler step is a tiny dense pre-factored solve. The projected
// system matches the leading block moments of the transfer function
// (sC + G)⁻¹B about s = 0 and about one additional expansion frequency, so
// both the steady-state response and the transient dynamics excited through
// the power-input columns B survive the projection (DESIGN.md §10).
//
// ReducedOperator deliberately keeps the *full-space* Operator contract —
// Dim() = n, Solve maps an n-vector right-hand side to an n-vector solution
// through dst = V·Â⁻¹·Vᵀb — so the rcnet session, batch and stats machinery
// run unchanged on top of it. Apply and Diag go through the exact sparse
// matrix, which is what makes cheap a-posteriori residual checks (and the
// automatic fallback they gate) possible.

import (
	"fmt"
	"math"
	"sync"
)

// morDeflationTol is the relative column-norm threshold below which a
// candidate basis vector is considered linearly dependent on the basis built
// so far and dropped (block-Arnoldi deflation).
const morDeflationTol = 1e-10

// ReducedOperator is a Krylov-projected SPD system behaving as a full-space
// Operator: solves are performed in the r-dimensional reduced space through
// a pre-factored dense Cholesky and expanded back, applies and diagonals go
// through the exact sparse matrix. Shift projects the diagonal update into
// the reduced space and shares the basis, so every backward-Euler operator
// derived from one reduction reuses V.
type ReducedOperator struct {
	full *CSR      // exact (possibly shifted) full-space matrix
	v    []float64 // n×r orthonormal basis, column-major (column j = v[j*n:(j+1)*n])
	n, r int
	red  *Matrix   // VᵀAV, kept for deriving shifted operators
	fac  *morChol  // dense Cholesky factor of red
	caps []float64 // capacitance diagonal (shared; basis construction + Shift)
	dhat *Matrix   // Vᵀdiag(d)V of the Shift that made this operator (nil on the base)

	// Lazily-built dense backward-Euler propagator Â⁻¹·D̂ (see Propagator),
	// shared by every streaming session stepping through this operator.
	propOnce sync.Once
	prop     *Matrix

	projErr float64 // a-priori projection error estimate (see NewReducedOperator)
}

// NewReducedOperator builds a reduced-order projection of the SPD system g
// with capacitance diagonal caps. inputs are the full-length right-hand-side
// directions the reduction must serve (the power-injection columns B, plus
// typically the constant ambient term); order caps the basis size; shift is
// the second moment-matching frequency in rad/s (≤ 0 selects it
// automatically from the system's characteristic rates).
//
// The basis interleaves block moments of G⁻¹ and (G + ωC)⁻¹ applied to B —
// the expansion about s = 0 pins DC gains, the shifted expansion pins the
// transient response near ω. (All poles of an RC pencil are real, so the
// prescribed imaginary expansion point iω is realized through its real
// surrogate G + ωC, which spans the same Krylov directions for a symmetric
// pencil at matched |s|.) Columns are orthonormalized by twice-iterated
// modified Gram-Schmidt with deflation; construction fails if the system is
// not SPD or if no basis column survives.
func NewReducedOperator(g *CSR, caps []float64, inputs [][]float64, order int, shift float64) (*ReducedOperator, error) {
	n := g.N
	if len(caps) != n {
		return nil, fmt.Errorf("linalg: reduced operator: %d capacitances for dimension %d", len(caps), n)
	}
	if len(inputs) == 0 {
		return nil, fmt.Errorf("linalg: reduced operator needs at least one input column")
	}
	for k, b := range inputs {
		if len(b) != n {
			return nil, fmt.Errorf("linalg: reduced operator: input column %d has length %d, want %d", k, len(b), n)
		}
	}
	if order < 1 {
		return nil, fmt.Errorf("linalg: reduced operator: non-positive order %d", order)
	}
	if order > n {
		order = n
	}
	if shift <= 0 {
		shift = autoShift(g, caps)
	}

	// Moment generators: exact sparse factors of G and of the shifted
	// surrogate G + ωC. A system the direct path cannot factor cannot be
	// reduced either — the caller falls back to its full backend.
	op0, err := NewCholeskyOperator(g, 0)
	if err != nil {
		return nil, fmt.Errorf("linalg: reduced operator: factor G: %w", err)
	}
	shifted := make([]float64, n)
	for i, c := range caps {
		shifted[i] = shift * c
	}
	opS, err := op0.Shift(shifted)
	if err != nil {
		return nil, fmt.Errorf("linalg: reduced operator: factor G+ωC: %w", err)
	}

	basis := newMorBasis(n, order)
	ws := &Workspace{}
	// Previous accepted block per expansion point: the next moment block at
	// that point is op⁻¹·C applied to it (orthonormalized vectors keep the
	// recurrence numerically stable).
	prev := [2][][]float64{}
	ops := [2]Operator{op0, opS}
	for pt := 0; pt < 2 && !basis.full(); pt++ {
		prev[pt] = basis.expand(ops[pt], inputs, nil, ws)
	}
	for !basis.full() {
		grew := false
		for pt := 0; pt < 2 && !basis.full(); pt++ {
			if len(prev[pt]) == 0 {
				continue // this point's Krylov sequence has terminated
			}
			prev[pt] = basis.expand(ops[pt], prev[pt], caps, ws)
			grew = grew || len(prev[pt]) > 0
		}
		if !grew {
			break // both sequences deflated to nothing: subspace is exact
		}
	}
	r := basis.size()
	if r == 0 {
		return nil, fmt.Errorf("linalg: reduced operator: every basis column deflated")
	}

	ro := &ReducedOperator{full: g, v: basis.flat(), n: n, r: r, caps: caps}
	ro.red = ro.project(nil)
	ro.fac, err = factorMor(ro.red)
	if err != nil {
		return nil, fmt.Errorf("linalg: reduced operator: reduced system not SPD: %w", err)
	}
	ro.projErr = ro.estimateProjErr(inputs)
	return ro, nil
}

// autoShift picks the second expansion frequency as the geometric mean of
// the per-node conductance/capacitance rates — the characteristic frequency
// scale of the pencil, deterministic and O(n).
func autoShift(g *CSR, caps []float64) float64 {
	d := g.Diagonal()
	sum := 0.0
	cnt := 0
	for i, c := range caps {
		if c > 0 && d[i] > 0 {
			sum += math.Log(d[i] / c)
			cnt++
		}
	}
	if cnt == 0 {
		return 1
	}
	return math.Exp(sum / float64(cnt))
}

// morBasis accumulates orthonormal columns up to a cap.
type morBasis struct {
	cols [][]float64
	n    int
	cap  int
}

func newMorBasis(n, cap int) *morBasis {
	return &morBasis{n: n, cap: cap}
}

func (b *morBasis) size() int  { return len(b.cols) }
func (b *morBasis) full() bool { return len(b.cols) >= b.cap }

// expand generates one block moment: solves op⁻¹ applied to each source
// column (scaled by the diagonal weight, when non-nil), orthonormalizes the
// results against the basis and appends the survivors. The accepted columns
// are returned so the caller can continue the Krylov recurrence from them.
func (b *morBasis) expand(op Operator, src [][]float64, weight []float64, ws *Workspace) [][]float64 {
	var accepted [][]float64
	rhs := make([]float64, b.n)
	for _, s := range src {
		if b.full() {
			break
		}
		if weight == nil {
			copy(rhs, s)
		} else {
			for i := range rhs {
				rhs[i] = weight[i] * s[i]
			}
		}
		z, err := op.Solve(rhs, nil, nil, ws)
		if err != nil {
			continue
		}
		if col := b.orthonormalize(z); col != nil {
			accepted = append(accepted, col)
		}
	}
	return accepted
}

// orthonormalize runs twice-iterated modified Gram-Schmidt of z against the
// basis, returning the normalized column or nil when z deflates.
func (b *morBasis) orthonormalize(z []float64) []float64 {
	norm0 := Norm2(z)
	if norm0 == 0 || math.IsNaN(norm0) || math.IsInf(norm0, 0) {
		return nil
	}
	for pass := 0; pass < 2; pass++ {
		for _, q := range b.cols {
			AXPY(-Dot(q, z), q, z)
		}
	}
	norm := Norm2(z)
	if norm <= morDeflationTol*norm0 {
		return nil
	}
	Scale(1/norm, z)
	b.cols = append(b.cols, z)
	return z
}

// flat packs the basis column-major into one backing array.
func (b *morBasis) flat() []float64 {
	v := make([]float64, len(b.cols)*b.n)
	for j, col := range b.cols {
		copy(v[j*b.n:(j+1)*b.n], col)
	}
	return v
}

// project computes Vᵀ(A + diag(d))V for the operator's full matrix (d may
// be nil). O(r·nnz + n·r²) — paid once per reduction and once per distinct
// backward-Euler step size, never per step.
func (ro *ReducedOperator) project(d []float64) *Matrix {
	n, r := ro.n, ro.r
	red := NewMatrix(r, r)
	w := make([]float64, n)
	for a := 0; a < r; a++ {
		va := ro.v[a*n : (a+1)*n]
		ro.full.MulVec(va, w)
		if d != nil {
			for i := range w {
				w[i] += d[i] * va[i]
			}
		}
		for c := 0; c <= a; c++ {
			h := Dot(ro.v[c*n:(c+1)*n], w)
			red.Set(a, c, h)
			red.Set(c, a, h)
		}
	}
	return red
}

// estimateProjErr reports the worst relative residual ‖A·VÂ⁻¹Vᵀb − b‖/‖b‖
// over the input columns the basis was built from: an a-priori bound on how
// faithfully steady responses to the modeled inputs survive the projection.
func (ro *ReducedOperator) estimateProjErr(inputs [][]float64) float64 {
	ws := &Workspace{}
	x := make([]float64, ro.n)
	scratch := make([]float64, ro.n)
	worst := 0.0
	for _, b := range inputs {
		nb := Norm2(b)
		if nb == 0 {
			continue
		}
		ro.Solve(b, nil, x, ws)
		if res := ro.residual(b, x, scratch) / nb; res > worst {
			worst = res
		}
	}
	return worst
}

// residual returns ‖b − A·x‖₂ against the exact full-space matrix. scratch
// must have length Dim.
func (ro *ReducedOperator) residual(b, x, scratch []float64) float64 {
	ro.full.MulVec(x, scratch)
	var s float64
	for i, bi := range b {
		d := bi - scratch[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// RelativeResidual returns ‖b − A·x‖₂/‖b‖₂ computed against the exact
// full-space matrix — the a-posteriori check the stepping layer samples to
// decide whether the projection still holds. scratch must have length Dim.
func (ro *ReducedOperator) RelativeResidual(b, x, scratch []float64) float64 {
	nb := Norm2(b)
	if nb == 0 {
		return 0
	}
	return ro.residual(b, x, scratch) / nb
}

// Order returns the reduced dimension r.
func (ro *ReducedOperator) Order() int { return ro.r }

// ProjectionError returns the construction-time projection error estimate.
func (ro *ReducedOperator) ProjectionError() float64 { return ro.projErr }

// Dim returns the full-space dimension.
func (ro *ReducedOperator) Dim() int { return ro.n }

// Apply computes dst = A·x through the exact sparse matrix.
func (ro *ReducedOperator) Apply(x, dst []float64) { ro.full.MulVec(x, dst) }

// Diag returns the exact full-space diagonal.
func (ro *ReducedOperator) Diag() []float64 { return ro.full.Diagonal() }

// Iterative reports false: reduced solves are direct (pre-factored dense)
// and cannot stall. They are, however, approximate in the full space —
// callers gate them through RelativeResidual rather than refining.
func (ro *ReducedOperator) Iterative() bool { return false }

// Solve computes dst = V·Â⁻¹·Vᵀb: project the right-hand side, solve the
// pre-factored dense r×r system, expand. x0 is ignored (direct backends are
// warm-start-invariant; see Operator.SolveBatch). The per-call cost is
// O(n·r + r²) with no allocation when ws is provided.
func (ro *ReducedOperator) Solve(b, _, dst []float64, ws *Workspace) ([]float64, error) {
	if len(b) != ro.n {
		return nil, fmt.Errorf("linalg: reduced solve dimension %d, want %d", len(b), ro.n)
	}
	if dst == nil {
		dst = make([]float64, ro.n)
	}
	if ws == nil {
		ws = &Workspace{}
	}
	bh, xh, y := ws.reduced(ro.r)
	mulVT(ro.v, ro.n, ro.r, b, bh)
	ro.fac.solveInto(bh, xh, y)
	mulV(ro.v, ro.n, ro.r, xh, dst)
	return dst, nil
}

// SolveBatch solves the K right-hand sides column by column — the reduced
// solve is O(n·r + r²) with no factor traversal to amortize, so there is
// nothing a blocked path would save.
func (ro *ReducedOperator) SolveBatch(b, x0, dst [][]float64, ws *Workspace) ([][]float64, error) {
	if dst == nil {
		dst = make([][]float64, len(b))
	}
	if len(dst) != len(b) {
		return nil, fmt.Errorf("linalg: reduced batch shape: %d rhs, %d dst", len(b), len(dst))
	}
	for k := range b {
		var warm []float64
		if x0 != nil {
			warm = x0[k]
		}
		x, err := ro.Solve(b[k], warm, dst[k], ws)
		if err != nil {
			return nil, fmt.Errorf("linalg: reduced batch column %d: %w", k, err)
		}
		dst[k] = x
	}
	return dst, nil
}

// Shift returns the reduced operator for A + diag(d): the exact full matrix
// is shifted in CSR form (keeping Apply and residual checks exact) and the
// diagonal update is projected as Vᵀdiag(d)V onto the shared basis, then
// re-factored densely. O(n·r² + r³) per distinct shift — this is the
// "factorization" the rcnet per-dt cache amortizes.
func (ro *ReducedOperator) Shift(d []float64) (Operator, error) {
	if len(d) != ro.n {
		return nil, fmt.Errorf("linalg: reduced shift dimension %d, want %d", len(d), ro.n)
	}
	out := &ReducedOperator{
		full:    ro.full.Shifted(d),
		v:       ro.v,
		n:       ro.n,
		r:       ro.r,
		caps:    ro.caps,
		projErr: ro.projErr,
	}
	out.dhat = NewMatrix(ro.r, ro.r)
	addProjectedDiag(out.dhat, ro.v, ro.n, ro.r, d)
	out.red = NewMatrix(ro.r, ro.r)
	for i, base := range ro.red.Data {
		out.red.Data[i] = base + out.dhat.Data[i]
	}
	fac, err := factorMor(out.red)
	if err != nil {
		return nil, fmt.Errorf("linalg: reduced shift: %w", err)
	}
	out.fac = fac
	return out, nil
}

// addProjectedDiag accumulates Vᵀdiag(d)V into red.
func addProjectedDiag(red *Matrix, v []float64, n, r int, d []float64) {
	for a := 0; a < r; a++ {
		va := v[a*n : (a+1)*n]
		for c := 0; c <= a; c++ {
			vc := v[c*n : (c+1)*n]
			var h float64
			for i, di := range d {
				h += di * va[i] * vc[i]
			}
			red.Add(a, c, h)
			if c != a {
				red.Add(c, a, h)
			}
		}
	}
}

// ReduceInto projects a full-space vector onto the basis: z = Vᵀx. z must
// have length Order(), x length Dim(). O(n·r).
func (ro *ReducedOperator) ReduceInto(x, z []float64) {
	mulVT(ro.v, ro.n, ro.r, x, z)
}

// ExpandInto reconstructs a full-space vector from reduced coordinates:
// x = V·z. O(n·r).
func (ro *ReducedOperator) ExpandInto(z, x []float64) {
	mulV(ro.v, ro.n, ro.r, z, x)
}

// StepReducedBE advances backward-Euler state entirely in reduced
// coordinates: znew = Â⁻¹(bhat + D̂·z), where Â = Vᵀ(G + D)V is this
// operator's factored system and D̂ = Vᵀdiag(d)V is the projected C/dt
// block recorded by Shift. bhat is the caller's projected source term
// Vᵀ(power + ambient). This is the per-user streaming hot path: O(r²) per
// step — independent of the full dimension — versus O(n·r) for a
// full-space Solve. Only valid on an operator returned by Shift. znew must
// not alias z; no allocation when ws is provided.
func (ro *ReducedOperator) StepReducedBE(z, bhat, znew []float64, ws *Workspace) error {
	if ro.dhat == nil {
		return fmt.Errorf("linalg: StepReducedBE on an unshifted reduced operator")
	}
	r := ro.r
	if len(z) != r || len(bhat) != r || len(znew) != r {
		return fmt.Errorf("linalg: StepReducedBE dimension: got %d/%d/%d, want %d", len(z), len(bhat), len(znew), r)
	}
	if ws == nil {
		ws = &Workspace{}
	}
	bh, _, y := ws.reduced(r)
	for a := 0; a < r; a++ {
		row := ro.dhat.Row(a)
		s := bhat[a]
		var s0, s1 float64
		c := 0
		for ; c+1 < r; c += 2 {
			s0 += row[c] * z[c]
			s1 += row[c+1] * z[c+1]
		}
		if c < r {
			s0 += row[c] * z[c]
		}
		bh[a] = s + s0 + s1
	}
	ro.fac.solveInto(bh, znew, y)
	return nil
}

// Propagator returns the dense backward-Euler propagator P = Â⁻¹·D̂ of a
// Shift-produced operator, built once (r back-substitutions, O(r³)) and
// cached. With it, the reduced BE recurrence splits as
// znew = Â⁻¹bhat + P·z: a caller that also caches c = Â⁻¹bhat (see
// SolveReducedInto) pays a single r² matvec per step — half the flops of
// StepReducedBE and none of its triangular-solve latency. P is the
// discrete-time system matrix, contractive for any SPD (G, C) pencil, so
// iterating it is as stable as the solve form.
func (ro *ReducedOperator) Propagator() (*Matrix, error) {
	if ro.dhat == nil {
		return nil, fmt.Errorf("linalg: Propagator on an unshifted reduced operator")
	}
	ro.propOnce.Do(func() {
		r := ro.r
		p := NewMatrix(r, r)
		col := make([]float64, r)
		x := make([]float64, r)
		y := make([]float64, r)
		for j := 0; j < r; j++ {
			for i := 0; i < r; i++ {
				col[i] = ro.dhat.Row(i)[j]
			}
			ro.fac.solveInto(col, x, y)
			for i := 0; i < r; i++ {
				p.Row(i)[j] = x[i]
			}
		}
		ro.prop = p
	})
	return ro.prop, nil
}

// SolveReducedInto solves c = Â⁻¹·bhat entirely in reduced coordinates
// (O(r²), no allocation when ws is provided) — the source-term half of the
// propagator-form recurrence.
func (ro *ReducedOperator) SolveReducedInto(bhat, c []float64, ws *Workspace) error {
	r := ro.r
	if len(bhat) != r || len(c) != r {
		return fmt.Errorf("linalg: SolveReducedInto dimension: got %d/%d, want %d", len(bhat), len(c), r)
	}
	if ws == nil {
		ws = &Workspace{}
	}
	_, _, y := ws.reduced(r)
	ro.fac.solveInto(bhat, c, y)
	return nil
}

// mulVT computes bh = Vᵀb (r dot products over contiguous columns).
func mulVT(v []float64, n, r int, b, bh []float64) {
	for j := 0; j < r; j++ {
		col := v[j*n : (j+1)*n]
		var s0, s1, s2, s3 float64
		i := 0
		for ; i+3 < n; i += 4 {
			s0 += col[i] * b[i]
			s1 += col[i+1] * b[i+1]
			s2 += col[i+2] * b[i+2]
			s3 += col[i+3] * b[i+3]
		}
		for ; i < n; i++ {
			s0 += col[i] * b[i]
		}
		bh[j] = s0 + s1 + s2 + s3
	}
}

// mulV expands dst = V·xh, two columns per destination sweep to halve the
// store traffic on the session hot path.
func mulV(v []float64, n, r int, xh, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	j := 0
	for ; j+1 < r; j += 2 {
		c0 := v[j*n : (j+1)*n]
		c1 := v[(j+1)*n : (j+2)*n]
		a0, a1 := xh[j], xh[j+1]
		for i := 0; i < n; i++ {
			dst[i] += a0*c0[i] + a1*c1[i]
		}
	}
	if j < r {
		AXPY(xh[j], v[j*n:(j+1)*n], dst)
	}
}

// morChol is a dense Cholesky factor specialized for the reduced hot path:
// lower triangle in row-major full storage, allocation-free solveInto.
type morChol struct {
	n int
	l []float64
}

// factorMor computes the Cholesky factor of the SPD matrix a (not modified).
func factorMor(a *Matrix) (*morChol, error) {
	n := a.Rows
	f := &morChol{n: n, l: make([]float64, n*n)}
	l := f.l
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		rj := l[j*n:]
		for k := 0; k < j; k++ {
			d -= rj[k] * rj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: reduced pivot %d is %g", ErrNotSPD, j, d)
		}
		d = math.Sqrt(d)
		rj[j] = d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			ri := l[i*n:]
			for k := 0; k < j; k++ {
				s -= ri[k] * rj[k]
			}
			ri[j] = s / d
		}
	}
	return f, nil
}

// solveInto solves L·Lᵀ·x = b using y as forward-substitution scratch.
// b, x and y must have length n; b is not modified.
func (f *morChol) solveInto(b, x, y []float64) {
	n, l := f.n, f.l
	for i := 0; i < n; i++ {
		s := b[i]
		ri := l[i*n:]
		for k := 0; k < i; k++ {
			s -= ri[k] * y[k]
		}
		y[i] = s / ri[i]
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l[k*n+i] * x[k]
		}
		x[i] = s / l[i*n+i]
	}
}
