package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

// Ordering tests on pathological graphs: every ordering must be a valid
// permutation whatever the shape, the fill cap must keep behaving through
// the AMD path, and AMD must not lose to RCM on the workloads the direct
// backend exists for.

// pathEntries builds a path graph (tridiagonal SPD matrix): zero fill under
// any reasonable ordering.
func pathEntries(n int) []Coord {
	var entries []Coord
	for i := 0; i+1 < n; i++ {
		entries = append(entries, Coord{i, i + 1, -1}, Coord{i + 1, i, -1})
	}
	for i := 0; i < n; i++ {
		entries = append(entries, Coord{i, i, 2.5})
	}
	return entries
}

// starEntries builds a star (arrowhead matrix): hub 0 tied to every leaf.
// Leaves-first elimination is zero-fill; hub-first is catastrophic.
func starEntries(n int) []Coord {
	var entries []Coord
	for i := 1; i < n; i++ {
		entries = append(entries, Coord{0, i, -1}, Coord{i, 0, -1})
	}
	entries = append(entries, Coord{0, 0, float64(n)})
	for i := 1; i < n; i++ {
		entries = append(entries, Coord{i, i, 1.5})
	}
	return entries
}

// cliqueEntries builds a dense clique: every ordering fills completely, the
// worst case for the quotient graph's element machinery.
func cliqueEntries(n int) []Coord {
	var entries []Coord
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				entries = append(entries, Coord{i, i, float64(n) + 1})
			} else {
				entries = append(entries, Coord{i, j, -1})
			}
		}
	}
	return entries
}

// componentsEntries builds several disconnected blocks: a path, a star and a
// small clique, plus isolated diagonal-only nodes.
func componentsEntries() (int, []Coord) {
	var entries []Coord
	off := 0
	add := func(part []Coord, n int) {
		for _, e := range part {
			entries = append(entries, Coord{e.I + off, e.J + off, e.V})
		}
		off += n
	}
	add(pathEntries(17), 17)
	add(starEntries(9), 9)
	add(cliqueEntries(6), 6)
	for i := 0; i < 3; i++ { // isolated nodes: degree zero, eliminated first
		entries = append(entries, Coord{off, off, 1})
		off++
	}
	return off, entries
}

func checkPermutation(t *testing.T, name string, n int, perm []int) {
	t.Helper()
	if len(perm) != n {
		t.Fatalf("%s: permutation length %d, want %d", name, len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			t.Fatalf("%s: invalid permutation %v", name, perm)
		}
		seen[p] = true
	}
}

// TestOrderingsOnPathologicalGraphs: AMD and RCM must return valid
// permutations on a path, a star, a clique, disconnected components and
// random SPD patterns, and the factorization built on them must match the
// dense oracle.
func TestOrderingsOnPathologicalGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cases := []struct {
		name    string
		n       int
		entries []Coord
	}{
		{"path", 64, pathEntries(64)},
		{"star", 64, starEntries(64)},
		{"clique", 24, cliqueEntries(24)},
	}
	n, comp := componentsEntries()
	cases = append(cases, struct {
		name    string
		n       int
		entries []Coord
	}{"components", n, comp})
	for _, sz := range []int{1, 2, 3, 50} {
		cases = append(cases, struct {
			name    string
			n       int
			entries []Coord
		}{fmt.Sprintf("random%d", sz), sz, spdEntries(rng, sz)})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := NewCSR(tc.n, tc.entries)
			checkPermutation(t, "amd", tc.n, amdOrder(m))
			checkPermutation(t, "rcm", tc.n, rcmOrder(m))
			chol, err := (CholeskyBackend{}).Assemble(tc.n, tc.entries)
			if err != nil {
				t.Fatalf("cholesky: %v", err)
			}
			dense, err := (DenseBackend{}).Assemble(tc.n, tc.entries)
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			b := make([]float64, tc.n)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			xd, err := dense.Solve(b, nil, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			xc, err := chol.Solve(b, nil, nil, &Workspace{})
			if err != nil {
				t.Fatal(err)
			}
			if e := relErr(xd, xc); e > 1e-9 {
				t.Fatalf("cholesky diverges from dense by %g", e)
			}
		})
	}
}

// TestAMDZeroFillShapes: path and star graphs factor with zero fill under
// AMD (nnz(L) = edge count) — the structures minimum degree handles
// perfectly and a bandwidth ordering does not (star).
func TestAMDZeroFillShapes(t *testing.T) {
	for _, tc := range []struct {
		name    string
		n       int
		entries []Coord
	}{
		{"path", 200, pathEntries(200)},
		{"star", 200, starEntries(200)},
	} {
		m := NewCSR(tc.n, tc.entries)
		sym := analyzeCholesky(m)
		if sym.nnzL != tc.n-1 {
			t.Fatalf("%s: nnz(L)=%d, want %d (zero fill)", tc.name, sym.nnzL, tc.n-1)
		}
	}
}

// fillUnder computes nnz(L) for a fixed ordering (symbolic only).
func fillUnder(m *CSR, perm []int) int {
	n := m.N
	iperm := make([]int, n)
	for k, p := range perm {
		iperm[p] = k
	}
	parent := make([]int, n)
	flag := make([]int, n)
	nnz := 0
	for i := range flag {
		flag[i] = -1
	}
	for k := 0; k < n; k++ {
		parent[k] = -1
		flag[k] = k
		row := perm[k]
		for p := m.RowPtr[row]; p < m.RowPtr[row+1]; p++ {
			i := iperm[m.ColIdx[p]]
			for ; i < k && flag[i] != k; i = parent[i] {
				if parent[i] == -1 {
					parent[i] = k
				}
				nnz++
				flag[i] = k
			}
		}
	}
	return nnz
}

// TestAMDBeatsRCMOnReferenceGrids: on the 2D grid Laplacians the reference
// solver produces, AMD must order to strictly less fill than RCM — the whole
// reason the dense-bitset cap had to go. (Theory says O(n log n) vs
// O(n^1.5); the margin below is a conservative regression fence, not the
// asymptotic claim.)
func TestAMDBeatsRCMOnReferenceGrids(t *testing.T) {
	for _, nx := range []int{16, 32, 64} {
		n, entries := gridEntries(nx, nx)
		m := NewCSR(n, entries)
		amdFill := fillUnder(m, amdOrder(m))
		rcmFill := fillUnder(m, rcmOrder(m))
		t.Logf("grid %dx%d: nnz(L) amd=%d rcm=%d (%.2fx)", nx, nx, amdFill, rcmFill, float64(rcmFill)/float64(amdFill))
		if amdFill >= rcmFill {
			t.Fatalf("grid %dx%d: AMD fill %d not below RCM fill %d", nx, nx, amdFill, rcmFill)
		}
	}
}

// TestFillCapStillAborts: the fill cap must keep aborting before numeric
// work on the AMD path.
func TestFillCapStillAborts(t *testing.T) {
	n, entries := gridEntries(14, 14)
	if _, err := (CholeskyBackend{MaxFillRatio: 1.0001}).Assemble(n, entries); err == nil {
		t.Fatal("tight fill cap accepted a filling grid")
	}
	if _, err := (CholeskyBackend{MaxFillRatio: 1e6}).Assemble(n, entries); err != nil {
		t.Fatalf("loose fill cap: %v", err)
	}
}

// TestAMDLargeGridUncapped: the ordering, symbolic analysis and numeric
// factorization must run (and solve to oracle-residual accuracy) at sizes
// the PR 4 dense-bitset ordering was capped below.
func TestAMDLargeGridUncapped(t *testing.T) {
	const nx = 110 // 12100 unknowns, ~3x past the old mdMaxN cap
	n, entries := gridEntries(nx, nx)
	op, err := (CholeskyBackend{}).Assemble(n, entries)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := op.Solve(b, nil, nil, &Workspace{})
	if err != nil {
		t.Fatal(err)
	}
	r := make([]float64, n)
	op.Apply(x, r)
	for i := range r {
		r[i] -= b[i]
	}
	if rn := Norm2(r) / (1 + Norm2(b)); rn > 1e-10 {
		t.Fatalf("residual %g at n=%d", rn, n)
	}
}
