package linalg

import (
	"math"
	"testing"
)

// morTestSystem builds an SPD grid-Laplacian system (nx×ny five-point
// stencil plus ambient legs on the boundary), a positive capacitance
// diagonal and a handful of unit input columns — the same shape as an
// assembled RC thermal network.
func morTestSystem(nx, ny int) (g *CSR, caps []float64, inputs [][]float64) {
	n := nx * ny
	var entries []Coord
	diag := make([]float64, n)
	at := func(x, y int) int { return y*nx + x }
	couple := func(a, b int, w float64) {
		entries = append(entries, Coord{I: a, J: b, V: -w}, Coord{I: b, J: a, V: -w})
		diag[a] += w
		diag[b] += w
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			i := at(x, y)
			if x+1 < nx {
				couple(i, at(x+1, y), 1.0+0.1*float64(i%7))
			}
			if y+1 < ny {
				couple(i, at(x, y+1), 1.5+0.05*float64(i%5))
			}
			if x == 0 || y == 0 || x == nx-1 || y == ny-1 {
				diag[i] += 0.3 // ambient leg
			}
		}
	}
	for i, d := range diag {
		entries = append(entries, Coord{I: i, J: i, V: d})
	}
	g = NewCSR(n, entries)
	caps = make([]float64, n)
	for i := range caps {
		caps[i] = 0.5 + 0.01*float64(i%13)
	}
	for _, i := range []int{0, n / 3, n / 2, n - 1} {
		e := make([]float64, n)
		e[i] = 1
		inputs = append(inputs, e)
	}
	return g, caps, inputs
}

func denseFrom(g *CSR) *Matrix {
	a := NewMatrix(g.N, g.N)
	for i := 0; i < g.N; i++ {
		for k := g.RowPtr[i]; k < g.RowPtr[i+1]; k++ {
			a.Set(i, g.ColIdx[k], g.Values[k])
		}
	}
	return a
}

// With order ≥ n the basis spans the full space and the reduced solve must
// agree with a dense direct solve to rounding.
func TestReducedOperatorExactAtFullOrder(t *testing.T) {
	g, caps, inputs := morTestSystem(6, 6)
	n := g.N
	ro, err := NewReducedOperator(g, caps, inputs, n, 0)
	if err != nil {
		t.Fatalf("NewReducedOperator: %v", err)
	}
	if ro.Order() > n {
		t.Fatalf("order %d exceeds dimension %d", ro.Order(), n)
	}
	if ro.ProjectionError() > 1e-8 {
		t.Fatalf("full-order projection error %g, want ~0", ro.ProjectionError())
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	got, err := ro.Solve(b, nil, nil, nil)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want, err := SolveDense(denseFrom(g), b)
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
			t.Fatalf("solution[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

// Shift must agree with the dense solve of A + diag(d) at full order, and
// the shifted operator's Apply/Diag must reflect the exact shifted matrix.
func TestReducedOperatorShift(t *testing.T) {
	g, caps, inputs := morTestSystem(5, 5)
	n := g.N
	ro, err := NewReducedOperator(g, caps, inputs, n, 0)
	if err != nil {
		t.Fatalf("NewReducedOperator: %v", err)
	}
	d := make([]float64, n)
	for i, c := range caps {
		d[i] = c / 1e-3 // a backward-Euler C/dt shift
	}
	sh, err := ro.Shift(d)
	if err != nil {
		t.Fatalf("Shift: %v", err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%3)
	}
	got, err := sh.Solve(b, nil, nil, nil)
	if err != nil {
		t.Fatalf("shifted Solve: %v", err)
	}
	a := denseFrom(g)
	for i := 0; i < n; i++ {
		a.Add(i, i, d[i])
	}
	want, err := SolveDense(a, b)
	if err != nil {
		t.Fatalf("SolveDense: %v", err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
			t.Fatalf("shifted solution[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	diag := sh.Diag()
	for i := range diag {
		wantD := g.Diagonal()[i] + d[i]
		if math.Abs(diag[i]-wantD) > 1e-12*wantD {
			t.Fatalf("shifted diag[%d] = %g, want %g", i, diag[i], wantD)
		}
	}
}

// A genuinely reduced operator (order ≪ n) must still answer the input
// columns it was built for near-exactly: the first Krylov block contains
// G⁻¹B by construction.
func TestReducedOperatorInputColumnsSurviveReduction(t *testing.T) {
	g, caps, inputs := morTestSystem(12, 12)
	ro, err := NewReducedOperator(g, caps, inputs, 40, 0)
	if err != nil {
		t.Fatalf("NewReducedOperator: %v", err)
	}
	if ro.Order() != 40 {
		t.Fatalf("order = %d, want 40", ro.Order())
	}
	if ro.ProjectionError() > 1e-8 {
		t.Fatalf("projection error %g for in-basis inputs, want ~0", ro.ProjectionError())
	}
	scratch := make([]float64, g.N)
	x := make([]float64, g.N)
	for k, b := range inputs {
		ro.Solve(b, nil, x, nil)
		if res := ro.RelativeResidual(b, x, scratch); res > 1e-8 {
			t.Fatalf("input column %d: relative residual %g", k, res)
		}
	}
}

// SolveBatch must match column-by-column Solve exactly.
func TestReducedOperatorSolveBatch(t *testing.T) {
	g, caps, inputs := morTestSystem(6, 6)
	n := g.N
	ro, err := NewReducedOperator(g, caps, inputs, n, 0)
	if err != nil {
		t.Fatalf("NewReducedOperator: %v", err)
	}
	const k = 5
	bs := make([][]float64, k)
	for c := range bs {
		bs[c] = make([]float64, n)
		for i := range bs[c] {
			bs[c][i] = math.Cos(float64(c*n + i))
		}
	}
	batch, err := ro.SolveBatch(bs, nil, nil, nil)
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	for c := range bs {
		single, _ := ro.Solve(bs[c], nil, nil, nil)
		for i := range single {
			if batch[c][i] != single[i] {
				t.Fatalf("column %d row %d: batch %g != single %g", c, i, batch[c][i], single[i])
			}
		}
	}
}

// StepReducedBE must reproduce the full-space reduced solve for states in
// span(V): with x = V·z, Solve(b + D·x) on the shifted operator equals
// V·StepReducedBE(z, Vᵀb) up to projection rounding. It is also rejected on
// operators that did not come from Shift.
func TestStepReducedBEMatchesFullSpaceSolve(t *testing.T) {
	g, caps, inputs := morTestSystem(6, 6)
	n := g.N
	base, err := NewReducedOperator(g, caps, inputs, n, 0)
	if err != nil {
		t.Fatalf("NewReducedOperator: %v", err)
	}
	if err := base.StepReducedBE(nil, nil, nil, nil); err == nil {
		t.Fatal("StepReducedBE on an unshifted operator must error")
	}
	d := make([]float64, n)
	for i, c := range caps {
		d[i] = c / 1e-3
	}
	opAny, err := base.Shift(d)
	if err != nil {
		t.Fatalf("Shift: %v", err)
	}
	op := opAny.(*ReducedOperator)
	r := op.Order()

	// A state in span(V): expand an arbitrary reduced vector.
	z := make([]float64, r)
	for i := range z {
		z[i] = math.Sin(float64(3*i + 1))
	}
	x := make([]float64, n)
	op.ExpandInto(z, x)

	// Source term b and its projection.
	b := make([]float64, n)
	for i := range b {
		b[i] = math.Cos(float64(2 * i))
	}
	bhat := make([]float64, r)
	op.ReduceInto(b, bhat)

	// Full-space reference: Solve(b + D·x) through the reduced operator.
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = b[i] + d[i]*x[i]
	}
	var ws Workspace
	want, err := op.Solve(rhs, nil, nil, &ws)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}

	znew := make([]float64, r)
	if err := op.StepReducedBE(z, bhat, znew, &ws); err != nil {
		t.Fatalf("StepReducedBE: %v", err)
	}
	got := make([]float64, n)
	op.ExpandInto(znew, got)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("node %d: reduced-state %g vs full-space %g", i, got[i], want[i])
		}
	}

	if err := op.StepReducedBE(z[:r-1], bhat, znew, &ws); err == nil {
		t.Fatal("StepReducedBE must reject mismatched lengths")
	}
}
