package linalg

import (
	"math"
	"testing"
)

// The Operator.SolveBatch x0 contract (see the interface doc) is asymmetric
// by design: direct backends must ignore warm starts entirely — their
// answers are bit-identical whatever x0 carries — while the CG backend uses
// x0 as an initial guess and must converge in fewer iterations when the
// guess is close. These tests pin both halves so a future backend cannot
// silently start honoring (or ignoring) x0 and shift results.

// junkFilled returns a batch of x0 vectors full of garbage (huge, negative,
// NaN-free but wildly wrong) that would perturb any solver that read them.
func junkFilled(k, n int) [][]float64 {
	out := make([][]float64, k)
	for c := range out {
		out[c] = make([]float64, n)
		for i := range out[c] {
			out[c][i] = 1e12 * math.Cos(float64(c*n+i))
		}
	}
	return out
}

func warmTestRHS(k, n int) [][]float64 {
	b := make([][]float64, k)
	for c := range b {
		b[c] = make([]float64, n)
		for i := range b[c] {
			b[c][i] = math.Sin(float64(c + 1*i))
		}
	}
	return b
}

// Direct backends (dense LU, Cholesky, reduced) must be bit-identical under
// any x0, both per-column and batched.
func TestDirectBackendsIgnoreWarmStart(t *testing.T) {
	g, caps, inputs := morTestSystem(7, 7)
	n := g.N
	entries := make([]Coord, 0, g.NNZ())
	for i := 0; i < n; i++ {
		for p := g.RowPtr[i]; p < g.RowPtr[i+1]; p++ {
			entries = append(entries, Coord{I: i, J: g.ColIdx[p], V: g.Values[p]})
		}
	}
	dense, err := DenseBackend{}.Assemble(n, entries)
	if err != nil {
		t.Fatalf("dense assemble: %v", err)
	}
	chol, err := NewCholeskyOperator(g, 0)
	if err != nil {
		t.Fatalf("cholesky: %v", err)
	}
	red, err := NewReducedOperator(g, caps, inputs, n, 0)
	if err != nil {
		t.Fatalf("reduced: %v", err)
	}
	const k = 4
	b := warmTestRHS(k, n)
	junk := junkFilled(k, n)
	for _, tc := range []struct {
		name string
		op   Operator
	}{{"dense", dense}, {"cholesky", chol}, {"reduced", red}} {
		if tc.op.Iterative() {
			t.Fatalf("%s: Iterative() = true for a direct backend", tc.name)
		}
		var ws Workspace
		cold, err := tc.op.Solve(b[0], nil, nil, &ws)
		if err != nil {
			t.Fatalf("%s cold Solve: %v", tc.name, err)
		}
		warm, err := tc.op.Solve(b[0], junk[0], nil, &ws)
		if err != nil {
			t.Fatalf("%s warm Solve: %v", tc.name, err)
		}
		for i := range cold {
			if cold[i] != warm[i] {
				t.Fatalf("%s Solve[%d]: cold %g != junk-warm %g — direct backends must ignore x0", tc.name, i, cold[i], warm[i])
			}
		}
		coldB, err := tc.op.SolveBatch(b, nil, nil, &ws)
		if err != nil {
			t.Fatalf("%s cold SolveBatch: %v", tc.name, err)
		}
		warmB, err := tc.op.SolveBatch(b, junk, nil, &ws)
		if err != nil {
			t.Fatalf("%s warm SolveBatch: %v", tc.name, err)
		}
		for c := range coldB {
			for i := range coldB[c] {
				if coldB[c][i] != warmB[c][i] {
					t.Fatalf("%s SolveBatch[%d][%d]: cold %g != junk-warm %g", tc.name, c, i, coldB[c][i], warmB[c][i])
				}
			}
		}
	}
}

// The CG backend must exploit a close warm start: starting each column from
// its converged answer has to take strictly fewer iterations than starting
// cold, while reaching the same tolerance.
func TestCGWarmStartConvergesFaster(t *testing.T) {
	g, _, _ := morTestSystem(12, 12)
	n := g.N
	op := NewSparseOperator(g, CGOptions{})
	if !op.Iterative() {
		t.Fatal("sparse operator reports Iterative() = false")
	}
	const k = 3
	b := warmTestRHS(k, n)
	var ws Workspace
	coldIters := make([]int, k)
	sols := make([][]float64, k)
	for c := range b {
		x, err := op.Solve(b[c], nil, nil, &ws)
		if err != nil {
			t.Fatalf("cold Solve %d: %v", c, err)
		}
		coldIters[c] = ws.LastIterations
		if coldIters[c] < 2 {
			t.Fatalf("cold Solve %d took %d iterations — system too easy to observe warm-start gains", c, coldIters[c])
		}
		sols[c] = append([]float64(nil), x...)
	}
	for c := range b {
		x, err := op.Solve(b[c], sols[c], nil, &ws)
		if err != nil {
			t.Fatalf("warm Solve %d: %v", c, err)
		}
		if ws.LastIterations >= coldIters[c] {
			t.Fatalf("column %d: warm start took %d iterations, cold took %d — x0 not exploited", c, ws.LastIterations, coldIters[c])
		}
		for i := range x {
			if math.Abs(x[i]-sols[c][i]) > 1e-6*(1+math.Abs(sols[c][i])) {
				t.Fatalf("column %d: warm answer drifted at %d: %g vs %g", c, i, x[i], sols[c][i])
			}
		}
	}
}
