package linalg

// This file implements the approximate-minimum-degree (AMD) fill-reducing
// ordering on a quotient graph, in the style of Amestoy, Davis and Duff. It
// replaced the dense-bitset greedy minimum-degree of PR 4, whose n²/8-byte
// adjacency and O(n²) pivot scans capped the direct backend at 4096 unknowns:
// the quotient graph stores eliminated pivots as *elements* (cliques
// represented by their member list instead of materialized edges), so memory
// stays near-linear in nnz(A) and the ordering runs at reference-grid scale
// (10^4–10^5 unknowns) in milliseconds.
//
// The implementation keeps the three classic AMD devices:
//
//   - approximate external degrees: |Le \ Lp| per adjacent element is
//     computed for all touched elements in one pass over the pivot's
//     neighbourhood (the w-trick), so a degree update costs the size of the
//     lists involved, never a set union;
//   - supervariable absorption: variables with identical quotient-graph
//     adjacency (detected by hashing, confirmed by exact comparison) are
//     merged and eliminated together — this is also what makes the
//     elimination order supernode-friendly;
//   - aggressive element absorption: an element whose variables are all
//     covered by the new pivot element is deleted outright.
//
// Everything is deterministic: pivots come off degree buckets that are
// filled and drained in a fixed order, hash-bucket walks follow insertion
// order, and absorbed variables are emitted in ascending index order — so
// orderings (and therefore factors and solves) are bit-stable across runs,
// machines and GOMAXPROCS settings.

// amdOrder returns an approximate-minimum-degree permutation of the matrix
// graph: perm[k] is the original index of the k-th pivot. The diagonal is
// ignored; the matrix must be structurally symmetric (the Cholesky backend
// verifies that before ordering).
func amdOrder(m *CSR) []int {
	n := m.N
	if n == 0 {
		return nil
	}
	// Quotient-graph state. Variable i is a *principal* while nv[i] > 0;
	// absorbed variables carry absorbedInto links to the principal that
	// swallowed them; eliminated principals become elements whose member
	// list lives in elVars.
	adjVar := make([][]int32, n) // variable↔variable edges, lazily pruned
	adjEl := make([][]int32, n)  // elements adjacent to a variable
	elVars := make([][]int32, n) // element → member variables (nil until eliminated)
	elW := make([]int, n)        // weighted |Le| at element creation (invariant while alive)
	nv := make([]int32, n)       // supervariable weight; 0 = absorbed or eliminated
	deadEl := make([]bool, n)    // element absorbed into a newer element
	elim := make([]bool, n)      // variable eliminated (became an element)
	absorbedInto := make([]int32, n)
	deg := make([]int, n) // approximate weighted external degree

	for i := 0; i < n; i++ {
		cnt := 0
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p] != i {
				cnt++
			}
		}
		lst := make([]int32, 0, cnt)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if j := m.ColIdx[p]; j != i {
				lst = append(lst, int32(j))
			}
		}
		adjVar[i] = lst
		nv[i] = 1
		deg[i] = cnt
		absorbedInto[i] = -1
	}

	// Degree buckets: doubly-linked lists per degree, drained smallest
	// degree first, LIFO within a bucket (deterministic either way).
	head := make([]int32, n+1)
	next := make([]int32, n)
	prev := make([]int32, n)
	for d := range head {
		head[d] = -1
	}
	inBucket := make([]bool, n)
	insert := func(i int) {
		d := deg[i]
		next[i] = head[d]
		prev[i] = -1
		if head[d] >= 0 {
			prev[head[d]] = int32(i)
		}
		head[d] = int32(i)
		inBucket[i] = true
	}
	remove := func(i int) {
		if !inBucket[i] {
			return
		}
		if prev[i] >= 0 {
			next[prev[i]] = next[i]
		} else {
			head[deg[i]] = next[i]
		}
		if next[i] >= 0 {
			prev[next[i]] = prev[i]
		}
		inBucket[i] = false
	}
	for i := 0; i < n; i++ {
		insert(i)
	}

	// Stamped scratch: mark for Lp membership and list comparison, eseen/lw
	// for the per-pivot |Le \ Lp| values, hstamp/hhead/hnext for the
	// supervariable hash buckets.
	mark := make([]int, n)
	eseen := make([]int, n)
	lw := make([]int, n)
	cseen := make([]int, n) // comparison marks (own counter, never reused)
	hstamp := make([]int, n)
	hhead := make([]int32, n)
	hnext := make([]int32, n)
	stamp := 0
	cmp := 0

	lp := make([]int32, 0, 64)
	pivots := make([]int32, 0, n)
	nelim := 0
	mindeg := 0

	for nelim < n {
		// Pick the minimum-degree principal.
		for head[mindeg] < 0 {
			mindeg++
		}
		p := int(head[mindeg])
		remove(p)

		// Gather Lp = alive principals adjacent to p through variable edges
		// and through the member lists of p's elements; those elements are
		// all absorbed into the new element p.
		stamp++
		mark[p] = stamp
		lp = lp[:0]
		degme := 0
		for _, j32 := range adjVar[p] {
			j := int(j32)
			if nv[j] <= 0 || mark[j] == stamp {
				continue
			}
			mark[j] = stamp
			lp = append(lp, j32)
			degme += int(nv[j])
		}
		for _, e32 := range adjEl[p] {
			e := int(e32)
			if deadEl[e] || !elim[e] {
				continue
			}
			for _, j32 := range elVars[e] {
				j := int(j32)
				if nv[j] <= 0 || mark[j] == stamp {
					continue
				}
				mark[j] = stamp
				lp = append(lp, j32)
				degme += int(nv[j])
			}
			deadEl[e] = true
			elVars[e] = nil
		}
		nvp := int(nv[p])
		elim[p] = true
		nv[p] = 0
		adjVar[p] = nil
		adjEl[p] = nil
		elVars[p] = append([]int32(nil), lp...)
		elW[p] = degme
		pivots = append(pivots, int32(p))
		nelim += nvp

		// w-trick: one pass over the element lists of Lp members leaves
		// lw[e] = weighted |Le \ Lp| for every element e touching Lp.
		for _, i32 := range lp {
			for _, e32 := range adjEl[i32] {
				e := int(e32)
				if deadEl[e] {
					continue
				}
				if eseen[e] != stamp {
					eseen[e] = stamp
					lw[e] = elW[e]
				}
				lw[e] -= int(nv[i32])
			}
		}

		// Degree update: clean each Lp member's lists in place, absorb
		// exhausted elements, and recompute the approximate degree.
		for _, i32 := range lp {
			i := int(i32)
			remove(i)
			extEl := 0
			els := adjEl[i][:0]
			for _, e32 := range adjEl[i] {
				e := int(e32)
				if deadEl[e] {
					continue
				}
				le := lw[e]
				if eseen[e] != stamp {
					le = elW[e] // untouched by Lp: impossible here, but keep the invariant
				}
				if le == 0 {
					// Aggressive absorption: Le ⊆ Lp, the new element
					// covers everything e did.
					deadEl[e] = true
					elVars[e] = nil
					continue
				}
				extEl += le
				els = append(els, e32)
			}
			els = append(els, int32(p))
			adjEl[i] = els
			extVar := 0
			vars := adjVar[i][:0]
			for _, j32 := range adjVar[i] {
				j := int(j32)
				if nv[j] <= 0 {
					continue
				}
				if mark[j] == stamp {
					continue // covered by element p now
				}
				extVar += int(nv[j])
				vars = append(vars, j32)
			}
			adjVar[i] = vars
			d := degme - int(nv[i]) + extEl + extVar
			if alt := deg[i] + degme - int(nv[i]); alt < d {
				d = alt
			}
			if cap := n - nelim - int(nv[i]); cap < d {
				d = cap
			}
			if d < 0 {
				d = 0
			}
			deg[i] = d
		}

		// Supervariable detection: hash each Lp member's cleaned adjacency,
		// then compare within hash buckets and merge exact matches.
		stamp++
		hashOf := func(i int) int {
			h := uint64(0)
			for _, e := range adjEl[i] {
				if !deadEl[e] {
					h += uint64(e) + 1
				}
			}
			for _, j := range adjVar[i] {
				if nv[j] > 0 {
					h += uint64(j) + 1
				}
			}
			return int(h % uint64(n))
		}
		for _, i32 := range lp {
			h := hashOf(int(i32))
			if hstamp[h] != stamp {
				hstamp[h] = stamp
				hhead[h] = -1
			}
			hnext[i32] = hhead[h]
			hhead[h] = i32
		}
		for _, i32 := range lp {
			i := int(i32)
			if nv[i] <= 0 {
				continue // absorbed earlier in this pass
			}
			for j32 := hnext[i32]; j32 >= 0; j32 = hnext[j32] {
				j := int(j32)
				if nv[j] <= 0 {
					continue
				}
				if sameAdjacency(i, j, adjEl, adjVar, deadEl, nv, cseen, &cmp) {
					// j joins supervariable i: identical adjacency means the
					// two columns are indistinguishable and eliminate
					// together. j's weight stops being external to i.
					deg[i] -= int(nv[j])
					if deg[i] < 0 {
						deg[i] = 0
					}
					nv[i] += nv[j]
					nv[j] = 0
					absorbedInto[j] = i32
					adjVar[j] = nil
					adjEl[j] = nil
				}
			}
		}

		// Re-insert surviving Lp members with their updated degrees.
		for _, i32 := range lp {
			i := int(i32)
			if nv[i] <= 0 {
				continue
			}
			insert(i)
			if deg[i] < mindeg {
				mindeg = deg[i]
			}
		}
	}

	// Expand supervariables: each pivot is emitted with every variable whose
	// absorption chain terminates at it, in ascending index order.
	kidHead := make([]int32, n)
	kidNext := make([]int32, n)
	for i := range kidHead {
		kidHead[i] = -1
	}
	root := func(j int32) int32 {
		r := j
		for absorbedInto[r] >= 0 {
			r = absorbedInto[r]
		}
		for absorbedInto[j] >= 0 { // path-compress the chain
			nj := absorbedInto[j]
			absorbedInto[j] = r
			j = nj
		}
		return r
	}
	for j := n - 1; j >= 0; j-- { // reverse push onto LIFO lists → ascending walk
		if absorbedInto[j] < 0 {
			continue
		}
		r := root(int32(j))
		kidNext[j] = kidHead[r]
		kidHead[r] = int32(j)
	}
	perm := make([]int, 0, n)
	for _, p := range pivots {
		perm = append(perm, int(p))
		for k := kidHead[p]; k >= 0; k = kidNext[k] {
			perm = append(perm, int(k))
		}
	}
	return perm
}

// sameAdjacency reports whether principals i and j have identical alive
// quotient-graph adjacency (element set and variable set), ignoring dead
// entries and each other (adjacent twins are indistinguishable too). seen is
// a mark array driven by the monotone *cmp counter.
func sameAdjacency(i, j int, adjEl, adjVar [][]int32, deadEl []bool, nv []int32, seen []int, cmp *int) bool {
	*cmp++
	s := *cmp
	ni := 0
	for _, e := range adjEl[i] {
		if !deadEl[e] {
			seen[e] = s
			ni++
		}
	}
	nj := 0
	for _, e := range adjEl[j] {
		if deadEl[e] {
			continue
		}
		if seen[e] != s {
			return false
		}
		nj++
	}
	if ni != nj {
		return false
	}
	*cmp++
	s = *cmp
	ni = 0
	for _, v := range adjVar[i] {
		if nv[v] > 0 && int(v) != j {
			seen[v] = s
			ni++
		}
	}
	nj = 0
	for _, v := range adjVar[j] {
		if nv[v] <= 0 || int(v) == i {
			continue
		}
		if seen[v] != s {
			return false
		}
		nj++
	}
	return ni == nj
}
