package linalg

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/pool"
)

// This file implements the sparse direct solver backend: an approximate-
// minimum-degree fill-reducing ordering (amd.go), symbolic analysis
// (elimination tree, exact column counts, supernode partition), a supernodal
// blocked LDLᵀ factorization with dense panel kernels, and blocked
// triangular solves for one or many right-hand sides. See DESIGN.md §7–§8.
//
// Two design decisions carry the backend:
//
//   - The split between symbolic and numeric phases: the symbolic analysis
//     depends only on the off-diagonal sparsity pattern, so a backward-Euler
//     operator (C/dt + A) derived via Shift — which touches only the
//     diagonal — reuses the ordering, elimination tree, supernode partition
//     and update schedule of the conductance operator and pays for a numeric
//     refactorization alone.
//   - Supernodes: consecutive columns with nested sparsity share one dense
//     panel, so both the factorization and every solve run dense
//     column-major kernels over contiguous memory and amortize each row-
//     index lookup across the panel width (and, in SolveBatch, across K
//     right-hand sides), instead of scattering entry by entry.

// ErrNotSPD is returned (wrapped) when an LDLᵀ factorization meets a
// non-positive pivot: the matrix is not positive definite, or is numerically
// singular. Callers that auto-select a backend fall back to an iterative or
// dense path on this error.
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// ErrCholeskyFill is returned (wrapped) by CholeskyBackend.Assemble when the
// predicted factor fill exceeds the configured cap. The assembly aborts
// before any numeric work, so an auto-selecting caller can fall back to the
// iterative backend at the cost of the symbolic analysis only.
var ErrCholeskyFill = errors.New("linalg: Cholesky factor fill exceeds cap")

// ErrNotSymmetric is returned (wrapped) when the Cholesky backend is handed
// a structurally or numerically asymmetric matrix.
var ErrNotSymmetric = errors.New("linalg: matrix is not symmetric")

// FactorPrecision selects the storage precision of the compressed factor the
// triangular sweeps traverse. Factorization always runs in float64 panels;
// Float32 halves the factor's memory footprint and sweep bandwidth and
// compensates with one step of float64 iterative refinement per solve
// (x ← x̂ + L⁻ᵀD⁻¹L⁻¹(b − A·x̂), with the residual computed against the full-
// precision matrix). See DESIGN.md §9.3 for the error analysis.
type FactorPrecision int

const (
	// Float64 stores the compressed factor in full precision (the default).
	Float64 FactorPrecision = iota
	// Float32 stores the compressed factor in single precision and adds one
	// iterative-refinement step to every solve.
	Float32
)

// CholeskyBackend assembles sparse direct LDLᵀ-factored operators with an
// approximate-minimum-degree fill-reducing ordering and a supernodal blocked
// factorization. Factorization happens eagerly, so non-SPD and singular
// systems are reported at Assemble. The zero value applies no fill cap and
// stores factors in full precision.
type CholeskyBackend struct {
	// MaxFillRatio, when positive, aborts Assemble with ErrCholeskyFill if
	// nnz(L+D+Lᵀ) exceeds MaxFillRatio × nnz(A). Auto-selecting callers use
	// it to bound the memory and per-solve cost before committing.
	MaxFillRatio float64
	// Precision selects the factor storage precision (FactorPrecision docs).
	Precision FactorPrecision
}

// Name implements Backend.
func (cb CholeskyBackend) Name() string {
	if cb.Precision == Float32 {
		return "cholesky-f32"
	}
	return "cholesky"
}

// Assemble implements Backend.
func (cb CholeskyBackend) Assemble(n int, entries []Coord) (Operator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("linalg: cholesky assemble with n=%d", n)
	}
	for _, e := range entries {
		if e.I < 0 || e.I >= n || e.J < 0 || e.J >= n {
			return nil, fmt.Errorf("linalg: entry (%d,%d) out of range for n=%d", e.I, e.J, n)
		}
	}
	return NewCholeskyOperatorPrec(NewCSR(n, entries), cb.MaxFillRatio, cb.Precision)
}

// NewCholeskyOperator orders, analyzes and factors an existing CSR matrix
// (which must be symmetric and must not be mutated afterwards) with a full-
// precision factor. maxFillRatio follows the CholeskyBackend.MaxFillRatio
// contract; pass 0 for no cap.
func NewCholeskyOperator(m *CSR, maxFillRatio float64) (*CholeskyOperator, error) {
	return NewCholeskyOperatorPrec(m, maxFillRatio, Float64)
}

// NewCholeskyOperatorPrec is NewCholeskyOperator with an explicit factor
// storage precision.
func NewCholeskyOperatorPrec(m *CSR, maxFillRatio float64, prec FactorPrecision) (*CholeskyOperator, error) {
	if err := checkSymmetric(m); err != nil {
		return nil, err
	}
	sym := analyzeCholesky(m)
	if maxFillRatio > 0 {
		if fill := sym.FillRatio(m); fill > maxFillRatio {
			return nil, fmt.Errorf("%w: predicted fill %.1f× exceeds cap %.1f× (nnz(L)=%d)",
				ErrCholeskyFill, fill, maxFillRatio, sym.nnzL)
		}
	}
	f, err := factorSupernodal(m, sym, prec)
	if err != nil {
		return nil, err
	}
	return &CholeskyOperator{m: m, sym: sym, f: f, prec: prec}, nil
}

// checkSymmetric verifies exact structural and numeric symmetry. Rows of a
// CSR from NewCSR are sorted by column, so each upper-triangle entry is
// matched against its transpose by binary search: O(nnz·log(row len)).
func checkSymmetric(m *CSR) error {
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j <= i {
				continue
			}
			lo, hi := m.RowPtr[j], m.RowPtr[j+1]
			p := lo + sort.SearchInts(m.ColIdx[lo:hi], i)
			if p >= hi || m.ColIdx[p] != i || m.Values[p] != m.Values[k] {
				return fmt.Errorf("%w: entry (%d,%d) has no equal transpose", ErrNotSymmetric, i, j)
			}
		}
	}
	return nil
}

// maxPanelWidth caps the supernode width. Wider panels amortize more of
// the factorization's per-panel bookkeeping but grow the dense O(w²·rows)
// panel work and the frontal working set; 32 columns keeps even the dense
// root supernode of a 100k-node grid inside L2. See DESIGN.md §8.2.
const maxPanelWidth = 32

// snRelax bounds relaxed amalgamation: a supernode merges into its
// assembly-tree parent only while the explicit zeros introduced stay below
// this fraction of the merged panel. Thermal networks factor into thousands
// of 1–2 column fundamental supernodes (≈6 entries per column), where the
// factorization's per-panel bookkeeping costs as much as the arithmetic;
// the zeros are confined to the panels (solve paths traverse zero-dropped
// compressed views), so relaxation taxes only the numeric factorization it
// speeds up. See DESIGN.md §8.2.
const snRelax = 0.25

// cholSymbolic is the reusable symbolic analysis of one sparsity pattern:
// the fill-reducing permutation, the elimination tree of the permuted
// matrix, the factor's column counts, and the supernode partition with its
// update schedule. It is immutable once built and shared by every numeric
// factorization of a matrix with the same off-diagonal pattern (the
// conductance operator and all its backward-Euler shifts).
type cholSymbolic struct {
	n      int
	perm   []int // perm[k] = original index of the k-th pivot
	iperm  []int // inverse: iperm[perm[k]] = k
	parent []int // elimination tree of P·A·Pᵀ
	colPtr []int // factor column pointers, len n+1 (strictly-lower entries)
	nnzL   int   // total strictly-lower entries in L

	// Supernode partition: supernode s covers permuted columns
	// [snStart[s], snStart[s+1]); its columns share the strictly-below row
	// pattern rows[s] (ascending). Panels live in one flat value array at
	// panelPtr[s], column-major, (width + len(rows)) rows per column.
	snStart  []int32
	snOf     []int32   // permuted column → supernode
	rows     [][]int32 // per-supernode below-diagonal row pattern
	panelPtr []int
	panelLen int

	// slotCap is the total strictly-lower panel slot count (true entries
	// plus relaxation zeros) — the capacity bound for a factor's
	// compressed-column view.
	slotCap int
	maxW     int // widest panel
	maxNR    int // tallest panel (width + below rows)

	// updaters[s] lists the supernodes whose row pattern intersects s's
	// columns, ascending — exactly the panels whose outer products must be
	// subtracted from s's panel, applied in this (deterministic) order.
	// levels is a topological level schedule over that DAG: supernodes
	// within a level touch disjoint panels and parallelize freely.
	updaters [][]int32
	levels   [][]int32

	// updCost[s] estimates the multiply-add count of s's scheduled panel
	// updates. It drives updateChunk's within-panel split of expensive
	// panels across workers; a pure function of the pattern, so every
	// factorization of this analysis tiles identically.
	updCost []int64
}

// NNZL returns the number of strictly-lower-triangular entries in the
// factor.
func (s *cholSymbolic) NNZL() int { return s.nnzL }

// FillRatio reports nnz(L+D+Lᵀ) / nnz(A): 1.0 means no fill at all.
func (s *cholSymbolic) FillRatio(m *CSR) float64 {
	return float64(2*s.nnzL+s.n) / float64(max(m.NNZ(), 1))
}

// fillOrder picks the fill-reducing ordering: quotient-graph approximate
// minimum degree (amd.go), which runs in near-linear memory at any size.
// (PR 4's dense-bitset greedy minimum degree was capped at 4096 unknowns;
// rcmOrder survives as the quality baseline in the ordering tests.)
func fillOrder(m *CSR) []int {
	return amdOrder(m)
}

// analyzeCholesky runs the symbolic phase: fill-reducing ordering,
// elimination tree, exact per-column counts (the classic refinement walk:
// for every strictly-upper entry of permuted column k, climb the tree until
// reaching a node already marked this step), then the supernode partition,
// per-supernode row patterns and the update schedule.
func analyzeCholesky(m *CSR) *cholSymbolic {
	n := m.N
	perm := postorderPerm(m, fillOrder(m))
	iperm := make([]int, n)
	for k, p := range perm {
		iperm[p] = k
	}
	parent := make([]int, n)
	flag := make([]int, n)
	counts := make([]int, n)
	for i := range flag {
		flag[i] = -1
	}
	for k := 0; k < n; k++ {
		parent[k] = -1
		flag[k] = k
		row := perm[k]
		for p := m.RowPtr[row]; p < m.RowPtr[row+1]; p++ {
			i := iperm[m.ColIdx[p]]
			for ; i < k && flag[i] != k; i = parent[i] {
				if parent[i] == -1 {
					parent[i] = k
				}
				counts[i]++
				flag[i] = k
			}
		}
	}
	colPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		colPtr[i+1] = colPtr[i] + counts[i]
	}
	sym := &cholSymbolic{n: n, perm: perm, iperm: iperm, parent: parent, colPtr: colPtr, nnzL: colPtr[n]}
	sym.partitionSupernodes(m, counts)
	return sym
}

// postorderPerm relabels a fill-reducing permutation along a postorder of
// its elimination tree. A postorder is an equivalent elimination order (the
// tree, the fill and the factor values up to relabeling are unchanged), but
// it makes every subtree — in particular every chain — occupy consecutive
// columns, which is what lets fundamental supernodes grow and relaxed
// amalgamation find its parent right next door. Deterministic: children are
// visited in ascending order, components in index order.
func postorderPerm(m *CSR, perm []int) []int {
	n := m.N
	if n <= 1 {
		return perm
	}
	iperm := make([]int, n)
	for k, p := range perm {
		iperm[p] = k
	}
	// Elimination tree by the ancestor-shortcut walk (Liu): near-linear.
	parent := make([]int, n)
	ancestor := make([]int, n)
	for k := 0; k < n; k++ {
		parent[k] = -1
		ancestor[k] = -1
		row := perm[k]
		for p := m.RowPtr[row]; p < m.RowPtr[row+1]; p++ {
			i := iperm[m.ColIdx[p]]
			for i != -1 && i < k {
				next := ancestor[i]
				ancestor[i] = k
				if next == -1 {
					parent[i] = k
				}
				i = next
			}
		}
	}
	// Children lists in ascending order (iterate k descending, push front).
	childHead := make([]int32, n)
	childNext := make([]int32, n)
	for i := range childHead {
		childHead[i] = -1
	}
	for k := n - 1; k >= 0; k-- {
		if p := parent[k]; p >= 0 {
			childNext[k] = childHead[p]
			childHead[p] = int32(k)
		}
	}
	// Iterative postorder DFS over every root.
	post := make([]int, 0, n)
	stack := make([]int32, 0, 64)
	expanded := make([]bool, n)
	for r := n - 1; r >= 0; r-- { // roots pushed descending → visited ascending
		if parent[r] == -1 {
			stack = append(stack, int32(r))
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		if expanded[v] {
			stack = stack[:len(stack)-1]
			post = append(post, int(v))
			continue
		}
		expanded[v] = true
		// Push children in descending order so they pop ascending.
		from := len(stack)
		for c := childHead[v]; c >= 0; c = childNext[c] {
			stack = append(stack, c)
		}
		for l, r := from, len(stack)-1; l < r; l, r = l+1, r-1 {
			stack[l], stack[r] = stack[r], stack[l]
		}
	}
	out := make([]int, n)
	for i, k := range post {
		out[i] = perm[k]
	}
	return out
}

// partitionSupernodes detects fundamental supernodes (column j extends the
// supernode of j−1 when j is j−1's elimination-tree parent and the column
// counts nest exactly — then the two columns share their below-diagonal
// pattern), materializes each supernode's row pattern with a second
// refinement walk, relaxes the partition by amalgamating small supernodes
// into their assembly-tree parents, and builds the deterministic update
// schedule.
func (sym *cholSymbolic) partitionSupernodes(m *CSR, counts []int) {
	n := sym.n
	// Fundamental boundaries.
	fStart := []int32{0}
	for j := 1; j < n; j++ {
		w := j - int(fStart[len(fStart)-1])
		if sym.parent[j-1] == j && counts[j-1] == counts[j]+1 && w < maxPanelWidth {
			continue
		}
		fStart = append(fStart, int32(j))
	}
	fStart = append(fStart, int32(n))
	fs := len(fStart) - 1
	fOf := make([]int32, n)
	for s := 0; s < fs; s++ {
		for j := fStart[s]; j < fStart[s+1]; j++ {
			fOf[j] = int32(s)
		}
	}

	// Fundamental row patterns: re-run the refinement walk; when the walk
	// visits the last column of a supernode for row k, k is in that
	// supernode's shared below pattern. Rows arrive in ascending k order.
	fRows := make([][]int32, fs)
	for s := 0; s < fs; s++ {
		last := int(fStart[s+1]) - 1
		fRows[s] = make([]int32, 0, counts[last])
	}
	lastOf := make([]bool, n)
	for s := 0; s < fs; s++ {
		lastOf[fStart[s+1]-1] = true
	}
	flag := make([]int, n)
	for i := range flag {
		flag[i] = -1
	}
	for k := 0; k < n; k++ {
		flag[k] = k
		row := sym.perm[k]
		for p := m.RowPtr[row]; p < m.RowPtr[row+1]; p++ {
			i := sym.iperm[m.ColIdx[p]]
			for ; i < k && flag[i] != k; i = sym.parent[i] {
				if lastOf[i] {
					fRows[fOf[i]] = append(fRows[fOf[i]], int32(k))
				}
				flag[i] = k
			}
		}
	}

	// Relaxed amalgamation, left to right: merge the running supernode into
	// the next one exactly when the next owns the running pattern's first
	// below-row (its assembly-tree parent — then by the column-nesting
	// theorem the merged below pattern is precisely the next supernode's,
	// so every row list stays a true column pattern and the update-schedule
	// containment argument is untouched), the width cap holds, and the
	// explicit zeros introduced stay under snRelax of the merged panel.
	// Merged columns whose true pattern is smaller than the panel simply
	// carry exact-zero factor entries: values, solves and batch/sequential
	// parity are unchanged, only the flop count grows — the price paid for
	// panels wide enough to amortize their bookkeeping.
	trueNNZ := func(s int) int {
		w := int(fStart[s+1] - fStart[s])
		return w*(w-1)/2 + w*len(fRows[s])
	}
	sym.snStart = append(sym.snStart, 0)
	sym.rows = sym.rows[:0]
	curW := int(fStart[1] - fStart[0])
	curRows := fRows[0]
	curTrue := trueNNZ(0)
	for t := 1; t < fs; t++ {
		wNext := int(fStart[t+1] - fStart[t])
		mergedW := curW + wNext
		canMerge := len(curRows) > 0 && curRows[0] < fStart[t+1] && mergedW <= maxPanelWidth
		if canMerge {
			panel := mergedW*(mergedW-1)/2 + mergedW*len(fRows[t])
			mergedTrue := curTrue + trueNNZ(t)
			canMerge = float64(panel-mergedTrue) <= snRelax*float64(panel)
		}
		if canMerge {
			curW = mergedW
			curRows = fRows[t]
			curTrue += trueNNZ(t)
			continue
		}
		sym.snStart = append(sym.snStart, fStart[t])
		sym.rows = append(sym.rows, curRows)
		curW = wNext
		curRows = fRows[t]
		curTrue = trueNNZ(t)
	}
	sym.snStart = append(sym.snStart, int32(n))
	sym.rows = append(sym.rows, curRows)
	ns := len(sym.snStart) - 1
	sym.snOf = make([]int32, n)
	for s := 0; s < ns; s++ {
		for j := sym.snStart[s]; j < sym.snStart[s+1]; j++ {
			sym.snOf[j] = int32(s)
		}
	}

	// Capacity of a factor's compressed-column view.
	sym.slotCap = 0
	for s := 0; s < ns; s++ {
		c0, c1 := int(sym.snStart[s]), int(sym.snStart[s+1])
		w := c1 - c0
		sym.slotCap += w*(w-1)/2 + w*len(sym.rows[s])
	}

	// Panel offsets and scratch bounds.
	sym.panelPtr = make([]int, ns+1)
	for s := 0; s < ns; s++ {
		w := int(sym.snStart[s+1] - sym.snStart[s])
		nb := len(sym.rows[s])
		nr := w + nb
		sym.panelPtr[s+1] = sym.panelPtr[s] + nr*w
		if w > sym.maxW {
			sym.maxW = w
		}
		if nr > sym.maxNR {
			sym.maxNR = nr
		}
	}
	sym.panelLen = sym.panelPtr[ns]

	// Update schedule: supernode d updates every supernode owning one of
	// its rows in column range. Rows are sorted and supernodes are
	// contiguous column ranges, so same-target rows are consecutive;
	// iterating d ascending leaves each updaters list ascending. Alongside,
	// accumulate each target's estimated update flops (for a run of nq
	// target columns starting at row index q0 of d: dw pivots × nq columns ×
	// (len(rd)−q0) rows, the trapezoid the update kernel walks).
	sym.updaters = make([][]int32, ns)
	sym.updCost = make([]int64, ns)
	for d := 0; d < ns; d++ {
		dw := int64(sym.snStart[d+1] - sym.snStart[d])
		rd := sym.rows[d]
		lastS := int32(-1)
		runStart := 0
		for qi, r := range rd {
			s := sym.snOf[r]
			if s != lastS {
				if lastS >= 0 {
					nq := int64(qi - runStart)
					sym.updCost[lastS] += dw * nq * int64(len(rd)-runStart)
				}
				sym.updaters[s] = append(sym.updaters[s], int32(d))
				lastS = s
				runStart = qi
			}
		}
		if lastS >= 0 {
			nq := int64(len(rd) - runStart)
			sym.updCost[lastS] += dw * nq * int64(len(rd)-runStart)
		}
	}

	// Level schedule: level(s) = 1 + max level of its updaters (all of
	// which precede s). Supernodes within a level have all dependencies in
	// earlier levels and factor in parallel.
	level := make([]int32, ns)
	maxLevel := int32(0)
	for s := 0; s < ns; s++ {
		lv := int32(0)
		for _, d := range sym.updaters[s] {
			if l := level[d] + 1; l > lv {
				lv = l
			}
		}
		level[s] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
	}
	sym.levels = make([][]int32, maxLevel+1)
	for s := 0; s < ns; s++ {
		sym.levels[level[s]] = append(sym.levels[level[s]], int32(s))
	}
}

// Supernodes returns the number of panels in the partition.
func (s *cholSymbolic) Supernodes() int { return len(s.snStart) - 1 }

// cholFactor is one numeric supernodal LDLᵀ factorization over a shared
// symbolic analysis: all panels in one flat column-major array, plus a
// compressed copy of the nonzero entries that the sweep kernels traverse —
// panel traversal only pays off when K columns share it, and the compression
// drops every relaxation zero from the solve flop count. Exactly one of
// c64/c32 is set, per the factor's FactorPrecision. d holds the pivots of D,
// invD their inverses (for the solve's fused diagonal scale). L is unit-
// lower-triangular; the diagonal slots inside panels are scratch.
type cholFactor struct {
	vals []float64
	c64  *compFactor[float64]
	c32  *compFactor[float32]
	d    []float64
	invD []float64
}

// parallelFactorMinN gates the level-parallel factorization: below this the
// per-level barrier costs more than the panels, and the serial sweep is
// already cache-resident. The numeric result is bit-identical either way —
// panels are written disjointly and each panel applies its updates in the
// same deterministic order.
const parallelFactorMinN = 2048

// splitFlops is the target per-task multiply-add count when updateChunk
// splits one panel's update across workers: big enough that task scheduling
// stays noise (tens of microseconds of arithmetic per task), small enough
// that the heavy panels near the etree root — where a level holds fewer
// independent panels than the pool holds workers — fan out instead of
// serializing their level.
const splitFlops = 1 << 17

// splitMinCols floors the width of a split update chunk: narrower chunks
// would starve the 4-column update tiles that make the panel kernel fast.
const splitMinCols = 4

// updateChunk returns the target-column chunk width used to process (and,
// on the parallel path, split) supernode s's panel update; w means no
// split. A pure function of the symbolic analysis, so serial and parallel
// factorizations walk identical tiles and stay bit-for-bit reproducible at
// any GOMAXPROCS.
func (sym *cholSymbolic) updateChunk(s int32) int {
	w := int(sym.snStart[s+1] - sym.snStart[s])
	if w <= splitMinCols {
		return w
	}
	nt := int(sym.updCost[s] / splitFlops)
	if maxT := w / splitMinCols; nt > maxT {
		nt = maxT
	}
	if nt <= 1 {
		return w
	}
	return (w + nt - 1) / nt
}

// snScratch is the per-worker factorization scratch: the global-row → panel-
// row map for the current target panel, the scalar-tail accumulation buffer
// and the update tiles' scale-factor buffer.
type snScratch struct {
	rowLoc []int32
	wbuf   []float64
	abuf   []float64
}

func newSnScratch(sym *cholSymbolic) *snScratch {
	return &snScratch{
		rowLoc: make([]int32, sym.n),
		wbuf:   make([]float64, sym.maxNR),
		abuf:   make([]float64, 4*max(sym.maxW, 1)),
	}
}

// factorSupernodal runs the numeric phase: every supernode assembles its
// panel from the permuted matrix, subtracts the outer-product updates of
// earlier panels through the 4×4 register-blocked tile kernel, and factors
// the panel with the rank-4 blocked dense LDLᵀ kernel. Supernodes are
// scheduled level by level across the worker pool on large systems, and a
// panel whose update cost dominates its level is itself split into column-
// range tasks (updateChunk) so the pool stays busy near the etree root.
// Chunking is a pure function of the symbolic analysis and every output
// entry accumulates its updates in the same deterministic order, so factors
// are bit-stable at any GOMAXPROCS.
func factorSupernodal(m *CSR, sym *cholSymbolic, prec FactorPrecision) (*cholFactor, error) {
	n := sym.n
	f := &cholFactor{
		vals: make([]float64, sym.panelLen),
		d:    make([]float64, n),
		invD: make([]float64, n),
	}
	ns := sym.Supernodes()
	if n < parallelFactorMinN || runtime.GOMAXPROCS(0) == 1 {
		ws := newSnScratch(sym)
		for s := int32(0); int(s) < ns; s++ {
			w := int(sym.snStart[s+1] - sym.snStart[s])
			chunk := sym.updateChunk(s)
			for lo := 0; lo < w; lo += chunk {
				factorPanelCols(m, sym, f, s, lo, min(lo+chunk, w), ws)
			}
			if err := densePanelLDL(sym, f, s); err != nil {
				return nil, err
			}
		}
		f.compress(sym, prec)
		return f, nil
	}
	errs := make([]error, ns)
	// Worker scratch is pooled across levels: a deep schedule would
	// otherwise allocate levels×workers n-sized buffers per factorization.
	var scratch sync.Pool
	scratch.New = func() any { return newSnScratch(sym) }
	// spans and deferred are rebuilt per level (capacity is reused; every
	// pool.Run completes before the next level starts).
	type span struct {
		s      int32
		lo, hi int32
		factor bool // dense-factor the panel right after its only chunk
	}
	var spans []span
	var deferred []int32 // split panels: dense factor runs after all chunks
	for _, lvl := range sym.levels {
		spans = spans[:0]
		deferred = deferred[:0]
		for _, s := range lvl {
			w := int(sym.snStart[s+1] - sym.snStart[s])
			chunk := sym.updateChunk(s)
			if chunk >= w {
				spans = append(spans, span{s: s, lo: 0, hi: int32(w), factor: true})
				continue
			}
			for lo := 0; lo < w; lo += chunk {
				spans = append(spans, span{s: s, lo: int32(lo), hi: int32(min(lo+chunk, w))})
			}
			deferred = append(deferred, s)
		}
		ts := spans
		pool.Run(len(ts), 0, func() func(int) {
			return func(i int) {
				ws := scratch.Get().(*snScratch)
				t := ts[i]
				factorPanelCols(m, sym, f, t.s, int(t.lo), int(t.hi), ws)
				if t.factor {
					errs[t.s] = densePanelLDL(sym, f, t.s)
				}
				scratch.Put(ws)
			}
		})
		if len(deferred) > 0 {
			df := deferred
			pool.Run(len(df), 0, func() func(int) {
				return func(i int) { errs[df[i]] = densePanelLDL(sym, f, df[i]) }
			})
		}
		for _, s := range lvl {
			if errs[s] != nil {
				return nil, errs[s] // lowest-column failure of the level
			}
		}
	}
	f.compress(sym, prec)
	return f, nil
}

// compress mirrors the finished panels into the compressed views the sweep
// kernels traverse, dropping zero entries — both the explicit zeros
// relaxation introduced (so they cost panel flops only where the
// factorization amortizes them) and any true-pattern entries that cancelled
// to zero in this particular factor (skipping a zero subtraction never
// changes a solve). Under Float32 the views are stored in single precision
// (the float64 copies are discarded, so the memory and bandwidth halving is
// real, not additive).
func (f *cholFactor) compress(sym *cholSymbolic, prec FactorPrecision) {
	cptr := make([]int32, sym.n+1)
	crows := make([]int32, 0, sym.slotCap)
	cvals := make([]float64, 0, sym.slotCap)
	ns := sym.Supernodes()
	for s := 0; s < ns; s++ {
		c0 := int(sym.snStart[s])
		c1 := int(sym.snStart[s+1])
		w := c1 - c0
		rows := sym.rows[s]
		nr := w + len(rows)
		P := f.vals[sym.panelPtr[s]:]
		for j := 0; j < w; j++ {
			col := P[j*nr : (j+1)*nr]
			for i := j + 1; i < w; i++ {
				if v := col[i]; v != 0 {
					crows = append(crows, int32(c0+i))
					cvals = append(cvals, v)
				}
			}
			for r, v := range col[w:] {
				if v != 0 {
					crows = append(crows, rows[r])
					cvals = append(cvals, v)
				}
			}
			cptr[c0+j+1] = int32(len(crows))
		}
	}
	// Row-form transpose for the forward sweep: entry lists per row, columns
	// ascending (deterministic counting sort). A gather-form forward runs at
	// the backward sweep's speed — independent loads into one accumulator —
	// where the column-scatter form stalls on store-to-load forwarding.
	nnz := len(crows)
	rptr := make([]int32, sym.n+1)
	for _, r := range crows {
		rptr[r+1]++
	}
	for i := 0; i < sym.n; i++ {
		rptr[i+1] += rptr[i]
	}
	rcols := make([]int32, nnz)
	rvals := make([]float64, nnz)
	next := make([]int32, sym.n)
	copy(next, rptr[:sym.n])
	for j := 0; j < sym.n; j++ {
		p1 := cptr[j+1]
		for p := cptr[j]; p < p1; p++ {
			r := crows[p]
			q := next[r]
			next[r]++
			rcols[q] = int32(j)
			rvals[q] = cvals[p]
		}
	}
	if prec == Float32 {
		f.c32 = &compFactor[float32]{
			cptr: cptr, crows: crows, cvals: shrinkVals(cvals),
			rptr: rptr, rcols: rcols, rvals: shrinkVals(rvals),
		}
		return
	}
	f.c64 = &compFactor[float64]{
		cptr: cptr, crows: crows, cvals: cvals,
		rptr: rptr, rcols: rcols, rvals: rvals,
	}
}

// shrinkVals rounds a factor value array to single precision.
func shrinkVals(v []float64) []float32 {
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = float32(x)
	}
	return out
}

// factorPanelCols assembles target columns [tLo, tHi) of supernode s's panel
// from the permuted matrix and applies every scheduled outer-product update
// to them. All reads from other panels are to supernodes scheduled in
// earlier levels; distinct column ranges of one panel write disjoint memory,
// so chunks of the same panel run on different workers concurrently.
func factorPanelCols(m *CSR, sym *cholSymbolic, f *cholFactor, s int32, tLo, tHi int, ws *snScratch) {
	c0 := int(sym.snStart[s])
	c1 := int(sym.snStart[s+1])
	w := c1 - c0
	rows := sym.rows[s]
	nr := w + len(rows)
	P := f.vals[sym.panelPtr[s] : sym.panelPtr[s]+nr*w]

	rowLoc := ws.rowLoc
	for j := c0; j < c1; j++ {
		rowLoc[j] = int32(j - c0)
	}
	for q, r := range rows {
		rowLoc[r] = int32(w + q)
	}

	// Assemble the lower part of the permuted matrix columns.
	for j := c0 + tLo; j < c0+tHi; j++ {
		col := P[(j-c0)*nr:]
		row := sym.perm[j]
		for p := m.RowPtr[row]; p < m.RowPtr[row+1]; p++ {
			if i := sym.iperm[m.ColIdx[p]]; i >= j {
				col[rowLoc[i]] += m.Values[p]
			}
		}
	}

	// Outer-product updates from earlier panels, ascending supernode order:
	// 4-column register-blocked tiles, scalar columns on the tail. Both
	// paths accumulate each output entry over ascending pivots and write it
	// once, so tiling (and chunk boundaries) never changes the result bits.
	lo32, hi32 := int32(c0+tLo), int32(c0+tHi)
	for _, d := range sym.updaters[s] {
		dc0 := int(sym.snStart[d])
		dw := int(sym.snStart[d+1]) - dc0
		rd := sym.rows[d]
		dnr := dw + len(rd)
		Pd := f.vals[sym.panelPtr[d]:]
		dpiv := f.d[dc0 : dc0+dw]
		q := lowerBound32(rd, lo32)
		end := lowerBound32(rd, hi32)
		for ; end-q >= 4; q += 4 {
			updateTile4(P, nr, Pd, dnr, dw, rd, q, rowLoc, dpiv, ws.abuf)
		}
		for ; q < end; q++ {
			// Target column rows[d][q] of this panel; all of d's rows from q
			// on land inside the panel (pattern nesting).
			cj := int(rd[q]) - c0
			ln := len(rd) - q
			wb := ws.wbuf[:ln]
			for x := range wb {
				wb[x] = 0
			}
			for t := 0; t < dw; t++ {
				src := Pd[t*dnr+dw+q : t*dnr+dw+len(rd)]
				alpha := src[0] * dpiv[t] // L[j,t]·d_t
				for x, v := range src {
					wb[x] += v * alpha
				}
			}
			dst := P[cj*nr:]
			for x, v := range wb {
				dst[rowLoc[rd[q+x]]] -= v
			}
		}
	}
}

// lowerBound32 returns the first index of a (sorted ascending) with
// a[i] >= x.
func lowerBound32(a []int32, x int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CholeskyOperator is a sparse direct supernodal LDLᵀ-factored Operator.
// Immutable after construction and safe for concurrent solves
// (per-goroutine scratch comes from the Workspace).
type CholeskyOperator struct {
	m    *CSR
	sym  *cholSymbolic
	f    *cholFactor
	prec FactorPrecision
}

// Precision reports the factor storage precision.
func (c *CholeskyOperator) Precision() FactorPrecision { return c.prec }

// Matrix exposes the underlying CSR (read-only).
func (c *CholeskyOperator) Matrix() *CSR { return c.m }

// NNZL returns the strictly-lower-triangular entry count of the factor.
func (c *CholeskyOperator) NNZL() int { return c.sym.nnzL }

// FillRatio reports nnz(L+D+Lᵀ) / nnz(A) for the factorization.
func (c *CholeskyOperator) FillRatio() float64 { return c.sym.FillRatio(c.m) }

// Supernodes returns the number of panels in the factor.
func (c *CholeskyOperator) Supernodes() int { return c.sym.Supernodes() }

// MaxPanelRows returns the tallest panel's row count (supernode width plus
// below-diagonal rows) — the working-set headline of the factor.
func (c *CholeskyOperator) MaxPanelRows() int { return c.sym.maxNR }

// Dim implements Operator.
func (c *CholeskyOperator) Dim() int { return c.m.N }

// Apply implements Operator.
func (c *CholeskyOperator) Apply(x, dst []float64) {
	if len(dst) != c.m.N {
		panic("linalg: cholesky Apply dimension mismatch")
	}
	c.m.MulVec(x, dst)
}

// Solve implements Operator: permute, forward-substitute through L in row-
// gather form, scale by D⁻¹, back-substitute through Lᵀ, permute back (the
// sweepSolve kernel). Under a Float32 factor the sweep result is polished by
// one step of float64 iterative refinement against the full-precision
// matrix. Exact (direct), so the warm start is ignored. Allocation-free when
// both dst and ws are provided; dst may alias b.
func (c *CholeskyOperator) Solve(b, _, dst []float64, ws *Workspace) ([]float64, error) {
	n := c.m.N
	if len(b) != n {
		panic("linalg: cholesky Solve dimension mismatch")
	}
	if ws == nil {
		ws = &Workspace{}
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	ws.LastIterations = 0
	y := ws.direct(n)
	if f := c.f; f.c32 != nil {
		// x̂ lands in scratch (dst may alias b, and the residual still needs
		// b); refinement reuses the residual buffer for the correction.
		xh, r := ws.refinePair(n)
		sweepSolve(f.c32, c.sym.perm, f.invD, y, b, xh)
		c.m.MulVec(xh, r)
		for i, bi := range b {
			r[i] = bi - r[i]
		}
		sweepSolve(f.c32, c.sym.perm, f.invD, y, r, r)
		for i := range dst {
			dst[i] = xh[i] + r[i]
		}
		ws.KernelSolves[0] += 2
		return dst, nil
	}
	sweepSolve(c.f.c64, c.sym.perm, c.f.invD, y, b, dst)
	ws.KernelSolves[0]++
	return dst, nil
}

// SolveBatch implements Operator: right-hand sides run through the widest
// applicable interleaved sweep kernels — greedily 16, then 8, then 4 per
// factor traversal, the remainder through the single-column path — so a
// K-wide lockstep batch pays ⌈K/16⌉-ish traversals instead of K. Each
// column's arithmetic — entry order, fused permutes, fused D⁻¹, refinement
// under Float32 — is exactly the single Solve kernel's, so batched and
// sequential results are bit-identical; batching changes memory traffic,
// never arithmetic. Allocation-free when dst and ws are provided; dst[k]
// may alias b[k].
func (c *CholeskyOperator) SolveBatch(b, _, dst [][]float64, ws *Workspace) ([][]float64, error) {
	n := c.m.N
	kk := len(b)
	if kk == 0 {
		return dst, nil
	}
	for _, bk := range b {
		if len(bk) != n {
			panic("linalg: cholesky SolveBatch dimension mismatch")
		}
	}
	if ws == nil {
		ws = &Workspace{}
	}
	if dst == nil {
		dst = make([][]float64, kk)
	}
	for k := range dst {
		if dst[k] == nil {
			dst[k] = make([]float64, n)
		}
	}
	ws.LastIterations = 0
	k := 0
	for ; kk-k >= 16; k += 16 {
		c.solveChunk(b[k:k+16], dst[k:k+16], ws)
	}
	if kk-k >= 8 {
		c.solveChunk(b[k:k+8], dst[k:k+8], ws)
		k += 8
	}
	if kk-k >= 4 {
		c.solveChunk(b[k:k+4], dst[k:k+4], ws)
		k += 4
	}
	for ; k < kk; k++ {
		if _, err := c.Solve(b[k], nil, dst[k], ws); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// solveChunk solves len(bs) ∈ {4, 8, 16} right-hand sides through one
// K-wide sweep kernel invocation (two under Float32: solve plus batched
// refinement correction).
func (c *CholeskyOperator) solveChunk(bs, xs [][]float64, ws *Workspace) {
	n := c.m.N
	kw := len(bs)
	yb := ws.batchBuf(n * kw)
	widx := kernelWidthIndex(kw)
	f := c.f
	if f.c32 != nil {
		xh, rb := ws.refineBlock(n, kw)
		sweepSolveK(f.c32, c.sym.perm, f.invD, yb, bs, xh)
		for k := 0; k < kw; k++ {
			c.m.MulVec(xh[k], rb[k])
			rk := rb[k]
			for i, bi := range bs[k] {
				rk[i] = bi - rk[i]
			}
		}
		sweepSolveK(f.c32, c.sym.perm, f.invD, yb, rb, rb)
		for k := 0; k < kw; k++ {
			xk, hk, rk := xs[k], xh[k], rb[k]
			for i := range xk {
				xk[i] = hk[i] + rk[i]
			}
		}
		ws.KernelSolves[widx] += 2
		return
	}
	sweepSolveK(f.c64, c.sym.perm, f.invD, yb, bs, xs)
	ws.KernelSolves[widx]++
}

// Shift implements Operator. The shift touches only the diagonal, so the
// returned operator reuses the receiver's symbolic analysis (ordering,
// elimination tree, supernode partition, update schedule) and pays for a
// numeric refactorization only, at the receiver's factor precision. This is
// the factor-cache contract backward-Euler stepping relies on.
func (c *CholeskyOperator) Shift(diag []float64) (Operator, error) {
	if len(diag) != c.m.N {
		return nil, fmt.Errorf("linalg: Shift dimension mismatch %d vs %d", c.m.N, len(diag))
	}
	m2 := c.m.Shifted(diag)
	f, err := factorSupernodal(m2, c.sym, c.prec)
	if err != nil {
		return nil, err
	}
	return &CholeskyOperator{m: m2, sym: c.sym, f: f, prec: c.prec}, nil
}

// Diag implements Operator.
func (c *CholeskyOperator) Diag() []float64 { return c.m.Diagonal() }

// Iterative implements Operator: the solve is direct.
func (c *CholeskyOperator) Iterative() bool { return false }

// --- scalar reference kernel ---

// scalarFactor is the PR 4 column-at-a-time LDLᵀ factorization, retained as
// the in-package parity oracle for the supernodal kernels: same symbolic
// analysis, scalar up-looking numeric phase, per-entry triangular solves.
type scalarFactor struct {
	rowIdx []int
	values []float64
	invD   []float64
}

// factorScalarLDL runs the up-looking numeric phase on the permuted matrix:
// row k of L is the solution of a sparse triangular system whose pattern is
// read off the elimination tree. Rejects non-positive pivots.
func factorScalarLDL(m *CSR, sym *cholSymbolic) (*scalarFactor, error) {
	n := sym.n
	f := &scalarFactor{
		rowIdx: make([]int, sym.nnzL),
		values: make([]float64, sym.nnzL),
		invD:   make([]float64, n),
	}
	y := make([]float64, n)   // dense accumulator for row k
	flag := make([]int, n)    // step marker
	pattern := make([]int, n) // tree path scratch
	stack := make([]int, n)   // row pattern in topological order
	lnz := make([]int, n)     // entries placed so far per column
	d := make([]float64, n)   // pivots of D
	for i := range flag {
		flag[i] = -1
	}
	for k := 0; k < n; k++ {
		top := n
		flag[k] = k
		row := sym.perm[k]
		for p := m.RowPtr[row]; p < m.RowPtr[row+1]; p++ {
			i := sym.iperm[m.ColIdx[p]]
			if i > k {
				continue // lower triangle of the permuted matrix: symmetric twin covers it
			}
			y[i] += m.Values[p]
			ln := 0
			for ; flag[i] != k; i = sym.parent[i] {
				pattern[ln] = i
				ln++
				flag[i] = k
			}
			for ln > 0 {
				ln--
				top--
				stack[top] = pattern[ln]
			}
		}
		dk := y[k]
		y[k] = 0
		for s := top; s < n; s++ {
			i := stack[s]
			yi := y[i]
			y[i] = 0
			p2 := sym.colPtr[i] + lnz[i]
			for p := sym.colPtr[i]; p < p2; p++ {
				y[f.rowIdx[p]] -= f.values[p] * yi
			}
			lki := yi / d[i]
			dk -= lki * yi
			f.rowIdx[p2] = k
			f.values[p2] = lki
			lnz[i]++
		}
		if dk <= 0 {
			return nil, fmt.Errorf("%w: pivot %d (node %d) is %g", ErrNotSPD, k, sym.perm[k], dk)
		}
		d[k] = dk
		f.invD[k] = 1 / dk
	}
	return f, nil
}

// solveScalar runs the PR 4 per-entry permuted triangular solves against a
// scalar factor (oracle for the panel solves).
func (f *scalarFactor) solveScalar(sym *cholSymbolic, b []float64) []float64 {
	n := sym.n
	y := make([]float64, n)
	for k, p := range sym.perm {
		y[k] = b[p]
	}
	colPtr := sym.colPtr
	for j := 0; j < n; j++ {
		yj := y[j]
		if yj == 0 {
			continue
		}
		for p := colPtr[j]; p < colPtr[j+1]; p++ {
			y[f.rowIdx[p]] -= f.values[p] * yj
		}
	}
	for j := n - 1; j >= 0; j-- {
		s := y[j] * f.invD[j]
		for p := colPtr[j]; p < colPtr[j+1]; p++ {
			s -= f.values[p] * y[f.rowIdx[p]]
		}
		y[j] = s
	}
	dst := make([]float64, n)
	for k, p := range sym.perm {
		dst[p] = y[k]
	}
	return dst
}

// --- reverse Cuthill-McKee ordering ---

// rcmOrder returns a reverse Cuthill-McKee permutation of the matrix graph:
// perm[k] is the original index of the k-th pivot. The ordering is a
// breadth-first numbering from a pseudo-peripheral start, neighbours visited
// by ascending degree, then reversed — which concentrates the profile of a
// mesh-like graph near the diagonal and bounds Cholesky fill by the
// bandwidth. It survives PR 5 as the bandwidth-quality baseline the ordering
// tests compare AMD against. Deterministic: ties break on node index,
// components are entered in index order.
func rcmOrder(m *CSR) []int {
	n := m.N
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p] != i {
				deg[i]++
			}
		}
	}
	perm := make([]int, 0, n)
	visited := make([]bool, n)
	level := make([]int, n)
	scratch := make([]int, 0, 16)
	for seed := 0; seed < n; seed++ {
		if visited[seed] {
			continue
		}
		start := pseudoPeripheral(m, seed, deg, level)
		// Cuthill-McKee BFS from start.
		from := len(perm)
		perm = append(perm, start)
		visited[start] = true
		for q := from; q < len(perm); q++ {
			u := perm[q]
			scratch = scratch[:0]
			for p := m.RowPtr[u]; p < m.RowPtr[u+1]; p++ {
				v := m.ColIdx[p]
				if v != u && !visited[v] {
					visited[v] = true
					scratch = append(scratch, v)
				}
			}
			sort.Slice(scratch, func(a, b int) bool {
				if deg[scratch[a]] != deg[scratch[b]] {
					return deg[scratch[a]] < deg[scratch[b]]
				}
				return scratch[a] < scratch[b]
			})
			perm = append(perm, scratch...)
		}
	}
	for l, r := 0, n-1; l < r; l, r = l+1, r-1 {
		perm[l], perm[r] = perm[r], perm[l]
	}
	return perm
}

// pseudoPeripheral finds a node of near-maximal eccentricity in seed's
// component by repeated BFS: start anywhere, move to a minimum-degree node
// of the last level, stop when the eccentricity stops growing.
func pseudoPeripheral(m *CSR, seed int, deg, level []int) int {
	start := seed
	ecc := -1
	queue := make([]int, 0, 64)
	for iter := 0; iter < 8; iter++ {
		queue = queue[:0]
		queue = append(queue, start)
		level[start] = 0
		mark := make(map[int]bool, 64)
		mark[start] = true
		last := start
		for q := 0; q < len(queue); q++ {
			u := queue[q]
			last = u
			for p := m.RowPtr[u]; p < m.RowPtr[u+1]; p++ {
				v := m.ColIdx[p]
				if v != u && !mark[v] {
					mark[v] = true
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		newEcc := level[last]
		if newEcc <= ecc {
			break
		}
		ecc = newEcc
		// Minimum-degree node on the deepest level (ties: lowest index, via
		// BFS order determinism).
		best := last
		for _, u := range queue {
			if level[u] == newEcc && (deg[u] < deg[best] || (deg[u] == deg[best] && u < best)) {
				best = u
			}
		}
		start = best
	}
	return start
}
