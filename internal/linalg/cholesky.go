package linalg

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
)

// This file implements the sparse direct solver backend: a fill-reducing
// ordering (reverse Cuthill-McKee), symbolic analysis (elimination tree and
// exact column counts), an up-looking LDLᵀ factorization on the permuted
// matrix, and permuted forward/diagonal/backward triangular solves. See
// DESIGN.md §7.
//
// The split between symbolic and numeric phases is the load-bearing design
// decision: the symbolic analysis depends only on the off-diagonal sparsity
// pattern, so a backward-Euler operator (C/dt + A) derived via Shift — which
// touches only the diagonal — reuses the ordering, elimination tree and
// column pointers of the conductance operator and pays for a numeric
// refactorization alone. A long transient then costs one numeric factor per
// distinct dt plus two triangular sweeps per step.

// ErrNotSPD is returned (wrapped) when an LDLᵀ factorization meets a
// non-positive pivot: the matrix is not positive definite, or is numerically
// singular. Callers that auto-select a backend fall back to an iterative or
// dense path on this error.
var ErrNotSPD = errors.New("linalg: matrix is not symmetric positive definite")

// ErrCholeskyFill is returned (wrapped) by CholeskyBackend.Assemble when the
// predicted factor fill exceeds the configured cap. The assembly aborts
// before any numeric work, so an auto-selecting caller can fall back to the
// iterative backend at the cost of the symbolic analysis only.
var ErrCholeskyFill = errors.New("linalg: Cholesky factor fill exceeds cap")

// ErrNotSymmetric is returned (wrapped) when the Cholesky backend is handed
// a structurally or numerically asymmetric matrix.
var ErrNotSymmetric = errors.New("linalg: matrix is not symmetric")

// CholeskyBackend assembles sparse direct LDLᵀ-factored operators with a
// reverse Cuthill-McKee fill-reducing ordering. Factorization happens
// eagerly, so non-SPD and singular systems are reported at Assemble. The
// zero value applies no fill cap.
type CholeskyBackend struct {
	// MaxFillRatio, when positive, aborts Assemble with ErrCholeskyFill if
	// nnz(L+D+Lᵀ) exceeds MaxFillRatio × nnz(A). Auto-selecting callers use
	// it to bound the memory and per-solve cost before committing.
	MaxFillRatio float64
}

// Name implements Backend.
func (CholeskyBackend) Name() string { return "cholesky" }

// Assemble implements Backend.
func (cb CholeskyBackend) Assemble(n int, entries []Coord) (Operator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("linalg: cholesky assemble with n=%d", n)
	}
	for _, e := range entries {
		if e.I < 0 || e.I >= n || e.J < 0 || e.J >= n {
			return nil, fmt.Errorf("linalg: entry (%d,%d) out of range for n=%d", e.I, e.J, n)
		}
	}
	return NewCholeskyOperator(NewCSR(n, entries), cb.MaxFillRatio)
}

// NewCholeskyOperator orders, analyzes and factors an existing CSR matrix
// (which must be symmetric and must not be mutated afterwards). maxFillRatio
// follows the CholeskyBackend.MaxFillRatio contract; pass 0 for no cap.
func NewCholeskyOperator(m *CSR, maxFillRatio float64) (*CholeskyOperator, error) {
	if err := checkSymmetric(m); err != nil {
		return nil, err
	}
	sym := analyzeCholesky(m)
	if maxFillRatio > 0 {
		if fill := sym.FillRatio(m); fill > maxFillRatio {
			return nil, fmt.Errorf("%w: predicted fill %.1f× exceeds cap %.1f× (nnz(L)=%d)",
				ErrCholeskyFill, fill, maxFillRatio, sym.nnzL)
		}
	}
	f, err := factorLDL(m, sym)
	if err != nil {
		return nil, err
	}
	return &CholeskyOperator{m: m, sym: sym, f: f}, nil
}

// checkSymmetric verifies exact structural and numeric symmetry. Rows of a
// CSR from NewCSR are sorted by column, so each upper-triangle entry is
// matched against its transpose by binary search: O(nnz·log(row len)).
func checkSymmetric(m *CSR) error {
	for i := 0; i < m.N; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j <= i {
				continue
			}
			lo, hi := m.RowPtr[j], m.RowPtr[j+1]
			p := lo + sort.SearchInts(m.ColIdx[lo:hi], i)
			if p >= hi || m.ColIdx[p] != i || m.Values[p] != m.Values[k] {
				return fmt.Errorf("%w: entry (%d,%d) has no equal transpose", ErrNotSymmetric, i, j)
			}
		}
	}
	return nil
}

// cholSymbolic is the reusable symbolic analysis of one sparsity pattern:
// the fill-reducing permutation, the elimination tree of the permuted
// matrix, and the factor's column pointers. It is immutable once built and
// shared by every numeric factorization of a matrix with the same
// off-diagonal pattern (the conductance operator and all its backward-Euler
// shifts).
type cholSymbolic struct {
	n      int
	perm   []int // perm[k] = original index of the k-th pivot
	iperm  []int // inverse: iperm[perm[k]] = k
	parent []int // elimination tree of P·A·Pᵀ
	colPtr []int // factor column pointers, len n+1 (strictly-lower entries)
	nnzL   int   // total strictly-lower entries in L
}

// NNZL returns the number of strictly-lower-triangular entries in the
// factor.
func (s *cholSymbolic) NNZL() int { return s.nnzL }

// FillRatio reports nnz(L+D+Lᵀ) / nnz(A): 1.0 means no fill at all.
func (s *cholSymbolic) FillRatio(m *CSR) float64 {
	return float64(2*s.nnzL+s.n) / float64(max(m.NNZ(), 1))
}

// mdMaxN bounds the minimum-degree ordering: its dense-bitset adjacency
// costs n²/8 bytes and an O(n²) pivot scan, both fine to ~4k unknowns and
// ruinous at reference-grid scale. Larger systems order with RCM (linear
// memory), though in this repository those run on the CG backend anyway.
const mdMaxN = 4096

// fillOrder picks the fill-reducing ordering: greedy minimum degree where
// the quadratic bookkeeping is affordable (it roughly halves the factor
// size of floorplan networks versus RCM — measured in DESIGN.md §7.2), RCM
// beyond.
func fillOrder(m *CSR) []int {
	if m.N <= mdMaxN {
		return mdOrder(m)
	}
	return rcmOrder(m)
}

// analyzeCholesky runs the symbolic phase: fill-reducing ordering,
// elimination tree and exact per-column counts of the factor (the classic
// refinement walk: for every strictly-upper entry of permuted column k,
// climb the tree until reaching a node already marked this step).
func analyzeCholesky(m *CSR) *cholSymbolic {
	n := m.N
	perm := fillOrder(m)
	iperm := make([]int, n)
	for k, p := range perm {
		iperm[p] = k
	}
	parent := make([]int, n)
	flag := make([]int, n)
	counts := make([]int, n)
	for i := range flag {
		flag[i] = -1
	}
	for k := 0; k < n; k++ {
		parent[k] = -1
		flag[k] = k
		row := perm[k]
		for p := m.RowPtr[row]; p < m.RowPtr[row+1]; p++ {
			i := iperm[m.ColIdx[p]]
			for ; i < k && flag[i] != k; i = parent[i] {
				if parent[i] == -1 {
					parent[i] = k
				}
				counts[i]++
				flag[i] = k
			}
		}
	}
	colPtr := make([]int, n+1)
	for i := 0; i < n; i++ {
		colPtr[i+1] = colPtr[i] + counts[i]
	}
	return &cholSymbolic{n: n, perm: perm, iperm: iperm, parent: parent, colPtr: colPtr, nnzL: colPtr[n]}
}

// cholFactor is one numeric LDLᵀ factorization over a shared symbolic
// analysis. L is unit-lower-triangular, stored by columns (strictly-lower
// entries only); invD is the inverted diagonal of D.
type cholFactor struct {
	rowIdx []int
	values []float64
	invD   []float64
}

// factorLDL runs the up-looking numeric phase on the permuted matrix: row k
// of L is the solution of a sparse triangular system whose pattern is read
// off the elimination tree. Rejects non-positive pivots (not SPD, or
// numerically singular).
func factorLDL(m *CSR, sym *cholSymbolic) (*cholFactor, error) {
	n := sym.n
	f := &cholFactor{
		rowIdx: make([]int, sym.nnzL),
		values: make([]float64, sym.nnzL),
		invD:   make([]float64, n),
	}
	y := make([]float64, n)   // dense accumulator for row k
	flag := make([]int, n)    // step marker
	pattern := make([]int, n) // tree path scratch
	stack := make([]int, n)   // row pattern in topological order
	lnz := make([]int, n)     // entries placed so far per column
	d := make([]float64, n)   // pivots of D
	for i := range flag {
		flag[i] = -1
	}
	for k := 0; k < n; k++ {
		top := n
		flag[k] = k
		row := sym.perm[k]
		for p := m.RowPtr[row]; p < m.RowPtr[row+1]; p++ {
			i := sym.iperm[m.ColIdx[p]]
			if i > k {
				continue // lower triangle of the permuted matrix: symmetric twin covers it
			}
			y[i] += m.Values[p]
			ln := 0
			for ; flag[i] != k; i = sym.parent[i] {
				pattern[ln] = i
				ln++
				flag[i] = k
			}
			for ln > 0 {
				ln--
				top--
				stack[top] = pattern[ln]
			}
		}
		dk := y[k]
		y[k] = 0
		for s := top; s < n; s++ {
			i := stack[s]
			yi := y[i]
			y[i] = 0
			p2 := sym.colPtr[i] + lnz[i]
			for p := sym.colPtr[i]; p < p2; p++ {
				y[f.rowIdx[p]] -= f.values[p] * yi
			}
			lki := yi / d[i]
			dk -= lki * yi
			f.rowIdx[p2] = k
			f.values[p2] = lki
			lnz[i]++
		}
		if dk <= 0 {
			return nil, fmt.Errorf("%w: pivot %d (node %d) is %g", ErrNotSPD, k, sym.perm[k], dk)
		}
		d[k] = dk
		f.invD[k] = 1 / dk
	}
	return f, nil
}

// CholeskyOperator is a sparse direct LDLᵀ-factored Operator. Immutable
// after construction and safe for concurrent solves (per-goroutine scratch
// comes from the Workspace).
type CholeskyOperator struct {
	m   *CSR
	sym *cholSymbolic
	f   *cholFactor
}

// Matrix exposes the underlying CSR (read-only).
func (c *CholeskyOperator) Matrix() *CSR { return c.m }

// NNZL returns the strictly-lower-triangular entry count of the factor.
func (c *CholeskyOperator) NNZL() int { return c.sym.nnzL }

// FillRatio reports nnz(L+D+Lᵀ) / nnz(A) for the factorization.
func (c *CholeskyOperator) FillRatio() float64 { return c.sym.FillRatio(c.m) }

// Dim implements Operator.
func (c *CholeskyOperator) Dim() int { return c.m.N }

// Apply implements Operator.
func (c *CholeskyOperator) Apply(x, dst []float64) {
	if len(dst) != c.m.N {
		panic("linalg: cholesky Apply dimension mismatch")
	}
	c.m.MulVec(x, dst)
}

// Solve implements Operator: permute, forward-substitute through L, scale by
// D⁻¹, back-substitute through Lᵀ, permute back. Exact (direct), so the warm
// start is ignored. Allocation-free when both dst and ws are provided; dst
// may alias b.
func (c *CholeskyOperator) Solve(b, _, dst []float64, ws *Workspace) ([]float64, error) {
	n := c.m.N
	if len(b) != n {
		panic("linalg: cholesky Solve dimension mismatch")
	}
	if ws == nil {
		ws = &Workspace{}
	}
	if dst == nil {
		dst = make([]float64, n)
	}
	ws.LastIterations = 0
	y := ws.direct(n)
	perm := c.sym.perm
	colPtr := c.sym.colPtr
	rowIdx, values, invD := c.f.rowIdx, c.f.values, c.f.invD
	for k, p := range perm {
		y[k] = b[p]
	}
	for j := 0; j < n; j++ {
		yj := y[j]
		if yj == 0 {
			continue
		}
		for p := colPtr[j]; p < colPtr[j+1]; p++ {
			y[rowIdx[p]] -= values[p] * yj
		}
	}
	// Backward sweep with the D⁻¹ scale fused in: by the time column j is
	// processed, every y[rowIdx[p]] (rowIdx > j) is already a final x entry.
	for j := n - 1; j >= 0; j-- {
		s := y[j] * invD[j]
		for p := colPtr[j]; p < colPtr[j+1]; p++ {
			s -= values[p] * y[rowIdx[p]]
		}
		y[j] = s
	}
	for k, p := range perm {
		dst[p] = y[k]
	}
	return dst, nil
}

// Shift implements Operator. The shift touches only the diagonal, so the
// returned operator reuses the receiver's symbolic analysis (ordering,
// elimination tree, column pointers) and pays for a numeric refactorization
// only. This is the factor-cache contract backward-Euler stepping relies on.
func (c *CholeskyOperator) Shift(diag []float64) (Operator, error) {
	if len(diag) != c.m.N {
		return nil, fmt.Errorf("linalg: Shift dimension mismatch %d vs %d", c.m.N, len(diag))
	}
	m2 := c.m.Shifted(diag)
	f, err := factorLDL(m2, c.sym)
	if err != nil {
		return nil, err
	}
	return &CholeskyOperator{m: m2, sym: c.sym, f: f}, nil
}

// Diag implements Operator.
func (c *CholeskyOperator) Diag() []float64 { return c.m.Diagonal() }

// Iterative implements Operator: the solve is direct.
func (c *CholeskyOperator) Iterative() bool { return false }

// --- greedy minimum-degree ordering ---

// mdOrder returns a greedy minimum-degree permutation: repeatedly eliminate
// the lowest-degree node (ties broken on index, so the ordering is
// deterministic) and connect its surviving neighbours into a clique —
// exactly the fill the factorization would create, so the pivot choice
// tracks true degrees. The elimination graph lives in dense bitsets: row
// updates are word-parallel ORs and degrees are masked popcounts, which
// keeps the quadratic-ish bookkeeping cheap at the network sizes the direct
// backend serves.
func mdOrder(m *CSR) []int {
	n := m.N
	w := (n + 63) / 64
	adj := make([]uint64, n*w)
	row := func(i int) []uint64 { return adj[i*w : (i+1)*w] }
	for i := 0; i < n; i++ {
		ri := row(i)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if j := m.ColIdx[p]; j != i {
				ri[j>>6] |= 1 << (uint(j) & 63)
			}
		}
	}
	alive := make([]uint64, w)
	for i := 0; i < n; i++ {
		alive[i>>6] |= 1 << (uint(i) & 63)
	}
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		deg[i] = popcountAnd(row(i), alive)
	}
	perm := make([]int, 0, n)
	nv := make([]uint64, w)
	for len(perm) < n {
		v := -1
		for i := 0; i < n; i++ {
			if alive[i>>6]&(1<<(uint(i)&63)) != 0 && (v < 0 || deg[i] < deg[v]) {
				v = i
			}
		}
		perm = append(perm, v)
		alive[v>>6] &^= 1 << (uint(v) & 63)
		rv := row(v)
		for k := range nv {
			nv[k] = rv[k] & alive[k]
		}
		for k, word := range nv {
			for word != 0 {
				a := k<<6 + trailingZeros(word)
				word &= word - 1
				ra := row(a)
				for x := range ra {
					ra[x] |= nv[x]
				}
				ra[a>>6] &^= 1 << (uint(a) & 63)
				deg[a] = popcountAnd(ra, alive)
			}
		}
	}
	return perm
}

// popcountAnd counts the set bits of a&b without materializing it.
func popcountAnd(a, b []uint64) int {
	c := 0
	for i := range a {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }

// --- reverse Cuthill-McKee ordering ---

// rcmOrder returns a reverse Cuthill-McKee permutation of the matrix graph:
// perm[k] is the original index of the k-th pivot. The ordering is a
// breadth-first numbering from a pseudo-peripheral start, neighbours visited
// by ascending degree, then reversed — which concentrates the profile of a
// mesh-like graph near the diagonal and bounds Cholesky fill by the
// bandwidth. Deterministic: ties break on node index, components are entered
// in index order.
func rcmOrder(m *CSR) []int {
	n := m.N
	deg := make([]int, n)
	for i := 0; i < n; i++ {
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			if m.ColIdx[p] != i {
				deg[i]++
			}
		}
	}
	perm := make([]int, 0, n)
	visited := make([]bool, n)
	level := make([]int, n)
	scratch := make([]int, 0, 16)
	for seed := 0; seed < n; seed++ {
		if visited[seed] {
			continue
		}
		start := pseudoPeripheral(m, seed, deg, level)
		// Cuthill-McKee BFS from start.
		from := len(perm)
		perm = append(perm, start)
		visited[start] = true
		for q := from; q < len(perm); q++ {
			u := perm[q]
			scratch = scratch[:0]
			for p := m.RowPtr[u]; p < m.RowPtr[u+1]; p++ {
				v := m.ColIdx[p]
				if v != u && !visited[v] {
					visited[v] = true
					scratch = append(scratch, v)
				}
			}
			sort.Slice(scratch, func(a, b int) bool {
				if deg[scratch[a]] != deg[scratch[b]] {
					return deg[scratch[a]] < deg[scratch[b]]
				}
				return scratch[a] < scratch[b]
			})
			perm = append(perm, scratch...)
		}
	}
	for l, r := 0, n-1; l < r; l, r = l+1, r-1 {
		perm[l], perm[r] = perm[r], perm[l]
	}
	return perm
}

// pseudoPeripheral finds a node of near-maximal eccentricity in seed's
// component by repeated BFS: start anywhere, move to a minimum-degree node
// of the last level, stop when the eccentricity stops growing.
func pseudoPeripheral(m *CSR, seed int, deg, level []int) int {
	start := seed
	ecc := -1
	queue := make([]int, 0, 64)
	for iter := 0; iter < 8; iter++ {
		queue = queue[:0]
		queue = append(queue, start)
		level[start] = 0
		mark := make(map[int]bool, 64)
		mark[start] = true
		last := start
		for q := 0; q < len(queue); q++ {
			u := queue[q]
			last = u
			for p := m.RowPtr[u]; p < m.RowPtr[u+1]; p++ {
				v := m.ColIdx[p]
				if v != u && !mark[v] {
					mark[v] = true
					level[v] = level[u] + 1
					queue = append(queue, v)
				}
			}
		}
		newEcc := level[last]
		if newEcc <= ecc {
			break
		}
		ecc = newEcc
		// Minimum-degree node on the deepest level (ties: lowest index, via
		// BFS order determinism).
		best := last
		for _, u := range queue {
			if level[u] == newEcc && (deg[u] < deg[best] || (deg[u] == deg[best] && u < best)) {
				best = u
			}
		}
		start = best
	}
	return start
}
