package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCSRAssemblyDuplicates(t *testing.T) {
	m := NewCSR(2, []Coord{{0, 0, 1}, {0, 0, 2}, {1, 1, 5}, {0, 1, -1}})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ=%d want 3", m.NNZ())
	}
	y := m.MulVec([]float64{1, 1}, nil)
	if y[0] != 2 || y[1] != 5 {
		t.Fatalf("MulVec got %v", y)
	}
}

func TestCSRDiagonal(t *testing.T) {
	m := NewCSR(3, []Coord{{0, 0, 2}, {1, 2, 7}, {2, 2, -4}})
	d := m.Diagonal()
	if d[0] != 2 || d[1] != 0 || d[2] != -4 {
		t.Fatalf("Diagonal got %v", d)
	}
}

// laplacian1D builds the standard SPD tridiagonal Poisson matrix.
func laplacian1D(n int) *CSR {
	var e []Coord
	for i := 0; i < n; i++ {
		e = append(e, Coord{i, i, 2})
		if i > 0 {
			e = append(e, Coord{i, i - 1, -1})
		}
		if i < n-1 {
			e = append(e, Coord{i, i + 1, -1})
		}
	}
	return NewCSR(n, e)
}

func TestCGSolvesLaplacian(t *testing.T) {
	n := 100
	a := laplacian1D(n)
	truth := make([]float64, n)
	rng := rand.New(rand.NewSource(1))
	for i := range truth {
		truth[i] = rng.NormFloat64()
	}
	b := a.MulVec(truth, nil)
	x, res := SolveCG(a, b, nil, CGOptions{Tol: 1e-12})
	if !res.Converged {
		t.Fatalf("CG did not converge: %+v", res)
	}
	for i := range truth {
		if math.Abs(x[i]-truth[i]) > 1e-6 {
			t.Fatalf("CG x[%d]=%g want %g", i, x[i], truth[i])
		}
	}
}

func TestCGWarmStart(t *testing.T) {
	n := 50
	a := laplacian1D(n)
	b := make([]float64, n)
	Fill(b, 1)
	x1, r1 := SolveCG(a, b, nil, CGOptions{Tol: 1e-10})
	// Warm start at the solution should converge immediately.
	_, r2 := SolveCG(a, b, x1, CGOptions{Tol: 1e-10})
	if !r2.Converged || r2.Iterations > 2 {
		t.Fatalf("warm start took %d iterations (cold: %d)", r2.Iterations, r1.Iterations)
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := laplacian1D(10)
	x, res := SolveCG(a, make([]float64, 10), nil, CGOptions{})
	if NormInf(x) != 0 {
		t.Fatalf("zero rhs should give zero solution, got %v", x)
	}
	_ = res
}

func TestTridiagonal(t *testing.T) {
	// Same Poisson system solved two ways must agree.
	n := 40
	a := make([]float64, n)
	bd := make([]float64, n)
	c := make([]float64, n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		bd[i] = 2
		if i > 0 {
			a[i] = -1
		}
		if i < n-1 {
			c[i] = -1
		}
		d[i] = float64(i%3) - 1
	}
	x, err := Tridiagonal(a, bd, c, d)
	if err != nil {
		t.Fatal(err)
	}
	xcg, res := SolveCG(laplacian1D(n), d, nil, CGOptions{Tol: 1e-13})
	if !res.Converged {
		t.Fatal("CG failed")
	}
	for i := range x {
		if math.Abs(x[i]-xcg[i]) > 1e-7 {
			t.Fatalf("tridiag vs CG mismatch at %d: %g vs %g", i, x[i], xcg[i])
		}
	}
}

func TestTridiagonalSingular(t *testing.T) {
	if _, err := Tridiagonal([]float64{0, 0}, []float64{0, 1}, []float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestVectorOps(t *testing.T) {
	v := []float64{3, -4}
	if Norm2(v) != 5 {
		t.Fatalf("Norm2=%g", Norm2(v))
	}
	if NormInf(v) != 4 {
		t.Fatalf("NormInf=%g", NormInf(v))
	}
	y := []float64{1, 1}
	AXPY(2, v, y)
	if y[0] != 7 || y[1] != -7 {
		t.Fatalf("AXPY got %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 {
		t.Fatalf("Scale got %v", y)
	}
	i, mx := MaxIdx([]float64{1, 9, 2})
	if i != 1 || mx != 9 {
		t.Fatalf("MaxIdx got %d %g", i, mx)
	}
	j, mn := MinIdx([]float64{1, 9, -2})
	if j != 2 || mn != -2 {
		t.Fatalf("MinIdx got %d %g", j, mn)
	}
}

// Property: CSR MulVec agrees with a dense reference for random sparse
// matrices.
func TestCSRMulVecProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		var entries []Coord
		dense := NewMatrix(n, n)
		for k := 0; k < r.Intn(3*n+1); k++ {
			i, j, v := r.Intn(n), r.Intn(n), r.NormFloat64()
			entries = append(entries, Coord{i, j, v})
			dense.Add(i, j, v)
		}
		m := NewCSR(n, entries)
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		got := m.MulVec(x, nil)
		want := dense.MulVec(x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: CG solution satisfies the residual tolerance for random SPD
// (diagonally dominant) sparse systems.
func TestCGProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		var entries []Coord
		// Symmetric off-diagonals, strong diagonal.
		for i := 0; i < n; i++ {
			entries = append(entries, Coord{i, i, float64(n) + 1})
		}
		for k := 0; k < n; k++ {
			i, j := r.Intn(n), r.Intn(n)
			if i == j {
				continue
			}
			v := r.Float64() - 0.5
			entries = append(entries, Coord{i, j, v}, Coord{j, i, v})
		}
		a := NewCSR(n, entries)
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, res := SolveCG(a, b, nil, CGOptions{Tol: 1e-10})
		if !res.Converged {
			return false
		}
		ax := a.MulVec(x, nil)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
