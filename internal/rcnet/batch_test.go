package rcnet

import (
	"math/rand"
	"strings"
	"testing"
)

// Tests for the batched stepping layer: bit-identical parity between the
// batched and per-session paths on every backend, lockstep replay parity at
// any worker count, the batch-width statistics, and the zero-allocation gate
// on the batched hot path.

// TestBatchSessionMatchesSessions: K states stepped through one BatchSession
// must be bit-identical to the same K states stepped through K independent
// Sessions, on the dense, supernodal-Cholesky and CG backends, through a dt
// switch.
func TestBatchSessionMatchesSessions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := gridNetwork(rng, 6, 6)
	const kk = 5
	for _, hint := range []SolverHint{HintDense, HintCholesky, HintCG} {
		t.Run(hint.String(), func(t *testing.T) {
			s, err := net.CompileHint(hint)
			if err != nil {
				t.Fatal(err)
			}
			powers := make([][]float64, kk)
			seqTemps := make([][]float64, kk)
			batTemps := make([][]float64, kk)
			for k := 0; k < kk; k++ {
				powers[k] = randomPower(rng, net.N())
				seqTemps[k] = s.AmbientVector()
				batTemps[k] = s.AmbientVector()
			}
			bs := s.NewBatchSession(kk)
			errs := make([]error, kk)
			for step, dt := range []float64{1e-3, 1e-3, 2e-3, 1e-3} {
				for k := 0; k < kk; k++ {
					se := s.NewSession() // fresh session: state lives in temps
					if err := se.StepBE(seqTemps[k], powers[k], dt); err != nil {
						t.Fatal(err)
					}
				}
				if err := bs.StepBE(batTemps, powers, dt, errs); err != nil {
					t.Fatal(err)
				}
				for k := 0; k < kk; k++ {
					if errs[k] != nil {
						t.Fatalf("step %d slot %d: %v", step, k, errs[k])
					}
					for i := range batTemps[k] {
						if batTemps[k][i] != seqTemps[k][i] {
							t.Fatalf("step %d slot %d node %d: batch %v vs sequential %v",
								step, k, i, batTemps[k][i], seqTemps[k][i])
						}
					}
				}
			}
		})
	}
}

// TestBatchSessionSkipsNilSlots: nil temperature slots are skipped and the
// rest advance exactly as without them.
func TestBatchSessionSkipsNilSlots(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := gridNetwork(rng, 5, 5)
	s, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p := randomPower(rng, net.N())
	ref := s.AmbientVector()
	se := s.NewSession()
	if err := se.StepBE(ref, p, 1e-3); err != nil {
		t.Fatal(err)
	}
	bs := s.NewBatchSession(3)
	live := s.AmbientVector()
	temps := [][]float64{nil, live, nil}
	powers := [][]float64{nil, p, nil}
	errs := make([]error, 3)
	if err := bs.StepBE(temps, powers, 1e-3, errs); err != nil {
		t.Fatal(err)
	}
	for i := range live {
		if live[i] != ref[i] {
			t.Fatalf("node %d: %v vs %v", i, live[i], ref[i])
		}
	}
}

// TestTransientBatchLockstepParity: the lockstep TransientBatch must produce
// bit-identical samples to sequential TransientTrace for every job, at any
// worker count, with mixed replay windows in one batch.
func TestTransientBatchLockstepParity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := gridNetwork(rng, 6, 5)
	s, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 11
	powers := make([][]float64, jobs)
	for j := range powers {
		powers[j] = randomPower(rng, net.N())
	}
	windows := []struct{ dur, se float64 }{{0.02, 1e-3}, {0.01, 5e-4}}
	mk := func() []TraceJob {
		out := make([]TraceJob, jobs)
		for j := range out {
			w := windows[j%len(windows)]
			p := powers[j]
			out[j] = TraceJob{
				Temp:        s.AmbientVector(),
				Schedule:    func(_ float64, dst []float64) { copy(dst, p) },
				Duration:    w.dur,
				SampleEvery: w.se,
			}
		}
		return out
	}
	ref := make([][]Sample, jobs)
	for j, job := range mk() {
		samples, err := s.TransientTrace(job.Temp, job.Schedule, job.Duration, job.SampleEvery)
		if err != nil {
			t.Fatal(err)
		}
		ref[j] = samples
	}
	for _, workers := range []int{1, 2, 4, jobs} {
		got, err := s.TransientBatch(mk(), workers)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref {
			if len(got[j]) != len(ref[j]) {
				t.Fatalf("workers=%d job %d: %d samples vs %d", workers, j, len(got[j]), len(ref[j]))
			}
			for i := range ref[j] {
				if got[j][i].Time != ref[j][i].Time {
					t.Fatalf("workers=%d job %d sample %d: time %v vs %v", workers, j, i, got[j][i].Time, ref[j][i].Time)
				}
				for nn := range ref[j][i].Temp {
					if got[j][i].Temp[nn] != ref[j][i].Temp[nn] {
						t.Fatalf("workers=%d job %d sample %d node %d: %v vs %v",
							workers, j, i, nn, got[j][i].Temp[nn], ref[j][i].Temp[nn])
					}
				}
			}
		}
	}
}

// TestTransientBatchPanicIsolation: a schedule that panics mid-replay fails
// only its own job even when lockstepped with healthy jobs in one group.
func TestTransientBatchPanicIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := gridNetwork(rng, 4, 4)
	s, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p := randomPower(rng, net.N())
	jobs := []TraceJob{
		{Temp: s.AmbientVector(), Schedule: func(_ float64, dst []float64) { copy(dst, p) }, Duration: 0.01, SampleEvery: 1e-3},
		{Temp: s.AmbientVector(), Schedule: func(tm float64, dst []float64) {
			if tm > 4e-3 {
				panic("boom")
			}
			copy(dst, p)
		}, Duration: 0.01, SampleEvery: 1e-3},
		{Temp: s.AmbientVector(), Schedule: func(_ float64, dst []float64) { copy(dst, p) }, Duration: 0.01, SampleEvery: 1e-3},
	}
	results, err := s.TransientBatch(jobs, 1)
	if err == nil || !strings.Contains(err.Error(), "job 1") || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("expected job 1 panic error, got %v", err)
	}
	if results[1] != nil {
		t.Fatal("panicked job kept results")
	}
	for _, j := range []int{0, 2} {
		if len(results[j]) != 11 {
			t.Fatalf("healthy job %d: %d samples, want 11", j, len(results[j]))
		}
	}
}

// TestBatchWidthHistogram: batched steps must land in the width histogram
// bucket matching the group width.
func TestBatchWidthHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := gridNetwork(rng, 5, 5)
	s, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	const jobs, steps = 6, 10
	tj := make([]TraceJob, jobs)
	for j := range tj {
		p := randomPower(rng, net.N())
		tj[j] = TraceJob{
			Temp:        s.AmbientVector(),
			Schedule:    func(_ float64, dst []float64) { copy(dst, p) },
			Duration:    float64(steps) * 1e-3,
			SampleEvery: 1e-3,
		}
	}
	if _, err := s.TransientBatch(tj, 1); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.BatchWidths["5-8"] != steps {
		t.Fatalf("batch width histogram: %v, want %d in bucket 5-8", st.BatchWidths, steps)
	}
	if st.DirectSteps != jobs*steps {
		t.Fatalf("direct steps: %d, want %d", st.DirectSteps, jobs*steps)
	}
	if st.Supernodes <= 0 || st.MaxPanelRows <= 0 {
		t.Fatalf("supernodal factor stats missing: %+v", st)
	}
	// A width-6 group dispatches greedily onto one 4-wide kernel plus two
	// singles per step; the per-workspace counters must surface here.
	if st.KernelSolves["4"] != steps || st.KernelSolves["1"] != 2*steps {
		t.Fatalf("kernel solve counters: %v, want %d×\"4\" and %d×\"1\"", st.KernelSolves, steps, 2*steps)
	}
}

// TestBatchStepAllocationFree gates the batched stepping hot path at zero
// allocations per step on the direct backends (the satellite extension of
// TestStepBEAllocationFree).
func TestBatchStepAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	net := gridNetwork(rng, 6, 6)
	for _, hint := range []SolverHint{HintDense, HintCholesky} {
		t.Run(hint.String(), func(t *testing.T) {
			s, err := net.CompileHint(hint)
			if err != nil {
				t.Fatal(err)
			}
			const kk = 4
			temps := make([][]float64, kk)
			powers := make([][]float64, kk)
			for k := 0; k < kk; k++ {
				temps[k] = s.AmbientVector()
				powers[k] = randomPower(rng, net.N())
			}
			bs := s.NewBatchSession(kk)
			errs := make([]error, kk)
			step := func() {
				if err := bs.StepBE(temps, powers, 1e-3, errs); err != nil {
					t.Fatal(err)
				}
				for k, e := range errs {
					if e != nil {
						t.Fatalf("slot %d: %v", k, e)
					}
				}
			}
			step() // warm: factor + scratch growth
			if allocs := testing.AllocsPerRun(100, step); allocs != 0 {
				t.Fatalf("%v batched StepBE allocates %v times per step, want 0", hint, allocs)
			}
		})
	}
}

// TestReplayLockstepWindowMismatch: jobs that do not share the group's
// replay window are rejected individually.
func TestReplayLockstepWindowMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := gridNetwork(rng, 4, 4)
	s, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p := randomPower(rng, net.N())
	sched := func(_ float64, dst []float64) { copy(dst, p) }
	jobs := []TraceJob{
		{Temp: s.AmbientVector(), Schedule: sched, Duration: 0.01, SampleEvery: 1e-3},
		{Temp: s.AmbientVector(), Schedule: sched, Duration: 0.02, SampleEvery: 1e-3},
	}
	results, errs := s.ReplayLockstep(jobs)
	if errs[0] != nil {
		t.Fatalf("anchor job failed: %v", errs[0])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "window mismatch") {
		t.Fatalf("mismatched job error: %v", errs[1])
	}
	if results[1] != nil {
		t.Fatal("mismatched job has results")
	}
}
