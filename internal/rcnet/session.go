package rcnet

import "fmt"

// Session is an exported per-goroutine solving context over one compiled
// Solver: its own solve workspace, backward-Euler operator cache and
// steady-state warm-start vector. Any number of Sessions may run
// concurrently against the same Solver (they share only the immutable
// conductance operator); a single Session must not be used from more than
// one goroutine at a time.
//
// Long-lived services keep a pool of Sessions per compiled model: repeated
// steady solves then warm-start from the previous solution (the iterative
// backend converges almost immediately for similar power maps), and repeated
// same-dt stepping reuses one shifted operator.
type Session struct {
	ses *session
	// steadyWarm is the previous steady solution, used to warm-start the
	// next one; steadyRHS is the right-hand side that produced it, so a
	// repeated identical request is answered by memoization (bit-identical
	// to recomputing: the solve is deterministic in its inputs).
	steadyWarm []float64
	steadyRHS  []float64
}

// NewSession creates an independent solving context. Safe to call
// concurrently.
func (s *Solver) NewSession() *Session {
	return &Session{ses: s.newSession()}
}

// Solver returns the compiled solver this session runs against.
func (se *Session) Solver() *Solver { return se.ses.s }

// SteadyState returns the equilibrium temperatures (Kelvin) for constant
// per-node power injection. A repeat of the session's previous power map
// returns the memoized solution; anything else solves, warm-started from
// the previous solution. Results are identical to Solver.SteadyState (the
// solve is deterministic and both refine to near-direct accuracy); only the
// work differs. The returned slice is the caller's to mutate.
func (se *Session) SteadyState(power []float64) []float64 {
	s := se.ses.s
	b := s.rhs(power)
	if se.steadyRHS != nil && equalVec(b, se.steadyRHS) {
		out := make([]float64, len(se.steadyWarm))
		copy(out, se.steadyWarm)
		return out
	}
	warm := se.steadyWarm
	if warm == nil {
		warm = s.AmbientVector()
	}
	x := s.solveRefined(b, warm, &se.ses.ws)
	se.steadyWarm = append(se.steadyWarm[:0], x...)
	se.steadyRHS = append(se.steadyRHS[:0], b...)
	return x
}

func equalVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// StepBE advances temp (in place) by one backward-Euler step of size dt
// under constant power, using the session's cached (C/dt + A) operator. On
// error, temp is left unchanged.
func (se *Session) StepBE(temp, power []float64, dt float64) error {
	n := se.ses.s.net.N()
	if len(temp) != n {
		return fmt.Errorf("rcnet: temperature vector length %d, want %d", len(temp), n)
	}
	if len(power) != n {
		return fmt.Errorf("rcnet: power vector length %d, want %d", len(power), n)
	}
	return se.ses.stepBE(temp, power, dt)
}
