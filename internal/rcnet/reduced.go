package rcnet

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// This file holds the reduced-order (MOR) compile path: CompileReduced
// projects the assembled conductance system onto a block-Krylov basis
// (linalg.NewReducedOperator), after which every backward-Euler step is a
// dense O(n·r + r²) solve and a session's working state is a few KB — the
// per-user serving regime. The projection is approximate, so the stepping
// layer samples an a-posteriori residual against the exact matrix and trips
// the solver back onto its full backend when the gate is exceeded
// (DESIGN.md §10.3); construction failures fall back at compile time.

// DefaultReducedOrder caps the reduced basis size when ReducedSpec.Order is
// unset. It sits at the top of the useful range: floorplan-scale networks
// deflate to an exact basis well below it, and grid models keep enough
// moments for sub-0.1 K transient drift.
const DefaultReducedOrder = 160

// DefaultReducedResidualGate is the relative backward-Euler residual
// ‖b − A·x‖/‖b‖ above which a sampled reduced step trips the solver onto
// its full backend. The right-hand side of a BE step is dominated by the
// C/dt·T term, so a relative residual of r maps to a per-step temperature
// error on the order of r·T — 1e-6 keeps accumulated drift well inside the
// 0.1 K golden gate with a wide margin over the ~1e-12 residuals a healthy
// basis produces.
const DefaultReducedResidualGate = 1e-6

// ReducedSpec configures CompileReduced.
type ReducedSpec struct {
	// Inputs lists the node indices that carry power injection: they become
	// the input columns B the Krylov basis is built from (the hotspot layer
	// passes its per-block silicon nodes). Nil means every node, which
	// reduces nothing unless Order caps well below N.
	Inputs []int
	// Order caps the basis size (0 = DefaultReducedOrder, always capped at
	// N). Larger orders track the full model more closely and step slower.
	Order int
	// Shift is the second moment-matching frequency in rad/s (0 = automatic
	// selection from the network's conductance/capacitance rates).
	Shift float64
	// ResidualGate overrides DefaultReducedResidualGate (0 = default).
	ResidualGate float64
}

// reducedBackend is the linalg.Backend tag for solvers compiled through
// CompileReduced. Assembly needs the capacitances and input columns, which
// the Backend interface does not carry, so it happens in CompileReduced;
// the tag exists to name the backend in Solver.Backend and stats.
type reducedBackend struct{}

func (reducedBackend) Name() string { return "reduced" }

func (reducedBackend) Assemble(int, []linalg.Coord) (linalg.Operator, error) {
	return nil, fmt.Errorf("rcnet: the reduced backend assembles through CompileReduced")
}

// CompileReduced assembles the network onto the reduced-order backend: a
// block-Arnoldi basis over the (G, C, B) system, backward-Euler steps as
// pre-factored dense solves of dimension Order, full-vector recovery every
// step. If the reduction cannot be built (non-SPD system, every column
// deflated), the network compiles onto the regular full backend instead and
// the fallback is counted in SolverStats; at run time, sampled residual
// checks against the exact matrix trip the same fallback automatically.
func (n *Network) CompileReduced(spec ReducedSpec) (*Solver, error) {
	s, err := n.compileReduced(spec)
	if err == nil {
		return s, nil
	}
	full, ferr := n.Compile()
	if ferr != nil {
		return nil, fmt.Errorf("rcnet: reduced compile failed (%v) and full fallback failed: %w", err, ferr)
	}
	full.stats.reducedFallbacks.Add(1)
	return full, nil
}

func (n *Network) compileReduced(spec ReducedSpec) (*Solver, error) {
	sz := n.N()
	if sz == 0 {
		return nil, fmt.Errorf("rcnet: empty network")
	}
	if err := n.checkGrounded(); err != nil {
		return nil, err
	}
	cols, err := n.inputColumns(spec.Inputs)
	if err != nil {
		return nil, err
	}
	order := spec.Order
	if order <= 0 {
		order = DefaultReducedOrder
	}
	g := linalg.NewCSR(sz, n.assemble())
	op, err := linalg.NewReducedOperator(g, n.cap, cols, order, spec.Shift)
	if err != nil {
		return nil, err
	}
	inv := make([]float64, sz)
	for i, c := range n.cap {
		inv[i] = 1 / c
	}
	amb := make([]float64, sz)
	for i, g := range n.ambG {
		amb[i] = g * n.ambient
	}
	gate := spec.ResidualGate
	if gate <= 0 {
		gate = DefaultReducedResidualGate
	}
	s := &Solver{
		net: n, backend: reducedBackend{}, op: op, invCap: inv, ambRHS: amb,
		beOps: make(map[float64]*beEntry), reduced: op, redGate: gate,
	}
	s.stats.factorizations.Add(1)
	return s, nil
}

// inputColumns builds the basis input block: one unit column per distinct
// power-input node (every node when inputs is nil) plus, when present, the
// constant ambient right-hand-side direction — steady states and warm
// starts then lie in the very first Krylov block.
func (n *Network) inputColumns(inputs []int) ([][]float64, error) {
	sz := n.N()
	var cols [][]float64
	if inputs == nil {
		cols = make([][]float64, 0, sz+1)
		for i := 0; i < sz; i++ {
			e := make([]float64, sz)
			e[i] = 1
			cols = append(cols, e)
		}
	} else {
		seen := make([]bool, sz)
		cols = make([][]float64, 0, len(inputs)+1)
		for _, i := range inputs {
			if i < 0 || i >= sz {
				return nil, fmt.Errorf("rcnet: reduced input node %d out of range [0,%d)", i, sz)
			}
			if seen[i] {
				continue
			}
			seen[i] = true
			e := make([]float64, sz)
			e[i] = 1
			cols = append(cols, e)
		}
	}
	amb := make([]float64, sz)
	nonzero := false
	for i, g := range n.ambG {
		if g > 0 {
			amb[i] = g * n.ambient
			nonzero = true
		}
	}
	if nonzero {
		cols = append(cols, amb)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("rcnet: reduced compile has no input columns")
	}
	return cols, nil
}

// baseOp returns the conductance operator current solves derive from: the
// reduced projection until the residual gate trips, the lazily-compiled
// full-backend operator afterwards.
func (s *Solver) baseOp() linalg.Operator {
	if s.reduced != nil && s.epoch.Load() != 0 {
		if op, err := s.fullOperator(); err == nil {
			return op
		}
	}
	return s.op
}

// fullOperator lazily assembles the full-backend conductance operator a
// tripped reduced solver falls back onto, applying Compile's auto-selection
// (dense for tiny networks, Cholesky with CG fallback above).
func (s *Solver) fullOperator() (linalg.Operator, error) {
	s.fullOnce.Do(func() {
		sz := s.net.N()
		entries := s.net.assemble()
		if sz <= DenseCutoff {
			s.fullOp, s.fullErr = linalg.DenseBackend{}.Assemble(sz, entries)
		} else {
			op, err := linalg.CholeskyBackend{MaxFillRatio: CholeskyMaxFill}.Assemble(sz, entries)
			if err != nil && (errors.Is(err, linalg.ErrCholeskyFill) || errors.Is(err, linalg.ErrNotSPD) || errors.Is(err, linalg.ErrNotSymmetric)) {
				op, err = linalg.SparseBackend{}.Assemble(sz, entries)
			}
			s.fullOp, s.fullErr = op, err
		}
		if s.fullErr == nil && !s.fullOp.Iterative() {
			s.stats.factorizations.Add(1)
		}
	})
	return s.fullOp, s.fullErr
}

// tripReduced switches the solver from the reduced projection onto the full
// backend: the backward-Euler factor cache is dropped (its entries were
// reduced projections) and the epoch is bumped so every live session
// refetches its operator on the next step. Idempotent; if the full backend
// itself cannot assemble, the solver stays on the reduced path rather than
// failing.
func (s *Solver) tripReduced() {
	if s.reduced == nil {
		return
	}
	if _, err := s.fullOperator(); err != nil {
		return
	}
	s.beMu.Lock()
	if s.epoch.Load() == 0 {
		s.beOps = make(map[float64]*beEntry)
		s.stats.reducedFallbacks.Add(1)
		s.epoch.Add(1)
	}
	s.beMu.Unlock()
}

// ReducedSession is a streaming per-user stepping context that keeps its
// thermal state in reduced coordinates: one backward-Euler step is an O(r²)
// dense recurrence ẑ ← Â⁻¹(b̂ + D̂ẑ), independent of the full node count.
// Full-space Session stepping through a reduced solver still pays O(n·r)
// per step to project and expand every vector; this session projects the
// power vector only when it changes (SetPower) and expands temperatures
// only on reads and on the sampled residual checks — the regime where model
// order reduction actually beats the sparse direct solve, n ≫ order.
//
// The recurrence is exact with respect to full-space reduced stepping once
// the state lies in span(V); Start projects the seed onto the basis, so
// seed the session from a steady state solved by the same reduced solver
// (already in span(V)) for bit-level agreement. Sampled steps verify the
// a-posteriori residual against the exact matrix exactly like Session
// stepping does; a tripped gate transparently switches the session (and the
// solver) onto the full backend, re-doing the offending step there. A
// ReducedSession must not be used from more than one goroutine at a time.
type ReducedSession struct {
	s  *Solver
	dt float64
	op *linalg.ReducedOperator // BE-shifted projection; nil once on the full path

	// Propagator-form recurrence state (DESIGN.md §10.4): one step is
	// znew = csrc + prop·z, a single r² matvec. prop = Â⁻¹D̂ is cached on
	// the shared operator; csrc = Â⁻¹Vᵀ(p + ambient) is recomputed only by
	// SetPower.
	prop          *linalg.Matrix
	csrc          []float64
	z, znew, bhat []float64 // reduced state, step scratch, projected source
	power         []float64 // full-space power behind bhat (residual checks, fallback)
	temp          []float64 // full-space scratch: pre-step state on sampled checks
	xnew          []float64 // full-space scratch: candidate state on sampled checks
	rhs, res      []float64 // exact-rhs and residual scratch for sampled checks
	capDt         []float64 // C/dt (sampled-check rhs term)
	ws            linalg.Workspace
	nsteps        uint64
	sampleMask    uint64 // residual check every sampleMask+1 steps (power of two)
	started       bool
	havePower     bool
	full          *Session // non-nil once tripped onto the full backend
}

// NewReducedSession creates a streaming context stepping at a fixed dt.
// Only solvers compiled through CompileReduced support it; a solver whose
// residual gate already tripped hands back a session that steps through the
// full backend from the start.
func (s *Solver) NewReducedSession(dt float64) (*ReducedSession, error) {
	if s.reduced == nil {
		return nil, fmt.Errorf("rcnet: solver was not compiled with CompileReduced")
	}
	if !(dt > 0) || math.IsInf(dt, 0) {
		return nil, fmt.Errorf("rcnet: invalid step %g", dt)
	}
	op, err := s.beOperatorCached(dt)
	if err != nil {
		return nil, err
	}
	n := s.net.N()
	rs := &ReducedSession{
		s: s, dt: dt,
		power: make([]float64, n), temp: make([]float64, n), capDt: make([]float64, n),
	}
	for i, c := range s.net.cap {
		rs.capDt[i] = c / dt
	}
	if red, ok := op.(*linalg.ReducedOperator); ok && s.epoch.Load() == 0 {
		prop, err := red.Propagator()
		if err != nil {
			return nil, err
		}
		r := red.Order()
		rs.op, rs.prop = red, prop
		rs.z, rs.znew, rs.bhat = make([]float64, r), make([]float64, r), make([]float64, r)
		rs.csrc = make([]float64, r)
		rs.xnew, rs.rhs, rs.res = make([]float64, n), make([]float64, n), make([]float64, n)
		// A sampled check costs two O(n·r) expansions against O(r²) steps in
		// between; stretch the cadence on large networks so its amortized
		// cost stays a small fraction of the matvec (first step always
		// checked, so a hopeless basis still trips immediately).
		cadence := uint64(64)
		for cadence < uint64(8*n/r) && cadence < 4096 {
			cadence *= 2
		}
		rs.sampleMask = cadence - 1
	} else {
		rs.full = s.NewSession()
	}
	return rs, nil
}

// Reduced reports whether the session is still stepping in reduced
// coordinates (false once tripped onto the full backend).
func (rs *ReducedSession) Reduced() bool { return rs.full == nil }

// Order returns the reduced dimension the session steps in, 0 on the full
// path.
func (rs *ReducedSession) Order() int {
	if rs.op == nil {
		return 0
	}
	return rs.op.Order()
}

// Start seeds the session's thermal state (Kelvin, full node vector). On
// the reduced path the seed is projected onto the basis: a seed already in
// span(V) — any state produced by this solver — is represented exactly.
func (rs *ReducedSession) Start(temp []float64) error {
	if len(temp) != rs.s.net.N() {
		return fmt.Errorf("rcnet: temperature vector length %d, want %d", len(temp), rs.s.net.N())
	}
	copy(rs.temp, temp)
	if rs.op != nil {
		rs.op.ReduceInto(temp, rs.z)
	}
	rs.started = true
	return nil
}

// SetPower installs the per-node power vector for subsequent steps,
// projecting it onto the basis once (O(n·r)). Call only when the power
// actually changes; Step is O(order²) in between.
func (rs *ReducedSession) SetPower(power []float64) error {
	if len(power) != rs.s.net.N() {
		return fmt.Errorf("rcnet: power vector length %d, want %d", len(power), rs.s.net.N())
	}
	copy(rs.power, power)
	if rs.op != nil {
		for i := range rs.rhs {
			rs.rhs[i] = power[i] + rs.s.ambRHS[i]
		}
		rs.op.ReduceInto(rs.rhs, rs.bhat)
		if err := rs.op.SolveReducedInto(rs.bhat, rs.csrc, &rs.ws); err != nil {
			return err
		}
	}
	rs.havePower = true
	return nil
}

// stepReduced advances z → znew through the propagator recurrence
// znew = csrc + P·z and swaps the state buffers: one r×r matvec, the whole
// per-step cost of the reduced path.
func (rs *ReducedSession) stepReduced() {
	r := len(rs.z)
	z, c := rs.z[:r], rs.csrc
	for a := 0; a < r; a++ {
		row := rs.prop.Row(a)[:r]
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+3 < r; j += 4 {
			s0 += row[j] * z[j]
			s1 += row[j+1] * z[j+1]
			s2 += row[j+2] * z[j+2]
			s3 += row[j+3] * z[j+3]
		}
		for ; j < r; j++ {
			s0 += row[j] * z[j]
		}
		rs.znew[a] = c[a] + (s0 + s1) + (s2 + s3)
	}
	rs.z, rs.znew = rs.znew, rs.z
}

// Step advances the state by one backward-Euler step of dt under the
// current power. The first step and periodically sampled ones (every 64
// steps on small networks, stretched up to every 4096 on large ones to keep
// the O(n·order) expansion amortized away) are verified against the exact
// matrix; a residual above the solver's gate trips the session onto the
// full backend and re-does the step there, so the returned trajectory never
// includes an unverified-and-rejected state.
func (rs *ReducedSession) Step() error {
	if !rs.started {
		return fmt.Errorf("rcnet: ReducedSession.Step before Start")
	}
	if !rs.havePower {
		return fmt.Errorf("rcnet: ReducedSession.Step before SetPower")
	}
	if rs.op != nil && rs.s.epoch.Load() != 0 {
		// Another session tripped the solver; follow it onto the full path.
		rs.op.ExpandInto(rs.z, rs.temp)
		rs.op, rs.full = nil, rs.s.NewSession()
	}
	if rs.full != nil {
		return rs.full.StepBE(rs.temp, rs.power, rs.dt)
	}
	st := &rs.s.stats
	sample := rs.nsteps&rs.sampleMask == 0
	rs.nsteps++
	if !sample {
		rs.stepReduced()
		st.directSteps.Add(1)
		st.reducedSteps.Add(1)
		return nil
	}
	// Sampled step: expand the pre-step state, build the exact backward-Euler
	// right-hand side, take the reduced step, and check the candidate against
	// the full matrix before committing it.
	rs.op.ExpandInto(rs.z, rs.temp)
	for i := range rs.rhs {
		rs.rhs[i] = rs.power[i] + rs.s.ambRHS[i] + rs.capDt[i]*rs.temp[i]
	}
	rs.stepReduced()
	rs.op.ExpandInto(rs.z, rs.xnew)
	if !rs.s.checkReducedResidual(rs.op, rs.rhs, rs.xnew, rs.res) {
		// Gate tripped: undo the swap so rs.temp (pre-step state) seeds the
		// full backend, then redo the step there and stay there.
		rs.z, rs.znew = rs.znew, rs.z
		rs.op, rs.full = nil, rs.s.NewSession()
		return rs.full.StepBE(rs.temp, rs.power, rs.dt)
	}
	st.directSteps.Add(1)
	st.reducedSteps.Add(1)
	return nil
}

// Temps writes the current full-space temperatures into dst (allocated when
// nil) and returns it. O(n·order) on the reduced path.
func (rs *ReducedSession) Temps(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, rs.s.net.N())
	}
	if rs.full != nil {
		copy(dst, rs.temp)
	} else {
		rs.op.ExpandInto(rs.z, dst)
	}
	return dst
}

// checkReducedResidual samples the a-posteriori quality of one reduced
// backward-Euler solve: the relative residual of x against the exact
// shifted matrix. A residual above the gate trips the fallback and reports
// false, telling the session to redo the step through the full backend.
func (s *Solver) checkReducedResidual(op *linalg.ReducedOperator, rhs, x, scratch []float64) bool {
	if op.RelativeResidual(rhs, x, scratch) <= s.redGate {
		return true
	}
	s.tripReduced()
	return false
}
