package rcnet

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"sort"
)

// Fingerprint returns a stable hex digest of the network's full physical
// content: ambient temperature, node names and capacitances, ambient
// conductances, and every pairwise conductance. Two networks with the same
// fingerprint assemble to bit-identical conductance systems, so the
// fingerprint is a safe cache key for compiled solvers. The digest is
// deterministic across processes and platforms (IEEE-754 bit patterns,
// sorted pair order).
func (n *Network) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	wf := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	ws := func(s string) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	ws("rcnet-v1")
	wf(n.ambient)
	binary.LittleEndian.PutUint64(buf[:], uint64(len(n.names)))
	h.Write(buf[:])
	for i, name := range n.names {
		ws(name)
		wf(n.cap[i])
		wf(n.ambG[i])
	}
	keys := make([][2]int, 0, len(n.pairs))
	for ij := range n.pairs {
		keys = append(keys, ij)
	}
	sort.Slice(keys, func(x, y int) bool {
		if keys[x][0] != keys[y][0] {
			return keys[x][0] < keys[y][0]
		}
		return keys[x][1] < keys[y][1]
	})
	for _, ij := range keys {
		binary.LittleEndian.PutUint64(buf[:], uint64(ij[0]))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(ij[1]))
		h.Write(buf[:])
		wf(n.pairs[ij])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Compiled returns the network's solver, compiling on first use and caching
// the result (including a compile error) for every later call. It is safe
// for concurrent use and is the compile-once building block behind
// model-cache layers. The network must not be mutated after the first call.
func (n *Network) Compiled() (*Solver, error) {
	n.compileOnce.Do(func() {
		n.compiled, n.compileErr = n.Compile()
	})
	return n.compiled, n.compileErr
}
