package rcnet

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/linalg"
)

// Benchmarks comparing the dense-LU and sparse-CG backends across network
// sizes (DESIGN.md §4.2). The networks are floorplan-shaped grids from the
// parity tests: ~5 nonzeros per row, silicon + stiff oil boundary nodes.
//
//	go test ./internal/rcnet -bench Backend -benchtime 2x
//
// The headline numbers (steady state at ≥1000 nodes) are recorded in
// CHANGES.md.

// benchSizes maps a label to grid dimensions; node count is 2·nx·ny.
var benchSizes = []struct {
	name   string
	nx, ny int
}{
	{"N=128", 8, 8},
	{"N=512", 16, 16},
	{"N=1058", 23, 23},
	{"N=2048", 32, 32},
}

// benchBackends lists the explicit backends plus "auto" (nil backend =
// whatever Compile selects — the row that tracks the production path's
// trajectory across PRs).
var benchBackends = []struct {
	name    string
	backend linalg.Backend
}{
	{"dense", linalg.DenseBackend{}},
	{"sparse", linalg.SparseBackend{}},
	{"cholesky", linalg.CholeskyBackend{}},
	{"auto", nil},
}

// benchCompile compiles onto the row's backend ("auto" = Compile).
func benchCompile(net *Network, backend linalg.Backend) (*Solver, error) {
	if backend == nil {
		return net.Compile()
	}
	return net.CompileWith(backend)
}

func BenchmarkBackendCompile(b *testing.B) {
	for _, sz := range benchSizes {
		net := gridNetwork(rand.New(rand.NewSource(1)), sz.nx, sz.ny)
		for _, bk := range benchBackends {
			b.Run(fmt.Sprintf("%s/%s", bk.name, sz.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := benchCompile(net, bk.backend); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBackendSteadyState measures the full time-to-answer for one
// steady state: assembly/factorization plus the solve. This is the cost a
// scenario server pays per new network configuration, and the headline
// dense-vs-sparse comparison: dense pays O(n³) to factor, sparse O(nnz) per
// CG iteration.
func BenchmarkBackendSteadyState(b *testing.B) {
	for _, sz := range benchSizes {
		rng := rand.New(rand.NewSource(2))
		net := gridNetwork(rng, sz.nx, sz.ny)
		p := randomPower(rng, net.N())
		for _, bk := range benchBackends {
			b.Run(fmt.Sprintf("%s/%s", bk.name, sz.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s, err := benchCompile(net, bk.backend)
					if err != nil {
						b.Fatal(err)
					}
					s.SteadyState(p)
				}
			})
		}
	}
}

// BenchmarkBackendSteadyStateSolveOnly measures repeated solves against one
// compiled solver (factorization amortized away): dense back-substitution is
// O(n²), sparse warm-started CG O(nnz·iters).
func BenchmarkBackendSteadyStateSolveOnly(b *testing.B) {
	for _, sz := range benchSizes {
		rng := rand.New(rand.NewSource(3))
		net := gridNetwork(rng, sz.nx, sz.ny)
		p := randomPower(rng, net.N())
		for _, bk := range benchBackends {
			s, err := benchCompile(net, bk.backend)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", bk.name, sz.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s.SteadyState(p)
				}
			})
		}
	}
}

// BenchmarkBackendTransientBE measures a 100-step fixed-dt backward-Euler
// transient (operator shift cached after the first step).
func BenchmarkBackendTransientBE(b *testing.B) {
	for _, sz := range benchSizes {
		rng := rand.New(rand.NewSource(4))
		net := gridNetwork(rng, sz.nx, sz.ny)
		p := randomPower(rng, net.N())
		for _, bk := range benchBackends {
			s, err := benchCompile(net, bk.backend)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", bk.name, sz.name), func(b *testing.B) {
				temp := s.AmbientVector()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := s.TransientBE(temp, p, 0.1, 1e-3); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTransientBatch measures trace replay throughput of the batched
// API at 1 worker vs all cores: 16 independent 100-step replays on a
// ~1000-node sparse-backed network.
func BenchmarkTransientBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	net := gridNetwork(rng, 23, 23)
	s, err := net.Compile()
	if err != nil {
		b.Fatal(err)
	}
	const jobs = 16
	powers := make([][]float64, jobs)
	for j := range powers {
		powers[j] = randomPower(rng, net.N())
	}
	mkJobs := func() []TraceJob {
		out := make([]TraceJob, jobs)
		for j := range out {
			p := powers[j]
			out[j] = TraceJob{
				Temp:        s.AmbientVector(),
				Schedule:    func(_ float64, dst []float64) { copy(dst, p) },
				Duration:    0.1,
				SampleEvery: 1e-3,
			}
		}
		return out
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.TransientBatch(mkJobs(), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
