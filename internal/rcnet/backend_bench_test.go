package rcnet

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/linalg"
)

// Benchmarks comparing the dense-LU and sparse-CG backends across network
// sizes (DESIGN.md §4.2). The networks are floorplan-shaped grids from the
// parity tests: ~5 nonzeros per row, silicon + stiff oil boundary nodes.
//
//	go test ./internal/rcnet -bench Backend -benchtime 2x
//
// The headline numbers (steady state at ≥1000 nodes) are recorded in
// CHANGES.md.

// benchSizes maps a label to grid dimensions; node count is 2·nx·ny. The
// big sizes are the reference-grid scale the AMD ordering unlocked for the
// direct backend (PR 4's dense-bitset minimum degree was capped at 4096
// unknowns); dense rows are excluded there — an O(n²) matrix would need
// 2-34 GB — as is the CG row at N=65536 (minutes per steady solve).
var benchSizes = []struct {
	name   string
	nx, ny int
	big    bool
}{
	{"N=128", 8, 8, false},
	{"N=512", 16, 16, false},
	{"N=1058", 23, 23, false},
	{"N=2048", 32, 32, false},
	{"N=16384", 64, 128, true},
	{"N=65536", 128, 256, true},
}

// benchBackends lists the explicit backends plus "auto" (nil backend =
// whatever Compile selects — the row that tracks the production path's
// trajectory across PRs).
var benchBackends = []struct {
	name    string
	backend linalg.Backend
}{
	{"dense", linalg.DenseBackend{}},
	{"sparse", linalg.SparseBackend{}},
	{"cholesky", linalg.CholeskyBackend{}},
	{"auto", nil},
}

// benchSkip reports backend rows excluded at a size (see benchSizes).
func benchSkip(szBig bool, n int, backend string) bool {
	if !szBig {
		return false
	}
	if backend == "dense" {
		return true
	}
	return backend == "sparse" && n > 20000
}

// benchCompile compiles onto the row's backend ("auto" = Compile).
func benchCompile(net *Network, backend linalg.Backend) (*Solver, error) {
	if backend == nil {
		return net.Compile()
	}
	return net.CompileWith(backend)
}

func BenchmarkBackendCompile(b *testing.B) {
	for _, sz := range benchSizes {
		net := gridNetwork(rand.New(rand.NewSource(1)), sz.nx, sz.ny)
		for _, bk := range benchBackends {
			if benchSkip(sz.big, net.N(), bk.name) {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", bk.name, sz.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := benchCompile(net, bk.backend); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkBackendSteadyState measures the full time-to-answer for one
// steady state: assembly/factorization plus the solve. This is the cost a
// scenario server pays per new network configuration, and the headline
// dense-vs-sparse comparison: dense pays O(n³) to factor, sparse O(nnz) per
// CG iteration.
func BenchmarkBackendSteadyState(b *testing.B) {
	for _, sz := range benchSizes {
		rng := rand.New(rand.NewSource(2))
		net := gridNetwork(rng, sz.nx, sz.ny)
		p := randomPower(rng, net.N())
		for _, bk := range benchBackends {
			if benchSkip(sz.big, net.N(), bk.name) {
				continue
			}
			b.Run(fmt.Sprintf("%s/%s", bk.name, sz.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s, err := benchCompile(net, bk.backend)
					if err != nil {
						b.Fatal(err)
					}
					s.SteadyState(p)
				}
			})
		}
	}
}

// BenchmarkBackendSteadyStateSolveOnly measures repeated solves against one
// compiled solver (factorization amortized away): dense back-substitution is
// O(n²), sparse warm-started CG O(nnz·iters).
func BenchmarkBackendSteadyStateSolveOnly(b *testing.B) {
	for _, sz := range benchSizes {
		rng := rand.New(rand.NewSource(3))
		net := gridNetwork(rng, sz.nx, sz.ny)
		p := randomPower(rng, net.N())
		for _, bk := range benchBackends {
			if benchSkip(sz.big, net.N(), bk.name) {
				continue
			}
			s, err := benchCompile(net, bk.backend)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", bk.name, sz.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					s.SteadyState(p)
				}
			})
		}
	}
}

// BenchmarkBackendTransientBE measures a 100-step fixed-dt backward-Euler
// transient (operator shift cached after the first step).
func BenchmarkBackendTransientBE(b *testing.B) {
	for _, sz := range benchSizes {
		rng := rand.New(rand.NewSource(4))
		net := gridNetwork(rng, sz.nx, sz.ny)
		p := randomPower(rng, net.N())
		for _, bk := range benchBackends {
			if benchSkip(sz.big, net.N(), bk.name) {
				continue
			}
			s, err := benchCompile(net, bk.backend)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", bk.name, sz.name), func(b *testing.B) {
				temp := s.AmbientVector()
				// Warm the (C/dt + A) factor: the row measures cached-factor
				// stepping, not the once-per-dt factorization.
				if err := s.TransientBE(temp, p, 1e-3, 1e-3); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := s.TransientBE(temp, p, 0.1, 1e-3); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTransientBatch measures trace replay throughput of the batched
// API at 1 worker vs all cores: 16 independent 100-step replays on a
// ~1000-node sparse-backed network.
func BenchmarkTransientBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	net := gridNetwork(rng, 23, 23)
	s, err := net.Compile()
	if err != nil {
		b.Fatal(err)
	}
	const jobs = 16
	powers := make([][]float64, jobs)
	for j := range powers {
		powers[j] = randomPower(rng, net.N())
	}
	mkJobs := func() []TraceJob {
		out := make([]TraceJob, jobs)
		for j := range out {
			p := powers[j]
			out[j] = TraceJob{
				Temp:        s.AmbientVector(),
				Schedule:    func(_ float64, dst []float64) { copy(dst, p) },
				Duration:    0.1,
				SampleEvery: 1e-3,
			}
		}
		return out
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.TransientBatch(mkJobs(), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBackendReducedStream measures one streaming backward-Euler step
// of a ReducedSession on few-input grids — the per-user serving regime
// model-order reduction exists for: a handful of power-input nodes on a
// large network, state kept in reduced coordinates, each step one order²
// matvec independent of N. Compare against the cholesky/auto rows of
// BenchmarkBackendTransientBE (full-space stepping, O(factor nnz) per
// step): the reduced step is flat across sizes while the sparse step grows
// with N. The order metric reports the realized basis size after deflation.
func BenchmarkBackendReducedStream(b *testing.B) {
	for _, sz := range benchSizes {
		if sz.nx*sz.ny*2 > 20000 {
			// Basis construction at N=65536 pays minutes of Arnoldi sweeps;
			// the scaling story is already visible at N=16384.
			continue
		}
		rng := rand.New(rand.NewSource(6))
		net := gridNetwork(rng, sz.nx, sz.ny)
		n := net.N()
		const nin = 12
		inputs := make([]int, nin)
		for i := range inputs {
			inputs[i] = i * n / nin
		}
		s, err := net.CompileReduced(ReducedSpec{Inputs: inputs, Order: 104})
		if err != nil {
			b.Fatal(err)
		}
		if s.Backend() != "reduced" {
			b.Fatalf("backend %q at %s, want reduced", s.Backend(), sz.name)
		}
		power := make([]float64, n)
		for _, i := range inputs {
			power[i] = 1 + rng.Float64()
		}
		b.Run(sz.name, func(b *testing.B) {
			rs, err := s.NewReducedSession(1e-3)
			if err != nil {
				b.Fatal(err)
			}
			if err := rs.Start(s.SteadyState(power)); err != nil {
				b.Fatal(err)
			}
			scaled := make([]float64, n)
			for i, p := range power {
				scaled[i] = 1.3 * p
			}
			if err := rs.SetPower(scaled); err != nil {
				b.Fatal(err)
			}
			// Take the first step before the timer: it always runs the
			// O(n·order) sampled exactness check, which at short benchtimes
			// would swamp the steady-state matvec the row measures (the
			// TransientBE rows warm their factor for the same reason).
			if err := rs.Step(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rs.Step(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if !rs.Reduced() {
				b.Fatal("session tripped onto the full backend mid-benchmark")
			}
			b.ReportMetric(float64(rs.Order()), "order")
		})
	}
}
