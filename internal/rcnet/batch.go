package rcnet

import (
	"fmt"
	"math"
	"time"

	"repro/internal/linalg"
	"repro/internal/pool"
)

// This file holds the batched stepping layer: a BatchSession advances K
// independent temperature states through one backward-Euler step with a
// single factor traversal (linalg.Operator.SolveBatch), and the lockstep
// replay engine drives K same-window trace jobs through shared steps. This
// is how TransientBatch (and, one layer up, hotspot sweeps and the scenario
// grid) stop paying the factor's full memory traffic once per job per step.

// MaxBatchWidth caps how many right-hand sides one lockstep group solves per
// factor traversal. The packed block costs n·K floats of workspace; with the
// PR 6 register-blocked solve kernels a 64-wide group decomposes into four
// 16-wide kernel passes, amortizing panel loads to noise while a 2048-node
// model's block still fits in L2. Groups wider than this split — per-job
// results are unaffected (batching never changes per-column arithmetic).
const MaxBatchWidth = 64

// BatchSession is a K-wide backward-Euler stepping context over one
// compiled Solver: one solve workspace, one cached (C/dt + A) operator, and
// K right-hand-side slots stepped together. Like Session, a BatchSession
// must not be used from more than one goroutine at a time; any number of
// BatchSessions may run concurrently against the same Solver.
type BatchSession struct {
	s      *Solver
	ws     linalg.Workspace
	rhs    [][]float64 // per-slot right-hand sides
	sol    [][]float64 // per-slot iterative-solve scratch
	bview  [][]float64 // compacted active-slot views (reused)
	xview  [][]float64
	capDt  []float64
	step   float64
	op     linalg.Operator
	iter   bool
	nsteps uint64 // batched solves taken; drives the 1-in-8 latency sampling

	// Reduced-path state, mirroring session: see rcnet.go.
	red   *linalg.ReducedOperator
	epoch uint32
	res   []float64
}

// NewBatchSession creates a K-wide stepping context. Safe to call
// concurrently.
func (s *Solver) NewBatchSession(width int) *BatchSession {
	if width < 1 {
		width = 1
	}
	n := s.net.N()
	bs := &BatchSession{
		s:     s,
		rhs:   make([][]float64, width),
		sol:   make([][]float64, width),
		bview: make([][]float64, 0, width),
		xview: make([][]float64, 0, width),
		capDt: make([]float64, n),
	}
	for k := range bs.rhs {
		bs.rhs[k] = make([]float64, n)
		bs.sol[k] = make([]float64, n)
	}
	return bs
}

// Width returns the number of slots.
func (bs *BatchSession) Width() int { return len(bs.rhs) }

// StepBE advances up to Width temperature states (in place) by one
// backward-Euler step of size dt under per-slot constant power. Slots with a
// nil temperature vector are skipped — that is how lockstep callers drop
// jobs that already failed or finished. Per-slot solve failures (possible
// only on the iterative backend) land in errs; the returned error reports
// batch-level failures (bad dt, slot shape, operator factorization) that
// apply to every slot. Per-slot results are bit-identical to stepping each
// slot through its own Session: the batched solve never changes per-column
// arithmetic.
func (bs *BatchSession) StepBE(temps, powers [][]float64, dt float64, errs []error) error {
	if !(dt > 0) || math.IsInf(dt, 0) {
		return fmt.Errorf("rcnet: invalid step %g", dt)
	}
	kk := len(temps)
	if len(powers) != kk || len(errs) != kk || kk > len(bs.rhs) {
		return fmt.Errorf("rcnet: batch step shape: %d temps, %d powers, %d errs, width %d",
			kk, len(powers), len(errs), len(bs.rhs))
	}
	s := bs.s
	n := s.net.N()
	for k := 0; k < kk; k++ {
		if temps[k] == nil {
			continue
		}
		if len(temps[k]) != n || len(powers[k]) != n {
			return fmt.Errorf("rcnet: batch slot %d: temperature/power length %d/%d, want %d",
				k, len(temps[k]), len(powers[k]), n)
		}
	}
	if bs.op == nil || bs.step != dt || (s.reduced != nil && bs.epoch != s.epoch.Load()) {
		op, err := s.beOperatorCached(dt)
		if err != nil {
			return err
		}
		bs.op, bs.step, bs.iter = op, dt, op.Iterative()
		for i, c := range s.net.cap {
			bs.capDt[i] = c / dt
		}
		bs.red, _ = op.(*linalg.ReducedOperator)
		if s.reduced != nil {
			bs.epoch = s.epoch.Load()
			if bs.red != nil && bs.res == nil {
				bs.res = make([]float64, n)
			}
		}
	}
	ambRHS, capDt := s.ambRHS, bs.capDt
	width := 0
	for k := 0; k < kk; k++ {
		if temps[k] == nil {
			continue
		}
		rhs := bs.rhs[k]
		temp, power := temps[k], powers[k]
		for i := range rhs {
			rhs[i] = power[i] + ambRHS[i] + capDt[i]*temp[i]
		}
		width++
	}
	if width == 0 {
		return nil
	}
	st := &s.stats
	st.recordBatchWidth(width)
	sample := bs.nsteps&7 == 0
	bs.nsteps++
	var start time.Time
	if sample {
		start = time.Now()
	}
	if bs.iter {
		// Iterative solves run per column (each has its own Krylov
		// sequence), land in slot scratch and update the state only on
		// success, so a stalled column fails its own slot.
		for k := 0; k < kk; k++ {
			if temps[k] == nil {
				continue
			}
			if _, err := bs.op.Solve(bs.rhs[k], temps[k], bs.sol[k], &bs.ws); err != nil {
				errs[k] = fmt.Errorf("rcnet: backward Euler solve: %w", err)
				continue
			}
			st.cgSteps.Add(1)
			st.cgIterations.Add(int64(bs.ws.LastIterations))
			copy(temps[k], bs.sol[k])
		}
		if sample {
			st.stepSolveNanos.Add(8 * int64(time.Since(start)))
		}
		return nil
	}
	if bs.red != nil {
		// Reduced path: per-column solves into slot scratch (there is no
		// factor traversal to amortize), with a sampled residual check on
		// the first live slot before any caller state changes.
		for k := 0; k < kk; k++ {
			if temps[k] == nil {
				continue
			}
			if _, err := bs.op.Solve(bs.rhs[k], nil, bs.sol[k], &bs.ws); err != nil {
				return fmt.Errorf("rcnet: backward Euler batch solve: %w", err)
			}
		}
		if sample {
			st.stepSolveNanos.Add(8 * int64(time.Since(start)))
			for k := 0; k < kk; k++ {
				if temps[k] == nil {
					continue
				}
				if !s.checkReducedResidual(bs.red, bs.rhs[k], bs.sol[k], bs.res) {
					// Gate tripped: redo the whole batch step through the
					// full backend (no temp has been written yet).
					bs.op = nil
					return bs.StepBE(temps, powers, dt, errs)
				}
				break
			}
		}
		for k := 0; k < kk; k++ {
			if temps[k] != nil {
				copy(temps[k], bs.sol[k])
			}
		}
		st.directSteps.Add(int64(width))
		st.reducedSteps.Add(int64(width))
		return nil
	}
	// Direct path: one factor traversal for every active slot. Direct
	// solves cannot fail after factorization and write the state only in
	// their final scatter, so they target the temperature vectors in place.
	bs.bview = bs.bview[:0]
	bs.xview = bs.xview[:0]
	for k := 0; k < kk; k++ {
		if temps[k] == nil {
			continue
		}
		bs.bview = append(bs.bview, bs.rhs[k])
		bs.xview = append(bs.xview, temps[k])
	}
	if _, err := bs.op.SolveBatch(bs.bview, nil, bs.xview, &bs.ws); err != nil {
		return fmt.Errorf("rcnet: backward Euler batch solve: %w", err)
	}
	if sample {
		st.stepSolveNanos.Add(8 * int64(time.Since(start)))
	}
	st.directSteps.Add(int64(width))
	st.absorbKernels(&bs.ws)
	return nil
}

// TransientBatch replays N independent power schedules against one compiled
// network: jobs are split round-robin into per-worker chunks (workers ≤ 0
// uses GOMAXPROCS), and each worker groups its chunk by replay window and
// advances every group in lockstep, solving up to MaxBatchWidth right-hand
// sides per factor traversal. Per-job results are bit-identical at any
// worker count — the batched solve never changes per-column arithmetic, so
// chunking and grouping only affect memory traffic. Results are indexed
// like jobs; malformed jobs are rejected up front with descriptive errors
// and a panicking schedule fails only its own job. The first job error (by
// job order) is returned after all jobs finish.
func (s *Solver) TransientBatch(jobs []TraceJob, workers int) ([][]Sample, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	results := make([][]Sample, len(jobs))
	errs := make([]error, len(jobs))
	valid := make([]int, 0, len(jobs))
	for j, job := range jobs {
		if errs[j] = s.validateTraceJob(job); errs[j] == nil {
			valid = append(valid, j)
		}
	}
	pool.RunChunked(valid, workers, func(chunk []int) {
		s.replayChunk(jobs, chunk, results, errs)
	})
	for j, err := range errs {
		if err != nil {
			return results, fmt.Errorf("rcnet: batch job %d: %w", j, err)
		}
	}
	return results, nil
}

// replayChunk groups one worker's jobs by replay window (jobs sharing a
// window share a step sequence) and locksteps each group, splitting past
// MaxBatchWidth. Group composition is deterministic: windows appear in
// first-seen order of the chunk, jobs stay in index order.
func (s *Solver) replayChunk(jobs []TraceJob, idx []int, results [][]Sample, errs []error) {
	type window struct{ duration, sampleEvery float64 }
	var order []window
	groups := make(map[window][]int)
	for _, j := range idx {
		w := window{jobs[j].Duration, jobs[j].SampleEvery}
		if _, ok := groups[w]; !ok {
			order = append(order, w)
		}
		groups[w] = append(groups[w], j)
	}
	for _, w := range order {
		g := groups[w]
		for off := 0; off < len(g); off += MaxBatchWidth {
			end := off + MaxBatchWidth
			if end > len(g) {
				end = len(g)
			}
			s.runLockstep(jobs, g[off:end], results, errs)
		}
	}
}

// ReplayLockstep replays same-window trace jobs in lockstep on the calling
// goroutine: all jobs must share Duration and SampleEvery (that is what
// makes their step sequences identical), and each step solves every live
// job's right-hand side in one factor traversal. Results and errors are
// indexed like jobs; a job that fails (schedule panic, solve stall) drops
// out of the batch while the rest keep stepping. Per-job results are
// bit-identical to TransientTrace. Groups wider than MaxBatchWidth are
// split internally.
func (s *Solver) ReplayLockstep(jobs []TraceJob) ([][]Sample, []error) {
	results := make([][]Sample, len(jobs))
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return results, errs
	}
	idx := make([]int, 0, len(jobs))
	for j, job := range jobs {
		if errs[j] = s.validateTraceJob(job); errs[j] == nil {
			idx = append(idx, j)
		}
	}
	for j := 1; j < len(idx); j++ {
		a, b := jobs[idx[0]], jobs[idx[j]]
		if a.Duration != b.Duration || a.SampleEvery != b.SampleEvery {
			errs[idx[j]] = fmt.Errorf("lockstep window mismatch: job has duration=%g sample=%g, group runs duration=%g sample=%g",
				b.Duration, b.SampleEvery, a.Duration, a.SampleEvery)
		}
	}
	live := idx[:0]
	for _, j := range idx {
		if errs[j] == nil {
			live = append(live, j)
		}
	}
	for off := 0; off < len(live); off += MaxBatchWidth {
		end := off + MaxBatchWidth
		if end > len(live) {
			end = len(live)
		}
		s.runLockstep(jobs, live[off:end], results, errs)
	}
	return results, errs
}

// stepCount replays the stepping loop's arithmetic to size the recording
// buffers: the number of backward-Euler steps a (duration, sampleEvery)
// window takes, final shortened step included.
func stepCount(duration, sampleEvery float64) int {
	steps := 0
	t := 0.0
	for t < duration-1e-12*duration {
		step := sampleEvery
		if step > duration-t {
			step = duration - t
		}
		t += step
		steps++
	}
	return steps
}

// runLockstep advances one ≤MaxBatchWidth group of validated same-window
// jobs. Sample storage is flat-allocated per job (one backing array holds
// every sample vector), so recording performs no per-step allocation.
func (s *Solver) runLockstep(jobs []TraceJob, idx []int, results [][]Sample, errs []error) {
	n := s.net.N()
	kk := len(idx)
	duration := jobs[idx[0]].Duration
	sampleEvery := jobs[idx[0]].SampleEvery
	steps := stepCount(duration, sampleEvery)

	bs := s.NewBatchSession(kk)
	temps := make([][]float64, kk)
	powers := make([][]float64, kk)
	serrs := make([]error, kk)
	flats := make([][]float64, kk)
	for k, j := range idx {
		temps[k] = jobs[j].Temp
		powers[k] = make([]float64, n)
		flats[k] = make([]float64, (steps+1)*n)
		results[j] = make([]Sample, 0, steps+1)
	}
	record := func(k, j int, t float64) {
		i := len(results[j])
		cp := flats[k][i*n : (i+1)*n]
		copy(cp, temps[k])
		results[j] = append(results[j], Sample{Time: t, Temp: cp})
	}
	fail := func(k, j int, err error) {
		errs[j] = err
		results[j] = nil
		temps[k] = nil
	}
	for k, j := range idx {
		record(k, j, 0)
	}
	// schedule fills one job's power for the interval at t; a panicking
	// schedule (e.g. one indexing an empty trace) fails its own job only.
	schedule := func(k, j int, t float64) {
		defer func() {
			if r := recover(); r != nil {
				fail(k, j, fmt.Errorf("job panicked: %v", r))
			}
		}()
		jobs[j].Schedule(t, powers[k])
	}
	t := 0.0
	for t < duration-1e-12*duration {
		step := sampleEvery
		if step > duration-t {
			step = duration - t
		}
		live := 0
		for k, j := range idx {
			if temps[k] == nil {
				continue
			}
			schedule(k, j, t)
			if temps[k] != nil {
				live++
			}
		}
		if live == 0 {
			return
		}
		if err := bs.StepBE(temps, powers, step, serrs); err != nil {
			// Batch-level failure (operator factorization): every live job
			// fails the same way a serial step would have.
			for k, j := range idx {
				if temps[k] != nil {
					fail(k, j, err)
				}
			}
			return
		}
		t += step
		for k, j := range idx {
			if temps[k] == nil {
				continue
			}
			if serrs[k] != nil {
				fail(k, j, serrs[k])
				serrs[k] = nil
				continue
			}
			record(k, j, t)
		}
	}
}
