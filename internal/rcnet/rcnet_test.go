package rcnet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// singleRC builds the simplest network: one node, R to ambient, capacitance C.
func singleRC(ambient, r, c float64) (*Network, int) {
	n := New(ambient)
	i := n.AddNode("die", c)
	n.ConnectAmbientR(i, r)
	return n, i
}

func TestSteadyStateSingleRC(t *testing.T) {
	// T = T_amb + P·R.
	n, i := singleRC(300, 2.0, 1.0)
	s, err := n.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, n.N())
	p[i] = 10
	temp := s.SteadyState(p)
	if math.Abs(temp[i]-320) > 1e-9 {
		t.Fatalf("T = %g, want 320", temp[i])
	}
}

func TestTransientSingleRCAnalytic(t *testing.T) {
	// Step response: T(t) = T_amb + P·R·(1 − exp(−t/RC)).
	r, c, p0 := 1.5, 2.0, 8.0
	n, i := singleRC(300, r, c)
	s, _ := n.Compile()
	p := []float64{p0}
	temp := s.AmbientVector()
	tau := r * c
	if _, err := s.Transient(temp, p, tau, TransientOptions{AbsTol: 1e-8}); err != nil {
		t.Fatal(err)
	}
	want := 300 + p0*r*(1-math.Exp(-1))
	if math.Abs(temp[i]-want) > 1e-5 {
		t.Fatalf("T(τ) = %g, want %g", temp[i], want)
	}
}

func TestBackwardEulerMatchesAnalytic(t *testing.T) {
	r, c, p0 := 1.0, 1.0, 5.0
	n, i := singleRC(300, r, c)
	s, _ := n.Compile()
	temp := s.AmbientVector()
	if err := s.TransientBE(temp, []float64{p0}, 3.0, 1e-4); err != nil {
		t.Fatal(err)
	}
	want := 300 + p0*(1-math.Exp(-3))
	if math.Abs(temp[i]-want) > 1e-3 {
		t.Fatalf("BE T = %g, want %g", temp[i], want)
	}
}

func TestBEStableOnStiffNetwork(t *testing.T) {
	// Tiny capacitance node coupled to a huge one: explicit methods need
	// microscopic steps, backward Euler must stay stable with big ones.
	n := New(300)
	small := n.AddNode("oil", 1e-4)
	big := n.AddNode("sink", 100)
	n.ConnectR(small, big, 0.01)
	n.ConnectAmbientR(big, 1.0)
	s, _ := n.Compile()
	temp := s.AmbientVector()
	p := make([]float64, 2)
	p[small] = 10
	if err := s.TransientBE(temp, p, 10, 0.5); err != nil {
		t.Fatal(err)
	}
	// No oscillation blow-up; temperatures remain physical.
	ss := s.SteadyState(p)
	for i := range temp {
		if temp[i] < 299 || temp[i] > ss[i]+1 {
			t.Fatalf("BE unstable: T[%d]=%g (steady %g)", i, temp[i], ss[i])
		}
	}
}

func TestTwoNodeLadderSteady(t *testing.T) {
	// die —R1— sink —R2— ambient with power at die:
	// T_die = T_amb + P(R1+R2), T_sink = T_amb + P·R2.
	n := New(318.15)
	die := n.AddNode("die", 0.35)
	sink := n.AddNode("sink", 88)
	n.ConnectR(die, sink, 0.05)
	n.ConnectAmbientR(sink, 0.3)
	s, _ := n.Compile()
	p := []float64{40, 0}
	temp := s.SteadyState(p)
	if math.Abs(temp[die]-(318.15+40*0.35)) > 1e-9 {
		t.Fatalf("T_die = %g", temp[die])
	}
	if math.Abs(temp[sink]-(318.15+40*0.3)) > 1e-9 {
		t.Fatalf("T_sink = %g", temp[sink])
	}
}

func TestFloatingIslandRejected(t *testing.T) {
	n := New(300)
	n.AddNode("a", 1)
	b := n.AddNode("b", 1)
	n.ConnectAmbientR(b, 1)
	// "a" has no connection at all → singular conductance matrix.
	if _, err := n.Compile(); err == nil {
		t.Fatal("expected floating-island error")
	}
}

func TestEnergyConservationSteady(t *testing.T) {
	// At steady state, total heat flow to ambient equals injected power.
	rng := rand.New(rand.NewSource(3))
	n := New(300)
	const sz = 12
	for i := 0; i < sz; i++ {
		n.AddNode(string(rune('a'+i)), 0.1+rng.Float64())
	}
	for i := 1; i < sz; i++ {
		n.ConnectR(i-1, i, 0.1+rng.Float64())
	}
	n.ConnectAmbientR(0, 0.5)
	n.ConnectAmbientR(sz-1, 0.7)
	s, err := n.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p := make([]float64, sz)
	var total float64
	for i := range p {
		p[i] = rng.Float64() * 5
		total += p[i]
	}
	temp := s.SteadyState(p)
	var out float64
	for _, q := range s.HeatFlowToAmbient(temp) {
		out += q
	}
	if math.Abs(out-total) > 1e-8*total {
		t.Fatalf("energy not conserved: in %g, out %g", total, out)
	}
}

func TestDominantTimeConstantSingleRC(t *testing.T) {
	n, _ := singleRC(300, 2.5, 4.0)
	s, _ := n.Compile()
	tau := s.DominantTimeConstant()
	if math.Abs(tau-10) > 1e-6 {
		t.Fatalf("τ = %g, want 10", tau)
	}
}

func TestDominantTimeConstantLadder(t *testing.T) {
	// Paper Fig. 7(a): with C_sink ≫ C_si the slow constant approaches
	// R_conv·C_sink.
	n := New(300)
	die := n.AddNode("die", 0.35)
	sink := n.AddNode("sink", 88.0)
	n.ConnectR(die, sink, 0.0125)
	n.ConnectAmbientR(sink, 1.0)
	s, _ := n.Compile()
	tau := s.DominantTimeConstant()
	if math.Abs(tau-88.0)/88.0 > 0.05 {
		t.Fatalf("τ = %g, want ≈ R_conv·C_sink = 88 s", tau)
	}
}

func TestTransientTraceRecordsSamples(t *testing.T) {
	n, i := singleRC(300, 1, 1)
	s, _ := n.Compile()
	temp := s.AmbientVector()
	// Pulse train: on for the first half, off after.
	samples, err := s.TransientTrace(temp, func(tm float64, p []float64) {
		if tm < 0.5 {
			p[i] = 4
		} else {
			p[i] = 0
		}
	}, 1.0, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 21 {
		t.Fatalf("got %d samples, want 21", len(samples))
	}
	if samples[0].Time != 0 || math.Abs(samples[20].Time-1.0) > 1e-12 {
		t.Fatalf("sample times wrong: %g .. %g", samples[0].Time, samples[20].Time)
	}
	// Peak at the power-off point, then decay.
	peak := samples[10].Temp[i]
	if peak <= samples[5].Temp[i] || samples[20].Temp[i] >= peak {
		t.Fatal("pulse response shape wrong")
	}
}

func TestConnectAccumulates(t *testing.T) {
	// Two parallel 2 K/W resistances = 1 K/W.
	n := New(300)
	a := n.AddNode("a", 1)
	b := n.AddNode("b", 1)
	n.ConnectR(a, b, 2)
	n.ConnectR(a, b, 2)
	n.ConnectAmbientR(b, 1e9) // weak tie to ground for solvability
	s, _ := n.Compile()
	// Check assembled conductance via steady state with power balance:
	// inject P at a, extract nothing; T_a - T_b = P·R_parallel.
	p := []float64{1, 0}
	temp := s.SteadyState(p)
	if math.Abs((temp[a]-temp[b])-1.0) > 1e-6 {
		t.Fatalf("parallel resistance wrong: ΔT = %g", temp[a]-temp[b])
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	n := New(300)
	a := n.AddNode("a", 1)
	for _, f := range []func(){
		func() { n.AddNode("a", 1) },       // duplicate
		func() { n.AddNode("b", 0) },       // zero capacitance
		func() { n.Connect(a, a, 1) },      // self loop
		func() { n.ConnectR(a, a, 0) },     // zero resistance
		func() { n.ConnectAmbient(a, -1) }, // negative conductance
		func() { n.ConnectAmbient(99, 1) }, // bad index
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: steady-state temperatures are always ≥ ambient for non-negative
// power (maximum principle for the discrete Laplacian), and monotone in
// power.
func TestSteadyStateMaximumPrinciple(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := New(300)
		sz := 3 + rng.Intn(10)
		for i := 0; i < sz; i++ {
			n.AddNode(string(rune('A'+i)), 0.1+rng.Float64())
		}
		// Random spanning connections to keep it connected.
		for i := 1; i < sz; i++ {
			n.ConnectR(rng.Intn(i), i, 0.05+rng.Float64())
		}
		n.ConnectAmbientR(rng.Intn(sz), 0.2+rng.Float64())
		s, err := n.Compile()
		if err != nil {
			return false
		}
		p := make([]float64, sz)
		for i := range p {
			p[i] = rng.Float64() * 10
		}
		temp := s.SteadyState(p)
		for _, v := range temp {
			if v < 300-1e-9 {
				return false
			}
		}
		// Doubling power doubles the rise above ambient (linearity).
		p2 := make([]float64, sz)
		for i := range p {
			p2[i] = 2 * p[i]
		}
		temp2 := s.SteadyState(p2)
		for i := range temp {
			if math.Abs((temp2[i]-300)-2*(temp[i]-300)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: transient solutions converge to the steady state.
func TestTransientConvergesToSteady(t *testing.T) {
	n := New(310)
	a := n.AddNode("a", 0.5)
	b := n.AddNode("b", 2.0)
	n.ConnectR(a, b, 0.4)
	n.ConnectAmbientR(b, 0.6)
	s, _ := n.Compile()
	p := []float64{7, 1}
	want := s.SteadyState(p)
	temp := s.AmbientVector()
	if err := s.TransientBE(temp, p, 100, 0.01); err != nil {
		t.Fatal(err)
	}
	for i := range temp {
		if math.Abs(temp[i]-want[i]) > 1e-4 {
			t.Fatalf("node %d: transient %g vs steady %g", i, temp[i], want[i])
		}
	}
}

func TestRK4AgreesWithBE(t *testing.T) {
	n := New(300)
	a := n.AddNode("a", 0.3)
	b := n.AddNode("b", 1.1)
	n.ConnectR(a, b, 0.5)
	n.ConnectAmbientR(b, 0.8)
	s, _ := n.Compile()
	p := []float64{5, 0}
	t1 := s.AmbientVector()
	t2 := s.AmbientVector()
	if _, err := s.Transient(t1, p, 0.7, TransientOptions{AbsTol: 1e-9}); err != nil {
		t.Fatal(err)
	}
	if err := s.TransientBE(t2, p, 0.7, 1e-5); err != nil {
		t.Fatal(err)
	}
	for i := range t1 {
		if math.Abs(t1[i]-t2[i]) > 5e-3 {
			t.Fatalf("integrators disagree at %d: %g vs %g", i, t1[i], t2[i])
		}
	}
	_ = a
	_ = b
}

// TestTransientMaxStepCapsSteps: TransientOptions.MaxStep is a step-size cap
// (the regression: it used to seed the initial step instead, letting the
// controller grow past it).
func TestTransientMaxStepCapsSteps(t *testing.T) {
	n, i := singleRC(300, 1.0, 1.0)
	s, _ := n.Compile()
	p := make([]float64, n.N())
	p[i] = 2
	temp := s.AmbientVector()
	st, err := s.Transient(temp, p, 2.0, TransientOptions{AbsTol: 10, MaxStep: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if st.LastStep > 0.1+1e-12 {
		t.Fatalf("last step %g exceeds MaxStep", st.LastStep)
	}
	if st.Accepted < 20 {
		t.Fatalf("accepted %d steps, want ≥ 20 for duration 2 s at MaxStep 0.1", st.Accepted)
	}
}
