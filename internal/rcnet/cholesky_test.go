package rcnet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// Tests for the sparse direct Cholesky path at the network level: parity
// against the dense LU oracle and the CG backend on random floorplan-shaped
// SPD networks, the factor-cache contract across step sizes, and the
// allocation gate on the stepping hot path.

// compileThree compiles one network onto dense LU, Cholesky and CG.
func compileThree(t *testing.T, n *Network) (dense, chol, cg *Solver) {
	t.Helper()
	d, err := n.CompileHint(HintDense)
	if err != nil {
		t.Fatalf("dense compile: %v", err)
	}
	c, err := n.CompileHint(HintCholesky)
	if err != nil {
		t.Fatalf("cholesky compile: %v", err)
	}
	g, err := n.CompileHint(HintCG)
	if err != nil {
		t.Fatalf("cg compile: %v", err)
	}
	return d, c, g
}

// TestCholeskyParitySteadyState: on random floorplan-shaped networks the
// Cholesky steady state must match the dense LU oracle to 1e-9 relative (the
// acceptance bar — both are direct solves) and the CG answer must sit within
// its refined tolerance of both.
func TestCholeskyParitySteadyState(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		nx, ny := 3+rng.Intn(7), 3+rng.Intn(7)
		net := gridNetwork(rng, nx, ny)
		dense, chol, cg := compileThree(t, net)
		p := randomPower(rng, net.N())
		td := dense.SteadyState(p)
		tc := chol.SteadyState(p)
		tg := cg.SteadyState(p)
		for i := range td {
			rise := math.Max(1, td[i]-net.Ambient())
			if d := math.Abs(td[i] - tc[i]); d > 1e-9*rise {
				t.Fatalf("seed %d (%dx%d): node %d dense %.15g vs cholesky %.15g (Δ=%g)",
					seed, nx, ny, i, td[i], tc[i], d)
			}
			if d := math.Abs(td[i] - tg[i]); d > 1e-7*rise {
				t.Fatalf("seed %d (%dx%d): node %d dense %.15g vs cg %.15g (Δ=%g)",
					seed, nx, ny, i, td[i], tg[i], d)
			}
		}
	}
}

// TestCholeskyParityTransientBE: fixed-step backward-Euler transients on the
// Cholesky path must track the dense oracle to 1e-9 absolute through step-
// size changes (both paths re-derive the shifted operator), and CG within
// its iterative tolerance.
func TestCholeskyParityTransientBE(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(400 + seed))
		net := gridNetwork(rng, 5, 4)
		dense, chol, cg := compileThree(t, net)
		p := randomPower(rng, net.N())
		td := dense.AmbientVector()
		tc := chol.AmbientVector()
		tg := cg.AmbientVector()
		for _, leg := range []struct{ dur, dt float64 }{{0.5, 0.01}, {0.2, 0.004}} {
			for _, run := range []struct {
				s    *Solver
				temp []float64
			}{{dense, td}, {chol, tc}, {cg, tg}} {
				if err := run.s.TransientBE(run.temp, p, leg.dur, leg.dt); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := range td {
			if d := math.Abs(td[i] - tc[i]); d > 1e-9*math.Max(1, math.Abs(td[i]-net.Ambient())) {
				t.Fatalf("seed %d: node %d dense %.15g vs cholesky %.15g (Δ=%g)", seed, i, td[i], tc[i], d)
			}
			if d := math.Abs(td[i] - tg[i]); d > 1e-5 {
				t.Fatalf("seed %d: node %d dense %.15g vs cg %.15g (Δ=%g)", seed, i, td[i], tg[i], d)
			}
		}
	}
}

// TestFactorCacheContract: a session must factor exactly once per distinct
// step size — alternating dt values re-factor only on first sight of each
// dt, every later switch is a cache reuse, and repeated same-dt steps touch
// neither counter.
func TestFactorCacheContract(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	net := gridNetwork(rng, 6, 6)
	s, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if s.Backend() != "cholesky" {
		t.Fatalf("compiled onto %q, want cholesky", s.Backend())
	}
	base := s.Stats()
	if base.Factorizations != 1 {
		t.Fatalf("after compile: %d factorizations, want 1 (the eager conductance factor)", base.Factorizations)
	}
	p := randomPower(rng, net.N())
	se := s.NewSession()
	temp := s.AmbientVector()
	const dt1, dt2 = 1e-3, 2e-3
	steps := []float64{dt1, dt1, dt1, dt2, dt2, dt1, dt2, dt1}
	for i, dt := range steps {
		if err := se.StepBE(temp, p, dt); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	st := s.Stats()
	// One factor per distinct dt on top of the compile-time factor.
	if got := st.Factorizations - base.Factorizations; got != 2 {
		t.Fatalf("factorizations for 2 distinct dts: %d, want 2", got)
	}
	// Every dt switch after first sight is a reuse: dt1→dt2(miss), dt2→dt1
	// (reuse), dt1→dt2 (reuse), dt2→dt1 (reuse).
	if st.FactorReuses != 3 {
		t.Fatalf("factor reuses: %d, want 3", st.FactorReuses)
	}
	if st.DirectSteps != int64(len(steps)) {
		t.Fatalf("direct steps: %d, want %d", st.DirectSteps, len(steps))
	}
	if st.CGSteps != 0 {
		t.Fatalf("cg steps on the cholesky path: %d, want 0", st.CGSteps)
	}
	if st.StepSolveNanos <= 0 {
		t.Fatalf("step solve time not recorded")
	}

	// A second session at an already-cached dt must reuse, not re-factor.
	se2 := s.NewSession()
	temp2 := s.AmbientVector()
	if err := se2.StepBE(temp2, p, dt1); err != nil {
		t.Fatal(err)
	}
	st2 := s.Stats()
	if st2.Factorizations != st.Factorizations {
		t.Fatalf("second session re-factored: %d → %d", st.Factorizations, st2.Factorizations)
	}
	if st2.FactorReuses != st.FactorReuses+1 {
		t.Fatalf("second session did not hit the factor cache")
	}
}

// TestCGPathCountsIterations: the CG fallback path must report its steps and
// iteration totals through the same stats surface.
func TestCGPathCountsIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	net := gridNetwork(rng, 6, 6)
	s, err := net.CompileHint(HintCG)
	if err != nil {
		t.Fatal(err)
	}
	p := randomPower(rng, net.N())
	se := s.NewSession()
	temp := s.AmbientVector()
	for i := 0; i < 5; i++ {
		if err := se.StepBE(temp, p, 1e-3); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CGSteps != 5 {
		t.Fatalf("cg steps: %d, want 5", st.CGSteps)
	}
	if st.CGIterations < st.CGSteps {
		t.Fatalf("cg iterations %d below step count %d", st.CGIterations, st.CGSteps)
	}
	if st.DirectSteps != 0 {
		t.Fatalf("direct steps on the cg path: %d, want 0", st.DirectSteps)
	}
	if st.Factorizations != 0 {
		t.Fatalf("factorizations on the cg path: %d, want 0", st.Factorizations)
	}
}

// TestStepBEAllocationFree gates the stepping hot path at zero allocations
// per step on every backend (after the first step has grown workspaces and
// factored the operator). This is the regression fence for the transient
// throughput work: a stray per-step allocation shows up here before it shows
// up in a benchmark.
func TestStepBEAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	net := gridNetwork(rng, 6, 6)
	for _, hint := range []SolverHint{HintDense, HintCholesky, HintCG} {
		t.Run(hint.String(), func(t *testing.T) {
			s, err := net.CompileHint(hint)
			if err != nil {
				t.Fatal(err)
			}
			p := randomPower(rng, net.N())
			se := s.NewSession()
			temp := s.AmbientVector()
			if err := se.StepBE(temp, p, 1e-3); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(100, func() {
				if err := se.StepBE(temp, p, 1e-3); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("%v StepBE allocates %v times per step, want 0", hint, allocs)
			}
		})
	}
}

// TestStepBERejectsInvalidDt: non-finite and non-positive step sizes must be
// rejected before touching the solver's (dt → factor) cache — a NaN key
// would insert an unreachable entry per step and silently factor NaN
// temperatures.
func TestStepBERejectsInvalidDt(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net := gridNetwork(rng, 6, 6)
	s, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	p := randomPower(rng, net.N())
	se := s.NewSession()
	temp := s.AmbientVector()
	want := append([]float64(nil), temp...)
	for _, dt := range []float64{0, -1e-3, math.NaN(), math.Inf(1)} {
		if err := se.StepBE(temp, p, dt); err == nil {
			t.Fatalf("dt=%g: expected error", dt)
		}
	}
	for i := range temp {
		if temp[i] != want[i] {
			t.Fatalf("temperature mutated by rejected step")
		}
	}
	if st := s.Stats(); st.Factorizations != 1 || st.DirectSteps != 0 {
		t.Fatalf("rejected steps touched the solver: %+v", st)
	}
}

// TestCholeskyHintSurfacesSingular: with the escape hatch forcing Cholesky,
// a structurally singular network must still be rejected at Compile (by the
// ground check, exactly like every other backend).
func TestCholeskyHintSurfacesSingular(t *testing.T) {
	n := New(300)
	n.AddNode("a", 1)
	b := n.AddNode("b", 1)
	n.ConnectAmbientR(b, 1)
	if _, err := n.CompileHint(HintCholesky); err == nil {
		t.Fatal("expected floating-island error on the cholesky hint")
	}
}

// TestCholeskySteadyBitStable: two independently compiled Cholesky solvers
// of the same network must produce bitwise-identical steady states (the
// ordering, assembly and factorization are all deterministic).
func TestCholeskySteadyBitStable(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	net := gridNetwork(rng, 7, 5)
	p := randomPower(rng, net.N())
	s1, err := net.CompileHint(HintCholesky)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := net.CompileHint(HintCholesky)
	if err != nil {
		t.Fatal(err)
	}
	t1 := s1.SteadyState(p)
	t2 := s2.SteadyState(p)
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("node %d: %v vs %v (bitwise)", i, t1[i], t2[i])
		}
	}
}

// TestCholeskyF32ParityAndStats: the reduced-precision hint must compile
// onto the single-precision direct backend, track the full-precision solver
// through a multi-leg transient to well inside the golden drift gate, and
// report its refinement traffic (two kernel invocations per solve) in the
// kernel-width counters.
func TestCholeskyF32ParityAndStats(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	net := gridNetwork(rng, 7, 6)
	s64, err := net.CompileHint(HintCholesky)
	if err != nil {
		t.Fatal(err)
	}
	s32, err := net.CompileHint(HintCholeskyF32)
	if err != nil {
		t.Fatal(err)
	}
	if s32.Backend() != "cholesky-f32" {
		t.Fatalf("compiled onto %q, want cholesky-f32", s32.Backend())
	}
	p := randomPower(rng, net.N())
	t64 := s64.AmbientVector()
	t32 := s32.AmbientVector()
	const steps = 40
	for _, run := range []struct {
		s    *Solver
		temp []float64
	}{{s64, t64}, {s32, t32}} {
		if err := run.s.TransientBE(run.temp, p, steps*1e-3, 1e-3); err != nil {
			t.Fatal(err)
		}
	}
	for i := range t64 {
		rise := math.Max(1, t64[i]-net.Ambient())
		if d := math.Abs(t64[i] - t32[i]); d > 1e-9*rise {
			t.Fatalf("node %d: f64 %.15g vs f32+refine %.15g (Δ=%g)", i, t64[i], t32[i], d)
		}
	}
	// Every single-RHS step runs the 1-wide kernel once on the f64 solver
	// and twice on the f32 solver (solve + refinement pass).
	st64, st32 := s64.Stats(), s32.Stats()
	if st64.KernelSolves["1"] != steps {
		t.Fatalf("f64 kernel counters: %v, want %d×\"1\"", st64.KernelSolves, steps)
	}
	if st32.KernelSolves["1"] != 2*steps {
		t.Fatalf("f32 kernel counters: %v, want %d×\"1\"", st32.KernelSolves, 2*steps)
	}
}

// expanderNetwork builds a random-graph network whose factor fill is huge
// under any bandwidth ordering (each node ties to several random earlier
// nodes, so the graph has no useful separator structure).
func expanderNetwork(rng *rand.Rand, n, degree int) *Network {
	net := New(300)
	for i := 0; i < n; i++ {
		net.AddNode(fmt.Sprintf("n%d", i), 0.01)
	}
	for i := 1; i < n; i++ {
		for k := 0; k < degree; k++ {
			j := rng.Intn(i)
			net.Connect(i, j, 0.5+rng.Float64())
		}
	}
	net.ConnectAmbient(0, 1)
	return net
}

// TestCholeskyFillFallback: when the predicted factor fill blows past
// CholeskyMaxFill — here a random expander, the worst case for a bandwidth
// ordering — Compile must land on the CG backend rather than failing or
// factoring a near-dense L.
func TestCholeskyFillFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net := expanderNetwork(rng, 2048, 8) // ~77× predicted fill, well past the cap
	// Confirm the premise: the direct backend itself rejects at this cap.
	if _, err := net.CompileWith(linalg.CholeskyBackend{MaxFillRatio: CholeskyMaxFill}); err == nil {
		t.Fatal("expected the expander to exceed the fill cap")
	}
	s, err := net.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if s.Backend() != "sparse" {
		t.Fatalf("auto path on a high-fill network: %q, want sparse (CG fallback)", s.Backend())
	}
	// And the fallback must still solve.
	p := randomPower(rng, net.N())
	temps := s.SteadyState(p)
	if len(temps) != net.N() {
		t.Fatalf("steady state length %d", len(temps))
	}
}
