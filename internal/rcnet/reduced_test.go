package rcnet

import (
	"math"
	"testing"
)

// reducedTestNet builds a grid-shaped RC network with heterogeneous
// capacitances, boundary ambient legs and a few power-input nodes —
// structurally a miniature die stack.
func reducedTestNet(nx, ny int) (*Network, []int) {
	n := New(300)
	at := make([][]int, ny)
	for y := range at {
		at[y] = make([]int, nx)
		for x := range at[y] {
			at[y][x] = n.AddNode(gridName(x, y), 1e-3*(1+0.1*float64((x+y)%5)))
		}
	}
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			if x+1 < nx {
				n.Connect(at[y][x], at[y][x+1], 2.0)
			}
			if y+1 < ny {
				n.Connect(at[y][x], at[y+1][x], 1.5)
			}
			if x == 0 || y == 0 || x == nx-1 || y == ny-1 {
				n.ConnectAmbient(at[y][x], 0.4)
			}
		}
	}
	inputs := []int{at[0][0], at[ny/2][nx/2], at[ny-1][nx-1]}
	return n, inputs
}

func gridName(x, y int) string {
	return "n" + string(rune('a'+x)) + string(rune('a'+y))
}

func reducedTestPower(n *Network, inputs []int) []float64 {
	p := make([]float64, n.N())
	for k, i := range inputs {
		p[i] = 2.0 + float64(k)
	}
	return p
}

// The reduced solver must reproduce the full solver's steady state and
// transients on the inputs its basis was built from.
func TestCompileReducedMatchesFull(t *testing.T) {
	net, inputs := reducedTestNet(8, 8)
	full, err := net.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	red, err := net.CompileReduced(ReducedSpec{Inputs: inputs, Order: 24})
	if err != nil {
		t.Fatalf("CompileReduced: %v", err)
	}
	if red.Backend() != "reduced" {
		t.Fatalf("Backend() = %q, want reduced", red.Backend())
	}
	st := red.Stats()
	if st.ReducedOrder < 1 || st.ReducedOrder > 24 {
		t.Fatalf("ReducedOrder = %d, want 1..24", st.ReducedOrder)
	}
	if st.ReducedFallbacks != 0 {
		t.Fatalf("ReducedFallbacks = %d at compile, want 0", st.ReducedFallbacks)
	}

	power := reducedTestPower(net, inputs)
	sf := full.SteadyState(power)
	sr := red.SteadyState(power)
	for i := range sf {
		if math.Abs(sf[i]-sr[i]) > 1e-6 {
			t.Fatalf("steady[%d]: full %g, reduced %g", i, sf[i], sr[i])
		}
	}

	tf, tr := full.AmbientVector(), red.AmbientVector()
	for step := 0; step < 50; step++ {
		if err := full.StepBE(tf, power, 1e-3); err != nil {
			t.Fatalf("full StepBE: %v", err)
		}
		if err := red.StepBE(tr, power, 1e-3); err != nil {
			t.Fatalf("reduced StepBE: %v", err)
		}
	}
	for i := range tf {
		if math.Abs(tf[i]-tr[i]) > 1e-4 {
			t.Fatalf("transient[%d]: full %g, reduced %g (Δ=%g)", i, tf[i], tr[i], tf[i]-tr[i])
		}
	}
	st = red.Stats()
	if st.ReducedSteps != 50 {
		t.Fatalf("ReducedSteps = %d, want 50", st.ReducedSteps)
	}
	if st.DirectSteps != 50 {
		t.Fatalf("DirectSteps = %d, want 50", st.DirectSteps)
	}
}

// An impossible residual gate must trip the automatic fallback: stepping
// continues through the full backend, the trip is counted, and the
// temperatures keep tracking the full solver.
func TestReducedResidualGateTripsFallback(t *testing.T) {
	net, inputs := reducedTestNet(8, 8)
	red, err := net.CompileReduced(ReducedSpec{Inputs: inputs, Order: 24, ResidualGate: 1e-300})
	if err != nil {
		t.Fatalf("CompileReduced: %v", err)
	}
	full, err := net.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	power := reducedTestPower(net, inputs)
	tf, tr := full.AmbientVector(), red.AmbientVector()
	for step := 0; step < 20; step++ {
		if err := full.StepBE(tf, power, 1e-3); err != nil {
			t.Fatalf("full StepBE: %v", err)
		}
		if err := red.StepBE(tr, power, 1e-3); err != nil {
			t.Fatalf("reduced StepBE: %v", err)
		}
	}
	st := red.Stats()
	if st.ReducedFallbacks != 1 {
		t.Fatalf("ReducedFallbacks = %d, want 1", st.ReducedFallbacks)
	}
	if st.ReducedSteps != 0 {
		// The very first step is sampled, trips the gate and is redone
		// through the full backend, so no reduced step ever lands.
		t.Fatalf("ReducedSteps = %d, want 0", st.ReducedSteps)
	}
	// Post-trip steps run the full backend: results must match the full
	// solver bitwise (same backend, same arithmetic).
	for i := range tf {
		if tf[i] != tr[i] {
			t.Fatalf("post-trip transient[%d]: full %g, tripped-reduced %g", i, tf[i], tr[i])
		}
	}
	// Steady solves after the trip also route to the full backend.
	sf, sr := full.SteadyState(power), red.SteadyState(power)
	for i := range sf {
		if math.Abs(sf[i]-sr[i]) > 1e-9 {
			t.Fatalf("post-trip steady[%d]: full %g, reduced %g", i, sf[i], sr[i])
		}
	}
}

// The batched stepping path must agree with per-session stepping on the
// reduced backend and count its steps.
func TestReducedBatchStepMatchesSerial(t *testing.T) {
	net, inputs := reducedTestNet(8, 8)
	red, err := net.CompileReduced(ReducedSpec{Inputs: inputs, Order: 24})
	if err != nil {
		t.Fatalf("CompileReduced: %v", err)
	}
	power := reducedTestPower(net, inputs)
	const k = 3
	serial := make([][]float64, k)
	batch := make([][]float64, k)
	powers := make([][]float64, k)
	for j := 0; j < k; j++ {
		serial[j] = red.AmbientVector()
		batch[j] = red.AmbientVector()
		p := make([]float64, len(power))
		for i := range p {
			p[i] = power[i] * float64(j+1)
		}
		powers[j] = p
	}
	bs := red.NewBatchSession(k)
	errs := make([]error, k)
	for step := 0; step < 10; step++ {
		if err := bs.StepBE(batch, powers, 1e-3, errs); err != nil {
			t.Fatalf("batch StepBE: %v", err)
		}
	}
	for j := 0; j < k; j++ {
		ses := red.NewSession()
		for step := 0; step < 10; step++ {
			if err := ses.StepBE(serial[j], powers[j], 1e-3); err != nil {
				t.Fatalf("serial StepBE: %v", err)
			}
		}
		for i := range serial[j] {
			if serial[j][i] != batch[j][i] {
				t.Fatalf("slot %d node %d: serial %g != batch %g", j, i, serial[j][i], batch[j][i])
			}
		}
	}
}

// CompileReduced on a network whose reduction cannot be built must fall
// back to the full backend at compile time and count it.
func TestCompileReducedConstructionFallback(t *testing.T) {
	net, _ := reducedTestNet(4, 4)
	// An out-of-range input node fails basis construction.
	s, err := net.CompileReduced(ReducedSpec{Inputs: []int{net.N() + 7}})
	if err != nil {
		t.Fatalf("CompileReduced fallback: %v", err)
	}
	if s.Backend() == "reduced" {
		t.Fatalf("Backend() = reduced, want a full backend after construction fallback")
	}
	if got := s.Stats().ReducedFallbacks; got != 1 {
		t.Fatalf("ReducedFallbacks = %d, want 1", got)
	}
}

// HintReduced routes through CompileReduced and names itself.
func TestHintReduced(t *testing.T) {
	if HintReduced.String() != "reduced" {
		t.Fatalf("HintReduced.String() = %q", HintReduced.String())
	}
	net, inputs := reducedTestNet(5, 5)
	s, err := net.CompileHint(HintReduced)
	if err != nil {
		t.Fatalf("CompileHint(HintReduced): %v", err)
	}
	if s.Backend() != "reduced" {
		t.Fatalf("Backend() = %q, want reduced", s.Backend())
	}
	power := reducedTestPower(net, inputs)
	full, _ := net.Compile()
	sf, sr := full.SteadyState(power), s.SteadyState(power)
	for i := range sf {
		if math.Abs(sf[i]-sr[i]) > 1e-6 {
			t.Fatalf("steady[%d]: full %g, hint-reduced %g", i, sf[i], sr[i])
		}
	}
}

// A ReducedSession streaming in reduced coordinates must track full-space
// Session stepping on the same reduced solver, including across a
// mid-stream power change, when seeded from a state in span(V).
func TestReducedSessionMatchesSessionStepping(t *testing.T) {
	net, inputs := reducedTestNet(8, 8)
	red, err := net.CompileReduced(ReducedSpec{Inputs: inputs, Order: 24})
	if err != nil {
		t.Fatalf("CompileReduced: %v", err)
	}
	power := reducedTestPower(net, inputs)
	seed := red.SteadyState(power) // in span(V): exactly representable

	rs, err := red.NewReducedSession(1e-3)
	if err != nil {
		t.Fatalf("NewReducedSession: %v", err)
	}
	if !rs.Reduced() {
		t.Fatal("Reduced() = false on a fresh session")
	}
	if rs.Order() <= 0 || rs.Order() > 24 {
		t.Fatalf("Order() = %d, want 1..24", rs.Order())
	}
	if err := rs.Step(); err == nil {
		t.Fatal("Step before Start must error")
	}
	if err := rs.Start(seed); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := rs.Step(); err == nil {
		t.Fatal("Step before SetPower must error")
	}

	ref := append([]float64(nil), seed...)
	ses := red.NewSession()
	halved := make([]float64, len(power))
	for i, p := range power {
		halved[i] = 0.5 * p
	}
	if err := rs.SetPower(halved); err != nil {
		t.Fatalf("SetPower: %v", err)
	}
	for step := 0; step < 150; step++ {
		if step == 70 {
			if err := rs.SetPower(power); err != nil {
				t.Fatalf("SetPower: %v", err)
			}
		}
		p := halved
		if step >= 70 {
			p = power
		}
		if err := rs.Step(); err != nil {
			t.Fatalf("Step %d: %v", step, err)
		}
		if err := ses.StepBE(ref, p, 1e-3); err != nil {
			t.Fatalf("Session StepBE %d: %v", step, err)
		}
	}
	if !rs.Reduced() {
		t.Fatal("session tripped onto the full backend on a healthy basis")
	}
	got := rs.Temps(nil)
	for i := range ref {
		if math.Abs(got[i]-ref[i]) > 1e-8*(1+math.Abs(ref[i])) {
			t.Fatalf("node %d: streaming %g vs full-space %g (Δ=%g)", i, got[i], ref[i], got[i]-ref[i])
		}
	}
	if st := red.Stats(); st.ReducedFallbacks != 0 {
		t.Fatalf("ReducedFallbacks = %d, want 0", st.ReducedFallbacks)
	}
}

// A ReducedSession whose sampled residual trips the gate must switch onto
// the full backend, redo the offending step there, and keep tracking the
// full solver afterwards.
func TestReducedSessionTripsToFull(t *testing.T) {
	net, inputs := reducedTestNet(8, 8)
	red, err := net.CompileReduced(ReducedSpec{Inputs: inputs, Order: 24, ResidualGate: 1e-300})
	if err != nil {
		t.Fatalf("CompileReduced: %v", err)
	}
	full, err := net.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	power := reducedTestPower(net, inputs)
	seed := red.SteadyState(power)

	rs, err := red.NewReducedSession(1e-3)
	if err != nil {
		t.Fatalf("NewReducedSession: %v", err)
	}
	if err := rs.Start(seed); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := rs.SetPower(power); err != nil {
		t.Fatalf("SetPower: %v", err)
	}
	ref := append([]float64(nil), seed...)
	for step := 0; step < 30; step++ {
		if err := rs.Step(); err != nil {
			t.Fatalf("Step %d: %v", step, err)
		}
		if err := full.StepBE(ref, power, 1e-3); err != nil {
			t.Fatalf("full StepBE %d: %v", step, err)
		}
	}
	if rs.Reduced() {
		t.Fatal("Reduced() = true after an impossible gate — trip never happened")
	}
	if rs.Order() != 0 {
		t.Fatalf("Order() = %d on the full path, want 0", rs.Order())
	}
	st := red.Stats()
	if st.ReducedFallbacks != 1 {
		t.Fatalf("ReducedFallbacks = %d, want 1", st.ReducedFallbacks)
	}
	if st.ReducedSteps != 0 {
		t.Fatalf("ReducedSteps = %d, want 0 — the first sampled step must be redone in full", st.ReducedSteps)
	}
	got := rs.Temps(nil)
	for i := range ref {
		// The seed round-trips through the basis (V·Vᵀ), so post-trip
		// agreement with the full solver is to projection accuracy, not
		// bitwise.
		if math.Abs(got[i]-ref[i]) > 1e-8*(1+math.Abs(ref[i])) {
			t.Fatalf("node %d: tripped-session %g vs full %g", i, got[i], ref[i])
		}
	}

	// A session created after the trip starts on the full path outright.
	rs2, err := red.NewReducedSession(1e-3)
	if err != nil {
		t.Fatalf("NewReducedSession post-trip: %v", err)
	}
	if rs2.Reduced() {
		t.Fatal("post-trip session must start on the full backend")
	}
}

// NewReducedSession is rejected on full-backend solvers and bad step sizes.
func TestReducedSessionConstructionErrors(t *testing.T) {
	net, inputs := reducedTestNet(5, 5)
	full, err := net.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if _, err := full.NewReducedSession(1e-3); err == nil {
		t.Fatal("NewReducedSession on a full-backend solver must error")
	}
	red, err := net.CompileReduced(ReducedSpec{Inputs: inputs})
	if err != nil {
		t.Fatalf("CompileReduced: %v", err)
	}
	for _, dt := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if _, err := red.NewReducedSession(dt); err == nil {
			t.Fatalf("NewReducedSession(%g) must error", dt)
		}
	}
	rs, err := red.NewReducedSession(1e-3)
	if err != nil {
		t.Fatalf("NewReducedSession: %v", err)
	}
	if err := rs.Start(make([]float64, 3)); err == nil {
		t.Fatal("Start with a short vector must error")
	}
	if err := rs.SetPower(make([]float64, 3)); err == nil {
		t.Fatal("SetPower with a short vector must error")
	}
}
