// Package rcnet models lumped thermal RC networks: nodes with heat
// capacitances, thermal conductances between nodes, conductances to a fixed
// ambient, and per-node power injection. It provides steady-state solves,
// explicit (adaptive RK4) and implicit (backward Euler) transient
// integration, and dominant-time-constant extraction.
//
// The electrical analogy follows the paper's Fig. 7: temperature ↔ voltage,
// heat flow ↔ current, thermal resistance ↔ electrical resistance, heat
// capacity ↔ capacitance, dissipated power ↔ current source, ambient ↔
// ground at T_amb.
package rcnet

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/linalg"
	"repro/internal/ode"
)

// Network is a thermal RC network under construction. The zero value is not
// usable; create one with New.
type Network struct {
	names   []string
	byName  map[string]int
	cap     []float64 // heat capacitance per node, J/K
	ambG    []float64 // conductance to ambient per node, W/K
	pairs   map[[2]int]float64
	ambient float64 // ambient temperature, K

	// compile-once state for Compiled.
	compileOnce sync.Once
	compiled    *Solver
	compileErr  error
}

// New creates an empty network with the given ambient temperature (Kelvin).
func New(ambient float64) *Network {
	return &Network{
		byName:  make(map[string]int),
		pairs:   make(map[[2]int]float64),
		ambient: ambient,
	}
}

// Ambient returns the ambient temperature in Kelvin.
func (n *Network) Ambient() float64 { return n.ambient }

// N returns the number of nodes.
func (n *Network) N() int { return len(n.names) }

// AddNode adds a node with the given heat capacitance (J/K) and returns its
// index. Capacitance must be positive: the transient solvers integrate every
// node as a dynamic state. (Physically tiny layers get their physically tiny
// capacitance, which the implicit integrator handles without trouble.)
func (n *Network) AddNode(name string, capacitance float64) int {
	if name == "" {
		panic("rcnet: empty node name")
	}
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("rcnet: duplicate node %q", name))
	}
	if capacitance <= 0 || math.IsNaN(capacitance) {
		panic(fmt.Sprintf("rcnet: node %q needs positive capacitance, got %g", name, capacitance))
	}
	idx := len(n.names)
	n.names = append(n.names, name)
	n.byName[name] = idx
	n.cap = append(n.cap, capacitance)
	n.ambG = append(n.ambG, 0)
	return idx
}

// Index returns the index of the named node, or -1.
func (n *Network) Index(name string) int {
	if i, ok := n.byName[name]; ok {
		return i
	}
	return -1
}

// Name returns the name of node i.
func (n *Network) Name(i int) string { return n.names[i] }

// Capacitance returns the heat capacitance of node i (J/K).
func (n *Network) Capacitance(i int) float64 { return n.cap[i] }

// Connect adds a thermal conductance g = 1/R (W/K) between nodes i and j.
// Repeated calls accumulate (parallel resistances).
func (n *Network) Connect(i, j int, g float64) {
	if i == j {
		panic("rcnet: self connection")
	}
	if g <= 0 || math.IsInf(g, 0) || math.IsNaN(g) {
		panic(fmt.Sprintf("rcnet: invalid conductance %g between %d and %d", g, i, j))
	}
	n.checkIndex(i)
	n.checkIndex(j)
	if i > j {
		i, j = j, i
	}
	n.pairs[[2]int{i, j}] += g
}

// ConnectR is Connect expressed as a resistance (K/W).
func (n *Network) ConnectR(i, j int, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("rcnet: invalid resistance %g", r))
	}
	n.Connect(i, j, 1/r)
}

// ConnectAmbient adds conductance g (W/K) from node i to the ambient.
func (n *Network) ConnectAmbient(i int, g float64) {
	if g <= 0 || math.IsInf(g, 0) || math.IsNaN(g) {
		panic(fmt.Sprintf("rcnet: invalid ambient conductance %g at %d", g, i))
	}
	n.checkIndex(i)
	n.ambG[i] += g
}

// ConnectAmbientR is ConnectAmbient expressed as a resistance (K/W).
func (n *Network) ConnectAmbientR(i int, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("rcnet: invalid ambient resistance %g", r))
	}
	n.ConnectAmbient(i, 1/r)
}

func (n *Network) checkIndex(i int) {
	if i < 0 || i >= len(n.names) {
		panic(fmt.Sprintf("rcnet: node index %d out of range", i))
	}
}

// DenseCutoff is the node count at or below which Compile picks the dense
// LU backend. Above it Compile assembles CSR and factors with supernodal
// sparse LDLᵀ (falling back to Jacobi-preconditioned conjugate gradients
// when the predicted factor fill exceeds CholeskyMaxFill). PR 5 dropped the
// cutoff from 64 to 8: an air-sink EV6 network (~40 nodes) solves ~5×
// faster through the compressed sparse factor than through O(n²) dense
// back-substitution, and the sparse path batches. The dense backend remains
// the parity oracle via CompileHint(HintDense).
const DenseCutoff = 8

// CholeskyMaxFill caps the sparse direct path: Compile falls back to the CG
// backend when the symbolic analysis predicts nnz(L+D+Lᵀ) beyond this
// multiple of nnz(A). Floorplan-shaped networks order to ~10-25× under RCM
// (measured in DESIGN.md §7.2); genuinely 3D grids — the reference solver's
// territory — blow far past this.
const CholeskyMaxFill = 40

// SolverHint selects the linear-solver backend at Compile time.
type SolverHint int

const (
	// HintAuto picks dense LU for tiny networks, sparse Cholesky (LDLᵀ)
	// when the predicted fill is acceptable, and CG otherwise. This is what
	// Compile does.
	HintAuto SolverHint = iota
	// HintDense forces the dense LU oracle.
	HintDense
	// HintCholesky forces the sparse direct LDLᵀ backend with no fill cap;
	// non-SPD systems fail Compile.
	HintCholesky
	// HintCG forces the Jacobi-preconditioned conjugate-gradient backend.
	HintCG
	// HintCholeskyF32 forces sparse direct LDLᵀ with the factor stored in
	// float32 plus one step of iterative refinement per solve: half the
	// factor memory traffic, accuracy restored to well inside the golden
	// drift gate (DESIGN.md §9.4). Non-SPD systems fail Compile.
	HintCholeskyF32
	// HintReduced compiles onto the reduced-order (Krylov-projected) backend
	// with default ReducedSpec settings: block-Arnoldi moment matching, dense
	// pre-factored backward-Euler steps, automatic fallback to the full
	// backend when the sampled residual gate trips (DESIGN.md §10). Use
	// CompileReduced directly to pick the input columns and order.
	HintReduced
)

// String names the hint for logs.
func (h SolverHint) String() string {
	switch h {
	case HintDense:
		return "dense"
	case HintCholesky:
		return "cholesky"
	case HintCG:
		return "cg"
	case HintCholeskyF32:
		return "cholesky-f32"
	case HintReduced:
		return "reduced"
	default:
		return "auto"
	}
}

// Solver is an assembled network ready for simulation. It holds the
// conductance system behind a linalg.Operator (dense LU, sparse direct
// LDLᵀ, or sparse CG, chosen at Compile) plus a shared cache of
// backward-Euler operators, one factorization per step size. Create with
// Compile; a Solver must not outlive subsequent mutations of its Network.
//
// SteadyState, DominantTimeConstant and HeatFlowToAmbient are safe to call
// from any number of goroutines (per-call scratch comes from an internal
// pool). The fixed-dt stepping methods (StepBE, TransientBE) share one
// per-solver session and must not be called concurrently; concurrent
// stepping goes through per-goroutine Sessions (NewSession) or the replay
// entry points (TransientTrace, TransientBatch), which keep all mutable
// state per call.
type Solver struct {
	net     *Network
	backend linalg.Backend
	// op is the conductance (Laplacian + ambient) operator: diag holds the
	// sum of all conductances incident to i, off-diagonal (i,j) = -g(i,j).
	op     linalg.Operator
	invCap []float64
	// ambRHS is the constant G_amb·T_amb right-hand-side term, precomputed
	// so the stepping hot path performs no per-node multiply for it.
	ambRHS []float64
	wsPool sync.Pool // *linalg.Workspace scratch for the steady entry points

	// serial is the lazily-created stepping session backing StepBE and
	// TransientBE; concurrent replays create their own sessions instead.
	serial *session

	// beOps caches backward-Euler operators (C/dt + A) per step size,
	// shared by every session on this solver: the first session to step at
	// a given dt factors (single-flight), later sessions — e.g. a service's
	// whole session pool replaying same-interval traces — reuse the factor
	// and run solve-only steps. Bounded at beCacheCap distinct step sizes;
	// beyond that operators are built uncached (sessions still hold the
	// operator for their current dt, so repeated same-dt stepping never
	// refactors either way).
	beMu  sync.Mutex
	beOps map[float64]*beEntry

	// stats aggregates per-path solver counters across all sessions.
	stats solverStats

	// rescue is the lazily-built dense fallback for steady solves the
	// iterative backend stalls on (see rescueSolve).
	rescueOnce sync.Once
	rescue     linalg.Operator

	// Reduced-order state (nil/zero unless compiled via CompileReduced):
	// reduced is the projection operator, redGate the sampled-residual
	// threshold, epoch bumps when the gate trips so sessions refetch their
	// operators, and fullOp is the lazily-assembled full backend the solver
	// falls back onto (see reduced.go).
	reduced  *linalg.ReducedOperator
	redGate  float64
	epoch    atomic.Uint32
	fullOnce sync.Once
	fullOp   linalg.Operator
	fullErr  error
}

// beCacheCap bounds the per-solver (dt → operator) cache.
const beCacheCap = 16

type beEntry struct {
	once sync.Once
	op   linalg.Operator
	err  error
}

// batchWidthBuckets labels the batch-width histogram: how many right-hand
// sides each batched step solved per factor traversal.
var batchWidthBuckets = [...]string{"1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"}

// batchBucket maps a batch width to its histogram bucket.
func batchBucket(w int) int {
	switch {
	case w <= 1:
		return 0
	case w == 2:
		return 1
	case w <= 4:
		return 2
	case w <= 8:
		return 3
	case w <= 16:
		return 4
	case w <= 32:
		return 5
	case w <= 64:
		return 6
	default:
		return 7
	}
}

// kernelWidthLabels names the solve-kernel widths the direct backend
// dispatches over (linalg.Workspace.KernelSolves slot order).
var kernelWidthLabels = [...]string{"1", "4", "8", "16"}

// solverStats holds the solver's atomic counters; SolverStats is the
// exported snapshot.
type solverStats struct {
	factorizations atomic.Int64
	factorReuses   atomic.Int64
	directSteps    atomic.Int64
	cgSteps        atomic.Int64
	cgIterations   atomic.Int64
	stepSolveNanos atomic.Int64
	batchHist      [len(batchWidthBuckets)]atomic.Int64
	kernelSolves   [len(kernelWidthLabels)]atomic.Int64

	reducedSteps     atomic.Int64
	reducedFallbacks atomic.Int64
}

func (st *solverStats) recordBatchWidth(w int) {
	st.batchHist[batchBucket(w)].Add(1)
}

// absorbKernels drains a workspace's per-width kernel-solve counters into
// the solver's atomics (read-and-reset: workspaces are per-goroutine, the
// solver aggregate is shared).
func (st *solverStats) absorbKernels(ws *linalg.Workspace) {
	for i, v := range ws.KernelSolves {
		if v != 0 {
			st.kernelSolves[i].Add(v)
			ws.KernelSolves[i] = 0
		}
	}
}

// SolverStats is a snapshot of a solver's per-path counters. All counters
// aggregate over every session of the solver since Compile.
type SolverStats struct {
	// Factorizations counts numeric matrix factorizations: the eager
	// factorization at Compile (direct backends) plus one per distinct
	// backward-Euler step size. CG assemblies don't factor and don't count.
	Factorizations int64 `json:"factorizations"`
	// FactorReuses counts backward-Euler operator requests served from the
	// per-solver (dt → operator) cache instead of factoring.
	FactorReuses int64 `json:"factor_reuses"`
	// DirectSteps and CGSteps split backward-Euler steps by solve path:
	// triangular/back-substitution solves vs conjugate-gradient iteration.
	DirectSteps int64 `json:"direct_steps"`
	CGSteps     int64 `json:"cg_steps"`
	// CGIterations totals CG iterations across CGSteps.
	CGIterations int64 `json:"cg_iterations"`
	// StepSolveNanos estimates cumulative wall time inside backward-Euler
	// step solves (sampled one solve in eight and scaled, so the clock reads
	// don't tax the hot path; a batched solve's time covers all its columns);
	// divide by (DirectSteps+CGSteps) for the mean per-state solve latency.
	StepSolveNanos int64 `json:"step_solve_nanos"`
	// Supernodes and MaxPanelRows describe the supernodal factor of the
	// direct backend (0 on the dense and CG paths): the number of dense
	// panels and the tallest panel's row count.
	Supernodes   int `json:"supernodes,omitempty"`
	MaxPanelRows int `json:"max_panel_rows,omitempty"`
	// BatchWidths histograms the batched solves by how many right-hand
	// sides each solved per factor traversal (buckets "1".."65+"). Steps
	// taken through non-batched sessions are not counted here.
	BatchWidths map[string]int64 `json:"batch_widths,omitempty"`
	// KernelSolves counts sparse triangular-solve kernel invocations by
	// register-block width ("1", "4", "8", "16"): one batched step over K
	// right-hand sides decomposes greedily (e.g. K=31 → one 16-wide, one
	// 8-wide, one 4-wide and three 1-wide invocations). Float32 factors
	// count the refinement pass too (two invocations per solve).
	KernelSolves map[string]int64 `json:"kernel_solves,omitempty"`
	// ReducedOrder and ReducedProjError describe the reduced-order backend
	// (zero on every other path): the Krylov basis size and the worst
	// relative residual over the input columns at construction time.
	ReducedOrder     int     `json:"reduced_order,omitempty"`
	ReducedProjError float64 `json:"reduced_proj_error,omitempty"`
	// ReducedSteps counts backward-Euler steps solved through the reduced
	// projection; ReducedFallbacks counts falls back onto the full backend
	// (at compile, when the basis cannot be built, or at run time, when a
	// sampled step residual exceeds the gate).
	ReducedSteps     int64 `json:"reduced_steps,omitempty"`
	ReducedFallbacks int64 `json:"reduced_fallbacks,omitempty"`
}

// Stats snapshots the solver's per-path counters.
func (s *Solver) Stats() SolverStats {
	out := SolverStats{
		Factorizations: s.stats.factorizations.Load(),
		FactorReuses:   s.stats.factorReuses.Load(),
		DirectSteps:    s.stats.directSteps.Load(),
		CGSteps:        s.stats.cgSteps.Load(),
		CGIterations:   s.stats.cgIterations.Load(),
		StepSolveNanos: s.stats.stepSolveNanos.Load(),
	}
	if c, ok := s.op.(*linalg.CholeskyOperator); ok {
		out.Supernodes = c.Supernodes()
		out.MaxPanelRows = c.MaxPanelRows()
	}
	if s.reduced != nil {
		out.ReducedOrder = s.reduced.Order()
		out.ReducedProjError = s.reduced.ProjectionError()
	}
	out.ReducedSteps = s.stats.reducedSteps.Load()
	out.ReducedFallbacks = s.stats.reducedFallbacks.Load()
	for i := range s.stats.batchHist {
		if v := s.stats.batchHist[i].Load(); v > 0 {
			if out.BatchWidths == nil {
				out.BatchWidths = make(map[string]int64, len(batchWidthBuckets))
			}
			out.BatchWidths[batchWidthBuckets[i]] = v
		}
	}
	for i := range s.stats.kernelSolves {
		if v := s.stats.kernelSolves[i].Load(); v > 0 {
			if out.KernelSolves == nil {
				out.KernelSolves = make(map[string]int64, len(kernelWidthLabels))
			}
			out.KernelSolves[kernelWidthLabels[i]] = v
		}
	}
	return out
}

// getWS borrows a workspace from the solver's pool; putWS returns it.
func (s *Solver) getWS() *linalg.Workspace {
	if v := s.wsPool.Get(); v != nil {
		return v.(*linalg.Workspace)
	}
	return &linalg.Workspace{}
}

func (s *Solver) putWS(ws *linalg.Workspace) {
	s.stats.absorbKernels(ws)
	s.wsPool.Put(ws)
}

// Compile assembles the network into a solver, auto-selecting the backend:
// dense LU for networks of at most DenseCutoff nodes, sparse direct LDLᵀ
// (RCM-ordered Cholesky) above it when the predicted factor fill stays under
// CholeskyMaxFill, and Jacobi-CG otherwise. It verifies every node has a
// path to ambient (otherwise the conductance matrix is singular and the
// steady state unbounded), so the direct backends never see a structurally
// singular system. Equivalent to CompileHint(HintAuto); use CompileHint to
// force a specific backend.
func (n *Network) Compile() (*Solver, error) {
	return n.CompileHint(HintAuto)
}

// CompileHint is Compile with an explicit backend choice. HintAuto applies
// the selection heuristic above; the other hints force their backend (and
// surface its errors — e.g. HintCholesky on a non-SPD system fails instead
// of falling back).
func (n *Network) CompileHint(hint SolverHint) (*Solver, error) {
	switch hint {
	case HintDense:
		return n.CompileWith(linalg.DenseBackend{})
	case HintCholesky:
		return n.CompileWith(linalg.CholeskyBackend{})
	case HintCG:
		return n.CompileWith(linalg.SparseBackend{})
	case HintCholeskyF32:
		return n.CompileWith(linalg.CholeskyBackend{Precision: linalg.Float32})
	case HintReduced:
		return n.CompileReduced(ReducedSpec{})
	}
	if n.N() <= DenseCutoff {
		return n.CompileWith(linalg.DenseBackend{})
	}
	s, err := n.CompileWith(linalg.CholeskyBackend{MaxFillRatio: CholeskyMaxFill})
	if err != nil && (errors.Is(err, linalg.ErrCholeskyFill) || errors.Is(err, linalg.ErrNotSPD) || errors.Is(err, linalg.ErrNotSymmetric)) {
		// Too much fill (or a system the direct path cannot factor): the
		// iterative backend handles both.
		return n.CompileWith(linalg.SparseBackend{})
	}
	return s, err
}

// CompileWith assembles the network onto an explicit solver backend. Use it
// to force the dense oracle or a specially-configured sparse backend; most
// callers want Compile.
func (n *Network) CompileWith(backend linalg.Backend) (*Solver, error) {
	sz := n.N()
	if sz == 0 {
		return nil, fmt.Errorf("rcnet: empty network")
	}
	if err := n.checkGrounded(); err != nil {
		return nil, err
	}
	op, err := backend.Assemble(sz, n.assemble())
	if err != nil {
		return nil, fmt.Errorf("rcnet: %s assembly: %w", backend.Name(), err)
	}
	inv := make([]float64, sz)
	for i, c := range n.cap {
		inv[i] = 1 / c
	}
	amb := make([]float64, sz)
	for i, g := range n.ambG {
		amb[i] = g * n.ambient
	}
	s := &Solver{net: n, backend: backend, op: op, invCap: inv, ambRHS: amb, beOps: make(map[float64]*beEntry)}
	if !op.Iterative() {
		s.stats.factorizations.Add(1) // direct backends factor eagerly in Assemble
	}
	return s, nil
}

// assemble emits the conductance system in coordinate form. Pairs are
// visited in sorted order and the diagonal is accumulated in that same
// order, so floating-point accumulation (and therefore every downstream
// result) is deterministic across runs and identical for both backends.
func (n *Network) assemble() []linalg.Coord {
	sz := n.N()
	keys := make([][2]int, 0, len(n.pairs))
	for ij := range n.pairs {
		keys = append(keys, ij)
	}
	sort.Slice(keys, func(x, y int) bool {
		if keys[x][0] != keys[y][0] {
			return keys[x][0] < keys[y][0]
		}
		return keys[x][1] < keys[y][1]
	})
	diag := make([]float64, sz)
	entries := make([]linalg.Coord, 0, 2*len(keys)+sz)
	for _, ij := range keys {
		g := n.pairs[ij]
		i, j := ij[0], ij[1]
		diag[i] += g
		diag[j] += g
		entries = append(entries,
			linalg.Coord{I: i, J: j, V: -g},
			linalg.Coord{I: j, J: i, V: -g})
	}
	for i, g := range n.ambG {
		diag[i] += g
	}
	for i, d := range diag {
		entries = append(entries, linalg.Coord{I: i, J: i, V: d})
	}
	return entries
}

// checkGrounded verifies every node reaches a node with an ambient
// conductance through the pair graph. The dense backend would also catch the
// resulting singularity during factorization, but the iterative sparse
// backend cannot, so the structural check keeps both backends' Compile
// behavior identical.
func (n *Network) checkGrounded() error {
	sz := n.N()
	parent := make([]int, sz)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for ij := range n.pairs {
		a, b := find(ij[0]), find(ij[1])
		if a != b {
			parent[a] = b
		}
	}
	grounded := make(map[int]bool, sz)
	for i, g := range n.ambG {
		if g > 0 {
			grounded[find(i)] = true
		}
	}
	for i := 0; i < sz; i++ {
		if !grounded[find(i)] {
			return fmt.Errorf("rcnet: network has no path to ambient (floating island at node %q)", n.names[i])
		}
	}
	return nil
}

// Net returns the underlying network.
func (s *Solver) Net() *Network { return s.net }

// FactorInfo reports the sparse direct factor's size (strictly-lower
// entries) and fill ratio nnz(L+D+Lᵀ)/nnz(A) when the solver compiled onto
// the Cholesky backend; ok is false on the dense and CG paths.
func (s *Solver) FactorInfo() (nnzL int, fillRatio float64, ok bool) {
	if c, isChol := s.op.(*linalg.CholeskyOperator); isChol {
		return c.NNZL(), c.FillRatio(), true
	}
	return 0, 0, false
}

// Backend returns the name of the linear-algebra backend in use ("dense",
// "cholesky", "sparse" or "reduced").
func (s *Solver) Backend() string { return s.backend.Name() }

// SteadyState returns the equilibrium temperatures (Kelvin) for constant
// per-node power injection (W). power must have length N. If the iterative
// backend fails to converge (catastrophically ill-conditioned conductances),
// the solve falls back to an exact dense LU, so a grounded network always
// gets an answer. Safe for concurrent use.
func (s *Solver) SteadyState(power []float64) []float64 {
	ws := s.getWS()
	defer s.putWS(ws)
	var warm []float64
	if s.op.Iterative() {
		warm = s.AmbientVector() // direct solves ignore warm starts: skip the vector
	}
	return s.solveRefined(s.rhs(power), warm, ws)
}

// solveRefined solves A·x = b to near-direct accuracy: one backend solve
// plus, when the residual shows the backend stopped at an iterative
// tolerance, a step of iterative refinement. This keeps steady-state
// answers from the sparse backend within oracle distance of the dense LU
// (network invariants like reciprocity hold to ~1e-12 instead of the CG
// tolerance), at the cost of at most one extra solve. If the iterative
// backend stalls outright (catastrophically ill-conditioned conductances),
// the solve falls back to a lazily-built dense LU rather than failing.
func (s *Solver) solveRefined(b, warm []float64, ws *linalg.Workspace) []float64 {
	op := s.baseOp()
	x, err := op.Solve(b, warm, nil, ws)
	if err != nil {
		return s.rescueSolve(b)
	}
	if !op.Iterative() && s.reduced == nil {
		return x // exact direct solve: refinement would buy nothing
	}
	// Iterative tolerance or reduced projection: one refinement step. (For
	// the reduced path Apply is the exact matrix, so the step removes the
	// within-subspace part of the projection error.)
	r := make([]float64, len(b))
	op.Apply(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	if linalg.Norm2(r) > 1e-14*linalg.Norm2(b) {
		if d, err := op.Solve(r, nil, nil, ws); err == nil {
			linalg.AXPY(1, d, x)
		}
	}
	return x
}

// rescueSolve is the last-resort path for systems the iterative backend
// cannot converge on: reassemble once onto the dense LU oracle and solve
// directly. O(n³) on first use, but it turns a would-be crash on a
// pathological network into a slow, exact answer. It panics only if the
// dense factorization itself fails, which checkGrounded rules out for any
// network Compile accepted.
func (s *Solver) rescueSolve(b []float64) []float64 {
	s.rescueOnce.Do(func() {
		op, err := linalg.DenseBackend{}.Assemble(s.net.N(), s.net.assemble())
		if err != nil {
			panic(fmt.Sprintf("rcnet: dense rescue assembly failed: %v", err))
		}
		s.rescue = op
	})
	x, err := s.rescue.Solve(b, nil, nil, nil)
	if err != nil {
		panic(fmt.Sprintf("rcnet: dense rescue solve failed: %v", err))
	}
	return x
}

// rhs builds P + G_amb·T_amb.
func (s *Solver) rhs(power []float64) []float64 {
	if len(power) != s.net.N() {
		panic(fmt.Sprintf("rcnet: power vector length %d, want %d", len(power), s.net.N()))
	}
	rhs := make([]float64, len(power))
	for i := range rhs {
		rhs[i] = power[i] + s.ambRHS[i]
	}
	return rhs
}

// AmbientVector returns temperatures all equal to the ambient, the usual
// cold-start initial condition.
func (s *Solver) AmbientVector() []float64 {
	t := make([]float64, s.net.N())
	linalg.Fill(t, s.net.ambient)
	return t
}

// derivs computes dT/dt = C⁻¹ (P + G_amb·T_amb − A·T). The A·T product goes
// through the operator, so it costs O(nnz) on the sparse backend instead of
// the dense O(n²) row sweep.
func (s *Solver) derivs(power []float64) ode.Derivs {
	at := make([]float64, s.net.N())
	return func(_ float64, temp, dst []float64) {
		s.op.Apply(temp, at)
		for i := range dst {
			dst[i] = (power[i] + s.ambRHS[i] - at[i]) * s.invCap[i]
		}
	}
}

// TransientOptions configure transient integration.
type TransientOptions struct {
	// AbsTol is the adaptive-RK4 per-step tolerance in Kelvin
	// (default 1e-4 K).
	AbsTol float64
	// MaxStep caps the adaptive integrator's step size (0 = no cap). Use it
	// to bound the power-constant interval or to force resolution of fast
	// features the error estimator might step over.
	MaxStep float64
}

// Transient advances temp (in place) by duration seconds under constant
// power using the adaptive RK4 integrator. Returns integrator statistics.
func (s *Solver) Transient(temp, power []float64, duration float64, opt TransientOptions) (ode.Stats, error) {
	if len(temp) != s.net.N() {
		return ode.Stats{}, fmt.Errorf("rcnet: temperature vector length %d, want %d", len(temp), s.net.N())
	}
	aOpt := ode.AdaptiveOptions{AbsTol: opt.AbsTol, MaxStep: opt.MaxStep}
	return ode.AdaptiveRK4(s.derivs(power), 0, temp, duration, aOpt)
}

// beOperator derives the backward-Euler operator (C/dt + A) from the
// conductance operator. On the direct backends the shift reuses the
// conductance operator's symbolic analysis and performs a numeric
// refactorization only.
func (s *Solver) beOperator(dt float64) (linalg.Operator, error) {
	shift := make([]float64, s.net.N())
	for i, c := range s.net.cap {
		shift[i] = c / dt
	}
	op, err := s.baseOp().Shift(shift)
	if err != nil {
		return nil, fmt.Errorf("rcnet: backward Euler operator: %w", err)
	}
	if !op.Iterative() {
		s.stats.factorizations.Add(1)
	}
	return op, nil
}

// beOperatorCached returns the backward-Euler operator for dt through the
// per-solver cache: one factorization per (solver, dt), single-flight, any
// number of concurrent sessions. Past beCacheCap distinct step sizes new
// operators are built uncached.
func (s *Solver) beOperatorCached(dt float64) (linalg.Operator, error) {
	s.beMu.Lock()
	e, ok := s.beOps[dt]
	if !ok {
		if len(s.beOps) >= beCacheCap {
			s.beMu.Unlock()
			return s.beOperator(dt)
		}
		e = &beEntry{}
		s.beOps[dt] = e
	}
	s.beMu.Unlock()
	e.once.Do(func() { e.op, e.err = s.beOperator(dt) })
	if ok && e.err == nil {
		s.stats.factorReuses.Add(1)
	}
	return e.op, e.err
}

// StepBE advances temp (in place) by one backward-Euler step of size dt
// under constant power. Backward Euler is unconditionally stable, which
// makes it the right integrator for the stiff networks that mix the tiny
// oil-boundary-layer capacitance with the large heatsink capacitance. The
// (C/dt + A) operator is cached across calls with the same dt; the solve is
// warm-started from the current temperatures on the iterative backend. On
// error, temp is left unchanged.
func (s *Solver) StepBE(temp, power []float64, dt float64) error {
	if len(temp) != s.net.N() {
		return fmt.Errorf("rcnet: temperature vector length %d, want %d", len(temp), s.net.N())
	}
	if s.serial == nil {
		s.serial = s.newSession()
	}
	return s.serial.stepBE(temp, power, dt)
}

// TransientBE advances temp by duration using fixed backward-Euler steps of
// size dt (the final step is shortened to land on the end time).
func (s *Solver) TransientBE(temp, power []float64, duration, dt float64) error {
	if duration <= 0 {
		return fmt.Errorf("rcnet: non-positive duration %g", duration)
	}
	t := 0.0
	for t < duration-1e-15*duration {
		step := dt
		if step > duration-t {
			step = duration - t
		}
		if err := s.StepBE(temp, power, step); err != nil {
			return err
		}
		t += step
	}
	return nil
}

// Sample is one point of a recorded transient trace.
type Sample struct {
	Time float64
	Temp []float64 // copy of all node temperatures, K
}

// session is an independent backward-Euler stepping context: its own solve
// workspace and scratch buffers, plus a reference to the solver-cached
// backward-Euler operator for its current step size. Concurrent trace
// replays on one Solver each get a session, so the mutable state they share
// is limited to the solver's factor cache and atomic counters.
type session struct {
	s        *Solver
	ws       linalg.Workspace
	rhs, sol []float64
	capDt    []float64 // C/dt for the current step size (hot-path rhs term)
	step     float64
	op       linalg.Operator
	iter     bool   // op.Iterative(), cached off the hot path
	nsteps   uint64 // steps taken; drives the 1-in-8 latency sampling

	// Reduced-path state: red is the current operator when it is a reduced
	// projection (nil otherwise), epoch the solver epoch it was fetched at,
	// res the residual-check scratch. All unused on full-backend solvers.
	red   *linalg.ReducedOperator
	epoch uint32
	res   []float64
}

func (s *Solver) newSession() *session {
	n := s.net.N()
	return &session{s: s, rhs: make([]float64, n), sol: make([]float64, n), capDt: make([]float64, n)}
}

// stepBE performs one backward-Euler step. temp is updated only by a
// successful solve: iterative solves land in session scratch first, direct
// solves cannot fail after factorization.
func (ss *session) stepBE(temp, power []float64, dt float64) error {
	if !(dt > 0) || math.IsInf(dt, 0) {
		// NaN must be rejected here, not just nonsense-tolerated: it would
		// both poison the solver's (dt → factor) cache (NaN map keys never
		// match a lookup) and factor to silent NaN temperatures.
		return fmt.Errorf("rcnet: invalid step %g", dt)
	}
	net := ss.s.net
	if len(power) != net.N() {
		panic(fmt.Sprintf("rcnet: power vector length %d, want %d", len(power), net.N()))
	}
	if ss.op == nil || ss.step != dt || (ss.s.reduced != nil && ss.epoch != ss.s.epoch.Load()) {
		op, err := ss.s.beOperatorCached(dt)
		if err != nil {
			return err
		}
		ss.op, ss.step, ss.iter = op, dt, op.Iterative()
		for i, c := range net.cap {
			ss.capDt[i] = c / dt
		}
		ss.red, _ = op.(*linalg.ReducedOperator)
		if ss.s.reduced != nil {
			ss.epoch = ss.s.epoch.Load()
			if ss.red != nil && ss.res == nil {
				ss.res = make([]float64, net.N())
			}
		}
	}
	ambRHS, capDt := ss.s.ambRHS, ss.capDt
	for i := range ss.rhs {
		ss.rhs[i] = power[i] + ambRHS[i] + capDt[i]*temp[i]
	}
	// Solve latency is sampled one step in eight: two clock reads per step
	// would cost ~10% of a small model's triangular solve.
	sample := ss.nsteps&7 == 0
	ss.nsteps++
	var start time.Time
	if sample {
		start = time.Now()
	}
	st := &ss.s.stats
	if ss.iter {
		// Iterative solves land in session scratch and are copied into temp
		// only on success, so a stalled solve cannot corrupt the caller's
		// state.
		if _, err := ss.op.Solve(ss.rhs, temp, ss.sol, &ss.ws); err != nil {
			return fmt.Errorf("rcnet: backward Euler solve: %w", err)
		}
		if sample {
			st.stepSolveNanos.Add(8 * int64(time.Since(start)))
		}
		st.cgSteps.Add(1)
		st.cgIterations.Add(int64(ss.ws.LastIterations))
		copy(temp, ss.sol)
		return nil
	}
	if ss.red != nil {
		// Reduced solves land in session scratch so a sampled residual
		// check can reject the step before the caller's state changes.
		if _, err := ss.op.Solve(ss.rhs, nil, ss.sol, &ss.ws); err != nil {
			return fmt.Errorf("rcnet: backward Euler solve: %w", err)
		}
		if sample {
			st.stepSolveNanos.Add(8 * int64(time.Since(start)))
			if !ss.s.checkReducedResidual(ss.red, ss.rhs, ss.sol, ss.res) {
				// Gate tripped: the solver switched to the full backend.
				// Redo this step through it (temp is still the pre-step
				// state; the refetch at the top picks up the new epoch).
				ss.op = nil
				return ss.stepBE(temp, power, dt)
			}
		}
		st.directSteps.Add(1)
		st.reducedSteps.Add(1)
		copy(temp, ss.sol)
		return nil
	}
	// Direct solves cannot fail after factorization and write the result
	// only in their final permutation scatter, so they may target temp
	// in place (no scratch copy).
	if _, err := ss.op.Solve(ss.rhs, nil, temp, &ss.ws); err != nil {
		return fmt.Errorf("rcnet: backward Euler solve: %w", err)
	}
	if sample {
		st.stepSolveNanos.Add(8 * int64(time.Since(start)))
	}
	st.directSteps.Add(1)
	st.absorbKernels(&ss.ws)
	return nil
}

// TransientTrace integrates for duration under a time-varying power schedule
// and records the state every sampleEvery seconds (plus the final state).
// The schedule callback fills power for the interval beginning at time t; it
// is invoked once per sample interval, so sampleEvery is also the power
// update granularity (exactly how trace-driven HotSpot simulation works).
//
// All mutable solver state lives in a per-call session, so TransientTrace
// may be called concurrently from multiple goroutines on one Solver (each
// call with its own temp vector and schedule).
func (s *Solver) TransientTrace(temp []float64, schedule func(t float64, power []float64), duration, sampleEvery float64) ([]Sample, error) {
	return s.transientTrace(s.newSession(), temp, schedule, duration, sampleEvery)
}

// transientTrace is TransientTrace against a caller-owned session, so batch
// workers can reuse one session (and its cached BE operator) across jobs.
func (s *Solver) transientTrace(ses *session, temp []float64, schedule func(t float64, power []float64), duration, sampleEvery float64) ([]Sample, error) {
	if len(temp) != s.net.N() {
		return nil, fmt.Errorf("rcnet: temperature vector length %d, want %d", len(temp), s.net.N())
	}
	if sampleEvery <= 0 || duration <= 0 {
		return nil, fmt.Errorf("rcnet: invalid trace parameters duration=%g sample=%g", duration, sampleEvery)
	}
	power := make([]float64, s.net.N())
	var out []Sample
	record := func(t float64) {
		cp := make([]float64, len(temp))
		copy(cp, temp)
		out = append(out, Sample{Time: t, Temp: cp})
	}
	record(0)
	t := 0.0
	for t < duration-1e-12*duration {
		step := sampleEvery
		if step > duration-t {
			step = duration - t
		}
		schedule(t, power)
		if err := ses.stepBE(temp, power, step); err != nil {
			return nil, err
		}
		t += step
		record(t)
	}
	return out, nil
}

// TraceJob describes one independent trace replay for TransientBatch: an
// initial temperature state (advanced in place), a power schedule, and the
// replay window. Schedule follows the TransientTrace contract.
type TraceJob struct {
	Temp        []float64
	Schedule    func(t float64, power []float64)
	Duration    float64
	SampleEvery float64
}

// validateTraceJob checks a TraceJob's replay window, schedule and state
// vector before any stepping happens.
func (s *Solver) validateTraceJob(job TraceJob) error {
	if job.Schedule == nil {
		return fmt.Errorf("nil power schedule")
	}
	if !(job.Duration > 0) {
		return fmt.Errorf("empty trace: non-positive duration %g", job.Duration)
	}
	if !(job.SampleEvery > 0) {
		return fmt.Errorf("non-positive sample interval %g", job.SampleEvery)
	}
	if len(job.Temp) != s.net.N() {
		return fmt.Errorf("temperature vector length %d, want %d", len(job.Temp), s.net.N())
	}
	return nil
}

// DominantTimeConstant estimates the slowest thermal time constant of the
// network (seconds) by power iteration on A⁻¹·C. This is the long-term
// warmup constant discussed in §4.1.1 of the paper. Safe for concurrent use.
func (s *Solver) DominantTimeConstant() float64 {
	sz := s.net.N()
	v := make([]float64, sz)
	linalg.Fill(v, 1)
	ws := s.getWS()
	defer s.putWS(ws)
	solve := func(b, warm []float64) []float64 {
		x, err := s.baseOp().Solve(b, warm, nil, ws)
		if err != nil {
			return s.rescueSolve(b)
		}
		return x
	}
	var lambda float64
	for it := 0; it < 200; it++ {
		// w = A⁻¹ C v, warm-started from the previous iterate.
		w := solve(scaleCopy(s.net.cap, v), v)
		norm := linalg.Norm2(w)
		if norm == 0 {
			return 0
		}
		linalg.Scale(1/norm, w)
		newLambda := linalg.Dot(w, solve(scaleCopy(s.net.cap, w), w))
		if math.Abs(newLambda-lambda) < 1e-12*math.Abs(newLambda) {
			return newLambda
		}
		lambda = newLambda
		v = w
	}
	return lambda
}

func scaleCopy(c, v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = c[i] * v[i]
	}
	return out
}

// HeatFlowToAmbient returns, for the given temperature field, the heat (W)
// leaving the network through each node's ambient conductance. Summed over
// all nodes at steady state it equals the injected power (energy
// conservation).
func (s *Solver) HeatFlowToAmbient(temp []float64) []float64 {
	out := make([]float64, s.net.N())
	for i := range out {
		out[i] = s.net.ambG[i] * (temp[i] - s.net.ambient)
	}
	return out
}
