// Package rcnet models lumped thermal RC networks: nodes with heat
// capacitances, thermal conductances between nodes, conductances to a fixed
// ambient, and per-node power injection. It provides steady-state solves,
// explicit (adaptive RK4) and implicit (backward Euler) transient
// integration, and dominant-time-constant extraction.
//
// The electrical analogy follows the paper's Fig. 7: temperature ↔ voltage,
// heat flow ↔ current, thermal resistance ↔ electrical resistance, heat
// capacity ↔ capacitance, dissipated power ↔ current source, ambient ↔
// ground at T_amb.
package rcnet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/linalg"
	"repro/internal/ode"
)

// Network is a thermal RC network under construction. The zero value is not
// usable; create one with New.
type Network struct {
	names   []string
	byName  map[string]int
	cap     []float64 // heat capacitance per node, J/K
	ambG    []float64 // conductance to ambient per node, W/K
	pairs   map[[2]int]float64
	ambient float64 // ambient temperature, K
}

// New creates an empty network with the given ambient temperature (Kelvin).
func New(ambient float64) *Network {
	return &Network{
		byName:  make(map[string]int),
		pairs:   make(map[[2]int]float64),
		ambient: ambient,
	}
}

// Ambient returns the ambient temperature in Kelvin.
func (n *Network) Ambient() float64 { return n.ambient }

// N returns the number of nodes.
func (n *Network) N() int { return len(n.names) }

// AddNode adds a node with the given heat capacitance (J/K) and returns its
// index. Capacitance must be positive: the transient solvers integrate every
// node as a dynamic state. (Physically tiny layers get their physically tiny
// capacitance, which the implicit integrator handles without trouble.)
func (n *Network) AddNode(name string, capacitance float64) int {
	if name == "" {
		panic("rcnet: empty node name")
	}
	if _, dup := n.byName[name]; dup {
		panic(fmt.Sprintf("rcnet: duplicate node %q", name))
	}
	if capacitance <= 0 || math.IsNaN(capacitance) {
		panic(fmt.Sprintf("rcnet: node %q needs positive capacitance, got %g", name, capacitance))
	}
	idx := len(n.names)
	n.names = append(n.names, name)
	n.byName[name] = idx
	n.cap = append(n.cap, capacitance)
	n.ambG = append(n.ambG, 0)
	return idx
}

// Index returns the index of the named node, or -1.
func (n *Network) Index(name string) int {
	if i, ok := n.byName[name]; ok {
		return i
	}
	return -1
}

// Name returns the name of node i.
func (n *Network) Name(i int) string { return n.names[i] }

// Capacitance returns the heat capacitance of node i (J/K).
func (n *Network) Capacitance(i int) float64 { return n.cap[i] }

// Connect adds a thermal conductance g = 1/R (W/K) between nodes i and j.
// Repeated calls accumulate (parallel resistances).
func (n *Network) Connect(i, j int, g float64) {
	if i == j {
		panic("rcnet: self connection")
	}
	if g <= 0 || math.IsInf(g, 0) || math.IsNaN(g) {
		panic(fmt.Sprintf("rcnet: invalid conductance %g between %d and %d", g, i, j))
	}
	n.checkIndex(i)
	n.checkIndex(j)
	if i > j {
		i, j = j, i
	}
	n.pairs[[2]int{i, j}] += g
}

// ConnectR is Connect expressed as a resistance (K/W).
func (n *Network) ConnectR(i, j int, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("rcnet: invalid resistance %g", r))
	}
	n.Connect(i, j, 1/r)
}

// ConnectAmbient adds conductance g (W/K) from node i to the ambient.
func (n *Network) ConnectAmbient(i int, g float64) {
	if g <= 0 || math.IsInf(g, 0) || math.IsNaN(g) {
		panic(fmt.Sprintf("rcnet: invalid ambient conductance %g at %d", g, i))
	}
	n.checkIndex(i)
	n.ambG[i] += g
}

// ConnectAmbientR is ConnectAmbient expressed as a resistance (K/W).
func (n *Network) ConnectAmbientR(i int, r float64) {
	if r <= 0 {
		panic(fmt.Sprintf("rcnet: invalid ambient resistance %g", r))
	}
	n.ConnectAmbient(i, 1/r)
}

func (n *Network) checkIndex(i int) {
	if i < 0 || i >= len(n.names) {
		panic(fmt.Sprintf("rcnet: node index %d out of range", i))
	}
}

// Solver is an assembled network ready for simulation. It caches the dense
// conductance matrix and its factorizations. Create with Compile; a Solver
// must not outlive subsequent mutations of its Network.
type Solver struct {
	net *Network
	// a is the conductance (Laplacian + ambient) matrix: a[i][i] holds the
	// sum of all conductances incident to i, a[i][j] = -g(i,j).
	a      *linalg.Matrix
	lu     *linalg.LU
	invCap []float64

	// Backward-Euler cache, keyed by step size.
	beStep float64
	beLU   *linalg.LU
}

// Compile assembles the network into a solver. It verifies every node has a
// path to ambient (otherwise the steady state is unbounded).
func (n *Network) Compile() (*Solver, error) {
	sz := n.N()
	if sz == 0 {
		return nil, fmt.Errorf("rcnet: empty network")
	}
	a := linalg.NewMatrix(sz, sz)
	// Assemble in sorted pair order so floating-point accumulation (and
	// therefore every downstream result) is deterministic across runs.
	keys := make([][2]int, 0, len(n.pairs))
	for ij := range n.pairs {
		keys = append(keys, ij)
	}
	sort.Slice(keys, func(x, y int) bool {
		if keys[x][0] != keys[y][0] {
			return keys[x][0] < keys[y][0]
		}
		return keys[x][1] < keys[y][1]
	})
	for _, ij := range keys {
		g := n.pairs[ij]
		i, j := ij[0], ij[1]
		a.Add(i, i, g)
		a.Add(j, j, g)
		a.Add(i, j, -g)
		a.Add(j, i, -g)
	}
	for i, g := range n.ambG {
		a.Add(i, i, g)
	}
	lu, err := linalg.FactorLU(a)
	if err != nil {
		return nil, fmt.Errorf("rcnet: network has no path to ambient (floating island): %w", err)
	}
	inv := make([]float64, sz)
	for i, c := range n.cap {
		inv[i] = 1 / c
	}
	return &Solver{net: n, a: a, lu: lu, invCap: inv}, nil
}

// Net returns the underlying network.
func (s *Solver) Net() *Network { return s.net }

// SteadyState returns the equilibrium temperatures (Kelvin) for constant
// per-node power injection (W). power must have length N.
func (s *Solver) SteadyState(power []float64) []float64 {
	rhs := s.rhs(power)
	return s.lu.Solve(rhs)
}

// rhs builds P + G_amb·T_amb.
func (s *Solver) rhs(power []float64) []float64 {
	if len(power) != s.net.N() {
		panic(fmt.Sprintf("rcnet: power vector length %d, want %d", len(power), s.net.N()))
	}
	rhs := make([]float64, len(power))
	for i := range rhs {
		rhs[i] = power[i] + s.net.ambG[i]*s.net.ambient
	}
	return rhs
}

// AmbientVector returns temperatures all equal to the ambient, the usual
// cold-start initial condition.
func (s *Solver) AmbientVector() []float64 {
	t := make([]float64, s.net.N())
	linalg.Fill(t, s.net.ambient)
	return t
}

// derivs computes dT/dt = C⁻¹ (P + G_amb·T_amb − A·T).
func (s *Solver) derivs(power []float64) ode.Derivs {
	return func(_ float64, temp, dst []float64) {
		sz := s.net.N()
		for i := 0; i < sz; i++ {
			row := s.a.Row(i)
			acc := power[i] + s.net.ambG[i]*s.net.ambient
			for j, g := range row {
				acc -= g * temp[j]
			}
			dst[i] = acc * s.invCap[i]
		}
	}
}

// TransientOptions configure transient integration.
type TransientOptions struct {
	// AbsTol is the adaptive-RK4 per-step tolerance in Kelvin
	// (default 1e-4 K).
	AbsTol float64
	// MaxStep caps the integration step (0 = duration/16 initial,
	// unlimited growth).
	MaxStep float64
}

// Transient advances temp (in place) by duration seconds under constant
// power using the adaptive RK4 integrator. Returns integrator statistics.
func (s *Solver) Transient(temp, power []float64, duration float64, opt TransientOptions) (ode.Stats, error) {
	if len(temp) != s.net.N() {
		return ode.Stats{}, fmt.Errorf("rcnet: temperature vector length %d, want %d", len(temp), s.net.N())
	}
	aOpt := ode.AdaptiveOptions{AbsTol: opt.AbsTol}
	if opt.MaxStep > 0 {
		aOpt.InitialStep = opt.MaxStep
	}
	return ode.AdaptiveRK4(s.derivs(power), 0, temp, duration, aOpt)
}

// StepBE advances temp (in place) by one backward-Euler step of size dt
// under constant power. Backward Euler is unconditionally stable, which
// makes it the right integrator for the stiff networks that mix the tiny
// oil-boundary-layer capacitance with the large heatsink capacitance. The
// factorization of (C/dt + A) is cached across calls with the same dt.
func (s *Solver) StepBE(temp, power []float64, dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("rcnet: non-positive step %g", dt)
	}
	if len(temp) != s.net.N() {
		return fmt.Errorf("rcnet: temperature vector length %d, want %d", len(temp), s.net.N())
	}
	if s.beLU == nil || s.beStep != dt {
		m := s.a.Clone()
		for i := 0; i < m.Rows; i++ {
			m.Add(i, i, s.net.cap[i]/dt)
		}
		lu, err := linalg.FactorLU(m)
		if err != nil {
			return fmt.Errorf("rcnet: backward Euler factorization: %w", err)
		}
		s.beLU = lu
		s.beStep = dt
	}
	rhs := s.rhs(power)
	for i := range rhs {
		rhs[i] += s.net.cap[i] / dt * temp[i]
	}
	copy(temp, s.beLU.Solve(rhs))
	return nil
}

// TransientBE advances temp by duration using fixed backward-Euler steps of
// size dt (the final step is shortened to land on the end time).
func (s *Solver) TransientBE(temp, power []float64, duration, dt float64) error {
	if duration <= 0 {
		return fmt.Errorf("rcnet: non-positive duration %g", duration)
	}
	t := 0.0
	for t < duration-1e-15*duration {
		step := dt
		if step > duration-t {
			step = duration - t
		}
		if err := s.StepBE(temp, power, step); err != nil {
			return err
		}
		t += step
	}
	return nil
}

// Sample is one point of a recorded transient trace.
type Sample struct {
	Time float64
	Temp []float64 // copy of all node temperatures, K
}

// TransientTrace integrates for duration under a time-varying power schedule
// and records the state every sampleEvery seconds (plus the final state).
// The schedule callback fills power for the interval beginning at time t; it
// is invoked once per sample interval, so sampleEvery is also the power
// update granularity (exactly how trace-driven HotSpot simulation works).
func (s *Solver) TransientTrace(temp []float64, schedule func(t float64, power []float64), duration, sampleEvery float64) ([]Sample, error) {
	if sampleEvery <= 0 || duration <= 0 {
		return nil, fmt.Errorf("rcnet: invalid trace parameters duration=%g sample=%g", duration, sampleEvery)
	}
	power := make([]float64, s.net.N())
	var out []Sample
	record := func(t float64) {
		cp := make([]float64, len(temp))
		copy(cp, temp)
		out = append(out, Sample{Time: t, Temp: cp})
	}
	record(0)
	t := 0.0
	for t < duration-1e-12*duration {
		step := sampleEvery
		if step > duration-t {
			step = duration - t
		}
		schedule(t, power)
		if err := s.StepBE(temp, power, step); err != nil {
			return nil, err
		}
		t += step
		record(t)
	}
	return out, nil
}

// DominantTimeConstant estimates the slowest thermal time constant of the
// network (seconds) by power iteration on A⁻¹·C. This is the long-term
// warmup constant discussed in §4.1.1 of the paper.
func (s *Solver) DominantTimeConstant() float64 {
	sz := s.net.N()
	v := make([]float64, sz)
	linalg.Fill(v, 1)
	var lambda float64
	for it := 0; it < 200; it++ {
		// w = A⁻¹ C v
		cv := make([]float64, sz)
		for i := range cv {
			cv[i] = s.net.cap[i] * v[i]
		}
		w := s.lu.Solve(cv)
		norm := linalg.Norm2(w)
		if norm == 0 {
			return 0
		}
		linalg.Scale(1/norm, w)
		newLambda := linalg.Dot(w, s.lu.Solve(scaleCopy(s.net.cap, w)))
		if math.Abs(newLambda-lambda) < 1e-12*math.Abs(newLambda) {
			return newLambda
		}
		lambda = newLambda
		v = w
	}
	return lambda
}

func scaleCopy(c, v []float64) []float64 {
	out := make([]float64, len(v))
	for i := range v {
		out[i] = c[i] * v[i]
	}
	return out
}

// HeatFlowToAmbient returns, for the given temperature field, the heat (W)
// leaving the network through each node's ambient conductance. Summed over
// all nodes at steady state it equals the injected power (energy
// conservation).
func (s *Solver) HeatFlowToAmbient(temp []float64) []float64 {
	out := make([]float64, s.net.N())
	for i := range out {
		out[i] = s.net.ambG[i] * (temp[i] - s.net.ambient)
	}
	return out
}
