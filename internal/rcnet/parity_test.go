package rcnet

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// gridNetwork builds a floorplan-shaped RC network: an nx×ny silicon grid
// with 4-neighbor lateral conductances, each cell tied to a per-cell oil
// boundary node (small capacitance — the stiff part), and the oil nodes tied
// to ambient. Conductances and capacitances are randomized within physical
// ranges so the parity property is exercised across many system shapes.
func gridNetwork(rng *rand.Rand, nx, ny int) *Network {
	n := New(300 + 20*rng.Float64())
	si := make([]int, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			si[iy*nx+ix] = n.AddNode(fmt.Sprintf("si:%d_%d", ix, iy), 0.01+0.05*rng.Float64())
		}
	}
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			c := si[iy*nx+ix]
			if ix+1 < nx {
				n.Connect(c, si[iy*nx+ix+1], 0.5+2*rng.Float64())
			}
			if iy+1 < ny {
				n.Connect(c, si[(iy+1)*nx+ix], 0.5+2*rng.Float64())
			}
		}
	}
	for i, c := range si {
		oil := n.AddNode(fmt.Sprintf("oil:%d", i), 1e-4+1e-3*rng.Float64())
		n.Connect(c, oil, 0.2+rng.Float64())
		n.ConnectAmbient(oil, 0.1+rng.Float64())
	}
	return n
}

func randomPower(rng *rand.Rand, n int) []float64 {
	p := make([]float64, n)
	for i := range p {
		if rng.Float64() < 0.3 {
			p[i] = 5 * rng.Float64()
		}
	}
	return p
}

// compileBoth compiles one network onto both backends.
func compileBoth(t *testing.T, n *Network) (dense, sparse *Solver) {
	t.Helper()
	d, err := n.CompileWith(linalg.DenseBackend{})
	if err != nil {
		t.Fatalf("dense compile: %v", err)
	}
	s, err := n.CompileWith(linalg.SparseBackend{})
	if err != nil {
		t.Fatalf("sparse compile: %v", err)
	}
	return d, s
}

// TestBackendParitySteadyState: dense LU and sparse CG must agree on the
// steady state of random floorplan-shaped networks to tight tolerance. This
// is the refactor's safety net: the dense path is the oracle.
func TestBackendParitySteadyState(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nx, ny := 3+rng.Intn(6), 3+rng.Intn(6)
		net := gridNetwork(rng, nx, ny)
		dense, sparse := compileBoth(t, net)
		p := randomPower(rng, net.N())
		td := dense.SteadyState(p)
		ts := sparse.SteadyState(p)
		for i := range td {
			rise := math.Max(1, td[i]-net.Ambient())
			if d := math.Abs(td[i] - ts[i]); d > 1e-7*rise {
				t.Fatalf("seed %d (%dx%d): steady node %d dense %.12g vs sparse %.12g (Δ=%g)",
					seed, nx, ny, i, td[i], ts[i], d)
			}
		}
	}
}

// TestBackendParityTransientBE: fixed-step backward-Euler transients must
// track between backends, including a step-size change mid-run (exercising
// the cached shifted operator on both).
func TestBackendParityTransientBE(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		net := gridNetwork(rng, 4, 4)
		dense, sparse := compileBoth(t, net)
		p := randomPower(rng, net.N())
		td := dense.AmbientVector()
		ts := sparse.AmbientVector()
		for _, leg := range []struct{ dur, dt float64 }{{0.5, 0.01}, {0.2, 0.004}} {
			if err := dense.TransientBE(td, p, leg.dur, leg.dt); err != nil {
				t.Fatal(err)
			}
			if err := sparse.TransientBE(ts, p, leg.dur, leg.dt); err != nil {
				t.Fatal(err)
			}
		}
		for i := range td {
			if d := math.Abs(td[i] - ts[i]); d > 1e-5 {
				t.Fatalf("seed %d: BE node %d dense %.12g vs sparse %.12g (Δ=%g)", seed, i, td[i], ts[i], d)
			}
		}
	}
}

// TestBackendParityTrace: trace-driven replay (time-varying power) agrees
// between backends.
func TestBackendParityTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := gridNetwork(rng, 5, 4)
	dense, sparse := compileBoth(t, net)
	p1 := randomPower(rng, net.N())
	p2 := randomPower(rng, net.N())
	schedule := func(tm float64, p []float64) {
		src := p1
		if tm >= 0.25 {
			src = p2
		}
		copy(p, src)
	}
	td := dense.AmbientVector()
	ts := sparse.AmbientVector()
	sd, err := dense.TransientTrace(td, schedule, 0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := sparse.TransientTrace(ts, schedule, 0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(sd) != len(ss) {
		t.Fatalf("sample counts differ: %d vs %d", len(sd), len(ss))
	}
	for k := range sd {
		for i := range sd[k].Temp {
			if d := math.Abs(sd[k].Temp[i] - ss[k].Temp[i]); d > 1e-5 {
				t.Fatalf("sample %d node %d: dense %.12g vs sparse %.12g", k, i, sd[k].Temp[i], ss[k].Temp[i])
			}
		}
	}
}

// TestCompileSelectsBackendBySize: the automatic selection must route tiny
// networks to dense LU and everything floorplan-shaped (modest fill) to the
// sparse direct Cholesky path, with the SolverHint escape hatch forcing any
// backend.
func TestCompileSelectsBackendBySize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tiny := New(300)
	a := tiny.AddNode("a", 1)
	bn := tiny.AddNode("b", 1)
	tiny.Connect(a, bn, 2)
	tiny.ConnectAmbient(a, 1)
	s1, err := tiny.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if s1.Backend() != "dense" {
		t.Fatalf("tiny network compiled onto %q, want dense", s1.Backend())
	}
	small := gridNetwork(rng, 3, 3) // 18 nodes: already past DenseCutoff
	sSmall, err := small.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if sSmall.Backend() != "cholesky" {
		t.Fatalf("small network compiled onto %q, want cholesky", sSmall.Backend())
	}
	big := gridNetwork(rng, 10, 10) // 200 nodes
	s2, err := big.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Backend() != "cholesky" {
		t.Fatalf("big network compiled onto %q, want cholesky", s2.Backend())
	}
	for hint, want := range map[SolverHint]string{
		HintDense:    "dense",
		HintCholesky: "cholesky",
		HintCG:       "sparse",
	} {
		s, err := big.CompileHint(hint)
		if err != nil {
			t.Fatalf("hint %v: %v", hint, err)
		}
		if s.Backend() != want {
			t.Fatalf("hint %v compiled onto %q, want %q", hint, s.Backend(), want)
		}
	}
}

// TestFloatingIslandRejectedBothBackends: the structural ground check must
// fire for both backends (the iterative backend cannot rely on a
// factorization failure).
func TestFloatingIslandRejectedBothBackends(t *testing.T) {
	for _, backend := range []linalg.Backend{linalg.DenseBackend{}, linalg.SparseBackend{}} {
		n := New(300)
		n.AddNode("a", 1)
		b := n.AddNode("b", 1)
		n.ConnectAmbientR(b, 1)
		if _, err := n.CompileWith(backend); err == nil {
			t.Fatalf("%s: expected floating-island error", backend.Name())
		}
	}
}

// TestTransientBatchMatchesSerial: the worker-pool batch must produce
// bit-for-bit the same samples as serial replays of the same jobs, on both
// the auto-selected (Cholesky) path and the CG path.
func TestTransientBatchMatchesSerial(t *testing.T) {
	for _, hint := range []SolverHint{HintAuto, HintCG} {
		t.Run(hint.String(), func(t *testing.T) { testTransientBatchMatchesSerial(t, hint) })
	}
}

func testTransientBatchMatchesSerial(t *testing.T, hint SolverHint) {
	rng := rand.New(rand.NewSource(9))
	net := gridNetwork(rng, 6, 6)
	s, err := net.CompileHint(hint)
	if err != nil {
		t.Fatal(err)
	}
	want72 := "cholesky"
	if hint == HintCG {
		want72 = "sparse"
	}
	if s.Backend() != want72 {
		t.Fatalf("hint %v: compiled onto %q, want %q", hint, s.Backend(), want72)
	}
	const jobs = 6
	powers := make([][]float64, jobs)
	for j := range powers {
		powers[j] = randomPower(rng, net.N())
	}
	mkJobs := func() []TraceJob {
		out := make([]TraceJob, jobs)
		for j := range out {
			p := powers[j]
			out[j] = TraceJob{
				Temp:        s.AmbientVector(),
				Schedule:    func(_ float64, dst []float64) { copy(dst, p) },
				Duration:    0.3,
				SampleEvery: 0.03,
			}
		}
		return out
	}
	serial := mkJobs()
	want := make([][]Sample, jobs)
	for j := range serial {
		w, err := s.TransientTrace(serial[j].Temp, serial[j].Schedule, serial[j].Duration, serial[j].SampleEvery)
		if err != nil {
			t.Fatal(err)
		}
		want[j] = w
	}
	got, err := s.TransientBatch(mkJobs(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if len(got[j]) != len(want[j]) {
			t.Fatalf("job %d: %d samples vs %d", j, len(got[j]), len(want[j]))
		}
		for k := range want[j] {
			for i := range want[j][k].Temp {
				if got[j][k].Temp[i] != want[j][k].Temp[i] {
					t.Fatalf("job %d sample %d node %d: batch %.17g vs serial %.17g",
						j, k, i, got[j][k].Temp[i], want[j][k].Temp[i])
				}
			}
		}
	}
}

// TestTransientBatchReportsJobError: a bad job must surface its error with
// the job index while the good jobs still complete.
func TestTransientBatchReportsJobError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := gridNetwork(rng, 3, 3)
	s, err := net.CompileWith(linalg.SparseBackend{})
	if err != nil {
		t.Fatal(err)
	}
	p := randomPower(rng, net.N())
	good := TraceJob{
		Temp:        s.AmbientVector(),
		Schedule:    func(_ float64, dst []float64) { copy(dst, p) },
		Duration:    0.1,
		SampleEvery: 0.02,
	}
	bad := good
	bad.Temp = make([]float64, 1) // wrong length
	res, err := s.TransientBatch([]TraceJob{good, bad}, 2)
	if err == nil {
		t.Fatal("expected an error from the malformed job")
	}
	if res[0] == nil {
		t.Fatal("good job should still have produced samples")
	}
	if res[1] != nil {
		t.Fatal("bad job should have no samples")
	}
}
