package ircam

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
)

// randomFloorplan tiles a randomly-sized die with a random grid of blocks
// whose row heights and column widths are drawn independently, so block
// areas and adjacency patterns vary between trials.
func randomFloorplan(rng *rand.Rand) *floorplan.Floorplan {
	nx := 2 + rng.Intn(3)
	ny := 2 + rng.Intn(3)
	w := (10 + 10*rng.Float64()) * 1e-3
	h := (10 + 10*rng.Float64()) * 1e-3
	cuts := func(n int, total float64) []float64 {
		parts := make([]float64, n)
		var sum float64
		for i := range parts {
			parts[i] = 0.3 + rng.Float64()
			sum += parts[i]
		}
		for i := range parts {
			parts[i] *= total / sum
		}
		return parts
	}
	widths := cuts(nx, w)
	heights := cuts(ny, h)
	var blocks []floorplan.Block
	y := 0.0
	for iy := 0; iy < ny; iy++ {
		x := 0.0
		for ix := 0; ix < nx; ix++ {
			blocks = append(blocks, floorplan.Block{
				Name:  fmt.Sprintf("r%dc%d", iy, ix),
				Width: widths[ix], Height: heights[iy],
				X: x, Y: y,
			})
			x += widths[ix]
		}
		y += heights[iy]
	}
	return floorplan.MustNew(blocks)
}

// TestInvertPowerRecoversInjected is the property test for the influence-
// matrix inversion: on a noiseless synthetic frame, the recovered per-block
// powers must match the injected power map across randomized floorplans,
// flow directions and power patterns. An indexing bug in InfluenceMatrix
// (rows/columns swapped, wrong block order) breaks recovery immediately on
// the asymmetric directional-flow models.
func TestInvertPowerRecoversInjected(t *testing.T) {
	rng := rand.New(rand.NewSource(20090419))
	directions := []hotspot.FlowDirection{
		hotspot.Uniform, hotspot.LeftToRight, hotspot.RightToLeft,
		hotspot.BottomToTop, hotspot.TopToBottom,
	}
	for trial := 0; trial < 8; trial++ {
		fp := randomFloorplan(rng)
		dir := directions[rng.Intn(len(directions))]
		m, err := hotspot.New(hotspot.Config{
			Floorplan: fp,
			Package:   hotspot.OilSilicon,
			AmbientK:  318.15,
			Oil:       hotspot.OilConfig{Direction: dir},
			Secondary: hotspot.SecondaryPathConfig{Enabled: trial%2 == 0},
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		injected := make([]float64, fp.N())
		var maxW float64
		for i := range injected {
			injected[i] = 0.5 + 4.5*rng.Float64()
			if rng.Float64() < 0.25 {
				injected[i] = 0 // some blocks idle
			}
			if injected[i] > maxW {
				maxW = injected[i]
			}
		}
		vec, err := m.BlockPowerVector(injected)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		observed := m.SteadyState(vec).BlocksC()

		recovered, err := InvertPower(m, observed, 1e-10)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range injected {
			if d := math.Abs(recovered[i] - injected[i]); d > 1e-4*maxW+1e-6 {
				t.Fatalf("trial %d (dir %v, %d blocks): block %s recovered %.6f W, injected %.6f W (Δ %.2e)",
					trial, dir, fp.N(), fp.Blocks[i].Name, recovered[i], injected[i], d)
			}
		}
	}
}

// TestInvertPowerSkewedModel is the paper's §5.4 warning as a test: invert
// through a model whose flow direction differs from the measurement and the
// recovered powers are systematically wrong — the property above must NOT
// hold, confirming the test has discriminating power.
func TestInvertPowerSkewedModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fp := randomFloorplan(rng)
	build := func(dir hotspot.FlowDirection) *hotspot.Model {
		m, err := hotspot.New(hotspot.Config{
			Floorplan: fp,
			Package:   hotspot.OilSilicon,
			AmbientK:  318.15,
			Oil:       hotspot.OilConfig{Direction: dir},
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	truth := build(hotspot.LeftToRight)
	skewed := build(hotspot.RightToLeft)

	injected := make([]float64, fp.N())
	for i := range injected {
		injected[i] = 1 + 3*rng.Float64()
	}
	vec, err := truth.BlockPowerVector(injected)
	if err != nil {
		t.Fatal(err)
	}
	observed := truth.SteadyState(vec).BlocksC()
	recovered, err := InvertPower(skewed, observed, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range injected {
		if d := math.Abs(recovered[i] - injected[i]); d > worst {
			worst = d
		}
	}
	if worst < 0.05 {
		t.Fatalf("direction-skewed inversion recovered powers within %.3f W — the skew artifact vanished", worst)
	}
}
