// Package ircam models "what the IR camera actually sees": a frame-rate-
// limited, optically blurred sampler of the die temperature field, plus the
// temperature-to-power reverse engineering (least-squares inversion through
// the thermal model's influence matrix) used by Hamann et al. and
// Mesa-Martinez et al. and discussed in the paper's §5.4 — including the
// artifact that ignoring the oil flow direction skews the recovered powers.
package ircam

import (
	"fmt"
	"math"

	"repro/internal/hotspot"
	"repro/internal/linalg"
	"repro/internal/sensors"
)

// Camera describes an IR thermal camera.
type Camera struct {
	// FrameRate is frames per second (typical lab cameras: 60-200 Hz; the
	// paper notes 3 ms transients are "typically shorter than IR camera's
	// sampling interval").
	FrameRate float64
	// PixelsX, PixelsY is the sensor resolution mapped onto the die.
	PixelsX, PixelsY int
	// PSFSigmaPixels is the optical point-spread Gaussian sigma in pixels.
	PSFSigmaPixels float64
}

// Validate reports configuration errors.
func (c Camera) Validate() error {
	if c.FrameRate <= 0 {
		return fmt.Errorf("ircam: non-positive frame rate %g", c.FrameRate)
	}
	if c.PixelsX <= 0 || c.PixelsY <= 0 {
		return fmt.Errorf("ircam: non-positive resolution %d×%d", c.PixelsX, c.PixelsY)
	}
	if c.PSFSigmaPixels < 0 {
		return fmt.Errorf("ircam: negative PSF sigma")
	}
	return nil
}

// Capture images a die thermal map: resample to the camera resolution and
// apply the optical PSF.
func (c Camera) Capture(m *sensors.ThermalMap) (*sensors.ThermalMap, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	// Resample by area-averaging source cells into camera pixels.
	px := make([]float64, c.PixelsX*c.PixelsY)
	cnt := make([]int, len(px))
	for iy := 0; iy < m.NY; iy++ {
		for ix := 0; ix < m.NX; ix++ {
			cx := ix * c.PixelsX / m.NX
			cy := iy * c.PixelsY / m.NY
			px[cy*c.PixelsX+cx] += m.CellsC[iy*m.NX+ix]
			cnt[cy*c.PixelsX+cx]++
		}
	}
	for i := range px {
		if cnt[i] > 0 {
			px[i] /= float64(cnt[i])
		}
	}
	// Upsampling case: fill empty pixels by nearest source cell.
	for iy := 0; iy < c.PixelsY; iy++ {
		for ix := 0; ix < c.PixelsX; ix++ {
			if cnt[iy*c.PixelsX+ix] == 0 {
				sx := ix * m.NX / c.PixelsX
				sy := iy * m.NY / c.PixelsY
				px[iy*c.PixelsX+ix] = m.CellsC[sy*m.NX+sx]
			}
		}
	}
	if c.PSFSigmaPixels > 0 {
		px = gaussianBlur(px, c.PixelsX, c.PixelsY, c.PSFSigmaPixels)
	}
	return sensors.NewThermalMap(c.PixelsX, c.PixelsY, m.Width, m.Height, px)
}

// gaussianBlur applies a separable Gaussian filter.
func gaussianBlur(src []float64, nx, ny int, sigma float64) []float64 {
	radius := int(math.Ceil(3 * sigma))
	if radius < 1 {
		return src
	}
	kernel := make([]float64, 2*radius+1)
	var sum float64
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
		sum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= sum
	}
	tmp := make([]float64, len(src))
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			var acc float64
			for k := -radius; k <= radius; k++ {
				x := clampInt(ix+k, 0, nx-1)
				acc += kernel[k+radius] * src[iy*nx+x]
			}
			tmp[iy*nx+ix] = acc
		}
	}
	out := make([]float64, len(src))
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			var acc float64
			for k := -radius; k <= radius; k++ {
				y := clampInt(iy+k, 0, ny-1)
				acc += kernel[k+radius] * tmp[y*nx+ix]
			}
			out[iy*nx+ix] = acc
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Frame is one camera observation of per-block temperatures.
type Frame struct {
	Time   float64
	BlockC []float64
}

// FilmTrace decimates a fine-grained temperature trace to the camera frame
// rate: the camera sees only the instants at k/FrameRate. This is the §5.1
// observation that "the limited sampling rate of the IR camera may filter
// out high-frequency transient thermal fluctuations and miss thermal
// violations".
func (c Camera) FilmTrace(points []hotspot.TracePoint) ([]Frame, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("ircam: empty trace")
	}
	period := 1 / c.FrameRate
	var out []Frame
	next := points[0].Time
	for _, p := range points {
		if p.Time >= next-1e-15 {
			out = append(out, Frame{Time: p.Time, BlockC: p.BlockC})
			next += period
		}
	}
	return out, nil
}

// PeakSeen returns the maximum temperature of the named block index across
// frames.
func PeakSeen(frames []Frame, blockIdx int) float64 {
	peak := math.Inf(-1)
	for _, f := range frames {
		if f.BlockC[blockIdx] > peak {
			peak = f.BlockC[blockIdx]
		}
	}
	return peak
}

// TruePeak returns the maximum temperature of the block across the full
// trace.
func TruePeak(points []hotspot.TracePoint, blockIdx int) float64 {
	peak := math.Inf(-1)
	for _, p := range points {
		if p.BlockC[blockIdx] > peak {
			peak = p.BlockC[blockIdx]
		}
	}
	return peak
}

// InfluenceMatrix builds A with A[i][j] = steady-state temperature rise (K)
// of block i per watt in block j, by N steady solves of the model. This is
// the forward operator for power inversion.
func InfluenceMatrix(m *hotspot.Model) *linalg.Matrix {
	fp := m.Floorplan()
	n := fp.N()
	a := linalg.NewMatrix(n, n)
	amb := m.Config().AmbientK
	for j := 0; j < n; j++ {
		p := make([]float64, n)
		p[j] = 1
		vec, err := m.BlockPowerVector(p)
		if err != nil {
			panic(err) // unreachable: p is well-formed by construction
		}
		res := m.SteadyState(vec)
		temps := res.BlocksK()
		for i := 0; i < n; i++ {
			a.Set(i, j, temps[i]-amb)
		}
	}
	return a
}

// InvertPower reverse-engineers per-block power (W) from an observed
// steady-state per-block temperature map (°C) using the given model's
// influence matrix: solve min‖A·p − ΔT‖ with Tikhonov regularization and
// clamp negatives to zero. Passing a model whose flow assumptions differ
// from the measurement conditions produces the systematic skew the paper
// warns about.
func InvertPower(assumed *hotspot.Model, observedBlockC []float64, lambda float64) ([]float64, error) {
	fp := assumed.Floorplan()
	if len(observedBlockC) != fp.N() {
		return nil, fmt.Errorf("ircam: observed %d blocks, floorplan has %d", len(observedBlockC), fp.N())
	}
	a := InfluenceMatrix(assumed)
	ambC := assumed.Config().AmbientK - 273.15
	dT := make([]float64, fp.N())
	for i, v := range observedBlockC {
		dT[i] = v - ambC
	}
	p, err := linalg.LeastSquares(a, dT, lambda)
	if err != nil {
		return nil, err
	}
	for i := range p {
		if p[i] < 0 {
			p[i] = 0
		}
	}
	return p, nil
}
