package ircam

import (
	"math"
	"testing"

	"repro/internal/floorplan"
	"repro/internal/hotspot"
	"repro/internal/sensors"
)

func defaultCam() Camera {
	return Camera{FrameRate: 100, PixelsX: 64, PixelsY: 64, PSFSigmaPixels: 1}
}

func TestCameraValidate(t *testing.T) {
	if err := defaultCam().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := defaultCam()
	bad.FrameRate = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero frame rate should fail")
	}
	bad = defaultCam()
	bad.PixelsX = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero resolution should fail")
	}
	bad = defaultCam()
	bad.PSFSigmaPixels = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative sigma should fail")
	}
}

// spikeMap is uniform 50 °C with one 100 °C pixel at the center.
func spikeMap(t *testing.T, n int) *sensors.ThermalMap {
	t.Helper()
	cells := make([]float64, n*n)
	for i := range cells {
		cells[i] = 50
	}
	cells[(n/2)*n+n/2] = 100
	m, err := sensors.NewThermalMap(n, n, 0.016, 0.016, cells)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCaptureBlursSpike(t *testing.T) {
	m := spikeMap(t, 64)
	cam := Camera{FrameRate: 100, PixelsX: 64, PixelsY: 64, PSFSigmaPixels: 2}
	img, err := cam.Capture(m)
	if err != nil {
		t.Fatal(err)
	}
	trueMax, _, _ := m.Max()
	seenMax, _, _ := img.Max()
	if seenMax >= trueMax-5 {
		t.Fatalf("PSF should smear the spike: %g vs true %g", seenMax, trueMax)
	}
	// Energy conservation-ish: blur must not change the mean much.
	mean := func(cells []float64) float64 {
		var s float64
		for _, v := range cells {
			s += v
		}
		return s / float64(len(cells))
	}
	if d := math.Abs(mean(img.CellsC) - mean(m.CellsC)); d > 0.2 {
		t.Fatalf("blur changed the mean by %g", d)
	}
}

func TestCaptureDownsamples(t *testing.T) {
	m := spikeMap(t, 64)
	cam := Camera{FrameRate: 100, PixelsX: 16, PixelsY: 16}
	img, err := cam.Capture(m)
	if err != nil {
		t.Fatal(err)
	}
	if img.NX != 16 || img.NY != 16 {
		t.Fatalf("resolution %dx%d", img.NX, img.NY)
	}
	// 4×4 source cells per pixel: the spike is averaged down 16×.
	seenMax, _, _ := img.Max()
	want := 50 + 50.0/16
	if math.Abs(seenMax-want) > 0.5 {
		t.Fatalf("downsampled spike %g, want ≈%g", seenMax, want)
	}
}

func TestCaptureUpsamples(t *testing.T) {
	m := spikeMap(t, 8)
	cam := Camera{FrameRate: 100, PixelsX: 32, PixelsY: 32}
	img, err := cam.Capture(m)
	if err != nil {
		t.Fatal(err)
	}
	seenMax, _, _ := img.Max()
	if math.Abs(seenMax-100) > 1e-9 {
		t.Fatalf("upsampling should preserve values, got %g", seenMax)
	}
}

// shortPulseTrace simulates a 3 ms IntReg burst sampled at 0.5 ms.
func shortPulseTrace(t *testing.T) ([]hotspot.TracePoint, int) {
	t.Helper()
	fp := floorplan.EV6()
	m, err := hotspot.New(hotspot.Config{
		Floorplan: fp,
		Package:   hotspot.AirSink,
		Air:       hotspot.AirSinkConfig{RConvec: 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	idx := fp.Index("IntReg")
	state := m.AmbientState()
	pts, err := m.RunTrace(state, func(tm float64, p []float64) {
		for i := range p {
			p[i] = 0
		}
		if tm < 3e-3 {
			p[idx] = 5
		}
	}, 20e-3, 0.5e-3)
	if err != nil {
		t.Fatal(err)
	}
	return pts, idx
}

func TestSlowCameraMissesTransient(t *testing.T) {
	// §5.1: 3 ms thermal events are shorter than typical IR sampling
	// intervals. A 50 Hz camera (20 ms period) must under-report the peak
	// that a 2 kHz sampler would see.
	pts, idx := shortPulseTrace(t)
	truePeak := TruePeak(pts, idx)

	slow := Camera{FrameRate: 50, PixelsX: 8, PixelsY: 8}
	frames, err := slow.FilmTrace(pts)
	if err != nil {
		t.Fatal(err)
	}
	// 20 ms of trace at 50 Hz: the camera sees ~2 frames (t=0 and t=20ms),
	// both outside the 3 ms pulse peak.
	slowPeak := PeakSeen(frames, idx)
	if slowPeak >= truePeak-0.2 {
		t.Fatalf("slow camera should miss the transient: saw %g, true %g", slowPeak, truePeak)
	}

	fast := Camera{FrameRate: 2000, PixelsX: 8, PixelsY: 8}
	fframes, err := fast.FilmTrace(pts)
	if err != nil {
		t.Fatal(err)
	}
	if p := PeakSeen(fframes, idx); p < truePeak-1e-9 {
		t.Fatalf("2 kHz sampling should capture the peak: %g vs %g", p, truePeak)
	}
}

func TestFilmTraceErrors(t *testing.T) {
	cam := defaultCam()
	if _, err := cam.FilmTrace(nil); err == nil {
		t.Fatal("empty trace should fail")
	}
}

func multicore() *floorplan.Floorplan {
	mm := 1e-3
	return floorplan.MustNew([]floorplan.Block{
		{Name: "core0", Width: 5 * mm, Height: 20 * mm, X: 0, Y: 0},
		{Name: "core1", Width: 5 * mm, Height: 20 * mm, X: 5 * mm, Y: 0},
		{Name: "core2", Width: 5 * mm, Height: 20 * mm, X: 10 * mm, Y: 0},
		{Name: "core3", Width: 5 * mm, Height: 20 * mm, X: 15 * mm, Y: 0},
	})
}

func oilModel(t *testing.T, fp *floorplan.Floorplan, dir hotspot.FlowDirection) *hotspot.Model {
	t.Helper()
	m, err := hotspot.New(hotspot.Config{
		Floorplan: fp,
		Package:   hotspot.OilSilicon,
		Oil:       hotspot.OilConfig{Direction: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInfluenceMatrixProperties(t *testing.T) {
	m := oilModel(t, multicore(), hotspot.Uniform)
	a := InfluenceMatrix(m)
	n := m.Floorplan().N()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if a.At(i, j) <= 0 {
				t.Fatalf("influence (%d,%d) = %g, must be positive", i, j, a.At(i, j))
			}
		}
		// Self-influence dominates.
		for j := 0; j < n; j++ {
			if j != i && a.At(i, i) <= a.At(i, j) {
				t.Fatalf("self influence should dominate row %d", i)
			}
		}
	}
}

func TestPowerInversionRecoversTruth(t *testing.T) {
	// Direction-aware inversion: simulate under left-to-right flow, invert
	// with the same model → recover the true powers.
	fp := multicore()
	m := oilModel(t, fp, hotspot.LeftToRight)
	truth := []float64{10, 10, 10, 10}
	vec, err := m.BlockPowerVector(truth)
	if err != nil {
		t.Fatal(err)
	}
	obs := m.SteadyState(vec).BlocksC()
	got, err := InvertPower(m, obs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(got[i]-truth[i]) > 0.05 {
			t.Fatalf("direction-aware inversion: core%d = %g, want 10", i, got[i])
		}
	}
}

func TestFlowDirectionArtifact(t *testing.T) {
	// §5.4: equal-power cores under a left-to-right flow appear hotter on
	// the right; inverting with a no-direction (uniform-h) model then
	// attributes spuriously higher power to the downstream cores.
	fp := multicore()
	truthModel := oilModel(t, fp, hotspot.LeftToRight)
	truth := []float64{10, 10, 10, 10}
	vec, err := truthModel.BlockPowerVector(truth)
	if err != nil {
		t.Fatal(err)
	}
	res := truthModel.SteadyState(vec)
	obs := res.BlocksC()
	// Downstream cores read hotter.
	if !(obs[3] > obs[0]) {
		t.Fatalf("downstream core should be hotter: %v", obs)
	}
	naive := oilModel(t, fp, hotspot.Uniform)
	got, err := InvertPower(naive, obs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got[3] <= got[0]*1.05 {
		t.Fatalf("uniform-model inversion should inflate downstream power: %v", got)
	}
	// Direction-aware inversion fixes it.
	fixed, err := InvertPower(truthModel, obs, 0)
	if err != nil {
		t.Fatal(err)
	}
	skewNaive := got[3] - got[0]
	skewFixed := math.Abs(fixed[3] - fixed[0])
	if skewFixed >= skewNaive/4 {
		t.Fatalf("direction-aware inversion should remove the skew: %g vs %g", skewFixed, skewNaive)
	}
}

func TestInvertPowerValidation(t *testing.T) {
	m := oilModel(t, multicore(), hotspot.Uniform)
	if _, err := InvertPower(m, []float64{1, 2}, 0); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

// TestInfluenceMatrixReciprocity: the influence matrix of any thermal RC
// model is symmetric (reciprocity of resistive networks) — the property the
// least-squares inversion implicitly relies on for good conditioning.
func TestInfluenceMatrixReciprocity(t *testing.T) {
	for _, dir := range []hotspot.FlowDirection{hotspot.Uniform, hotspot.LeftToRight, hotspot.TopToBottom} {
		m := oilModel(t, multicore(), dir)
		a := InfluenceMatrix(m)
		for i := 0; i < a.Rows; i++ {
			for j := i + 1; j < a.Cols; j++ {
				if d := math.Abs(a.At(i, j) - a.At(j, i)); d > 1e-9*(1+math.Abs(a.At(i, j))) {
					t.Fatalf("dir %v: influence not symmetric at (%d,%d): %g vs %g",
						dir, i, j, a.At(i, j), a.At(j, i))
				}
			}
		}
	}
}

// TestInversionRobustToNoise: small measurement noise produces small power
// errors (the regularized inversion is well-conditioned on block scales).
func TestInversionRobustToNoise(t *testing.T) {
	fp := multicore()
	m := oilModel(t, fp, hotspot.LeftToRight)
	truth := []float64{8, 12, 9, 11}
	vec, err := m.BlockPowerVector(truth)
	if err != nil {
		t.Fatal(err)
	}
	obs := m.SteadyState(vec).BlocksC()
	// ±0.2 °C deterministic perturbation (typical IR accuracy).
	noisy := append([]float64(nil), obs...)
	for i := range noisy {
		if i%2 == 0 {
			noisy[i] += 0.2
		} else {
			noisy[i] -= 0.2
		}
	}
	got, err := InvertPower(m, noisy, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if math.Abs(got[i]-truth[i]) > 1.0 {
			t.Fatalf("noise blew up inversion at %d: %g vs %g", i, got[i], truth[i])
		}
	}
}
