package scenario

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/hotspot"
)

// sweepSpec is the acceptance-criteria scenario: a bursty pulse workload on
// IntReg swept over ≥12 policy-grid cells across AIR-SINK and OIL-SILICON at
// the same R_conv. triggerC/emergencyC are filled by the caller (they sit
// relative to the probed steady baseline).
func sweepSpec(triggers []float64, emergencyC float64) *Spec {
	return &Spec{
		Name:          "dtm-sweep",
		Interval:      1e-3,
		EmergencyC:    emergencyC,
		InitialSteady: true,
		Phases: []Phase{{
			Name:     "burst",
			Duration: 0.2,
			Pulse:    &PulseSpec{Block: "IntReg", PeakW: 3, OnS: 30e-3, OffS: 70e-3},
		}},
		Packages: []PackageSpec{
			{Label: "air", Kind: "air-sink", Rconv: 1.0},
			{Label: "oil", Kind: "oil-silicon", Rconv: 1.0},
		},
		Policies: PolicyGrid{
			TriggerC:        triggers,
			EngageDurationS: []float64{5e-3, 20e-3},
			PerfFactor:      []float64{0.5},
		},
	}
}

// baselines compiles a 2-cell never-triggering grid and returns each
// package's initial-steady hottest temperature.
func baselines(t *testing.T) (airC, oilC float64) {
	t.Helper()
	c, err := Compile(sweepSpec([]float64{1e6}, 1e6), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := c.RunGrid(nil, 1, nil)
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		switch r.Cell.Package {
		case "air":
			airC = r.Metrics.InitialHotC
		case "oil":
			oilC = r.Metrics.InitialHotC
		}
	}
	return airC, oilC
}

// TestGridWorkerParity: RunGrid at workers=4 is bit-identical to workers=1
// (the acceptance criterion): cells are fully independent and worker count
// only changes scheduling.
func TestGridWorkerParity(t *testing.T) {
	air, oil := baselines(t)
	base := max(air, oil)
	spec := sweepSpec([]float64{base + 1, base + 2, base + 3}, base+4)
	c, err := Compile(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(c.Cells()); n != 12 {
		t.Fatalf("want 12 grid cells, got %d", n)
	}
	serial := c.RunGrid(nil, 1, nil)
	parallel := c.RunGrid(nil, 4, nil)
	for i := range serial {
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("cell %d errors: %v / %v", i, serial[i].Err, parallel[i].Err)
		}
		if !reflect.DeepEqual(serial[i].Metrics, parallel[i].Metrics) {
			t.Fatalf("cell %d diverges between workers=1 and workers=4:\n  %+v\n  %+v",
				i, serial[i].Metrics, parallel[i].Metrics)
		}
	}
	// And a re-run is reproducible outright.
	again := c.RunGrid(nil, 3, nil)
	for i := range serial {
		if !reflect.DeepEqual(serial[i].Metrics, again[i].Metrics) {
			t.Fatalf("cell %d not reproducible across runs", i)
		}
	}
}

// TestAirOilEngagementDiffers reproduces the paper's §5.1 qualitative
// result: the identical DTM policy engages differently under AIR-SINK and
// OIL-SILICON at the same R_conv, because the oil configuration swings
// faster on bursts and recovers more slowly.
func TestAirOilEngagementDiffers(t *testing.T) {
	air, oil := baselines(t)
	base := max(air, oil)
	spec := sweepSpec([]float64{base + 1, base + 2, base + 3}, base+2.5)
	c, err := Compile(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := c.RunGrid(nil, 0, nil)
	byPkg := map[string][]CellResult{}
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		byPkg[r.Cell.Package] = append(byPkg[r.Cell.Package], r)
	}
	if len(byPkg["air"]) != 6 || len(byPkg["oil"]) != 6 {
		t.Fatalf("want 6 cells per package, got %d air / %d oil", len(byPkg["air"]), len(byPkg["oil"]))
	}
	var differing int
	for i := range byPkg["air"] {
		a, o := byPkg["air"][i], byPkg["oil"][i]
		if a.Cell.Policy != o.Cell.Policy {
			t.Fatalf("cell %d: policies not aligned across packages", i)
		}
		t.Logf("trigger %.1f engage %4.0fms | air: duty %.3f engagements %2d coverage %.2f peak %.1f | oil: duty %.3f engagements %2d coverage %.2f peak %.1f",
			a.Cell.Policy.TriggerC, a.Cell.Policy.EngageDuration*1e3,
			a.Metrics.DutyCycle, a.Metrics.Engagements, a.Metrics.ViolationCoverage, a.Metrics.PeakC,
			o.Metrics.DutyCycle, o.Metrics.Engagements, o.Metrics.ViolationCoverage, o.Metrics.PeakC)
		if a.Metrics.DutyCycle != o.Metrics.DutyCycle || a.Metrics.Engagements != o.Metrics.Engagements {
			differing++
		}
	}
	if differing < 4 {
		t.Fatalf("identical policies should engage differently across cooling configs; only %d/6 cells differ", differing)
	}
	// The aggregate §5.1 direction: the oil bath swings harder on the same
	// burst, so across the grid it spends more total time throttled.
	var airDuty, oilDuty float64
	for i := range byPkg["air"] {
		airDuty += byPkg["air"][i].Metrics.DutyCycle
		oilDuty += byPkg["oil"][i].Metrics.DutyCycle
	}
	t.Logf("total duty: air %.3f oil %.3f", airDuty, oilDuty)
	if airDuty == oilDuty {
		t.Fatal("aggregate engagement identical across packages")
	}
}

// TestDTMReducesPeak: an engaging policy caps the peak temperature relative
// to a never-triggering one and pays for it in performance. Each package
// gets a trigger relative to its own steady baseline (the AIR-SINK baseline
// sits well below OIL-SILICON's at the same R_conv).
func TestDTMReducesPeak(t *testing.T) {
	airBase, oilBase := baselines(t)
	for pkg, base := range map[string]float64{"air": airBase, "oil": oilBase} {
		spec := sweepSpec([]float64{base + 0.5, 1e6}, base+2)
		spec.Policies.EngageDurationS = []float64{20e-3}
		for _, p := range spec.Packages {
			if p.Label == pkg {
				spec.Packages = []PackageSpec{p}
			}
		}
		c, err := Compile(spec, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res := c.RunGrid(context.Background(), 2, nil)
		on, off := res[0], res[1]
		if on.Err != nil || off.Err != nil {
			t.Fatal(on.Err, off.Err)
		}
		if off.Metrics.EngagedS != 0 || off.Metrics.PerfPenalty != 0 {
			t.Fatalf("%s: disabled policy must not engage: %+v", pkg, off.Metrics)
		}
		if on.Metrics.EngagedS == 0 {
			t.Fatalf("%s: active policy never engaged", pkg)
		}
		if on.Metrics.PeakC >= off.Metrics.PeakC {
			t.Fatalf("%s: DTM should reduce peak: %.2f vs %.2f", pkg, on.Metrics.PeakC, off.Metrics.PeakC)
		}
		if on.Metrics.PerfPenalty <= 0 {
			t.Fatalf("%s: throttling must cost performance", pkg)
		}
	}
}

// TestMisplacedSensorLowersCoverage: a sensor on a cool block misses
// emergencies the oracle catches (§5.3/§5.4) — violation coverage drops.
func TestMisplacedSensorLowersCoverage(t *testing.T) {
	air, oil := baselines(t)
	base := max(air, oil)
	mk := func(block string) *Spec {
		s := sweepSpec([]float64{base + 0.5}, base+1)
		s.Packages = s.Packages[1:] // oil only: the steeper gradients
		s.Policies.EngageDurationS = []float64{5e-3}
		if block != "" {
			s.Sensors = []Sensor{{Block: block}}
		}
		return s
	}
	run := func(s *Spec) Metrics {
		c, err := Compile(s, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r := c.RunGrid(nil, 1, nil)
		if r[0].Err != nil {
			t.Fatal(r[0].Err)
		}
		return r[0].Metrics
	}
	oracle := run(mk(""))
	bad := run(mk("L2"))
	if oracle.ViolationS == 0 {
		t.Skip("burst too cool to violate in this configuration")
	}
	t.Logf("oracle: violations %.3fs coverage %.2f | L2 sensor: violations %.3fs coverage %.2f",
		oracle.ViolationS, oracle.ViolationCoverage, bad.ViolationS, bad.ViolationCoverage)
	if bad.ViolationCoverage >= oracle.ViolationCoverage {
		t.Fatalf("misplaced sensor should lower violation coverage: %.3f vs oracle %.3f",
			bad.ViolationCoverage, oracle.ViolationCoverage)
	}
	if bad.ObservedPeakC >= oracle.ObservedPeakC {
		t.Fatal("L2 sensor should under-report the peak")
	}
}

// TestWorkloadClosedLoop: throttling a live uarch phase reduces committed
// instructions against the nominal baseline — feedback an offline trace
// replay cannot represent — and the leakage feedback knob changes the
// thermals.
func TestWorkloadClosedLoop(t *testing.T) {
	mk := func(disableLeak bool) *Spec {
		return &Spec{
			Interval:      1e-3,
			EmergencyC:    200,
			InitialSteady: true,
			Power:         &PowerSpec{ClockHz: 2e7}, // 20k cycles per control step
			Phases:        []Phase{{Duration: 0.05, Workload: "gcc"}},
			Packages:      []PackageSpec{{Kind: "oil-silicon", Rconv: 1.0}},
			Policies: PolicyGrid{
				TriggerC:        []float64{0.1, 1e6}, // always-on vs never
				EngageDurationS: []float64{10e-3},
				PerfFactor:      []float64{0.5},
				Actuators:       []string{"fetch-gate", "dvfs"},
			},
			DisableLeakageFeedback: disableLeak,
		}
	}
	c, err := Compile(mk(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := c.RunGrid(nil, 2, nil)
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	fetch, dvfs, offFetch := res[0], res[1], res[2]
	if offFetch.Metrics.Committed == 0 {
		t.Fatal("nominal cell committed nothing")
	}
	if fetch.Metrics.Committed >= offFetch.Metrics.Committed {
		t.Fatalf("fetch gating must cut committed instructions: %d vs nominal %d",
			fetch.Metrics.Committed, offFetch.Metrics.Committed)
	}
	if p := fetch.Metrics.PerfPenalty; p < 0.2 || p > 0.8 {
		t.Fatalf("always-on fetch gate at factor 0.5 should cost ≈half throughput, got %.3f", p)
	}
	if offFetch.Metrics.PerfPenalty != 0 {
		t.Fatalf("nominal cell should have zero penalty, got %g", offFetch.Metrics.PerfPenalty)
	}
	// DVFS at the same factor cuts voltage too: cooler than fetch gating.
	if dvfs.Metrics.FinalHotC >= fetch.Metrics.FinalHotC {
		t.Fatalf("DVFS should run cooler than fetch gating: %.2f vs %.2f",
			dvfs.Metrics.FinalHotC, fetch.Metrics.FinalHotC)
	}
	// Leakage feedback alters the trajectory.
	c2, err := Compile(mk(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2 := c2.RunGrid(nil, 1, nil)
	if res2[2].Err != nil {
		t.Fatal(res2[2].Err)
	}
	if res2[2].Metrics.FinalHotC == offFetch.Metrics.FinalHotC {
		t.Fatal("disabling leakage feedback should change the thermal trajectory")
	}
}

// TestRunGridCancellation: a cancelled context aborts unfinished cells with
// a ctx-attributed error instead of hanging.
func TestRunGridCancellation(t *testing.T) {
	spec := sweepSpec([]float64{1e6}, 1e6)
	c, err := Compile(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := c.RunGrid(ctx, 1, nil)
	for _, r := range res {
		if r.Err == nil {
			t.Fatal("cancelled run should error every cell")
		}
	}
}

// TestModelResolverIsUsed: Compile resolves models through Options.Models
// exactly once per distinct package fingerprint.
func TestModelResolverIsUsed(t *testing.T) {
	spec := sweepSpec([]float64{1e6}, 1e6)
	spec.Packages = append(spec.Packages, spec.Packages[0]) // duplicate air
	calls := 0
	_, err := Compile(spec, Options{Models: func(cfg hotspot.Config) (*hotspot.Model, error) {
		calls++
		return hotspot.New(cfg)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("want one resolve per distinct fingerprint (2), got %d", calls)
	}
}
