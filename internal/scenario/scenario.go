// Package scenario is the declarative closed-loop DTM experiment engine for
// the paper's §5 claims at service scale: one scenario spec describes a
// workload schedule (synthetic uarch phases, inline power traces, or pulse
// trains), a set of cooling packages, on-die sensor placements and a grid of
// DTM policies, and the engine co-simulates every (package, policy) grid
// cell in closed loop — uarch pipeline → power → hotspot.Session → sensors →
// dtm controller — so that throttling feeds back into the next step's power,
// which an offline trace replay (dtm.Run) cannot represent. RunGrid fans the
// grid across a worker pool with one stepping session per worker per model
// (the PR 1 batched-transient machinery) and is bit-identical at any worker
// count; internal/service exposes it as POST /v1/scenario[/stream] behind
// the compiled-model cache. See DESIGN.md §6 for the architecture.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/dtm"
	"repro/internal/uarch"
)

// SpecError reports a rejected scenario spec field. Every validation failure
// in this package is a *SpecError so callers (the HTTP layer, the CLI) can
// attribute the rejection to a specific field.
type SpecError struct {
	// Field is the JSON path of the offending field, e.g. "phases[0].duration".
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("scenario: %s: %s", e.Field, e.Reason)
}

func specErrf(field, format string, args ...any) *SpecError {
	return &SpecError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Spec is one declarative closed-loop scenario: a phased workload, a set of
// cooling packages, sensor placements and a DTM policy grid. The zero values
// of optional fields take the documented defaults at Compile time.
type Spec struct {
	// Name labels the scenario in results and logs.
	Name string `json:"name,omitempty"`
	// Floorplan names a built-in floorplan ("ev6" — the default — or
	// "athlon"); FLP, when non-empty, carries an inline HotSpot .flp file
	// and overrides it. Workload phases require the EV6 block set.
	Floorplan string `json:"floorplan,omitempty"`
	FLP       string `json:"flp,omitempty"`
	// Interval is the control step (s): the loop applies one power vector,
	// advances the thermal model by one backward-Euler step and gives the
	// controller one chance to sample per interval. Default 1e-3.
	Interval float64 `json:"interval,omitempty"`
	// Duration is the total simulated time (s); 0 means the sum of the
	// phase durations. The schedule loops if Duration is longer.
	Duration float64 `json:"duration,omitempty"`
	// EmergencyC is the true thermal limit (°C) used for violation
	// accounting. Required.
	EmergencyC float64 `json:"emergency_c"`
	// InitialSteady starts every cell from the steady state of the nominal
	// (unthrottled) schedule's average power instead of from ambient.
	InitialSteady bool `json:"initial_steady,omitempty"`
	// DisableLeakageFeedback turns off the temperature-dependent leakage
	// term in workload phases (trace and pulse phases carry total power and
	// never add leakage).
	DisableLeakageFeedback bool `json:"disable_leakage_feedback,omitempty"`
	// Seed drives the synthetic instruction streams (default 2009). Phase i
	// uses Seed+i, identically in every grid cell, so cells differ only
	// through their closed-loop feedback.
	Seed int64 `json:"seed,omitempty"`
	// Power overrides the Wattch-style power model parameters for workload
	// phases.
	Power *PowerSpec `json:"power,omitempty"`
	// Phases is the workload schedule, played in order. Required.
	Phases []Phase `json:"phases"`
	// Sensors drive the controller; empty means oracle sensing of the true
	// hottest block.
	Sensors []Sensor `json:"sensors,omitempty"`
	// Packages lists the cooling configurations of the grid. Required.
	Packages []PackageSpec `json:"packages"`
	// Policies is the DTM policy grid; cells are the cross product
	// Packages × Policies.
	Policies PolicyGrid `json:"policies"`
}

// PowerSpec overrides power.DefaultWattch parameters (zero fields keep the
// defaults). Lowering ClockHz is the supported way to make workload phases
// cheap: the control interval times ClockHz is the number of CPU cycles
// co-simulated per step.
type PowerSpec struct {
	ClockHz     float64 `json:"clock_hz,omitempty"`
	IdleFrac    float64 `json:"idle_frac,omitempty"`
	ClockTreeW  float64 `json:"clock_tree_w,omitempty"`
	LeakageW    float64 `json:"leakage_w,omitempty"`
	LeakRefC    float64 `json:"leak_ref_c,omitempty"`
	LeakDoubleC float64 `json:"leak_double_c,omitempty"`
}

// Phase is one segment of the workload schedule. Exactly one of Workload,
// Trace or Pulse must be set.
type Phase struct {
	Name string `json:"name,omitempty"`
	// Duration of the phase (s). Required, positive.
	Duration float64 `json:"duration"`
	// Workload names a synthetic uarch preset ("gcc", "mcf", "art"): the
	// phase steps a private CPU instance per grid cell, so throttling
	// changes the instruction stream's timing — the genuinely closed loop.
	Workload string `json:"workload,omitempty"`
	// Trace is an inline power trace sampled at the phase's own interval;
	// it loops if shorter than the phase.
	Trace *TraceSpec `json:"trace,omitempty"`
	// Pulse is a square-wave power pulse on one block.
	Pulse *PulseSpec `json:"pulse,omitempty"`
}

// TraceSpec is an inline per-block power trace.
type TraceSpec struct {
	Names    []string    `json:"names"`
	Interval float64     `json:"interval"`
	Rows     [][]float64 `json:"rows"`
}

// PulseSpec is a square-wave power input: Block dissipates PeakW for OnS
// seconds, then BaseW for OffS seconds, repeating.
type PulseSpec struct {
	Block string  `json:"block"`
	PeakW float64 `json:"peak_w"`
	BaseW float64 `json:"base_w,omitempty"`
	OnS   float64 `json:"on_s"`
	OffS  float64 `json:"off_s"`
}

// Sensor places one controller input on a block, with a fixed calibration
// offset (°C).
type Sensor struct {
	Block   string  `json:"block"`
	OffsetC float64 `json:"offset_c,omitempty"`
}

// PackageSpec selects one cooling configuration of the grid; the fields
// mirror core.PackageSpec.
type PackageSpec struct {
	// Label names the package in results; defaults to Kind.
	Label string `json:"label,omitempty"`
	// Kind is "air-sink" (default), "oil-silicon" or "water-sink".
	Kind string `json:"kind,omitempty"`
	// Rconv overrides the convection resistance (K/W); 0 keeps the default.
	Rconv float64 `json:"rconv,omitempty"`
	// Direction is the oil flow direction (oil-silicon only).
	Direction string `json:"direction,omitempty"`
	// Secondary enables the secondary heat transfer path.
	Secondary bool `json:"secondary,omitempty"`
	// AmbientC is the coolant free-stream temperature (°C, default 45).
	AmbientC float64 `json:"ambient_c,omitempty"`
}

// PolicyGrid spans the DTM policy axis of the grid: the policies are the
// cross product of the non-empty lists. TriggerC is required; the other
// axes default to one entry each (engage 5 ms, sample = control interval,
// perf factor 0.5, fetch-gate).
type PolicyGrid struct {
	TriggerC        []float64 `json:"trigger_c"`
	EngageDurationS []float64 `json:"engage_s,omitempty"`
	SampleIntervalS []float64 `json:"sample_s,omitempty"`
	PerfFactor      []float64 `json:"perf_factor,omitempty"`
	// Actuators lists actuator names: "fetch-gate" or "dvfs".
	Actuators []string `json:"actuators,omitempty"`
}

// MaxCells bounds the policy grid (packages × policies): specs are client
// input, and each cell is a full co-simulation. PR 6 raised the cap from
// 1024 — the batched lockstep engine now amortizes cells through 16-wide
// solve kernels, so production-scale design sweeps fit in one spec; the
// guard remains to keep a hostile spec from requesting unbounded work.
const MaxCells = 16384

// ParseSpec decodes a JSON scenario spec with the same strictness as the
// trace decoder: unknown fields, malformed values and trailing data are
// errors, and the decoded spec is validated before it is returned.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, specErrf("(spec)", "decode: %v", err)
	}
	if dec.More() {
		return nil, specErrf("(spec)", "trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// finitePos reports whether v is a finite positive number.
func finitePos(v float64) bool { return v > 0 && !math.IsInf(v, 0) }

// Validate reports structural spec errors (always a *SpecError). Checks that
// need the resolved floorplan or compiled models — unknown sensor or trace
// blocks, package compilation — happen in Compile.
func (s *Spec) Validate() error {
	if s.Interval != 0 && !finitePos(s.Interval) {
		return specErrf("interval", "must be a positive finite duration, got %g", s.Interval)
	}
	if s.Duration != 0 && !finitePos(s.Duration) {
		return specErrf("duration", "must be a positive finite duration, got %g", s.Duration)
	}
	if !finitePos(s.EmergencyC) {
		return specErrf("emergency_c", "must be a positive finite temperature, got %g", s.EmergencyC)
	}
	if len(s.Phases) == 0 {
		return specErrf("phases", "a scenario needs at least one phase")
	}
	for i, p := range s.Phases {
		if err := p.validate(i); err != nil {
			return err
		}
	}
	for i, sv := range s.Sensors {
		if sv.Block == "" {
			return specErrf(fmt.Sprintf("sensors[%d].block", i), "empty block name")
		}
		if math.IsNaN(sv.OffsetC) || math.IsInf(sv.OffsetC, 0) {
			return specErrf(fmt.Sprintf("sensors[%d].offset_c", i), "non-finite offset")
		}
	}
	if len(s.Packages) == 0 {
		return specErrf("packages", "a scenario needs at least one package")
	}
	nPolicies, err := s.Policies.validate()
	if err != nil {
		return err
	}
	if cells := len(s.Packages) * nPolicies; cells > MaxCells {
		return specErrf("policies", "grid has %d cells, limit %d", cells, MaxCells)
	}
	return nil
}

func (p Phase) validate(i int) error {
	field := func(f string) string { return fmt.Sprintf("phases[%d].%s", i, f) }
	if !finitePos(p.Duration) {
		return specErrf(field("duration"), "must be a positive finite duration, got %g", p.Duration)
	}
	sources := 0
	if p.Workload != "" {
		sources++
		if _, ok := uarch.Workloads()[p.Workload]; !ok {
			return specErrf(field("workload"), "unknown workload %q (have gcc, mcf, art)", p.Workload)
		}
	}
	if p.Trace != nil {
		sources++
		if len(p.Trace.Names) == 0 {
			return specErrf(field("trace.names"), "no block names")
		}
		if !finitePos(p.Trace.Interval) {
			return specErrf(field("trace.interval"), "must be a positive finite duration, got %g", p.Trace.Interval)
		}
		if len(p.Trace.Rows) == 0 {
			return specErrf(field("trace.rows"), "no power rows")
		}
		for r, row := range p.Trace.Rows {
			if len(row) != len(p.Trace.Names) {
				return specErrf(fmt.Sprintf("phases[%d].trace.rows[%d]", i, r),
					"row has %d values, want %d", len(row), len(p.Trace.Names))
			}
			for c, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					return specErrf(fmt.Sprintf("phases[%d].trace.rows[%d][%d]", i, r, c),
						"invalid power %g", v)
				}
			}
		}
	}
	if p.Pulse != nil {
		sources++
		if p.Pulse.Block == "" {
			return specErrf(field("pulse.block"), "empty block name")
		}
		for _, w := range []struct {
			name string
			v    float64
		}{{"peak_w", p.Pulse.PeakW}, {"base_w", p.Pulse.BaseW}} {
			if math.IsNaN(w.v) || math.IsInf(w.v, 0) || w.v < 0 {
				return specErrf(field("pulse."+w.name), "invalid power %g", w.v)
			}
		}
		if !finitePos(p.Pulse.OnS) {
			return specErrf(field("pulse.on_s"), "must be a positive finite duration, got %g", p.Pulse.OnS)
		}
		if p.Pulse.OffS < 0 || math.IsNaN(p.Pulse.OffS) || math.IsInf(p.Pulse.OffS, 0) {
			return specErrf(field("pulse.off_s"), "invalid duration %g", p.Pulse.OffS)
		}
	}
	if sources != 1 {
		return specErrf(fmt.Sprintf("phases[%d]", i), "need exactly one of workload, trace or pulse (got %d)", sources)
	}
	return nil
}

// validate checks the grid lists and returns the number of policies the grid
// expands to.
func (g PolicyGrid) validate() (int, error) {
	if len(g.TriggerC) == 0 {
		return 0, specErrf("policies.trigger_c", "a scenario needs at least one trigger temperature")
	}
	checkList := func(field string, vs []float64, ok func(float64) bool, what string) error {
		for i, v := range vs {
			if !ok(v) {
				return specErrf(fmt.Sprintf("policies.%s[%d]", field, i), "%s, got %g", what, v)
			}
		}
		return nil
	}
	if err := checkList("trigger_c", g.TriggerC, finitePos, "trigger must be a positive finite temperature"); err != nil {
		return 0, err
	}
	if err := checkList("engage_s", g.EngageDurationS, finitePos, "engagement must be a positive finite duration"); err != nil {
		return 0, err
	}
	if err := checkList("sample_s", g.SampleIntervalS, finitePos, "sampling interval must be a positive finite duration"); err != nil {
		return 0, err
	}
	if err := checkList("perf_factor", g.PerfFactor, func(v float64) bool { return v > 0 && v <= 1 }, "performance factor must be in (0,1]"); err != nil {
		return 0, err
	}
	for i, a := range g.Actuators {
		if _, err := parseActuator(a); err != nil {
			return 0, specErrf(fmt.Sprintf("policies.actuators[%d]", i), "%v", err)
		}
	}
	n := len(g.TriggerC)
	for _, l := range []int{len(g.EngageDurationS), len(g.SampleIntervalS), len(g.PerfFactor), len(g.Actuators)} {
		if l > 0 {
			n *= l
		}
	}
	return n, nil
}

func parseActuator(s string) (dtm.Actuator, error) {
	switch s {
	case "", "fetch-gate":
		return dtm.FetchGate, nil
	case "dvfs":
		return dtm.DVFS, nil
	default:
		return 0, fmt.Errorf("unknown actuator %q (have fetch-gate, dvfs)", s)
	}
}

// policies expands the grid into the deterministic cross product: triggers
// outermost, then engagement durations, sampling intervals, performance
// factors and actuators.
func (g PolicyGrid) policies(defaultSample float64) ([]dtm.Policy, error) {
	engage := g.EngageDurationS
	if len(engage) == 0 {
		engage = []float64{5e-3}
	}
	sample := g.SampleIntervalS
	if len(sample) == 0 {
		sample = []float64{defaultSample}
	}
	perf := g.PerfFactor
	if len(perf) == 0 {
		perf = []float64{0.5}
	}
	acts := g.Actuators
	if len(acts) == 0 {
		acts = []string{"fetch-gate"}
	}
	var out []dtm.Policy
	for _, trig := range g.TriggerC {
		for _, e := range engage {
			for _, sm := range sample {
				for _, f := range perf {
					for _, a := range acts {
						act, err := parseActuator(a)
						if err != nil {
							return nil, err
						}
						out = append(out, dtm.Policy{
							TriggerC:       trig,
							EngageDuration: e,
							SampleInterval: sm,
							PerfFactor:     f,
							Actuator:       act,
						})
					}
				}
			}
		}
	}
	return out, nil
}
