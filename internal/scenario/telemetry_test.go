package scenario

import (
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"
)

// telSpec is a compact 2-package × 2-policy grid with two sensors, short
// enough to run in milliseconds but long enough to cross several sample
// periods.
func telSpec() *Spec {
	return &Spec{
		Name:       "telemetry",
		Interval:   1e-3,
		EmergencyC: 1e6,
		Phases: []Phase{{
			Name:     "burst",
			Duration: 0.05,
			Pulse:    &PulseSpec{Block: "IntReg", PeakW: 3, OnS: 10e-3, OffS: 15e-3},
		}},
		Packages: []PackageSpec{
			{Label: "air", Kind: "air-sink", Rconv: 1.0},
			{Label: "oil", Kind: "oil-silicon", Rconv: 1.0},
		},
		Sensors: []Sensor{{Block: "IntReg"}, {Block: "Dcache", OffsetC: 0.5}},
		Policies: PolicyGrid{
			TriggerC:        []float64{1e6, 400},
			EngageDurationS: []float64{5e-3},
			PerfFactor:      []float64{0.5},
			SampleIntervalS: []float64{2e-3},
		},
	}
}

type gridSink struct {
	mu   sync.Mutex
	rows map[string][]struct{ t, v float64 }
	fail string // series name to fail on, "" = never
}

func (g *gridSink) Append(series string, t, v float64) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fail != "" && series == g.fail {
		return errors.New("sink refused")
	}
	if g.rows == nil {
		g.rows = make(map[string][]struct{ t, v float64 })
	}
	g.rows[series] = append(g.rows[series], struct{ t, v float64 }{t, v})
	return nil
}

// TestRunGridTelemetryRecordsSensedValues checks the telemetry tap end to
// end: identical results to RunGrid, the advertised series names, sample
// times on the controller's cadence, and finite sensed values whose
// per-cell max matches the cell's ObservedPeakC.
func TestRunGridTelemetryRecordsSensedValues(t *testing.T) {
	c, err := Compile(telSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain := c.RunGrid(nil, 2, nil)
	sink := &gridSink{}
	tapped := c.RunGridTelemetry(nil, 2, nil, sink)
	if !reflect.DeepEqual(plain, tapped) {
		t.Fatal("telemetry tap changed the simulation results")
	}

	cells := c.Cells()
	const sampleEvery = 2e-3
	steps := c.Steps()
	wantSamples := (steps + 1) / 2 // every 2nd step starting at 0
	for _, cell := range cells {
		series := c.TelemetrySeries(cell.Index)
		if len(series) != 2 {
			t.Fatalf("cell %d: series %v", cell.Index, series)
		}
		obsPeak := math.Inf(-1)
		for _, name := range series {
			rows := sink.rows[name]
			if len(rows) != wantSamples {
				t.Fatalf("series %q: %d samples, want %d", name, len(rows), wantSamples)
			}
			for i, r := range rows {
				if want := float64(2*i) * 1e-3; math.Abs(r.t-want) > 1e-12 {
					t.Fatalf("series %q sample %d at t=%v, want %v", name, i, r.t, want)
				}
				if math.IsNaN(r.v) || math.IsInf(r.v, 0) {
					t.Fatalf("series %q sample %d non-finite: %v", name, i, r.v)
				}
				if r.v > obsPeak {
					obsPeak = r.v
				}
			}
		}
		if got := tapped[cell.Index].Metrics.ObservedPeakC; got != obsPeak {
			t.Fatalf("cell %d: telemetry max %v, ObservedPeakC %v", cell.Index, obsPeak, got)
		}
	}
	if len(sink.rows) != len(cells)*2 {
		t.Fatalf("%d series recorded, want %d", len(sink.rows), len(cells)*2)
	}
}

// TestRunGridTelemetryOracleSeries: with no sensors configured the tap
// records the single oracle "hot" series per cell.
func TestRunGridTelemetryOracleSeries(t *testing.T) {
	spec := telSpec()
	spec.Sensors = nil
	spec.Packages = spec.Packages[:1]
	c, err := Compile(spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sink := &gridSink{}
	res := c.RunGridTelemetry(nil, 1, nil, sink)
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	for _, cell := range c.Cells() {
		series := c.TelemetrySeries(cell.Index)
		if len(series) != 1 || series[0] != "cell"+itoa(cell.Index)+"/hot" {
			t.Fatalf("cell %d series %v", cell.Index, series)
		}
		if len(sink.rows[series[0]]) == 0 {
			t.Fatalf("no oracle samples for cell %d", cell.Index)
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for ; i > 0; i /= 10 {
		b = append([]byte{byte('0' + i%10)}, b...)
	}
	return string(b)
}

// TestRunGridTelemetrySinkErrorFailsOneCell: a sink refusing one cell's
// series fails that cell and leaves the rest of the grid intact.
func TestRunGridTelemetrySinkErrorFailsOneCell(t *testing.T) {
	c, err := Compile(telSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	victim := c.TelemetrySeries(1)[0]
	sink := &gridSink{fail: victim}
	res := c.RunGridTelemetry(nil, 2, nil, sink)
	failed := 0
	for _, r := range res {
		if r.Cell.Index == 1 {
			if r.Err == nil {
				t.Fatal("victim cell did not fail")
			}
			failed++
			continue
		}
		if r.Err != nil {
			t.Fatalf("cell %d collateral failure: %v", r.Cell.Index, r.Err)
		}
	}
	if failed != 1 {
		t.Fatalf("%d failed cells", failed)
	}
}
