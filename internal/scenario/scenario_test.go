package scenario

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// validSpec is a minimal well-formed pulse scenario.
func validSpec() *Spec {
	return &Spec{
		Name:       "t",
		Interval:   1e-3,
		EmergencyC: 80,
		Phases: []Phase{{
			Duration: 0.02,
			Pulse:    &PulseSpec{Block: "IntReg", PeakW: 3, OnS: 5e-3, OffS: 5e-3},
		}},
		Packages: []PackageSpec{{Kind: "air-sink", Rconv: 1.0}},
		Policies: PolicyGrid{TriggerC: []float64{60}},
	}
}

// wantSpecError asserts err is a *SpecError anchored at the given field.
func wantSpecError(t *testing.T, err error, field string) {
	t.Helper()
	if err == nil {
		t.Fatalf("want *SpecError on %q, got nil", field)
	}
	var se *SpecError
	if !errors.As(err, &se) {
		t.Fatalf("want *SpecError on %q, got %T: %v", field, err, err)
	}
	if se.Field != field {
		t.Fatalf("want error on field %q, got %q (%v)", field, se.Field, se)
	}
}

// TestHostileSpecsReturnTypedErrors covers the satellite checklist: NaN
// trigger, empty phase list, unknown sensor block, zero-duration phase — all
// rejected with a *SpecError naming the field.
func TestHostileSpecsReturnTypedErrors(t *testing.T) {
	t.Run("nan trigger", func(t *testing.T) {
		s := validSpec()
		s.Policies.TriggerC = []float64{math.NaN()}
		wantSpecError(t, s.Validate(), "policies.trigger_c[0]")
	})
	t.Run("empty phase list", func(t *testing.T) {
		s := validSpec()
		s.Phases = nil
		wantSpecError(t, s.Validate(), "phases")
	})
	t.Run("zero-duration phase", func(t *testing.T) {
		s := validSpec()
		s.Phases[0].Duration = 0
		wantSpecError(t, s.Validate(), "phases[0].duration")
	})
	t.Run("unknown sensor block", func(t *testing.T) {
		s := validSpec()
		s.Sensors = []Sensor{{Block: "NoSuchBlock"}}
		_, err := Compile(s, Options{})
		wantSpecError(t, err, "sensors[0].block")
	})
	t.Run("infinite trigger", func(t *testing.T) {
		s := validSpec()
		s.Policies.TriggerC = []float64{math.Inf(1)}
		wantSpecError(t, s.Validate(), "policies.trigger_c[0]")
	})
	t.Run("no trigger", func(t *testing.T) {
		s := validSpec()
		s.Policies.TriggerC = nil
		wantSpecError(t, s.Validate(), "policies.trigger_c")
	})
	t.Run("no packages", func(t *testing.T) {
		s := validSpec()
		s.Packages = nil
		wantSpecError(t, s.Validate(), "packages")
	})
	t.Run("missing emergency", func(t *testing.T) {
		s := validSpec()
		s.EmergencyC = 0
		wantSpecError(t, s.Validate(), "emergency_c")
	})
	t.Run("two sources in one phase", func(t *testing.T) {
		s := validSpec()
		s.Phases[0].Workload = "gcc"
		wantSpecError(t, s.Validate(), "phases[0]")
	})
	t.Run("unknown workload", func(t *testing.T) {
		s := validSpec()
		s.Phases[0].Pulse = nil
		s.Phases[0].Workload = "doom"
		wantSpecError(t, s.Validate(), "phases[0].workload")
	})
	t.Run("negative trace power", func(t *testing.T) {
		s := validSpec()
		s.Phases[0].Pulse = nil
		s.Phases[0].Trace = &TraceSpec{Names: []string{"IntReg"}, Interval: 1e-3, Rows: [][]float64{{-1}}}
		wantSpecError(t, s.Validate(), "phases[0].trace.rows[0][0]")
	})
	t.Run("ragged trace row", func(t *testing.T) {
		s := validSpec()
		s.Phases[0].Pulse = nil
		s.Phases[0].Trace = &TraceSpec{Names: []string{"IntReg"}, Interval: 1e-3, Rows: [][]float64{{1, 2}}}
		wantSpecError(t, s.Validate(), "phases[0].trace.rows[0]")
	})
	t.Run("unknown trace block", func(t *testing.T) {
		s := validSpec()
		s.Phases[0].Pulse = nil
		s.Phases[0].Trace = &TraceSpec{Names: []string{"Nope"}, Interval: 1e-3, Rows: [][]float64{{1}}}
		_, err := Compile(s, Options{})
		wantSpecError(t, err, "phases[0].trace.names[0]")
	})
	t.Run("unknown pulse block", func(t *testing.T) {
		s := validSpec()
		s.Phases[0].Pulse.Block = "Nope"
		_, err := Compile(s, Options{})
		wantSpecError(t, err, "phases[0].pulse.block")
	})
	t.Run("unknown package kind", func(t *testing.T) {
		s := validSpec()
		s.Packages[0].Kind = "peltier"
		_, err := Compile(s, Options{})
		wantSpecError(t, err, "packages[0]")
	})
	t.Run("unknown actuator", func(t *testing.T) {
		s := validSpec()
		s.Policies.Actuators = []string{"prayer"}
		wantSpecError(t, s.Validate(), "policies.actuators[0]")
	})
	t.Run("perf factor out of range", func(t *testing.T) {
		s := validSpec()
		s.Policies.PerfFactor = []float64{1.5}
		wantSpecError(t, s.Validate(), "policies.perf_factor[0]")
	})
	t.Run("grid too large", func(t *testing.T) {
		s := validSpec()
		s.Policies.TriggerC = make([]float64, MaxCells+1)
		for i := range s.Policies.TriggerC {
			s.Policies.TriggerC[i] = 60
		}
		wantSpecError(t, s.Validate(), "policies")
	})
	t.Run("excessive steps", func(t *testing.T) {
		s := validSpec()
		s.Duration = 1e6
		_, err := Compile(s, Options{})
		wantSpecError(t, err, "duration")
	})
	t.Run("unknown floorplan", func(t *testing.T) {
		s := validSpec()
		s.Floorplan = "pentium"
		_, err := Compile(s, Options{})
		wantSpecError(t, err, "floorplan")
	})
}

// TestParseSpecStrictness: unknown fields, trailing data and malformed JSON
// are rejected, mirroring the trace decoder's strictness.
func TestParseSpecStrictness(t *testing.T) {
	good := `{
		"interval": 1e-3, "emergency_c": 80,
		"phases": [{"duration": 0.02, "pulse": {"block": "IntReg", "peak_w": 3, "on_s": 5e-3, "off_s": 5e-3}}],
		"packages": [{"kind": "air-sink", "rconv": 1.0}],
		"policies": {"trigger_c": [60]}
	}`
	if _, err := ParseSpec(strings.NewReader(good)); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for name, body := range map[string]string{
		"unknown field":    `{"emergency_c": 80, "bogus": 1}`,
		"trailing data":    good + ` {"more": true}`,
		"malformed":        `{"emergency_c": `,
		"huge number":      `{"emergency_c": 1e999}`,
		"wrong type":       `{"emergency_c": "hot"}`,
		"empty stream":     ``,
		"array not object": `[1,2,3]`,
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := ParseSpec(strings.NewReader(body)); err == nil {
				t.Fatalf("hostile input accepted: %s", body)
			} else {
				var se *SpecError
				if !errors.As(err, &se) {
					t.Fatalf("want *SpecError, got %T: %v", err, err)
				}
			}
		})
	}
}

// TestGridExpansionDeterministic: the cell order is the documented cross
// product and defaults fill the unspecified axes.
func TestGridExpansionDeterministic(t *testing.T) {
	s := validSpec()
	s.Packages = append(s.Packages, PackageSpec{Label: "oil", Kind: "oil-silicon", Rconv: 1.0})
	s.Policies = PolicyGrid{
		TriggerC:        []float64{55, 60},
		EngageDurationS: []float64{5e-3, 10e-3},
		Actuators:       []string{"fetch-gate", "dvfs"},
	}
	c, err := Compile(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cells := c.Cells()
	if len(cells) != 2*2*2*2 {
		t.Fatalf("want 16 cells, got %d", len(cells))
	}
	if cells[0].Package != "AIR-SINK" || cells[8].Package != "oil" {
		t.Fatalf("package order wrong: %q, %q", cells[0].Package, cells[8].Package)
	}
	// Within a package: trigger outermost, then engage, then actuator.
	p := cells[:8]
	if p[0].Policy.TriggerC != 55 || p[4].Policy.TriggerC != 60 {
		t.Fatal("trigger axis order wrong")
	}
	if p[0].Policy.EngageDuration != 5e-3 || p[2].Policy.EngageDuration != 10e-3 {
		t.Fatal("engage axis order wrong")
	}
	if p[1].Policy.Actuator.String() != "dvfs" {
		t.Fatal("actuator axis order wrong")
	}
	for _, cell := range cells {
		if cell.Policy.SampleInterval != 1e-3 || cell.Policy.PerfFactor != 0.5 {
			t.Fatal("defaults not applied")
		}
	}
}
