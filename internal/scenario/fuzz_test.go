package scenario

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

// FuzzParseSpec feeds arbitrary bytes through the strict spec decoder. The
// invariants: never panic, reject with a *SpecError (never a bare decode
// error type leaking through), and any spec that survives ParseSpec carries
// only finite positive control parameters — the engine relies on Validate
// having run.
func FuzzParseSpec(f *testing.F) {
	f.Add([]byte(`{
		"name": "ok", "interval": 1e-3, "emergency_c": 80, "initial_steady": true,
		"phases": [{"duration": 0.02, "pulse": {"block": "IntReg", "peak_w": 3, "on_s": 5e-3, "off_s": 5e-3}}],
		"sensors": [{"block": "IntReg", "offset_c": -1}],
		"packages": [{"kind": "air-sink", "rconv": 1.0}, {"label": "oil", "kind": "oil-silicon"}],
		"policies": {"trigger_c": [60, 65], "engage_s": [5e-3], "actuators": ["fetch-gate", "dvfs"]}
	}`))
	f.Add([]byte(`{"phases": [], "packages": [], "policies": {"trigger_c": []}}`))
	f.Add([]byte(`{"emergency_c": 1e999}`))
	f.Add([]byte(`{"emergency_c": 80, "phases": [{"duration": 0}]}`))
	f.Add([]byte(`{"emergency_c": 80, "phases": [{"duration": 1, "workload": "gcc", "pulse": {"block": "x"}}]}`))
	f.Add([]byte(`{"emergency_c": 80, "phases": [{"duration": 1, "trace": {"names": ["A"], "interval": 1e-3, "rows": [[-5]]}}]}`))
	f.Add([]byte(`{
		"emergency_c": 80,
		"phases": [{"duration": 0.01, "pulse": {"block": "IntReg", "peak_w": 2, "on_s": 2e-3, "off_s": 2e-3}}],
		"packages": [{"kind": "air-sink"}, {"kind": "oil-silicon"}],
		"policies": {"trigger_c": [55, 60, 65], "engage_s": [2e-3, 4e-3], "sample_s": [1e-3, 2e-3], "perf_factor": [0.5, 0.8], "actuators": ["fetch-gate", "dvfs"]}
	}`))
	f.Add([]byte(`{"bogus": true}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{} {}`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseSpec(bytes.NewReader(data))
		if err != nil {
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("rejection is not a *SpecError: %T: %v", err, err)
			}
			return
		}
		if !(s.EmergencyC > 0) || math.IsInf(s.EmergencyC, 0) {
			t.Fatalf("accepted invalid emergency threshold %g", s.EmergencyC)
		}
		if len(s.Phases) == 0 || len(s.Packages) == 0 || len(s.Policies.TriggerC) == 0 {
			t.Fatal("accepted a spec with empty phases/packages/triggers")
		}
		for _, p := range s.Phases {
			if !(p.Duration > 0) || math.IsInf(p.Duration, 0) {
				t.Fatalf("accepted invalid phase duration %g", p.Duration)
			}
		}
		for _, v := range s.Policies.TriggerC {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Fatalf("accepted invalid trigger %g", v)
			}
		}
		// A validated spec must survive re-validation (Validate is
		// idempotent and ParseSpec must not hand back unvalidated state).
		if err := s.Validate(); err != nil {
			t.Fatalf("parsed spec fails re-validation: %v", err)
		}
	})
}
