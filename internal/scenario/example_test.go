package scenario_test

import (
	"fmt"

	"repro/internal/scenario"
)

// Example runs a minimal closed-loop policy sweep: one bursty pulse
// workload, the same DTM policy grid over the paper's two cooling
// configurations. At the same overall R_conv the OIL-SILICON die runs
// hotter and swings harder than AIR-SINK, so a trigger placed between the
// two operating points engages the policy only under oil — the §5.1
// observation that a policy tuned on IR (oil) measurements is mis-tuned for
// the air-cooled package.
func Example() {
	spec := &scenario.Spec{
		Name:          "quickstart",
		Interval:      1e-3,
		Duration:      0.1,
		EmergencyC:    100,
		InitialSteady: true,
		Phases: []scenario.Phase{{
			Name:     "burst",
			Duration: 0.1,
			Pulse:    &scenario.PulseSpec{Block: "IntReg", PeakW: 3, OnS: 30e-3, OffS: 70e-3},
		}},
		Packages: []scenario.PackageSpec{
			{Label: "air", Kind: "air-sink", Rconv: 1.0},
			{Label: "oil", Kind: "oil-silicon", Rconv: 1.0},
		},
		Policies: scenario.PolicyGrid{
			TriggerC:        []float64{66},
			EngageDurationS: []float64{5e-3, 20e-3},
		},
	}
	compiled, err := scenario.Compile(spec, scenario.Options{})
	if err != nil {
		panic(err)
	}
	results := compiled.RunGrid(nil, 2, nil)
	fmt.Println("cells:", len(results))
	duty := map[string]float64{}
	for _, r := range results {
		if r.Err != nil {
			panic(r.Err)
		}
		duty[r.Cell.Package] += r.Metrics.DutyCycle
	}
	fmt.Println("air engages:", duty["air"] > 0)
	fmt.Println("oil engages:", duty["oil"] > 0)
	// Output:
	// cells: 4
	// air engages: false
	// oil engages: true
}
